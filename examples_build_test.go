package mixsoc

// The examples are package main programs, so the ordinary test build
// never compiles them and they can rot silently when the library API
// moves. This build-only test keeps them honest: it compiles (without
// running) every module under examples/ and the commands under cmd/
// with the same toolchain running the tests.

import (
	"os/exec"
	"testing"
)

func TestExamplesAndCommandsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles packages; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not on PATH: %v", err)
	}
	for _, pattern := range []string{"./examples/...", "./cmd/..."} {
		cmd := exec.Command(goBin, "build", "-o", t.TempDir(), pattern)
		cmd.Dir = "."
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Errorf("go build %s failed: %v\n%s", pattern, err, out)
		}
	}
}
