module mixsoc

go 1.24
