// Package mixsoc is a test-planning library for mixed-signal
// systems-on-chip with wrapped analog cores, reproducing Sehgal, Liu,
// Ozev and Chakrabarty, "Test Planning for Mixed-Signal SOCs with
// Wrapped Analog Cores" (DATE 2005).
//
// The library answers the paper's question: given a digital SOC with
// embedded analog cores, a SOC-level TAM width W, and a cost trade-off
// between test time and silicon area, which analog cores should share
// reconfigurable analog test wrappers, and how should every test be
// scheduled on the TAM?
//
// The main entry points are:
//
//   - P93791M, the paper's benchmark SOC (ITC'02 p93791 plus five analog
//     cores from a commercial baseband chip);
//   - Plan / PlanExhaustive, the Cost_Optimizer heuristic of the paper
//     (Figure 3) and the exhaustive baseline;
//   - ScheduleFor, a rectangle-packed TAM schedule for any specific
//     wrapper-sharing configuration;
//   - WrapperAccuracy, the behavioural wrapper-in-the-loop measurement
//     experiment of Section 5 (Figure 5).
//
// Long-lived callers — and the HTTP serving layer (internal/service,
// cmd/msoc-serve) — use an Engine: a handle that caches wrapper
// staircases and TAM schedules per design (keyed by content hash,
// evicted LRU) and threads context cancellation through the planning
// hot loops. The package-level planning functions are thin wrappers
// over a shared DefaultEngine, so repeated calls on the same design
// reuse each other's work while returning bit-identical results.
//
// Deeper control — wrapper design for digital cores, analog wrapper area
// models, partition policies, the packer itself — lives in the internal
// packages and is re-exported here through type aliases where users need
// to hold the values.
package mixsoc

import (
	"context"
	"io"

	"mixsoc/internal/analog"
	"mixsoc/internal/asim"
	"mixsoc/internal/core"
	"mixsoc/internal/itc02"
	"mixsoc/internal/partition"
	"mixsoc/internal/registry"
	"mixsoc/internal/socgen"
	"mixsoc/internal/tam"
	"mixsoc/internal/wrapsim"
)

// Core planning types, aliased so callers work with the same values the
// internal packages produce.
type (
	// Design is a mixed-signal SOC: a digital ITC'02-style SOC plus
	// embedded analog cores.
	Design = core.Design
	// Weights are the cost weighting factors wT and wA of Problem P_msoc.
	Weights = core.Weights
	// Planner solves Problem P_msoc at one TAM width.
	Planner = core.Planner
	// Result is a planning outcome: best configuration, cost breakdown,
	// and evaluation counts.
	Result = core.Result
	// Evaluation is the costing of one sharing configuration.
	Evaluation = core.Evaluation

	// SOC is a digital SOC in the ITC'02 benchmark model.
	SOC = itc02.SOC
	// Module is a digital core of a SOC.
	Module = itc02.Module
	// ModuleTest is one test of a digital module.
	ModuleTest = itc02.Test

	// AnalogCore is an embedded analog core with its specification tests.
	AnalogCore = analog.Core
	// AnalogTest is one specification-based analog test (a Table 2 row).
	AnalogTest = analog.Test
	// Hertz is a frequency in hertz; use KHz and MHz multipliers.
	Hertz = analog.Hertz

	// Partition is a wrapper-sharing configuration of the analog cores.
	Partition = partition.Partition
	// Schedule is a packed TAM test schedule.
	Schedule = tam.Schedule
	// Packer is a pluggable TAM packing backend; see PackingBackends
	// and PackerFor, and set Planner.Packer or SweepOptions.Backend to
	// use one.
	Packer = tam.Packer

	// Engine is a long-lived planning handle with per-design caches,
	// LRU eviction, and context cancellation; see NewEngine.
	Engine = core.Engine
	// EngineOptions configures NewEngine.
	EngineOptions = core.EngineOptions
	// EngineMetrics aggregates an Engine's cache counters.
	EngineMetrics = core.EngineMetrics
	// DesignInfo describes one live cache session of an Engine.
	DesignInfo = core.DesignInfo

	// WrapperConfig sizes a behavioural analog test wrapper.
	WrapperConfig = wrapsim.Config
	// WrapperExperiment is a configurable wrapper-in-the-loop cut-off
	// frequency measurement (the Section 5 experiment).
	WrapperExperiment = wrapsim.CutoffExperiment
	// WrapperAccuracyResult is the Figure 5 experiment outcome.
	WrapperAccuracyResult = wrapsim.CutoffResult
	// Tone is one sinusoidal stimulus component for wrapper experiments.
	Tone = asim.Tone
)

// Candidate-partition policies for Planner.Policy.
var (
	// PolicyPaper is the paper's 26-combination candidate set.
	PolicyPaper = partition.PaperPolicy
	// PolicyFull admits every sharing configuration with at least one
	// shared wrapper.
	PolicyFull = partition.FullPolicy
)

// Frequency units for AnalogTest fields.
const (
	KHz = analog.KHz
	MHz = analog.MHz
)

// EqualWeights is the balanced cost setting wT = wA = 0.5.
var EqualWeights = core.EqualWeights

// PackingBackends lists the selectable packing-backend names: the tam
// backends ("occupancy", "rectangle") plus the "tournament" composite
// that runs every backend and keeps the best validated makespan.
func PackingBackends() []string { return core.Backends() }

// PackerFor resolves a packing-backend name to a Packer. The empty
// name resolves to (nil, nil) — the planner's default occupancy path,
// byte-identical to leaving Planner.Packer unset.
func PackerFor(name string) (Packer, error) { return core.PackerFor(name) }

// NewEngine returns a long-lived planning engine: it keeps a wrapper
// staircase cache and per-width TAM schedule caches for every design
// it has seen (keyed by DesignHash, evicted LRU) and threads context
// cancellation through the planning hot loops, so a caller can abort a
// sweep mid-flight with the caches left consistent. Every result is
// bit-identical to the corresponding package-level function.
func NewEngine(opts EngineOptions) *Engine { return core.NewEngine(opts) }

// defaultEngine backs the package-level planning functions, so
// repeated one-shot calls on the same design share caches the way a
// long-lived server does.
var defaultEngine = core.NewEngine(core.EngineOptions{})

// DefaultEngine returns the process-wide engine behind Plan,
// PlanExhaustive, ScheduleFor, Sweep and SweepWith — the handle to use
// for context-aware calls (Engine.Plan, Engine.Sweep, ...) that should
// share those functions' caches.
func DefaultEngine() *Engine { return defaultEngine }

// MarshalDesign renders a design in its canonical JSON form — the wire
// format msoc-serve accepts for inline designs. The codec round-trips
// losslessly.
func MarshalDesign(d *Design) ([]byte, error) { return core.MarshalDesign(d) }

// UnmarshalDesign parses and validates a design from its canonical
// JSON form.
func UnmarshalDesign(data []byte) (*Design, error) { return core.UnmarshalDesign(data) }

// DesignHash returns the design's content hash (hex SHA-256 over its
// digital modules and analog cores, ignoring the display name) — the
// key an Engine caches the design under.
func DesignHash(d *Design) (string, error) { return core.DesignHash(d) }

// P93791M returns the paper's experimental SOC: the embedded p93791
// digital benchmark augmented with the five analog cores of Table 2.
func P93791M() *Design {
	return &Design{
		Name:    "p93791m",
		Digital: itc02.P93791(),
		Analog:  analog.PaperCores(),
	}
}

// P93791 returns the digital-only embedded benchmark.
func P93791() *SOC { return itc02.P93791() }

// D281 returns the small embedded digital benchmark, convenient for
// fast experiments.
func D281() *SOC { return itc02.D281() }

// D695 returns the embedded d695-class digital benchmark, the ITC'02
// family's small circuit (ten ISCAS-derived cores).
func D695() *SOC { return itc02.D695() }

// G1023 returns the embedded g1023-class digital benchmark: fourteen
// modest cores with no dominating giant.
func G1023() *SOC { return itc02.G1023() }

// T512505 returns the embedded t512505-class digital benchmark, the
// family's stress case: thirty-one cores dominated by one giant scan
// core whose test floors the schedule at every practical TAM width.
func T512505() *SOC { return itc02.T512505() }

// Benchmark describes one entry of the built-in benchmark registry.
type Benchmark = registry.Entry

// Benchmarks lists every built-in benchmark — each embedded digital SOC
// and its plannable mixed-signal "m" variant — sorted by name.
func Benchmarks() []Benchmark { return registry.Entries() }

// LookupBenchmark returns a fresh copy of a named built-in benchmark
// design ("p93791m", "d695", "t512505m", ...). Digital-only names
// resolve to designs without analog cores, which cannot be planned; the
// "m" variants can.
func LookupBenchmark(name string) (*Design, error) { return registry.Lookup(name) }

// GenOptions configures Generate, the seeded synthetic-design
// generator; see internal/socgen for the determinism contract.
type GenOptions = socgen.Options

// GenClass is a synthetic design size class for GenOptions.Class.
type GenClass = socgen.Class

// The synthetic design size classes, smallest first.
const (
	GenSmall  = socgen.Small
	GenMedium = socgen.Medium
	GenLarge  = socgen.Large
)

// ParseGenClass parses a size-class name ("small", "medium", "large").
func ParseGenClass(s string) (GenClass, error) { return socgen.ParseClass(s) }

// Generate returns the seeded synthetic mixed-signal design for opt.
// Equal options generate byte-identical designs (same .soc text, same
// canonical JSON), and every generated design passes validation and
// round-trips through the .soc format — the supply behind msoc-gen and
// the property-based test layer.
func Generate(opt GenOptions) (*Design, error) { return socgen.Generate(opt) }

// GenerateSOC returns only the digital half of Generate's design.
func GenerateSOC(opt GenOptions) (*SOC, error) { return socgen.GenerateSOC(opt) }

// PaperAnalogCores returns fresh copies of the five Table 2 cores.
func PaperAnalogCores() []*AnalogCore { return analog.PaperCores() }

// LoadSOC parses a digital SOC description in the ITC'02-style text
// format documented in internal/itc02.
func LoadSOC(r io.Reader) (*SOC, error) { return itc02.Parse(r) }

// FormatSOC renders a SOC back to the text format.
func FormatSOC(s *SOC) string { return itc02.Format(s) }

// LoadAnalogCores parses analog core specifications in the text format
// documented in internal/analog (AnalogCore/Test blocks with Band,
// Fsample, Cycles, TamWidth, Resolution fields).
func LoadAnalogCores(r io.Reader) ([]*AnalogCore, error) { return analog.ParseCores(r) }

// FormatAnalogCores renders analog cores back to the text format.
func FormatAnalogCores(cores []*AnalogCore) string { return analog.FormatCores(cores) }

// SweepOptions configures SweepWith: exhaustive vs heuristic solving,
// cross-width warm-starting, grid-cell selection, and the worker
// budget.
type SweepOptions = core.SweepOptions

// Sweep solves the planning problem across several TAM widths and
// weight settings and returns every solved point; see BestSweepPoint.
func Sweep(d *Design, widths []int, weights []Weights, exhaustive bool) ([]core.SweepPoint, error) {
	return SweepWith(d, widths, weights, SweepOptions{Exhaustive: exhaustive})
}

// SweepWith is Sweep with explicit options. SweepOptions.WarmStart
// chains the TAM packings across adjacent widths (each width's
// schedules seed the next width's improve loop), which is markedly
// faster for wide exploratory sweeps at the price of makespans that
// can deviate a few percent from a cold sweep. SweepOptions.Select
// restricts the sweep to chosen grid cells, which is how a sharded
// runner splits one grid across machines; in a cold sweep every
// selected cell is solved bit-identically to the corresponding cell of
// a full sweep (combined with WarmStart, the warm chain skips the
// unselected widths, so seeds — and hence makespans — can differ from
// a full warm sweep's).
//
// The sweep runs on DefaultEngine, so cold grid points planned here (or
// by Plan) are packed once per process; warm-started sweeps never touch
// the shared cold caches. For cancellation, use Engine.Sweep with a
// context.
func SweepWith(d *Design, widths []int, weights []Weights, opt SweepOptions) ([]core.SweepPoint, error) {
	return defaultEngine.Sweep(context.Background(), d, widths, weights, opt)
}

// BestSweepPoint picks the cheapest point of a sweep, preferring
// narrower TAMs on ties.
func BestSweepPoint(points []core.SweepPoint) (core.SweepPoint, error) {
	return core.BestOver(points)
}

// Plan runs the paper's Cost_Optimizer heuristic (Figure 3) on the
// design at TAM width w with the given cost weights and the paper's
// default cost model and candidate policy. It is a thin wrapper over
// DefaultEngine, so repeated plans of the same design reuse its cached
// wrapper staircases and TAM schedules; the Result — including NEval —
// is bit-identical to a cache-less run.
func Plan(d *Design, w int, weights Weights) (*Result, error) {
	return defaultEngine.Plan(context.Background(), d, w, weights)
}

// PlanExhaustive evaluates every candidate sharing configuration, the
// paper's optimal-but-expensive baseline; like Plan it runs on
// DefaultEngine.
func PlanExhaustive(d *Design, w int, weights Weights) (*Result, error) {
	return defaultEngine.PlanExhaustive(context.Background(), d, w, weights)
}

// NewPlanner exposes the full planner for callers that need to change
// the cost model, candidate policy, or pruning behaviour.
func NewPlanner(d *Design, w int, weights Weights) *Planner {
	return core.NewPlanner(d, w, weights)
}

// ScheduleFor packs a TAM schedule for one specific sharing
// configuration p at width w (use d.AllShare(), d.NoShare(), or any
// enumeration result). It runs on DefaultEngine; the returned schedule
// may be cached and shared, so treat it as read-only.
func ScheduleFor(d *Design, p Partition, w int) (*Schedule, error) {
	return defaultEngine.Schedule(context.Background(), d, p, w)
}

// WrapperAccuracy runs the Section 5 wrapper-in-the-loop experiment
// with the paper's parameters and returns the spectra and extracted
// cut-off frequencies of Figure 5.
func WrapperAccuracy() (*WrapperAccuracyResult, error) {
	return wrapsim.PaperCutoffExperiment().Run()
}

// PaperWrapperExperiment returns the Section 5 experiment configuration
// for callers that want to vary it (sample counts, converter
// nonidealities, core cut-off) before calling Run.
func PaperWrapperExperiment() WrapperExperiment {
	return wrapsim.PaperCutoffExperiment()
}

// PaperWrapperConfig returns the 8-bit, 50 MHz, 4 V wrapper
// configuration of the paper's test chip.
func PaperWrapperConfig() WrapperConfig { return wrapsim.PaperConfig() }
