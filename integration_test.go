package mixsoc

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestRandomDesignsEndToEnd is the facade-level robustness property:
// any structurally valid design the generator produces must plan
// without error, the heuristic must never beat the exhaustive optimum,
// and the winning configuration must schedule into a validated,
// group-serialized schedule.
func TestRandomDesignsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweeps are slow")
	}
	f := func(seed uint32) bool {
		d := randomDesign(seed)
		if err := d.Validate(); err != nil {
			t.Logf("seed %d: generator produced invalid design: %v", seed, err)
			return false
		}
		width := 12 + int(seed%3)*8
		h, err := Plan(d, width, EqualWeights)
		if err != nil {
			t.Logf("seed %d: plan: %v", seed, err)
			return false
		}
		ex, err := PlanExhaustive(d, width, EqualWeights)
		if err != nil {
			t.Logf("seed %d: exhaustive: %v", seed, err)
			return false
		}
		if h.Best.Cost < ex.Best.Cost-1e-9 {
			t.Logf("seed %d: heuristic %v beat exhaustive %v", seed, h.Best.Cost, ex.Best.Cost)
			return false
		}
		s, err := ScheduleFor(d, h.Best.Partition, width)
		if err != nil {
			t.Logf("seed %d: schedule: %v", seed, err)
			return false
		}
		if err := s.Validate(); err != nil {
			t.Logf("seed %d: invalid schedule: %v", seed, err)
			return false
		}
		for _, spans := range s.GroupSpans() {
			for i := 1; i < len(spans); i++ {
				if spans[i][0] < spans[i-1][1] {
					t.Logf("seed %d: group overlap", seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// randomDesign builds a small but varied mixed-signal SOC from a seed
// using a splitmix-style generator (deterministic per seed).
func randomDesign(seed uint32) *Design {
	state := uint64(seed)*2654435769 + 1
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}

	soc := &SOC{Name: fmt.Sprintf("rand%d", seed)}
	nDigital := 2 + next(5)
	for i := 1; i <= nDigital; i++ {
		m := &Module{
			ID: i, Name: fmt.Sprintf("d%d", i), Level: 1,
			Inputs: 2 + next(30), Outputs: 2 + next(30), Bidirs: next(8),
		}
		for c := 0; c < next(6); c++ {
			m.Scan = append(m.Scan, 10+next(200))
		}
		m.Tests = []ModuleTest{{ID: 1, Patterns: 20 + next(400), ScanUse: len(m.Scan) > 0, TamUse: true}}
		soc.Modules = append(soc.Modules, m)
	}

	nAnalog := 2 + next(3)
	var cores []*AnalogCore
	for i := 0; i < nAnalog; i++ {
		c := &AnalogCore{Name: string(rune('P' + i)), Kind: "random"}
		for tn := 0; tn <= next(3); tn++ {
			c.Tests = append(c.Tests, AnalogTest{
				Name:       fmt.Sprintf("t%d", tn),
				FinLow:     Hertz(1+next(100)) * KHz,
				FinHigh:    Hertz(101+next(400)) * KHz,
				Fsample:    Hertz(2+next(20)) * MHz,
				Cycles:     int64(500 + next(60000)),
				TAMWidth:   1 + next(4),
				Resolution: 8,
			})
		}
		cores = append(cores, c)
	}
	return &Design{Name: soc.Name + "-m", Digital: soc, Analog: cores}
}
