package mixsoc_test

import (
	"context"
	"fmt"
	"strings"

	"mixsoc"
)

// ExamplePlan plans the paper's benchmark SOC at TAM width 32 with
// balanced weights and prints the headline decision.
func ExamplePlan() {
	design := mixsoc.P93791M()
	res, err := mixsoc.Plan(design, 32, mixsoc.EqualWeights)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("candidates considered: %d\n", res.Candidates)
	fmt.Printf("wrappers in best plan: %d\n", res.Best.Partition.Wrappers())
	fmt.Printf("heuristic pruned TAM runs: %v\n", res.NEval < res.Candidates)
	// Output:
	// candidates considered: 26
	// wrappers in best plan: 2
	// heuristic pruned TAM runs: true
}

// ExampleScheduleFor builds a schedule for an explicit sharing choice
// (all analog cores behind one wrapper) and validates it.
func ExampleScheduleFor() {
	design := mixsoc.P93791M()
	s, err := mixsoc.ScheduleFor(design, design.AllShare(), 48)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("placements: %d\n", len(s.Placements))
	fmt.Printf("valid: %v\n", s.Validate() == nil)
	fmt.Printf("serialized groups: %d\n", len(s.GroupSpans()))
	// Output:
	// placements: 52
	// valid: true
	// serialized groups: 1
}

// ExampleSweepWith sweeps the cost surface over several TAM widths,
// using Select to solve only a chosen slice of the grid — the hook a
// sharded runner uses to split one grid across machines — and
// WarmStart to seed each width's packings from the previous width.
func ExampleSweepWith() {
	design := mixsoc.P93791M()
	points, err := mixsoc.SweepWith(design, []int{16, 24, 32}, []mixsoc.Weights{mixsoc.EqualWeights},
		mixsoc.SweepOptions{
			WarmStart: true,
			Select:    func(w int, _ mixsoc.Weights) bool { return w >= 24 },
		})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("solved %d of 3 widths\n", len(points))
	best, err := mixsoc.BestSweepPoint(points)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("cheapest at W=%d with %d wrappers\n", best.Width, best.Result.Best.Partition.Wrappers())
	// Output:
	// solved 2 of 3 widths
	// cheapest at W=32 with 2 wrappers
}

// ExampleWrapperAccuracy runs the Section 5 experiment: the cut-off
// frequency of a low-pass core measured through the 8-bit wrapper.
func ExampleWrapperAccuracy() {
	res, err := mixsoc.WrapperAccuracy()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("true fc: %.0f kHz\n", res.TrueFc/1e3)
	fmt.Printf("error under 10%%: %v\n", res.ErrorPercent < 10)
	// Output:
	// true fc: 60 kHz
	// error under 10%: true
}

// ExampleLoadSOC parses a digital SOC from its text form.
func ExampleLoadSOC() {
	soc, err := mixsoc.LoadSOC(strings.NewReader(`SocName tiny
Module 1
  Name c
  Inputs 4
  Outputs 4
  ScanChains 2
  ScanChainLengths 20 10
  Test 1
    Patterns 7
  EndTest
EndModule
`))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(soc)
	// Output:
	// tiny: 1 modules, 1 cores, 30 scan bits
}

// ExampleNewEngine holds a long-lived planning engine: the second plan
// of the same design (even a separately allocated copy) is served from
// the design's cache session, and a context can cancel any call
// mid-flight.
func ExampleNewEngine() {
	eng := mixsoc.NewEngine(mixsoc.EngineOptions{MaxDesigns: 4})
	ctx := context.Background()

	first, err := eng.Plan(ctx, mixsoc.P93791M(), 32, mixsoc.EqualWeights)
	if err != nil {
		fmt.Println(err)
		return
	}
	second, err := eng.Plan(ctx, mixsoc.P93791M(), 32, mixsoc.EqualWeights)
	if err != nil {
		fmt.Println(err)
		return
	}
	m := eng.Metrics()
	fmt.Printf("same best cost: %v\n", first.Best.Cost == second.Best.Cost)
	fmt.Printf("designs cached: %d\n", m.Designs)
	fmt.Printf("schedule cache reused: %v\n", m.Schedule.Hits > 0)
	// Output:
	// same best cost: true
	// designs cached: 1
	// schedule cache reused: true
}
