package mixsoc

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices called out in DESIGN.md §3.
// Each benchmark regenerates the corresponding experiment through
// internal/experiments (the same code path as cmd/msoc-tables) and
// reports the experiment's headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Renderings are printed by
// cmd/msoc-tables; here we keep the numbers machine-readable.

import (
	"testing"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/experiments"
	"mixsoc/internal/tam"
)

// BenchmarkTable1 regenerates Table 1: C_A and LTB for all 26 sharing
// combinations.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table1(analog.PaperCostModel())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "combos")
	for _, r := range rows {
		if r.Label == "{A,C}" {
			b.ReportMetric(r.LTB, "LTB{A,C}") // paper: 68.5
		}
	}
}

// BenchmarkTable3 regenerates Table 3: normalized SOC test time for all
// combinations at W = 32, 48, 64.
func BenchmarkTable3(b *testing.B) {
	var res *experiments.Table3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Table3(nil, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Paper spreads: 2.45, 7.36, 17.18.
	b.ReportMetric(res.Spread[0], "spreadW32")
	b.ReportMetric(res.Spread[1], "spreadW48")
	b.ReportMetric(res.Spread[2], "spreadW64")
}

// BenchmarkTable4 regenerates Table 4: Cost_Optimizer vs exhaustive over
// W ∈ {32..64} and the three weight settings.
func BenchmarkTable4(b *testing.B) {
	var res *experiments.Table4Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Table4(nil, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Paper: reductions 61.5%/73.0%, heuristic optimal in all but one of
	// 15 cells.
	b.ReportMetric(res.MeanReduction(), "meanReduction%")
	b.ReportMetric(100*res.OptimalFraction(), "optimal%")
}

// BenchmarkFigure5 regenerates the wrapper-accuracy experiment.
func BenchmarkFigure5(b *testing.B) {
	var res *WrapperAccuracyResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Paper: direct 61 kHz, wrapped 58 kHz, error ~5%.
	b.ReportMetric(res.DirectFc/1e3, "directFcKHz")
	b.ReportMetric(res.WrappedFc/1e3, "wrappedFcKHz")
	b.ReportMetric(res.ErrorPercent, "fcError%")
}

// BenchmarkSection5 regenerates the implementation-cost facts.
func BenchmarkSection5(b *testing.B) {
	var f experiments.Section5Facts
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.Section5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(f.FlashComparators8), "flashComparators")     // 256
	b.ReportMetric(float64(f.ModularComparators8), "modularComparators") // 32
}

// BenchmarkAblationSerialConstraint measures what the shared-wrapper
// serialization constraint costs: the all-share schedule with the
// constraint honoured versus the (physically unrealizable) schedule with
// the groups stripped.
func BenchmarkAblationSerialConstraint(b *testing.B) {
	d := P93791M()
	var with, without int64
	for i := 0; i < b.N; i++ {
		jobs, err := core.BuildJobs(d, d.AllShare(), 64)
		if err != nil {
			b.Fatal(err)
		}
		s, err := tam.Optimize(jobs, 64)
		if err != nil {
			b.Fatal(err)
		}
		with = s.Makespan

		free, err := core.BuildJobs(d, d.AllShare(), 64)
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range free {
			j.Group = ""
		}
		s, err = tam.Optimize(free, 64)
		if err != nil {
			b.Fatal(err)
		}
		without = s.Makespan
	}
	b.ReportMetric(float64(with), "cyclesSerialized")
	b.ReportMetric(float64(without), "cyclesFree")
	b.ReportMetric(100*float64(with-without)/float64(without), "serialPenalty%")
}

// BenchmarkAblationFixedBus compares the paper's flexible-width
// rectangle packing against the fixed-width multi-bus baseline of its
// predecessor [5]: the architectural claim of Section 4 ("the analog
// cores do not use all the TAM wires ... the overall time taken to test
// the SOC is not optimized").
func BenchmarkAblationFixedBus(b *testing.B) {
	d := P93791M()
	jobs, err := core.BuildJobs(d, d.AllShare(), 32)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("flexible", func(b *testing.B) {
		var makespan int64
		for i := 0; i < b.N; i++ {
			s, err := tam.Optimize(jobs, 32)
			if err != nil {
				b.Fatal(err)
			}
			makespan = s.Makespan
		}
		b.ReportMetric(float64(makespan), "cycles")
	})
	b.Run("fixed-bus", func(b *testing.B) {
		var makespan int64
		for i := 0; i < b.N; i++ {
			s, err := tam.OptimizeFixedBus(jobs, 32, 6)
			if err != nil {
				b.Fatal(err)
			}
			makespan = s.Makespan
		}
		b.ReportMetric(float64(makespan), "cycles")
	})
}

// BenchmarkAblationParetoPruning compares packing with the Pareto
// staircase against packing over the full width range; the result
// quality is identical while the Pareto variant does far less work.
func BenchmarkAblationParetoPruning(b *testing.B) {
	d := P93791M()
	jobs, err := core.BuildJobs(d, d.NoShare(), 64)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pareto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tam.Optimize(jobs, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-staircase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tam.Optimize(jobs, 64, tam.WithFullStaircase()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationEpsilon sweeps the group-elimination threshold ε of
// Cost_Optimizer: larger ε keeps more groups, evaluating more
// configurations for (possibly) better cost.
func BenchmarkAblationEpsilon(b *testing.B) {
	d := P93791M()
	for _, eps := range []float64{0, 2, 10, 100} {
		b.Run(benchName("eps", eps), func(b *testing.B) {
			var res *Result
			var err error
			for i := 0; i < b.N; i++ {
				pl := core.NewPlanner(d, 48, EqualWeights)
				pl.Epsilon = eps
				res, err = pl.CostOptimizer()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.NEval), "NEval")
			b.ReportMetric(res.Best.Cost, "cost")
		})
	}
}

// BenchmarkAblationAreaModel compares the shared-wrapper pricing rules:
// merged-requirements (default, physically faithful) versus the literal
// max-member-area of equation (1).
func BenchmarkAblationAreaModel(b *testing.B) {
	d := P93791M()
	for _, rule := range []analog.SharedAreaRule{analog.MergedRequirements, analog.MaxMemberArea} {
		b.Run(rule.String(), func(b *testing.B) {
			var res *Result
			var err error
			for i := 0; i < b.N; i++ {
				pl := core.NewPlanner(d, 48, EqualWeights)
				cm := analog.DefaultCostModel()
				cm.Rule = rule
				pl.CostModel = cm
				res, err = pl.CostOptimizer()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Best.Cost, "cost")
			b.ReportMetric(res.Best.CA, "CA")
		})
	}
}

// BenchmarkSweepGrid measures the trade-off grid engine end to end:
// grid points fan across the worker pool and points at one width share
// a schedule cache, so this is the benchmark that tracks the planning
// engine's throughput (as opposed to single-solve latency).
func BenchmarkSweepGrid(b *testing.B) {
	d := P93791M()
	widths := []int{32, 48, 64}
	weights := []Weights{EqualWeights, {Time: 0.25, Area: 0.75}, {Time: 0.75, Area: 0.25}}
	var points []core.SweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = Sweep(d, widths, weights, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	best, err := BestSweepPoint(points)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(points)), "points")
	b.ReportMetric(best.Result.Best.Cost, "bestCost")
	b.ReportMetric(float64(best.Width), "bestW")
}

// BenchmarkPlanHeuristicVsExhaustive is the end-to-end solver
// comparison at one representative point (W=48, equal weights).
func BenchmarkPlanHeuristicVsExhaustive(b *testing.B) {
	d := P93791M()
	b.Run("cost-optimizer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Plan(d, 48, EqualWeights); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PlanExhaustive(d, 48, EqualWeights); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchName(prefix string, v float64) string {
	switch {
	case v == float64(int64(v)):
		return prefix + "=" + itoa(int64(v))
	default:
		return prefix + "~" + itoa(int64(v*100)) + "e-2"
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
