package partition

import (
	"testing"
	"testing/quick"
)

func TestBellNumbers(t *testing.T) {
	want := []int{1, 1, 2, 5, 15, 52, 203, 877}
	for n, w := range want {
		if got := Bell(n); got != w {
			t.Errorf("Bell(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestAllCountsMatchBell(t *testing.T) {
	for n := 1; n <= 7; n++ {
		if got := len(All(n)); got != Bell(n) {
			t.Errorf("len(All(%d)) = %d, want Bell = %d", n, got, Bell(n))
		}
	}
}

func TestAllCanonicalAndComplete(t *testing.T) {
	for _, p := range All(4) {
		if p.N() != 4 {
			t.Fatalf("partition %v does not cover 4 items", p)
		}
		seen := map[int]bool{}
		for _, g := range p {
			if len(g) == 0 {
				t.Fatalf("empty group in %v", p)
			}
			for i := 1; i < len(g); i++ {
				if g[i] <= g[i-1] {
					t.Fatalf("group not ascending in %v", p)
				}
			}
			for _, it := range g {
				if seen[it] {
					t.Fatalf("item %d repeated in %v", it, p)
				}
				seen[it] = true
			}
		}
	}
}

// classesAB marks items 0 and 1 (cores A and B) as interchangeable.
var classesAB = []int{0, 0, 1, 2, 3}

func TestDedupFiveCoresWithIdenticalPair(t *testing.T) {
	parts := Dedup(All(5), classesAB)
	// 52 partitions of 5 items collapse to 36 when two items are
	// interchangeable: 1 no-share + 7 pairs + 9 two-pairs+single +
	// 7 triples + 7 triple+pair + 4 quads + 1 all-share. PaperPolicy
	// then drops the no-share and the 9 two-pairs+single, leaving 26.
	if len(parts) != 36 {
		t.Fatalf("dedup count = %d, want 36", len(parts))
	}
}

func TestPaperPolicyYields26(t *testing.T) {
	cands := Enumerate(5, classesAB, PaperPolicy)
	if len(cands) != 26 {
		t.Fatalf("paper candidate count = %d, want 26 (paper: NEval is always 26)", len(cands))
	}
	// Structure check: 7 pairs, 7 triples, 4 quads, 7 triple+pair, 1 all.
	byShape := map[string]int{}
	for _, p := range cands {
		shared := p.SharedGroups()
		switch {
		case len(shared) == 1 && len(shared[0]) == 2:
			byShape["pair"]++
		case len(shared) == 1 && len(shared[0]) == 3:
			byShape["triple"]++
		case len(shared) == 1 && len(shared[0]) == 4:
			byShape["quad"]++
		case len(shared) == 1 && len(shared[0]) == 5:
			byShape["all"]++
		case len(shared) == 2:
			byShape["triple+pair"]++
		default:
			t.Errorf("unexpected shape: %v", p)
		}
	}
	want := map[string]int{"pair": 7, "triple": 7, "quad": 4, "all": 1, "triple+pair": 7}
	for k, w := range want {
		if byShape[k] != w {
			t.Errorf("shape %s: %d, want %d (got %v)", k, byShape[k], w, byShape)
		}
	}
}

func TestPaperPolicyRules(t *testing.T) {
	cases := []struct {
		p    Partition
		want bool
	}{
		{Partition{{0}, {1}, {2}, {3}, {4}}, false},       // no sharing
		{Partition{{0, 1}, {2}, {3}, {4}}, true},          // one pair
		{Partition{{0, 1}, {2, 3}, {4}}, false},           // two pairs + singleton
		{Partition{{0, 1, 2}, {3, 4}}, true},              // triple+pair, no singleton
		{Partition{{0, 1, 2, 3}, {4}}, true},              // quad + singleton
		{Partition{{0, 1, 2, 3, 4}}, true},                // all share
		{Partition{{0, 1}, {2, 3}}, true},                 // 4 items, two pairs, no single
		{Partition{{0, 1}, {2, 4}, {3}}, false},           // two pairs + single
		{Partition{{0, 2}, {1, 3}, {4}}, false},           // two pairs + single
		{Partition{{0}, {1}, {2}, {3, 4}}, true},          // single pair late
		{Partition{{0, 1}, {2}, {3}, {4}, {5, 6}}, false}, // 7 items, 2 shared + singles
	}
	for _, tc := range cases {
		if got := PaperPolicy(tc.p); got != tc.want {
			t.Errorf("PaperPolicy(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestFormat(t *testing.T) {
	names := []string{"A", "B", "C", "D", "E"}
	p := Partition{{0, 1, 4}, {2, 3}}
	if got := p.FormatShared(names); got != "{A,B,E}{C,D}" {
		t.Errorf("FormatShared = %q", got)
	}
	q := Partition{{0, 2}, {1}, {3}, {4}}
	if got := q.FormatShared(names); got != "{A,C}" {
		t.Errorf("FormatShared = %q", got)
	}
	if got := q.Format(names); got != "{A,C}{B}{D}{E}" {
		t.Errorf("Format = %q", got)
	}
	none := Partition{{0}, {1}, {2}, {3}, {4}}
	if got := none.FormatShared(names); got != "{}" {
		t.Errorf("FormatShared(no share) = %q", got)
	}
}

func TestKeyEquivalence(t *testing.T) {
	// {A,C}{B}{D}{E} and {B,C}{A}{D}{E} are the same under A≡B.
	p := Partition{{0, 2}, {1}, {3}, {4}}
	q := Partition{{1, 2}, {0}, {3}, {4}}
	if p.Key(classesAB) != q.Key(classesAB) {
		t.Error("equivalent partitions have different keys")
	}
	if p.Key(nil) == q.Key(nil) {
		t.Error("distinct partitions share a key without classes")
	}
	// {A,C}{B,D} vs {A,D}{B,C} are equivalent under A≡B.
	r := Partition{{0, 2}, {1, 3}, {4}}
	s := Partition{{0, 3}, {1, 2}, {4}}
	if r.Key(classesAB) != s.Key(classesAB) {
		t.Error("pair-swap partitions have different keys")
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Partition{{0, 1}, {2}}
	c := p.Clone()
	c[0][0] = 9
	if p[0][0] == 9 {
		t.Error("Clone shares group storage")
	}
}

func TestEnumerateNilPolicy(t *testing.T) {
	if got := len(Enumerate(5, classesAB, nil)); got != 36 {
		t.Errorf("Enumerate(nil policy) = %d, want 36", got)
	}
	if got := len(Enumerate(5, nil, AllowAllPolicy)); got != 52 {
		t.Errorf("Enumerate(no classes) = %d, want 52", got)
	}
}

// Property: dedup never increases the count and always keeps at least one
// representative per raw partition's key.
func TestDedupProperty(t *testing.T) {
	f := func(nRaw uint8, classSeed uint8) bool {
		n := int(nRaw%5) + 1
		class := make([]int, n)
		for i := range class {
			class[i] = int(classSeed>>uint(i)) % 2
		}
		raw := All(n)
		dd := Dedup(raw, class)
		if len(dd) > len(raw) {
			return false
		}
		keys := map[string]bool{}
		for _, p := range dd {
			k := p.Key(class)
			if keys[k] {
				return false // duplicate survived
			}
			keys[k] = true
		}
		for _, p := range raw {
			if !keys[p.Key(class)] {
				return false // lost an equivalence class
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEnumerate5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Enumerate(5, classesAB, PaperPolicy)
	}
}

func BenchmarkAll8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		All(8)
	}
}
