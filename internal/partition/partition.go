// Package partition enumerates the wrapper-sharing configurations of
// Section 3 of the paper: set partitions of the analog cores, where each
// group of a partition shares one analog test wrapper.
//
// Two refinements match the paper's experimental setup:
//
//   - Cores with identical test sets (cores A and B of Table 2) are
//     interchangeable; partitions that differ only by swapping them are
//     deduplicated ("Since Core A and Core B have identical tests, only
//     unique combinations for Core A are presented").
//   - The paper's candidate set contains exactly 26 combinations for the
//     five cores: all deduplicated partitions except the no-sharing
//     partition and except partitions with two shared groups plus a
//     singleton. PaperPolicy encodes that rule; FullPolicy keeps every
//     partition with at least one shared group.
package partition

import (
	"sort"
	"strings"
)

// Partition is a partition of items 0..n-1 into disjoint groups. Groups
// are canonically ordered: items ascending within a group, groups by
// their smallest item.
type Partition [][]int

// N returns the number of items partitioned.
func (p Partition) N() int {
	n := 0
	for _, g := range p {
		n += len(g)
	}
	return n
}

// SharedGroups returns the groups with two or more members (the groups
// that actually share a wrapper).
func (p Partition) SharedGroups() [][]int {
	var out [][]int
	for _, g := range p {
		if len(g) >= 2 {
			out = append(out, g)
		}
	}
	return out
}

// Singletons returns the number of one-member groups.
func (p Partition) Singletons() int {
	n := 0
	for _, g := range p {
		if len(g) == 1 {
			n++
		}
	}
	return n
}

// Wrappers returns the number of groups, i.e. analog wrappers used.
func (p Partition) Wrappers() int { return len(p) }

// Format renders the partition with the given item names, shared groups
// first, e.g. "{A,B}{C,D}" or "{A,C} singles:B,D,E" is avoided: all
// groups are shown: "{A,B}{C,D}{E}".
func (p Partition) Format(names []string) string {
	var sb strings.Builder
	for _, g := range p.ordered() {
		sb.WriteByte('{')
		for i, it := range g {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(names[it])
		}
		sb.WriteByte('}')
	}
	return sb.String()
}

// FormatShared renders only the shared groups, the notation Tables 1, 3
// and 4 of the paper use (singletons are implicit), e.g. "{A,B,E}{C,D}".
// The no-sharing partition renders as "{}".
func (p Partition) FormatShared(names []string) string {
	shared := p.SharedGroups()
	if len(shared) == 0 {
		return "{}"
	}
	var sb strings.Builder
	for _, g := range orderGroups(shared) {
		sb.WriteByte('{')
		for i, it := range g {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(names[it])
		}
		sb.WriteByte('}')
	}
	return sb.String()
}

// ordered returns groups sorted: larger groups first, then by first item.
func (p Partition) ordered() [][]int { return orderGroups(p) }

func orderGroups(groups [][]int) [][]int {
	out := make([][]int, len(groups))
	copy(out, groups)
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return out[a][0] < out[b][0]
	})
	return out
}

// Clone returns a deep copy.
func (p Partition) Clone() Partition {
	c := make(Partition, len(p))
	for i, g := range p {
		c[i] = append([]int(nil), g...)
	}
	return c
}

// All enumerates every set partition of n items (Bell(n) of them) via
// restricted growth strings. Groups and items are in canonical order.
func All(n int) []Partition {
	if n <= 0 {
		return nil
	}
	var out []Partition
	rgs := make([]int, n)
	var rec func(i, maxUsed int)
	rec = func(i, maxUsed int) {
		if i == n {
			out = append(out, fromRGS(rgs))
			return
		}
		for b := 0; b <= maxUsed+1; b++ {
			rgs[i] = b
			next := maxUsed
			if b > maxUsed {
				next = b
			}
			rec(i+1, next)
		}
	}
	rgs[0] = 0
	rec(1, 0)
	return out
}

func fromRGS(rgs []int) Partition {
	nGroups := 0
	for _, b := range rgs {
		if b+1 > nGroups {
			nGroups = b + 1
		}
	}
	p := make(Partition, nGroups)
	for item, b := range rgs {
		p[b] = append(p[b], item)
	}
	return p
}

// Key returns a canonical string for the partition under the given item
// equivalence classes: two partitions have equal keys iff one can be
// turned into the other by permuting items within a class. class[i] is
// the equivalence class of item i; pass nil for all-distinct items.
func (p Partition) Key(class []int) string {
	keys := make([]string, len(p))
	for i, g := range p {
		cs := make([]int, len(g))
		for j, it := range g {
			if class == nil {
				cs[j] = it
			} else {
				cs[j] = class[it]
			}
		}
		sort.Ints(cs)
		var sb strings.Builder
		for j, c := range cs {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(itoa(c))
		}
		keys[i] = sb.String()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

func itoa(v int) string {
	// small non-negative ints only
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + itoa(v%10)
}

// Dedup removes partitions that are equivalent under the item classes,
// keeping the first representative of each equivalence class and the
// input order otherwise.
func Dedup(parts []Partition, class []int) []Partition {
	seen := make(map[string]bool, len(parts))
	var out []Partition
	for _, p := range parts {
		k := p.Key(class)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out
}

// Policy decides whether a sharing configuration is a candidate.
type Policy func(Partition) bool

// FullPolicy keeps every partition that shares at least one wrapper.
func FullPolicy(p Partition) bool { return len(p.SharedGroups()) > 0 }

// PaperPolicy reproduces the paper's 26-combination candidate set for
// five cores: at least one shared group, and not(two or more shared
// groups together with a leftover singleton). See the package comment.
func PaperPolicy(p Partition) bool {
	shared := len(p.SharedGroups())
	if shared == 0 {
		return false
	}
	if shared >= 2 && p.Singletons() >= 1 {
		return false
	}
	return true
}

// AllowAllPolicy keeps everything, including the no-sharing partition.
func AllowAllPolicy(Partition) bool { return true }

// Enumerate lists the candidate partitions of n items: all partitions,
// deduplicated under class, filtered by keep (nil keeps everything).
func Enumerate(n int, class []int, keep Policy) []Partition {
	parts := Dedup(All(n), class)
	if keep == nil {
		return parts
	}
	var out []Partition
	for _, p := range parts {
		if keep(p) {
			out = append(out, p)
		}
	}
	return out
}

// Bell returns the Bell number B(n) for small n, the count All(n)
// produces. It is exposed for tests and documentation.
func Bell(n int) int {
	// Bell triangle.
	if n == 0 {
		return 1
	}
	row := []int{1}
	for i := 1; i <= n; i++ {
		next := make([]int, i+1)
		next[0] = row[len(row)-1]
		for j := 1; j <= i; j++ {
			next[j] = next[j-1] + row[j-1]
		}
		row = next
	}
	return row[0]
}
