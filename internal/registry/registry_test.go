package registry

import (
	"strings"
	"testing"

	"mixsoc/internal/core"
	"mixsoc/internal/experiments"
	"mixsoc/internal/itc02"
)

// TestEveryEntryValidatesAndRoundTrips pins the registry's contract:
// every named benchmark is a valid design whose digital half survives
// the .soc text round trip byte-identically.
func TestEveryEntryValidatesAndRoundTrips(t *testing.T) {
	for _, name := range Names() {
		d, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if d.Name != name {
			t.Errorf("%s: design named %q", name, d.Name)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		text := itc02.Format(d.Digital)
		soc, err := itc02.Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		if again := itc02.Format(soc); again != text {
			t.Errorf("%s: .soc round trip not stable", name)
		}
	}
}

// TestLookupReturnsFreshHashStableCopies checks that two lookups return
// independent values with identical content hashes — the property the
// serving layer's benchmark caching rests on.
func TestLookupReturnsFreshHashStableCopies(t *testing.T) {
	a, err := Lookup("d695m")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Lookup("d695m")
	if err != nil {
		t.Fatal(err)
	}
	if a.Digital == b.Digital || a.Digital.Modules[1] == b.Digital.Modules[1] {
		t.Fatal("Lookup returned shared digital state")
	}
	ha, err := core.DesignHash(a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := core.DesignHash(b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("hashes differ across lookups: %s vs %s", ha, hb)
	}
	// Mutating one copy must not leak into the next lookup.
	a.Digital.Modules[1].Inputs++
	c, _ := Lookup("d695m")
	hc, _ := core.DesignHash(c)
	if hc != hb {
		t.Fatal("mutation of a looked-up design leaked into the registry")
	}
}

// TestP93791MMatchesExperimentsDesign pins the registry's p93791m to the
// exact design the experiments (and the service's default benchmark
// path) use, so a benchmark request by name can never drift from the
// golden tables' SOC.
func TestP93791MMatchesExperimentsDesign(t *testing.T) {
	reg, err := Lookup("p93791m")
	if err != nil {
		t.Fatal(err)
	}
	hr, err := core.DesignHash(reg)
	if err != nil {
		t.Fatal(err)
	}
	he, err := core.DesignHash(experiments.Design())
	if err != nil {
		t.Fatal(err)
	}
	if hr != he {
		t.Fatalf("registry p93791m hash %s != experiments design hash %s", hr, he)
	}
}

// TestMixedVariantsArePlannableSized checks the entry metadata: every
// "m" entry has 2-6 analog cores (the candidate-enumeration sweet spot)
// and every digital entry has none.
func TestMixedVariantsArePlannableSized(t *testing.T) {
	for _, e := range Entries() {
		mixed := strings.HasSuffix(e.Name, "m") && e.Name != "p93791" // no digital name ends in m today
		if mixed && (e.AnalogCores < 2 || e.AnalogCores > 6) {
			t.Errorf("%s: %d analog cores outside [2,6]", e.Name, e.AnalogCores)
		}
		if !mixed && e.AnalogCores != 0 {
			t.Errorf("%s: digital entry with %d analog cores", e.Name, e.AnalogCores)
		}
		if e.Modules < 2 || e.TestVolume <= 0 {
			t.Errorf("%s: implausible metadata %+v", e.Name, e)
		}
	}
}

// TestUnknownName checks the error lists the available names.
func TestUnknownName(t *testing.T) {
	_, err := Lookup("nope")
	if err == nil || !strings.Contains(err.Error(), "p93791m") {
		t.Fatalf("want unknown-benchmark error listing names, got %v", err)
	}
}
