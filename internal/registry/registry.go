// Package registry is the named-benchmark catalogue behind the service's
// benchmark resolution and the CLIs' -benchmark flags: every embedded
// ITC'02-style digital SOC (internal/itc02), each paired with a
// mixed-signal variant built the way p93791m augments p93791 — the
// digital SOC plus a size-matched subset of the paper's five analog
// cores (internal/analog).
//
// Entries come in pairs: "<name>" is the digital-only SOC (loadable and
// formattable, but not plannable — the planner needs analog cores) and
// "<name>m" is the plannable mixed-signal design. Lookup returns a fresh
// copy on every call, so callers may mutate freely; two lookups of the
// same name always hash identically (core.DesignHash), which is what
// lets the serving layer cache benchmark requests by content.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/itc02"
)

// Entry describes one named benchmark of the registry.
type Entry struct {
	// Name is the registry key, e.g. "d695" or "p93791m".
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// Modules counts the digital modules, including the SOC-level
	// module 0.
	Modules int
	// AnalogCores counts the embedded analog cores; 0 marks a
	// digital-only entry, which cannot be planned.
	AnalogCores int
	// TestVolume is the digital test-data volume in bit-cycles
	// (itc02.TestDataVolume), the registry's size yardstick.
	TestVolume int64
}

// benchmark is one registry row: constructors, never shared values, so
// every Lookup hands out an independent copy.
type benchmark struct {
	desc    string
	digital func() *itc02.SOC
	analog  []string // paper-core names attached to the "m" variant
}

// benchmarks maps the digital family name to its row; the registry
// serves both "<name>" and "<name>m" from it. The analog subsets grow
// with the SOC: small SOCs get two cores (the smallest candidate set the
// paper's policy admits), the stress cases get all five of Table 2.
var benchmarks = map[string]benchmark{
	"d281":    {"8 digital cores, two orders below d695; the demo-size benchmark", itc02.D281, []string{"C", "E"}},
	"d695":    {"10 ISCAS-derived cores, the ITC'02 family's small circuit", itc02.D695, []string{"A", "B", "E"}},
	"g1023":   {"14 modest cores with no dominating giant, the mid-size regime", itc02.G1023, []string{"A", "B", "C", "E"}},
	"p93791":  {"32 cores, ~28M bit-cycles; the paper's experimental SOC", itc02.P93791, []string{"A", "B", "C", "D", "E"}},
	"t512505": {"31 cores dominated by one giant scan core; the bottleneck-bound stress case", itc02.T512505, []string{"A", "B", "C", "D", "E"}},
}

// paperCores returns fresh copies of the named Table 2 cores, in the
// order given.
func paperCores(names []string) []*analog.Core {
	all := analog.PaperCores()
	byName := make(map[string]*analog.Core, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	out := make([]*analog.Core, 0, len(names))
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			panic(fmt.Sprintf("registry: no paper core %q", n))
		}
		out = append(out, c)
	}
	return out
}

// Names returns every registry key, sorted.
func Names() []string {
	names := make([]string, 0, 2*len(benchmarks))
	for base := range benchmarks {
		names = append(names, base, base+"m")
	}
	sort.Strings(names)
	return names
}

// Entries describes every benchmark, sorted by name.
func Entries() []Entry {
	entries := make([]Entry, 0, 2*len(benchmarks))
	for base, b := range benchmarks {
		soc := b.digital()
		var volume int64
		for _, m := range soc.Modules {
			volume += m.TestDataVolume()
		}
		digital := Entry{
			Name:        base,
			Description: b.desc + " (digital only)",
			Modules:     len(soc.Modules),
			TestVolume:  volume,
		}
		mixed := Entry{
			Name:        base + "m",
			Description: b.desc + fmt.Sprintf(" + %d analog cores", len(b.analog)),
			Modules:     len(soc.Modules),
			AnalogCores: len(b.analog),
			TestVolume:  volume,
		}
		entries = append(entries, digital, mixed)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries
}

// Lookup returns a fresh copy of the named benchmark design. For a
// digital-only name the result has no analog cores and cannot be
// planned; callers that need a plannable design should resolve the "m"
// variant. Unknown names error with the available names listed.
func Lookup(name string) (*core.Design, error) {
	base, mixed := strings.CutSuffix(name, "m")
	b, ok := benchmarks[name]
	if ok {
		// The digital name itself (no "m" suffix stripped).
		return &core.Design{Name: name, Digital: b.digital()}, nil
	}
	if mixed {
		if b, ok = benchmarks[base]; ok {
			return &core.Design{
				Name:    name,
				Digital: b.digital(),
				Analog:  paperCores(b.analog),
			}, nil
		}
	}
	return nil, fmt.Errorf("registry: unknown benchmark %q (have %s)", name, strings.Join(Names(), ", "))
}
