package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Window is a window function identified by name.
type Window int

// Supported windows.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
)

func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	}
	return fmt.Sprintf("Window(%d)", int(w))
}

// Coefficients returns the n window coefficients.
func (w Window) Coefficients(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for i := range out {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		switch w {
		case Hann:
			out[i] = 0.5 * (1 - math.Cos(x))
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(x)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
		default:
			out[i] = 1
		}
	}
	return out
}

// coherentGain is the mean of the window, which scales tone amplitudes.
func coherentGain(coeffs []float64) float64 {
	s := 0.0
	for _, c := range coeffs {
		s += c
	}
	return s / float64(len(coeffs))
}

// Spectrum is a single-sided magnitude spectrum of a real signal.
type Spectrum struct {
	Fs   float64   // sample rate, Hz
	Freq []float64 // bin center frequencies, Hz (0 .. fs/2)
	Mag  []float64 // linear amplitude estimate per bin
}

// NewSpectrum computes the single-sided amplitude spectrum of x using
// the given window. Amplitudes are corrected for the window's coherent
// gain, so an A·cos tone on an exact bin reads ≈ A.
func NewSpectrum(x []float64, fs float64, w Window) (*Spectrum, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("dsp: empty signal")
	}
	if fs <= 0 {
		return nil, fmt.Errorf("dsp: sample rate %v <= 0", fs)
	}
	n := len(x)
	coeffs := w.Coefficients(n)
	cg := coherentGain(coeffs)
	windowed := make([]float64, n)
	for i, v := range x {
		windowed[i] = v * coeffs[i]
	}
	bins := FFTReal(windowed)
	half := n/2 + 1
	s := &Spectrum{Fs: fs, Freq: make([]float64, half), Mag: make([]float64, half)}
	for k := 0; k < half; k++ {
		s.Freq[k] = float64(k) * fs / float64(n)
		scale := 2.0
		if k == 0 || (n%2 == 0 && k == n/2) {
			scale = 1.0
		}
		s.Mag[k] = scale * cmplx.Abs(bins[k]) / (float64(n) * cg)
	}
	return s, nil
}

// MagDB returns the magnitude of bin k in dB relative to unit amplitude,
// flooring at -200 dB.
func (s *Spectrum) MagDB(k int) float64 { return AmplitudeDB(s.Mag[k]) }

// AmplitudeDB converts a linear amplitude to dB with a -200 dB floor.
func AmplitudeDB(a float64) float64 {
	if a <= 1e-10 {
		return -200
	}
	return 20 * math.Log10(a)
}

// BinAt returns the index of the bin whose center is closest to freq.
func (s *Spectrum) BinAt(freq float64) int {
	if len(s.Freq) == 0 {
		return 0
	}
	step := s.Fs / float64(2*(len(s.Freq)-1))
	if step <= 0 {
		return 0
	}
	k := int(freq/step + 0.5)
	if k < 0 {
		k = 0
	}
	if k >= len(s.Freq) {
		k = len(s.Freq) - 1
	}
	return k
}

// Peak is a local spectral maximum.
type Peak struct {
	Freq float64
	Mag  float64
}

// Peaks returns the count highest local maxima above the given linear
// magnitude floor, sorted by descending magnitude.
func (s *Spectrum) Peaks(count int, floor float64) []Peak {
	var peaks []Peak
	for k := 1; k < len(s.Mag)-1; k++ {
		if s.Mag[k] >= floor && s.Mag[k] >= s.Mag[k-1] && s.Mag[k] > s.Mag[k+1] {
			peaks = append(peaks, Peak{Freq: s.Freq[k], Mag: s.Mag[k]})
		}
	}
	sort.Slice(peaks, func(a, b int) bool {
		if peaks[a].Mag != peaks[b].Mag {
			return peaks[a].Mag > peaks[b].Mag
		}
		return peaks[a].Freq < peaks[b].Freq
	})
	if len(peaks) > count {
		peaks = peaks[:count]
	}
	return peaks
}

// THD computes total harmonic distortion of a signal dominated by a tone
// at f0: the ratio (in dB, negative for clean signals) of the RMS of
// harmonics 2..maxHarmonic to the fundamental, each measured by
// Goertzel. Harmonics beyond fs/2 are ignored.
func THD(x []float64, f0, fs float64, maxHarmonic int) (float64, error) {
	if f0 <= 0 {
		return 0, fmt.Errorf("dsp: fundamental %v <= 0", f0)
	}
	fund, err := ToneMagnitude(x, f0, fs)
	if err != nil {
		return 0, err
	}
	if fund == 0 {
		return 0, fmt.Errorf("dsp: no fundamental at %v Hz", f0)
	}
	var sum float64
	for h := 2; h <= maxHarmonic; h++ {
		f := f0 * float64(h)
		if f > fs/2 {
			break
		}
		m, err := ToneMagnitude(x, f, fs)
		if err != nil {
			return 0, err
		}
		sum += m * m
	}
	return AmplitudeDB(math.Sqrt(sum) / fund), nil
}

// RMS returns the root-mean-square value of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}
