// Package dsp provides the signal-analysis substrate for the analog
// wrapper experiments: discrete Fourier transforms (radix-2 and
// Bluestein, so any length works, including the paper's 4551 samples),
// window functions, magnitude spectra in dB, single-tone measurement via
// the Goertzel algorithm, THD, and low-pass cutoff-frequency
// extrapolation from multi-tone gain measurements (Section 5, Figure 5).
//
// Everything is stdlib-only and deterministic.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Power-of-two lengths use an iterative radix-2 kernel; other
// lengths use Bluestein's chirp-z algorithm, which reduces to three
// power-of-two FFTs. Lengths 0 and 1 are returned as copies.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT returns the inverse DFT of x, scaled by 1/n so that
// IFFT(FFT(x)) == x.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	n := float64(len(out))
	if n > 0 {
		for i := range out {
			out[i] /= complex(n, 0)
		}
	}
	return out
}

// FFTReal transforms a real signal.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	fftInPlace(c, false)
	return c
}

func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// radix2 is the iterative Cooley-Tukey kernel for power-of-two lengths.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, using
// radix-2 FFTs of length m ≥ 2n-1.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign·iπk²/n). Compute k² mod 2n to avoid the
	// precision loss of huge k² in the angle.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		k2 := int64(k) * int64(k) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(k2)/float64(n))
	}

	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * chirp[k]
	}
}

// Goertzel measures the DFT coefficient of x at an arbitrary frequency
// (in Hz, given the sample rate fs) without computing the whole
// transform. It returns the complex amplitude normalized so that a pure
// cosine of amplitude A at exactly that frequency yields magnitude ≈ A/2
// times n... more precisely the raw DFT value; use ToneMagnitude for an
// amplitude estimate.
func Goertzel(x []float64, freq, fs float64) (complex128, error) {
	if fs <= 0 {
		return 0, fmt.Errorf("dsp: sample rate %v <= 0", fs)
	}
	if freq < 0 || freq > fs/2 {
		return 0, fmt.Errorf("dsp: frequency %v outside [0, fs/2=%v]", freq, fs/2)
	}
	n := len(x)
	if n == 0 {
		return 0, fmt.Errorf("dsp: empty signal")
	}
	w := 2 * math.Pi * freq / fs
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	re := s1 - s2*math.Cos(w)
	im := s2 * math.Sin(w)
	return complex(re, im), nil
}

// ToneMagnitude estimates the amplitude of the tone at freq in x: the
// Goertzel magnitude scaled by 2/n (exact for integer-bin tones, a close
// estimate otherwise).
func ToneMagnitude(x []float64, freq, fs float64) (float64, error) {
	g, err := Goertzel(x, freq, fs)
	if err != nil {
		return 0, err
	}
	return 2 * cmplx.Abs(g) / float64(len(x)), nil
}
