package dsp

import (
	"fmt"
	"math"
)

// GainPoint is one measured tone gain of a filter under test: the ratio
// of output to input amplitude at a stimulus frequency.
type GainPoint struct {
	Freq float64 // Hz
	Gain float64 // linear |H(f)|, relative to passband
}

// EstimateCutoff extrapolates the -3 dB cutoff frequency of a low-pass
// filter from a handful of tone gain measurements, the way the paper's
// fc test works (Section 5: "The frequency spectrum of the resulting
// signal is used to extrapolate the cut-off frequency of the filter").
//
// It fits the Butterworth magnitude model
//
//	|H(f)| = g0 / sqrt(1 + (f/fc)^(2·order))
//
// to the measurements by minimizing squared log-gain error over fc (and
// the passband gain g0), using a dense geometric grid followed by golden
// -section refinement. order is the filter order (≥1); measurements need
// at least one point meaningfully below and one above the cutoff region
// to be informative, but the fit itself only requires two points.
func EstimateCutoff(points []GainPoint, order int) (float64, error) {
	if len(points) < 2 {
		return 0, fmt.Errorf("dsp: cutoff fit needs >= 2 gain points, got %d", len(points))
	}
	if order < 1 {
		return 0, fmt.Errorf("dsp: filter order %d < 1", order)
	}
	var fmin, fmax float64
	for i, p := range points {
		if p.Freq <= 0 || p.Gain <= 0 {
			return 0, fmt.Errorf("dsp: gain point %d not positive: %+v", i, p)
		}
		if fmin == 0 || p.Freq < fmin {
			fmin = p.Freq
		}
		if p.Freq > fmax {
			fmax = p.Freq
		}
	}

	err2 := func(fc float64) float64 {
		// For fixed fc the optimal log g0 is the mean residual.
		var sum float64
		logs := make([]float64, len(points))
		for i, p := range points {
			model := -0.5 * math.Log(1+math.Pow(p.Freq/fc, float64(2*order)))
			logs[i] = math.Log(p.Gain) - model
			sum += logs[i]
		}
		mean := sum / float64(len(points))
		var e float64
		for _, l := range logs {
			d := l - mean
			e += d * d
		}
		return e
	}

	// Grid over a generous range around the measured band.
	lo, hi := fmin/20, fmax*20
	const gridSteps = 400
	bestFc, bestE := lo, math.Inf(1)
	ratio := math.Pow(hi/lo, 1/float64(gridSteps))
	f := lo
	for i := 0; i <= gridSteps; i++ {
		if e := err2(f); e < bestE {
			bestE, bestFc = e, f
		}
		f *= ratio
	}

	// Golden-section refinement around the best grid cell.
	a, b := bestFc/ratio, bestFc*ratio
	const phi = 0.6180339887498949
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	e1, e2 := err2(x1), err2(x2)
	for i := 0; i < 80 && (b-a)/bestFc > 1e-9; i++ {
		if e1 < e2 {
			b, x2, e2 = x2, x1, e1
			x1 = b - phi*(b-a)
			e1 = err2(x1)
		} else {
			a, x1, e1 = x1, x2, e2
			x2 = a + phi*(b-a)
			e2 = err2(x2)
		}
	}
	return (a + b) / 2, nil
}

// GainAt evaluates the order-n Butterworth magnitude model at f for a
// cutoff fc, with unit passband gain. It is the model EstimateCutoff
// fits and is exported for tests and examples.
func GainAt(f, fc float64, order int) float64 {
	return 1 / math.Sqrt(1+math.Pow(f/fc, float64(2*order)))
}
