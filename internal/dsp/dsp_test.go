package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFFTKnownValues(t *testing.T) {
	// DFT of [1,0,0,0] is [1,1,1,1].
	x := []complex128{1, 0, 0, 0}
	got := FFT(x)
	for i, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", i, v)
		}
	}
	// DFT of a constant is an impulse at DC.
	x = []complex128{2, 2, 2, 2}
	got = FFT(x)
	if cmplx.Abs(got[0]-8) > 1e-12 {
		t.Errorf("DC bin = %v, want 8", got[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(got[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", i, got[i])
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 12, 16, 31, 37, 64, 100} {
		x := make([]complex128, n)
		for i := range x {
			// Deterministic pseudo-random-ish values.
			x[i] = complex(math.Sin(float64(3*i+1)), math.Cos(float64(7*i+2)))
		}
		got := FFT(x)
		for k := 0; k < n; k++ {
			var want complex128
			for j := 0; j < n; j++ {
				ang := -2 * math.Pi * float64(k*j) / float64(n)
				want += x[j] * cmplx.Rect(1, ang)
			}
			if cmplx.Abs(got[k]-want) > 1e-8*float64(n) {
				t.Fatalf("n=%d bin %d: got %v want %v", n, k, got[k], want)
			}
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(re, im []float64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		x := make([]complex128, n)
		for i := range x {
			var r, m float64
			if i < len(re) {
				r = math.Mod(re[i], 1000)
				if math.IsNaN(r) || math.IsInf(r, 0) {
					r = 1
				}
			}
			if i < len(im) {
				m = math.Mod(im[i], 1000)
				if math.IsNaN(m) || math.IsInf(m, 0) {
					m = 1
				}
			}
			x[i] = complex(r, m)
		}
		back := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-6*(1+cmplx.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParseval(t *testing.T) {
	// Energy conservation for the paper's sample count (4551, non power
	// of two, exercises Bluestein).
	n := 4551
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		v := math.Sin(2*math.Pi*0.013*float64(i)) + 0.3*math.Cos(2*math.Pi*0.17*float64(i))
		x[i] = complex(v, 0)
		timeEnergy += v * v
	}
	bins := FFT(x)
	var freqEnergy float64
	for _, b := range bins {
		freqEnergy += real(b)*real(b) + imag(b)*imag(b)
	}
	freqEnergy /= float64(n)
	if !almostEqual(timeEnergy, freqEnergy, 1e-6*timeEnergy) {
		t.Errorf("Parseval violated: time %v vs freq %v", timeEnergy, freqEnergy)
	}
}

func TestGoertzelMeasuresTone(t *testing.T) {
	fs := 1.7e6
	n := 4551
	f0 := 60e3
	x := make([]float64, n)
	for i := range x {
		x[i] = 1.25 * math.Cos(2*math.Pi*f0*float64(i)/fs)
	}
	mag, err := ToneMagnitude(x, f0, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mag, 1.25, 0.01) {
		t.Errorf("tone magnitude = %v, want 1.25", mag)
	}
	// A frequency far from the tone reads near zero.
	m2, err := ToneMagnitude(x, 400e3, fs)
	if err != nil {
		t.Fatal(err)
	}
	if m2 > 0.02 {
		t.Errorf("off-tone magnitude = %v, want ~0", m2)
	}
	if _, err := Goertzel(x, -1, fs); err == nil {
		t.Error("negative frequency accepted")
	}
	if _, err := Goertzel(x, fs, fs); err == nil {
		t.Error("frequency above Nyquist accepted")
	}
	if _, err := Goertzel(nil, 0, fs); err == nil {
		t.Error("empty signal accepted")
	}
	if _, err := Goertzel(x, 1000, 0); err == nil {
		t.Error("zero fs accepted")
	}
}

func TestSpectrumToneAmplitude(t *testing.T) {
	fs := 1024.0
	n := 1024
	x := make([]float64, n)
	for i := range x {
		// Exact-bin tone at 128 Hz, amplitude 0.7.
		x[i] = 0.7 * math.Cos(2*math.Pi*128*float64(i)/fs)
	}
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		s, err := NewSpectrum(x, fs, w)
		if err != nil {
			t.Fatal(err)
		}
		k := s.BinAt(128)
		if s.Freq[k] != 128 {
			t.Errorf("%v: BinAt(128) -> %v Hz", w, s.Freq[k])
		}
		if !almostEqual(s.Mag[k], 0.7, 0.02) {
			t.Errorf("%v: tone amplitude = %v, want 0.7", w, s.Mag[k])
		}
	}
}

func TestSpectrumPeaks(t *testing.T) {
	fs := 2048.0
	n := 2048
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) / fs
		x[i] = math.Cos(2*math.Pi*100*ti) + 0.5*math.Cos(2*math.Pi*300*ti) + 0.25*math.Cos(2*math.Pi*500*ti)
	}
	s, err := NewSpectrum(x, fs, Hann)
	if err != nil {
		t.Fatal(err)
	}
	peaks := s.Peaks(3, 0.05)
	if len(peaks) != 3 {
		t.Fatalf("peaks = %v", peaks)
	}
	wantFreqs := []float64{100, 300, 500}
	for i, p := range peaks {
		if math.Abs(p.Freq-wantFreqs[i]) > 2 {
			t.Errorf("peak %d at %v Hz, want %v", i, p.Freq, wantFreqs[i])
		}
	}
}

func TestSpectrumErrors(t *testing.T) {
	if _, err := NewSpectrum(nil, 100, Hann); err == nil {
		t.Error("empty signal accepted")
	}
	if _, err := NewSpectrum([]float64{1, 2}, 0, Hann); err == nil {
		t.Error("zero fs accepted")
	}
}

func TestTHD(t *testing.T) {
	fs := 65536.0
	n := 8192
	clean := make([]float64, n)
	dirty := make([]float64, n)
	for i := range clean {
		ti := float64(i) / fs
		clean[i] = math.Sin(2 * math.Pi * 1024 * ti)
		// 1% second harmonic, 0.5% third.
		dirty[i] = clean[i] + 0.01*math.Sin(2*math.Pi*2048*ti) + 0.005*math.Sin(2*math.Pi*3072*ti)
	}
	thdClean, err := THD(clean, 1024, fs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if thdClean > -80 {
		t.Errorf("clean THD = %v dB, want < -80", thdClean)
	}
	thdDirty, err := THD(dirty, 1024, fs, 5)
	if err != nil {
		t.Fatal(err)
	}
	// sqrt(0.01^2+0.005^2) = 0.01118 -> -39.03 dB.
	if !almostEqual(thdDirty, -39.03, 0.2) {
		t.Errorf("dirty THD = %v dB, want about -39.03", thdDirty)
	}
	if _, err := THD(clean, 0, fs, 5); err == nil {
		t.Error("zero fundamental accepted")
	}
}

func TestAmplitudeDBFloor(t *testing.T) {
	if got := AmplitudeDB(0); got != -200 {
		t.Errorf("AmplitudeDB(0) = %v", got)
	}
	if got := AmplitudeDB(1); got != 0 {
		t.Errorf("AmplitudeDB(1) = %v", got)
	}
	if got := AmplitudeDB(10); !almostEqual(got, 20, 1e-12) {
		t.Errorf("AmplitudeDB(10) = %v", got)
	}
}

func TestEstimateCutoffExact(t *testing.T) {
	// Synthetic measurements straight from the model recover fc.
	for _, order := range []int{1, 2, 4} {
		fc := 61e3
		var pts []GainPoint
		for _, f := range []float64{10e3, 30e3, 60e3, 120e3, 200e3} {
			pts = append(pts, GainPoint{Freq: f, Gain: 0.9 * GainAt(f, fc, order)})
		}
		got, err := EstimateCutoff(pts, order)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-fc)/fc > 0.001 {
			t.Errorf("order %d: fc = %v, want %v", order, got, fc)
		}
	}
}

func TestEstimateCutoffNoisy(t *testing.T) {
	// 2% gain errors should move the estimate only a few percent.
	fc := 58e3
	pts := []GainPoint{
		{Freq: 20e3, Gain: 1.02 * GainAt(20e3, fc, 2)},
		{Freq: 60e3, Gain: 0.98 * GainAt(60e3, fc, 2)},
		{Freq: 120e3, Gain: 1.01 * GainAt(120e3, fc, 2)},
	}
	got, err := EstimateCutoff(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-fc)/fc > 0.08 {
		t.Errorf("fc = %v, want within 8%% of %v", got, fc)
	}
}

func TestEstimateCutoffErrors(t *testing.T) {
	if _, err := EstimateCutoff(nil, 2); err == nil {
		t.Error("no points accepted")
	}
	if _, err := EstimateCutoff([]GainPoint{{1, 1}}, 2); err == nil {
		t.Error("single point accepted")
	}
	if _, err := EstimateCutoff([]GainPoint{{1, 1}, {2, 0.5}}, 0); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := EstimateCutoff([]GainPoint{{0, 1}, {2, 0.5}}, 2); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := EstimateCutoff([]GainPoint{{1, -1}, {2, 0.5}}, 2); err == nil {
		t.Error("negative gain accepted")
	}
}

func TestWindowsNormalized(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		c := w.Coefficients(128)
		if len(c) != 128 {
			t.Fatalf("%v: %d coefficients", w, len(c))
		}
		for _, v := range c {
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("%v: coefficient %v out of [0,1]", w, v)
			}
		}
		if w.Coefficients(1)[0] != 1 {
			t.Errorf("%v: single coefficient should be 1", w)
		}
	}
	if Rectangular.String() == "" || Window(99).String() == "" {
		t.Error("window String broken")
	}
}

func TestRMS(t *testing.T) {
	if got := RMS(nil); got != 0 {
		t.Errorf("RMS(nil) = %v", got)
	}
	x := make([]float64, 10000)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 100)
	}
	if !almostEqual(RMS(x), 1/math.Sqrt2, 1e-3) {
		t.Errorf("RMS(sin) = %v, want %v", RMS(x), 1/math.Sqrt2)
	}
}

func BenchmarkFFT4551(b *testing.B) {
	x := make([]complex128, 4551)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFT4096(b *testing.B) {
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkGoertzel4551(b *testing.B) {
	x := make([]float64, 4551)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Goertzel(x, 60e3, 1.7e6); err != nil {
			b.Fatal(err)
		}
	}
}
