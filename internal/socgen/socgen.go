// Package socgen is the seeded synthetic-design supply: a deterministic
// random generator of valid mixed-signal SOCs, the scenario source
// behind msoc-gen, the property-based test layer, and the fuzz corpora.
//
// Determinism is the contract: the same Options (seed included) always
// produce the same design, down to the bytes of its .soc rendering and
// its canonical JSON — the generator draws from a single math/rand
// stream in a fixed order and never iterates a map. Validity is the
// other contract: every generated design passes itc02 and core
// validation and round-trips through parse→write→parse, enforced by
// this package's tests and re-checked over hundreds of seeds by
// internal/proptest.
package socgen

import (
	"fmt"
	"math/rand"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/itc02"
)

// Class is a design size class: it selects the default ranges every
// unset Options knob draws from.
type Class int

// The size classes, smallest first. Small designs plan in milliseconds
// (the property-suite workhorse); Large approaches p93791's shape.
const (
	Small Class = iota
	Medium
	Large
)

// String names the class the way msoc-gen's -class flag spells it.
func (c Class) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass parses a -class flag value.
func ParseClass(s string) (Class, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return 0, fmt.Errorf("socgen: unknown size class %q (small, medium or large)", s)
}

// Options are the generator's knobs. Only Seed is required; every other
// field falls back to its Class default when zero.
type Options struct {
	// Seed selects the design; equal Options generate byte-identical
	// designs.
	Seed int64
	// Name is the SOC name; empty means "gen<seed>".
	Name string
	// Class selects the default size ranges (default Small).
	Class Class
	// Modules fixes the digital core count (excluding the SOC-level
	// module 0); 0 draws it from the class range.
	Modules int
	// AnalogCores fixes the analog core count; 0 draws it from the class
	// range. Values outside [2, 6] error: below 2 the paper's candidate
	// policy admits no sharing configuration, above 6 the Bell-number
	// candidate enumeration explodes.
	AnalogCores int
	// MaxScanChains bounds a module's scan chain count; 0 means the
	// class default. Roughly a quarter of modules come out combinational
	// regardless.
	MaxScanChains int
	// MaxChainLength bounds each scan chain's flip-flop count; 0 means
	// the class default.
	MaxChainLength int
	// MaxPatterns bounds each test's pattern count; 0 means the class
	// default.
	MaxPatterns int
	// MaxIO bounds a module's functional input and output terminal
	// counts; 0 means the class default.
	MaxIO int
}

// classDefaults are the per-class knob ranges.
type classDefaults struct {
	minModules, maxModules int
	minAnalog, maxAnalog   int
	maxScanChains          int
	maxChainLength         int
	maxPatterns            int
	maxIO                  int
}

func defaultsFor(c Class) (classDefaults, error) {
	switch c {
	case Small:
		return classDefaults{6, 12, 2, 3, 4, 120, 300, 64}, nil
	case Medium:
		return classDefaults{16, 28, 3, 4, 12, 400, 700, 160}, nil
	case Large:
		return classDefaults{30, 48, 4, 6, 32, 800, 1100, 320}, nil
	}
	return classDefaults{}, fmt.Errorf("socgen: unknown size class %d", int(c))
}

// maxAnalogTAMWidth bounds every generated analog test's TAM width, so
// generated designs are plannable at any SOC TAM width of at least 6
// (core.MinTAMWidth reports the per-design exact bound).
const maxAnalogTAMWidth = 6

// resolved are the fully-determined generation parameters.
type resolved struct {
	name    string
	modules int
	analog  int
	d       classDefaults
}

// resolve applies the class defaults, validates the knobs, and draws
// the counts that the class ranges leave open.
func resolve(opt Options, r *rand.Rand) (resolved, error) {
	d, err := defaultsFor(opt.Class)
	if err != nil {
		return resolved{}, err
	}
	if opt.MaxScanChains > 0 {
		d.maxScanChains = opt.MaxScanChains
	}
	if opt.MaxChainLength > 0 {
		d.maxChainLength = opt.MaxChainLength
	}
	if opt.MaxPatterns > 0 {
		d.maxPatterns = opt.MaxPatterns
	}
	if opt.MaxIO > 0 {
		d.maxIO = opt.MaxIO
	}
	if opt.Modules < 0 || opt.AnalogCores < 0 {
		return resolved{}, fmt.Errorf("socgen: negative module or analog-core count in %+v", opt)
	}
	p := resolved{name: opt.Name, d: d}
	if p.name == "" {
		p.name = fmt.Sprintf("gen%d", opt.Seed)
	}
	p.modules = opt.Modules
	if p.modules == 0 {
		p.modules = d.minModules + r.Intn(d.maxModules-d.minModules+1)
	}
	if p.modules > 512 {
		return resolved{}, fmt.Errorf("socgen: %d modules exceeds the 512 bound", p.modules)
	}
	p.analog = opt.AnalogCores
	if p.analog == 0 {
		p.analog = d.minAnalog + r.Intn(d.maxAnalog-d.minAnalog+1)
	}
	if p.analog < 2 || p.analog > 6 {
		return resolved{}, fmt.Errorf("socgen: %d analog cores outside [2, 6]", p.analog)
	}
	return p, nil
}

// Generate returns the seeded synthetic mixed-signal design for opt:
// a digital SOC (identical to GenerateSOC's for the same Options) plus
// 2-6 analog cores with specification tests. The result always passes
// core.Design.Validate.
func Generate(opt Options) (*core.Design, error) {
	r := rand.New(rand.NewSource(opt.Seed))
	p, err := resolve(opt, r)
	if err != nil {
		return nil, err
	}
	soc := genSOC(r, p)
	cores := genAnalog(r, p)
	return &core.Design{Name: p.name, Digital: soc, Analog: cores}, nil
}

// GenerateSOC returns only the digital half of Generate's design for
// opt — byte-identical .soc output for equal Options. The result always
// passes itc02 validation and round-trips through Format and Parse.
func GenerateSOC(opt Options) (*itc02.SOC, error) {
	r := rand.New(rand.NewSource(opt.Seed))
	p, err := resolve(opt, r)
	if err != nil {
		return nil, err
	}
	return genSOC(r, p), nil
}

// genSOC draws the digital SOC. Every module gets at least one
// TAM-delivered test with at least one pattern and at least one input
// terminal, so no generated core has a zero-time test job.
func genSOC(r *rand.Rand, p resolved) *itc02.SOC {
	s := &itc02.SOC{Name: p.name}
	s.AddModule(&itc02.Module{
		ID:      0,
		Name:    "soc",
		Level:   0,
		Inputs:  16 + r.Intn(p.d.maxIO),
		Outputs: 16 + r.Intn(p.d.maxIO),
		Bidirs:  r.Intn(p.d.maxIO/4 + 1),
	})
	for id := 1; id <= p.modules; id++ {
		m := &itc02.Module{
			ID:      id,
			Name:    fmt.Sprintf("core%02d", id),
			Level:   1,
			Inputs:  1 + r.Intn(p.d.maxIO),
			Outputs: 1 + r.Intn(p.d.maxIO),
		}
		if r.Intn(100) < 20 {
			m.Bidirs = r.Intn(p.d.maxIO/4 + 1)
		}
		// About a quarter of the modules are combinational, mirroring the
		// ITC'02 family's mix of scan and patterns-only cores.
		if r.Intn(100) >= 25 {
			chains := 1 + r.Intn(p.d.maxScanChains)
			m.Scan = make([]int, chains)
			base := 1 + r.Intn(p.d.maxChainLength)
			for i := range m.Scan {
				// Same deterministic near-equal variation the embedded
				// benchmarks use: realistic, and keeps chains balanced.
				l := base - i%7
				if l < 1 {
					l = 1
				}
				m.Scan[i] = l
			}
		}
		m.Tests = []itc02.Test{{
			ID:       1,
			Patterns: 1 + r.Intn(p.d.maxPatterns),
			ScanUse:  len(m.Scan) > 0,
			TamUse:   true,
		}}
		// A minority of cores carry a second, functional (non-scan) test.
		if r.Intn(100) < 20 {
			m.Tests = append(m.Tests, itc02.Test{
				ID:       2,
				Patterns: 1 + r.Intn(p.d.maxPatterns/4+1),
				TamUse:   true,
			})
		}
		s.AddModule(m)
	}
	return s
}

// fsTable are the sampling frequencies analog tests draw from, spanning
// the paper's Table 2 range (10 kHz to 78 MHz).
var fsTable = []analog.Hertz{
	10 * analog.KHz, 640 * analog.KHz, 1.5 * analog.MHz, 2.46 * analog.MHz,
	8 * analog.MHz, 15 * analog.MHz, 26 * analog.MHz, 78 * analog.MHz,
}

// testNames label generated analog tests, cycled in order.
var testNames = []string{"G", "fc", "THD", "IIP3", "DR", "SR", "Voffset", "phimis"}

// genAnalog draws the analog cores: 1-4 specification tests each, with
// bounded TAM widths (maxAnalogTAMWidth) and sane stimulus bands, so
// every core passes analog validation and every test's fixed TAM job is
// packable at moderate SOC widths.
func genAnalog(r *rand.Rand, p resolved) []*analog.Core {
	cores := make([]*analog.Core, p.analog)
	for ci := range cores {
		n := 1 + r.Intn(4)
		tests := make([]analog.Test, n)
		for ti := range tests {
			fs := fsTable[r.Intn(len(fsTable))]
			finHigh := fs / analog.Hertz(2+r.Intn(6))
			finLow := finHigh / analog.Hertz(1+r.Intn(4))
			tests[ti] = analog.Test{
				Name:       fmt.Sprintf("%s%d", testNames[(ci+ti)%len(testNames)], ti),
				FinLow:     finLow,
				FinHigh:    finHigh,
				Fsample:    fs,
				Cycles:     int64(500 + r.Intn(150000)),
				TAMWidth:   1 + r.Intn(maxAnalogTAMWidth),
				Resolution: 8 + 2*r.Intn(4),
			}
		}
		cores[ci] = &analog.Core{
			Name:  fmt.Sprintf("AC%d", ci),
			Kind:  "synthetic",
			Tests: tests,
		}
	}
	return cores
}
