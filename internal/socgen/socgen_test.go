package socgen

import (
	"strings"
	"testing"

	"mixsoc/internal/core"
	"mixsoc/internal/itc02"
)

// TestByteIdenticalPerSeed pins the determinism contract: equal Options
// generate byte-identical .soc text and canonical JSON, and different
// seeds generate different designs.
func TestByteIdenticalPerSeed(t *testing.T) {
	for _, class := range []Class{Small, Medium, Large} {
		opt := Options{Seed: 42, Class: class}
		a, err := Generate(opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(opt)
		if err != nil {
			t.Fatal(err)
		}
		if itc02.Format(a.Digital) != itc02.Format(b.Digital) {
			t.Fatalf("%v: same seed, different .soc bytes", class)
		}
		ja, err := core.MarshalDesign(a)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := core.MarshalDesign(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(ja) != string(jb) {
			t.Fatalf("%v: same seed, different canonical JSON", class)
		}
		c, err := Generate(Options{Seed: 43, Class: class})
		if err != nil {
			t.Fatal(err)
		}
		if itc02.Format(a.Digital) == itc02.Format(c.Digital) {
			t.Fatalf("%v: different seeds, identical .soc bytes", class)
		}
	}
}

// TestGenerateSOCMatchesGenerate checks the digital half is shared:
// GenerateSOC emits exactly Generate's Digital for the same Options.
func TestGenerateSOCMatchesGenerate(t *testing.T) {
	opt := Options{Seed: 7, Class: Medium}
	d, err := Generate(opt)
	if err != nil {
		t.Fatal(err)
	}
	soc, err := GenerateSOC(opt)
	if err != nil {
		t.Fatal(err)
	}
	if itc02.Format(soc) != itc02.Format(d.Digital) {
		t.Fatal("GenerateSOC diverges from Generate's digital half")
	}
}

// TestAlwaysValidAndRoundTrips spot-checks validity and text round
// trips across classes and seeds (the 200-seed sweep lives in
// internal/proptest).
func TestAlwaysValidAndRoundTrips(t *testing.T) {
	for _, class := range []Class{Small, Medium, Large} {
		for seed := int64(0); seed < 10; seed++ {
			d, err := Generate(Options{Seed: seed, Class: class})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("%v seed %d: %v", class, seed, err)
			}
			text := itc02.Format(d.Digital)
			soc, err := itc02.Parse(strings.NewReader(text))
			if err != nil {
				t.Fatalf("%v seed %d: reparse: %v", class, seed, err)
			}
			if itc02.Format(soc) != text {
				t.Fatalf("%v seed %d: .soc round trip not stable", class, seed)
			}
			if n := len(d.Analog); n < 2 || n > 6 {
				t.Fatalf("%v seed %d: %d analog cores", class, seed, n)
			}
			for _, c := range d.Analog {
				for _, at := range c.Tests {
					if at.TAMWidth > maxAnalogTAMWidth {
						t.Fatalf("%v seed %d: analog TAM width %d", class, seed, at.TAMWidth)
					}
				}
			}
		}
	}
}

// TestKnobs checks that explicit knobs override the class defaults.
func TestKnobs(t *testing.T) {
	d, err := Generate(Options{Seed: 1, Modules: 5, AnalogCores: 2, Name: "knobbed",
		MaxScanChains: 2, MaxChainLength: 30, MaxPatterns: 10, MaxIO: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "knobbed" || d.Digital.Name != "knobbed" {
		t.Fatalf("name knob ignored: %q / %q", d.Name, d.Digital.Name)
	}
	if got := len(d.Digital.Modules); got != 6 { // 5 cores + SOC module 0
		t.Fatalf("modules knob ignored: %d modules", got)
	}
	if got := len(d.Analog); got != 2 {
		t.Fatalf("analog knob ignored: %d cores", got)
	}
	for _, m := range d.Digital.Cores() {
		if len(m.Scan) > 2 {
			t.Fatalf("MaxScanChains ignored: %d chains", len(m.Scan))
		}
		for _, l := range m.Scan {
			if l > 30 {
				t.Fatalf("MaxChainLength ignored: chain of %d", l)
			}
		}
		if m.Inputs > 8 || m.Outputs > 8 {
			t.Fatalf("MaxIO ignored: %d/%d", m.Inputs, m.Outputs)
		}
		for _, tt := range m.Tests {
			if tt.Patterns > 10 {
				t.Fatalf("MaxPatterns ignored: %d patterns", tt.Patterns)
			}
		}
	}
}

// TestBadOptions checks knob validation errors.
func TestBadOptions(t *testing.T) {
	for _, opt := range []Options{
		{Seed: 1, AnalogCores: 1},
		{Seed: 1, AnalogCores: 7},
		{Seed: 1, Modules: -1},
		{Seed: 1, Modules: 600},
		{Seed: 1, Class: Class(9)},
	} {
		if _, err := Generate(opt); err == nil {
			t.Errorf("Generate(%+v): no error", opt)
		}
	}
}

// TestParseClassRoundTrips pins the -class flag spelling.
func TestParseClassRoundTrips(t *testing.T) {
	for _, c := range []Class{Small, Medium, Large} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("huge"); err == nil {
		t.Error("ParseClass(huge): no error")
	}
}
