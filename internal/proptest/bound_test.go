package proptest

import (
	"fmt"
	"math"
	"testing"

	"mixsoc/internal/core"
	"mixsoc/internal/registry"
	"mixsoc/internal/socgen"
)

// TestBoundNeverExceedsPackedCost is the admissibility property behind
// Bounded mode, over the seeded generator: for every candidate
// configuration the exhaustive solver actually packed, the staircase
// cost lower bound must not exceed the packed cost. An inadmissible
// bound would let branch-and-bound prune the true optimum.
func TestBoundNeverExceedsPackedCost(t *testing.T) {
	for seed := int64(1); seed <= numSeeds; seed++ {
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			d, err := socgen.Generate(socgen.Options{Seed: seed, Class: socgen.Small})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			pl := core.NewPlanner(d, propWidth, propWeights)
			res, err := pl.Exhaustive()
			if err != nil {
				t.Fatalf("Exhaustive: %v", err)
			}
			for _, ev := range res.Evaluated {
				lb, err := pl.LowerBound(ev.Partition, res.AllShare)
				if err != nil {
					t.Fatalf("LowerBound: %v", err)
				}
				if lb > ev.Cost {
					t.Fatalf("bound %v exceeds packed cost %v for %s",
						lb, ev.Cost, ev.Partition.FormatShared(d.AnalogNames()))
				}
			}
			checkBoundedExact(t, d, propWidth, propWeights)
		})
	}
}

// checkBoundedExact asserts Bounded mode is an exact transformation on
// d: same best cost bits, same selected configuration, and the pruned
// candidates account exactly for the saved TAM runs, for both solvers.
func checkBoundedExact(t *testing.T, d *core.Design, width int, w core.Weights) {
	t.Helper()
	names := d.AnalogNames()
	type solver struct {
		name string
		run  func(pl *core.Planner) (*core.Result, error)
	}
	for _, s := range []solver{
		{"exhaustive", func(pl *core.Planner) (*core.Result, error) { return pl.Exhaustive() }},
		{"cost-optimizer", func(pl *core.Planner) (*core.Result, error) { return pl.CostOptimizer() }},
	} {
		plain, err := s.run(core.NewPlanner(d, width, w))
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		b := core.NewPlanner(d, width, w)
		b.Bounded = true
		bounded, err := s.run(b)
		if err != nil {
			t.Fatalf("bounded %s: %v", s.name, err)
		}
		if math.Float64bits(bounded.Best.Cost) != math.Float64bits(plain.Best.Cost) {
			t.Errorf("%s: bounded cost %v != unbounded %v", s.name, bounded.Best.Cost, plain.Best.Cost)
		}
		if got, want := bounded.Best.Label(names), plain.Best.Label(names); got != want {
			t.Errorf("%s: bounded selected %s, unbounded %s", s.name, got, want)
		}
		if bounded.NEval+bounded.Pruned != plain.NEval {
			t.Errorf("%s: NEval %d + pruned %d != unbounded NEval %d",
				s.name, bounded.NEval, bounded.Pruned, plain.NEval)
		}
		if plain.Pruned != 0 {
			t.Errorf("%s: unbounded run reports %d pruned candidates", s.name, plain.Pruned)
		}
	}
}

// TestBoundedMatchesUnboundedOnRegistry is the replay pin on the real
// benchmarks: on all five plannable registry designs, bounded-mode
// results equal unbounded results bit for bit (cost, selection), the
// pruned candidates exactly account for the NEval gap, and the bound
// actually prunes somewhere — a vacuous bound would pass everything
// else.
func TestBoundedMatchesUnboundedOnRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive registry sweeps are slow")
	}
	totalPruned := 0
	for _, name := range []string{"d281m", "d695m", "g1023m", "p93791m", "t512505m"} {
		t.Run(name, func(t *testing.T) {
			d, err := registry.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			checkBoundedExact(t, d, 32, core.Weights{Time: 0.5, Area: 0.5})
			pl := core.NewPlanner(d, 32, core.Weights{Time: 0.5, Area: 0.5})
			pl.Bounded = true
			res, err := pl.Exhaustive()
			if err != nil {
				t.Fatal(err)
			}
			totalPruned += res.Pruned
		})
	}
	if totalPruned == 0 {
		t.Error("bound pruned nothing across the whole registry")
	}
}
