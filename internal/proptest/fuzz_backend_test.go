package proptest

import (
	"testing"

	"mixsoc/internal/core"
	"mixsoc/internal/itc02"
	"mixsoc/internal/socgen"
	"mixsoc/internal/tam"
)

// FuzzPackerEquivalence asserts the cross-backend contract on fuzzed
// job lists: any parse-valid SOC (of harness-capped size) must pack
// through every backend without panicking, and every backend's schedule
// must validate, place each job exactly once, and stay at or above the
// admissible lower bound. The seeds — embedded benchmarks and msoc-gen
// output — run as regular tests; run with -fuzz=FuzzPackerEquivalence
// to explore.
func FuzzPackerEquivalence(f *testing.F) {
	f.Add(itc02.Format(itc02.D281()))
	f.Add(itc02.Format(itc02.D695()))
	f.Add(itc02.Format(itc02.G1023()))
	for seed := int64(1); seed <= 4; seed++ {
		soc, err := socgen.GenerateSOC(socgen.Options{Seed: seed, Class: socgen.Small})
		if err != nil {
			f.Fatalf("GenerateSOC: %v", err)
		}
		f.Add(itc02.Format(soc))
	}
	f.Add("SocName tiny\nTotalModules 1\nModule 0\n  Level 0\n  Inputs 4\n  Outputs 4\nEndModule\n")

	f.Fuzz(func(t *testing.T, input string) {
		soc, err := itc02.ParseString(input)
		if err != nil {
			return // rejection is fine; FuzzParse covers the parser itself
		}
		if oversized(soc) {
			return
		}
		d := &core.Design{Name: soc.Name + "-m", Digital: soc, Analog: fuzzAnalog()}
		jobs, err := core.BuildJobs(d, d.AllShare(), fuzzWidth)
		if err != nil {
			t.Fatalf("building jobs for a parse-valid SOC failed: %v\n%s", err, input)
		}
		for _, backend := range tam.Backends() {
			pk, err := tam.Lookup(backend)
			if err != nil {
				t.Fatalf("Lookup(%q): %v", backend, err)
			}
			s, err := pk.Pack(jobs, fuzzWidth)
			if err != nil {
				t.Fatalf("%s: packing a parse-valid SOC failed: %v\n%s", backend, err, input)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s: invalid schedule: %v\n%s", backend, err, input)
			}
			if len(s.Placements) != len(jobs) {
				t.Fatalf("%s: placed %d of %d jobs\n%s", backend, len(s.Placements), len(jobs), input)
			}
			if lb := tam.AdmissibleLowerBound(jobs, fuzzWidth); s.Makespan < lb {
				t.Fatalf("%s: makespan %d below admissible lower bound %d\n%s", backend, s.Makespan, lb, input)
			}
		}
	})
}
