package proptest

import (
	"testing"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/itc02"
	"mixsoc/internal/socgen"
)

// Harness caps: the planning guarantee is over SOCs of sane size. They
// keep a fuzz iteration bounded (packing is superlinear in module
// count) and keep test times inside int64 (the JETTA formula multiplies
// the longest wrapper chain by the pattern count).
const (
	fuzzMaxModules    = 48
	fuzzMaxPatterns   = 1 << 20
	fuzzMaxScanChains = 256
	fuzzMaxScanBits   = 1 << 20
	fuzzMaxTerminals  = 1 << 16
	fuzzWidth         = 16
)

// fuzzAnalog returns two fresh narrow analog cores (paper cores A and
// B; every test fits in a couple of wires), so any parse-valid digital
// SOC becomes a plannable mixed design at fuzzWidth.
func fuzzAnalog() []*analog.Core {
	all := analog.PaperCores()
	return []*analog.Core{all[0], all[1]}
}

// FuzzPlanSOC asserts the end-to-end contract behind the .soc upload
// endpoint: if itc02.Parse accepts a SOC (of harness-capped size),
// planning must not panic, must not error, and must produce a schedule
// that validates. Run with -fuzz=FuzzPlanSOC to explore; the seeds —
// embedded benchmarks and msoc-gen output — run as regular tests.
func FuzzPlanSOC(f *testing.F) {
	f.Add(itc02.Format(itc02.D281()))
	f.Add(itc02.Format(itc02.D695()))
	f.Add(itc02.Format(itc02.G1023()))
	for seed := int64(1); seed <= 4; seed++ {
		soc, err := socgen.GenerateSOC(socgen.Options{Seed: seed, Class: socgen.Small})
		if err != nil {
			f.Fatalf("GenerateSOC: %v", err)
		}
		f.Add(itc02.Format(soc))
	}
	f.Add("SocName tiny\nTotalModules 1\nModule 0\n  Level 0\n  Inputs 4\n  Outputs 4\nEndModule\n")

	f.Fuzz(func(t *testing.T, input string) {
		soc, err := itc02.ParseString(input)
		if err != nil {
			return // rejection is fine; FuzzParse covers the parser itself
		}
		if oversized(soc) {
			return
		}
		d := &core.Design{Name: soc.Name + "-m", Digital: soc, Analog: fuzzAnalog()}
		res, err := core.NewPlanner(d, fuzzWidth, core.Weights{Time: 0.5, Area: 0.5}).CostOptimizer()
		if err != nil {
			t.Fatalf("planning a parse-valid SOC failed: %v\n%s", err, input)
		}
		s, err := core.NewEvaluator(d, fuzzWidth).Schedule(res.Best.Partition)
		if err != nil {
			t.Fatalf("scheduling the chosen configuration failed: %v", err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("planner produced an invalid schedule: %v", err)
		}
	})
}

// oversized reports whether the SOC exceeds the harness caps.
func oversized(soc *itc02.SOC) bool {
	if len(soc.Modules) > fuzzMaxModules {
		return true
	}
	for _, m := range soc.Modules {
		if m.Inputs+m.Outputs+m.Bidirs > fuzzMaxTerminals {
			return true
		}
		if len(m.Scan) > fuzzMaxScanChains {
			return true
		}
		bits := 0
		for _, l := range m.Scan {
			bits += l
			if bits > fuzzMaxScanBits {
				return true
			}
		}
		for _, tst := range m.Tests {
			if tst.Patterns > fuzzMaxPatterns {
				return true
			}
		}
	}
	return false
}
