// Package proptest is a seeded property-based test layer over the whole
// planning stack. It holds no production code: its test files push
// hundreds of internal/socgen-generated designs — every one of which is
// deterministic in its seed — through parsing, wrapper design, rectangle
// packing, planning, and sweeping, asserting the structural invariants
// that must hold for any valid mixed-signal SOC, not just the embedded
// paper benchmarks:
//
//   - generated designs validate and their .soc text round-trips
//     byte-identically;
//   - wrapper staircases are strictly improving (width up, time down);
//   - packed schedules validate, place every job, and have
//     makespan = max placement end ≥ the area/serialization lower bound;
//   - planning is invariant under design JSON marshal → unmarshal;
//   - schedule makespans are non-increasing in TAM width.
//
// The seeds are fixed (1..N), so a failure reproduces exactly; the
// fuzz harness in this package explores beyond the fixed seed set.
package proptest
