package proptest

// Cross-backend differential suite: every packing backend is run over
// the same job lists — 200 fixed-seed generated designs plus all five
// mixed-signal registry benchmarks — and held to the shared schedule
// contract. The backends search the packing space along deliberately
// different trajectories (occupancy sweeps widths; rectangle orders by
// normalized diagonal), so structural agreement between them is a real
// oracle: a bug in either one shows up as a Validate failure, a missing
// or duplicated placement, or a makespan below the admissible bound.

import (
	"fmt"
	"testing"

	"mixsoc/internal/core"
	"mixsoc/internal/registry"
	"mixsoc/internal/socgen"
	"mixsoc/internal/tam"
)

// benchmarkNames are the plannable registry designs the differential
// suite packs, smallest first.
var benchmarkNames = []string{"d281m", "d695m", "g1023m", "p93791m", "t512505m"}

func TestBackendDifferential(t *testing.T) {
	for seed := int64(1); seed <= numSeeds; seed++ {
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			d, err := socgen.Generate(socgen.Options{Seed: seed, Class: socgen.Small})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			checkBackends(t, d)
		})
	}
}

func TestBackendDifferentialBenchmarks(t *testing.T) {
	for _, name := range benchmarkNames {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			d, err := registry.Lookup(name)
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}
			checkBackends(t, d)
		})
	}
}

// checkBackends packs the design's all-share configuration through
// every registered backend, asserts each schedule's invariants, then
// asserts the tournament never does worse than the best individual
// backend (it picks the smallest validated makespan by construction).
func checkBackends(t *testing.T, d *core.Design) {
	t.Helper()
	jobs, err := core.BuildJobs(d, d.AllShare(), propWidth)
	if err != nil {
		t.Fatalf("BuildJobs: %v", err)
	}
	var best int64
	for i, backend := range tam.Backends() {
		pk, err := tam.Lookup(backend)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", backend, err)
		}
		s, err := pk.Pack(jobs, propWidth)
		if err != nil {
			t.Fatalf("%s: Pack: %v", backend, err)
		}
		checkScheduleContract(t, backend, s, jobs)
		if i == 0 || s.Makespan < best {
			best = s.Makespan
		}
	}
	ts, err := core.NewTournamentPacker().Pack(jobs, propWidth)
	if err != nil {
		t.Fatalf("tournament: Pack: %v", err)
	}
	checkScheduleContract(t, "tournament", ts, jobs)
	if ts.Makespan > best {
		t.Fatalf("tournament makespan %d worse than best individual backend %d", ts.Makespan, best)
	}
}

// checkScheduleContract is the contract every backend's output must
// satisfy: the schedule validates (no wire overflow, no overlap within
// a wire or a serialization group), places every job exactly once, its
// makespan is the latest placement end, and the makespan is at least
// the admissible lower bound that holds for ANY valid schedule.
func checkScheduleContract(t *testing.T, backend string, s *tam.Schedule, jobs []*tam.Job) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("%s: schedule invalid: %v", backend, err)
	}
	if len(s.Placements) != len(jobs) {
		t.Fatalf("%s: placed %d of %d jobs", backend, len(s.Placements), len(jobs))
	}
	placed := map[string]bool{}
	var maxEnd int64
	for i := range s.Placements {
		p := &s.Placements[i]
		if placed[p.Job.ID] {
			t.Fatalf("%s: job %s placed twice", backend, p.Job.ID)
		}
		placed[p.Job.ID] = true
		if p.End > maxEnd {
			maxEnd = p.End
		}
	}
	for _, j := range jobs {
		if !placed[j.ID] {
			t.Fatalf("%s: job %s never placed", backend, j.ID)
		}
	}
	if s.Makespan != maxEnd {
		t.Fatalf("%s: makespan %d != latest placement end %d", backend, s.Makespan, maxEnd)
	}
	if lb := tam.AdmissibleLowerBound(jobs, propWidth); s.Makespan < lb {
		t.Fatalf("%s: makespan %d below admissible lower bound %d", backend, s.Makespan, lb)
	}
}
