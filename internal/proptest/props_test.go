package proptest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"mixsoc/internal/core"
	"mixsoc/internal/itc02"
	"mixsoc/internal/socgen"
	"mixsoc/internal/tam"
	"mixsoc/internal/wrapper"
)

// numSeeds designs go through the full property gauntlet. The seeds are
// fixed so any failure is reproducible with `-run 'Properties/seed042'`.
const numSeeds = 200

// propWidth is the TAM width the packing and planning properties use.
// It exceeds socgen's maximum analog TAM width, so every generated
// design is plannable at it.
const propWidth = 16

// curveWidths is the ascending width list for the monotonicity
// property.
var curveWidths = []int{8, 12, 16, 24}

var propWeights = core.Weights{Time: 0.5, Area: 0.5}

func TestGeneratedDesignProperties(t *testing.T) {
	for seed := int64(1); seed <= numSeeds; seed++ {
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			d, err := socgen.Generate(socgen.Options{Seed: seed, Class: socgen.Small})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			checkRoundTrip(t, d.Digital)
			checkStaircases(t, d)
			checkPacking(t, d)
			checkCodecInvariance(t, d)
			checkWidthMonotone(t, d)
		})
	}
}

// checkRoundTrip asserts the generated SOC validates and its .soc text
// survives format → parse → format byte-identically.
func checkRoundTrip(t *testing.T, soc *itc02.SOC) {
	t.Helper()
	if err := soc.Validate(); err != nil {
		t.Fatalf("generated SOC invalid: %v", err)
	}
	text := itc02.Format(soc)
	again, err := itc02.ParseString(text)
	if err != nil {
		t.Fatalf("generated .soc does not parse: %v", err)
	}
	if second := itc02.Format(again); second != text {
		t.Fatal("format → parse → format is not byte-identical")
	}
}

// checkStaircases asserts every digital core's Pareto staircase starts
// at width 1 and is strictly improving: widths strictly increase, times
// strictly decrease.
func checkStaircases(t *testing.T, d *core.Design) {
	t.Helper()
	for _, m := range d.Digital.Cores() {
		pts, err := wrapper.Pareto(m, propWidth)
		if err != nil {
			t.Fatalf("module %d: Pareto: %v", m.ID, err)
		}
		if len(pts) == 0 || pts[0].Width != 1 {
			t.Fatalf("module %d: staircase must start at width 1: %v", m.ID, pts)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Width <= pts[i-1].Width || pts[i].Time >= pts[i-1].Time {
				t.Fatalf("module %d: staircase not strictly improving at %d: %v", m.ID, i, pts)
			}
		}
	}
}

// checkPacking packs the all-share configuration and asserts the
// schedule's structural invariants: it validates (no wire or group
// overlap), places every job exactly once, and its makespan is both the
// latest placement end and at least the area/serialization lower bound.
func checkPacking(t *testing.T, d *core.Design) {
	t.Helper()
	jobs, err := core.BuildJobs(d, d.AllShare(), propWidth)
	if err != nil {
		t.Fatalf("BuildJobs: %v", err)
	}
	s, err := tam.Optimize(jobs, propWidth)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if len(s.Placements) != len(jobs) {
		t.Fatalf("placed %d of %d jobs", len(s.Placements), len(jobs))
	}
	placed := map[string]bool{}
	var maxEnd int64
	for i := range s.Placements {
		p := &s.Placements[i]
		if placed[p.Job.ID] {
			t.Fatalf("job %s placed twice", p.Job.ID)
		}
		placed[p.Job.ID] = true
		if p.End > maxEnd {
			maxEnd = p.End
		}
	}
	if s.Makespan != maxEnd {
		t.Fatalf("makespan %d != latest placement end %d", s.Makespan, maxEnd)
	}
	if lb := tam.LowerBound(jobs, propWidth); s.Makespan < lb {
		t.Fatalf("makespan %d below lower bound %d", s.Makespan, lb)
	}
}

// checkCodecInvariance asserts planning is invariant under the design
// JSON codec: marshal → unmarshal must preserve the design hash and
// yield a bit-identical planning result.
func checkCodecInvariance(t *testing.T, d *core.Design) {
	t.Helper()
	res1, err := core.NewPlanner(d, propWidth, propWeights).CostOptimizer()
	if err != nil {
		t.Fatalf("CostOptimizer: %v", err)
	}
	data, err := core.MarshalDesign(d)
	if err != nil {
		t.Fatalf("MarshalDesign: %v", err)
	}
	d2, err := core.UnmarshalDesign(data)
	if err != nil {
		t.Fatalf("UnmarshalDesign: %v", err)
	}
	h1, err := core.DesignHash(d)
	if err != nil {
		t.Fatalf("DesignHash: %v", err)
	}
	h2, err := core.DesignHash(d2)
	if err != nil {
		t.Fatalf("DesignHash after round trip: %v", err)
	}
	if h1 != h2 {
		t.Fatalf("design hash changed across codec round trip: %s != %s", h1, h2)
	}
	res2, err := core.NewPlanner(d2, propWidth, propWeights).CostOptimizer()
	if err != nil {
		t.Fatalf("CostOptimizer after round trip: %v", err)
	}
	b1, err := json.Marshal(res1)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	b2, err := json.Marshal(res2)
	if err != nil {
		t.Fatalf("marshal round-tripped result: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("planning result changed across design codec round trip")
	}
}

// checkWidthMonotone asserts the all-share schedule makespan never
// increases as the TAM gets wider.
func checkWidthMonotone(t *testing.T, d *core.Design) {
	t.Helper()
	curve, err := core.WidthCurve(d, d.AllShare(), curveWidths)
	if err != nil {
		t.Fatalf("WidthCurve: %v", err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("makespan increased with width: W=%d gives %d, W=%d gives %d",
				curveWidths[i-1], curve[i-1], curveWidths[i], curve[i])
		}
	}
}

// TestGeneratedDesignSweep pushes a sample of generated designs through
// the real sweep path — the grid API the service and CLI use — and
// asserts every point planned and the per-width best costs are finite.
func TestGeneratedDesignSweep(t *testing.T) {
	weights := []core.Weights{{Time: 0.25, Area: 0.75}, {Time: 0.75, Area: 0.25}}
	for seed := int64(10); seed <= numSeeds; seed += 40 {
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			d, err := socgen.Generate(socgen.Options{Seed: seed, Class: socgen.Small})
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			points, err := core.SweepWith(d, curveWidths, weights, core.SweepOptions{})
			if err != nil {
				t.Fatalf("SweepWith: %v", err)
			}
			if want := len(curveWidths) * len(weights); len(points) != want {
				t.Fatalf("sweep returned %d points, want %d", len(points), want)
			}
			for _, pt := range points {
				if pt.Result == nil || pt.Result.Best.Cost < 0 {
					t.Fatalf("bad sweep point at W=%d wT=%.2f: %+v", pt.Width, pt.Weights.Time, pt.Result)
				}
			}
		})
	}
}
