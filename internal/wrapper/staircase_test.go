package wrapper

import (
	"sync"
	"testing"

	"mixsoc/internal/itc02"
)

// The cache's whole correctness argument is the prefix property: the
// staircase up to w is the prefix of the staircase up to maxW. Check it
// against the direct computation for every p93791 module at every width
// the experiments sweep (and a few odd ones).
func TestStaircaseCachePrefixProperty(t *testing.T) {
	cache := NewStaircaseCache(64)
	for _, m := range itc02.P93791().Cores() {
		for _, w := range []int{1, 2, 7, 16, 32, 40, 48, 56, 63, 64} {
			want, err := Pareto(m, w)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cache.Pareto(m, w)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("module %d w=%d: %d points, want %d", m.ID, w, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("module %d w=%d point %d: %+v, want %+v", m.ID, w, i, got[i], want[i])
				}
			}
		}
	}
}

func TestStaircaseCacheFallbacks(t *testing.T) {
	m := itc02.P93791().Cores()[0]
	// Beyond maxW: computed directly, still correct.
	cache := NewStaircaseCache(16)
	want, err := Pareto(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cache.Pareto(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("beyond-maxW: %d points, want %d", len(got), len(want))
	}
	// Invalid width errors exactly like the direct path.
	if _, err := cache.Pareto(m, 0); err == nil {
		t.Error("w=0 did not error")
	}
	// A nil cache is a transparent pass-through.
	var nilCache *StaircaseCache
	if _, err := nilCache.Pareto(m, 8); err != nil {
		t.Errorf("nil cache: %v", err)
	}
	if _, err := cache.Pareto(nil, 8); err == nil {
		t.Error("nil module did not error")
	}
}

// The returned prefix slices are capped, so a caller appending to one
// cannot clobber the shared tail.
func TestStaircaseCacheSliceIsolation(t *testing.T) {
	m := itc02.P93791().Cores()[0]
	cache := NewStaircaseCache(64)
	narrow, err := cache.Pareto(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	full, err := cache.Pareto(m, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow) == 0 || len(full) <= len(narrow) {
		t.Skipf("module staircase too flat for the test: %d/%d points", len(narrow), len(full))
	}
	ref := full[len(narrow)]
	_ = append(narrow, Point{Width: 999, Time: 1})
	if full[len(narrow)] != ref {
		t.Error("append through a prefix slice clobbered the cached staircase")
	}
}

func TestStaircaseCacheConcurrent(t *testing.T) {
	cache := NewStaircaseCache(64)
	mods := itc02.P93791().Cores()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, m := range mods {
				if _, err := cache.Pareto(m, 8+(g*8)%57); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkStaircaseCache measures serving a full Table 3/4 sweep's
// staircases — every p93791 module at every sweep width — from scratch
// versus through the design-level cache.
func BenchmarkStaircaseCache(b *testing.B) {
	mods := itc02.P93791().Cores()
	widths := []int{32, 40, 48, 56, 64}
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, w := range widths {
				for _, m := range mods {
					if _, err := Pareto(m, w); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cache := NewStaircaseCache(64)
			for _, w := range widths {
				for _, m := range mods {
					if _, err := cache.Pareto(m, w); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}
