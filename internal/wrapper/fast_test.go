package wrapper

import (
	"testing"

	"mixsoc/internal/itc02"
)

// The allocation-free staircase path (timeWith / waterFillMax) must
// reproduce the reference design computation exactly for every module
// and width — Pareto and BestTime are defined in terms of New.
func TestFastTimeMatchesDesign(t *testing.T) {
	for _, m := range itc02.P93791().Cores() {
		buf := newDesignBuf(m, 64)
		for w := 1; w <= 64; w++ {
			ref, err := Time(m, w)
			if err != nil {
				t.Fatal(err)
			}
			if got := timeWith(m, w, buf); got != ref {
				t.Fatalf("module %d width %d: timeWith = %d, Time = %d", m.ID, w, got, ref)
			}
		}
	}
}

// waterFillMax must agree with the max of the materialized waterFill for
// adversarial small cases (remainder spreads, zero cells, single bin).
func TestWaterFillMaxMatchesWaterFill(t *testing.T) {
	cases := []struct {
		base  []int
		cells int
	}{
		{[]int{0}, 0},
		{[]int{0}, 7},
		{[]int{5, 0, 0}, 4},
		{[]int{5, 0, 0}, 11},
		{[]int{3, 3, 3}, 2},
		{[]int{10, 1, 4, 4}, 9},
		{[]int{10, 1, 4, 4}, 50},
		{[]int{2, 9, 2, 9, 2}, 13},
	}
	for _, c := range cases {
		full := waterFill(c.base, c.cells, len(c.base))
		want := maxOf(full)
		lv := make([]int, len(c.base))
		if got := waterFillMax(c.base, c.cells, lv); got != want {
			t.Errorf("waterFillMax(%v, %d) = %d, want %d (filled %v)", c.base, c.cells, got, want, full)
		}
	}
}

func BenchmarkParetoP93791(b *testing.B) {
	soc := itc02.P93791()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range soc.Cores() {
			if _, err := Pareto(m, 64); err != nil {
				b.Fatal(err)
			}
		}
	}
}
