package wrapper

import (
	"testing"
	"testing/quick"

	"mixsoc/internal/itc02"
)

func TestOptimalScanPartitionSmallCases(t *testing.T) {
	cases := []struct {
		lengths []int
		w       int
		want    int
	}{
		{[]int{10, 10, 10, 10}, 2, 20},
		{[]int{9, 8, 7, 3, 2, 1}, 3, 10}, // perfectly balanced
		{[]int{5}, 3, 5},
		{[]int{7, 7, 7}, 2, 14},
		{[]int{100, 1, 1, 1}, 2, 100},
		{nil, 4, 0},
		{[]int{3, 3, 3, 3, 3}, 5, 3},
		// A case where greedy BFD is suboptimal: {4,4,3,3,3,3} into 2
		// bins: BFD gives 4+3+3=10 vs optimal 4+3+3/4+3+3=10 ... use a
		// classic: {7,6,5,4,4,4} into 2: BFD: 7+4+4=15,6+5+4=15 -> 15 =
		// optimal 15. Use {5,5,4,3,3} into 2: opt 10 (5+5 / 4+3+3).
		{[]int{5, 5, 4, 3, 3}, 2, 10},
	}
	for _, tc := range cases {
		got, err := OptimalScanPartition(tc.lengths, tc.w)
		if err != nil {
			t.Fatalf("%v/%d: %v", tc.lengths, tc.w, err)
		}
		if got != tc.want {
			t.Errorf("OptimalScanPartition(%v, %d) = %d, want %d", tc.lengths, tc.w, got, tc.want)
		}
	}
}

func TestOptimalScanPartitionErrors(t *testing.T) {
	if _, err := OptimalScanPartition([]int{1}, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := OptimalScanPartition(make([]int, MaxExactChains+1), 2); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, err := OptimalScanPartition([]int{3, 0}, 2); err == nil {
		t.Error("zero-length chain accepted")
	}
}

// Property: BFD is never better than the optimum, and the optimum never
// better than the trivial lower bounds allow.
func TestOptimalVsBFDProperty(t *testing.T) {
	f := func(raw []uint8, wRaw uint8) bool {
		w := int(wRaw%6) + 1
		n := len(raw)
		if n == 0 {
			return true
		}
		if n > 12 {
			n = 12
		}
		lengths := make([]int, n)
		total := 0
		longest := 0
		for i := 0; i < n; i++ {
			lengths[i] = int(raw[i]%200) + 1
			total += lengths[i]
			if lengths[i] > longest {
				longest = lengths[i]
			}
		}
		opt, err := OptimalScanPartition(lengths, w)
		if err != nil {
			return false
		}
		bfd := maxOf(partitionBFD(lengths, w))
		lb := (total + w - 1) / w
		if longest > lb {
			lb = longest
		}
		return opt >= lb && bfd >= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestBFDQualityOnBenchmark: on real-shaped scan profiles BFD stays
// within 5% of optimal — the justification for using it in the planner.
func TestBFDQualityOnBenchmark(t *testing.T) {
	worst := 1.0
	checked := 0
	for _, m := range itc02.P93791().Cores() {
		if len(m.Scan) == 0 || len(m.Scan) > MaxExactChains {
			continue
		}
		for _, w := range []int{2, 3, 4, 6, 8} {
			q, err := BFDQuality(m, w)
			if err != nil {
				t.Fatal(err)
			}
			if q < 1 {
				t.Fatalf("module %d: BFD beat the optimum?! q=%v", m.ID, q)
			}
			if q > worst {
				worst = q
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no module small enough for the exact solver")
	}
	t.Logf("checked %d (module,width) pairs; worst BFD/opt ratio %.4f", checked, worst)
	if worst > 1.05 {
		t.Errorf("BFD fell more than 5%% behind optimal: %.4f", worst)
	}
}

func BenchmarkOptimalScanPartition(b *testing.B) {
	lengths := []int{420, 419, 418, 417, 416, 415, 414, 413, 412, 411, 410, 409, 408, 407, 406, 405, 404, 403}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalScanPartition(lengths, 4); err != nil {
			b.Fatal(err)
		}
	}
}
