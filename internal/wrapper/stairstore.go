package wrapper

import (
	"sort"
	"sync"
	"sync/atomic"

	"mixsoc/internal/itc02"
)

// ModuleStairStore shares wrapper staircases across designs. Where
// StaircaseCache keys by module pointer — exact but private to one
// design session — the store keys by a caller-supplied content hash, so
// two near-duplicate SOCs (a design revision that touched one core, a
// generated family sharing a module library) compute each distinct
// module's staircase once between them. A staircase depends only on the
// module's pins, scan chains and tests, which is exactly what a content
// hash covers, so a shared answer is bit-identical to a private one.
//
// Entries precompute up to a floor width and grow on demand: a request
// beyond an entry's width replaces it with a wider computation, and the
// prefix property (see StaircaseCache) serves every narrower width from
// whatever is stored. Computation is single-flight per key; concurrent
// requesters of the same module wait rather than duplicate the design
// work. The store is safe for concurrent use and the returned slices
// are shared read-only prefixes. A nil store falls back to computing
// from scratch.
type ModuleStairStore struct {
	floor      int // minimum precompute width for new entries
	maxEntries int // entry cap; an arbitrary other entry is evicted past it

	hits, misses atomic.Uint64

	mu sync.Mutex
	m  map[string]*storeEntry
}

type storeEntry struct {
	done chan struct{} // closed once pts/err are final
	maxW int
	pts  []Point
	err  error
}

// NewModuleStairStore returns a store whose new entries precompute
// staircases up to floor wires (wider requests grow them) and which
// keeps at most maxEntries distinct modules.
func NewModuleStairStore(floor, maxEntries int) *ModuleStairStore {
	if floor < 1 {
		floor = 1
	}
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &ModuleStairStore{floor: floor, maxEntries: maxEntries, m: map[string]*storeEntry{}}
}

// Pareto returns the module's staircase of useful widths up to w — the
// same points Pareto(m, w) computes — served from the entry keyed by
// the module's content hash, computing or growing it as needed. An
// empty key bypasses the store.
func (s *ModuleStairStore) Pareto(key string, m *itc02.Module, w int) ([]Point, error) {
	if s == nil || key == "" || m == nil || w < 1 {
		return Pareto(m, w)
	}
	s.mu.Lock()
	e := s.m[key]
	if e == nil || e.maxW < w {
		// Missing or too narrow: compute a replacement wide enough for
		// this request and the floor. Waiters on a replaced narrower
		// entry still hold their pointer and finish normally.
		e = &storeEntry{done: make(chan struct{}), maxW: max(w, s.floor)}
		s.m[key] = e
		s.evictLocked(key)
		s.mu.Unlock()
		s.misses.Add(1)
		e.pts, e.err = Pareto(m, e.maxW)
		close(e.done)
	} else {
		s.mu.Unlock()
		<-e.done
		s.hits.Add(1)
	}
	if e.err != nil {
		return nil, e.err
	}
	// First index whose width exceeds w; the three-index slice keeps
	// callers from appending into the shared tail.
	i := sort.Search(len(e.pts), func(i int) bool { return e.pts[i].Width > w })
	return e.pts[:i:i], nil
}

// evictLocked drops arbitrary entries other than keep until the store
// is within its cap. Evicting an in-flight entry is safe: its owner
// still completes it for the waiters holding the pointer; only future
// requests recompute.
func (s *ModuleStairStore) evictLocked(keep string) {
	for len(s.m) > s.maxEntries {
		for k := range s.m {
			if k != keep {
				delete(s.m, k)
				break
			}
		}
	}
}

// Stats returns the store's lifetime hit and miss counts: a miss
// designed a wrapper staircase (or grew one), a hit reused one.
func (s *ModuleStairStore) Stats() (hits, misses uint64) {
	if s == nil {
		return 0, 0
	}
	return s.hits.Load(), s.misses.Load()
}

// Len returns the number of stored modules, completed or in flight.
func (s *ModuleStairStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
