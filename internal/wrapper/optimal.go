package wrapper

import (
	"fmt"
	"sort"

	"mixsoc/internal/itc02"
)

// This file provides an exact scan-chain partitioner used to measure the
// quality of the best-fit-decreasing heuristic that Design_wrapper uses
// (DESIGN.md ablation "BFD vs optimal"). Min-max partitioning is NP-hard,
// so the exact solver is deliberately bounded to small instances; the
// production path stays on BFD.

// MaxExactChains bounds the instance size OptimalScanPartition accepts.
const MaxExactChains = 24

// OptimalScanPartition partitions the scan chain lengths into at most w
// bins minimizing the maximum bin sum, by branch and bound over items in
// descending order. It returns the optimal maximum bin sum.
func OptimalScanPartition(lengths []int, w int) (int, error) {
	if w < 1 {
		return 0, fmt.Errorf("wrapper: width %d < 1", w)
	}
	if len(lengths) > MaxExactChains {
		return 0, fmt.Errorf("wrapper: exact partition limited to %d chains, got %d", MaxExactChains, len(lengths))
	}
	if len(lengths) == 0 {
		return 0, nil
	}
	items := append([]int(nil), lengths...)
	sort.Sort(sort.Reverse(sort.IntSlice(items)))
	for _, l := range items {
		if l <= 0 {
			return 0, fmt.Errorf("wrapper: non-positive chain length %d", l)
		}
	}

	// Initial incumbent: BFD.
	best := maxOf(partitionBFD(items, w))

	total := 0
	for _, l := range items {
		total += l
	}
	// Trivial lower bound: ceiling of the average, and the largest item.
	lower := (total + w - 1) / w
	if items[0] > lower {
		lower = items[0]
	}
	if best == lower {
		return best, nil
	}

	bins := make([]int, w)
	suffix := make([]int, len(items)+1) // suffix sums for bounding
	for i := len(items) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + items[i]
	}

	var rec func(i, prevBin int)
	rec = func(i, prevBin int) {
		if best == lower {
			return // proven optimal
		}
		if i == len(items) {
			m := maxOf(bins)
			if m < best {
				best = m
			}
			return
		}
		if maxOf(bins) >= best {
			return
		}
		// Equal items are interchangeable: force them into
		// non-decreasing bin indices so each multiset of assignments is
		// explored once.
		start := 0
		if i > 0 && items[i] == items[i-1] {
			start = prevBin
		}
		// Also skip bins with duplicate loads (bin symmetry).
		seen := map[int]bool{}
		for b := start; b < w; b++ {
			if seen[bins[b]] {
				continue
			}
			seen[bins[b]] = true
			if bins[b]+items[i] >= best {
				continue
			}
			bins[b] += items[i]
			rec(i+1, b)
			bins[b] -= items[i]
		}
	}
	rec(0, 0)
	return best, nil
}

// BFDQuality returns the ratio of the BFD partition's maximum bin to the
// optimum for module m at width w (1.0 means BFD found an optimal scan
// partition). Modules with more than MaxExactChains chains are rejected.
func BFDQuality(m *itc02.Module, w int) (float64, error) {
	if len(m.Scan) == 0 {
		return 1, nil
	}
	opt, err := OptimalScanPartition(m.Scan, w)
	if err != nil {
		return 0, err
	}
	if opt == 0 {
		return 1, nil
	}
	bfd := maxOf(partitionBFD(m.SortedScanDescending(), w))
	return float64(bfd) / float64(opt), nil
}
