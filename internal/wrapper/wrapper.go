// Package wrapper designs test wrappers for digital cores and computes
// the resulting core test times.
//
// The algorithm is the Design_wrapper approach of Iyengar, Chakrabarty
// and Marinissen ("Co-optimization of test wrapper and test access
// architecture for embedded cores", JETTA 2002), which the paper uses for
// its digital cores (Section 4, ref [13]):
//
//   - the module's internal scan chains are partitioned into at most w
//     wrapper chains with a best-fit-decreasing heuristic that minimizes
//     the longest wrapper chain;
//   - functional input (and bidirectional) cells are distributed over the
//     wrapper chains to balance the scan-in lengths, and output cells to
//     balance the scan-out lengths (exact water-filling);
//   - the test application time for p patterns is
//     T = (1 + max(si, so))·p + min(si, so)
//     where si and so are the longest wrapper scan-in and scan-out chains.
//
// Because adding wires beyond the point where the longest chain can no
// longer be shortened does not reduce T, the test time is a "staircase"
// in w; Pareto returns only the widths at which T actually improves,
// which is what the TAM scheduler packs with.
package wrapper

import (
	"fmt"
	"slices"
	"sort"

	"mixsoc/internal/itc02"
)

// Design is a wrapper configuration for a module at a given TAM width.
type Design struct {
	Module  *itc02.Module
	Width   int     // number of wrapper chains (TAM wires used)
	ScanIn  []int   // per-chain scan-in lengths: input cells + scan bits
	ScanOut []int   // per-chain scan-out lengths: scan bits + output cells
	Time    int64   // total test time over all TAM tests, in cycles
	PerTest []int64 // test time per module test (same order as Module.Tests)
}

// MaxScanIn returns the longest wrapper scan-in chain.
func (d *Design) MaxScanIn() int { return maxOf(d.ScanIn) }

// MaxScanOut returns the longest wrapper scan-out chain.
func (d *Design) MaxScanOut() int { return maxOf(d.ScanOut) }

func maxOf(v []int) int {
	m := 0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// New designs a wrapper for module m with w TAM wires. It returns an
// error if w < 1 or the module is nil.
func New(m *itc02.Module, w int) (*Design, error) {
	if m == nil {
		return nil, fmt.Errorf("wrapper: nil module")
	}
	if w < 1 {
		return nil, fmt.Errorf("wrapper: module %d: width %d < 1", m.ID, w)
	}
	d := &Design{Module: m, Width: w}

	// Partition internal scan chains into at most w wrapper chains.
	parts := partitionBFD(m.SortedScanDescending(), w)

	// Water-fill input cells over scan-in lengths and output cells over
	// scan-out lengths. Bidirectional terminals need both an input and an
	// output cell.
	d.ScanIn = waterFill(parts, m.Inputs+m.Bidirs, w)
	d.ScanOut = waterFill(parts, m.Outputs+m.Bidirs, w)

	si, so := d.MaxScanIn(), d.MaxScanOut()
	for _, t := range m.Tests {
		var tt int64
		switch {
		case !t.TamUse:
			// Functionally applied test: occupies the core but not the
			// TAM; it still takes one cycle per pattern.
			tt = int64(t.Patterns)
		case t.ScanUse:
			tt = scanTestTime(si, so, t.Patterns)
		default:
			// TAM test without scan load: only the wrapper boundary
			// cells shift, balanced over the w wires.
			isi := ceilDiv(m.Inputs+m.Bidirs, w)
			iso := ceilDiv(m.Outputs+m.Bidirs, w)
			tt = scanTestTime(isi, iso, t.Patterns)
		}
		d.PerTest = append(d.PerTest, tt)
		d.Time += tt
	}
	return d, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// scanTestTime is the JETTA test-time formula.
func scanTestTime(si, so, patterns int) int64 {
	longer, shorter := si, so
	if so > si {
		longer, shorter = so, si
	}
	return int64(1+longer)*int64(patterns) + int64(shorter)
}

// Time computes the total test time for module m at width w without
// retaining the design.
func Time(m *itc02.Module, w int) (int64, error) {
	d, err := New(m, w)
	if err != nil {
		return 0, err
	}
	return d.Time, nil
}

// partitionBFD distributes the descending-sorted chain lengths over at
// most w bins, always placing the next chain in the currently lightest
// bin (best fit decreasing). The returned slice has exactly w entries;
// unused bins are zero.
func partitionBFD(sortedDesc []int, w int) []int {
	bins := make([]int, w)
	partitionBFDInto(sortedDesc, bins)
	return bins
}

// partitionBFDInto is partitionBFD writing into a caller-owned slice.
func partitionBFDInto(sortedDesc []int, bins []int) {
	clear(bins)
	for _, l := range sortedDesc {
		// Find the lightest bin. len(bins) is small (≤ a few hundred),
		// so a linear scan beats heap bookkeeping in practice.
		best := 0
		for i := 1; i < len(bins); i++ {
			if bins[i] < bins[best] {
				best = i
			}
		}
		bins[best] += l
	}
}

// designBuf holds the scratch buffers a staircase computation reuses
// across widths, so evaluating a module at every width up to maxW does
// not allocate per width. One buffer serves one goroutine.
type designBuf struct {
	sortedScan []int // module scan chains, descending, computed once
	bins       []int // BFD partition scratch
	lv         []int // sorted bin levels for waterFillMax
}

func newDesignBuf(m *itc02.Module, maxW int) *designBuf {
	return &designBuf{
		sortedScan: m.SortedScanDescending(),
		bins:       make([]int, maxW),
		lv:         make([]int, maxW),
	}
}

// waterFillMax returns the maximum bin level after water-filling cells
// over base (the quantity scanTestTime needs), without materializing the
// filled bins. It reproduces waterFill's arithmetic exactly: bins are
// raised lowest-first to a common level, then the remainder is spread
// one cell per bin. lv is scratch of len(base), overwritten.
func waterFillMax(base []int, cells int, lv []int) int {
	w := len(base)
	copy(lv, base)
	slices.Sort(lv)
	maxBase := lv[w-1]
	if cells <= 0 {
		return maxBase
	}
	remaining := cells
	for k := 0; k < w; k++ {
		level := lv[k]
		var next int
		if k+1 < w {
			next = lv[k+1]
		} else {
			next = level + remaining // unbounded: final spread
		}
		capacity := (k + 1) * (next - level)
		if capacity >= remaining {
			top := level + remaining/(k+1)
			if remaining%(k+1) > 0 {
				top++
			}
			if top > maxBase {
				return top
			}
			return maxBase
		}
		remaining -= capacity
	}
	return maxBase
}

// timeWith computes Time(m, w) through the scratch buffers: the same
// BFD partition, water-filling and per-test formula as New, minus every
// allocation.
func timeWith(m *itc02.Module, w int, b *designBuf) int64 {
	bins := b.bins[:w]
	partitionBFDInto(b.sortedScan, bins)
	si := waterFillMax(bins, m.Inputs+m.Bidirs, b.lv[:w])
	so := waterFillMax(bins, m.Outputs+m.Bidirs, b.lv[:w])

	var total int64
	for _, t := range m.Tests {
		switch {
		case !t.TamUse:
			total += int64(t.Patterns)
		case t.ScanUse:
			total += scanTestTime(si, so, t.Patterns)
		default:
			isi := ceilDiv(m.Inputs+m.Bidirs, w)
			iso := ceilDiv(m.Outputs+m.Bidirs, w)
			total += scanTestTime(isi, iso, t.Patterns)
		}
	}
	return total
}

// waterFill adds cells IO cells to the bins so that the maximum is
// minimized: bins are filled lowest-first up to a common level, then the
// remainder is spread one cell per bin. base is not modified.
func waterFill(base []int, cells, w int) []int {
	out := make([]int, w)
	copy(out, base)
	if cells <= 0 {
		return out
	}
	// Sort bin indices by level.
	idx := make([]int, w)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return out[idx[a]] < out[idx[b]] })

	remaining := cells
	for k := 0; k < w && remaining > 0; k++ {
		// Raise bins idx[0..k] to the level of idx[k+1] (or distribute the
		// remainder evenly if this is the last step).
		level := out[idx[k]]
		var next int
		if k+1 < w {
			next = out[idx[k+1]]
		} else {
			next = level + remaining // unbounded: final spread
		}
		capacity := (k + 1) * (next - level)
		if capacity >= remaining {
			// Distribute remaining over bins idx[0..k]: each gets
			// remaining/(k+1), first remainder bins get one more.
			q, r := remaining/(k+1), remaining%(k+1)
			for j := 0; j <= k; j++ {
				out[idx[j]] = level + q
				if j < r {
					out[idx[j]]++
				}
			}
			remaining = 0
		} else {
			for j := 0; j <= k; j++ {
				out[idx[j]] = next
			}
			remaining -= capacity
		}
	}
	return out
}
