package wrapper

import (
	"testing"

	"mixsoc/internal/itc02"
)

// These tests pin down wrapper design for module shapes outside the
// p93791 mold: cores with no functional terminals, no scan chains, or
// no test time at all, which generated and uploaded SOCs can contain.

func TestParetoZeroIOScanModule(t *testing.T) {
	// Scan chains but not a single functional terminal: the staircase
	// must still be strictly improving, and shortening the longest
	// wrapper chain is the only lever.
	m := &itc02.Module{
		ID: 1, Name: "scanonly",
		Scan:  []int{90, 60, 30},
		Tests: []itc02.Test{{ID: 1, Patterns: 50, ScanUse: true, TamUse: true}},
	}
	pts, err := Pareto(m, 8)
	if err != nil {
		t.Fatalf("Pareto: %v", err)
	}
	if len(pts) < 2 {
		t.Fatalf("scan module staircase has %d points, want at least 2: %v", len(pts), pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Width <= pts[i-1].Width || pts[i].Time >= pts[i-1].Time {
			t.Fatalf("staircase not strictly improving at %d: %v", i, pts)
		}
	}
	if pts[0].Width != 1 || pts[0].Time <= 0 {
		t.Errorf("staircase must start at width 1 with positive time, got %v", pts[0])
	}
}

func TestParetoCombinationalModule(t *testing.T) {
	// No scan chains: only the boundary cells shift, so widening the
	// wrapper keeps helping until every cell has its own wire.
	m := &itc02.Module{
		ID: 2, Name: "comb",
		Inputs: 16, Outputs: 8,
		Tests: []itc02.Test{{ID: 1, Patterns: 200, TamUse: true}},
	}
	pts, err := Pareto(m, 32)
	if err != nil {
		t.Fatalf("Pareto: %v", err)
	}
	for i, p := range pts {
		if p.Time <= 0 {
			t.Fatalf("combinational staircase point %d has non-positive time: %v", i, pts)
		}
	}
	if last := pts[len(pts)-1]; last.Width > 16 {
		t.Errorf("staircase extends to width %d, but 16 wires already give one cell per input", last.Width)
	}
}

func TestParetoZeroTimeModule(t *testing.T) {
	// A valid module whose only test takes zero cycles (no patterns, no
	// scan, no outputs): the staircase degenerates to the single point
	// {1, 0}, which tam.Job.Validate rejects — core.DigitalJobsWith is
	// responsible for skipping such modules.
	m := &itc02.Module{
		ID: 3, Name: "zerotime",
		Inputs: 4,
		Tests:  []itc02.Test{{ID: 1, Patterns: 0, TamUse: true}},
	}
	pts, err := Pareto(m, 8)
	if err != nil {
		t.Fatalf("Pareto: %v", err)
	}
	if len(pts) != 1 || pts[0].Width != 1 || pts[0].Time != 0 {
		t.Errorf("zero-time staircase = %v, want the single point {1 0}", pts)
	}
}

func TestParetoFunctionalOnlyModule(t *testing.T) {
	// A test delivered functionally (TamUse false) costs one cycle per
	// pattern no matter how many wires the wrapper gets: a one-point
	// staircase at width 1.
	m := &itc02.Module{
		ID: 4, Name: "functional",
		Inputs: 10, Outputs: 10,
		Tests: []itc02.Test{{ID: 1, Patterns: 77}},
	}
	pts, err := Pareto(m, 16)
	if err != nil {
		t.Fatalf("Pareto: %v", err)
	}
	if len(pts) != 1 || pts[0].Width != 1 || pts[0].Time != 77 {
		t.Errorf("functional-only staircase = %v, want [{1 77}]", pts)
	}
}
