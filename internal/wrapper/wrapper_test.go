package wrapper

import (
	"testing"
	"testing/quick"

	"mixsoc/internal/itc02"
)

func scanModule(id int, in, out, bid int, scan []int, patterns int) *itc02.Module {
	return &itc02.Module{
		ID: id, Name: "m", Level: 1, Inputs: in, Outputs: out, Bidirs: bid,
		Scan:  scan,
		Tests: []itc02.Test{{ID: 1, Patterns: patterns, ScanUse: len(scan) > 0, TamUse: true}},
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Error("nil module accepted")
	}
	if _, err := New(scanModule(1, 1, 1, 0, nil, 1), 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := Pareto(scanModule(1, 1, 1, 0, nil, 1), 0); err == nil {
		t.Error("Pareto maxW 0 accepted")
	}
}

func TestSingleWireTime(t *testing.T) {
	// One wire: everything in one chain. si = in+bid+scan = 2+1+10 = 13,
	// so = scan+out+bid = 10+3+1 = 14. T = (1+14)*5 + 13 = 88.
	m := scanModule(1, 2, 3, 1, []int{10}, 5)
	d, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxScanIn() != 13 || d.MaxScanOut() != 14 {
		t.Errorf("si=%d so=%d, want 13/14", d.MaxScanIn(), d.MaxScanOut())
	}
	if d.Time != 88 {
		t.Errorf("Time = %d, want 88", d.Time)
	}
}

func TestCombinationalModule(t *testing.T) {
	// No scan: 8 input cells, 4 output cells over 2 wires:
	// si = 4, so = 2, T = (1+4)*10 + 2 = 52.
	m := scanModule(1, 8, 4, 0, nil, 10)
	d, err := New(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Time != 52 {
		t.Errorf("Time = %d, want 52", d.Time)
	}
}

func TestNonScanTamTest(t *testing.T) {
	m := &itc02.Module{
		ID: 1, Inputs: 6, Outputs: 3, Scan: []int{50, 40},
		Tests: []itc02.Test{
			{ID: 1, Patterns: 10, ScanUse: true, TamUse: true},
			{ID: 2, Patterns: 4, ScanUse: false, TamUse: true},
		},
	}
	d, err := New(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.PerTest) != 2 {
		t.Fatalf("PerTest = %v", d.PerTest)
	}
	// Test 2: isi = ceil(6/2)=3, iso = ceil(3/2)=2 -> (1+3)*4+2 = 18.
	if d.PerTest[1] != 18 {
		t.Errorf("non-scan test time = %d, want 18", d.PerTest[1])
	}
	if d.Time != d.PerTest[0]+d.PerTest[1] {
		t.Error("Time is not the sum of PerTest")
	}
}

func TestFunctionalTestTime(t *testing.T) {
	m := &itc02.Module{
		ID: 1, Inputs: 4, Outputs: 4,
		Tests: []itc02.Test{{ID: 1, Patterns: 25, TamUse: false}},
	}
	d, err := New(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Time != 25 {
		t.Errorf("functional test time = %d, want 25 (one cycle/pattern)", d.Time)
	}
}

func TestPartitionBFDBalances(t *testing.T) {
	bins := partitionBFD([]int{9, 8, 7, 3, 2, 1}, 3)
	// BFD: 9|8|7 then 3->bin2(7+3=10)... lightest after 9,8,7 is 7: +3=10;
	// lightest is 8: +2=10; lightest is 9: +1=10. Perfectly balanced.
	for i, b := range bins {
		if b != 10 {
			t.Fatalf("bin %d = %d, want 10 (%v)", i, b, bins)
		}
	}
}

func TestWaterFillExact(t *testing.T) {
	cases := []struct {
		base    []int
		cells   int
		wantMax int
	}{
		{[]int{5, 3, 8}, 4, 8},     // fits under the tallest bin
		{[]int{5, 3, 8}, 20, 12},   // (16+20)/3 = 12 exactly
		{[]int{0, 0, 0, 0}, 10, 3}, // ceil(10/4)
		{[]int{7}, 5, 12},          // single bin
		{[]int{2, 2}, 0, 2},        // nothing to add
	}
	for _, tc := range cases {
		got := waterFill(tc.base, tc.cells, len(tc.base))
		total := 0
		for _, b := range tc.base {
			total += b
		}
		sum := 0
		maxv := 0
		for _, g := range got {
			sum += g
			if g > maxv {
				maxv = g
			}
		}
		if sum != total+tc.cells {
			t.Errorf("waterFill(%v,%d) lost cells: sum %d", tc.base, tc.cells, sum)
		}
		if maxv != tc.wantMax {
			t.Errorf("waterFill(%v,%d) max = %d, want %d", tc.base, tc.cells, maxv, tc.wantMax)
		}
	}
}

func TestWaterFillOptimalProperty(t *testing.T) {
	// The resulting max must equal the water-filling optimum:
	// the smallest L with sum(max(0, L-base_i)) >= cells, L >= max(base).
	f := func(raw []uint8, cells uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		base := make([]int, len(raw))
		for i, r := range raw {
			base[i] = int(r % 50)
		}
		got := waterFill(base, int(cells), len(base))
		gotMax := 0
		for _, g := range got {
			if g > gotMax {
				gotMax = g
			}
		}
		// brute-force optimum
		L := 0
		for _, b := range base {
			if b > L {
				L = b
			}
		}
		for {
			cap := 0
			for _, b := range base {
				cap += L - b
			}
			if cap >= int(cells) {
				break
			}
			L++
		}
		return gotMax == L
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBestTimeMonotone(t *testing.T) {
	for _, m := range itc02.P93791().Cores() {
		prev := int64(-1)
		for w := 1; w <= 24; w++ {
			bt, err := BestTime(m, w)
			if err != nil {
				t.Fatal(err)
			}
			if prev >= 0 && bt > prev {
				t.Fatalf("module %d: BestTime(%d)=%d > BestTime(%d)=%d", m.ID, w, bt, w-1, prev)
			}
			prev = bt
		}
	}
}

func TestParetoShape(t *testing.T) {
	for _, m := range itc02.P93791().Cores() {
		pts, err := Pareto(m, 40)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) == 0 {
			t.Fatalf("module %d: empty staircase", m.ID)
		}
		if pts[0].Width != 1 {
			t.Errorf("module %d: first width = %d, want 1", m.ID, pts[0].Width)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Width <= pts[i-1].Width || pts[i].Time >= pts[i-1].Time {
				t.Errorf("module %d: staircase not strictly improving at %d: %v", m.ID, i, pts)
			}
		}
	}
}

func TestTimeAtAndWidthFor(t *testing.T) {
	pts := []Point{{1, 100}, {2, 60}, {5, 40}}
	cases := []struct {
		w    int
		want int64
	}{{1, 100}, {2, 60}, {3, 60}, {4, 60}, {5, 40}, {9, 40}}
	for _, tc := range cases {
		if got := TimeAt(pts, tc.w); got != tc.want {
			t.Errorf("TimeAt(%d) = %d, want %d", tc.w, got, tc.want)
		}
	}
	if got := WidthFor(pts, 60); got != 2 {
		t.Errorf("WidthFor(60) = %d, want 2", got)
	}
	if got := WidthFor(pts, 10); got != 0 {
		t.Errorf("WidthFor(10) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("TimeAt below staircase start did not panic")
		}
	}()
	TimeAt(pts, 0)
}

func TestStaircaseMatchesTimeAt(t *testing.T) {
	// TimeAt over the Pareto staircase equals BestTime for every width.
	m := itc02.P93791().Cores()[1]
	pts, err := Pareto(m, 30)
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= 30; w++ {
		bt, err := BestTime(m, w)
		if err != nil {
			t.Fatal(err)
		}
		if got := TimeAt(pts, w); got != bt {
			t.Errorf("w=%d: TimeAt=%d BestTime=%d", w, got, bt)
		}
	}
}

func BenchmarkDesignWrapper(b *testing.B) {
	m := itc02.P93791().Cores()[1] // biggest scan core
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(m, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPareto64(b *testing.B) {
	m := itc02.P93791().Cores()[1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Pareto(m, 64); err != nil {
			b.Fatal(err)
		}
	}
}
