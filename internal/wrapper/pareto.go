package wrapper

import (
	"fmt"

	"mixsoc/internal/itc02"
)

// Point is one step of a module's test-time staircase: using Width TAM
// wires, the module's tests finish in Time cycles.
type Point struct {
	Width int
	Time  int64
}

// BestTime returns the smallest test time achievable with at most w TAM
// wires. Because a core connected to w wires can always be configured to
// use fewer, BestTime is non-increasing in w by construction, which
// smooths out any partitioning-heuristic anomalies.
func BestTime(m *itc02.Module, w int) (int64, error) {
	if m == nil {
		return 0, fmt.Errorf("wrapper: nil module")
	}
	if w < 1 {
		return 0, fmt.Errorf("wrapper: module %d: width %d < 1", m.ID, w)
	}
	buf := newDesignBuf(m, w)
	best := int64(-1)
	for wi := 1; wi <= w; wi++ {
		t := timeWith(m, wi, buf)
		if best < 0 || t < best {
			best = t
		}
	}
	return best, nil
}

// Pareto returns the staircase of useful widths for module m up to maxW:
// the (width, time) pairs at which the test time strictly improves over
// every smaller width. The first point always has Width 1, and times are
// strictly decreasing. Schedulers should only consider these widths; any
// other width wastes TAM wires without reducing time.
func Pareto(m *itc02.Module, maxW int) ([]Point, error) {
	if m == nil {
		return nil, fmt.Errorf("wrapper: nil module")
	}
	if maxW < 1 {
		return nil, fmt.Errorf("wrapper: module %d: maxW %d < 1", m.ID, maxW)
	}
	// One scratch buffer serves every width, so the maxW wrapper designs
	// of the staircase cost zero steady-state allocations.
	buf := newDesignBuf(m, maxW)
	var pts []Point
	best := int64(-1)
	for w := 1; w <= maxW; w++ {
		t := timeWith(m, w, buf)
		if best < 0 || t < best {
			best = t
			pts = append(pts, Point{Width: w, Time: t})
		}
	}
	return pts, nil
}

// TimeAt evaluates a staircase at width w: the time of the widest point
// with Width ≤ w. It panics if w is below the first point's width.
func TimeAt(pts []Point, w int) int64 {
	if len(pts) == 0 || w < pts[0].Width {
		panic(fmt.Sprintf("wrapper: TimeAt(%d) below staircase start", w))
	}
	t := pts[0].Time
	for _, p := range pts {
		if p.Width > w {
			break
		}
		t = p.Time
	}
	return t
}

// WidthFor returns the smallest width in the staircase whose time is
// within the given budget, or 0 if even the widest point exceeds it.
func WidthFor(pts []Point, budget int64) int {
	for _, p := range pts {
		if p.Time <= budget {
			return p.Width
		}
	}
	return 0
}
