package wrapper

import (
	"sort"
	"sync"

	"mixsoc/internal/itc02"
)

// StaircaseCache computes each module's Pareto staircase once, up to a
// design-level maximum width, and serves every narrower width as a
// prefix slice of that one computation. A staircase point at width w is
// on the Pareto front regardless of how far the sweep extends — the
// "strictly improves over every smaller width" criterion never looks
// rightward — so Pareto(m, w) for any w ≤ maxW is exactly the prefix of
// Pareto(m, maxW) whose widths do not exceed w. That prefix property is
// what lets one cache serve a whole TAM-width sweep (Table 3 and
// Table 4 evaluate the same modules at 3-5 widths each) for the cost of
// a single full-width staircase per module.
//
// The cache is safe for concurrent use; the returned slices are shared
// and must be treated as read-only, which is how the TAM packer already
// consumes staircases. A nil *StaircaseCache is valid and falls back to
// computing staircases from scratch, as do requests beyond maxW.
type StaircaseCache struct {
	maxW int

	mu sync.Mutex
	m  map[*itc02.Module]*stairEntry

	// Shared mode (see Share): staircases are served from a cross-design
	// store under a content-hash key instead of the private map. keys
	// memoizes the hash per module pointer, so each module is hashed
	// once per cache rather than once per request.
	store *ModuleStairStore
	key   func(*itc02.Module) string
	keys  map[*itc02.Module]string
}

type stairEntry struct {
	once sync.Once
	pts  []Point
	err  error
}

// NewStaircaseCache returns a cache that precomputes staircases up to
// maxW wires, typically the widest TAM width a sweep will evaluate.
func NewStaircaseCache(maxW int) *StaircaseCache {
	if maxW < 1 {
		maxW = 1
	}
	return &StaircaseCache{maxW: maxW, m: map[*itc02.Module]*stairEntry{}}
}

// MaxWidth reports the width the cache precomputes staircases up to.
func (c *StaircaseCache) MaxWidth() int { return c.maxW }

// Share routes the cache's staircases through a cross-design store: each
// module is keyed by key(m) — a content hash — and served from store, so
// identical modules of different designs compute their staircase once
// between them. A key of "" opts that module out (it falls back to the
// private per-pointer path). Results are bit-identical to the unshared
// cache. Call before the cache's first use.
func (c *StaircaseCache) Share(store *ModuleStairStore, key func(*itc02.Module) string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = store
	c.key = key
	c.keys = map[*itc02.Module]string{}
}

// sharedKey returns the store and memoized content key for m, or a nil
// store when the cache is unshared (or the module opted out).
func (c *StaircaseCache) sharedKey(m *itc02.Module) (*ModuleStairStore, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.store == nil {
		return nil, ""
	}
	k, ok := c.keys[m]
	if !ok {
		k = c.key(m)
		c.keys[m] = k
	}
	if k == "" {
		return nil, ""
	}
	return c.store, k
}

// Pareto returns the module's staircase of useful widths up to w, the
// same points Pareto(m, w) computes, served as a shared read-only
// prefix slice of the cached full-width staircase.
func (c *StaircaseCache) Pareto(m *itc02.Module, w int) ([]Point, error) {
	if c == nil || m == nil || w < 1 {
		return Pareto(m, w)
	}
	// Shared mode serves every width — the store grows on demand, so
	// even requests beyond maxW stay deduplicated across designs.
	if store, key := c.sharedKey(m); store != nil {
		return store.Pareto(key, m, w)
	}
	if w > c.maxW {
		return Pareto(m, w)
	}
	c.mu.Lock()
	e := c.m[m]
	if e == nil {
		e = &stairEntry{}
		c.m[m] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.pts, e.err = Pareto(m, c.maxW)
	})
	if e.err != nil {
		return nil, e.err
	}
	// First index whose width exceeds w; the three-index slice keeps
	// callers from appending into the shared tail.
	i := sort.Search(len(e.pts), func(i int) bool { return e.pts[i].Width > w })
	return e.pts[:i:i], nil
}
