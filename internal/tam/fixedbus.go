package tam

import (
	"fmt"
	"sort"
)

// This file implements the baseline TAM architecture the paper improves
// upon (Section 4: "Unlike the approach described in [5], this approach
// exploits the disparity in the TAM width requirements of digital and
// analog cores"): a fixed-width multi-bus TAM. The SOC's W wires are
// partitioned into a small number of buses; every core is assigned to
// exactly one bus and the tests on a bus run strictly one after another.
// Narrow analog tests assigned to a wide bus waste the unused wires for
// their whole duration, which is precisely the inefficiency rectangle
// packing removes.

// BusSlot is one test occupying a bus for an interval.
type BusSlot struct {
	Job        *Job
	Start, End int64
}

// Bus is one fixed-width partition of the TAM with its serial schedule.
type Bus struct {
	Width int
	Slots []BusSlot
}

// Load returns the bus's total busy time.
func (b *Bus) Load() int64 {
	if n := len(b.Slots); n > 0 {
		return b.Slots[n-1].End
	}
	return 0
}

// BusSchedule is a complete fixed-bus test schedule.
type BusSchedule struct {
	Buses    []Bus
	Makespan int64
}

// Validate checks the schedule: every slot back to back within its bus,
// serialization groups confined to a single bus (they are serial by
// construction then), and job widths within bus widths.
func (s *BusSchedule) Validate() error {
	groupBus := map[string]int{}
	for bi := range s.Buses {
		b := &s.Buses[bi]
		var prev int64
		for _, slot := range b.Slots {
			if slot.Start != prev {
				return fmt.Errorf("tam: bus %d: slot %s starts at %d, want %d", bi, slot.Job.ID, slot.Start, prev)
			}
			if slot.End-slot.Start != timeFor(slot.Job, b.Width) {
				return fmt.Errorf("tam: bus %d: slot %s has wrong duration", bi, slot.Job.ID)
			}
			if slot.Job.Options[0].Width > b.Width {
				return fmt.Errorf("tam: bus %d: job %s needs %d wires, bus has %d", bi, slot.Job.ID, slot.Job.Options[0].Width, b.Width)
			}
			if g := slot.Job.Group; g != "" {
				if other, ok := groupBus[g]; ok && other != bi {
					return fmt.Errorf("tam: group %q split across buses %d and %d", g, other, bi)
				}
				groupBus[g] = bi
			}
			prev = slot.End
		}
		if prev > s.Makespan {
			return fmt.Errorf("tam: bus %d load %d exceeds makespan %d", bi, prev, s.Makespan)
		}
	}
	return nil
}

// Utilization is the fraction of wire-cycles actually used: the job
// widths over the bus widths, integrated over the schedule.
func (s *BusSchedule) Utilization() float64 {
	var total, used int64
	for bi := range s.Buses {
		b := &s.Buses[bi]
		total += int64(b.Width) * s.Makespan
		for _, slot := range b.Slots {
			w := slot.Job.Options[0].Width
			// Staircase jobs use the widest option that fits the bus.
			for _, o := range slot.Job.Options {
				if o.Width <= b.Width {
					w = o.Width
				}
			}
			used += int64(w) * (slot.End - slot.Start)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}

// OptimizeFixedBus builds the best fixed-bus schedule it can: for every
// bus count from 1 to maxBuses it partitions the W wires as evenly as
// possible (wider buses first, so the widest job always fits somewhere),
// assigns whole serialization groups and then jobs longest-first to the
// least-loaded feasible bus, and keeps the bus count with the smallest
// makespan.
func OptimizeFixedBus(jobs []*Job, width, maxBuses int) (*BusSchedule, error) {
	if width < 1 {
		return nil, fmt.Errorf("tam: bin width %d < 1", width)
	}
	if maxBuses < 1 {
		maxBuses = 1
	}
	for _, j := range jobs {
		if err := j.Validate(width); err != nil {
			return nil, err
		}
	}
	var best *BusSchedule
	for buses := 1; buses <= maxBuses && buses <= width; buses++ {
		s, err := fixedBusWith(jobs, width, buses)
		if err != nil {
			continue // e.g. widest job does not fit any bus at this split
		}
		if best == nil || s.Makespan < best.Makespan {
			best = s
		}
	}
	if best == nil {
		return nil, fmt.Errorf("tam: no feasible fixed-bus partition for %d wires", width)
	}
	if err := best.Validate(); err != nil {
		return nil, fmt.Errorf("tam: internal error: invalid fixed-bus schedule: %w", err)
	}
	return best, nil
}

func fixedBusWith(jobs []*Job, width, buses int) (*BusSchedule, error) {
	s := &BusSchedule{Buses: make([]Bus, buses)}
	base, extra := width/buses, width%buses
	for i := range s.Buses {
		s.Buses[i].Width = base
		if i < extra {
			s.Buses[i].Width++
		}
	}

	// Bind every serialization group to one unit so it never splits.
	type unit struct {
		jobs     []*Job
		minWidth int   // widest minimum across members
		load     int64 // serial time on a reference width (sorting key)
	}
	units := map[string]*unit{}
	var order []*unit
	for _, j := range jobs {
		key := j.Group
		if key == "" {
			key = "job:" + j.ID
		}
		u := units[key]
		if u == nil {
			u = &unit{}
			units[key] = u
			order = append(order, u)
		}
		u.jobs = append(u.jobs, j)
		if mw := j.Options[0].Width; mw > u.minWidth {
			u.minWidth = mw
		}
		u.load += j.minTime(width)
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].load != order[b].load {
			return order[a].load > order[b].load
		}
		return order[a].jobs[0].ID < order[b].jobs[0].ID
	})

	loads := make([]int64, buses)
	for _, u := range order {
		// Least-loaded bus wide enough for every member; time evaluated
		// at the bus's width.
		bestBus := -1
		var bestFinish int64
		for bi := range s.Buses {
			if s.Buses[bi].Width < u.minWidth {
				continue
			}
			var dur int64
			for _, j := range u.jobs {
				dur += timeFor(j, s.Buses[bi].Width)
			}
			finish := loads[bi] + dur
			if bestBus < 0 || finish < bestFinish {
				bestBus, bestFinish = bi, finish
			}
		}
		if bestBus < 0 {
			return nil, fmt.Errorf("tam: unit needs %d wires, no bus wide enough", u.minWidth)
		}
		for _, j := range u.jobs {
			dur := timeFor(j, s.Buses[bestBus].Width)
			s.Buses[bestBus].Slots = append(s.Buses[bestBus].Slots, BusSlot{
				Job:   j,
				Start: loads[bestBus],
				End:   loads[bestBus] + dur,
			})
			loads[bestBus] += dur
		}
	}
	for _, l := range loads {
		if l > s.Makespan {
			s.Makespan = l
		}
	}
	return s, nil
}
