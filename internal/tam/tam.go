// Package tam schedules core tests on a flexible-width test access
// mechanism by rectangle packing, the approach of Iyengar, Chakrabarty
// and Marinissen ("On using rectangle packing for SOC wrapper/TAM
// co-optimization", VTS 2002) that the paper uses for its TAM
// optimization (Section 4, ref [6]).
//
// Each job (a digital core, or one analog test of a wrapped analog core)
// is a rectangle: a choice of TAM width w from its staircase and a test
// time T(w). The scheduler packs the rectangles into a bin of W wires ×
// unbounded time, assigning each job a start time and a contiguous band
// of wires, minimizing the SOC test time (makespan).
//
// Analog cores that share a test wrapper must be tested one at a time;
// such jobs carry a serialization group, and the scheduler never overlaps
// two jobs of the same group in time even when enough wires are free.
// This is the constraint that couples the paper's wrapper-sharing choice
// to the SOC test time.
package tam

import (
	"fmt"
	"sort"

	"mixsoc/internal/wrapper"
)

// Job is one schedulable unit of test.
type Job struct {
	// ID uniquely identifies the job, e.g. "core06" or "A/fc".
	ID string
	// Options is the job's width staircase: candidate (width, time)
	// pairs with strictly increasing width and strictly decreasing time.
	// A job with a single option has a fixed shape (analog tests).
	Options []wrapper.Point
	// Group, when non-empty, names a serialization group: no two jobs
	// with the same group may overlap in time (shared analog wrapper, or
	// the several tests of one analog core).
	Group string
}

// Validate checks the job's staircase invariants against the bin width.
func (j *Job) Validate(binWidth int) error {
	if j.ID == "" {
		return fmt.Errorf("tam: job has no ID")
	}
	if len(j.Options) == 0 {
		return fmt.Errorf("tam: job %s has no width options", j.ID)
	}
	for i, p := range j.Options {
		if p.Width < 1 || p.Time <= 0 {
			return fmt.Errorf("tam: job %s option %d: bad point (%d, %d)", j.ID, i, p.Width, p.Time)
		}
		if i > 0 && (p.Width <= j.Options[i-1].Width || p.Time >= j.Options[i-1].Time) {
			return fmt.Errorf("tam: job %s: staircase not strictly improving at option %d", j.ID, i)
		}
	}
	if j.Options[0].Width > binWidth {
		return fmt.Errorf("tam: job %s needs at least %d wires, TAM has %d", j.ID, j.Options[0].Width, binWidth)
	}
	return nil
}

// usable returns the options that fit in the bin.
func (j *Job) usable(binWidth int) []wrapper.Point {
	var out []wrapper.Point
	for _, p := range j.Options {
		if p.Width <= binWidth {
			out = append(out, p)
		}
	}
	return out
}

// widest returns the widest usable option, falling back to the job's
// narrowest option when even that exceeds the bin (callers that need a
// feasible placement validate separately; bounds stay conservative).
func (j *Job) widest(binWidth int) wrapper.Point {
	u := j.usable(binWidth)
	if len(u) == 0 {
		return j.Options[0]
	}
	return u[len(u)-1]
}

// minTime is the job's test time at its widest usable option.
func (j *Job) minTime(binWidth int) int64 { return j.widest(binWidth).Time }

// volume is the wire-cycle area of the job at its widest usable option,
// a proxy for the work the job adds to the bin.
func (j *Job) volume(binWidth int) int64 {
	p := j.widest(binWidth)
	return int64(p.Width) * p.Time
}

// minVolume is the smallest wire-cycle area among the job's usable
// options — the least work any feasible placement can add to the bin
// (staircases trade wires for time imperfectly, so the cheapest area
// need not sit at either end).
func (j *Job) minVolume(binWidth int) int64 {
	u := j.usable(binWidth)
	if len(u) == 0 {
		u = j.Options[:1]
	}
	best := int64(u[0].Width) * u[0].Time
	for _, p := range u[1:] {
		if v := int64(p.Width) * p.Time; v < best {
			best = v
		}
	}
	return best
}

// Placement is one scheduled job.
type Placement struct {
	Job    *Job
	Width  int   // chosen TAM width
	Start  int64 // start time, cycles
	End    int64 // Start + T(Width)
	WireLo int   // first wire of the contiguous band [WireLo, WireLo+Width)
}

func (p *Placement) overlapsTime(q *Placement) bool {
	return p.Start < q.End && q.Start < p.End
}

func (p *Placement) overlapsWires(q *Placement) bool {
	return p.WireLo < q.WireLo+q.Width && q.WireLo < p.WireLo+p.Width
}

// Schedule is a complete TAM test schedule.
type Schedule struct {
	Width      int // W, the SOC-level TAM width
	Placements []Placement
	Makespan   int64 // SOC test time in cycles
}

// Validate checks that the schedule is physically realizable: every
// placement inside the bin, no two placements sharing a wire at the same
// time, and no serialization group overlapping in time.
func (s *Schedule) Validate() error {
	for i := range s.Placements {
		p := &s.Placements[i]
		if p.Start < 0 || p.Width < 1 || p.WireLo < 0 || p.WireLo+p.Width > s.Width {
			return fmt.Errorf("tam: placement %s outside bin: wires [%d,%d) of %d, start %d",
				p.Job.ID, p.WireLo, p.WireLo+p.Width, s.Width, p.Start)
		}
		if p.End != p.Start+timeFor(p.Job, p.Width) {
			return fmt.Errorf("tam: placement %s: End %d inconsistent with staircase", p.Job.ID, p.End)
		}
		if p.End > s.Makespan {
			return fmt.Errorf("tam: placement %s ends at %d after makespan %d", p.Job.ID, p.End, s.Makespan)
		}
	}
	for i := range s.Placements {
		for j := i + 1; j < len(s.Placements); j++ {
			p, q := &s.Placements[i], &s.Placements[j]
			if p.overlapsTime(q) && p.overlapsWires(q) {
				return fmt.Errorf("tam: %s and %s overlap in time and wires", p.Job.ID, q.Job.ID)
			}
			if p.Job.Group != "" && p.Job.Group == q.Job.Group && p.overlapsTime(q) {
				return fmt.Errorf("tam: %s and %s share group %q but overlap in time", p.Job.ID, q.Job.ID, p.Job.Group)
			}
		}
	}
	return nil
}

// timeFor evaluates the job's staircase at width w: the time of the
// widest option with Width ≤ w (w must cover the narrowest option).
func timeFor(j *Job, w int) int64 {
	t := int64(-1)
	for _, p := range j.Options {
		if p.Width > w {
			break
		}
		t = p.Time
	}
	if t < 0 {
		panic(fmt.Sprintf("tam: job %s evaluated below minimum width", j.ID))
	}
	return t
}

// ByEnd returns the placements sorted by end time then ID, for stable
// reporting.
func (s *Schedule) ByEnd() []Placement {
	out := append([]Placement(nil), s.Placements...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].End != out[b].End {
			return out[a].End < out[b].End
		}
		return out[a].Job.ID < out[b].Job.ID
	})
	return out
}

// Utilization is the fraction of the W×makespan bin covered by tests.
func (s *Schedule) Utilization() float64 {
	if s.Makespan == 0 || s.Width == 0 {
		return 0
	}
	var used int64
	for i := range s.Placements {
		p := &s.Placements[i]
		used += int64(p.Width) * (p.End - p.Start)
	}
	return float64(used) / (float64(s.Width) * float64(s.Makespan))
}

// LowerBound returns the packing lower bound for the jobs in a bin of
// the given width: the larger of the total volume divided by the width
// and the longest unavoidable job/group time.
func LowerBound(jobs []*Job, width int) int64 {
	var volume int64
	var longest int64
	groupTime := map[string]int64{}
	for _, j := range jobs {
		volume += j.volume(width)
		mt := j.minTime(width)
		if mt > longest {
			longest = mt
		}
		if j.Group != "" {
			groupTime[j.Group] += mt
		}
	}
	for _, t := range groupTime {
		if t > longest {
			longest = t
		}
	}
	if lb := (volume + int64(width) - 1) / int64(width); lb > longest {
		return lb
	}
	return longest
}

// AdmissibleLowerBound is LowerBound with the volume term taken at
// each job's cheapest usable option instead of its widest. LowerBound
// is the packer's improvement target — its widest-option volume tracks
// what greedy packings actually spend, but can exceed the area of a
// schedule that narrows a job, so it is not a bound on every valid
// schedule. This one is: any placement of job j covers at least
// minVolume(j) wire-cycles and runs at least its widest-option time,
// and a shared wrapper group's jobs serialize, so no valid schedule of
// the jobs — packed by this library or otherwise — finishes earlier.
// Branch-and-bound pruning needs exactly that admissibility.
func AdmissibleLowerBound(jobs []*Job, width int) int64 {
	var volume int64
	var longest int64
	groupTime := map[string]int64{}
	for _, j := range jobs {
		volume += j.minVolume(width)
		mt := j.minTime(width)
		if mt > longest {
			longest = mt
		}
		if j.Group != "" {
			groupTime[j.Group] += mt
		}
	}
	for _, t := range groupTime {
		if t > longest {
			longest = t
		}
	}
	if lb := (volume + int64(width) - 1) / int64(width); lb > longest {
		return lb
	}
	return longest
}
