package tam

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mixsoc/internal/wrapper"
)

// randomJobs derives a reproducible random job set from (seed, nJobs,
// binWidth): staircases are strictly improving, a third of the jobs
// carry one of two serialization groups, and every job has at least one
// option that fits the bin.
func randomJobs(seed int64, nJobs, binWidth int) []*Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]*Job, 0, nJobs)
	for i := 0; i < nJobs; i++ {
		w := 1 + rng.Intn(binWidth)
		tt := int64(20 + rng.Intn(300))
		pts := []wrapper.Point{{Width: w, Time: tt}}
		for len(pts) < 1+rng.Intn(4) {
			w += 1 + rng.Intn(8)
			tt -= 1 + rng.Int63n(tt/2+1)
			if tt <= 0 {
				break
			}
			pts = append(pts, wrapper.Point{Width: w, Time: tt})
		}
		j := &Job{ID: fmt.Sprintf("j%02d", i), Options: pts}
		if rng.Intn(3) == 0 {
			j.Group = fmt.Sprintf("g%d", rng.Intn(2))
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// FuzzBitmaskFitter packs random job sets twice — once with the bitset
// band search (single-word for bins ≤ 64 wires, multi-word beyond) and
// once with the per-wire counter scan it replaced — and requires
// bit-identical earliest-fit answers and placements at every step. The
// counter scan is the reference implementation; any divergence is a bug
// in the bitset paths.
func FuzzBitmaskFitter(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(12))
	f.Add(int64(7), uint8(1), uint8(5))
	f.Add(int64(42), uint8(63), uint8(16))
	f.Add(int64(99), uint8(31), uint8(9))
	f.Add(int64(1234), uint8(47), uint8(14))
	// Multi-word widths: just past one word, two full words, and wider.
	f.Add(int64(5), uint8(64), uint8(12))
	f.Add(int64(17), uint8(65), uint8(10))
	f.Add(int64(23), uint8(127), uint8(15))
	f.Add(int64(31), uint8(128), uint8(8))
	f.Add(int64(77), uint8(200), uint8(13))
	f.Fuzz(func(t *testing.T, seed int64, widthByte, nByte uint8) {
		binWidth := 1 + int(widthByte)
		n := 2 + int(nByte)%14
		jobs := randomJobs(seed, n, binWidth)

		cfg := config{improvePasses: len(jobs), paretoOnly: true}
		opts := newOptionTable(jobs, binWidth, cfg)
		mask := newFitter(opts, binWidth, cfg)
		scan := newFitter(opts, binWidth, cfg)
		scan.useMask = false
		if !mask.useMask {
			t.Fatalf("binWidth %d should select a bitset path", binWidth)
		}
		if (binWidth > 64) != (mask.busyWords != nil) {
			t.Fatalf("binWidth %d: wrong bitset representation selected", binWidth)
		}

		s := &Schedule{Width: binWidth}
		for _, j := range jobs {
			// Raw earliest-fit answers must agree for every width option,
			// with and without a pruning limit.
			mask.prepare(s.Placements)
			scan.prepare(s.Placements)
			for _, opt := range opts[j] {
				for _, limit := range []int64{math.MaxInt64, 100} {
					mt, mw, mok := mask.earliestFit(j, opt.Width, opt.Time, s.Placements, limit)
					st, sw, sok := scan.earliestFit(j, opt.Width, opt.Time, s.Placements, limit)
					if mt != st || mw != sw || mok != sok {
						t.Fatalf("earliestFit(%s, w=%d, dur=%d, limit=%d) diverges: mask (%d,%d,%v) scan (%d,%d,%v)",
							j.ID, opt.Width, opt.Time, limit, mt, mw, mok, st, sw, sok)
					}
				}
			}
			mp, mok := mask.bestPlacement(j, s.Placements)
			sp, sok := scan.bestPlacement(j, s.Placements)
			if mok != sok || mp != sp {
				t.Fatalf("bestPlacement(%s) diverges: mask %+v/%v scan %+v/%v", j.ID, mp, mok, sp, sok)
			}
			if !mok {
				t.Fatalf("could not place %s in width-%d bin", j.ID, binWidth)
			}
			s.Placements = append(s.Placements, mp)
			if mp.End > s.Makespan {
				s.Makespan = mp.End
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("packed schedule invalid: %v", err)
		}
	})
}

// TestRunMask pins the word-trick band search against a bit-by-bit
// reference on exhaustive small masks and random 64-bit ones.
func TestRunMask(t *testing.T) {
	ref := func(free uint64, w int) uint64 {
		var out uint64
		for i := 0; i+w <= 64; i++ {
			all := true
			for b := i; b < i+w; b++ {
				if free&(1<<uint(b)) == 0 {
					all = false
					break
				}
			}
			if all {
				out |= 1 << uint(i)
			}
		}
		return out
	}
	for free := uint64(0); free < 1<<10; free++ {
		for w := 1; w <= 10; w++ {
			if got, want := runMask(free, w)&((1<<10)-1), ref(free, w)&((1<<10)-1); got != want {
				t.Fatalf("runMask(%#b, %d) = %#b, want %#b", free, w, got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		free := rng.Uint64()
		w := 1 + rng.Intn(64)
		if got, want := runMask(free, w), ref(free, w); got != want {
			t.Fatalf("runMask(%#x, %d) = %#x, want %#x", free, w, got, want)
		}
	}
}

// TestLowestFreeRun pins the multi-word band search against a
// wire-by-wire reference across word-boundary-straddling runs, partial
// last words, and random bitsets.
func TestLowestFreeRun(t *testing.T) {
	ref := func(busy []uint64, binWidth, w int) int {
		run := 0
		for wire := 0; wire < binWidth; wire++ {
			if busy[wire>>6]&(1<<uint(wire&63)) != 0 {
				run = 0
				continue
			}
			run++
			if run >= w {
				return wire - w + 1
			}
		}
		return -1
	}
	set := func(busy []uint64, wires ...int) {
		for _, wire := range wires {
			busy[wire>>6] |= 1 << uint(wire&63)
		}
	}

	// Hand-picked shapes: empty bitset, a run straddling the 64-bit
	// boundary, a fully busy middle word, and a partial last word.
	for _, binWidth := range []int{65, 100, 128, 129, 200} {
		words := (binWidth + 63) / 64
		empty := make([]uint64, words)
		for _, w := range []int{1, 63, 64, 65, binWidth, binWidth + 1} {
			if got, want := lowestFreeRun(empty, binWidth, w), ref(empty, binWidth, w); got != want {
				t.Fatalf("empty bitset binWidth=%d w=%d: got %d, want %d", binWidth, w, got, want)
			}
		}
		straddle := make([]uint64, words)
		for wire := 0; wire < 60; wire++ {
			set(straddle, wire)
		}
		for wire := 70; wire < binWidth; wire++ {
			set(straddle, wire)
		}
		for _, w := range []int{1, 5, 10, 11} {
			if got, want := lowestFreeRun(straddle, binWidth, w), ref(straddle, binWidth, w); got != want {
				t.Fatalf("straddle binWidth=%d w=%d: got %d, want %d", binWidth, w, got, want)
			}
		}
	}

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		binWidth := 65 + rng.Intn(200)
		words := (binWidth + 63) / 64
		busy := make([]uint64, words)
		for wi := range busy {
			switch rng.Intn(4) {
			case 0: // mostly busy
				busy[wi] = rng.Uint64() | rng.Uint64()
			case 1: // mostly free
				busy[wi] = rng.Uint64() & rng.Uint64() & rng.Uint64()
			case 2:
				busy[wi] = rng.Uint64()
			case 3: // all free
			}
		}
		w := 1 + rng.Intn(binWidth+2)
		if got, want := lowestFreeRun(busy, binWidth, w), ref(busy, binWidth, w); got != want {
			t.Fatalf("random bitset %d (binWidth=%d, w=%d): got %d, want %d", i, binWidth, w, got, want)
		}
	}
}
