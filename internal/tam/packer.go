package tam

import "fmt"

// Packer is a pluggable packing backend: given a job set and a bin
// width it returns a validated Schedule. Every backend honours the same
// Option set — warm-start seeding (WithWarmStart), cancellation
// (WithContext), and the tuning knobs — and every output passes the one
// shared feasibility contract, Schedule.Validate, so backends are
// interchangeable anywhere a schedule is consumed and differ only in
// search strategy (and therefore makespan).
type Packer interface {
	// Name returns the backend's registry name (e.g. "occupancy").
	Name() string
	// Pack packs the jobs into a TAM of the given width.
	Pack(jobs []*Job, width int, opts ...Option) (*Schedule, error)
}

// Backend registry names. The empty string resolves to the default
// backend (occupancy), keeping every pre-existing call path — and its
// bytes — unchanged.
const (
	// BackendOccupancy names the default occupancy-sweep backend
	// (Optimize): three complementary orderings packed concurrently,
	// then a repack + improve polish.
	BackendOccupancy = "occupancy"
	// BackendRectangle names the rectangle bin-packing backend
	// (PackRectangle): one diagonal-length ordering pass (arXiv
	// 1008.4446) plus the shared improve polish.
	BackendRectangle = "rectangle"
)

// OccupancyPacker is the default backend, wrapping Optimize.
type OccupancyPacker struct{}

// Name implements Packer.
func (OccupancyPacker) Name() string { return BackendOccupancy }

// Pack implements Packer by calling Optimize.
func (OccupancyPacker) Pack(jobs []*Job, width int, opts ...Option) (*Schedule, error) {
	return Optimize(jobs, width, opts...)
}

// RectanglePacker is the rectangle bin-packing backend, wrapping
// PackRectangle.
type RectanglePacker struct{}

// Name implements Packer.
func (RectanglePacker) Name() string { return BackendRectangle }

// Pack implements Packer by calling PackRectangle.
func (RectanglePacker) Pack(jobs []*Job, width int, opts ...Option) (*Schedule, error) {
	return PackRectangle(jobs, width, opts...)
}

// Compile-time interface assertions: every backend satisfies Packer.
var (
	_ Packer = OccupancyPacker{}
	_ Packer = RectanglePacker{}
)

// Backends lists the registered backend names in registry order (the
// default first). The slice is fresh on every call.
func Backends() []string {
	return []string{BackendOccupancy, BackendRectangle}
}

// Lookup resolves a backend name to its Packer. The empty string means
// the default (occupancy) backend; an unknown name is an error listing
// the registered backends.
func Lookup(name string) (Packer, error) {
	switch name {
	case "", BackendOccupancy:
		return OccupancyPacker{}, nil
	case BackendRectangle:
		return RectanglePacker{}, nil
	}
	return nil, fmt.Errorf("tam: unknown packing backend %q (have %v)", name, Backends())
}

// validateJobs runs the shared pre-pack checks every backend performs:
// each job must validate against the bin width and job IDs must be
// unique.
func validateJobs(jobs []*Job, width int) error {
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(width); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("tam: duplicate job ID %s", j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}
