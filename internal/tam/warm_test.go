package tam

import (
	"testing"

	"mixsoc/internal/wrapper"
)

// A warm start from a narrower bin must produce a valid schedule that
// is never worse than the seed: adoption is verbatim and the polish
// loops are monotone.
func TestWarmStartNeverWorseThanSeed(t *testing.T) {
	jobs := digitalJobs(t, 64)
	for _, step := range [][2]int{{24, 32}, {32, 40}, {40, 64}} {
		seed, err := Optimize(jobs, step[0])
		if err != nil {
			t.Fatal(err)
		}
		warm, err := Optimize(jobs, step[1], WithWarmStart(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := warm.Validate(); err != nil {
			t.Fatalf("%d->%d: warm schedule invalid: %v", step[0], step[1], err)
		}
		if warm.Width != step[1] {
			t.Fatalf("%d->%d: width = %d", step[0], step[1], warm.Width)
		}
		if warm.Makespan > seed.Makespan {
			t.Errorf("%d->%d: warm makespan %d worse than seed %d", step[0], step[1], warm.Makespan, seed.Makespan)
		}
		// And close to cold quality (the polish loops are shared).
		cold, err := Optimize(jobs, step[1])
		if err != nil {
			t.Fatal(err)
		}
		if ratio := float64(warm.Makespan) / float64(cold.Makespan); ratio > 1.15 {
			t.Errorf("%d->%d: warm makespan %d is %.2fx the cold %d", step[0], step[1], warm.Makespan, ratio, cold.Makespan)
		}
	}
}

// Warm-started runs are deterministic: same seed, same result.
func TestWarmStartDeterministic(t *testing.T) {
	jobs := digitalJobs(t, 48)
	seed, err := Optimize(jobs, 32)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Optimize(jobs, 48, WithWarmStart(seed))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s, err := Optimize(jobs, 48, WithWarmStart(seed))
		if err != nil {
			t.Fatal(err)
		}
		if s.CSV() != ref.CSV() {
			t.Fatalf("run %d: warm schedule differs from first run", i)
		}
	}
}

// A seed that does not describe the job set is ignored, and the result
// is exactly the cold packing.
func TestWarmStartIgnoresForeignSeed(t *testing.T) {
	jobs := digitalJobs(t, 48)
	cold, err := Optimize(jobs, 48)
	if err != nil {
		t.Fatal(err)
	}
	foreign := &Schedule{Width: 8, Makespan: 10, Placements: []Placement{
		{Job: fixedJob("not-a-p93791-core", 2, 10), Width: 2, Start: 0, End: 10, WireLo: 0},
	}}
	warm, err := Optimize(jobs, 48, WithWarmStart(foreign))
	if err != nil {
		t.Fatal(err)
	}
	if warm.CSV() != cold.CSV() {
		t.Error("foreign seed was not ignored")
	}
	// A nil seed is likewise a no-op.
	warm, err = Optimize(jobs, 48, WithWarmStart(nil))
	if err != nil {
		t.Fatal(err)
	}
	if warm.CSV() != cold.CSV() {
		t.Error("nil seed was not ignored")
	}
}

// A seed from a WIDER bin cannot be adopted verbatim (its placements
// may not fit); it is adapted by re-placing the jobs in the seed's
// order, which must yield a valid, deterministic schedule at the
// narrower width that stays close to cold quality.
func TestWarmStartAdaptsWiderSeed(t *testing.T) {
	jobs := digitalJobs(t, 64)
	seed, err := Optimize(jobs, 64)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Optimize(jobs, 32)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Optimize(jobs, 32, WithWarmStart(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Validate(); err != nil {
		t.Fatalf("warm schedule invalid: %v", err)
	}
	if warm.Width != 32 {
		t.Fatalf("warm width = %d, want 32", warm.Width)
	}
	if ratio := float64(warm.Makespan) / float64(cold.Makespan); ratio > 1.15 {
		t.Errorf("shrunk warm makespan %d is %.2fx the cold %d", warm.Makespan, ratio, cold.Makespan)
	}
	again, err := Optimize(jobs, 32, WithWarmStart(seed))
	if err != nil {
		t.Fatal(err)
	}
	if again.CSV() != warm.CSV() {
		t.Error("wider-seed adaptation not deterministic")
	}
	// A foreign wider seed is still ignored: exactly the cold packing.
	foreign := &Schedule{Width: 96, Makespan: 10, Placements: []Placement{
		{Job: fixedJob("not-a-p93791-core", 2, 10), Width: 2, Start: 0, End: 10, WireLo: 0},
	}}
	fromForeign, err := Optimize(jobs, 32, WithWarmStart(foreign))
	if err != nil {
		t.Fatal(err)
	}
	if fromForeign.CSV() != cold.CSV() {
		t.Error("foreign wider seed was not ignored")
	}
}

// With several seeds the packer adopts the one with the best pre-polish
// makespan; seeding with (worse, better) and (better, worse) pairs must
// both land on the better seed's result.
func TestWarmStartBestOfSeveralSeeds(t *testing.T) {
	jobs := digitalJobs(t, 64)
	near, err := Optimize(jobs, 56) // narrower, close: adopts verbatim
	if err != nil {
		t.Fatal(err)
	}
	far, err := Optimize(jobs, 8) // narrower, far: much worse makespan
	if err != nil {
		t.Fatal(err)
	}
	if far.Makespan <= near.Makespan {
		t.Fatalf("test premise broken: 8-wire makespan %d not worse than 56-wire %d", far.Makespan, near.Makespan)
	}
	ref, err := Optimize(jobs, 64, WithWarmStart(near))
	if err != nil {
		t.Fatal(err)
	}
	for _, seeds := range [][]*Schedule{{near, far}, {far, near}} {
		got, err := Optimize(jobs, 64, WithWarmStart(seeds[0]), WithWarmStart(seeds[1]))
		if err != nil {
			t.Fatal(err)
		}
		if got.CSV() != ref.CSV() {
			t.Errorf("seed pair did not adopt the better (56-wire) seed")
		}
	}
	// A nil seed among usable ones is skipped, not adopted.
	got, err := Optimize(jobs, 64, WithWarmStart(nil), WithWarmStart(near))
	if err != nil {
		t.Fatal(err)
	}
	if got.CSV() != ref.CSV() {
		t.Error("nil seed perturbed multi-seed adoption")
	}
}

// adoptSeed must re-derive durations from the current staircases and
// reject seeds whose widths fall below a job's narrowest option.
func TestAdoptSeedRederivesDurations(t *testing.T) {
	a := &Job{ID: "a", Options: []wrapper.Point{{Width: 2, Time: 10}, {Width: 4, Time: 6}}}
	seed := &Schedule{Width: 4, Makespan: 10, Placements: []Placement{
		{Job: &Job{ID: "a"}, Width: 2, Start: 0, End: 99, WireLo: 1}, // stale End
	}}
	s := adoptSeed([]*Job{a}, 6, seed)
	if s == nil {
		t.Fatal("seed not adopted")
	}
	if s.Placements[0].End != 10 || s.Placements[0].Job != a {
		t.Errorf("adopted placement = %+v, want End 10 bound to job a", s.Placements[0])
	}
	// Width below the narrowest option: reject.
	bad := &Schedule{Width: 4, Makespan: 10, Placements: []Placement{
		{Job: &Job{ID: "a"}, Width: 1, Start: 0, End: 10, WireLo: 0},
	}}
	if adoptSeed([]*Job{a}, 6, bad) != nil {
		t.Error("sub-staircase width accepted")
	}
	// Missing job: reject.
	b := &Job{ID: "b", Options: []wrapper.Point{{Width: 1, Time: 5}}}
	if adoptSeed([]*Job{a, b}, 6, seed) != nil {
		t.Error("incomplete seed accepted")
	}
}

// BenchmarkEarliestFit measures one bestPlacement query — the packer's
// innermost operation — against a realistic packed schedule, comparing
// the bitmask band search with the counter-scan reference.
func BenchmarkEarliestFit(b *testing.B) {
	jobs := digitalJobs(b, 64)
	s, err := Optimize(jobs, 64)
	if err != nil {
		b.Fatal(err)
	}
	probe := jobs[len(jobs)-1]
	placements := s.Placements[:len(s.Placements)-1]
	cfg := config{improvePasses: len(jobs), paretoOnly: true}
	opts := newOptionTable(jobs, 64, cfg)
	run := func(b *testing.B, f *fitter) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := f.bestPlacement(probe, placements); !ok {
				b.Fatal("no placement found")
			}
		}
	}
	b.Run("bitmask", func(b *testing.B) {
		run(b, newFitter(opts, 64, cfg))
	})
	b.Run("counter-scan", func(b *testing.B) {
		f := newFitter(opts, 64, cfg)
		f.useMask = false
		run(b, f)
	})
}

// BenchmarkWarmStart compares cold packing with warm-starting from the
// adjacent narrower width.
func BenchmarkWarmStart(b *testing.B) {
	jobs := digitalJobs(b, 48)
	seed, err := Optimize(jobs, 40)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Optimize(jobs, 48); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Optimize(jobs, 48, WithWarmStart(seed)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
