package tam

import (
	"strings"
	"testing"

	"mixsoc/internal/wrapper"
)

// These tests pin down scheduler behavior at the edges of its input
// space — shapes the embedded paper benchmarks never exercise but that
// generated and uploaded SOCs can produce.

func TestOptimizeNoJobs(t *testing.T) {
	s, err := Optimize(nil, 8)
	if err != nil {
		t.Fatalf("Optimize(nil jobs): %v", err)
	}
	if len(s.Placements) != 0 || s.Makespan != 0 {
		t.Errorf("empty job list: got %d placements, makespan %d", len(s.Placements), s.Makespan)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("empty schedule does not validate: %v", err)
	}
}

func TestOptimizeJobWiderThanBin(t *testing.T) {
	jobs := []*Job{{ID: "wide", Options: []wrapper.Point{{Width: 12, Time: 100}}}}
	_, err := Optimize(jobs, 8)
	if err == nil {
		t.Fatal("job needing 12 wires packed into an 8-wire bin")
	}
	if !strings.Contains(err.Error(), "needs at least") {
		t.Errorf("error should name the width shortfall, got: %v", err)
	}
}

func TestOptimizeSingleJob(t *testing.T) {
	jobs := []*Job{{ID: "only", Options: []wrapper.Point{
		{Width: 1, Time: 400}, {Width: 2, Time: 200}, {Width: 4, Time: 100},
	}}}
	s, err := Optimize(jobs, 8)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if s.Makespan != 100 {
		t.Errorf("single flexible job should run at its widest option: makespan %d, want 100", s.Makespan)
	}
}

func TestGroupSerializationForcesSequence(t *testing.T) {
	// Three 1-wire jobs in the same serialization group inside a very
	// wide bin: wires are abundant, so only the group constraint can
	// keep them apart, and the makespan must be the serial sum.
	jobs := []*Job{
		{ID: "a", Group: "g", Options: []wrapper.Point{{Width: 1, Time: 100}}},
		{ID: "b", Group: "g", Options: []wrapper.Point{{Width: 1, Time: 200}}},
		{ID: "c", Group: "g", Options: []wrapper.Point{{Width: 1, Time: 300}}},
	}
	s, err := Optimize(jobs, 64)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if s.Makespan != 600 {
		t.Errorf("serialized group makespan = %d, want 600", s.Makespan)
	}
}
