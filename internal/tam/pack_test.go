package tam

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"mixsoc/internal/wrapper"
)

// fitterFor builds a fitter over the jobs of a hand-made schedule, the
// way Optimize would.
func fitterFor(s *Schedule, extra ...*Job) *fitter {
	jobs := append([]*Job(nil), extra...)
	for i := range s.Placements {
		jobs = append(jobs, s.Placements[i].Job)
	}
	cfg := config{improvePasses: len(jobs), paretoOnly: true}
	return newFitter(newOptionTable(jobs, s.Width, cfg), s.Width, cfg)
}

// Regression for the monotonicity gap where improve gave up at the first
// makespan-defining job it could not move instead of trying the next
// one: job a is pinned at the makespan by its serialization group, and
// must not stop the loop from re-placing job b into the idle prefix of
// wire 1.
func TestImproveTriesNextMakespanDefiningJob(t *testing.T) {
	f1 := groupJob("f1", "g", 1, 12)
	a := groupJob("a", "g", 1, 3)
	b := fixedJob("b", 1, 10)
	s := &Schedule{Width: 2, Makespan: 15, Placements: []Placement{
		{Job: f1, Width: 1, Start: 0, End: 12, WireLo: 0},
		{Job: a, Width: 1, Start: 12, End: 15, WireLo: 0},
		{Job: b, Width: 1, Start: 5, End: 15, WireLo: 1},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("test scenario invalid: %v", err)
	}

	improve(s, fitterFor(s))

	if err := s.Validate(); err != nil {
		t.Fatalf("improve produced invalid schedule: %v", err)
	}
	if s.Makespan != 15 {
		t.Errorf("makespan = %d, want 15 (a is pinned by its group)", s.Makespan)
	}
	ends := map[string]int64{}
	for i := range s.Placements {
		ends[s.Placements[i].Job.ID] = s.Placements[i].End
	}
	if ends["a"] != 15 {
		t.Errorf("a.End = %d, want 15 (group-pinned)", ends["a"])
	}
	// The old loop returned as soon as a failed to move; the fixed loop
	// goes on to re-place b at the front of wire 1.
	if ends["b"] != 10 {
		t.Errorf("b.End = %d, want 10 (re-placed after the stuck job)", ends["b"])
	}
}

// Improvement must be able to chain: moving one makespan-defining job
// can free the space that unsticks another on the next pass.
func TestImproveChainsAcrossPasses(t *testing.T) {
	// Wire 0 busy [0,12); a ([12,15), w1) and b ([11,15), w2) both end at
	// the 15-cycle makespan. b can drop into wires 1-2 at time 0; once it
	// has, a fits behind it at [4,7) and the makespan falls to 12.
	f1 := fixedJob("f1", 1, 12)
	a := fixedJob("a", 1, 3)
	b := fixedJob("b", 2, 4)
	s := &Schedule{Width: 3, Makespan: 15, Placements: []Placement{
		{Job: f1, Width: 1, Start: 0, End: 12, WireLo: 0},
		{Job: a, Width: 1, Start: 12, End: 15, WireLo: 1},
		{Job: b, Width: 2, Start: 11, End: 15, WireLo: 1},
	}}
	if err := s.Validate(); err == nil {
		// a and b overlap above — rebuild the intended layout.
		t.Fatal("scenario sanity check failed")
	}
	s.Placements[1] = Placement{Job: a, Width: 1, Start: 12, End: 15, WireLo: 0}
	if err := s.Validate(); err != nil {
		t.Fatalf("test scenario invalid: %v", err)
	}

	improve(s, fitterFor(s))

	if err := s.Validate(); err != nil {
		t.Fatalf("improve produced invalid schedule: %v", err)
	}
	if s.Makespan != 12 {
		t.Errorf("makespan = %d, want 12 after chained improvement\n%s", s.Makespan, s.Gantt(40))
	}
}

func TestRepackAndImproveAreMonotoneAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		width := 3 + rng.Intn(14)
		n := 5 + rng.Intn(11)
		var jobs []*Job
		for i := 0; i < n; i++ {
			w := 1 + rng.Intn(width)
			tt := int64(1 + rng.Intn(80))
			j := &Job{ID: string(rune('a' + i)), Options: []wrapper.Point{{Width: w, Time: tt}}}
			if rng.Intn(3) == 0 {
				j.Group = "grp" + string(rune('0'+rng.Intn(2)))
			}
			jobs = append(jobs, j)
		}
		cfg := config{improvePasses: len(jobs), paretoOnly: true}
		f := newFitter(newOptionTable(jobs, width, cfg), width, cfg)
		// Greedy pass without polish, in insertion order.
		s := &Schedule{Width: width}
		for _, j := range jobs {
			p, ok := f.bestPlacement(j, s.Placements)
			if !ok {
				t.Fatalf("trial %d: could not place %s", trial, j.ID)
			}
			s.Placements = append(s.Placements, p)
			if p.End > s.Makespan {
				s.Makespan = p.End
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: greedy schedule invalid: %v", trial, err)
		}

		before := s.Makespan
		endsBefore := map[string]int64{}
		for i := range s.Placements {
			endsBefore[s.Placements[i].Job.ID] = s.Placements[i].End
		}
		repack(s, f)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: repack produced invalid schedule: %v", trial, err)
		}
		if s.Makespan > before {
			t.Fatalf("trial %d: repack increased makespan %d -> %d", trial, before, s.Makespan)
		}
		for i := range s.Placements {
			p := &s.Placements[i]
			if p.End > endsBefore[p.Job.ID] {
				t.Fatalf("trial %d: repack moved %s later: %d -> %d",
					trial, p.Job.ID, endsBefore[p.Job.ID], p.End)
			}
		}

		mid := s.Makespan
		improve(s, f)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: improve produced invalid schedule: %v", trial, err)
		}
		if s.Makespan > mid {
			t.Fatalf("trial %d: improve increased makespan %d -> %d", trial, mid, s.Makespan)
		}
	}
}

// The polish loops must help, or at least never hurt, the end-to-end
// result versus the raw greedy packing.
func TestPolishNeverWorseThanGreedy(t *testing.T) {
	jobs := digitalJobs(t, 48)
	polished, err := Optimize(jobs, 48)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Optimize(jobs, 48, WithImprovePasses(0))
	if err != nil {
		t.Fatal(err)
	}
	if polished.Makespan > raw.Makespan {
		t.Errorf("polished makespan %d worse than greedy %d", polished.Makespan, raw.Makespan)
	}
}

// Optimize runs its three packing orderings concurrently; the outcome
// must nevertheless be bit-stable run to run, including placements.
func TestOptimizeConcurrentOrderingsDeterministic(t *testing.T) {
	jobs := digitalJobs(t, 40)
	ref, err := Optimize(jobs, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s, err := Optimize(jobs, 40)
		if err != nil {
			t.Fatal(err)
		}
		if s.CSV() != ref.CSV() {
			t.Fatalf("run %d: schedule differs from first run", i)
		}
	}
}

// A cancelled context aborts Optimize with the context's error — from
// the cold three-ordering race and from the warm-adoption path alike —
// while a live context changes nothing.
func TestOptimizeContextCancellation(t *testing.T) {
	jobs := digitalJobs(t, 48)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Optimize(jobs, 48, WithContext(cancelled)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cold pack under cancelled ctx: err = %v, want context.Canceled", err)
	}
	seed, err := Optimize(jobs, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(jobs, 48, WithWarmStart(seed), WithContext(cancelled)); !errors.Is(err, context.Canceled) {
		t.Fatalf("warm pack under cancelled ctx: err = %v, want context.Canceled", err)
	}

	cold, err := Optimize(jobs, 48)
	if err != nil {
		t.Fatal(err)
	}
	live, err := Optimize(jobs, 48, WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if live.CSV() != cold.CSV() {
		t.Error("live context perturbed the packing")
	}
}
