package tam

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// The backend registry is the contract every selection surface (CLI
// flag, request field, job manifest) resolves against: a fixed name
// list, the empty name meaning the default, and unknown names failing
// loudly with the valid names spelled out.
func TestBackendRegistry(t *testing.T) {
	want := []string{BackendOccupancy, BackendRectangle}
	got := Backends()
	if len(got) != len(want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Backends() = %v, want %v", got, want)
		}
	}
	for name, wantName := range map[string]string{
		"":               BackendOccupancy,
		BackendOccupancy: BackendOccupancy,
		BackendRectangle: BackendRectangle,
	} {
		pk, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if pk.Name() != wantName {
			t.Fatalf("Lookup(%q).Name() = %q, want %q", name, pk.Name(), wantName)
		}
	}
	_, err := Lookup("bogus")
	if err == nil {
		t.Fatal("Lookup(\"bogus\") did not fail")
	}
	for _, name := range want {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-backend error %q does not list %q", err, name)
		}
	}
}

// The rectangle backend must satisfy the shared schedule contract and
// be deterministic: same jobs, same bytes, run after run.
func TestRectanglePackerContract(t *testing.T) {
	jobs := digitalJobs(t, 48)
	s, err := RectanglePacker{}.Pack(jobs, 48)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("rectangle schedule invalid: %v", err)
	}
	if len(s.Placements) != len(jobs) {
		t.Fatalf("placed %d of %d jobs", len(s.Placements), len(jobs))
	}
	if lb := AdmissibleLowerBound(jobs, 48); s.Makespan < lb {
		t.Fatalf("makespan %d below admissible lower bound %d", s.Makespan, lb)
	}
	for i := 0; i < 3; i++ {
		again, err := RectanglePacker{}.Pack(jobs, 48)
		if err != nil {
			t.Fatal(err)
		}
		if again.CSV() != s.CSV() {
			t.Fatalf("run %d: rectangle schedule not deterministic", i)
		}
	}
}

// The rectangle backend shares the warm-start contract: a narrower
// seed is adopted verbatim and the monotone polish can only improve
// it, so the warm result is never worse than the seed.
func TestRectangleWarmStart(t *testing.T) {
	jobs := digitalJobs(t, 48)
	seed, err := RectanglePacker{}.Pack(jobs, 32)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RectanglePacker{}.Pack(jobs, 48, WithWarmStart(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Validate(); err != nil {
		t.Fatalf("warm rectangle schedule invalid: %v", err)
	}
	if warm.Width != 48 {
		t.Fatalf("warm width = %d, want 48", warm.Width)
	}
	if warm.Makespan > seed.Makespan {
		t.Errorf("warm makespan %d worse than seed %d", warm.Makespan, seed.Makespan)
	}
}

// The rectangle backend shares the cancellation contract: a cancelled
// context aborts the pack with context.Canceled, warm or cold.
func TestRectangleCancellation(t *testing.T) {
	jobs := digitalJobs(t, 48)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (RectanglePacker{}).Pack(jobs, 48, WithContext(cancelled)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cold pack under a cancelled context: err = %v, want context.Canceled", err)
	}
	seed, err := RectanglePacker{}.Pack(jobs, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (RectanglePacker{}).Pack(jobs, 48, WithWarmStart(seed), WithContext(cancelled)); !errors.Is(err, context.Canceled) {
		t.Fatalf("warm pack under a cancelled context: err = %v, want context.Canceled", err)
	}
}
