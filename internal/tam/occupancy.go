package tam

import (
	"cmp"
	"math"
	"math/bits"
	"slices"

	"mixsoc/internal/wrapper"
)

// fitter answers earliest-fit queries against a schedule's placements
// with a single time sweep per query instead of the per-candidate full
// rescans of the naive formulation. One fitter serves one packing
// goroutine: it owns reusable scratch buffers (start/end-sorted
// placement indices and a per-wire occupancy profile) so steady-state
// queries allocate nothing. The per-job width options (the Pareto
// staircase, or the full staircase under WithFullStaircase) are
// precomputed once per Optimize call and shared read-only between
// fitters.
//
// Two generations of speedup over the naive rescan live here:
//
//   - the candidate start times of a query (0, each placed rectangle's
//     end, and each start minus the query duration) are not collected
//     and sorted per width option; they are generated in ascending
//     order by merging the byStart/byEnd index orders, which
//     bestPlacement builds once per job and shares across every width
//     option of that job;
//   - the band search maintains a busy bitset alongside the per-wire
//     counters, turning the O(W) lowest-free-band scan at each
//     candidate time into word operations: a single uint64 with a
//     shift-and-AND lowest-run search for bins of at most 64 wires —
//     every width the paper sweeps — (see runMask), and a multi-word
//     bitset walked a word at a time (see lowestFreeRun) for wider
//     bins. The counter scan survives only as the reference
//     implementation both bitset paths are fuzzed against
//     (FuzzBitmaskFitter).
type fitter struct {
	binWidth int
	cfg      config

	// useMask selects the bitset band search (the default for every bin
	// width; tests clear it to force the counter-scan reference).
	// widthMask has the low binWidth bits set so wires outside a ≤ 64
	// bin read as busy; busyWords is the multi-word busy bitset of a
	// wider bin.
	useMask   bool
	widthMask uint64
	busyWords []uint64

	// opts maps each job to its candidate width options, precomputed by
	// newOptionTable. Read-only after construction; safe to share.
	opts map[*Job][]wrapper.Point

	// Scratch buffers, reused across queries.
	byStart []int32 // placement indices ordered by Start
	byEnd   []int32 // placement indices ordered by End
	occ     []int32 // occupancy count per wire during the sweep window
}

// newOptionTable precomputes the width options the packer will try for
// every job, so placement loops never re-derive (and re-allocate) the
// usable staircase.
func newOptionTable(jobs []*Job, binWidth int, cfg config) map[*Job][]wrapper.Point {
	opts := make(map[*Job][]wrapper.Point, len(jobs))
	for _, j := range jobs {
		opts[j] = candidateWidths(j, binWidth, cfg)
	}
	return opts
}

func newFitter(opts map[*Job][]wrapper.Point, binWidth int, cfg config) *fitter {
	f := &fitter{
		binWidth: binWidth,
		cfg:      cfg,
		opts:     opts,
		occ:      make([]int32, binWidth),
		useMask:  true,
	}
	if binWidth <= 64 {
		f.widthMask = ^uint64(0) >> uint(64-binWidth)
	} else {
		f.busyWords = make([]uint64, (binWidth+63)/64)
	}
	return f
}

// fork returns a fitter sharing the read-only option table but owning
// fresh scratch buffers, for use by a concurrent packing goroutine.
func (f *fitter) fork() *fitter { return newFitter(f.opts, f.binWidth, f.cfg) }

// prepare (re)builds the start- and end-sorted placement index orders
// the sweep cursors walk. The orders do not depend on the queried
// rectangle, so bestPlacement builds them once and reuses them across
// every width option of a job; they must be rebuilt whenever the
// placements slice changes.
func (f *fitter) prepare(placements []Placement) {
	byStart := f.byStart[:0]
	byEnd := f.byEnd[:0]
	for i := 0; i < len(placements); i++ {
		byStart = append(byStart, int32(i))
		byEnd = append(byEnd, int32(i))
	}
	slices.SortFunc(byStart, func(a, b int32) int {
		return cmp.Compare(placements[a].Start, placements[b].Start)
	})
	slices.SortFunc(byEnd, func(a, b int32) int {
		return cmp.Compare(placements[a].End, placements[b].End)
	})
	f.byStart, f.byEnd = byStart, byEnd
}

// candGen yields the candidate start times of one earliest-fit query in
// strictly ascending order: 0, then the ends of placed rectangles and
// their starts minus the query duration (a window can also become
// feasible right before a rectangle begins) — the same candidate set as
// a full collect-and-sort, produced by merging the already-sorted
// byStart and byEnd index orders with two monotone cursors. This is
// what lets one prepare() serve every width option of a job: the
// duration-dependent candidate stream costs O(n) per option instead of
// an O(n log n) sort.
type candGen struct {
	placements []Placement
	byStart    []int32
	byEnd      []int32
	dur        int64
	ce, cs     int // cursors into byEnd / byStart
}

// next returns the smallest candidate strictly greater than t, or
// math.MaxInt64 when exhausted.
func (g *candGen) next(t int64) int64 {
	for g.ce < len(g.byEnd) && g.placements[g.byEnd[g.ce]].End <= t {
		g.ce++
	}
	for g.cs < len(g.byStart) && g.placements[g.byStart[g.cs]].Start-g.dur <= t {
		g.cs++
	}
	nxt := int64(math.MaxInt64)
	if g.ce < len(g.byEnd) {
		nxt = g.placements[g.byEnd[g.ce]].End
	}
	if g.cs < len(g.byStart) {
		if s := g.placements[g.byStart[g.cs]].Start - g.dur; s < nxt {
			nxt = s
		}
	}
	return nxt
}

// earliestFit returns the earliest start time (and lowest wire band) at
// which a w×dur rectangle for job j fits among the placements: no wire
// conflicts and no time overlap with j's serialization group. The
// caller must have called prepare on the same placements slice.
// Candidates greater than limit are not considered: callers pass the
// largest start that could still matter to them, which prunes the sweep
// without changing any answer they act on.
//
// The candidates are visited in ascending order while two monotone
// cursors maintain the set of placements overlapping the moving window
// [t, t+dur) as a per-wire occupancy profile plus a count of active
// same-group placements, making each candidate check O(1) for the group
// constraint and — on the bitmask path — a few word operations for the
// band search.
func (f *fitter) earliestFit(j *Job, w int, dur int64, placements []Placement, limit int64) (int64, int, bool) {
	switch {
	case !f.useMask:
		return f.earliestFitScan(j, w, dur, placements, limit)
	case f.binWidth <= 64:
		return f.earliestFitMask(j, w, dur, placements, limit)
	}
	return f.earliestFitMaskWide(j, w, dur, placements, limit)
}

// earliestFitMask is the ≤ 64-wire fast path: the per-wire counters are
// still maintained (two placements may cover the same wire at different
// times within one window), but a busy mask tracks which wires have a
// nonzero count, so each candidate check is a lowest-run-of-zeros word
// search instead of an O(W) scan.
func (f *fitter) earliestFitMask(j *Job, w int, dur int64, placements []Placement, limit int64) (int64, int, bool) {
	n := len(placements)
	byStart, byEnd := f.byStart, f.byEnd

	occ := f.occ[:f.binWidth]
	clear(occ)
	var busy uint64
	groupActive := 0
	si, ei := 0, 0
	gen := candGen{placements: placements, byStart: byStart, byEnd: byEnd, dur: dur}
	for t := int64(0); t <= limit; {
		// Admit placements entering the window: Start < t+dur. A
		// placement that also already ended (End <= t) is retired by the
		// second cursor in the same step, so the profile stays exact.
		for si < n && placements[byStart[si]].Start < t+dur {
			p := &placements[byStart[si]]
			for wire := p.WireLo; wire < p.WireLo+p.Width; wire++ {
				if occ[wire] == 0 {
					busy |= 1 << uint(wire)
				}
				occ[wire]++
			}
			if j.Group != "" && p.Job.Group == j.Group {
				groupActive++
			}
			si++
		}
		for ei < n && placements[byEnd[ei]].End <= t {
			p := &placements[byEnd[ei]]
			for wire := p.WireLo; wire < p.WireLo+p.Width; wire++ {
				occ[wire]--
				if occ[wire] == 0 {
					busy &^= 1 << uint(wire)
				}
			}
			if j.Group != "" && p.Job.Group == j.Group {
				groupActive--
			}
			ei++
		}
		if groupActive == 0 {
			if m := runMask(^busy&f.widthMask, w); m != 0 {
				return t, bits.TrailingZeros64(m), true
			}
		}
		nt := gen.next(t)
		if nt == math.MaxInt64 {
			break
		}
		t = nt
	}
	return 0, 0, false
}

// runMask reduces a free-wire mask to the set of band starts: bit i of
// the result is set iff bits i..i+w-1 of free are all set. The shift-
// and-AND doubling runs in O(log w) word operations; the lowest set bit
// of the result is the lowest free band, matching the counter scan's
// first-run answer exactly.
func runMask(free uint64, w int) uint64 {
	m := free
	d := 1
	for d < w {
		s := d
		if s > w-d {
			s = w - d
		}
		m &= m >> uint(s)
		d += s
	}
	return m
}

// earliestFitMaskWide is the > 64-wire bitset path: the same sweep as
// earliestFitMask, with the busy bits spread across a []uint64 bitset
// and the band search walking it a word at a time (lowestFreeRun), so a
// candidate check costs O(W/64) word steps plus one step per free/busy
// transition instead of an O(W) per-wire scan.
func (f *fitter) earliestFitMaskWide(j *Job, w int, dur int64, placements []Placement, limit int64) (int64, int, bool) {
	n := len(placements)
	byStart, byEnd := f.byStart, f.byEnd

	occ := f.occ[:f.binWidth]
	clear(occ)
	busy := f.busyWords
	clear(busy)
	groupActive := 0
	si, ei := 0, 0
	gen := candGen{placements: placements, byStart: byStart, byEnd: byEnd, dur: dur}
	for t := int64(0); t <= limit; {
		for si < n && placements[byStart[si]].Start < t+dur {
			p := &placements[byStart[si]]
			for wire := p.WireLo; wire < p.WireLo+p.Width; wire++ {
				if occ[wire] == 0 {
					busy[wire>>6] |= 1 << uint(wire&63)
				}
				occ[wire]++
			}
			if j.Group != "" && p.Job.Group == j.Group {
				groupActive++
			}
			si++
		}
		for ei < n && placements[byEnd[ei]].End <= t {
			p := &placements[byEnd[ei]]
			for wire := p.WireLo; wire < p.WireLo+p.Width; wire++ {
				occ[wire]--
				if occ[wire] == 0 {
					busy[wire>>6] &^= 1 << uint(wire&63)
				}
			}
			if j.Group != "" && p.Job.Group == j.Group {
				groupActive--
			}
			ei++
		}
		if groupActive == 0 {
			if lo := lowestFreeRun(busy, f.binWidth, w); lo >= 0 {
				return t, lo, true
			}
		}
		nt := gen.next(t)
		if nt == math.MaxInt64 {
			break
		}
		t = nt
	}
	return 0, 0, false
}

// lowestFreeRun returns the lowest wire index starting a run of w free
// (zero) bits in the busy bitset, or -1 if no such band exists below
// binWidth. Runs may span word boundaries; fully free and fully busy
// words are consumed in one step, and mixed words advance one free/busy
// transition at a time via trailing-zero counts, matching the counter
// scan's first-run answer exactly.
func lowestFreeRun(busy []uint64, binWidth, w int) int {
	run := 0 // free run ending just before the current position
	for wi := range busy {
		base := wi << 6
		valid := binWidth - base
		if valid > 64 {
			valid = 64
		}
		free := ^busy[wi]
		if valid < 64 {
			free &= 1<<uint(valid) - 1
		}
		if free == 0 {
			run = 0
			continue
		}
		if valid == 64 && free == ^uint64(0) {
			if run+64 >= w {
				return base - run
			}
			run += 64
			continue
		}
		for off := 0; off < valid; {
			x := free >> uint(off)
			if x&1 == 0 {
				z := bits.TrailingZeros64(x)
				if z > valid-off {
					z = valid - off
				}
				off += z
				run = 0
				continue
			}
			ones := bits.TrailingZeros64(^x)
			if ones > valid-off {
				ones = valid - off
			}
			if run+ones >= w {
				return base + off - run
			}
			run += ones
			off += ones
		}
	}
	return -1
}

// earliestFitScan is the per-wire counter-scan reference implementation
// the two bitset paths are differentially fuzzed against; production
// queries always take a bitset path.
func (f *fitter) earliestFitScan(j *Job, w int, dur int64, placements []Placement, limit int64) (int64, int, bool) {
	n := len(placements)
	byStart, byEnd := f.byStart, f.byEnd

	occ := f.occ[:f.binWidth]
	clear(occ)
	groupActive := 0
	si, ei := 0, 0
	gen := candGen{placements: placements, byStart: byStart, byEnd: byEnd, dur: dur}
	for t := int64(0); t <= limit; {
		for si < n && placements[byStart[si]].Start < t+dur {
			p := &placements[byStart[si]]
			for wire := p.WireLo; wire < p.WireLo+p.Width; wire++ {
				occ[wire]++
			}
			if j.Group != "" && p.Job.Group == j.Group {
				groupActive++
			}
			si++
		}
		for ei < n && placements[byEnd[ei]].End <= t {
			p := &placements[byEnd[ei]]
			for wire := p.WireLo; wire < p.WireLo+p.Width; wire++ {
				occ[wire]--
			}
			if j.Group != "" && p.Job.Group == j.Group {
				groupActive--
			}
			ei++
		}
		if groupActive == 0 {
			// Lowest contiguous band of w free wires in the profile.
			run := 0
			for wire := 0; wire < f.binWidth; wire++ {
				if occ[wire] != 0 {
					run = 0
					continue
				}
				run++
				if run >= w {
					return t, wire - w + 1, true
				}
			}
		}
		nt := gen.next(t)
		if nt == math.MaxInt64 {
			break
		}
		t = nt
	}
	return 0, 0, false
}

// bestPlacement finds the placement of j minimizing (end, width, start,
// wire) against the current placements. One pair of sorted cursor
// orders serves every width option of the job; options whose bare
// duration already exceeds the incumbent end are skipped, and each
// option's sweep stops at the last start that could still tie the
// incumbent — both prunes are exact under the (end, width, start, wire)
// order, so the chosen placement is identical to an unpruned search.
func (f *fitter) bestPlacement(j *Job, placements []Placement) (Placement, bool) {
	var best Placement
	found := false
	better := func(p Placement) bool {
		if !found {
			return true
		}
		if p.End != best.End {
			return p.End < best.End
		}
		if p.Width != best.Width {
			return p.Width < best.Width
		}
		if p.Start != best.Start {
			return p.Start < best.Start
		}
		return p.WireLo < best.WireLo
	}

	f.prepare(placements)
	for _, opt := range f.opts[j] {
		limit := int64(math.MaxInt64)
		if found {
			if opt.Time > best.End {
				continue // even a start at 0 ends after the incumbent
			}
			limit = best.End - opt.Time
		}
		t, wireLo, ok := f.earliestFit(j, opt.Width, opt.Time, placements, limit)
		if !ok {
			continue
		}
		p := Placement{Job: j, Width: opt.Width, Start: t, End: t + opt.Time, WireLo: wireLo}
		if better(p) {
			best = p
			found = true
		}
	}
	return best, found
}
