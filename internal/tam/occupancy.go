package tam

import (
	"cmp"
	"slices"

	"mixsoc/internal/wrapper"
)

// fitter answers earliest-fit queries against a schedule's placements
// with a single time sweep per query instead of the per-candidate full
// rescans of the naive formulation. One fitter serves one packing
// goroutine: it owns reusable scratch buffers (candidate start times,
// start/end-sorted placement indices, and a per-wire occupancy profile)
// so steady-state queries allocate nothing. The per-job width options
// (the Pareto staircase, or the full staircase under
// WithFullStaircase) are precomputed once per Optimize call and shared
// read-only between fitters.
type fitter struct {
	binWidth int
	cfg      config

	// opts maps each job to its candidate width options, precomputed by
	// newOptionTable. Read-only after construction; safe to share.
	opts map[*Job][]wrapper.Point

	// Scratch buffers, reused across queries.
	cands   []int64 // candidate start times
	byStart []int32 // placement indices ordered by Start
	byEnd   []int32 // placement indices ordered by End
	occ     []int32 // occupancy count per wire during the sweep window
}

// newOptionTable precomputes the width options the packer will try for
// every job, so placement loops never re-derive (and re-allocate) the
// usable staircase.
func newOptionTable(jobs []*Job, binWidth int, cfg config) map[*Job][]wrapper.Point {
	opts := make(map[*Job][]wrapper.Point, len(jobs))
	for _, j := range jobs {
		opts[j] = candidateWidths(j, binWidth, cfg)
	}
	return opts
}

func newFitter(opts map[*Job][]wrapper.Point, binWidth int, cfg config) *fitter {
	return &fitter{
		binWidth: binWidth,
		cfg:      cfg,
		opts:     opts,
		occ:      make([]int32, binWidth),
	}
}

// fork returns a fitter sharing the read-only option table but owning
// fresh scratch buffers, for use by a concurrent packing goroutine.
func (f *fitter) fork() *fitter { return newFitter(f.opts, f.binWidth, f.cfg) }

// prepare (re)builds the start- and end-sorted placement index orders
// the sweep cursors walk. The orders do not depend on the queried
// rectangle, so bestPlacement builds them once and reuses them across
// every width option of a job; they must be rebuilt whenever the
// placements slice changes.
func (f *fitter) prepare(placements []Placement) {
	byStart := f.byStart[:0]
	byEnd := f.byEnd[:0]
	for i := 0; i < len(placements); i++ {
		byStart = append(byStart, int32(i))
		byEnd = append(byEnd, int32(i))
	}
	slices.SortFunc(byStart, func(a, b int32) int {
		return cmp.Compare(placements[a].Start, placements[b].Start)
	})
	slices.SortFunc(byEnd, func(a, b int32) int {
		return cmp.Compare(placements[a].End, placements[b].End)
	})
	f.byStart, f.byEnd = byStart, byEnd
}

// earliestFit returns the earliest start time (and lowest wire band) at
// which a w×dur rectangle for job j fits among the placements: no wire
// conflicts and no time overlap with j's serialization group. The
// caller must have called prepare on the same placements slice.
//
// Candidate starts are 0, the ends of placed rectangles, and their
// starts minus dur (a window can also become feasible right before a
// rectangle begins) — the same candidate set as a full rescan, so the
// result is identical. The candidates are visited in ascending order
// while two monotone cursors maintain the set of placements overlapping
// the moving window [t, t+dur) as a per-wire occupancy profile plus a
// count of active same-group placements, making each candidate check
// O(1) for the group constraint and O(binWidth) for the band scan.
func (f *fitter) earliestFit(j *Job, w int, dur int64, placements []Placement) (int64, int, bool) {
	n := len(placements)

	cands := f.cands[:0]
	cands = append(cands, 0)
	for i := range placements {
		p := &placements[i]
		cands = append(cands, p.End)
		if t := p.Start - dur; t > 0 {
			cands = append(cands, t)
		}
	}
	slices.Sort(cands)
	f.cands = cands

	byStart, byEnd := f.byStart, f.byEnd

	occ := f.occ[:f.binWidth]
	clear(occ)
	groupActive := 0
	si, ei := 0, 0
	prev := int64(-1)
	for _, t := range cands {
		if t == prev {
			continue
		}
		prev = t
		// Admit placements entering the window: Start < t+dur. A
		// placement that also already ended (End <= t) is retired by the
		// second cursor in the same step, so the profile stays exact.
		for si < n && placements[byStart[si]].Start < t+dur {
			p := &placements[byStart[si]]
			for wire := p.WireLo; wire < p.WireLo+p.Width; wire++ {
				occ[wire]++
			}
			if j.Group != "" && p.Job.Group == j.Group {
				groupActive++
			}
			si++
		}
		for ei < n && placements[byEnd[ei]].End <= t {
			p := &placements[byEnd[ei]]
			for wire := p.WireLo; wire < p.WireLo+p.Width; wire++ {
				occ[wire]--
			}
			if j.Group != "" && p.Job.Group == j.Group {
				groupActive--
			}
			ei++
		}
		if groupActive > 0 {
			continue
		}
		// Lowest contiguous band of w free wires in the profile.
		run := 0
		for wire := 0; wire < f.binWidth; wire++ {
			if occ[wire] != 0 {
				run = 0
				continue
			}
			run++
			if run >= w {
				return t, wire - w + 1, true
			}
		}
	}
	return 0, 0, false
}

// bestPlacement finds the placement of j minimizing (end, width, start,
// wire) against the current placements.
func (f *fitter) bestPlacement(j *Job, placements []Placement) (Placement, bool) {
	var best Placement
	found := false
	better := func(p Placement) bool {
		if !found {
			return true
		}
		if p.End != best.End {
			return p.End < best.End
		}
		if p.Width != best.Width {
			return p.Width < best.Width
		}
		if p.Start != best.Start {
			return p.Start < best.Start
		}
		return p.WireLo < best.WireLo
	}

	f.prepare(placements)
	for _, opt := range f.opts[j] {
		t, wireLo, ok := f.earliestFit(j, opt.Width, opt.Time, placements)
		if !ok {
			continue
		}
		p := Placement{Job: j, Width: opt.Width, Start: t, End: t + opt.Time, WireLo: wireLo}
		if better(p) {
			best = p
			found = true
		}
	}
	return best, found
}
