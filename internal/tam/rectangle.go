package tam

import (
	"fmt"
	"sort"
)

// PackRectangle packs the jobs into a TAM of the given width using the
// rectangle bin-packing formulation: each (module, width option) is a
// width×time rectangle, and jobs are placed one at a time in the
// diagonal-length order of arXiv 1008.4446 — longest diagonal first,
// where a job's diagonal is measured on its preferred rectangle with
// both axes normalized to the instance (width by the bin width, time by
// the longest preferred duration), so neither axis dominates by unit
// choice alone. Serialization groups weight the time axis by the whole
// group's serial duration, for the same reason Optimize does: a chain
// of short tests behaves like one long rectangle.
//
// Each job is placed by the same earliest-fit bestPlacement machinery
// as the occupancy backend — minimizing (end, width, start, wire) over
// the job's staircase options — and the shared improve polish then
// re-places the makespan-defining jobs. Unlike Optimize there is no
// three-ordering race and no repack pass: the backend is a genuinely
// different (and cheaper) search trajectory, which is what makes the
// cross-backend differential tests a meaningful oracle.
//
// PackRectangle honours the full Option set: WithWarmStart seeds are
// adopted or adapted exactly as in Optimize (best pre-polish makespan
// wins) and skip the cold ordering, WithContext cancels between
// placements, and the result always passes Schedule.Validate.
func PackRectangle(jobs []*Job, width int, opts ...Option) (*Schedule, error) {
	cfg := config{improvePasses: len(jobs), paretoOnly: true}
	for _, o := range opts {
		o(&cfg)
	}
	if width < 1 {
		return nil, fmt.Errorf("tam: bin width %d < 1", width)
	}
	if len(jobs) == 0 {
		return &Schedule{Width: width}, nil
	}
	if err := validateJobs(jobs, width); err != nil {
		return nil, err
	}

	target := LowerBound(jobs, width)

	// The group chain weight and per-job preferred rectangle, shared
	// with Optimize's ordering logic (see the groupTotal comment there).
	groupTotal := map[string]int64{}
	for _, j := range jobs {
		if j.Group != "" {
			groupTotal[j.Group] += j.minTime(width)
		}
	}
	prefWidths := make(map[*Job]int, len(jobs))
	prefTimes := make(map[*Job]int64, len(jobs))
	chainTimes := make(map[*Job]int64, len(jobs))
	var maxChain int64 = 1 // avoid division by zero on all-zero times
	for _, j := range jobs {
		w := preferredWidth(j, width, target)
		prefWidths[j] = w
		prefTimes[j] = timeFor(j, w)
		ct := prefTimes[j]
		if j.Group != "" {
			ct = groupTotal[j.Group]
		}
		chainTimes[j] = ct
		if ct > maxChain {
			maxChain = ct
		}
	}

	// Squared normalized diagonal length of each job's preferred
	// rectangle. The squares and the sum are kept in separate
	// statements so no fused multiply-add can perturb the comparison
	// order across architectures.
	diag := make(map[*Job]float64, len(jobs))
	for _, j := range jobs {
		x := float64(prefWidths[j]) / float64(width)
		y := float64(chainTimes[j]) / float64(maxChain)
		xx := x * x
		yy := y * y
		diag[j] = xx + yy
	}

	order := append([]*Job(nil), jobs...)
	sort.Slice(order, func(a, b int) bool {
		da, db := diag[order[a]], diag[order[b]]
		if da != db {
			return da > db
		}
		ta, tb := prefTimes[order[a]], prefTimes[order[b]]
		if ta != tb {
			return ta > tb
		}
		return order[a].ID < order[b].ID
	})

	shared := newFitter(newOptionTable(jobs, width, cfg), width, cfg)

	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}

	// Warm seeds take the same shortcut as in Optimize: the best
	// adopted or adapted seed replaces the cold ordering and goes
	// straight to the polish loop.
	if len(cfg.warm) > 0 {
		var adopted *Schedule
		for _, seed := range cfg.warm {
			s := adoptSeed(jobs, width, seed)
			if s == nil {
				s = shrinkSeed(jobs, width, seed, shared)
			}
			if s != nil && (adopted == nil || s.Makespan < adopted.Makespan) {
				adopted = s
			}
		}
		if adopted != nil {
			improve(adopted, shared)
			if err := cfg.ctxErr(); err != nil {
				return nil, err
			}
			if err := adopted.Validate(); err != nil {
				return nil, fmt.Errorf("tam: internal error: produced invalid schedule: %w", err)
			}
			return adopted, nil
		}
	}

	s, err := packList(order, shared)
	if err != nil {
		return nil, err
	}
	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("tam: internal error: produced invalid schedule: %w", err)
	}
	return s, nil
}
