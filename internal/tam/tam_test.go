package tam

import (
	"strings"
	"testing"
	"testing/quick"

	"mixsoc/internal/itc02"
	"mixsoc/internal/wrapper"
)

func fixedJob(id string, w int, t int64) *Job {
	return &Job{ID: id, Options: []wrapper.Point{{Width: w, Time: t}}}
}

func groupJob(id, group string, w int, t int64) *Job {
	j := fixedJob(id, w, t)
	j.Group = group
	return j
}

func TestOptimizeEmptyAndErrors(t *testing.T) {
	s, err := Optimize(nil, 8)
	if err != nil || s.Makespan != 0 {
		t.Errorf("empty: %v %v", s, err)
	}
	if _, err := Optimize([]*Job{fixedJob("a", 1, 10)}, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := Optimize([]*Job{fixedJob("a", 9, 10)}, 8); err == nil {
		t.Error("job wider than bin accepted")
	}
	if _, err := Optimize([]*Job{fixedJob("a", 1, 10), fixedJob("a", 1, 5)}, 8); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := Optimize([]*Job{{ID: "x"}}, 8); err == nil {
		t.Error("job without options accepted")
	}
	bad := &Job{ID: "x", Options: []wrapper.Point{{Width: 2, Time: 10}, {Width: 3, Time: 10}}}
	if _, err := Optimize([]*Job{bad}, 8); err == nil {
		t.Error("non-improving staircase accepted")
	}
}

func TestPerfectPacking(t *testing.T) {
	// Four 2x10 rectangles fill an 8-wire bin in exactly 10 cycles.
	jobs := []*Job{
		fixedJob("a", 2, 10), fixedJob("b", 2, 10),
		fixedJob("c", 2, 10), fixedJob("d", 2, 10),
	}
	s, err := Optimize(jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 10 {
		t.Errorf("makespan = %d, want 10\n%s", s.Makespan, s.Gantt(40))
	}
	if u := s.Utilization(); u != 1.0 {
		t.Errorf("utilization = %v, want 1.0", u)
	}
}

func TestNarrowBinSerializes(t *testing.T) {
	jobs := []*Job{fixedJob("a", 2, 10), fixedJob("b", 2, 10)}
	s, err := Optimize(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 20 {
		t.Errorf("makespan = %d, want 20", s.Makespan)
	}
}

func TestGroupSerialization(t *testing.T) {
	// Two group members fit side by side wire-wise but must serialize.
	jobs := []*Job{
		groupJob("g1", "wrap0", 1, 10),
		groupJob("g2", "wrap0", 1, 10),
	}
	s, err := Optimize(jobs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 20 {
		t.Errorf("grouped makespan = %d, want 20 (serialized)", s.Makespan)
	}
	// Without groups they run in parallel.
	free := []*Job{fixedJob("g1", 1, 10), fixedJob("g2", 1, 10)}
	s2, err := Optimize(free, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Makespan != 10 {
		t.Errorf("ungrouped makespan = %d, want 10", s2.Makespan)
	}
}

func TestGroupDoesNotBlockOthers(t *testing.T) {
	// While the group serializes, an independent job overlaps freely.
	jobs := []*Job{
		groupJob("g1", "w", 1, 10),
		groupJob("g2", "w", 1, 10),
		fixedJob("solo", 1, 20),
	}
	s, err := Optimize(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 20 {
		t.Errorf("makespan = %d, want 20\n%s", s.Makespan, s.Gantt(40))
	}
}

func TestFlexibleWidthChoosesWisely(t *testing.T) {
	// Job x can run 4 wide in 10 or 2 wide in 25. With a competing 2x10
	// job in a 4-wide bin, the packer should find makespan 20 via
	// (x at 4 wide after y? no...) Let's check the optimum: y=2x10.
	// Option A: x at w4 t10, y after/before -> makespan 20.
	// Option B: x at w2 t25 alongside y (w2) -> makespan 25.
	// Optimum is 20.
	jobs := []*Job{
		{ID: "x", Options: []wrapper.Point{{Width: 2, Time: 25}, {Width: 4, Time: 10}}},
		fixedJob("y", 2, 10),
	}
	s, err := Optimize(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 20 {
		t.Errorf("makespan = %d, want 20\n%s", s.Makespan, s.Gantt(40))
	}
}

func TestLowerBound(t *testing.T) {
	jobs := []*Job{
		fixedJob("a", 2, 10),      // volume 20
		fixedJob("b", 1, 30),      // volume 30, longest
		groupJob("c", "g", 1, 12), // group usage 27
		groupJob("d", "g", 1, 15),
	}
	// volume = 20+30+12+15 = 77; width 4 -> ceil(77/4) = 20; longest job 30.
	if lb := LowerBound(jobs, 4); lb != 30 {
		t.Errorf("LowerBound = %d, want 30", lb)
	}
	// width 1: volume bound 77.
	if lb := LowerBound(jobs, 1); lb != 77 {
		t.Errorf("LowerBound(1) = %d, want 77", lb)
	}
	// group bound dominates when jobs are short but serialized.
	g := []*Job{groupJob("c", "g", 1, 12), groupJob("d", "g", 1, 15)}
	if lb := LowerBound(g, 64); lb != 27 {
		t.Errorf("group LowerBound = %d, want 27", lb)
	}
}

func TestScheduleValidateCatchesBadSchedules(t *testing.T) {
	a, b := fixedJob("a", 2, 10), fixedJob("b", 2, 10)
	s := &Schedule{Width: 2, Makespan: 10, Placements: []Placement{
		{Job: a, Width: 2, Start: 0, End: 10, WireLo: 0},
		{Job: b, Width: 2, Start: 5, End: 15, WireLo: 0},
	}}
	if err := s.Validate(); err == nil {
		t.Error("overlapping schedule validated")
	}
	s = &Schedule{Width: 2, Makespan: 20, Placements: []Placement{
		{Job: a, Width: 2, Start: 0, End: 10, WireLo: 1},
	}}
	if err := s.Validate(); err == nil {
		t.Error("out-of-bin schedule validated")
	}
	g1, g2 := groupJob("a", "g", 1, 10), groupJob("b", "g", 1, 10)
	s = &Schedule{Width: 4, Makespan: 10, Placements: []Placement{
		{Job: g1, Width: 1, Start: 0, End: 10, WireLo: 0},
		{Job: g2, Width: 1, Start: 0, End: 10, WireLo: 2},
	}}
	if err := s.Validate(); err == nil {
		t.Error("group overlap validated")
	}
	s = &Schedule{Width: 4, Makespan: 5, Placements: []Placement{
		{Job: a, Width: 2, Start: 0, End: 10, WireLo: 0},
	}}
	if err := s.Validate(); err == nil {
		t.Error("end-after-makespan validated")
	}
	s = &Schedule{Width: 4, Makespan: 12, Placements: []Placement{
		{Job: a, Width: 2, Start: 0, End: 12, WireLo: 0},
	}}
	if err := s.Validate(); err == nil {
		t.Error("End inconsistent with staircase validated")
	}
}

// digitalJobs builds one job per p93791 core with its Pareto staircase.
func digitalJobs(t testing.TB, maxW int) []*Job {
	t.Helper()
	var jobs []*Job
	for _, m := range itc02.P93791().Cores() {
		pts, err := wrapper.Pareto(m, maxW)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, &Job{ID: m.Name, Options: pts})
	}
	return jobs
}

func TestP93791PackingQuality(t *testing.T) {
	for _, w := range []int{16, 32, 64} {
		jobs := digitalJobs(t, w)
		s, err := Optimize(jobs, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Placements) != len(jobs) {
			t.Fatalf("w=%d: placed %d of %d jobs", w, len(s.Placements), len(jobs))
		}
		lb := LowerBound(jobs, w)
		ratio := float64(s.Makespan) / float64(lb)
		t.Logf("W=%d: makespan %d, LB %d, ratio %.3f, util %.1f%%",
			w, s.Makespan, lb, ratio, 100*s.Utilization())
		if ratio > 1.35 {
			t.Errorf("W=%d: makespan %d more than 1.35x lower bound %d", w, s.Makespan, lb)
		}
	}
}

func TestP93791MonotoneInWidth(t *testing.T) {
	prev := int64(-1)
	for _, w := range []int{16, 24, 32, 40, 48, 56, 64} {
		s, err := Optimize(digitalJobs(t, w), w)
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && float64(s.Makespan) > 1.05*float64(prev) {
			t.Errorf("W=%d: makespan %d noticeably worse than narrower bin %d", w, s.Makespan, prev)
		}
		prev = s.Makespan
	}
}

func TestDeterminism(t *testing.T) {
	jobs1 := digitalJobs(t, 32)
	jobs2 := digitalJobs(t, 32)
	s1, err1 := Optimize(jobs1, 32)
	s2, err2 := Optimize(jobs2, 32)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if s1.Makespan != s2.Makespan {
		t.Errorf("nondeterministic makespan: %d vs %d", s1.Makespan, s2.Makespan)
	}
}

func TestGanttRenders(t *testing.T) {
	jobs := []*Job{fixedJob("a", 2, 10), groupJob("b", "g", 1, 5), groupJob("c", "g", 1, 5)}
	s, err := Optimize(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Gantt(40)
	for _, want := range []string{"TAM width 4", "a=", "legend:"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
	spans := s.GroupSpans()["g"]
	if len(spans) != 2 || spans[0][1] > spans[1][0] {
		t.Errorf("group spans not serialized: %v", spans)
	}
	empty := &Schedule{Width: 4}
	if !strings.Contains(empty.Gantt(40), "empty") {
		t.Error("empty gantt")
	}
}

// Property: random fixed-shape jobs always produce a valid schedule with
// makespan at least the lower bound.
func TestOptimizeProperty(t *testing.T) {
	f := func(ws, ts []uint8, groups []bool, binW uint8) bool {
		width := int(binW%16) + 1
		n := len(ws)
		if n > 14 {
			n = 14
		}
		var jobs []*Job
		for i := 0; i < n; i++ {
			w := int(ws[i]%uint8(width)) + 1
			tt := int64(1)
			if i < len(ts) {
				tt = int64(ts[i]%100) + 1
			}
			g := ""
			if i < len(groups) && groups[i] {
				g = "grp"
			}
			jobs = append(jobs, &Job{ID: string(rune('a' + i)), Group: g,
				Options: []wrapper.Point{{Width: w, Time: tt}}})
		}
		s, err := Optimize(jobs, width)
		if err != nil {
			return false
		}
		if s.Validate() != nil {
			return false
		}
		return s.Makespan >= LowerBound(jobs, width)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOptimizeP93791W32(b *testing.B) {
	jobs := digitalJobs(b, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(jobs, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeP93791W64(b *testing.B) {
	jobs := digitalJobs(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(jobs, 64); err != nil {
			b.Fatal(err)
		}
	}
}
