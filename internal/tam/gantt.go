package tam

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders the schedule as an ASCII chart, one row per wire band,
// time flowing left to right over the given number of columns. Each
// placement is drawn with a letter assigned in end-time order; idle bin
// space is '.'. It is meant for eyeballing schedules in examples and CLI
// output, not for exact inspection.
func (s *Schedule) Gantt(columns int) string {
	if columns < 10 {
		columns = 10
	}
	if s.Makespan == 0 || len(s.Placements) == 0 {
		return "(empty schedule)\n"
	}
	grid := make([][]byte, s.Width)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", columns))
	}
	glyphs := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	legend := make([]string, 0, len(s.Placements))

	placements := s.ByEnd()
	for n := range placements {
		p := &placements[n]
		g := byte('#')
		if n < len(glyphs) {
			g = glyphs[n]
		}
		c0 := int(p.Start * int64(columns) / s.Makespan)
		c1 := int(p.End * int64(columns) / s.Makespan)
		if c1 <= c0 {
			c1 = c0 + 1
		}
		if c1 > columns {
			c1 = columns
		}
		for wire := p.WireLo; wire < p.WireLo+p.Width; wire++ {
			for c := c0; c < c1; c++ {
				grid[wire][c] = g
			}
		}
		legend = append(legend, fmt.Sprintf("%c=%s[w%d %d..%d]", g, p.Job.ID, p.Width, p.Start, p.End))
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "TAM width %d, makespan %d cycles, utilization %.1f%%\n",
		s.Width, s.Makespan, 100*s.Utilization())
	for wire := s.Width - 1; wire >= 0; wire-- {
		fmt.Fprintf(&sb, "%3d |%s|\n", wire, grid[wire])
	}
	sb.WriteString("legend: ")
	sb.WriteString(strings.Join(legend, " "))
	sb.WriteByte('\n')
	return sb.String()
}

// GroupSpans summarizes, per serialization group, the time intervals the
// group's jobs occupy, sorted by start. Useful to inspect shared-wrapper
// serialization.
func (s *Schedule) GroupSpans() map[string][][2]int64 {
	out := map[string][][2]int64{}
	for i := range s.Placements {
		p := &s.Placements[i]
		if p.Job.Group == "" {
			continue
		}
		out[p.Job.Group] = append(out[p.Job.Group], [2]int64{p.Start, p.End})
	}
	for g := range out {
		spans := out[g]
		sort.Slice(spans, func(a, b int) bool { return spans[a][0] < spans[b][0] })
		out[g] = spans
	}
	return out
}
