package tam

import (
	"fmt"
	"sort"

	"mixsoc/internal/wrapper"
)

// Option configures Optimize.
type Option func(*config)

type config struct {
	improvePasses int
	paretoOnly    bool
}

// WithImprovePasses bounds the post-packing improvement loop; 0 disables
// it (used by the ablation benches). The default is one pass per job.
func WithImprovePasses(n int) Option {
	return func(c *config) { c.improvePasses = n }
}

// WithFullStaircase makes the packer consider every width from the
// narrowest option up to the bin width, synthesizing flat staircase
// steps, instead of only the strictly-improving Pareto points. It exists
// to measure the value of Pareto pruning; it never improves the result.
func WithFullStaircase() Option {
	return func(c *config) { c.paretoOnly = false }
}

// Optimize packs the jobs into a TAM of the given width and returns a
// validated schedule. The heuristic follows the rectangle-packing
// formulation: jobs are considered longest-first, each is placed at the
// position and width option minimizing its finish time (preferring
// narrower widths on ties), and a bounded improvement loop then re-places
// the jobs that define the makespan, letting them widen into idle wires.
func Optimize(jobs []*Job, width int, opts ...Option) (*Schedule, error) {
	cfg := config{improvePasses: len(jobs), paretoOnly: true}
	for _, o := range opts {
		o(&cfg)
	}
	if width < 1 {
		return nil, fmt.Errorf("tam: bin width %d < 1", width)
	}
	if len(jobs) == 0 {
		return &Schedule{Width: width}, nil
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if err := j.Validate(width); err != nil {
			return nil, err
		}
		if seen[j.ID] {
			return nil, fmt.Errorf("tam: duplicate job ID %s", j.ID)
		}
		seen[j.ID] = true
	}

	target := LowerBound(jobs, width)

	// Serialization groups behave like one long chain: one useful weight
	// for a job is its whole group's serial time rather than its own
	// (often short) time, or the chain ends up in a tail behind a
	// tightly packed bin.
	groupTotal := map[string]int64{}
	for _, j := range jobs {
		if j.Group != "" {
			groupTotal[j.Group] += j.minTime(width)
		}
	}
	prefTime := func(j *Job) int64 {
		return timeFor(j, preferredWidth(j, width, target))
	}
	chainWeight := func(j *Job) int64 {
		if j.Group != "" {
			return groupTotal[j.Group]
		}
		return prefTime(j)
	}

	// Greedy list scheduling is sensitive to the job order; pack with a
	// few complementary orderings and keep the best schedule. All
	// orderings share deterministic tie-breaking by ID.
	orderings := []func(a, b *Job) (int64, int64){
		func(a, b *Job) (int64, int64) { return chainWeight(a), chainWeight(b) },
		func(a, b *Job) (int64, int64) { return prefTime(a), prefTime(b) },
		func(a, b *Job) (int64, int64) { return a.volume(width), b.volume(width) },
	}

	var best *Schedule
	for _, key := range orderings {
		order := append([]*Job(nil), jobs...)
		sort.Slice(order, func(a, b int) bool {
			ka, kb := key(order[a], order[b])
			if ka != kb {
				return ka > kb
			}
			ta, tb := prefTime(order[a]), prefTime(order[b])
			if ta != tb {
				return ta > tb
			}
			return order[a].ID < order[b].ID
		})
		s, err := packList(order, width, cfg)
		if err != nil {
			return nil, err
		}
		if best == nil || s.Makespan < best.Makespan {
			best = s
		}
	}

	// Polish only the winning schedule: repack is quadratic in the job
	// count, so running it per ordering buys little for its cost.
	if cfg.improvePasses > 0 {
		repack(best, width, cfg)
		improve(best, width, cfg)
	}

	if err := best.Validate(); err != nil {
		return nil, fmt.Errorf("tam: internal error: produced invalid schedule: %w", err)
	}
	return best, nil
}

// packList packs the jobs in the given order and runs the improvement
// loops.
func packList(order []*Job, width int, cfg config) (*Schedule, error) {
	s := &Schedule{Width: width}
	for _, j := range order {
		p, ok := bestPlacement(j, s, width, cfg)
		if !ok {
			return nil, fmt.Errorf("tam: could not place job %s", j.ID)
		}
		s.Placements = append(s.Placements, p)
		if p.End > s.Makespan {
			s.Makespan = p.End
		}
	}
	improve(s, width, cfg)
	return s, nil
}

// repack removes and re-places every job once, latest-finishing first.
// A re-placed job can always return to its old slot, so each step is
// monotone: the makespan never increases.
func repack(s *Schedule, width int, cfg config) {
	sort.Slice(s.Placements, func(a, b int) bool {
		if s.Placements[a].End != s.Placements[b].End {
			return s.Placements[a].End > s.Placements[b].End
		}
		return s.Placements[a].Job.ID < s.Placements[b].Job.ID
	})
	for i := 0; i < len(s.Placements); i++ {
		removed := s.Placements[i]
		rest := append(s.Placements[:i:i], s.Placements[i+1:]...)
		tmp := &Schedule{Width: width, Placements: rest}
		p, ok := bestPlacement(removed.Job, tmp, width, cfg)
		if ok && p.End <= removed.End {
			s.Placements[i] = p
		}
	}
	s.Makespan = 0
	for i := range s.Placements {
		if s.Placements[i].End > s.Makespan {
			s.Makespan = s.Placements[i].End
		}
	}
}

// preferredWidth picks the narrowest option whose time meets the target
// makespan estimate, or the widest usable option if none does.
func preferredWidth(j *Job, binWidth int, target int64) int {
	u := j.usable(binWidth)
	for _, p := range u {
		if p.Time <= target {
			return p.Width
		}
	}
	return u[len(u)-1].Width
}

// candidateWidths lists the width options the packer will try.
func candidateWidths(j *Job, binWidth int, cfg config) []wrapper.Point {
	u := j.usable(binWidth)
	if cfg.paretoOnly {
		return u
	}
	// Full staircase: every width from the narrowest option to binWidth.
	var out []wrapper.Point
	for w := u[0].Width; w <= binWidth; w++ {
		out = append(out, wrapper.Point{Width: w, Time: timeFor(j, w)})
	}
	return out
}

// bestPlacement finds the placement of j minimizing (end, width, start,
// wire) against the current schedule.
func bestPlacement(j *Job, s *Schedule, binWidth int, cfg config) (Placement, bool) {
	var best Placement
	found := false
	better := func(p Placement) bool {
		if !found {
			return true
		}
		if p.End != best.End {
			return p.End < best.End
		}
		if p.Width != best.Width {
			return p.Width < best.Width
		}
		if p.Start != best.Start {
			return p.Start < best.Start
		}
		return p.WireLo < best.WireLo
	}

	for _, opt := range candidateWidths(j, binWidth, cfg) {
		t, wireLo, ok := earliestFit(j, opt.Width, opt.Time, s, binWidth)
		if !ok {
			continue
		}
		p := Placement{Job: j, Width: opt.Width, Start: t, End: t + opt.Time, WireLo: wireLo}
		if better(p) {
			best = p
			found = true
		}
	}
	return best, found
}

// earliestFit returns the earliest start time (and lowest wire band) at
// which a w×dur rectangle for job j fits: no wire conflicts and no time
// overlap with j's serialization group.
func earliestFit(j *Job, w int, dur int64, s *Schedule, binWidth int) (int64, int, bool) {
	// Candidate starts: 0, ends of placed rectangles, and starts-dur
	// (a window can also become feasible right before a rectangle begins).
	cands := make([]int64, 0, 2*len(s.Placements)+1)
	cands = append(cands, 0)
	for i := range s.Placements {
		p := &s.Placements[i]
		cands = append(cands, p.End)
		if t := p.Start - dur; t > 0 {
			cands = append(cands, t)
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })

	prev := int64(-1)
	for _, t := range cands {
		if t == prev {
			continue
		}
		prev = t
		if j.Group != "" && groupConflict(j, t, t+dur, s) {
			continue
		}
		if lo, ok := lowestFreeBand(t, t+dur, w, s, binWidth); ok {
			return t, lo, true
		}
	}
	return 0, 0, false
}

func groupConflict(j *Job, start, end int64, s *Schedule) bool {
	for i := range s.Placements {
		p := &s.Placements[i]
		if p.Job.Group == j.Group && p.Start < end && start < p.End {
			return true
		}
	}
	return false
}

// lowestFreeBand finds the lowest contiguous band of w wires free during
// [start, end).
func lowestFreeBand(start, end int64, w int, s *Schedule, binWidth int) (int, bool) {
	// Collect wire intervals of rectangles overlapping the time window,
	// sorted by WireLo, then sweep for a gap of size w.
	type span struct{ lo, hi int }
	var busy []span
	for i := range s.Placements {
		p := &s.Placements[i]
		if p.Start < end && start < p.End {
			busy = append(busy, span{p.WireLo, p.WireLo + p.Width})
		}
	}
	sort.Slice(busy, func(a, b int) bool { return busy[a].lo < busy[b].lo })

	cur := 0 // lowest candidate wire
	for _, b := range busy {
		if b.lo-cur >= w {
			return cur, true
		}
		if b.hi > cur {
			cur = b.hi
		}
	}
	if binWidth-cur >= w {
		return cur, true
	}
	return 0, false
}

// improve repeatedly re-places a job that defines the makespan, allowing
// it to widen into idle wires or move, keeping any strict improvement.
func improve(s *Schedule, binWidth int, cfg config) {
	for pass := 0; pass < cfg.improvePasses; pass++ {
		// The placement that ends last (stable choice on ties).
		worst := -1
		for i := range s.Placements {
			if s.Placements[i].End == s.Makespan {
				if worst < 0 || s.Placements[i].Job.ID < s.Placements[worst].Job.ID {
					worst = i
				}
			}
		}
		if worst < 0 {
			return
		}
		removed := s.Placements[worst]
		s.Placements = append(s.Placements[:worst], s.Placements[worst+1:]...)

		p, ok := bestPlacement(removed.Job, s, binWidth, cfg)
		if !ok || p.End >= s.Makespan {
			// No strict improvement: restore and stop.
			s.Placements = append(s.Placements, removed)
			return
		}
		s.Placements = append(s.Placements, p)
		s.Makespan = 0
		for i := range s.Placements {
			if s.Placements[i].End > s.Makespan {
				s.Makespan = s.Placements[i].End
			}
		}
	}
}
