package tam

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mixsoc/internal/wrapper"
)

// Option configures Optimize.
type Option func(*config)

type config struct {
	improvePasses int
	paretoOnly    bool
	warm          []*Schedule
	ctx           context.Context
}

// ctxErr reports the config's context error, treating a nil context as
// never cancelled. It is the single cancellation probe of the packing
// loops.
func (c *config) ctxErr() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// WithImprovePasses bounds the post-packing improvement loop; 0 disables
// it (used by the ablation benches). The default is one pass per job.
func WithImprovePasses(n int) Option {
	return func(c *config) { c.improvePasses = n }
}

// WithFullStaircase makes the packer consider every width from the
// narrowest option up to the bin width, synthesizing flat staircase
// steps, instead of only the strictly-improving Pareto points. It exists
// to measure the value of Pareto pruning; it never improves the result.
func WithFullStaircase() Option {
	return func(c *config) { c.paretoOnly = false }
}

// WithWarmStart seeds the packing with a schedule of the same job set
// from an adjacent bin. A seed from a narrower (or equal-width) bin is
// feasible verbatim in this bin, so the optimizer adopts its placements
// — matching jobs by ID and re-deriving durations from the current
// staircases — and goes straight to the repack/improve polish, which
// re-places every job against the wider bin, instead of packing three
// orderings from scratch. A seed from a wider bin cannot be adopted
// verbatim (its placements may overflow the narrower bin); instead the
// jobs are re-placed earliest-fit in the seed's placement order, a
// single guided packing that inherits the seed's structure at a third
// of the cold cost. A seed that does not match the job set (different
// IDs, or widths outside the staircase) is ignored, so a stale seed can
// never corrupt a result; with no usable seed the packer falls back to
// the cold path.
//
// The option may be given several times — e.g. the nearest completed
// width on either side of a sweep — in which case every seed is adopted
// (or adapted) and the one with the smallest pre-polish makespan wins,
// earlier options winning ties.
//
// Warm-started packing follows a different search trajectory than cold
// packing: makespans stay close (the polish loops are shared and
// monotone) but are not guaranteed identical. Sweep drivers that must
// reproduce cold results exactly — the paper-table reproductions — must
// not use it; see core.SweepOptions.WarmStart for the opt-in chaining.
func WithWarmStart(seed *Schedule) Option {
	return func(c *config) { c.warm = append(c.warm, seed) }
}

// WithContext makes the packing cancellable: the placement loops poll
// ctx between jobs and Optimize returns ctx.Err() once it fires. A nil
// ctx (and the zero option value) means never cancelled.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// Optimize packs the jobs into a TAM of the given width and returns a
// validated schedule. The heuristic follows the rectangle-packing
// formulation: jobs are considered longest-first, each is placed at the
// position and width option minimizing its finish time (preferring
// narrower widths on ties), and a bounded improvement loop then re-places
// the jobs that define the makespan, letting them widen into idle wires.
//
// The three complementary packing orderings are independent, so they run
// concurrently; the winner is chosen deterministically (smallest
// makespan, first ordering on ties), making the result identical to a
// sequential evaluation.
func Optimize(jobs []*Job, width int, opts ...Option) (*Schedule, error) {
	cfg := config{improvePasses: len(jobs), paretoOnly: true}
	for _, o := range opts {
		o(&cfg)
	}
	if width < 1 {
		return nil, fmt.Errorf("tam: bin width %d < 1", width)
	}
	if len(jobs) == 0 {
		return &Schedule{Width: width}, nil
	}
	if err := validateJobs(jobs, width); err != nil {
		return nil, err
	}

	target := LowerBound(jobs, width)

	// Serialization groups behave like one long chain: one useful weight
	// for a job is its whole group's serial time rather than its own
	// (often short) time, or the chain ends up in a tail behind a
	// tightly packed bin.
	groupTotal := map[string]int64{}
	for _, j := range jobs {
		if j.Group != "" {
			groupTotal[j.Group] += j.minTime(width)
		}
	}
	// Per-job sort keys, precomputed so the ordering comparators do no
	// staircase walks (and no allocations) inside sort.
	prefTimes := make(map[*Job]int64, len(jobs))
	volumes := make(map[*Job]int64, len(jobs))
	for _, j := range jobs {
		prefTimes[j] = timeFor(j, preferredWidth(j, width, target))
		volumes[j] = j.volume(width)
	}
	chainWeight := func(j *Job) int64 {
		if j.Group != "" {
			return groupTotal[j.Group]
		}
		return prefTimes[j]
	}

	// Greedy list scheduling is sensitive to the job order; pack with a
	// few complementary orderings and keep the best schedule. All
	// orderings share deterministic tie-breaking by ID.
	orderings := []func(j *Job) int64{
		chainWeight,
		func(j *Job) int64 { return prefTimes[j] },
		func(j *Job) int64 { return volumes[j] },
	}

	shared := newFitter(newOptionTable(jobs, width, cfg), width, cfg)

	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}

	// A usable warm seed replaces the three cold packing orderings: the
	// adopted (narrower seed) or re-placed (wider seed) schedule is
	// already feasible at this width, so the repack/improve polish — the
	// same loops the cold path runs on its winner — does all remaining
	// work, with repack letting every job widen into the new wires. With
	// several seeds the cheapest pre-polish makespan wins, earlier seeds
	// winning ties.
	if len(cfg.warm) > 0 {
		var adopted *Schedule
		for _, seed := range cfg.warm {
			s := adoptSeed(jobs, width, seed)
			if s == nil {
				s = shrinkSeed(jobs, width, seed, shared)
			}
			if s != nil && (adopted == nil || s.Makespan < adopted.Makespan) {
				adopted = s
			}
		}
		if adopted != nil {
			if cfg.improvePasses > 0 {
				repack(adopted, shared)
				improve(adopted, shared)
			}
			if err := cfg.ctxErr(); err != nil {
				return nil, err
			}
			if err := adopted.Validate(); err != nil {
				return nil, fmt.Errorf("tam: internal error: produced invalid schedule: %w", err)
			}
			return adopted, nil
		}
	}

	results := make([]*Schedule, len(orderings))
	errs := make([]error, len(orderings))
	var wg sync.WaitGroup
	for oi, key := range orderings {
		wg.Add(1)
		go func(oi int, key func(j *Job) int64) {
			defer wg.Done()
			order := append([]*Job(nil), jobs...)
			sort.Slice(order, func(a, b int) bool {
				ka, kb := key(order[a]), key(order[b])
				if ka != kb {
					return ka > kb
				}
				ta, tb := prefTimes[order[a]], prefTimes[order[b]]
				if ta != tb {
					return ta > tb
				}
				return order[a].ID < order[b].ID
			})
			results[oi], errs[oi] = packList(order, shared.fork())
		}(oi, key)
	}
	wg.Wait()

	var best *Schedule
	for oi := range results {
		if errs[oi] != nil {
			return nil, errs[oi]
		}
		if best == nil || results[oi].Makespan < best.Makespan {
			best = results[oi]
		}
	}

	// Polish only the winning schedule: repack re-places every job, so
	// running it per ordering buys little for its cost.
	if cfg.improvePasses > 0 {
		repack(best, shared)
		improve(best, shared)
	}

	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	if err := best.Validate(); err != nil {
		return nil, fmt.Errorf("tam: internal error: produced invalid schedule: %w", err)
	}
	return best, nil
}

// adoptSeed rebuilds a warm-start seed over this Optimize call's job
// set: placements are matched by job ID, durations re-derived from the
// current staircases, and the result validated against the (possibly
// wider) bin. It returns nil if the seed does not describe exactly this
// job set or is not feasible here, in which case the caller packs cold.
func adoptSeed(jobs []*Job, width int, seed *Schedule) *Schedule {
	if seed == nil || len(seed.Placements) != len(jobs) || seed.Width > width {
		return nil
	}
	byID := make(map[string]*Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	s := &Schedule{Width: width, Placements: make([]Placement, 0, len(jobs))}
	for i := range seed.Placements {
		sp := &seed.Placements[i]
		j := byID[sp.Job.ID]
		if j == nil || sp.Width < j.Options[0].Width || sp.Width > width {
			return nil
		}
		delete(byID, sp.Job.ID) // each job exactly once
		p := Placement{Job: j, Width: sp.Width, Start: sp.Start, WireLo: sp.WireLo}
		p.End = p.Start + timeFor(j, p.Width)
		s.Placements = append(s.Placements, p)
		if p.End > s.Makespan {
			s.Makespan = p.End
		}
	}
	if len(byID) != 0 || s.Validate() != nil {
		return nil
	}
	return s
}

// shrinkSeed adapts a warm-start seed from a WIDER bin, which cannot be
// adopted verbatim (its placements may overflow the narrower bin): the
// jobs are re-placed earliest-fit in the seed's placement order (start,
// wire, ID), a single guided packing that inherits the seed's structure
// for a third of the three-ordering cold cost. It returns nil if the
// seed is not from a wider bin or does not describe exactly this job
// set, in which case the caller packs cold.
func shrinkSeed(jobs []*Job, width int, seed *Schedule, f *fitter) *Schedule {
	if seed == nil || seed.Width <= width || len(seed.Placements) != len(jobs) {
		return nil
	}
	byID := make(map[string]*Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	idx := make([]int, len(seed.Placements))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := &seed.Placements[idx[a]], &seed.Placements[idx[b]]
		if pa.Start != pb.Start {
			return pa.Start < pb.Start
		}
		if pa.WireLo != pb.WireLo {
			return pa.WireLo < pb.WireLo
		}
		return pa.Job.ID < pb.Job.ID
	})
	order := make([]*Job, 0, len(jobs))
	for _, i := range idx {
		j := byID[seed.Placements[i].Job.ID]
		if j == nil {
			return nil
		}
		delete(byID, j.ID) // each job exactly once
		order = append(order, j)
	}
	if len(byID) != 0 {
		return nil
	}
	s := &Schedule{Width: width, Placements: make([]Placement, 0, len(order))}
	for _, j := range order {
		p, ok := f.bestPlacement(j, s.Placements)
		if !ok {
			return nil
		}
		s.Placements = append(s.Placements, p)
		if p.End > s.Makespan {
			s.Makespan = p.End
		}
	}
	return s
}

// packList packs the jobs in the given order and runs the improvement
// loop.
func packList(order []*Job, f *fitter) (*Schedule, error) {
	s := &Schedule{Width: f.binWidth}
	s.Placements = make([]Placement, 0, len(order))
	for _, j := range order {
		if err := f.cfg.ctxErr(); err != nil {
			return nil, err
		}
		p, ok := f.bestPlacement(j, s.Placements)
		if !ok {
			return nil, fmt.Errorf("tam: could not place job %s", j.ID)
		}
		s.Placements = append(s.Placements, p)
		if p.End > s.Makespan {
			s.Makespan = p.End
		}
	}
	improve(s, f)
	return s, nil
}

// repack removes and re-places every job once, always picking the
// latest-finishing job not yet processed — the order is re-derived as
// ends move, rather than frozen by an up-front sort, so earlier moves
// inform later choices and every re-placement is checked against the
// live schedule (including its serialization groups). A re-placed job
// can always return to its old slot, so each step is monotone: neither
// the job's end nor the makespan ever increases.
func repack(s *Schedule, f *fitter) {
	done := make(map[*Job]bool, len(s.Placements))
	for {
		// On cancellation the schedule is abandoned by Optimize, so
		// bailing between steps (possibly leaving Makespan un-tightened)
		// is safe.
		if f.cfg.ctxErr() != nil {
			return
		}
		worst := -1
		for i := range s.Placements {
			p := &s.Placements[i]
			if done[p.Job] {
				continue
			}
			if worst < 0 || p.End > s.Placements[worst].End ||
				(p.End == s.Placements[worst].End && p.Job.ID < s.Placements[worst].Job.ID) {
				worst = i
			}
		}
		if worst < 0 {
			break
		}
		removed := s.Placements[worst]
		done[removed.Job] = true
		last := len(s.Placements) - 1
		s.Placements[worst] = s.Placements[last]
		s.Placements = s.Placements[:last]
		p, ok := f.bestPlacement(removed.Job, s.Placements)
		if !ok || p.End > removed.End {
			p = removed
		}
		s.Placements = append(s.Placements, p)
	}
	s.Makespan = 0
	for i := range s.Placements {
		if s.Placements[i].End > s.Makespan {
			s.Makespan = s.Placements[i].End
		}
	}
}

// preferredWidth picks the narrowest option whose time meets the target
// makespan estimate, or the widest usable option if none does.
func preferredWidth(j *Job, binWidth int, target int64) int {
	u := j.usable(binWidth)
	for _, p := range u {
		if p.Time <= target {
			return p.Width
		}
	}
	return u[len(u)-1].Width
}

// candidateWidths lists the width options the packer will try.
func candidateWidths(j *Job, binWidth int, cfg config) []wrapper.Point {
	u := j.usable(binWidth)
	if cfg.paretoOnly {
		return u
	}
	// Full staircase: every width from the narrowest option to binWidth.
	var out []wrapper.Point
	for w := u[0].Width; w <= binWidth; w++ {
		out = append(out, wrapper.Point{Width: w, Time: timeFor(j, w)})
	}
	return out
}

// improve repeatedly re-places the jobs that define the makespan,
// allowing them to widen into idle wires or move, keeping any strict
// improvement. When one makespan-defining job cannot be improved the
// loop moves on to the next one instead of giving up — moving the others
// frees wires and windows that can unstick it on a later pass — and only
// stops once a whole pass leaves every makespan-defining job in place.
func improve(s *Schedule, f *fitter) {
	tried := make(map[*Job]bool)
	for pass := 0; pass < f.cfg.improvePasses; pass++ {
		clear(tried)
		moved := false
		for {
			// Cancelled runs are abandoned by Optimize; see repack.
			if f.cfg.ctxErr() != nil {
				return
			}
			// The next makespan-defining placement not yet tried this
			// pass (stable choice by ID).
			worst := -1
			for i := range s.Placements {
				if s.Placements[i].End != s.Makespan || tried[s.Placements[i].Job] {
					continue
				}
				if worst < 0 || s.Placements[i].Job.ID < s.Placements[worst].Job.ID {
					worst = i
				}
			}
			if worst < 0 {
				break
			}
			removed := s.Placements[worst]
			tried[removed.Job] = true
			last := len(s.Placements) - 1
			s.Placements[worst] = s.Placements[last]
			s.Placements = s.Placements[:last]

			p, ok := f.bestPlacement(removed.Job, s.Placements)
			if !ok || p.End >= s.Makespan {
				// No strict improvement for this job: restore it and try
				// the next makespan-defining job.
				p = removed
			} else {
				moved = true
			}
			s.Placements = append(s.Placements, p)
		}
		if !moved {
			return
		}
		s.Makespan = 0
		for i := range s.Placements {
			if s.Placements[i].End > s.Makespan {
				s.Makespan = s.Placements[i].End
			}
		}
	}
}
