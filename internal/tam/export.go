package tam

import (
	"fmt"
	"io"
	"strings"
)

// WriteCSV exports the schedule as CSV with one row per placement:
// job, group, width, wire_lo, start, end. Rows are ordered by start
// time, then wire, for stable diffs. The header row is always written.
func (s *Schedule) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "job,group,width,wire_lo,start,end"); err != nil {
		return err
	}
	rows := append([]Placement(nil), s.Placements...)
	// Order: start, wire, ID.
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			a, b := &rows[i], &rows[j]
			if b.Start < a.Start ||
				(b.Start == a.Start && b.WireLo < a.WireLo) ||
				(b.Start == a.Start && b.WireLo == a.WireLo && b.Job.ID < a.Job.ID) {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	for i := range rows {
		p := &rows[i]
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d\n",
			csvEscape(p.Job.ID), csvEscape(p.Job.Group), p.Width, p.WireLo, p.Start, p.End); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the schedule as a CSV string.
func (s *Schedule) CSV() string {
	var sb strings.Builder
	// strings.Builder never errors.
	_ = s.WriteCSV(&sb)
	return sb.String()
}

// csvEscape quotes fields containing commas or quotes (job IDs may
// contain slashes and test names).
func csvEscape(f string) string {
	if !strings.ContainsAny(f, ",\"\n") {
		return f
	}
	return `"` + strings.ReplaceAll(f, `"`, `""`) + `"`
}
