package tam

import (
	"strings"
	"testing"
)

func TestScheduleCSV(t *testing.T) {
	jobs := []*Job{
		fixedJob("b", 2, 10),
		groupJob("a,weird\"name", "g", 1, 5),
		groupJob("c", "g", 1, 5),
	}
	s, err := Optimize(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "job,group,width,wire_lo,start,end" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4 (header + 3)", len(lines))
	}
	// Escaping: the weird job ID must be quoted with doubled quotes.
	if !strings.Contains(csv, `"a,weird""name"`) {
		t.Errorf("CSV escaping broken:\n%s", csv)
	}
	// Round-trip sanity: every job appears exactly once.
	for _, id := range []string{"b", "c"} {
		if strings.Count(csv, "\n"+id+",") != 1 {
			t.Errorf("job %s not exactly once:\n%s", id, csv)
		}
	}
}
