package tam

import (
	"testing"

	"mixsoc/internal/wrapper"
)

func TestFixedBusBasics(t *testing.T) {
	jobs := []*Job{
		fixedJob("a", 2, 10), fixedJob("b", 2, 10),
		fixedJob("c", 2, 10), fixedJob("d", 2, 10),
	}
	s, err := OptimizeFixedBus(jobs, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Four 2-wide buses run the four jobs in parallel.
	if s.Makespan != 10 {
		t.Errorf("makespan = %d, want 10", s.Makespan)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFixedBusErrors(t *testing.T) {
	if _, err := OptimizeFixedBus([]*Job{fixedJob("a", 1, 10)}, 0, 2); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := OptimizeFixedBus([]*Job{fixedJob("a", 9, 10)}, 8, 2); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := OptimizeFixedBus([]*Job{{ID: "x"}}, 8, 2); err == nil {
		t.Error("optionless job accepted")
	}
}

func TestFixedBusGroupStaysTogether(t *testing.T) {
	jobs := []*Job{
		groupJob("g1", "w", 1, 10),
		groupJob("g2", "w", 1, 10),
		fixedJob("solo", 1, 5),
	}
	s, err := OptimizeFixedBus(jobs, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The group runs serially on one bus: makespan at least 20.
	if s.Makespan < 20 {
		t.Errorf("makespan = %d, want >= 20", s.Makespan)
	}
}

func TestFixedBusUsesStaircase(t *testing.T) {
	// A flexible job on a wide bus uses the widest option that fits.
	j := &Job{ID: "x", Options: []wrapper.Point{{Width: 1, Time: 100}, {Width: 4, Time: 30}}}
	s, err := OptimizeFixedBus([]*Job{j}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 30 {
		t.Errorf("makespan = %d, want 30 (4-wide option)", s.Makespan)
	}
}

// TestFlexibleBeatsFixedBus reproduces the paper's architectural claim:
// on the mixed digital/analog job profile, rectangle packing (flexible
// width) beats any fixed-bus partition because narrow analog tests waste
// wide buses.
func TestFlexibleBeatsFixedBus(t *testing.T) {
	// Digital staircases plus narrow fixed analog tests, like p93791m.
	var jobs []*Job
	for _, m := range digitalJobsModules(t, 32) {
		jobs = append(jobs, m)
	}
	analogWidths := []int{1, 1, 2, 4, 10, 1, 1, 5}
	analogTimes := []int64{50000, 80000, 26973, 32000, 15754, 136533, 83252, 5400}
	for i := range analogWidths {
		jobs = append(jobs, &Job{
			ID:      "a" + string(rune('0'+i)),
			Options: []wrapper.Point{{Width: analogWidths[i], Time: analogTimes[i]}},
			Group:   "wrap" + string(rune('0'+i%3)),
		})
	}

	flex, err := Optimize(jobs, 32)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := OptimizeFixedBus(jobs, 32, 6)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flexible %d vs fixed-bus %d cycles (%.1f%% saved), utilization %.1f%% vs %.1f%%",
		flex.Makespan, fixed.Makespan,
		100*float64(fixed.Makespan-flex.Makespan)/float64(fixed.Makespan),
		100*flex.Utilization(), 100*fixed.Utilization())
	if flex.Makespan > fixed.Makespan {
		t.Errorf("flexible packing (%d) lost to fixed buses (%d)", flex.Makespan, fixed.Makespan)
	}
}

func digitalJobsModules(t testing.TB, maxW int) []*Job {
	t.Helper()
	return digitalJobs(t, maxW)
}

func BenchmarkFixedBusP93791(b *testing.B) {
	jobs := digitalJobs(b, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimizeFixedBus(jobs, 32, 6); err != nil {
			b.Fatal(err)
		}
	}
}
