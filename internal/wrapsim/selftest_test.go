package wrapsim

import (
	"testing"
)

func selfTestWrapper(t *testing.T, cfg Config) *Wrapper {
	t.Helper()
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetMode(SelfTest); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSelfTestRampIdealConverters(t *testing.T) {
	cfg := PaperConfig()
	cfg.ADCINL, cfg.DACINL, cfg.ResidueError = 0, 0, 0
	cfg.PathBandwidth = 0
	w := selfTestWrapper(t, cfg)
	p, err := w.SelfTestRamp()
	if err != nil {
		t.Fatal(err)
	}
	// An ideal loop has a small, systematic half-LSB artifact at most.
	if p.PeakINL > 1.0 {
		t.Errorf("ideal loop peak INL = %.2f LSB", p.PeakINL)
	}
	if !p.Monotone {
		t.Error("ideal loop not monotone")
	}
	if p.MissingCodes > 1 {
		t.Errorf("ideal loop missing %d codes", p.MissingCodes)
	}
	if err := p.Pass(1.0, 1); err != nil {
		t.Errorf("ideal converters fail production limits: %v", err)
	}
	if p.TestCycles != 256*29 {
		t.Errorf("ramp cost = %d cycles, want %d", p.TestCycles, 256*29)
	}
}

func TestSelfTestRampDetectsINL(t *testing.T) {
	good := PaperConfig()
	good.PathBandwidth = 0 // a ramp is slow; exclude settling effects
	bad := good
	bad.ADCINL, bad.DACINL = 3.0, 3.0

	pGood, err := selfTestWrapper(t, good).SelfTestRamp()
	if err != nil {
		t.Fatal(err)
	}
	pBad, err := selfTestWrapper(t, bad).SelfTestRamp()
	if err != nil {
		t.Fatal(err)
	}
	if pBad.PeakINL <= pGood.PeakINL {
		t.Errorf("degraded converters not detected: %.2f vs %.2f LSB", pBad.PeakINL, pGood.PeakINL)
	}
	// Production limits for an uncorrected 8-bit loop: ±2 LSB INL and a
	// handful of missing codes. The paper-grade wrapper (0.6 LSB stage
	// INL, peak loop INL ≈ 1) passes; the degraded one must not.
	if err := pGood.Pass(2.0, 8); err != nil {
		t.Errorf("paper wrapper fails self-test limits: %v", err)
	}
	if err := pBad.Pass(2.0, 8); err == nil {
		t.Error("3-LSB-INL wrapper passed a 2 LSB limit")
	}
}

func TestSelfTestRampModeGuard(t *testing.T) {
	w, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.SelfTestRamp(); err == nil {
		t.Error("ramp allowed outside self-test mode")
	}
	if err := w.SetMode(CoreTest); err != nil {
		t.Fatal(err)
	}
	if _, err := w.SelfTestRamp(); err == nil {
		t.Error("ramp allowed in core-test mode")
	}
}
