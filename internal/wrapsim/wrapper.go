package wrapsim

import (
	"fmt"

	"mixsoc/internal/asim"
)

// Mode is the wrapper's operating mode (Figure 1).
type Mode int

// Wrapper modes.
const (
	// Normal bypasses the test circuitry: the core sees its functional
	// inputs.
	Normal Mode = iota
	// SelfTest loops the DAC into the ADC so the tester can verify the
	// wrapper's own converters.
	SelfTest
	// CoreTest drives the core's analog input from the DAC and captures
	// its output with the ADC, making the analog core a virtual digital
	// core on the TAM.
	CoreTest
)

func (m Mode) String() string {
	switch m {
	case Normal:
		return "normal"
	case SelfTest:
		return "self-test"
	case CoreTest:
		return "core-test"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// AnalogPath is a behavioural analog core path: it consumes a sampled
// input waveform at sample rate fs and produces the output waveform.
type AnalogPath func(x []float64, fs float64) []float64

// Config sizes a wrapper instance. The defaults mirror the paper's
// implementation: an 8-bit wrapper on a 4 V supply with a 50 MHz system
// clock, sampling at 50 MHz / 29 ≈ 1.72 MHz.
type Config struct {
	Resolution  int     // converter bits; this implementation is 8
	FullScale   float64 // converter range in volts (supply), e.g. 4.0
	SystemClock float64 // digital TAM clock, Hz
	SampleRate  float64 // requested converter update rate, Hz
	TAMWidth    int     // TAM wires feeding the wrapper registers

	ADCINL       float64 // flash/interstage INL, LSB
	DACINL       float64 // DAC stage INL, LSB
	ResidueError float64 // ADC residue amplifier gain error, fraction

	// PathBandwidth is the -3 dB bandwidth of the wrapper's analog
	// signal path (DAC settling, multiplexer and sample-and-hold), in
	// Hz; 0 disables the model. This is the dominant frequency-dependent
	// wrapper error: it droops the high stimulus tones and pulls the
	// extrapolated cut-off of the core under test downward, which is the
	// direction and rough magnitude of the paper's wrapped-vs-direct
	// discrepancy (61 kHz vs 58 kHz).
	PathBandwidth float64
}

// PaperConfig returns the configuration of the Section 5 experiment.
func PaperConfig() Config {
	return Config{
		Resolution:  8,
		FullScale:   4.0,
		SystemClock: 50e6,
		SampleRate:  1.7e6,
		TAMWidth:    1,
		// Typical mid-grade nonidealities for a low-power 0.5 µm modular
		// design; see EXPERIMENTS.md (Figure 5 discussion).
		ADCINL:        0.6,
		DACINL:        0.6,
		ResidueError:  0.004,
		PathBandwidth: 240e3,
	}
}

// Wrapper is a configured analog test wrapper instance.
type Wrapper struct {
	cfg    Config
	mode   Mode
	adc    *Pipeline8
	dac    *Modular8
	settle *asim.Filter // nil when PathBandwidth is 0
}

// New validates the configuration and builds the wrapper.
func New(cfg Config) (*Wrapper, error) {
	if cfg.Resolution != 8 {
		return nil, fmt.Errorf("wrapsim: this wrapper implementation is 8-bit, got %d", cfg.Resolution)
	}
	if cfg.FullScale <= 0 {
		return nil, fmt.Errorf("wrapsim: full scale %v <= 0", cfg.FullScale)
	}
	if cfg.SystemClock <= 0 || cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("wrapsim: clocks must be positive (system %v, sample %v)", cfg.SystemClock, cfg.SampleRate)
	}
	if cfg.SampleRate > cfg.SystemClock {
		return nil, fmt.Errorf("wrapsim: sample rate %v above system clock %v", cfg.SampleRate, cfg.SystemClock)
	}
	if cfg.TAMWidth < 1 {
		return nil, fmt.Errorf("wrapsim: TAM width %d < 1", cfg.TAMWidth)
	}
	// The registers move Resolution bits per sample over TAMWidth wires:
	// that takes ceil(Resolution/TAMWidth) TAM cycles, which must fit in
	// one divided sample period.
	if cpb := cyclesPerSample(cfg); cpb < transferCycles(cfg) {
		return nil, fmt.Errorf("wrapsim: %d TAM cycles per sample cannot carry %d transfer cycles (%d bits over %d wires)",
			cpb, transferCycles(cfg), cfg.Resolution, cfg.TAMWidth)
	}
	adc, err := NewPipeline8(cfg.FullScale, cfg.ADCINL, cfg.ResidueError)
	if err != nil {
		return nil, err
	}
	dac, err := NewModular8(cfg.FullScale, cfg.DACINL)
	if err != nil {
		return nil, err
	}
	w := &Wrapper{cfg: cfg, mode: Normal, adc: adc, dac: dac}
	if cfg.PathBandwidth > 0 {
		fs := cfg.SystemClock / float64(cyclesPerSample(cfg))
		if cfg.PathBandwidth >= fs/2 {
			return nil, fmt.Errorf("wrapsim: path bandwidth %v must be below fs/2 = %v", cfg.PathBandwidth, fs/2)
		}
		w.settle, err = asim.ButterworthLowpass(1, cfg.PathBandwidth, fs)
		if err != nil {
			return nil, err
		}
	}
	return w, nil
}

// reconstruct converts stimulus codes to the analog waveform the core
// actually sees: DAC output filtered by the path-settling pole. The
// settling filter operates on the signal relative to mid-scale so that
// its transient settles around the operating point, not around 0 V.
func (w *Wrapper) reconstruct(codes []uint8) []float64 {
	analog := w.dac.ConvertAll(codes)
	if w.settle == nil {
		return analog
	}
	mid := w.cfg.FullScale / 2
	w.settle.Reset()
	w.settle.PrimeDC(analog[0] - mid)
	out := make([]float64, len(analog))
	for i, v := range analog {
		out[i] = w.settle.Process(v-mid) + mid
	}
	return out
}

func cyclesPerSample(cfg Config) int {
	return int(cfg.SystemClock / cfg.SampleRate)
}

func transferCycles(cfg Config) int {
	return (cfg.Resolution + cfg.TAMWidth - 1) / cfg.TAMWidth
}

// DivideRatio is the integer system-clock divider the test control logic
// programs to approximate the requested sample rate.
func (w *Wrapper) DivideRatio() int { return cyclesPerSample(w.cfg) }

// EffectiveSampleRate is the sample rate actually produced by the
// divided clock: SystemClock / DivideRatio.
func (w *Wrapper) EffectiveSampleRate() float64 {
	return w.cfg.SystemClock / float64(w.DivideRatio())
}

// SerialToParallelRatio is the register configuration: TAM cycles spent
// shifting one sample's bits.
func (w *Wrapper) SerialToParallelRatio() int { return transferCycles(w.cfg) }

// TestCycles is the TAM clock cost of streaming n samples through the
// wrapper: one divided sample period per sample. This is how Table 2
// style cycle counts arise from sample counts.
func (w *Wrapper) TestCycles(samples int) int64 {
	return int64(samples) * int64(w.DivideRatio())
}

// Mode returns the current mode.
func (w *Wrapper) Mode() Mode { return w.mode }

// SetMode selects normal, self-test or core-test operation.
func (w *Wrapper) SetMode(m Mode) error {
	switch m {
	case Normal, SelfTest, CoreTest:
		w.mode = m
		return nil
	}
	return fmt.Errorf("wrapsim: unknown mode %d", int(m))
}

// Config returns the wrapper's configuration.
func (w *Wrapper) Config() Config { return w.cfg }

// ApplyCodes runs one capture: the digital stimulus codes stream in over
// the TAM, the DAC reconstructs the analog stimulus, the path under test
// processes it, and the ADC digitizes the response.
//
// In SelfTest mode the path is ignored and the DAC output loops straight
// into the ADC. In CoreTest mode a nil path is an error. Normal mode
// refuses to run captures — the wrapper is transparent then.
func (w *Wrapper) ApplyCodes(stimulus []uint8, path AnalogPath) ([]uint8, error) {
	if len(stimulus) == 0 {
		return nil, fmt.Errorf("wrapsim: empty stimulus")
	}
	fs := w.EffectiveSampleRate()
	switch w.mode {
	case Normal:
		return nil, fmt.Errorf("wrapsim: wrapper in normal mode; select self-test or core-test")
	case SelfTest:
		return w.adc.ConvertAll(w.reconstruct(stimulus)), nil
	case CoreTest:
		if path == nil {
			return nil, fmt.Errorf("wrapsim: core-test mode needs an analog path")
		}
		analog := w.reconstruct(stimulus)
		response := path(analog, fs)
		if len(response) != len(analog) {
			return nil, fmt.Errorf("wrapsim: analog path returned %d samples for %d", len(response), len(analog))
		}
		return w.adc.ConvertAll(response), nil
	}
	return nil, fmt.Errorf("wrapsim: unknown mode %d", int(w.mode))
}

// ApplyWaveform quantizes a bipolar waveform (volts around the mid-scale
// operating point) to stimulus codes, runs ApplyCodes, and converts the
// response codes back to a bipolar waveform. It is the convenient entry
// point for spec tests written in terms of analog waveforms.
func (w *Wrapper) ApplyWaveform(x []float64, path AnalogPath) ([]float64, error) {
	mid := w.cfg.FullScale / 2
	codes := make([]uint8, len(x))
	clipped := 0
	for i, v := range x {
		u := v + mid
		if u < 0 || u >= w.cfg.FullScale {
			clipped++
		}
		codes[i] = QuantizeIdeal(u, w.cfg.FullScale)
	}
	if clipped > len(x)/10 {
		return nil, fmt.Errorf("wrapsim: stimulus clips %d of %d samples; reduce amplitude below ±%v",
			clipped, len(x), mid)
	}
	// The behavioural path operates on bipolar signals; shift around the
	// converters, which are unipolar.
	shifted := func(sig []float64, fs float64) []float64 {
		if path == nil {
			return sig
		}
		bip := make([]float64, len(sig))
		for i, v := range sig {
			bip[i] = v - mid
		}
		out := path(bip, fs)
		uni := make([]float64, len(out))
		for i, v := range out {
			uni[i] = v + mid
		}
		return uni
	}
	respCodes, err := w.ApplyCodes(codes, shifted)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(respCodes))
	for i, c := range respCodes {
		out[i] = CodeToVoltage(c, w.cfg.FullScale) - mid
	}
	return out, nil
}

// SNRIdeal returns the ideal quantization-limited SNR in dB for the
// wrapper's resolution (6.02·N + 1.76), a useful sanity reference.
func (w *Wrapper) SNRIdeal() float64 { return 6.02*float64(w.cfg.Resolution) + 1.76 }

// wrapperAreaMM2 is the paper's measured test-chip area for the 8-bit
// wrapper in the 0.5 µm process ("its area ... is only 0.02 mm²").
const wrapperAreaMM2 = 0.02

// TestChipAreaMM2 returns the published 0.5 µm test-chip area of the
// 8-bit wrapper.
func TestChipAreaMM2() float64 { return wrapperAreaMM2 }
