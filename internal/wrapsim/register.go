package wrapsim

import (
	"fmt"
)

// This file models the digital transport of Figure 1: the registers at
// each end of the data converters, written and read "in a semi-serial
// fashion depending on the frequency requirement of each test". A
// sample's Resolution bits travel over TAMWidth wires, taking
// ceil(Resolution/TAMWidth) TAM clock cycles (the serial-to-parallel
// ratio); one sample is exchanged every DivideRatio cycles.
//
// PatternSet turns stimulus codes and expected response codes into the
// cycle-by-cycle TAM bit patterns a digital tester applies — the
// concrete sense in which the wrapped analog core is a "virtual digital
// core".

// Serialize converts sample codes into TAM wire patterns: one []bool
// per TAM cycle, least significant bits first, padded to the
// serial-to-parallel ratio and idle until the next sample boundary.
// width is the number of TAM wires; bits the code width.
func Serialize(codes []uint8, bits, width, cyclesPerSample int) ([][]bool, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("wrapsim: serialize bits %d out of [1,8]", bits)
	}
	if width < 1 {
		return nil, fmt.Errorf("wrapsim: serialize width %d < 1", width)
	}
	transfer := (bits + width - 1) / width
	if cyclesPerSample < transfer {
		return nil, fmt.Errorf("wrapsim: %d cycles per sample cannot carry %d transfer cycles", cyclesPerSample, transfer)
	}
	out := make([][]bool, 0, len(codes)*cyclesPerSample)
	for _, code := range codes {
		bit := 0
		for c := 0; c < cyclesPerSample; c++ {
			cycle := make([]bool, width)
			if c < transfer {
				for w := 0; w < width && bit < bits; w++ {
					cycle[w] = code&(1<<uint(bit)) != 0
					bit++
				}
			}
			out = append(out, cycle)
		}
	}
	return out, nil
}

// Deserialize is the inverse of Serialize: it reassembles sample codes
// from TAM wire patterns. The cycle count must be a whole number of
// sample periods.
func Deserialize(cycles [][]bool, bits, width, cyclesPerSample int) ([]uint8, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("wrapsim: deserialize bits %d out of [1,8]", bits)
	}
	if width < 1 {
		return nil, fmt.Errorf("wrapsim: deserialize width %d < 1", width)
	}
	transfer := (bits + width - 1) / width
	if cyclesPerSample < transfer {
		return nil, fmt.Errorf("wrapsim: %d cycles per sample cannot carry %d transfer cycles", cyclesPerSample, transfer)
	}
	if len(cycles)%cyclesPerSample != 0 {
		return nil, fmt.Errorf("wrapsim: %d cycles is not a whole number of %d-cycle samples", len(cycles), cyclesPerSample)
	}
	n := len(cycles) / cyclesPerSample
	out := make([]uint8, n)
	for s := 0; s < n; s++ {
		var code uint8
		bit := 0
		for c := 0; c < transfer; c++ {
			row := cycles[s*cyclesPerSample+c]
			if len(row) != width {
				return nil, fmt.Errorf("wrapsim: cycle %d has %d wires, want %d", s*cyclesPerSample+c, len(row), width)
			}
			for w := 0; w < width && bit < bits; w++ {
				if row[w] {
					code |= 1 << uint(bit)
				}
				bit++
			}
		}
		out[s] = code
	}
	return out, nil
}

// PatternSet is the complete digital test for one wrapped-core capture:
// the stimulus bits to drive into the wrapper and the expected response
// bits to compare, cycle by cycle, plus bookkeeping that ties it to the
// TAM schedule.
type PatternSet struct {
	Width    int      // TAM wires
	Stimulus [][]bool // one row per TAM cycle
	Expected [][]bool // same shape as Stimulus
	Cycles   int64    // len(Stimulus), the schedule cost of the capture
}

// BuildPatternSet runs the wrapper over the stimulus codes and packages
// both directions as TAM bit patterns. The wrapper must be in self-test
// or core-test mode.
func (w *Wrapper) BuildPatternSet(stimulus []uint8, path AnalogPath) (*PatternSet, error) {
	response, err := w.ApplyCodes(stimulus, path)
	if err != nil {
		return nil, err
	}
	cps := w.DivideRatio()
	stimBits, err := Serialize(stimulus, w.cfg.Resolution, w.cfg.TAMWidth, cps)
	if err != nil {
		return nil, err
	}
	respBits, err := Serialize(response, w.cfg.Resolution, w.cfg.TAMWidth, cps)
	if err != nil {
		return nil, err
	}
	return &PatternSet{
		Width:    w.cfg.TAMWidth,
		Stimulus: stimBits,
		Expected: respBits,
		Cycles:   int64(len(stimBits)),
	}, nil
}
