package wrapsim

import (
	"math"
	"testing"

	"mixsoc/internal/asim"
)

// coreTestWrapper returns a wrapper in core-test mode with the paper's
// configuration.
func coreTestWrapper(t testing.TB) *Wrapper {
	t.Helper()
	w, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetMode(CoreTest); err != nil {
		t.Fatal(err)
	}
	return w
}

func amplifierPath(a *asim.Amplifier) AnalogPath {
	return func(x []float64, fs float64) []float64 {
		return a.ProcessAll(x, fs)
	}
}

func TestMeasureGain(t *testing.T) {
	w := coreTestWrapper(t)
	amp := &asim.Amplifier{Gain: 1.6}
	got, err := w.MeasureGain(amplifierPath(amp), 20e3, 0.8, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// 0.8 V in, 1.28 V out: well within range; expect ~1% accuracy.
	if math.Abs(got-1.6)/1.6 > 0.02 {
		t.Errorf("gain = %v, want 1.6 within 2%%", got)
	}
}

func TestMeasureGainTracksFrequencyRolloff(t *testing.T) {
	// Measuring a filter through the wrapper must show the filter's
	// rolloff (plus the wrapper's own, which is small at low tones).
	w := coreTestWrapper(t)
	fs := w.EffectiveSampleRate()
	filt, err := asim.ButterworthLowpass(2, 60e3, fs)
	if err != nil {
		t.Fatal(err)
	}
	path := func(x []float64, _ float64) []float64 { return filt.ProcessAll(x) }
	gLow, err := w.MeasureGain(path, 10e3, 1.0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	gHigh, err := w.MeasureGain(path, 120e3, 1.0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if gLow < 0.9 || gLow > 1.1 {
		t.Errorf("pass-band gain = %v", gLow)
	}
	if gHigh > 0.4 {
		t.Errorf("stop-band gain = %v, want < 0.4 (two octaves up, order 2)", gHigh)
	}
}

func TestMeasureTHDDetectsDistortion(t *testing.T) {
	w := coreTestWrapper(t)
	clean := &asim.Amplifier{Gain: 1}
	dirty := &asim.Amplifier{Gain: 1, HD3: 0.08}

	thdClean, err := w.MeasureTHD(amplifierPath(clean), 20e3, 1.0, 4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	thdDirty, err := w.MeasureTHD(amplifierPath(dirty), 20e3, 1.0, 4096, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The dirty core's HD3 of 0.08 -> third harmonic at 0.02 -> ~-34 dB,
	// well above the 8-bit wrapper floor; the clean core reads near the
	// floor.
	if thdDirty > -25 || thdDirty < -45 {
		t.Errorf("dirty THD = %v dB, want around -34", thdDirty)
	}
	if thdClean > thdDirty-5 {
		t.Errorf("clean THD %v dB not clearly better than dirty %v dB", thdClean, thdDirty)
	}
}

func TestMeasureOffset(t *testing.T) {
	w := coreTestWrapper(t)
	offs := &asim.Amplifier{Gain: 1, Offset: 0.15}
	got, err := w.MeasureOffset(amplifierPath(offs), 2048)
	if err != nil {
		t.Fatal(err)
	}
	// 0.15 V offset measured within a couple of LSB (LSB = 15.6 mV).
	if math.Abs(got-0.15) > 0.04 {
		t.Errorf("offset = %v V, want 0.15 within 40 mV", got)
	}
	zero := &asim.Amplifier{Gain: 1}
	got, err = w.MeasureOffset(amplifierPath(zero), 2048)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.04 {
		t.Errorf("offset of ideal core = %v V, want ~0", got)
	}
}

func TestMeasureIIP3(t *testing.T) {
	w := coreTestWrapper(t)
	// A clearly nonlinear core, so its IM3 sits well above the wrapper's
	// own ~-42 dBV floor: g=1, c3=-0.3 -> IIP3 = sqrt(4/0.9) = 2.11 V
	// = 6.48 dBV.
	nl := &asim.Amplifier{Gain: 1, HD3: -0.3}
	want := TheoreticalIIP3(1, -0.3)
	got, err := w.MeasureIIP3(amplifierPath(nl), 20e3, 25e3, 0.5, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 2.5 {
		t.Errorf("IIP3 = %.2f dBV, want %.2f within 2.5 dB", got, want)
	}
	// A linear core reads the wrapper's own IM3 floor, which must sit
	// above the distorted core's reading: the wrapper's INL limits how
	// good an IIP3 it can certify (~12 dBV at 0.5 V tones with the paper
	// wrapper).
	lin := &asim.Amplifier{Gain: 1}
	floor, err := w.MeasureIIP3(amplifierPath(lin), 20e3, 25e3, 0.5, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if floor <= got {
		t.Errorf("wrapper floor %v dBV not above distorted reading %v dBV", floor, got)
	}

	// The floor is quantization-limited (8-bit two-tone quantization
	// distortion sits near -40 dBc regardless of INL), so driving the
	// converters harder raises the certifiable IIP3: distortion products
	// stay near the fixed LSB while the stimulus power grows.
	floorLoud, err := w.MeasureIIP3(amplifierPath(lin), 20e3, 25e3, 0.9, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if floorLoud <= floor+2 {
		t.Errorf("floor at 0.9 V (%v dBV) not clearly above floor at 0.5 V (%v dBV)", floorLoud, floor)
	}
}

func TestMeasureValidation(t *testing.T) {
	w, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	pathID := func(x []float64, _ float64) []float64 { return x }
	// Wrong mode.
	if _, err := w.MeasureGain(pathID, 20e3, 0.5, 1024); err == nil {
		t.Error("measurement allowed in normal mode")
	}
	if err := w.SetMode(CoreTest); err != nil {
		t.Fatal(err)
	}
	if _, err := w.MeasureGain(pathID, 20e3, 0.5, 8); err == nil {
		t.Error("tiny capture accepted")
	}
	if _, err := w.MeasureIIP3(pathID, 20e3, 20e3, 0.5, 1024); err == nil {
		t.Error("equal tones accepted")
	}
	if _, err := w.MeasureIIP3(pathID, -1, 20e3, 0.5, 1024); err == nil {
		t.Error("negative tone accepted")
	}
}

func TestTheoreticalIIP3(t *testing.T) {
	if got := TheoreticalIIP3(1, 0); got != MaxIIP3dBV {
		t.Errorf("linear IIP3 = %v, want cap", got)
	}
	// g=1, c3=-1/3: IIP3 = sqrt(4) = 2 V = 6.02 dBV.
	if got := TheoreticalIIP3(1, -1.0/3); math.Abs(got-6.02) > 0.01 {
		t.Errorf("IIP3 = %v, want 6.02", got)
	}
}

func BenchmarkMeasureTHD(b *testing.B) {
	w, err := New(PaperConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := w.SetMode(CoreTest); err != nil {
		b.Fatal(err)
	}
	amp := &asim.Amplifier{Gain: 1, HD3: 0.05}
	path := amplifierPath(amp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.MeasureTHD(path, 20e3, 1.0, 4096, 5); err != nil {
			b.Fatal(err)
		}
	}
}
