package wrapsim

import (
	"fmt"
	"math"

	"mixsoc/internal/asim"
	"mixsoc/internal/dsp"
)

// This file implements the specification measurements of Table 2 as
// wrapper-in-the-loop procedures: pass-band gain, total harmonic
// distortion, DC offset, and the third-order input intercept. Each
// drives the core-under-test through the wrapper's DAC and digitizes
// the response with its ADC, exactly like the cut-off test of
// cutoff.go, so analog specs are measured with purely digital patterns.

// MeasureGain measures the core's gain at freq: a single tone of the
// given amplitude is applied and the output/input amplitude ratio
// returned. The leading eighth of the capture is discarded as settling.
func (w *Wrapper) MeasureGain(path AnalogPath, freq, amp float64, samples int) (float64, error) {
	if err := w.checkMeasure(samples); err != nil {
		return 0, err
	}
	fs := w.EffectiveSampleRate()
	stim, err := asim.MultiTone([]asim.Tone{{Freq: freq, Amp: amp}}, fs, samples)
	if err != nil {
		return 0, err
	}
	out, err := w.ApplyWaveform(stim, path)
	if err != nil {
		return 0, err
	}
	skip := samples / 8
	in, err := dsp.ToneMagnitude(stim[skip:], freq, fs)
	if err != nil {
		return 0, err
	}
	if in == 0 {
		return 0, fmt.Errorf("wrapsim: zero stimulus amplitude at %v Hz", freq)
	}
	outMag, err := dsp.ToneMagnitude(out[skip:], freq, fs)
	if err != nil {
		return 0, err
	}
	return outMag / in, nil
}

// MeasureTHD measures total harmonic distortion (dB, negative is
// cleaner) of the core's response to a pure tone at f0. The wrapper's
// own quantization sets the measurement floor near -(6.02·N+1.76) dB.
func (w *Wrapper) MeasureTHD(path AnalogPath, f0, amp float64, samples, maxHarmonic int) (float64, error) {
	if err := w.checkMeasure(samples); err != nil {
		return 0, err
	}
	fs := w.EffectiveSampleRate()
	stim, err := asim.MultiTone([]asim.Tone{{Freq: f0, Amp: amp}}, fs, samples)
	if err != nil {
		return 0, err
	}
	out, err := w.ApplyWaveform(stim, path)
	if err != nil {
		return 0, err
	}
	skip := samples / 8
	return dsp.THD(out[skip:], f0, fs, maxHarmonic)
}

// MeasureOffset measures the core's DC offset in volts: a mid-scale
// (zero) stimulus is applied and the mean response taken. This is the
// Voffset test of Table 2.
func (w *Wrapper) MeasureOffset(path AnalogPath, samples int) (float64, error) {
	if err := w.checkMeasure(samples); err != nil {
		return 0, err
	}
	stim := make([]float64, samples)
	out, err := w.ApplyWaveform(stim, path)
	if err != nil {
		return 0, err
	}
	skip := samples / 8
	var sum float64
	for _, v := range out[skip:] {
		sum += v
	}
	return sum / float64(len(out)-skip), nil
}

// MeasureIIP3 runs the classic two-tone intermodulation test: tones at
// f1 and f2 (volts amplitude each) are applied and the third-order
// products at 2f1-f2 and 2f2-f1 measured. The returned value is the
// extrapolated third-order input intercept point in dBV:
//
//	IIP3 = Pin + ΔP/2,  ΔP = Pfund − PIM3  (all in dB)
//
// A perfectly linear core has no IM3; the measurement then returns the
// wrapper's own floor, reported as +Inf-like large value capped to
// MaxIIP3dBV.
func (w *Wrapper) MeasureIIP3(path AnalogPath, f1, f2, amp float64, samples int) (float64, error) {
	if err := w.checkMeasure(samples); err != nil {
		return 0, err
	}
	if f1 == f2 || f1 <= 0 || f2 <= 0 {
		return 0, fmt.Errorf("wrapsim: IIP3 needs two distinct positive tones, got %v and %v", f1, f2)
	}
	fs := w.EffectiveSampleRate()
	stim, err := asim.MultiTone([]asim.Tone{{Freq: f1, Amp: amp}, {Freq: f2, Amp: amp, Phase: 1.3}}, fs, samples)
	if err != nil {
		return 0, err
	}
	out, err := w.ApplyWaveform(stim, path)
	if err != nil {
		return 0, err
	}
	skip := samples / 8
	fund, err := dsp.ToneMagnitude(out[skip:], f1, fs)
	if err != nil {
		return 0, err
	}
	im3Lo := 2*f1 - f2
	im3Hi := 2*f2 - f1
	var im3 float64
	for _, f := range []float64{im3Lo, im3Hi} {
		if f <= 0 || f >= fs/2 {
			continue
		}
		m, err := dsp.ToneMagnitude(out[skip:], f, fs)
		if err != nil {
			return 0, err
		}
		if m > im3 {
			im3 = m
		}
	}
	pin := dsp.AmplitudeDB(amp)
	if im3 <= 0 || fund <= 0 {
		return MaxIIP3dBV, nil
	}
	delta := dsp.AmplitudeDB(fund) - dsp.AmplitudeDB(im3)
	iip3 := pin + delta/2
	if iip3 > MaxIIP3dBV {
		iip3 = MaxIIP3dBV
	}
	return iip3, nil
}

// MaxIIP3dBV caps reported intercept points: beyond this the
// measurement is floor-limited by the wrapper's converters.
const MaxIIP3dBV = 60.0

func (w *Wrapper) checkMeasure(samples int) error {
	if samples < 64 {
		return fmt.Errorf("wrapsim: measurement needs >= 64 samples, got %d", samples)
	}
	if w.mode != CoreTest && w.mode != SelfTest {
		return fmt.Errorf("wrapsim: select core-test (or self-test) mode before measuring")
	}
	return nil
}

// TheoreticalIIP3 returns the intercept point (dBV) of a memoryless
// cubic nonlinearity y = g·x + c3·x³: IIP3 = sqrt(4g/(3|c3|)) in volts,
// converted to dBV. Exposed for tests and examples to compare wrapped
// measurements against ground truth.
func TheoreticalIIP3(gain, c3 float64) float64 {
	if c3 == 0 {
		return MaxIIP3dBV
	}
	v := math.Sqrt(4 * gain / (3 * math.Abs(c3)))
	return dsp.AmplitudeDB(v)
}
