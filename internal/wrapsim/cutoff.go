package wrapsim

import (
	"fmt"
	"math"

	"mixsoc/internal/asim"
	"mixsoc/internal/dsp"
)

// CutoffExperiment reproduces the Section 5 / Figure 5 demonstration:
// the cut-off frequency test fc applied to analog core A, once directly
// (pure analog stimulus and response) and once through the 8-bit analog
// test wrapper (digital stimulus codes → DAC → core → ADC → digital
// response codes). The cut-off frequency is extrapolated from the
// multi-tone gains in both cases and compared.
type CutoffExperiment struct {
	Tones        []asim.Tone // stimulus tones (bipolar, volts)
	Samples      int         // capture length; the paper uses 4551
	FilterOrder  int         // order of the core's low-pass behaviour
	FilterCutoff float64     // true fc of the core under test, Hz
	Wrapper      Config
}

// PaperCutoffExperiment returns the experiment as the paper runs it:
// a three-tone stimulus ("for the purpose of illustration, we have
// chosen an input with only three frequencies"), 4551 samples at
// 50 MHz / 29 ≈ 1.7 MHz, a 4 V supply, and a low-pass core with a
// cut-off near 60 kHz.
func PaperCutoffExperiment() CutoffExperiment {
	return CutoffExperiment{
		Tones: []asim.Tone{
			{Freq: 20e3, Amp: 0.55},
			{Freq: 60e3, Amp: 0.55, Phase: 2.1},
			{Freq: 120e3, Amp: 0.55, Phase: 4.2},
		},
		Samples:      4551,
		FilterOrder:  2,
		FilterCutoff: 60e3,
		Wrapper:      PaperConfig(),
	}
}

// CutoffResult carries everything Figure 5 shows: the three spectra and
// the two extracted cut-off frequencies.
type CutoffResult struct {
	StimulusSpectrum *dsp.Spectrum // |LPF i/p|: the applied analog test
	DirectSpectrum   *dsp.Spectrum // |LPF o/p|: analog response of the core
	WrappedSpectrum  *dsp.Spectrum // |Wrapper o/p|: response of the wrapped core

	DirectGains  []dsp.GainPoint // per-tone gain, direct measurement
	WrappedGains []dsp.GainPoint // per-tone gain, through the wrapper

	TrueFc       float64 // the core's designed cut-off
	DirectFc     float64 // extrapolated from the direct response
	WrappedFc    float64 // extrapolated from the wrapped response
	ErrorPercent float64 // |WrappedFc - DirectFc| / DirectFc · 100

	SampleRate float64 // effective converter sample rate used
	TestCycles int64   // TAM clock cycles the capture costs
}

// Run executes the experiment.
func (e CutoffExperiment) Run() (*CutoffResult, error) {
	if e.Samples < 16 {
		return nil, fmt.Errorf("wrapsim: cutoff experiment needs >= 16 samples, got %d", e.Samples)
	}
	if len(e.Tones) < 2 {
		return nil, fmt.Errorf("wrapsim: cutoff experiment needs >= 2 tones, got %d", len(e.Tones))
	}
	w, err := New(e.Wrapper)
	if err != nil {
		return nil, err
	}
	if err := w.SetMode(CoreTest); err != nil {
		return nil, err
	}
	fs := w.EffectiveSampleRate()

	filter, err := asim.ButterworthLowpass(e.FilterOrder, e.FilterCutoff, fs)
	if err != nil {
		return nil, err
	}
	path := AnalogPath(func(x []float64, fs float64) []float64 {
		return filter.ProcessAll(x)
	})

	stimulus, err := asim.MultiTone(e.Tones, fs, e.Samples)
	if err != nil {
		return nil, err
	}

	// Direct analog measurement.
	directOut := path(stimulus, fs)
	// Wrapped measurement.
	wrappedOut, err := w.ApplyWaveform(stimulus, path)
	if err != nil {
		return nil, err
	}

	res := &CutoffResult{
		TrueFc:     e.FilterCutoff,
		SampleRate: fs,
		TestCycles: w.TestCycles(e.Samples),
	}
	if res.StimulusSpectrum, err = dsp.NewSpectrum(stimulus, fs, dsp.Hann); err != nil {
		return nil, err
	}
	if res.DirectSpectrum, err = dsp.NewSpectrum(directOut, fs, dsp.Hann); err != nil {
		return nil, err
	}
	if res.WrappedSpectrum, err = dsp.NewSpectrum(wrappedOut, fs, dsp.Hann); err != nil {
		return nil, err
	}

	// Per-tone gains, measured with Goertzel at the exact stimulus
	// frequencies; skip the leading transient of the filter.
	skip := e.Samples / 8
	for _, tone := range e.Tones {
		in, err := dsp.ToneMagnitude(stimulus[skip:], tone.Freq, fs)
		if err != nil {
			return nil, err
		}
		if in == 0 {
			return nil, fmt.Errorf("wrapsim: stimulus tone at %v Hz has zero amplitude", tone.Freq)
		}
		dm, err := dsp.ToneMagnitude(directOut[skip:], tone.Freq, fs)
		if err != nil {
			return nil, err
		}
		wm, err := dsp.ToneMagnitude(wrappedOut[skip:], tone.Freq, fs)
		if err != nil {
			return nil, err
		}
		res.DirectGains = append(res.DirectGains, dsp.GainPoint{Freq: tone.Freq, Gain: dm / in})
		res.WrappedGains = append(res.WrappedGains, dsp.GainPoint{Freq: tone.Freq, Gain: wm / in})
	}

	if res.DirectFc, err = dsp.EstimateCutoff(res.DirectGains, e.FilterOrder); err != nil {
		return nil, err
	}
	if res.WrappedFc, err = dsp.EstimateCutoff(res.WrappedGains, e.FilterOrder); err != nil {
		return nil, err
	}
	if res.DirectFc > 0 {
		res.ErrorPercent = 100 * math.Abs(res.WrappedFc-res.DirectFc) / res.DirectFc
	}
	return res, nil
}
