// Package wrapsim simulates the analog test wrapper of the paper at the
// behavioural level: the modular pipelined 8-bit ADC built from two
// 4-bit flash stages and a 4-bit interstage DAC (Figure 4a), the modular
// 8-bit DAC built from two 4-bit voltage-steering DACs (Figure 4b), the
// semi-serial TAM registers with their serial-to-parallel ratio, the
// clock divider, and the wrapper's three modes (normal, self-test,
// core-test) of Figure 1.
//
// The paper validates the wrapper with HSPICE transistor-level
// simulations in a 0.5 µm process; this package is the documented
// behavioural substitute (DESIGN.md §2): converters quantize exactly as
// the modular architecture dictates and carry configurable integral
// nonlinearity so the wrapped-core measurement error of Figure 5 has a
// physical cause, not a hand-tuned fudge.
package wrapsim

import (
	"fmt"
	"math"
)

// Flash4 is a 4-bit flash ADC stage: 15 comparators against a resistor
// ladder. INL bows the ladder taps with the classic loaded-ladder shape;
// it is expressed in 8-bit LSB (FullScale/256) so that wrapper-level
// specifications read naturally even though the stage is 4-bit.
type Flash4 struct {
	FullScale float64 // input range [0, FullScale)
	INL       float64 // peak ladder bow, in 8-bit LSB
}

// Convert quantizes v to a 4-bit code, clamping out-of-range inputs.
func (f *Flash4) Convert(v float64) uint8 {
	lsb := f.FullScale / 16
	if lsb <= 0 {
		return 0
	}
	// Ladder bow: the effective threshold for code k shifts by
	// (INL/16)·sin(2πk/15) stage LSB — INL is specified in 8-bit LSB.
	// The S-shape differs from the DAC's single bow deliberately:
	// independent converters do not share an error shape, so the
	// DAC→ADC loop exposes both (see SelfTestRamp).
	x := v / lsb
	code := 0
	for k := 1; k < 16; k++ {
		threshold := float64(k) + f.INL/16*math.Sin(2*math.Pi*float64(k)/15)
		if x >= threshold {
			code = k
		}
	}
	return uint8(code)
}

// DAC4 is a 4-bit voltage-steering DAC with a ladder INL, expressed in
// 8-bit LSB like Flash4's. SharedLadder marks a DAC built on the same
// resistor string as a flash stage (the usual trick in modular
// pipelines): its error then takes the flash's S-shape and tracks it,
// keeping the residue hand-off clean; a standalone DAC has the classic
// single bow.
type DAC4 struct {
	FullScale    float64 // output range [0, FullScale)
	INL          float64 // peak bow, in 8-bit LSB
	SharedLadder bool
}

// Convert produces the analog value for a 4-bit code.
func (d *DAC4) Convert(code uint8) float64 {
	code &= 0x0F
	lsb := d.FullScale / 16
	shape := math.Sin(math.Pi * float64(code) / 15)
	if d.SharedLadder {
		shape = math.Sin(2 * math.Pi * float64(code) / 15)
	}
	return (float64(code) + d.INL/16*shape) * lsb
}

// Pipeline8 is the modular 8-bit ADC of Figure 4(a): a coarse 4-bit
// flash, a 4-bit DAC reconstructing the coarse estimate, a ×16 residue
// amplifier, and a fine 4-bit flash. 32 comparators instead of the 256
// a flash 8-bit converter would need.
type Pipeline8 struct {
	FullScale    float64
	Coarse, Fine Flash4
	Interstage   DAC4
	ResidueGain  float64 // ideal 16; deviations model amplifier error
}

// NewPipeline8 builds the ADC for the given full-scale range with the
// given per-stage INL (LSB units) and residue-gain error (fraction, e.g.
// 0.002 for +0.2%).
func NewPipeline8(fullScale, inl, gainError float64) (*Pipeline8, error) {
	if fullScale <= 0 {
		return nil, fmt.Errorf("wrapsim: ADC full scale %v <= 0", fullScale)
	}
	return &Pipeline8{
		FullScale: fullScale,
		Coarse:    Flash4{FullScale: fullScale, INL: inl},
		Fine:      Flash4{FullScale: fullScale, INL: inl},
		// The interstage DAC taps the coarse flash's ladder, so its
		// error tracks the flash and the residue hand-off stays clean.
		Interstage:  DAC4{FullScale: fullScale, INL: inl, SharedLadder: true},
		ResidueGain: 16 * (1 + gainError),
	}, nil
}

// Convert digitizes v into an 8-bit code.
func (p *Pipeline8) Convert(v float64) uint8 {
	if v < 0 {
		v = 0
	}
	if v >= p.FullScale {
		v = math.Nextafter(p.FullScale, 0)
	}
	coarse := p.Coarse.Convert(v)
	residue := (v - p.Interstage.Convert(coarse)) * p.ResidueGain / 16
	// The residue occupies one coarse LSB = FullScale/16; the fine stage
	// digitizes it scaled back to full range.
	fine := p.Fine.Convert(residue * 16)
	code := int(coarse)<<4 | int(fine&0x0F)
	if code > 255 {
		code = 255
	}
	if code < 0 {
		code = 0
	}
	return uint8(code)
}

// ConvertAll digitizes a whole signal.
func (p *Pipeline8) ConvertAll(v []float64) []uint8 {
	out := make([]uint8, len(v))
	for i, x := range v {
		out[i] = p.Convert(x)
	}
	return out
}

// Modular8 is the modular 8-bit DAC of Figure 4(b): two 4-bit DACs, the
// LSB one scaled by 1/16, reducing the resistor count by 8x versus a
// single-ladder 8-bit design.
type Modular8 struct {
	FullScale float64
	MSB, LSB  DAC4
}

// NewModular8 builds the DAC with the given per-stage INL in LSB.
func NewModular8(fullScale, inl float64) (*Modular8, error) {
	if fullScale <= 0 {
		return nil, fmt.Errorf("wrapsim: DAC full scale %v <= 0", fullScale)
	}
	return &Modular8{
		FullScale: fullScale,
		MSB:       DAC4{FullScale: fullScale, INL: inl},
		LSB:       DAC4{FullScale: fullScale, INL: inl},
	}, nil
}

// Convert produces the analog value for an 8-bit code.
func (m *Modular8) Convert(code uint8) float64 {
	return m.MSB.Convert(code>>4) + m.LSB.Convert(code&0x0F)/16
}

// ConvertAll converts a whole code stream.
func (m *Modular8) ConvertAll(codes []uint8) []float64 {
	out := make([]float64, len(codes))
	for i, c := range codes {
		out[i] = m.Convert(c)
	}
	return out
}

// QuantizeIdeal converts a voltage in [0, fullScale) to the nearest
// 8-bit code with an ideal (INL-free) characteristic: the digital
// stimulus pattern a tester would compute.
func QuantizeIdeal(v, fullScale float64) uint8 {
	if fullScale <= 0 {
		return 0
	}
	c := int(math.Floor(v / fullScale * 256))
	if c < 0 {
		c = 0
	}
	if c > 255 {
		c = 255
	}
	return uint8(c)
}

// CodeToVoltage is the ideal inverse of QuantizeIdeal (code centers).
func CodeToVoltage(code uint8, fullScale float64) float64 {
	return (float64(code) + 0.5) / 256 * fullScale
}
