package wrapsim

import (
	"math"
	"testing"
	"testing/quick"

	"mixsoc/internal/asim"
	"mixsoc/internal/dsp"
)

func TestFlash4Ideal(t *testing.T) {
	f := Flash4{FullScale: 16}
	cases := []struct {
		v    float64
		want uint8
	}{{0, 0}, {0.99, 0}, {1.0, 1}, {7.5, 7}, {15.0, 15}, {15.99, 15}, {100, 15}, {-3, 0}}
	for _, tc := range cases {
		if got := f.Convert(tc.v); got != tc.want {
			t.Errorf("Flash4(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestFlash4Monotone(t *testing.T) {
	f := Flash4{FullScale: 4, INL: 0.9}
	prev := uint8(0)
	for v := 0.0; v < 4; v += 0.001 {
		got := f.Convert(v)
		if got < prev {
			t.Fatalf("flash not monotone at %v: %d < %d", v, got, prev)
		}
		prev = got
	}
}

func TestDAC4Monotone(t *testing.T) {
	d := DAC4{FullScale: 4, INL: 0.9}
	prev := math.Inf(-1)
	for c := 0; c < 16; c++ {
		v := d.Convert(uint8(c))
		if v <= prev {
			t.Fatalf("DAC not monotone at code %d: %v <= %v", c, v, prev)
		}
		prev = v
	}
}

func TestPipeline8IdealTransfer(t *testing.T) {
	adc, err := NewPipeline8(4.0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With no INL the pipeline implements a clean 8-bit floor quantizer.
	for code := 0; code < 256; code++ {
		v := (float64(code) + 0.5) * 4.0 / 256
		if got := adc.Convert(v); got != uint8(code) {
			t.Fatalf("Pipeline8(%v) = %d, want %d", v, got, code)
		}
	}
	// Clamping.
	if adc.Convert(-1) != 0 {
		t.Error("negative input not clamped to 0")
	}
	if adc.Convert(99) != 255 {
		t.Error("overrange input not clamped to 255")
	}
}

func TestPipeline8MonotoneWithINL(t *testing.T) {
	adc, err := NewPipeline8(4.0, 0.6, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	prev := uint8(0)
	for v := 0.0; v < 4; v += 0.0005 {
		got := adc.Convert(v)
		if got < prev && prev-got > 1 {
			t.Fatalf("pipeline grossly non-monotone at %v: %d after %d", v, got, prev)
		}
		if got > prev {
			prev = got
		}
	}
}

func TestModular8IdealMatchesBinary(t *testing.T) {
	dac, err := NewModular8(4.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for code := 0; code < 256; code++ {
		want := float64(code) * 4.0 / 256
		if got := dac.Convert(uint8(code)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Modular8(%d) = %v, want %v", code, got, want)
		}
	}
}

func TestConverterRoundTripProperty(t *testing.T) {
	adc, _ := NewPipeline8(4.0, 0, 0)
	dac, _ := NewModular8(4.0, 0)
	f := func(code uint8) bool {
		// DAC then ADC recovers the code (ideal converters, half-LSB
		// shifted sampling).
		v := dac.Convert(code) + 0.5*4.0/256
		return adc.Convert(v) == code
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizeIdealInverse(t *testing.T) {
	for code := 0; code < 256; code++ {
		v := CodeToVoltage(uint8(code), 4.0)
		if got := QuantizeIdeal(v, 4.0); got != uint8(code) {
			t.Fatalf("QuantizeIdeal(CodeToVoltage(%d)) = %d", code, got)
		}
	}
	if QuantizeIdeal(-1, 4) != 0 || QuantizeIdeal(5, 4) != 255 {
		t.Error("clamping broken")
	}
}

func TestNewWrapperValidation(t *testing.T) {
	good := PaperConfig()
	if _, err := New(good); err != nil {
		t.Fatalf("paper config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Resolution = 10 },
		func(c *Config) { c.FullScale = 0 },
		func(c *Config) { c.SystemClock = 0 },
		func(c *Config) { c.SampleRate = 0 },
		func(c *Config) { c.SampleRate = 100e6 },
		func(c *Config) { c.TAMWidth = 0 },
		// 8 bits over 1 wire needs 8 cycles/sample; 10 MHz at 50 MHz
		// clock leaves only 5.
		func(c *Config) { c.SampleRate = 10e6 },
	}
	for i, mutate := range bad {
		cfg := PaperConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestWrapperClocking(t *testing.T) {
	w, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := w.DivideRatio(); got != 29 {
		t.Errorf("DivideRatio = %d, want 29 (50 MHz / 1.7 MHz)", got)
	}
	fs := w.EffectiveSampleRate()
	if math.Abs(fs-50e6/29) > 1 {
		t.Errorf("EffectiveSampleRate = %v", fs)
	}
	if got := w.SerialToParallelRatio(); got != 8 {
		t.Errorf("SerialToParallelRatio = %d, want 8 (8 bits over 1 wire)", got)
	}
	if got := w.TestCycles(4551); got != 4551*29 {
		t.Errorf("TestCycles = %d", got)
	}
	if snr := w.SNRIdeal(); math.Abs(snr-49.92) > 0.01 {
		t.Errorf("SNRIdeal = %v, want 49.92", snr)
	}
	if TestChipAreaMM2() != 0.02 {
		t.Error("paper test chip area constant wrong")
	}
}

func TestModes(t *testing.T) {
	w, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if w.Mode() != Normal {
		t.Error("initial mode not normal")
	}
	if _, err := w.ApplyCodes([]uint8{1, 2, 3}, nil); err == nil {
		t.Error("capture allowed in normal mode")
	}
	if err := w.SetMode(SelfTest); err != nil {
		t.Fatal(err)
	}
	if err := w.SetMode(Mode(9)); err == nil {
		t.Error("bogus mode accepted")
	}
	for _, m := range []Mode{Normal, SelfTest, CoreTest} {
		if m.String() == "" {
			t.Error("mode String broken")
		}
	}
}

func TestSelfTestLoopback(t *testing.T) {
	w, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetMode(SelfTest); err != nil {
		t.Fatal(err)
	}
	codes := make([]uint8, 256)
	for i := range codes {
		codes[i] = uint8(i)
	}
	back, err := w.ApplyCodes(codes, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With the paper's small INL the loopback code error stays within a
	// couple of LSB.
	for i, c := range codes {
		diff := int(back[i]) - int(c)
		if diff < -3 || diff > 3 {
			t.Errorf("self-test code %d came back as %d", c, back[i])
		}
	}
	if _, err := w.ApplyCodes(nil, nil); err == nil {
		t.Error("empty stimulus accepted")
	}
}

func TestCoreTestNeedsPath(t *testing.T) {
	w, _ := New(PaperConfig())
	if err := w.SetMode(CoreTest); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ApplyCodes([]uint8{1, 2}, nil); err == nil {
		t.Error("core-test without path accepted")
	}
	short := func(x []float64, fs float64) []float64 { return x[:1] }
	if _, err := w.ApplyCodes([]uint8{1, 2}, short); err == nil {
		t.Error("length-changing path accepted")
	}
}

func TestApplyWaveformClippingGuard(t *testing.T) {
	w, _ := New(PaperConfig())
	if err := w.SetMode(SelfTest); err != nil {
		t.Fatal(err)
	}
	huge := make([]float64, 100)
	for i := range huge {
		huge[i] = 10 // way beyond ±2 V
	}
	if _, err := w.ApplyWaveform(huge, nil); err == nil {
		t.Error("clipping stimulus accepted")
	}
}

func TestWrappedSNRNearIdeal(t *testing.T) {
	// A pure tone through the self-test loop should show SNR in the
	// neighbourhood of the 8-bit ideal (49.9 dB); INL costs a few dB.
	cfg := PaperConfig()
	w, _ := New(cfg)
	if err := w.SetMode(SelfTest); err != nil {
		t.Fatal(err)
	}
	fs := w.EffectiveSampleRate()
	n := 4096
	tone := 15e3
	x, err := asim.MultiTone([]asim.Tone{{Freq: tone, Amp: 1.8}}, fs, n)
	if err != nil {
		t.Fatal(err)
	}
	y, err := w.ApplyWaveform(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := dsp.ToneMagnitude(y, tone, fs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sig-1.8)/1.8 > 0.02 {
		t.Errorf("loopback tone amplitude %v, want ~1.8", sig)
	}
}

func TestPaperCutoffExperiment(t *testing.T) {
	res, err := PaperCutoffExperiment().Run()
	if err != nil {
		t.Fatal(err)
	}
	// The direct measurement recovers the true cutoff closely.
	if math.Abs(res.DirectFc-res.TrueFc)/res.TrueFc > 0.05 {
		t.Errorf("direct fc = %v, want within 5%% of %v", res.DirectFc, res.TrueFc)
	}
	// The paper reports ~5% error through the wrapper; allow a band
	// around that but insist the wrapper is usable (not >12%).
	if res.ErrorPercent > 12 {
		t.Errorf("wrapped-vs-direct error = %.2f%%, want < 12%%", res.ErrorPercent)
	}
	if res.ErrorPercent == 0 {
		t.Error("wrapped measurement suspiciously identical to direct")
	}
	t.Logf("fc: true %.1f kHz, direct %.2f kHz, wrapped %.2f kHz, error %.2f%% (paper: 61 vs 58 kHz, ~5%%)",
		res.TrueFc/1e3, res.DirectFc/1e3, res.WrappedFc/1e3, res.ErrorPercent)
	// Spectra exist and the stimulus has its three tones.
	peaks := res.StimulusSpectrum.Peaks(3, 0.1)
	if len(peaks) != 3 {
		t.Errorf("stimulus peaks = %v", peaks)
	}
	if res.TestCycles != 4551*29 {
		t.Errorf("TestCycles = %d", res.TestCycles)
	}
}

func TestCutoffExperimentValidation(t *testing.T) {
	e := PaperCutoffExperiment()
	e.Samples = 4
	if _, err := e.Run(); err == nil {
		t.Error("tiny sample count accepted")
	}
	e = PaperCutoffExperiment()
	e.Tones = e.Tones[:1]
	if _, err := e.Run(); err == nil {
		t.Error("single tone accepted")
	}
	e = PaperCutoffExperiment()
	e.Wrapper.TAMWidth = 0
	if _, err := e.Run(); err == nil {
		t.Error("bad wrapper config accepted")
	}
}

func BenchmarkCutoffExperiment(b *testing.B) {
	e := PaperCutoffExperiment()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipeline8(b *testing.B) {
	adc, _ := NewPipeline8(4.0, 0.6, 0.004)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adc.Convert(float64(i%4000) / 1000)
	}
}
