package wrapsim

import (
	"fmt"
)

// This file implements converter characterization through the wrapper's
// self-test mode (Figure 1): the DAC output loops into the ADC, so a
// digital code ramp measures the combined transfer characteristic
// without touching the core. The paper defers data-converter testing to
// BIST references [16-18] and lists "the cost of testing the data
// converters" as future work; this is the natural in-wrapper
// realization: a full ramp costs 256 samples × DivideRatio TAM cycles
// on the 8-bit design.

// ConverterProfile is the result of a self-test ramp.
type ConverterProfile struct {
	// Transfer[i] is the code the ADC returned when the DAC was driven
	// with code i (averaged if Repeats > 1 and dithering applies; this
	// behavioural model is deterministic, so a single pass suffices).
	Transfer [256]uint8
	// INL[i] is the loop nonlinearity at code i in LSB: the deviation of
	// Transfer from the ideal straight line through its endpoints.
	INL [256]float64
	// PeakINL is the maximum |INL| over the ramp.
	PeakINL float64
	// Monotone is false if the transfer ever decreases.
	Monotone bool
	// MissingCodes counts output codes never produced by the loop.
	MissingCodes int
	// TestCycles is the TAM cost of the ramp.
	TestCycles int64
}

// SelfTestRamp drives every code through the DAC-ADC loop and
// characterizes the pair. The wrapper must be in self-test mode.
func (w *Wrapper) SelfTestRamp() (*ConverterProfile, error) {
	if w.mode != SelfTest {
		return nil, fmt.Errorf("wrapsim: self-test ramp needs self-test mode, wrapper is in %v", w.mode)
	}
	codes := make([]uint8, 256)
	for i := range codes {
		codes[i] = uint8(i)
	}
	back, err := w.ApplyCodes(codes, nil)
	if err != nil {
		return nil, err
	}
	p := &ConverterProfile{Monotone: true, TestCycles: w.TestCycles(len(codes))}
	copy(p.Transfer[:], back)

	// Endpoint-fit line: ideal transfer from code 0's reading to code
	// 255's reading.
	lo, hi := float64(p.Transfer[0]), float64(p.Transfer[255])
	slope := (hi - lo) / 255
	seen := [256]bool{}
	for i := 0; i < 256; i++ {
		ideal := lo + slope*float64(i)
		p.INL[i] = float64(p.Transfer[i]) - ideal
		if a := p.INL[i]; a > p.PeakINL {
			p.PeakINL = a
		} else if -a > p.PeakINL {
			p.PeakINL = -a
		}
		if i > 0 && p.Transfer[i] < p.Transfer[i-1] {
			p.Monotone = false
		}
		seen[p.Transfer[i]] = true
	}
	for i := int(p.Transfer[0]); i <= int(p.Transfer[255]); i++ {
		if !seen[i] {
			p.MissingCodes++
		}
	}
	return p, nil
}

// Pass applies simple production limits to a profile: monotone, peak
// INL within maxINL LSB, and no more than maxMissing missing codes.
func (p *ConverterProfile) Pass(maxINL float64, maxMissing int) error {
	if !p.Monotone {
		return fmt.Errorf("wrapsim: converter loop not monotone")
	}
	if p.PeakINL > maxINL {
		return fmt.Errorf("wrapsim: peak INL %.2f LSB exceeds %.2f", p.PeakINL, maxINL)
	}
	if p.MissingCodes > maxMissing {
		return fmt.Errorf("wrapsim: %d missing codes exceed %d", p.MissingCodes, maxMissing)
	}
	return nil
}
