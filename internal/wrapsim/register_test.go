package wrapsim

import (
	"testing"
	"testing/quick"

	"mixsoc/internal/asim"
)

func TestSerializeDeserializeRoundTrip(t *testing.T) {
	codes := []uint8{0x00, 0xFF, 0xA5, 0x5A, 0x01, 0x80}
	for _, width := range []int{1, 2, 4, 8} {
		for _, cps := range []int{8, 10, 29} {
			if cps < (8+width-1)/width {
				continue
			}
			bits, err := Serialize(codes, 8, width, cps)
			if err != nil {
				t.Fatalf("width %d cps %d: %v", width, cps, err)
			}
			if len(bits) != len(codes)*cps {
				t.Fatalf("width %d cps %d: %d cycles, want %d", width, cps, len(bits), len(codes)*cps)
			}
			back, err := Deserialize(bits, 8, width, cps)
			if err != nil {
				t.Fatal(err)
			}
			for i := range codes {
				if back[i] != codes[i] {
					t.Fatalf("width %d cps %d: code %d came back %02x, want %02x", width, cps, i, back[i], codes[i])
				}
			}
		}
	}
}

func TestSerializeErrors(t *testing.T) {
	if _, err := Serialize([]uint8{1}, 0, 1, 8); err == nil {
		t.Error("bits 0 accepted")
	}
	if _, err := Serialize([]uint8{1}, 8, 0, 8); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := Serialize([]uint8{1}, 8, 1, 4); err == nil {
		t.Error("insufficient cycles per sample accepted")
	}
	if _, err := Deserialize([][]bool{{true}}, 8, 1, 8); err == nil {
		t.Error("partial sample accepted")
	}
	if _, err := Deserialize([][]bool{{true, false}}, 1, 1, 1); err == nil {
		t.Error("wrong wire count accepted")
	}
	if _, err := Deserialize(nil, 8, 1, 4); err == nil {
		t.Error("insufficient cps accepted in deserialize")
	}
}

func TestSerializeProperty(t *testing.T) {
	f := func(codes []uint8, widthRaw, slackRaw uint8) bool {
		if len(codes) == 0 {
			return true
		}
		if len(codes) > 64 {
			codes = codes[:64]
		}
		width := int(widthRaw%8) + 1
		transfer := (8 + width - 1) / width
		cps := transfer + int(slackRaw%8)
		bits, err := Serialize(codes, 8, width, cps)
		if err != nil {
			return false
		}
		back, err := Deserialize(bits, 8, width, cps)
		if err != nil || len(back) != len(codes) {
			return false
		}
		for i := range codes {
			if back[i] != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuildPatternSet(t *testing.T) {
	w, err := New(PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetMode(CoreTest); err != nil {
		t.Fatal(err)
	}
	fs := w.EffectiveSampleRate()
	filt, err := asim.ButterworthLowpass(2, 60e3, fs)
	if err != nil {
		t.Fatal(err)
	}
	path := func(x []float64, _ float64) []float64 { return filt.ProcessAll(x) }

	stim, err := asim.MultiTone([]asim.Tone{{Freq: 20e3, Amp: 1}}, fs, 256)
	if err != nil {
		t.Fatal(err)
	}
	codes := make([]uint8, len(stim))
	for i, v := range stim {
		codes[i] = QuantizeIdeal(v+2, 4)
	}

	ps, err := w.BuildPatternSet(codes, path)
	if err != nil {
		t.Fatal(err)
	}
	// The pattern cost equals the wrapper's schedule cost for the same
	// number of samples — the link between wrapsim and the TAM planner.
	if ps.Cycles != w.TestCycles(len(codes)) {
		t.Errorf("pattern cycles %d != schedule cycles %d", ps.Cycles, w.TestCycles(len(codes)))
	}
	if ps.Width != 1 {
		t.Errorf("width = %d", ps.Width)
	}
	if len(ps.Stimulus) != len(ps.Expected) {
		t.Error("stimulus/expected shape mismatch")
	}
	// Stimulus bits decode back to the original codes.
	back, err := Deserialize(ps.Stimulus, 8, ps.Width, w.DivideRatio())
	if err != nil {
		t.Fatal(err)
	}
	for i := range codes {
		if back[i] != codes[i] {
			t.Fatalf("stimulus pattern corrupted at %d", i)
		}
	}
	// Expected bits decode to the wrapper's actual response.
	want, err := w.ApplyCodes(codes, path)
	if err != nil {
		t.Fatal(err)
	}
	gotResp, err := Deserialize(ps.Expected, 8, ps.Width, w.DivideRatio())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if gotResp[i] != want[i] {
			t.Fatalf("expected pattern corrupted at %d", i)
		}
	}

	// Normal mode refuses.
	if err := w.SetMode(Normal); err != nil {
		t.Fatal(err)
	}
	if _, err := w.BuildPatternSet(codes, path); err == nil {
		t.Error("pattern set built in normal mode")
	}
}
