package itc02

// T512505 returns an embedded benchmark in the spirit of the ITC'02
// t512505 circuit, the family's stress case: thirty-one cores, most of
// them mid-size, plus one giant scan core (m31) whose test alone packs
// to roughly 5.2 million cycles once every one of its chains has its own
// TAM wire — the published property that makes t512505's schedules
// bottleneck-bound at every practical width. The module data is
// synthesized to that shape (see DESIGN.md §2): registry users get a
// design where widening the TAM quickly stops helping, the opposite
// regime from d695 and g1023.
func T512505() *SOC {
	s := &SOC{Name: "t512505"}
	s.AddModule(&Module{ID: 0, Name: "soc", Level: 0, Inputs: 192, Outputs: 160, Bidirs: 32})
	for _, spec := range t512505Specs {
		s.AddModule(&Module{
			ID:      spec.id,
			Name:    spec.name,
			Level:   1,
			Inputs:  spec.in,
			Outputs: spec.out,
			Bidirs:  spec.bid,
			Scan:    buildChains(spec.chains),
			Tests:   []Test{{ID: 1, Patterns: spec.patterns, ScanUse: len(spec.chains) > 0, TamUse: true}},
		})
	}
	return s
}

var t512505Specs = []moduleSpec{
	// Combinational and IO-dominated cores.
	{1, "m01", 96, 64, 0, nil, 720},
	{2, "m02", 58, 30, 0, nil, 512},
	{3, "m03", 120, 84, 8, nil, 633},
	// Small scan cores.
	{4, "m04", 30, 16, 0, []chainSpec{{2, 140}}, 180},
	{5, "m05", 24, 12, 0, []chainSpec{{2, 110}}, 212},
	{6, "m06", 42, 20, 0, []chainSpec{{3, 160}}, 196},
	{7, "m07", 36, 24, 0, []chainSpec{{3, 130}}, 240},
	{8, "m08", 28, 14, 0, []chainSpec{{2, 170}}, 205},
	{9, "m09", 50, 26, 4, []chainSpec{{4, 150}}, 188},
	{10, "m10", 44, 22, 0, []chainSpec{{4, 180}}, 176},
	{11, "m11", 32, 18, 0, []chainSpec{{3, 120}}, 230},
	{12, "m12", 26, 12, 0, []chainSpec{{2, 190}}, 168},
	{13, "m13", 60, 32, 0, []chainSpec{{5, 170}}, 210},
	// Mid-range scan cores.
	{14, "m14", 72, 40, 0, []chainSpec{{6, 260}}, 275},
	{15, "m15", 64, 36, 0, []chainSpec{{6, 300}}, 248},
	{16, "m16", 88, 48, 8, []chainSpec{{8, 280}}, 290},
	{17, "m17", 56, 30, 0, []chainSpec{{5, 320}}, 236},
	{18, "m18", 94, 52, 0, []chainSpec{{8, 340}}, 264},
	{19, "m19", 48, 28, 0, []chainSpec{{4, 360}}, 228},
	{20, "m20", 76, 42, 0, []chainSpec{{7, 310}}, 282},
	{21, "m21", 68, 38, 0, []chainSpec{{6, 290}}, 256},
	{22, "m22", 102, 56, 0, []chainSpec{{9, 330}}, 300},
	{23, "m23", 54, 30, 0, []chainSpec{{5, 270}}, 244},
	// Large scan cores.
	{24, "m24", 130, 72, 8, []chainSpec{{12, 420}}, 340},
	{25, "m25", 118, 64, 0, []chainSpec{{10, 460}}, 318},
	{26, "m26", 142, 80, 0, []chainSpec{{14, 440}}, 352},
	{27, "m27", 110, 60, 0, []chainSpec{{10, 480}}, 306},
	{28, "m28", 156, 88, 0, []chainSpec{{16, 450}}, 366},
	{29, "m29", 124, 68, 0, []chainSpec{{12, 500}}, 328},
	{30, "m30", 98, 54, 0, []chainSpec{{8, 520}}, 294},
	// The giant: eight 20k-bit chains make its scan-in time ~20k cycles
	// per pattern once w >= 8, so its test floors the SOC makespan near
	// 260 x 20001 ~ 5.2M cycles at any practical TAM width.
	{31, "m31", 64, 40, 0, []chainSpec{{8, 20000}}, 260},
}
