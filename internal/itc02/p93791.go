package itc02

// This file holds the embedded digital benchmark used by the paper's
// experiments. The original ITC'02 p93791 files are distributed from a
// web site that no longer exists and are not redistributable, so the
// module data below is synthesized to match the published aggregate
// characteristics of p93791 (see DESIGN.md §2): 32 testable cores below
// a SOC-level module, a few very large scan cores that dominate the
// schedule, a mid-range body, a tail of small and combinational cores,
// and a total test-data volume of ≈28M bit-cycles so that a
// rectangle-packed schedule lands near 0.9M clock cycles at TAM width 32
// and near 0.45M at width 64, mirroring the published staircase.
//
// All paper results reproduced on top of this SOC are normalized
// (CT, cost), exactly as the paper reports them.

// P93791 returns a fresh copy of the embedded digital SOC. Callers may
// mutate the result freely.
func P93791() *SOC {
	s := &SOC{Name: "p93791"}
	// SOC-level module: chip pins.
	s.AddModule(&Module{ID: 0, Name: "soc", Level: 0, Inputs: 128, Outputs: 128, Bidirs: 64})
	for _, spec := range p93791Specs {
		m := &Module{
			ID:      spec.id,
			Name:    spec.name,
			Level:   1,
			Inputs:  spec.in,
			Outputs: spec.out,
			Bidirs:  spec.bid,
			Scan:    buildChains(spec.chains),
			Tests:   []Test{{ID: 1, Patterns: spec.patterns, ScanUse: len(spec.chains) > 0, TamUse: true}},
		}
		s.AddModule(m)
	}
	return s
}

// chainSpec describes count scan chains of a nominal length; buildChains
// varies the lengths slightly and deterministically for realism.
type chainSpec struct{ count, length int }

type moduleSpec struct {
	id           int
	name         string
	in, out, bid int
	chains       []chainSpec
	patterns     int
}

func buildChains(specs []chainSpec) []int {
	var out []int
	i := 0
	for _, cs := range specs {
		for k := 0; k < cs.count; k++ {
			l := cs.length - i%7
			if l < 1 {
				l = 1
			}
			out = append(out, l)
			i++
		}
	}
	return out
}

var p93791Specs = []moduleSpec{
	// Large scan cores.
	{1, "core01", 109, 32, 72, []chainSpec{{46, 168}}, 409},
	{2, "core02", 417, 324, 72, []chainSpec{{24, 510}, {22, 492}}, 218},
	{3, "core03", 146, 68, 0, []chainSpec{{12, 392}, {12, 368}}, 260},
	{4, "core04", 84, 60, 0, []chainSpec{{18, 420}}, 250},
	{5, "core05", 36, 12, 16, []chainSpec{{30, 210}}, 252},
	{6, "core06", 66, 33, 0, []chainSpec{{12, 500}}, 239},
	{7, "core07", 132, 72, 0, []chainSpec{{16, 300}}, 264},
	{8, "core08", 50, 30, 0, []chainSpec{{8, 520}}, 262},
	{9, "core09", 80, 36, 8, []chainSpec{{14, 260}}, 268},
	// Mid-range scan cores.
	{10, "core10", 64, 36, 0, []chainSpec{{12, 250}}, 294},
	{11, "core11", 48, 64, 0, []chainSpec{{10, 280}}, 297},
	{12, "core12", 112, 48, 0, []chainSpec{{8, 300}}, 318},
	{13, "core13", 40, 24, 8, []chainSpec{{9, 260}}, 295},
	{14, "core14", 72, 28, 0, []chainSpec{{7, 290}}, 309},
	{15, "core15", 28, 16, 0, []chainSpec{{8, 240}}, 308},
	{16, "core16", 56, 32, 0, []chainSpec{{6, 270}}, 328},
	{17, "core17", 44, 20, 0, []chainSpec{{5, 300}}, 324},
	{18, "core18", 36, 18, 4, []chainSpec{{6, 220}}, 331},
	{19, "core19", 60, 30, 0, []chainSpec{{4, 280}}, 340},
	// Smaller scan cores.
	{20, "core20", 32, 16, 0, []chainSpec{{4, 240}}, 353},
	{21, "core21", 24, 12, 0, []chainSpec{{4, 200}}, 364},
	{22, "core22", 40, 22, 0, []chainSpec{{3, 230}}, 384},
	{23, "core23", 30, 14, 0, []chainSpec{{3, 210}}, 379},
	{24, "core24", 26, 12, 0, []chainSpec{{2, 260}}, 403},
	{25, "core25", 22, 10, 0, []chainSpec{{2, 230}}, 415},
	// Combinational / IO-dominated cores.
	{26, "core26", 214, 112, 0, nil, 840},
	{27, "core27", 176, 80, 0, nil, 852},
	{28, "core28", 142, 64, 0, nil, 845},
	{29, "core29", 118, 52, 0, nil, 847},
	{30, "core30", 96, 40, 0, nil, 833},
	{31, "core31", 64, 30, 0, nil, 781},
	{32, "core32", 40, 18, 0, nil, 750},
}
