package itc02

// D281 returns a small embedded benchmark in the spirit of the ITC'02
// d-series circuits: eight digital cores with modest scan content. Like
// P93791 it is synthesized (see DESIGN.md §2), calibrated to be roughly
// two orders of magnitude smaller — handy for fast demos, tests and
// examples where packing the big benchmark would be wasteful.
func D281() *SOC {
	s := &SOC{Name: "d281"}
	s.AddModule(&Module{ID: 0, Name: "soc", Level: 0, Inputs: 32, Outputs: 32, Bidirs: 8})
	for _, spec := range d281Specs {
		s.AddModule(&Module{
			ID:      spec.id,
			Name:    spec.name,
			Level:   1,
			Inputs:  spec.in,
			Outputs: spec.out,
			Bidirs:  spec.bid,
			Scan:    buildChains(spec.chains),
			Tests:   []Test{{ID: 1, Patterns: spec.patterns, ScanUse: len(spec.chains) > 0, TamUse: true}},
		})
	}
	return s
}

var d281Specs = []moduleSpec{
	{1, "cpu", 36, 20, 8, []chainSpec{{8, 120}}, 120},
	{2, "dma", 28, 16, 0, []chainSpec{{6, 90}}, 90},
	{3, "mac", 24, 24, 0, []chainSpec{{4, 110}}, 105},
	{4, "uart", 12, 10, 0, []chainSpec{{2, 80}}, 70},
	{5, "timer", 10, 8, 0, []chainSpec{{2, 60}}, 64},
	{6, "gpio", 18, 18, 4, nil, 220},
	{7, "bridge", 26, 22, 0, []chainSpec{{3, 100}}, 85},
	{8, "rom_bist", 8, 6, 0, nil, 500},
}
