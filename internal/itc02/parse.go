package itc02

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseError describes a syntax or semantic error in a .soc stream,
// including the line on which it occurred.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("itc02: line %d: %s", e.Line, e.Msg)
}

// Parse reads a SOC description in the format documented in the package
// comment. The result is validated before being returned.
func Parse(r io.Reader) (*SOC, error) {
	p := &parser{scanner: bufio.NewScanner(r)}
	p.scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	soc, err := p.parse()
	if err != nil {
		return nil, err
	}
	if err := soc.Validate(); err != nil {
		return nil, err
	}
	return soc, nil
}

// ParseString is Parse on a string.
func ParseString(s string) (*SOC, error) { return Parse(strings.NewReader(s)) }

type parser struct {
	scanner *bufio.Scanner
	line    int
	// pushback of one tokenized line
	pushed []string
	hasPsh bool
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next non-empty tokenized line, or nil at EOF.
func (p *parser) next() ([]string, error) {
	if p.hasPsh {
		p.hasPsh = false
		return p.pushed, nil
	}
	for p.scanner.Scan() {
		p.line++
		line := p.scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		return fields, nil
	}
	if err := p.scanner.Err(); err != nil {
		return nil, err
	}
	return nil, nil
}

func (p *parser) unread(fields []string) {
	p.pushed = fields
	p.hasPsh = true
}

func (p *parser) parse() (*SOC, error) {
	soc := &SOC{}
	declared := -1
	for {
		fields, err := p.next()
		if err != nil {
			return nil, err
		}
		if fields == nil {
			break
		}
		switch fields[0] {
		case "SocName":
			if len(fields) != 2 {
				return nil, p.errf("SocName wants one argument, got %d", len(fields)-1)
			}
			if soc.Name != "" {
				return nil, p.errf("duplicate SocName")
			}
			soc.Name = fields[1]
		case "TotalModules":
			n, err := p.intArg(fields, "TotalModules")
			if err != nil {
				return nil, err
			}
			declared = n
		case "Module":
			id, err := p.intArg(fields, "Module")
			if err != nil {
				return nil, err
			}
			m, err := p.parseModule(id)
			if err != nil {
				return nil, err
			}
			soc.Modules = append(soc.Modules, m)
		default:
			return nil, p.errf("unexpected keyword %q at top level", fields[0])
		}
	}
	if soc.Name == "" {
		return nil, p.errf("missing SocName")
	}
	if declared >= 0 && declared != len(soc.Modules) {
		return nil, p.errf("TotalModules %d does not match %d Module blocks", declared, len(soc.Modules))
	}
	return soc, nil
}

func (p *parser) intArg(fields []string, kw string) (int, error) {
	if len(fields) != 2 {
		return 0, p.errf("%s wants one integer argument, got %d arguments", kw, len(fields)-1)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, p.errf("%s: %q is not an integer", kw, fields[1])
	}
	return n, nil
}

func (p *parser) parseModule(id int) (*Module, error) {
	m := &Module{ID: id, Level: 1}
	scanDeclared := -1
	testsDeclared := -1
	for {
		fields, err := p.next()
		if err != nil {
			return nil, err
		}
		if fields == nil {
			return nil, p.errf("unexpected EOF inside Module %d", id)
		}
		switch fields[0] {
		case "EndModule":
			if scanDeclared >= 0 && scanDeclared != len(m.Scan) {
				return nil, p.errf("module %d: ScanChains %d does not match %d ScanChainLengths", id, scanDeclared, len(m.Scan))
			}
			if testsDeclared >= 0 && testsDeclared != len(m.Tests) {
				return nil, p.errf("module %d: TotalTests %d does not match %d Test blocks", id, testsDeclared, len(m.Tests))
			}
			return m, nil
		case "Name":
			if len(fields) != 2 {
				return nil, p.errf("Name wants one argument")
			}
			m.Name = fields[1]
		case "Level":
			if m.Level, err = p.intArg(fields, "Level"); err != nil {
				return nil, err
			}
		case "Inputs":
			if m.Inputs, err = p.intArg(fields, "Inputs"); err != nil {
				return nil, err
			}
		case "Outputs":
			if m.Outputs, err = p.intArg(fields, "Outputs"); err != nil {
				return nil, err
			}
		case "Bidirs":
			if m.Bidirs, err = p.intArg(fields, "Bidirs"); err != nil {
				return nil, err
			}
		case "ScanChains":
			if scanDeclared, err = p.intArg(fields, "ScanChains"); err != nil {
				return nil, err
			}
		case "ScanChainLengths":
			for _, f := range fields[1:] {
				l, err := strconv.Atoi(f)
				if err != nil {
					return nil, p.errf("ScanChainLengths: %q is not an integer", f)
				}
				m.Scan = append(m.Scan, l)
			}
		case "TotalTests":
			if testsDeclared, err = p.intArg(fields, "TotalTests"); err != nil {
				return nil, err
			}
		case "Test":
			tid, err := p.intArg(fields, "Test")
			if err != nil {
				return nil, err
			}
			t, err := p.parseTest(tid)
			if err != nil {
				return nil, err
			}
			m.Tests = append(m.Tests, t)
		default:
			return nil, p.errf("unexpected keyword %q inside Module %d", fields[0], id)
		}
	}
}

func (p *parser) parseTest(id int) (Test, error) {
	t := Test{ID: id, ScanUse: true, TamUse: true}
	for {
		fields, err := p.next()
		if err != nil {
			return t, err
		}
		if fields == nil {
			return t, p.errf("unexpected EOF inside Test %d", id)
		}
		switch fields[0] {
		case "EndTest":
			return t, nil
		case "Patterns":
			if t.Patterns, err = p.intArg(fields, "Patterns"); err != nil {
				return t, err
			}
		case "ScanUse":
			b, err := p.boolArg(fields, "ScanUse")
			if err != nil {
				return t, err
			}
			t.ScanUse = b
		case "TamUse":
			b, err := p.boolArg(fields, "TamUse")
			if err != nil {
				return t, err
			}
			t.TamUse = b
		default:
			return t, p.errf("unexpected keyword %q inside Test %d", fields[0], id)
		}
	}
}

func (p *parser) boolArg(fields []string, kw string) (bool, error) {
	n, err := p.intArg(fields, kw)
	if err != nil {
		return false, err
	}
	switch n {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, p.errf("%s wants 0 or 1, got %d", kw, n)
}
