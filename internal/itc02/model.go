package itc02

import (
	"fmt"
	"sort"
)

// SOC is a system-on-chip under test: a named collection of modules.
// Module 0 (if present) is the SOC-level module describing chip pins and
// carries no tests; it is stored like any other module but excluded from
// Cores.
type SOC struct {
	Name    string
	Modules []*Module
}

// Module is an embedded core (or the SOC-level module, ID 0).
type Module struct {
	ID      int
	Name    string
	Level   int   // hierarchy level; 0 is the SOC itself
	Inputs  int   // functional input terminals
	Outputs int   // functional output terminals
	Bidirs  int   // functional bidirectional terminals
	Scan    []int // internal scan chain lengths, flip-flops per chain
	Tests   []Test
}

// Test is one test of a module, applied through the module's wrapper.
type Test struct {
	ID       int
	Patterns int  // number of test patterns
	ScanUse  bool // patterns are shifted through scan chains
	TamUse   bool // test is delivered over the TAM
}

// NewSOC returns an empty SOC with the given name.
func NewSOC(name string) *SOC { return &SOC{Name: name} }

// AddModule appends m and returns it, for fluent construction.
func (s *SOC) AddModule(m *Module) *Module {
	s.Modules = append(s.Modules, m)
	return m
}

// Module returns the module with the given ID, or nil.
func (s *SOC) Module(id int) *Module {
	for _, m := range s.Modules {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// Cores returns the testable modules: every module except module 0 and
// modules with no tests.
func (s *SOC) Cores() []*Module {
	var cores []*Module
	for _, m := range s.Modules {
		if m.ID != 0 && len(m.Tests) > 0 {
			cores = append(cores, m)
		}
	}
	return cores
}

// Validate checks structural invariants: unique non-negative module IDs,
// non-negative terminal and pattern counts, and positive scan chain
// lengths. It returns the first violation found.
func (s *SOC) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("itc02: SOC has no name")
	}
	seen := make(map[int]bool, len(s.Modules))
	for _, m := range s.Modules {
		if m == nil {
			return fmt.Errorf("itc02: %s: nil module", s.Name)
		}
		if m.ID < 0 {
			return fmt.Errorf("itc02: %s: module %q has negative ID %d", s.Name, m.Name, m.ID)
		}
		if seen[m.ID] {
			return fmt.Errorf("itc02: %s: duplicate module ID %d", s.Name, m.ID)
		}
		seen[m.ID] = true
		if err := m.Validate(); err != nil {
			return fmt.Errorf("itc02: %s: %w", s.Name, err)
		}
	}
	return nil
}

// Validate checks the module's own invariants.
func (m *Module) Validate() error {
	if m.Inputs < 0 || m.Outputs < 0 || m.Bidirs < 0 {
		return fmt.Errorf("module %d (%s): negative terminal count", m.ID, m.Name)
	}
	for i, l := range m.Scan {
		if l <= 0 {
			return fmt.Errorf("module %d (%s): scan chain %d has non-positive length %d", m.ID, m.Name, i, l)
		}
	}
	for _, t := range m.Tests {
		if t.Patterns < 0 {
			return fmt.Errorf("module %d (%s): test %d has negative pattern count", m.ID, m.Name, t.ID)
		}
		if t.ScanUse && len(m.Scan) == 0 {
			return fmt.Errorf("module %d (%s): test %d uses scan but module has no scan chains", m.ID, m.Name, t.ID)
		}
	}
	return nil
}

// ScanBits returns the total number of scan flip-flops in the module.
func (m *Module) ScanBits() int {
	total := 0
	for _, l := range m.Scan {
		total += l
	}
	return total
}

// LongestScanChain returns the length of the longest internal scan chain,
// or 0 for combinational modules.
func (m *Module) LongestScanChain() int {
	longest := 0
	for _, l := range m.Scan {
		if l > longest {
			longest = l
		}
	}
	return longest
}

// Patterns returns the total pattern count across all tests of the module.
func (m *Module) Patterns() int {
	total := 0
	for _, t := range m.Tests {
		total += t.Patterns
	}
	return total
}

// TestDataVolume approximates the total number of scan-in bits the module
// consumes: (scan bits + input and bidir cells) per pattern. It is the
// quantity used to order cores by test size in scheduling heuristics.
func (m *Module) TestDataVolume() int64 {
	bitsPerPattern := int64(m.ScanBits() + m.Inputs + m.Bidirs)
	return bitsPerPattern * int64(m.Patterns())
}

// SortedScanDescending returns a copy of the scan chain lengths sorted in
// descending order, the canonical order for best-fit-decreasing wrapper
// design.
func (m *Module) SortedScanDescending() []int {
	out := make([]int, len(m.Scan))
	copy(out, m.Scan)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Clone returns a deep copy of the SOC.
func (s *SOC) Clone() *SOC {
	c := &SOC{Name: s.Name, Modules: make([]*Module, len(s.Modules))}
	for i, m := range s.Modules {
		c.Modules[i] = m.Clone()
	}
	return c
}

// Clone returns a deep copy of the module.
func (m *Module) Clone() *Module {
	c := *m
	c.Scan = append([]int(nil), m.Scan...)
	c.Tests = append([]Test(nil), m.Tests...)
	return &c
}

// String returns a one-line summary, e.g.
// "p93791: 33 modules, 32 cores, 553746 scan bits".
func (s *SOC) String() string {
	bits := 0
	for _, m := range s.Modules {
		bits += m.ScanBits()
	}
	return fmt.Sprintf("%s: %d modules, %d cores, %d scan bits", s.Name, len(s.Modules), len(s.Cores()), bits)
}
