package itc02

import (
	"strings"
	"testing"
	"testing/quick"
)

const toySOC = `
# a toy SOC
SocName toy
TotalModules 3

Module 0
  Name top
  Level 0
  Inputs 8
  Outputs 8
  Bidirs 0
  TotalTests 0
EndModule

Module 1
  Name filter
  Level 1
  Inputs 10
  Outputs 4
  Bidirs 2
  ScanChains 3
  ScanChainLengths 20 18 9
  TotalTests 2
  Test 1
    Patterns 120
    ScanUse 1
    TamUse 1
  EndTest
  Test 2
    Patterns 33
    ScanUse 0
    TamUse 1
  EndTest
EndModule

Module 2
  Name glue   # trailing comment
  Level 1
  Inputs 6
  Outputs 6
  Bidirs 0
  TotalTests 1
  Test 1
    Patterns 40
    ScanUse 0
    TamUse 1
  EndTest
EndModule
`

func TestParseToy(t *testing.T) {
	s, err := ParseString(toySOC)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if s.Name != "toy" {
		t.Errorf("Name = %q", s.Name)
	}
	if len(s.Modules) != 3 {
		t.Fatalf("modules = %d, want 3", len(s.Modules))
	}
	m := s.Module(1)
	if m.Name != "filter" || m.Inputs != 10 || m.Bidirs != 2 {
		t.Errorf("module 1 parsed wrong: %+v", m)
	}
	if len(m.Scan) != 3 || m.Scan[2] != 9 {
		t.Errorf("scan = %v", m.Scan)
	}
	if len(m.Tests) != 2 {
		t.Fatalf("tests = %d", len(m.Tests))
	}
	if m.Tests[1].ScanUse || !m.Tests[1].TamUse || m.Tests[1].Patterns != 33 {
		t.Errorf("test 2 parsed wrong: %+v", m.Tests[1])
	}
	if g := s.Module(2); g.Name != "glue" {
		t.Errorf("comment handling broke Name: %q", g.Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"empty", "", "missing SocName"},
		{"bad keyword", "SocName x\nBogus 3\n", "unexpected keyword"},
		{"bad int", "SocName x\nTotalModules three\n", "not an integer"},
		{"module eof", "SocName x\nModule 1\n  Inputs 3\n", "unexpected EOF"},
		{"test eof", "SocName x\nModule 1\n  Test 1\n", "unexpected EOF"},
		{"module count", "SocName x\nTotalModules 2\nModule 1\nEndModule\n", "does not match"},
		{"scan count", "SocName x\nModule 1\n  ScanChains 2\n  ScanChainLengths 5\nEndModule\n", "does not match"},
		{"test count", "SocName x\nModule 1\n  TotalTests 2\nEndModule\n", "does not match"},
		{"bool range", "SocName x\nModule 1\n  Test 1\n    ScanUse 2\n  EndTest\nEndModule\n", "wants 0 or 1"},
		{"dup socname", "SocName x\nSocName y\n", "duplicate SocName"},
		{"test kw", "SocName x\nModule 1\n  Test 1\n    Inputs 3\n  EndTest\nEndModule\n", "unexpected keyword"},
		{"scanlen int", "SocName x\nModule 1\n  ScanChainLengths 5 x\nEndModule\n", "not an integer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.in)
			if err == nil {
				t.Fatal("parse accepted bad input")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := ParseString("SocName x\nBogus 1\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2", pe.Line)
	}
}

// TestRoundTrip checks Write∘Parse is the identity on the embedded
// benchmark and on the toy SOC.
func TestRoundTrip(t *testing.T) {
	for _, orig := range []*SOC{P93791(), mustParse(t, toySOC)} {
		text := Format(orig)
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("reparse %s: %v", orig.Name, err)
		}
		if Format(back) != text {
			t.Errorf("%s: round trip not stable", orig.Name)
		}
	}
}

func mustParse(t *testing.T, s string) *SOC {
	t.Helper()
	soc, err := ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return soc
}

// Property: any structurally valid SOC survives a Write/Parse round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(nMod uint8, scanSeed uint16, patSeed uint16) bool {
		s := NewSOC("q")
		n := int(nMod%6) + 1
		for i := 1; i <= n; i++ {
			m := &Module{ID: i, Name: "m", Level: 1,
				Inputs: int(scanSeed % 37), Outputs: int(patSeed % 23)}
			for k := 0; k < int(scanSeed%4); k++ {
				m.Scan = append(m.Scan, 1+int(scanSeed%97)+k)
			}
			m.Tests = append(m.Tests, Test{
				ID: 1, Patterns: int(patSeed % 1000),
				ScanUse: len(m.Scan) > 0, TamUse: true,
			})
			s.AddModule(m)
		}
		back, err := ParseString(Format(s))
		if err != nil {
			return false
		}
		return Format(back) == Format(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
