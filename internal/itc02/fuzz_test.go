package itc02

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that anything it accepts
// survives a format/parse round trip. Run with -fuzz=FuzzParse for
// exploration; the seeds below run as regular tests.
func FuzzParse(f *testing.F) {
	f.Add(toySOC)
	f.Add(Format(P93791()))
	f.Add(Format(D281()))
	f.Add(Format(D695()))
	f.Add(Format(G1023()))
	f.Add(Format(T512505()))
	f.Add("SocName x\n")
	f.Add("SocName x\nModule 1\nEndModule\n")
	f.Add("SocName x\nTotalModules 0\n# nothing\n")
	f.Add("Module 1\n")
	f.Add("SocName x\nModule 1\n  ScanChainLengths 1 2 3\nEndModule\n")
	f.Add("SocName x\nModule 1\n  Test 1\n    Patterns 5\n  EndTest\nEndModule\n")
	f.Add(strings.Repeat("SocName x\n", 3))

	f.Fuzz(func(t *testing.T, input string) {
		soc, err := ParseString(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted SOCs must be valid and round-trip stable.
		if verr := soc.Validate(); verr != nil {
			t.Fatalf("parser accepted invalid SOC: %v", verr)
		}
		text := Format(soc)
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("rendered SOC does not reparse: %v\n%s", err, text)
		}
		if Format(back) != text {
			t.Fatal("format/parse round trip not stable")
		}
	})
}
