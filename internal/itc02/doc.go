// Package itc02 models ITC'02-style SOC test benchmarks.
//
// The ITC'02 SOC Test Benchmarks (Marinissen, Iyengar, Chakrabarty,
// ITC 2002) describe a system-on-chip as a set of modules. Each module
// has functional terminals (inputs, outputs, bidirectionals), internal
// scan chains, and one or more tests characterized by a pattern count.
// From these data a test wrapper and a test-access-mechanism (TAM)
// schedule can be constructed; that is done by the sibling packages
// wrapper and tam.
//
// The package provides:
//
//   - a data model (SOC, Module, Test) with validation and derived
//     quantities such as total scan bits and test data volume,
//   - a parser and writer for a line-oriented text format that follows
//     the structure of the original .soc files (see Format below),
//   - the embedded benchmark P93791, a 32-core digital SOC synthesized
//     to match the published aggregate characteristics of the ITC'02
//     p93791 circuit (the original files are not redistributable; see
//     DESIGN.md for the calibration targets).
//
// # Format
//
// The format is line oriented. '#' starts a comment that runs to the end
// of the line. Blank lines are ignored. A file contains a header followed
// by one block per module:
//
//	SocName p93791
//	TotalModules 33
//
//	Module 1
//	  Name core_a
//	  Level 1
//	  Inputs 109
//	  Outputs 32
//	  Bidirs 72
//	  ScanChains 46
//	  ScanChainLengths 168 168 167 ...
//	  TotalTests 1
//	  Test 1
//	    Patterns 409
//	    ScanUse 1
//	    TamUse 1
//	  EndTest
//	EndModule
//
// Module 0, when present, describes the SOC-level terminals and carries
// no tests. ScanChains/ScanChainLengths may be omitted for combinational
// modules. ScanUse and TamUse are retained for compatibility with the
// original benchmark semantics: a test with ScanUse 0 does not load the
// scan chains, and a test with TamUse 0 is applied through functional
// access rather than the TAM.
package itc02
