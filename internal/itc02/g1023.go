package itc02

// G1023 returns an embedded benchmark in the spirit of the ITC'02 g1023
// circuit: fourteen modest cores — one BIST-style patterns-only core and
// thirteen scan cores with one to six chains each. As with the other
// embedded benchmarks the module data is synthesized (see DESIGN.md §2),
// calibrated to g1023's published shape: no dominating giant, chain
// lengths under 150 bits, and a total volume between d695's and
// p93791's so mid-size scheduling behaviour (many comparable rectangles,
// no bottleneck job) is represented in the registry.
func G1023() *SOC {
	s := &SOC{Name: "g1023"}
	s.AddModule(&Module{ID: 0, Name: "soc", Level: 0, Inputs: 80, Outputs: 64, Bidirs: 16})
	for _, spec := range g1023Specs {
		s.AddModule(&Module{
			ID:      spec.id,
			Name:    spec.name,
			Level:   1,
			Inputs:  spec.in,
			Outputs: spec.out,
			Bidirs:  spec.bid,
			Scan:    buildChains(spec.chains),
			Tests:   []Test{{ID: 1, Patterns: spec.patterns, ScanUse: len(spec.chains) > 0, TamUse: true}},
		})
	}
	return s
}

var g1023Specs = []moduleSpec{
	{1, "g05", 10, 1, 0, nil, 1024},
	{2, "g12", 66, 33, 0, []chainSpec{{1, 89}}, 109},
	{3, "g15", 39, 20, 0, []chainSpec{{1, 52}}, 130},
	{4, "g18", 52, 37, 0, []chainSpec{{4, 60}}, 107},
	{5, "g20", 50, 30, 0, []chainSpec{{4, 68}}, 236},
	{6, "g25", 84, 36, 0, []chainSpec{{4, 78}}, 151},
	{7, "g30", 36, 23, 0, []chainSpec{{2, 77}}, 187},
	{8, "g32", 28, 17, 0, []chainSpec{{2, 60}}, 224},
	{9, "g40", 66, 44, 0, []chainSpec{{4, 99}}, 268},
	{10, "g44", 16, 11, 0, []chainSpec{{1, 40}}, 94},
	{11, "g50", 60, 34, 0, []chainSpec{{4, 112}}, 312},
	{12, "g60", 44, 26, 0, []chainSpec{{2, 90}}, 278},
	{13, "g72", 38, 38, 0, []chainSpec{{3, 104}}, 395},
	{14, "g80", 72, 50, 4, []chainSpec{{6, 130}}, 421},
}
