package itc02

// D695 returns an embedded benchmark in the spirit of the ITC'02 d695
// circuit: ten ISCAS-derived cores — two combinational, eight
// scan-based — below a SOC-level module. Like P93791 the module data is
// synthesized (the original ITC'02 distribution site is gone; see
// DESIGN.md §2), calibrated to the published aggregate shape of d695:
// small combinational cores up front, a body of scan cores whose chain
// counts range from one to thirty-two, and a total test-data volume
// three orders of magnitude below p93791's, so that packed schedules
// land in the tens of thousands of cycles at TAM width 32.
func D695() *SOC {
	s := &SOC{Name: "d695"}
	s.AddModule(&Module{ID: 0, Name: "soc", Level: 0, Inputs: 64, Outputs: 64, Bidirs: 16})
	for _, spec := range d695Specs {
		s.AddModule(&Module{
			ID:      spec.id,
			Name:    spec.name,
			Level:   1,
			Inputs:  spec.in,
			Outputs: spec.out,
			Bidirs:  spec.bid,
			Scan:    buildChains(spec.chains),
			Tests:   []Test{{ID: 1, Patterns: spec.patterns, ScanUse: len(spec.chains) > 0, TamUse: true}},
		})
	}
	return s
}

var d695Specs = []moduleSpec{
	// Combinational cores.
	{1, "c6288", 32, 32, 0, nil, 12},
	{2, "c7552", 207, 108, 0, nil, 73},
	// Scan cores, smallest to largest.
	{3, "s838", 35, 2, 0, []chainSpec{{1, 32}}, 75},
	{4, "s9234", 36, 39, 0, []chainSpec{{4, 54}}, 105},
	{5, "s38417", 28, 106, 0, []chainSpec{{32, 51}}, 68},
	{6, "s13207", 31, 121, 0, []chainSpec{{16, 41}}, 234},
	{7, "s15850", 14, 87, 0, []chainSpec{{16, 34}}, 95},
	{8, "s5378", 35, 49, 0, []chainSpec{{4, 46}}, 97},
	{9, "s35932", 35, 320, 0, []chainSpec{{32, 54}}, 12},
	{10, "s38584", 38, 304, 0, []chainSpec{{32, 45}}, 110},
}
