package itc02

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSOCBasics(t *testing.T) {
	s := NewSOC("toy")
	s.AddModule(&Module{ID: 0, Name: "top", Level: 0, Inputs: 4, Outputs: 4})
	s.AddModule(&Module{
		ID: 1, Name: "c1", Level: 1, Inputs: 3, Outputs: 2, Bidirs: 1,
		Scan:  []int{10, 8, 6},
		Tests: []Test{{ID: 1, Patterns: 100, ScanUse: true, TamUse: true}},
	})
	s.AddModule(&Module{
		ID: 2, Name: "c2", Level: 1, Inputs: 5, Outputs: 5,
		Tests: []Test{{ID: 1, Patterns: 50, TamUse: true}},
	})

	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := len(s.Cores()); got != 2 {
		t.Errorf("Cores() = %d, want 2 (module 0 excluded)", got)
	}
	m := s.Module(1)
	if m == nil {
		t.Fatal("Module(1) = nil")
	}
	if got := m.ScanBits(); got != 24 {
		t.Errorf("ScanBits = %d, want 24", got)
	}
	if got := m.LongestScanChain(); got != 10 {
		t.Errorf("LongestScanChain = %d, want 10", got)
	}
	if got := m.Patterns(); got != 100 {
		t.Errorf("Patterns = %d, want 100", got)
	}
	// (24 scan + 3 in + 1 bidir) * 100 patterns
	if got := m.TestDataVolume(); got != 2800 {
		t.Errorf("TestDataVolume = %d, want 2800", got)
	}
	if s.Module(99) != nil {
		t.Error("Module(99) should be nil")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		soc  *SOC
	}{
		{"no name", &SOC{}},
		{"negative id", &SOC{Name: "x", Modules: []*Module{{ID: -1}}}},
		{"duplicate id", &SOC{Name: "x", Modules: []*Module{{ID: 1}, {ID: 1}}}},
		{"negative terminals", &SOC{Name: "x", Modules: []*Module{{ID: 1, Inputs: -2}}}},
		{"zero-length chain", &SOC{Name: "x", Modules: []*Module{{ID: 1, Scan: []int{4, 0}}}}},
		{"negative patterns", &SOC{Name: "x", Modules: []*Module{{ID: 1, Tests: []Test{{Patterns: -1}}}}}},
		{"scan test without chains", &SOC{Name: "x", Modules: []*Module{{ID: 1, Tests: []Test{{Patterns: 1, ScanUse: true}}}}}},
		{"nil module", &SOC{Name: "x", Modules: []*Module{nil}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.soc.Validate(); err == nil {
				t.Error("Validate accepted invalid SOC")
			}
		})
	}
}

func TestSortedScanDescending(t *testing.T) {
	m := &Module{Scan: []int{3, 9, 1, 7}}
	got := m.SortedScanDescending()
	want := []int{9, 7, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedScanDescending = %v, want %v", got, want)
		}
	}
	// original untouched
	if m.Scan[0] != 3 {
		t.Error("SortedScanDescending mutated the module")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := P93791()
	c := s.Clone()
	c.Modules[1].Scan[0] = 99999
	c.Modules[1].Tests[0].Patterns = 7
	if s.Modules[1].Scan[0] == 99999 {
		t.Error("Clone shares scan slice")
	}
	if s.Modules[1].Tests[0].Patterns == 7 {
		t.Error("Clone shares tests slice")
	}
}

func TestP93791Shape(t *testing.T) {
	s := P93791()
	if err := s.Validate(); err != nil {
		t.Fatalf("embedded benchmark invalid: %v", err)
	}
	cores := s.Cores()
	if len(cores) != 32 {
		t.Fatalf("p93791 has %d cores, want 32", len(cores))
	}
	var volume int64
	scanCores := 0
	for _, m := range cores {
		volume += m.TestDataVolume()
		if len(m.Scan) > 0 {
			scanCores++
		}
	}
	// Calibration targets from DESIGN.md: total volume in the
	// 25M..32M bit-cycle band so W=32 packing lands near 0.9M cycles.
	if volume < 25e6 || volume > 32e6 {
		t.Errorf("total test data volume = %d, want within [25e6, 32e6]", volume)
	}
	if scanCores < 20 {
		t.Errorf("scan cores = %d, want >= 20", scanCores)
	}
	// Deterministic: two calls yield identical data.
	s2 := P93791()
	if Format(s) != Format(s2) {
		t.Error("P93791 is not deterministic")
	}
}

func TestP93791String(t *testing.T) {
	got := P93791().String()
	if !strings.Contains(got, "p93791") || !strings.Contains(got, "33 modules") {
		t.Errorf("String() = %q", got)
	}
}

func TestScanBitsNeverNegative(t *testing.T) {
	f := func(lengths []uint8) bool {
		m := &Module{}
		for _, l := range lengths {
			m.Scan = append(m.Scan, int(l)+1)
		}
		sum := 0
		for _, l := range m.Scan {
			sum += l
		}
		return m.ScanBits() == sum && m.LongestScanChain() <= sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
