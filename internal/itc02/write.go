package itc02

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Write renders the SOC in the package's text format. The output parses
// back to an equal SOC (see TestRoundTrip).
func Write(w io.Writer, s *SOC) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "SocName %s\n", s.Name)
	fmt.Fprintf(bw, "TotalModules %d\n", len(s.Modules))
	for _, m := range s.Modules {
		fmt.Fprintf(bw, "\nModule %d\n", m.ID)
		if m.Name != "" {
			fmt.Fprintf(bw, "  Name %s\n", m.Name)
		}
		fmt.Fprintf(bw, "  Level %d\n", m.Level)
		fmt.Fprintf(bw, "  Inputs %d\n", m.Inputs)
		fmt.Fprintf(bw, "  Outputs %d\n", m.Outputs)
		fmt.Fprintf(bw, "  Bidirs %d\n", m.Bidirs)
		if len(m.Scan) > 0 {
			fmt.Fprintf(bw, "  ScanChains %d\n", len(m.Scan))
			fmt.Fprintf(bw, "  ScanChainLengths")
			for _, l := range m.Scan {
				fmt.Fprintf(bw, " %d", l)
			}
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, "  TotalTests %d\n", len(m.Tests))
		for _, t := range m.Tests {
			fmt.Fprintf(bw, "  Test %d\n", t.ID)
			fmt.Fprintf(bw, "    Patterns %d\n", t.Patterns)
			fmt.Fprintf(bw, "    ScanUse %d\n", boolInt(t.ScanUse))
			fmt.Fprintf(bw, "    TamUse %d\n", boolInt(t.TamUse))
			fmt.Fprintf(bw, "  EndTest\n")
		}
		fmt.Fprintf(bw, "EndModule\n")
	}
	return bw.Flush()
}

// Format renders the SOC to a string.
func Format(s *SOC) string {
	var sb strings.Builder
	// strings.Builder never errors.
	_ = Write(&sb, s)
	return sb.String()
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
