// Package lint holds the repository's source-level hygiene checks,
// enforced by `go test ./internal/lint` (CI's "Doc lint" step alongside
// go vet). The only check today is doccheck_test.go: every exported
// identifier of the public mixsoc package, internal/core,
// internal/experiments and internal/service must carry a godoc
// comment, so the API surface the README points at — and the HTTP wire
// types the service exposes — stay self-describing.
package lint
