package bad

type Undocumented struct{}

func (Undocumented) Method() {}

func Exported() {}

const LooseConst = 1

var LooseVar = 2

// Documented is fine.
type Documented struct{}

// Grouped constants inherit the group comment.
const (
	GroupedConst = 3
)

var (
	TrailingVar = 4 // trailing comments count too
)

type unexported struct{}

func (unexported) AlsoFine() {}
