package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// checkedDirs are the packages whose exported surface must be fully
// documented: the public API, the planning core it re-exports, the
// experiment grid (the shard API is cross-machine surface), and the
// HTTP serving layer (its request/response types are wire surface).
// Relative to this package's directory.
var checkedDirs = []string{"../..", "../core", "../experiments", "../service"}

// TestExportedDocComments fails for every exported top-level identifier
// (type, function, method, const, var) in the checked packages that has
// no doc comment, and for a missing package comment. It is the
// comment-lint half of CI's vet step — gofmt-style zero-config: a
// finding is a failure, there is no suppression list.
func TestExportedDocComments(t *testing.T) {
	for _, dir := range checkedDirs {
		for _, finding := range lintDir(t, dir) {
			t.Error(finding)
		}
	}
}

// TestDocCheckCatchesOffenders turns the linter on a fixture full of
// undocumented exports, so a silently neutered check cannot pass.
func TestDocCheckCatchesOffenders(t *testing.T) {
	findings := lintDir(t, "testdata/bad")
	joined := strings.Join(findings, "\n")
	for _, want := range []string{
		"no package comment",
		"exported type Undocumented",
		"exported function Exported",
		"exported method Undocumented.Method",
		"exported const LooseConst",
		"exported var LooseVar",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("linter missed %q in:\n%s", want, joined)
		}
	}
	for _, notWant := range []string{"unexported", "Documented", "GroupedConst", "TrailingVar"} {
		if strings.Contains(joined, notWant) {
			t.Errorf("linter flagged %s, which is documented or unexported:\n%s", notWant, joined)
		}
	}
}

// lintDir parses one directory (non-recursive, tests excluded) and
// returns the doc findings for every package in it.
func lintDir(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	var findings []string
	for name, pkg := range pkgs {
		findings = append(findings, checkPackage(fset, dir, name, pkg)...)
	}
	return findings
}

func checkPackage(fset *token.FileSet, dir, name string, pkg *ast.Package) []string {
	var findings []string
	hasPackageDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPackageDoc = true
		}
	}
	if !hasPackageDoc {
		findings = append(findings, fmt.Sprintf("package %s (%s): no package comment in any file", name, dir))
	}

	report := func(pos token.Pos, kind, ident string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.Join(dir, filepath.Base(p.Filename)), p.Line, kind, ident))
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				kind := "function"
				ident := d.Name.Name
				if d.Recv != nil {
					recv := receiverName(d.Recv)
					// Methods of unexported types are not API surface.
					if recv != "" && !ast.IsExported(recv) {
						continue
					}
					kind = "method"
					ident = recv + "." + ident
				}
				report(d.Pos(), kind, ident)
			case *ast.GenDecl:
				checkGenDecl(report, d)
			}
		}
	}
	return findings
}

// checkGenDecl enforces docs on type, const and var declarations. A
// type must be documented on its own spec (or as the sole spec of a
// documented decl); const/var specs may inherit the group's doc
// comment or carry a trailing line comment, the idiom the stdlib uses
// for enum-style blocks.
func checkGenDecl(report func(pos token.Pos, kind, ident string), d *ast.GenDecl) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			s := spec.(*ast.TypeSpec)
			if !s.Name.IsExported() {
				continue
			}
			if s.Doc == nil && !(len(d.Specs) == 1 && d.Doc != nil) {
				report(s.Pos(), "type", s.Name.Name)
			}
		}
	case token.CONST, token.VAR:
		kind := "const"
		if d.Tok == token.VAR {
			kind = "var"
		}
		for _, spec := range d.Specs {
			s := spec.(*ast.ValueSpec)
			if s.Doc != nil || s.Comment != nil || d.Doc != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(s.Pos(), kind, n.Name)
				}
			}
		}
	}
}

// receiverName extracts the receiver's type name, unwrapping pointers
// and generic instantiations.
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	expr := recv.List[0].Type
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}
