package analog

import (
	"fmt"
	"math"

	"mixsoc/internal/partition"
)

// RoutingModel prices the routing overhead of a shared wrapper from the
// cores it serves. The paper defines r = (n−1)·k with k "a factor
// proportional to the cumulative distance of the n cores from each
// other", then uses a representative constant "without loss of
// generality"; its future work is "refining the cost measure based on
// the knowledge of core placement". PlacementRouting implements that
// refinement; UniformRouting is the representative-constant model.
type RoutingModel interface {
	// Overhead returns r for a wrapper serving the given cores; it must
	// return 0 for single-core wrappers.
	Overhead(cores []*Core) float64
}

// UniformRouting is the paper's representative model: r = (n−1)·Delta,
// with an optional whole-SOC override (see CostModel).
type UniformRouting struct {
	Delta float64
}

// Overhead implements RoutingModel.
func (u UniformRouting) Overhead(cores []*Core) float64 {
	if len(cores) <= 1 {
		return 0
	}
	return float64(len(cores)-1) * u.Delta
}

// Point is a core location on the floorplan, in arbitrary consistent
// units (e.g. millimetres).
type Point struct{ X, Y float64 }

// PlacementRouting prices routing from actual core placement:
//
//	r = Scale · Σ pairwise distances between the wrapper's cores
//
// normalized by Diameter (the chip's reference length), so a pair of
// adjacent cores costs nearly nothing and a wrapper strung across the
// die approaches Scale per unit pair. Cores without a position fall
// back to Fallback (or a zero-overhead guess if nil).
type PlacementRouting struct {
	Positions map[string]Point // by core name
	Diameter  float64          // reference length; must be > 0
	Scale     float64          // overhead per normalized distance unit
	Fallback  RoutingModel     // used when any core has no position
}

// Overhead implements RoutingModel.
func (p PlacementRouting) Overhead(cores []*Core) float64 {
	if len(cores) <= 1 {
		return 0
	}
	if p.Diameter <= 0 {
		return math.Inf(1) // misconfigured; make it conspicuous
	}
	var sum float64
	for i := 0; i < len(cores); i++ {
		pi, ok := p.Positions[cores[i].Name]
		if !ok {
			return p.fallback(cores)
		}
		for j := i + 1; j < len(cores); j++ {
			pj, ok := p.Positions[cores[j].Name]
			if !ok {
				return p.fallback(cores)
			}
			sum += math.Hypot(pi.X-pj.X, pi.Y-pj.Y)
		}
	}
	return p.Scale * sum / p.Diameter
}

func (p PlacementRouting) fallback(cores []*Core) float64 {
	if p.Fallback != nil {
		return p.Fallback.Overhead(cores)
	}
	return 0
}

// Validate checks the placement model's configuration.
func (p PlacementRouting) Validate() error {
	if p.Diameter <= 0 {
		return fmt.Errorf("analog: placement routing needs a positive diameter, got %v", p.Diameter)
	}
	if p.Scale < 0 {
		return fmt.Errorf("analog: negative routing scale %v", p.Scale)
	}
	return nil
}

// AreaOverheadPercentWithRouting computes C_A like
// CostModel.AreaOverheadPercent but with an explicit routing model in
// place of the (n−1)·δ rule, enabling placement-aware planning. The
// AllShareRoutingFactor boundary override does not apply — the routing
// model itself prices large groups. Setting CostModel.Routing directly
// is equivalent and also reaches the planner.
func (cm CostModel) AreaOverheadPercentWithRouting(cores []*Core, p partition.Partition, routing RoutingModel) (float64, error) {
	cm.Routing = routing
	return cm.AreaOverheadPercent(cores, p)
}
