package analog

import (
	"errors"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mixsoc/internal/partition"
)

func TestPaperCoresValid(t *testing.T) {
	cores := PaperCores()
	if len(cores) != 5 {
		t.Fatalf("got %d cores, want 5", len(cores))
	}
	for _, c := range cores {
		if err := c.Validate(); err != nil {
			t.Errorf("core %s: %v", c.Name, err)
		}
	}
}

func TestPaperTestTimes(t *testing.T) {
	cores := PaperCores()
	want := []int64{PaperCyclesIQ, PaperCyclesIQ, PaperCyclesCODEC, PaperCyclesDown, PaperCyclesAmp}
	for i, c := range cores {
		if got := c.TotalCycles(); got != want[i] {
			t.Errorf("core %s: TotalCycles = %d, want %d", c.Name, got, want[i])
		}
	}
	if PaperCyclesTotal != 636113 {
		t.Errorf("total = %d, want 636113 (sum of Table 2)", PaperCyclesTotal)
	}
}

func TestPaperRequirements(t *testing.T) {
	cores := PaperCores()
	cases := []struct {
		idx   int
		width int
		fs    Hertz
		res   int
	}{
		{0, 4, 15 * MHz, 8},    // A
		{2, 1, 2.46 * MHz, 12}, // C
		{3, 10, 78 * MHz, 8},   // D
		{4, 5, 69 * MHz, 8},    // E
	}
	for _, tc := range cases {
		r := cores[tc.idx].Requirements()
		if r.TAMWidth != tc.width || r.Fsample != tc.fs || r.Resolution != tc.res {
			t.Errorf("core %s: requirements %+v, want width=%d fs=%v res=%d",
				cores[tc.idx].Name, r, tc.width, tc.fs, tc.res)
		}
	}
	merged := Merge(cores)
	if merged.TAMWidth != 10 || merged.Fsample != 78*MHz || merged.Resolution != 12 {
		t.Errorf("merged requirements = %+v", merged)
	}
}

func TestUndersampledTests(t *testing.T) {
	cores := PaperCores()
	d := cores[3]
	var under int
	for i := range d.Tests {
		if d.Tests[i].Undersampled() {
			under++
		}
	}
	// G and DR at 26 MHz in / 26 MHz fs are undersampled.
	if under != 2 {
		t.Errorf("core D undersampled tests = %d, want 2", under)
	}
}

func TestClasses(t *testing.T) {
	cores := PaperCores()
	got := Classes(cores)
	want := []int{0, 0, 1, 2, 3} // A and B identical
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Classes = %v, want %v", got, want)
		}
	}
}

// combosByName builds the partition for a set of shared groups given as
// strings of core letters, e.g. "AC" or "ABE|CD"; remaining cores are
// singletons.
func combosByName(t *testing.T, spec string) partition.Partition {
	t.Helper()
	idx := map[byte]int{'A': 0, 'B': 1, 'C': 2, 'D': 3, 'E': 4}
	used := map[int]bool{}
	var p partition.Partition
	if spec != "" {
		for _, g := range strings.Split(spec, "|") {
			var grp []int
			for i := 0; i < len(g); i++ {
				n, ok := idx[g[i]]
				if !ok {
					t.Fatalf("bad spec %q", spec)
				}
				grp = append(grp, n)
				used[n] = true
			}
			p = append(p, grp)
		}
	}
	for i := 0; i < 5; i++ {
		if !used[i] {
			p = append(p, []int{i})
		}
	}
	return p
}

// TestTable1LowerBounds verifies the normalized LTB column of Table 1
// for every combination the paper prints. These values are fully
// determined by Table 2 and must match to the printed precision
// (the paper truncates to one decimal).
func TestTable1LowerBounds(t *testing.T) {
	cores := PaperCores()
	cases := []struct {
		spec string
		want float64
	}{
		{"AC", 68.5}, {"CD", 56.0}, {"CE", 48.3}, {"AB", 42.7},
		{"AD", 30.2}, {"AE", 22.6}, {"DE", 10.1},
		{"ABC", 89.8}, {"ACD", 77.3}, {"ACE", 69.7}, {"ABD", 51.6},
		{"CDE", 57.2}, {"ABE", 43.9}, {"ADE", 31.4},
		{"ABCD", 98.7}, {"ABCE", 91.1}, {"ACDE", 78.6}, {"ABDE", 52.8},
		{"ABC|DE", 89.8}, {"ACD|BE", 77.3}, {"ACE|BD", 69.7},
		{"ADE|BC", 68.5}, {"CDE|AB", 57.2}, {"ABE|CD", 56.0},
		{"ABD|CE", 51.6},
		{"ABCDE", 100.0},
	}
	for _, tc := range cases {
		p := combosByName(t, tc.spec)
		got, err := NormalizedLTB(cores, p)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		// Paper prints one decimal; allow for truncation vs rounding.
		if math.Abs(got-tc.want) > 0.11 {
			t.Errorf("LTB(%s) = %.2f, want %.1f", tc.spec, got, tc.want)
		}
	}
}

// TestPaperCostModelMatchesTable1CA verifies the calibration discovered
// in DESIGN.md: under unit wrapper areas, max-member pricing and
// δ = 0.15, equation (1) reproduces every C_A value that survives in
// the paper's text exactly.
func TestPaperCostModelMatchesTable1CA(t *testing.T) {
	cores := PaperCores()
	cm := PaperCostModel()
	cases := []struct {
		spec string
		want float64
	}{
		{"AC", 83.0},   // (1.15 + 3)/5
		{"ABC", 66.0},  // (1.30 + 2)/5
		{"ABCE", 49.0}, // (1.45 + 1)/5
		{"", 100.0},    // no sharing
	}
	for _, tc := range cases {
		got, err := cm.AreaOverheadPercent(cores, combosByName(t, tc.spec))
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("C_A(%s) = %v, want exactly %v", tc.spec, got, tc.want)
		}
	}
	// The all-share configuration pays whole-chip routing (k is
	// "proportional to the cumulative distance of the cores"), which the
	// paper prices at exactly the no-sharing level.
	got, err := cm.AreaOverheadPercent(cores, combosByName(t, "ABCDE"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100.0) > 1e-9 {
		t.Errorf("C_A(all-share) = %v, want 100 (whole-chip routing)", got)
	}
	// Without the boundary factor the uniform model yields
	// (1+4·0.15)/5 = 32.
	uniform := cm
	uniform.AllShareRoutingFactor = 0
	got, err = uniform.AreaOverheadPercent(cores, combosByName(t, "ABCDE"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-32.0) > 1e-9 {
		t.Errorf("uniform C_A(all-share) = %v, want 32", got)
	}
}

func TestLowerBoundCycles(t *testing.T) {
	cores := PaperCores()
	p := combosByName(t, "AC")
	lb, err := LowerBoundCycles(cores, p)
	if err != nil {
		t.Fatal(err)
	}
	if want := PaperCyclesIQ + PaperCyclesCODEC; lb != want {
		t.Errorf("LTB cycles = %d, want %d", lb, want)
	}
	// No sharing: no serialization pressure at all (see Table 1 note).
	lb, err = LowerBoundCycles(cores, combosByName(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if lb != 0 {
		t.Errorf("no-share LTB = %d, want 0", lb)
	}
}

func TestAreaOverheadBasics(t *testing.T) {
	cores := PaperCores()
	cm := DefaultCostModel()

	noShare, err := cm.AreaOverheadPercent(cores, combosByName(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(noShare-100) > 1e-9 {
		t.Errorf("no-share C_A = %v, want exactly 100", noShare)
	}

	// Sharing a pair of identical cores halves their wrapper area
	// (plus routing), so C_A must drop below 100.
	ab, err := cm.AreaOverheadPercent(cores, combosByName(t, "AB"))
	if err != nil {
		t.Fatal(err)
	}
	if ab >= 100 || ab <= 0 {
		t.Errorf("C_A({A,B}) = %v, want in (0,100)", ab)
	}

	// More sharing among compatible cores must not increase cost under
	// the max-member rule.
	cmMax := cm
	cmMax.Rule = MaxMemberArea
	abMax, err := cmMax.AreaOverheadPercent(cores, combosByName(t, "AB"))
	if err != nil {
		t.Fatal(err)
	}
	abeMax, err := cmMax.AreaOverheadPercent(cores, combosByName(t, "ABE"))
	if err != nil {
		t.Fatal(err)
	}
	if abeMax >= abMax {
		t.Errorf("max-member C_A({A,B,E})=%v should beat C_A({A,B})=%v", abeMax, abMax)
	}
}

func TestAreaOverheadOrderInvariant(t *testing.T) {
	cores := PaperCores()
	cm := DefaultCostModel()
	p1 := partition.Partition{{0, 1, 4}, {2, 3}}
	p2 := partition.Partition{{2, 3}, {0, 1, 4}}
	a1, err1 := cm.AreaOverheadPercent(cores, p1)
	a2, err2 := cm.AreaOverheadPercent(cores, p2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a1 != a2 {
		t.Errorf("C_A depends on group order: %v vs %v", a1, a2)
	}
}

func TestPartitionValidation(t *testing.T) {
	cores := PaperCores()
	cm := DefaultCostModel()
	bad := []partition.Partition{
		{{0, 1}},               // not covering
		{{0, 1, 2, 3, 4}, {0}}, // repeats
		{{0, 1, 2, 3, 9}},      // out of range
	}
	for _, p := range bad {
		if _, err := cm.AreaOverheadPercent(cores, p); err == nil {
			t.Errorf("accepted bad partition %v", p)
		}
		if _, err := LowerBoundCycles(cores, p); err == nil {
			t.Errorf("LowerBoundCycles accepted bad partition %v", p)
		}
	}
}

func TestSpeedResolutionRule(t *testing.T) {
	cores := PaperCores()
	rule := SpeedResolutionRule(20*MHz, 10)
	// C (12-bit, slow) with D (fast, 8-bit) merges into a >10-bit,
	// >20 MHz wrapper: infeasible.
	if err := rule([]*Core{cores[2], cores[3]}); err == nil {
		t.Error("C+D should be infeasible under the rule")
	}
	// A and B: fine.
	if err := rule([]*Core{cores[0], cores[1]}); err != nil {
		t.Errorf("A+B should be feasible: %v", err)
	}
	// A single core exceeding both thresholds is allowed (nothing new).
	x := &Core{Name: "X", Tests: []Test{{Name: "t", Fsample: 50 * MHz, Cycles: 1, TAMWidth: 1, Resolution: 12}}}
	if err := rule([]*Core{x, cores[0]}); err != nil {
		t.Errorf("group with one already-extreme core should pass: %v", err)
	}

	cm := DefaultCostModel()
	cm.Feasible = rule
	if _, err := cm.AreaOverheadPercent(cores, combosByName(t, "CD")); err == nil {
		t.Error("cost model ignored feasibility rule")
	}
}

// mergeTwoGroups coarsens a partition by merging groups ga and gb.
func mergeTwoGroups(p partition.Partition, ga, gb int) partition.Partition {
	var out partition.Partition
	merged := append(append([]int(nil), p[ga]...), p[gb]...)
	sort.Ints(merged)
	out = append(out, merged)
	for i, g := range p {
		if i != ga && i != gb {
			out = append(out, append([]int(nil), g...))
		}
	}
	return out
}

// TestLTBMonotoneUnderCoarsening: merging any two wrapper groups can
// only increase (or keep) the sharing-induced lower bound — more
// serialization never helps.
func TestLTBMonotoneUnderCoarsening(t *testing.T) {
	cores := PaperCores()
	f := func(seed uint16) bool {
		parts := partition.All(5)
		p := parts[int(seed)%len(parts)]
		if len(p) < 2 {
			return true
		}
		ga := int(seed>>4) % len(p)
		gb := (ga + 1 + int(seed>>8)%(len(p)-1)) % len(p)
		if ga == gb {
			return true
		}
		before, err := LowerBoundCycles(cores, p)
		if err != nil {
			return false
		}
		after, err := LowerBoundCycles(cores, mergeTwoGroups(p, ga, gb))
		if err != nil {
			return false
		}
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCAMonotoneWithoutRouting: with zero routing overhead and
// max-member pricing, merging groups can only save area.
func TestCAMonotoneWithoutRouting(t *testing.T) {
	cores := PaperCores()
	cm := PaperCostModel()
	cm.RoutingFactor = 0
	cm.AllShareRoutingFactor = 0
	f := func(seed uint16) bool {
		parts := partition.All(5)
		p := parts[int(seed)%len(parts)]
		if len(p) < 2 {
			return true
		}
		ga := int(seed>>4) % len(p)
		gb := (ga + 1 + int(seed>>8)%(len(p)-1)) % len(p)
		if ga == gb {
			return true
		}
		before, err := cm.AreaOverheadPercent(cores, p)
		if err != nil {
			return false
		}
		after, err := cm.AreaOverheadPercent(cores, mergeTwoGroups(p, ga, gb))
		if err != nil {
			return false
		}
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFeasibilityMethod(t *testing.T) {
	cores := PaperCores()
	cm := DefaultCostModel()
	if err := cm.Feasibility(cores, combosByName(t, "CD")); err != nil {
		t.Errorf("no rule set but Feasibility failed: %v", err)
	}
	cm.Feasible = SpeedResolutionRule(20*MHz, 10)
	err := cm.Feasibility(cores, combosByName(t, "CD"))
	if err == nil {
		t.Fatal("C+D should be infeasible")
	}
	if !errorsIs(err, ErrInfeasible) {
		t.Errorf("error %v is not ErrInfeasible", err)
	}
	if err := cm.Feasibility(cores, combosByName(t, "AB")); err != nil {
		t.Errorf("A+B should be feasible: %v", err)
	}
	if err := cm.Feasibility(cores, partition.Partition{{0}}); err == nil {
		t.Error("bad partition accepted")
	}
}

func errorsIs(err, target error) bool { return errors.Is(err, target) }

func TestConverterInventories(t *testing.T) {
	// Section 5: "an 8-bit flash architecture typically requires 256
	// comparators. In contrast, the modular approach needs only 32".
	mod, err := ModularInventory(8)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Comparators != 32 {
		t.Errorf("modular 8-bit comparators = %d, want 32", mod.Comparators)
	}
	flash, err := FlashInventory(8)
	if err != nil {
		t.Fatal(err)
	}
	if flash.Comparators != 256 {
		t.Errorf("flash 8-bit comparators = %d, want 256", flash.Comparators)
	}
	// "the modular approach reduces the number of resistors used by a
	// factor of 8": 256 vs 32 per DAC (we track 3·2^(n/2) across both
	// converters, keeping the same 8x per-DAC ratio: 2^n / 2·2^(n/2) = 8
	// for n = 8).
	if flash.Resistors/(mod.Resistors/3*2) != 8/2*1 { // 256 / 64
		// Direct check of the paper's ratio on the DAC alone:
	}
	if 256/(2*16) != 8 {
		t.Error("modular DAC resistor reduction is not 8x")
	}
	if _, err := ModularInventory(7); err == nil {
		t.Error("odd resolution accepted")
	}
	if _, err := FlashInventory(0); err == nil {
		t.Error("zero resolution accepted")
	}
}

func TestPhysicalModelMonotone(t *testing.T) {
	pm := DefaultPhysicalModel()
	base := Requirements{Resolution: 8, Fsample: 2 * MHz, TAMWidth: 2}
	a0 := pm.WrapperArea(base)
	for _, bigger := range []Requirements{
		{Resolution: 10, Fsample: 2 * MHz, TAMWidth: 2},
		{Resolution: 8, Fsample: 50 * MHz, TAMWidth: 2},
		{Resolution: 8, Fsample: 2 * MHz, TAMWidth: 12},
	} {
		if a := pm.WrapperArea(bigger); a <= a0 {
			t.Errorf("area not monotone: %+v -> %v vs base %v", bigger, a, a0)
		}
	}
}

func TestAreaTableLookup(t *testing.T) {
	table := AreaTable{Entries: []AreaEntry{
		{Req: Requirements{Resolution: 8, Fsample: 20 * MHz, TAMWidth: 4}, Area: 10},
		{Req: Requirements{Resolution: 12, Fsample: 80 * MHz, TAMWidth: 10}, Area: 40},
	}}
	got := table.WrapperArea(Requirements{Resolution: 8, Fsample: 10 * MHz, TAMWidth: 2})
	if got != 10 {
		t.Errorf("lookup = %v, want 10 (cheapest covering entry)", got)
	}
	got = table.WrapperArea(Requirements{Resolution: 10, Fsample: 10 * MHz, TAMWidth: 2})
	if got != 40 {
		t.Errorf("lookup = %v, want 40", got)
	}
	// No covering entry: falls back to the physical model (non-zero).
	got = table.WrapperArea(Requirements{Resolution: 16, Fsample: 200 * MHz, TAMWidth: 32})
	if got <= 0 {
		t.Errorf("fallback = %v, want > 0", got)
	}
}

func TestHertzString(t *testing.T) {
	cases := []struct {
		f    Hertz
		want string
	}{
		{0, "DC"}, {10 * KHz, "10kHz"}, {1.5 * MHz, "1.5MHz"},
		{78 * MHz, "78MHz"}, {640 * KHz, "640kHz"}, {500, "500Hz"},
	}
	for _, tc := range cases {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("Hertz(%v).String() = %q, want %q", float64(tc.f), got, tc.want)
		}
	}
}

func TestTestValidate(t *testing.T) {
	good := Test{Name: "t", FinLow: KHz, FinHigh: 2 * KHz, Fsample: 10 * KHz, Cycles: 10, TAMWidth: 1, Resolution: 8}
	if err := good.Validate(); err != nil {
		t.Errorf("good test rejected: %v", err)
	}
	bad := []Test{
		{},
		{Name: "t", Cycles: 0, TAMWidth: 1, Resolution: 8, Fsample: KHz},
		{Name: "t", Cycles: 1, TAMWidth: 0, Resolution: 8, Fsample: KHz},
		{Name: "t", Cycles: 1, TAMWidth: 1, Resolution: 0, Fsample: KHz},
		{Name: "t", Cycles: 1, TAMWidth: 1, Resolution: 30, Fsample: KHz},
		{Name: "t", Cycles: 1, TAMWidth: 1, Resolution: 8, Fsample: 0},
		{Name: "t", FinLow: 2 * KHz, FinHigh: KHz, Cycles: 1, TAMWidth: 1, Resolution: 8, Fsample: KHz},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad test %d accepted", i)
		}
	}
	empty := &Core{Name: "X"}
	if err := empty.Validate(); err == nil {
		t.Error("core without tests accepted")
	}
	unnamed := &Core{Tests: []Test{good}}
	if err := unnamed.Validate(); err == nil {
		t.Error("unnamed core accepted")
	}
}

func BenchmarkAreaOverhead26Combos(b *testing.B) {
	cores := PaperCores()
	cm := DefaultCostModel()
	combos := partition.Enumerate(5, Classes(cores), partition.PaperPolicy)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range combos {
			if _, err := cm.AreaOverheadPercent(cores, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}
