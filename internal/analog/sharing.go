package analog

import (
	"errors"
	"fmt"

	"mixsoc/internal/partition"
)

// ErrInfeasible marks sharing configurations rejected by a CostModel's
// feasibility rule (e.g. SpeedResolutionRule). Planners treat such
// configurations as non-candidates rather than as failures; test with
// errors.Is.
var ErrInfeasible = errors.New("analog: infeasible wrapper sharing")

// CostModel computes the area-overhead cost C_A of equation (1) and the
// analog test-time lower bound LTB for wrapper-sharing configurations.
// The zero value is not useful; use DefaultCostModel or fill every field.
type CostModel struct {
	// RoutingFactor is δ: a wrapper serving n cores pays a routing
	// overhead r = (n-1)·δ of its own area ("a factor proportional to the
	// cumulative distance of the n cores from each other"; the paper uses
	// a representative constant). Wrappers serving one core pay none.
	RoutingFactor float64
	// AllShareRoutingFactor, when positive, replaces RoutingFactor for a
	// wrapper that serves every core of the SOC: such a wrapper must be
	// routed across the whole chip, and the paper prices that boundary
	// case at C_A = 100 (Table 1's all-share row), i.e. an effective
	// δ of 1.0 — sharing one wrapper among all cores buys no area.
	AllShareRoutingFactor float64
	// Routing, when non-nil, replaces the (n−1)·δ rule (and the
	// all-share override) entirely — e.g. PlacementRouting for
	// floorplan-aware planning, the paper's stated future work.
	Routing RoutingModel
	// Area prices a wrapper from its requirements.
	Area AreaModel
	// Rule selects how shared wrappers are priced (see SharedAreaRule).
	Rule SharedAreaRule
	// Feasible, if non-nil, rejects sharing groups (e.g. the paper's
	// high-speed/high-resolution exclusion). Nil allows everything.
	Feasible func(cores []*Core) error
}

// DefaultRoutingFactor is the representative δ. The value 0.15 is
// reverse-engineered from the paper's published C_A values, which it
// reproduces exactly under PaperCostModel (see UnitAreaModel).
const DefaultRoutingFactor = 0.15

// DefaultCostModel is the physically detailed configuration: component
// -count area model, merged-requirements pricing for shared wrappers,
// δ = 0.15, everything feasible. Under this model sharing cores with
// conflicting requirements (e.g. the high-resolution CODEC with the
// wide, fast down-converter) can exceed the no-sharing cost, which the
// paper's feasibility caveat anticipates.
func DefaultCostModel() CostModel {
	return CostModel{
		RoutingFactor: DefaultRoutingFactor,
		Area:          DefaultPhysicalModel(),
		Rule:          MergedRequirements,
	}
}

// PaperCostModel is the calibration that reproduces the paper's Table 1
// C_A column exactly: every wrapper has unit area, shared wrappers are
// priced at the maximum member area (the literal a_max of equation (1)),
// the routing factor is δ = 0.15, and the one wrapper-for-everything
// configuration pays whole-chip routing (δ = 1.0, so C_A = 100). The
// experiments of Tables 1 and 4 use this model; DefaultCostModel is the
// physically detailed alternative.
func PaperCostModel() CostModel {
	return CostModel{
		RoutingFactor:         DefaultRoutingFactor,
		AllShareRoutingFactor: 1.0,
		Area:                  UnitAreaModel{},
		Rule:                  MaxMemberArea,
	}
}

// RoutingOverhead returns r for a wrapper serving n cores.
func (cm CostModel) RoutingOverhead(n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n-1) * cm.RoutingFactor
}

// groupArea prices the wrapper for one sharing group (excluding routing).
func (cm CostModel) groupArea(cores []*Core) float64 {
	switch cm.Rule {
	case MaxMemberArea:
		maxA := 0.0
		for _, c := range cores {
			if a := cm.Area.WrapperArea(c.Requirements()); a > maxA {
				maxA = a
			}
		}
		return maxA
	default: // MergedRequirements
		return cm.Area.WrapperArea(Merge(cores))
	}
}

// AreaOverheadPercent computes C_A for the sharing configuration p over
// the given cores: 100 · Σ_j (1+r_j)·a_j / Σ_i a_i, where a_j is the
// area of wrapper j and the denominator is the no-sharing total.
// The no-sharing configuration therefore scores exactly 100, and the
// paper advises discarding configurations that score above 100.
func (cm CostModel) AreaOverheadPercent(cores []*Core, p partition.Partition) (float64, error) {
	if err := checkPartition(cores, p); err != nil {
		return 0, err
	}
	denominator := 0.0
	for _, c := range cores {
		denominator += cm.Area.WrapperArea(c.Requirements())
	}
	if denominator == 0 {
		return 0, fmt.Errorf("analog: zero total wrapper area")
	}
	numerator := 0.0
	for _, g := range p {
		members := pick(cores, g)
		if cm.Feasible != nil && len(members) > 1 {
			if err := cm.Feasible(members); err != nil {
				return 0, fmt.Errorf("%w: %v", ErrInfeasible, err)
			}
		}
		var routing float64
		if cm.Routing != nil {
			routing = cm.Routing.Overhead(members)
		} else {
			routing = cm.RoutingOverhead(len(g))
			if len(g) == len(cores) && len(g) > 1 && cm.AllShareRoutingFactor > 0 {
				routing = float64(len(g)-1) * cm.AllShareRoutingFactor
			}
		}
		numerator += (1 + routing) * cm.groupArea(members)
	}
	return 100 * numerator / denominator, nil
}

// Feasibility checks the configuration against the model's rule without
// pricing it. It returns nil when no rule is set.
func (cm CostModel) Feasibility(cores []*Core, p partition.Partition) error {
	if cm.Feasible == nil {
		return nil
	}
	if err := checkPartition(cores, p); err != nil {
		return err
	}
	for _, g := range p {
		if len(g) < 2 {
			continue
		}
		if err := cm.Feasible(pick(cores, g)); err != nil {
			return fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
	}
	return nil
}

// LowerBoundCycles returns LTB: the sharing-induced lower bound on the
// time to finish the analog cores under configuration p. Cores sharing a
// wrapper are serialized, so each shared wrapper is busy for the sum of
// its cores' test times; the bound is the busiest shared wrapper.
//
// Singleton wrappers are excluded, matching Table 1 of the paper (e.g.
// {A,B} scores 42.7 even though singleton core C alone takes longer):
// an unshared core adds no sharing-induced constraint — the TAM
// scheduler may overlap it freely with everything else.
// The no-sharing configuration therefore scores 0.
func LowerBoundCycles(cores []*Core, p partition.Partition) (int64, error) {
	if err := checkPartition(cores, p); err != nil {
		return 0, err
	}
	var bound int64
	for _, g := range p {
		if len(g) < 2 {
			continue
		}
		var usage int64
		for _, i := range g {
			usage += cores[i].TotalCycles()
		}
		if usage > bound {
			bound = usage
		}
	}
	return bound, nil
}

// NormalizedLTB returns LTB scaled to 100 at the all-share configuration
// (whose bound is the sum of every core's test time), the normalization
// of Table 1.
func NormalizedLTB(cores []*Core, p partition.Partition) (float64, error) {
	lb, err := LowerBoundCycles(cores, p)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, c := range cores {
		total += c.TotalCycles()
	}
	if total == 0 {
		return 0, fmt.Errorf("analog: cores have zero total test time")
	}
	return 100 * float64(lb) / float64(total), nil
}

// SpeedResolutionRule returns a feasibility predicate implementing the
// paper's caveat that "a module that requires high-speed and
// low-resolution data converters cannot share its wrapper with a module
// that requires high-resolution and low-speed data converters": a group
// is rejected when the merged requirements simultaneously exceed both
// thresholds while no single member does.
func SpeedResolutionRule(maxFs Hertz, maxRes int) func([]*Core) error {
	return func(cores []*Core) error {
		merged := Merge(cores)
		if merged.Fsample <= maxFs || merged.Resolution <= maxRes {
			return nil
		}
		for _, c := range cores {
			r := c.Requirements()
			if r.Fsample > maxFs && r.Resolution > maxRes {
				// One member alone already needs both; the group adds
				// nothing infeasible.
				return nil
			}
		}
		return fmt.Errorf("merged wrapper needs %d bits at %v: high-speed and high-resolution cores cannot share", merged.Resolution, merged.Fsample)
	}
}

func checkPartition(cores []*Core, p partition.Partition) error {
	if p.N() != len(cores) {
		return fmt.Errorf("analog: partition covers %d items, have %d cores", p.N(), len(cores))
	}
	seen := make([]bool, len(cores))
	for _, g := range p {
		for _, i := range g {
			if i < 0 || i >= len(cores) {
				return fmt.Errorf("analog: partition references core %d of %d", i, len(cores))
			}
			if seen[i] {
				return fmt.Errorf("analog: partition repeats core %d", i)
			}
			seen[i] = true
		}
	}
	return nil
}

func pick(cores []*Core, idx []int) []*Core {
	out := make([]*Core, len(idx))
	for j, i := range idx {
		out[j] = cores[i]
	}
	return out
}

// Names returns the core labels in order, for partition formatting.
func Names(cores []*Core) []string {
	names := make([]string, len(cores))
	for i, c := range cores {
		names[i] = c.Name
	}
	return names
}

// Classes returns equivalence classes for partition deduplication: cores
// with identical test sets (same tests in the same order) share a class.
func Classes(cores []*Core) []int {
	classes := make([]int, len(cores))
	next := 0
	for i, c := range cores {
		classes[i] = -1
		for j := 0; j < i; j++ {
			if sameTests(c, cores[j]) {
				classes[i] = classes[j]
				break
			}
		}
		if classes[i] == -1 {
			classes[i] = next
			next++
		}
	}
	return classes
}

func sameTests(a, b *Core) bool {
	if len(a.Tests) != len(b.Tests) {
		return false
	}
	for i := range a.Tests {
		ta, tb := a.Tests[i], b.Tests[i]
		ta.Name, tb.Name = "", ""
		if ta != tb {
			return false
		}
	}
	return true
}
