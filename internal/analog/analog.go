// Package analog models the analog cores of a mixed-signal SOC and the
// reconfigurable analog test wrappers that turn them into virtual digital
// cores (Sections 3 and 5 of the paper).
//
// An analog core carries a set of specification-based tests (Table 2 of
// the paper): each test needs a stimulus band, a sampling frequency, a
// number of TAM clock cycles, a digital TAM width, and a data-converter
// resolution. A test wrapper placed around one or more cores must satisfy
// the merged requirements of every test it serves: the ADC-DAC pair is
// sized for the maximum resolution and sampling rate, and the
// encoder/decoder for the widest TAM interface.
//
// Sharing one wrapper between several cores (Figure 2) trades area
// against schedule freedom: the shared cores' tests must be applied
// serially, and analog multiplexing adds a routing overhead
// r = (n-1)·δ for a wrapper serving n cores. The package computes the
// area-overhead cost C_A of equation (1) and the analog test-time lower
// bound LTB used by Table 1 and by the planner's pruning step.
package analog

import (
	"fmt"
)

// Hertz is a frequency in hertz.
type Hertz float64

// Convenience frequency units.
const (
	KHz Hertz = 1e3
	MHz Hertz = 1e6
)

// String renders a frequency the way the paper's tables do (kHz/MHz).
func (f Hertz) String() string {
	switch {
	case f == 0:
		return "DC"
	case f >= MHz:
		return trimZero(fmt.Sprintf("%.4g", float64(f)/1e6)) + "MHz"
	case f >= KHz:
		return trimZero(fmt.Sprintf("%.4g", float64(f)/1e3)) + "kHz"
	}
	return trimZero(fmt.Sprintf("%.4g", float64(f))) + "Hz"
}

func trimZero(s string) string { return s }

// Test is one specification-based analog test (a row of Table 2).
type Test struct {
	Name       string
	FinLow     Hertz // lowest stimulus tone; 0 means DC
	FinHigh    Hertz // highest stimulus tone
	Fsample    Hertz // sampling frequency the converters must sustain
	Cycles     int64 // test length in TAM clock cycles
	TAMWidth   int   // TAM wires needed to stream stimulus/response data
	Resolution int   // converter resolution in bits
}

// Validate reports the first implausible field.
func (t *Test) Validate() error {
	switch {
	case t.Name == "":
		return fmt.Errorf("analog: test has no name")
	case t.Cycles <= 0:
		return fmt.Errorf("analog: test %s: cycles %d <= 0", t.Name, t.Cycles)
	case t.TAMWidth <= 0:
		return fmt.Errorf("analog: test %s: TAM width %d <= 0", t.Name, t.TAMWidth)
	case t.Resolution <= 0 || t.Resolution > 24:
		return fmt.Errorf("analog: test %s: resolution %d out of range", t.Name, t.Resolution)
	case t.FinLow < 0 || t.FinHigh < t.FinLow:
		return fmt.Errorf("analog: test %s: bad stimulus band [%v,%v]", t.Name, t.FinLow, t.FinHigh)
	case t.Fsample <= 0:
		return fmt.Errorf("analog: test %s: sampling frequency %v <= 0", t.Name, t.Fsample)
	}
	return nil
}

// Undersampled reports whether the stimulus band exceeds the Nyquist
// rate of the converters. Such tests rely on coherent undersampling, a
// standard mixed-signal technique; several Table 2 tests (e.g. core D's
// gain test at 26 MHz sampled at 26 MHz) are of this kind.
func (t *Test) Undersampled() bool { return Hertz(2)*t.FinHigh > t.Fsample }

// Core is an embedded analog core with its test set.
type Core struct {
	Name  string // short label, e.g. "A"
	Kind  string // descriptive function, e.g. "I-Q transmit"
	Tests []Test
}

// Validate checks the core and all its tests.
func (c *Core) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("analog: core has no name")
	}
	if len(c.Tests) == 0 {
		return fmt.Errorf("analog: core %s has no tests", c.Name)
	}
	for i := range c.Tests {
		if err := c.Tests[i].Validate(); err != nil {
			return fmt.Errorf("core %s: %w", c.Name, err)
		}
	}
	return nil
}

// TotalCycles is the core's test time in TAM clock cycles when its tests
// run back to back (core-test mode only, as in the paper).
func (c *Core) TotalCycles() int64 {
	var total int64
	for i := range c.Tests {
		total += c.Tests[i].Cycles
	}
	return total
}

// MaxTAMWidth is the widest TAM interface any test of the core needs.
func (c *Core) MaxTAMWidth() int {
	w := 0
	for i := range c.Tests {
		if c.Tests[i].TAMWidth > w {
			w = c.Tests[i].TAMWidth
		}
	}
	return w
}

// MaxFsample is the fastest sampling rate any test of the core needs.
func (c *Core) MaxFsample() Hertz {
	var f Hertz
	for i := range c.Tests {
		if c.Tests[i].Fsample > f {
			f = c.Tests[i].Fsample
		}
	}
	return f
}

// MaxResolution is the highest converter resolution any test needs.
func (c *Core) MaxResolution() int {
	r := 0
	for i := range c.Tests {
		if c.Tests[i].Resolution > r {
			r = c.Tests[i].Resolution
		}
	}
	return r
}

// Requirements are the data-converter and interface needs a wrapper must
// satisfy; a shared wrapper satisfies the union of its cores' needs.
type Requirements struct {
	Resolution int   // bits
	Fsample    Hertz // fastest sampling rate
	TAMWidth   int   // widest TAM interface
}

// Requirements returns the core's own wrapper requirements.
func (c *Core) Requirements() Requirements {
	return Requirements{
		Resolution: c.MaxResolution(),
		Fsample:    c.MaxFsample(),
		TAMWidth:   c.MaxTAMWidth(),
	}
}

// Merge returns the union of the cores' requirements: the sizing rule of
// Section 3 ("the resolution ... is selected to be the maximum of the
// ADC-DAC resolution requirements of all the analog cores sharing the
// wrapper", and likewise encoder/decoder for the largest TAM width).
func Merge(cores []*Core) Requirements {
	var req Requirements
	for _, c := range cores {
		r := c.Requirements()
		if r.Resolution > req.Resolution {
			req.Resolution = r.Resolution
		}
		if r.Fsample > req.Fsample {
			req.Fsample = r.Fsample
		}
		if r.TAMWidth > req.TAMWidth {
			req.TAMWidth = r.TAMWidth
		}
	}
	return req
}
