package analog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file defines a line-oriented text format for analog core test
// specifications, the analog counterpart of the digital .soc format in
// internal/itc02. '#' comments and blank lines are ignored:
//
//	AnalogCore A
//	  Kind I-Q transmit
//	  Test fc
//	    Band 50kHz 50kHz
//	    Fsample 1.5MHz
//	    Cycles 50000
//	    TamWidth 1
//	    Resolution 8
//	  EndTest
//	EndAnalogCore
//
// Frequencies accept Hz, kHz and MHz suffixes (case-insensitive) or the
// literal DC. A file may contain any number of cores.

// ParseCores reads analog core specifications. Every core is validated.
func ParseCores(r io.Reader) ([]*Core, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	p := &coreParser{sc: sc}
	cores, err := p.parse()
	if err != nil {
		return nil, err
	}
	for _, c := range cores {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	return cores, nil
}

// ParseCoresString is ParseCores on a string.
func ParseCoresString(s string) ([]*Core, error) { return ParseCores(strings.NewReader(s)) }

// WriteCores renders cores in the package text format; the output
// parses back to equal cores.
func WriteCores(w io.Writer, cores []*Core) error {
	bw := bufio.NewWriter(w)
	for i, c := range cores {
		if i > 0 {
			fmt.Fprintln(bw)
		}
		fmt.Fprintf(bw, "AnalogCore %s\n", c.Name)
		if c.Kind != "" {
			fmt.Fprintf(bw, "  Kind %s\n", c.Kind)
		}
		for j := range c.Tests {
			t := &c.Tests[j]
			fmt.Fprintf(bw, "  Test %s\n", t.Name)
			fmt.Fprintf(bw, "    Band %s %s\n", formatHertz(t.FinLow), formatHertz(t.FinHigh))
			fmt.Fprintf(bw, "    Fsample %s\n", formatHertz(t.Fsample))
			fmt.Fprintf(bw, "    Cycles %d\n", t.Cycles)
			fmt.Fprintf(bw, "    TamWidth %d\n", t.TAMWidth)
			fmt.Fprintf(bw, "    Resolution %d\n", t.Resolution)
			fmt.Fprintf(bw, "  EndTest\n")
		}
		fmt.Fprintf(bw, "EndAnalogCore\n")
	}
	return bw.Flush()
}

// FormatCores renders cores to a string.
func FormatCores(cores []*Core) string {
	var sb strings.Builder
	// strings.Builder never errors.
	_ = WriteCores(&sb, cores)
	return sb.String()
}

// formatHertz renders a frequency losslessly for the format (plain Hz
// when the kHz/MHz rendering would round).
func formatHertz(f Hertz) string {
	if f == 0 {
		return "DC"
	}
	for _, u := range []struct {
		mult Hertz
		name string
	}{{MHz, "MHz"}, {KHz, "kHz"}} {
		v := float64(f / u.mult)
		if v >= 1 && v == float64(int64(v*1e6))/1e6 {
			return strconv.FormatFloat(v, 'g', -1, 64) + u.name
		}
	}
	return strconv.FormatFloat(float64(f), 'g', -1, 64) + "Hz"
}

// ParseHertz parses "DC", "700Hz", "50kHz", "1.5MHz" (suffix
// case-insensitive; bare numbers are Hz).
func ParseHertz(s string) (Hertz, error) {
	if strings.EqualFold(s, "DC") {
		return 0, nil
	}
	lower := strings.ToLower(s)
	mult := Hertz(1)
	num := lower
	switch {
	case strings.HasSuffix(lower, "mhz"):
		mult, num = MHz, lower[:len(lower)-3]
	case strings.HasSuffix(lower, "khz"):
		mult, num = KHz, lower[:len(lower)-3]
	case strings.HasSuffix(lower, "hz"):
		num = lower[:len(lower)-2]
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("analog: bad frequency %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("analog: negative frequency %q", s)
	}
	return Hertz(v) * mult, nil
}

type coreParser struct {
	sc   *bufio.Scanner
	line int
}

func (p *coreParser) errf(format string, args ...any) error {
	return fmt.Errorf("analog: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *coreParser) next() []string {
	for p.sc.Scan() {
		p.line++
		line := p.sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) > 0 {
			return fields
		}
	}
	return nil
}

func (p *coreParser) parse() ([]*Core, error) {
	var cores []*Core
	for {
		fields := p.next()
		if fields == nil {
			break
		}
		if fields[0] != "AnalogCore" || len(fields) != 2 {
			return nil, p.errf("expected 'AnalogCore <name>', got %q", strings.Join(fields, " "))
		}
		c, err := p.parseCore(fields[1])
		if err != nil {
			return nil, err
		}
		cores = append(cores, c)
	}
	if err := p.sc.Err(); err != nil {
		return nil, err
	}
	return cores, nil
}

func (p *coreParser) parseCore(name string) (*Core, error) {
	c := &Core{Name: name}
	for {
		fields := p.next()
		if fields == nil {
			return nil, p.errf("unexpected EOF inside AnalogCore %s", name)
		}
		switch fields[0] {
		case "EndAnalogCore":
			return c, nil
		case "Kind":
			if len(fields) < 2 {
				return nil, p.errf("Kind wants a value")
			}
			c.Kind = strings.Join(fields[1:], " ")
		case "Test":
			if len(fields) != 2 {
				return nil, p.errf("Test wants one name")
			}
			t, err := p.parseTest(fields[1])
			if err != nil {
				return nil, err
			}
			c.Tests = append(c.Tests, t)
		default:
			return nil, p.errf("unexpected keyword %q inside AnalogCore %s", fields[0], name)
		}
	}
}

func (p *coreParser) parseTest(name string) (Test, error) {
	t := Test{Name: name, Resolution: 8}
	for {
		fields := p.next()
		if fields == nil {
			return t, p.errf("unexpected EOF inside Test %s", name)
		}
		switch fields[0] {
		case "EndTest":
			return t, nil
		case "Band":
			if len(fields) != 3 {
				return t, p.errf("Band wants two frequencies")
			}
			lo, err := ParseHertz(fields[1])
			if err != nil {
				return t, p.errf("%v", err)
			}
			hi, err := ParseHertz(fields[2])
			if err != nil {
				return t, p.errf("%v", err)
			}
			t.FinLow, t.FinHigh = lo, hi
		case "Fsample":
			if len(fields) != 2 {
				return t, p.errf("Fsample wants one frequency")
			}
			fs, err := ParseHertz(fields[1])
			if err != nil {
				return t, p.errf("%v", err)
			}
			t.Fsample = fs
		case "Cycles":
			n, err := p.intField(fields, "Cycles")
			if err != nil {
				return t, err
			}
			t.Cycles = int64(n)
		case "TamWidth":
			n, err := p.intField(fields, "TamWidth")
			if err != nil {
				return t, err
			}
			t.TAMWidth = n
		case "Resolution":
			n, err := p.intField(fields, "Resolution")
			if err != nil {
				return t, err
			}
			t.Resolution = n
		default:
			return t, p.errf("unexpected keyword %q inside Test %s", fields[0], name)
		}
	}
}

func (p *coreParser) intField(fields []string, kw string) (int, error) {
	if len(fields) != 2 {
		return 0, p.errf("%s wants one integer", kw)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, p.errf("%s: %q is not an integer", kw, fields[1])
	}
	return n, nil
}
