package analog

import (
	"strings"
	"testing"
)

func TestParseHertz(t *testing.T) {
	cases := []struct {
		in   string
		want Hertz
	}{
		{"DC", 0}, {"dc", 0},
		{"700Hz", 700}, {"700hz", 700}, {"700", 700},
		{"50kHz", 50e3}, {"50KHZ", 50e3},
		{"1.5MHz", 1.5e6}, {"78mhz", 78e6},
		{"2.46MHz", 2.46e6},
	}
	for _, tc := range cases {
		got, err := ParseHertz(tc.in)
		if err != nil {
			t.Errorf("ParseHertz(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseHertz(%q) = %v, want %v", tc.in, float64(got), float64(tc.want))
		}
	}
	for _, bad := range []string{"", "fast", "-3kHz", "1.2.3MHz"} {
		if _, err := ParseHertz(bad); err == nil {
			t.Errorf("ParseHertz(%q) accepted", bad)
		}
	}
}

func TestCoreFormatRoundTrip(t *testing.T) {
	orig := PaperCores()
	text := FormatCores(orig)
	back, err := ParseCoresString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if len(back) != len(orig) {
		t.Fatalf("cores = %d, want %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i].Name != orig[i].Name || back[i].Kind != orig[i].Kind {
			t.Errorf("core %d header mismatch: %+v vs %+v", i, back[i], orig[i])
		}
		if len(back[i].Tests) != len(orig[i].Tests) {
			t.Fatalf("core %s: %d tests, want %d", orig[i].Name, len(back[i].Tests), len(orig[i].Tests))
		}
		for j := range orig[i].Tests {
			if back[i].Tests[j] != orig[i].Tests[j] {
				t.Errorf("core %s test %d: %+v vs %+v", orig[i].Name, j, back[i].Tests[j], orig[i].Tests[j])
			}
		}
	}
	// Idempotent rendering.
	if FormatCores(back) != text {
		t.Error("rendering not stable across round trip")
	}
}

func TestParseCoresErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"top level", "Bogus x\n", "expected 'AnalogCore"},
		{"eof core", "AnalogCore A\n", "unexpected EOF"},
		{"eof test", "AnalogCore A\n Test t\n", "unexpected EOF"},
		{"bad keyword", "AnalogCore A\n Zap 1\nEndAnalogCore\n", "unexpected keyword"},
		{"band arity", "AnalogCore A\n Test t\n  Band 1kHz\n EndTest\nEndAnalogCore\n", "two frequencies"},
		{"bad freq", "AnalogCore A\n Test t\n  Fsample soon\n EndTest\nEndAnalogCore\n", "bad frequency"},
		{"bad int", "AnalogCore A\n Test t\n  Cycles many\n EndTest\nEndAnalogCore\n", "not an integer"},
		{"invalid core", "AnalogCore A\nEndAnalogCore\n", "no tests"},
		{"invalid test", "AnalogCore A\n Test t\n  Fsample 1kHz\n  TamWidth 1\n  Resolution 8\n EndTest\nEndAnalogCore\n", "cycles"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseCoresString(tc.in)
			if err == nil {
				t.Fatal("accepted bad input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseCoresComments(t *testing.T) {
	in := `
# the whole file can be commented
AnalogCore X  # no trailing comment support on the name itself is needed
  Kind multi word kind string
  Test g
    Band DC 20kHz
    Fsample 640kHz
    Cycles 100
    TamWidth 1
    Resolution 8
  EndTest
EndAnalogCore
`
	cores, err := ParseCoresString(in)
	if err != nil {
		t.Fatal(err)
	}
	if cores[0].Kind != "multi word kind string" {
		t.Errorf("Kind = %q", cores[0].Kind)
	}
	if cores[0].Tests[0].FinLow != 0 || cores[0].Tests[0].FinHigh != 20*KHz {
		t.Errorf("band = %v..%v", cores[0].Tests[0].FinLow, cores[0].Tests[0].FinHigh)
	}
}

func TestFormatHertzLossless(t *testing.T) {
	// Values that would round under %.4g must render losslessly.
	for _, f := range []Hertz{0, 700, 136533, 2.46 * MHz, 1.7 * MHz, 50 * KHz, 78 * MHz, 12345} {
		s := formatHertz(f)
		back, err := ParseHertz(s)
		if err != nil {
			t.Fatalf("%v -> %q: %v", float64(f), s, err)
		}
		if back != f {
			t.Errorf("formatHertz(%v) = %q, parses to %v", float64(f), s, float64(back))
		}
	}
}
