package analog

import "testing"

// FuzzParseCores checks the analog-core parser never panics and that
// accepted inputs are valid and round-trip stable.
func FuzzParseCores(f *testing.F) {
	f.Add(FormatCores(PaperCores()))
	f.Add("AnalogCore A\n Test t\n  Fsample 1kHz\n  Cycles 1\n  TamWidth 1\n EndTest\nEndAnalogCore\n")
	f.Add("AnalogCore A\nEndAnalogCore\n")
	f.Add("# empty\n")
	f.Add("AnalogCore A\n Kind x y z\n Test q\n  Band DC 1MHz\n  Fsample 8MHz\n  Cycles 9\n  TamWidth 2\n  Resolution 12\n EndTest\nEndAnalogCore\n")

	f.Fuzz(func(t *testing.T, input string) {
		cores, err := ParseCoresString(input)
		if err != nil {
			return
		}
		for _, c := range cores {
			if verr := c.Validate(); verr != nil {
				t.Fatalf("parser accepted invalid core: %v", verr)
			}
		}
		text := FormatCores(cores)
		back, err := ParseCoresString(text)
		if err != nil {
			t.Fatalf("rendered cores do not reparse: %v\n%s", err, text)
		}
		if FormatCores(back) != text {
			t.Fatal("format/parse round trip not stable")
		}
	})
}
