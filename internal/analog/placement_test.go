package analog

import (
	"math"
	"testing"

	"mixsoc/internal/partition"
)

func paperPlacement() PlacementRouting {
	// A plausible floorplan: the two I-Q paths adjacent, the CODEC near
	// them, the down-converter and amplifier on the far side.
	return PlacementRouting{
		Positions: map[string]Point{
			"A": {1, 1}, "B": {1.5, 1}, "C": {2, 2},
			"D": {8, 7}, "E": {9, 8},
		},
		Diameter: 12, // chip diagonal-ish
		Scale:    1.0,
	}
}

func TestUniformRouting(t *testing.T) {
	u := UniformRouting{Delta: 0.15}
	cores := PaperCores()
	if got := u.Overhead(cores[:1]); got != 0 {
		t.Errorf("single-core overhead = %v", got)
	}
	if got := u.Overhead(cores[:3]); math.Abs(got-0.30) > 1e-12 {
		t.Errorf("3-core overhead = %v, want 0.30", got)
	}
}

func TestPlacementRoutingDistance(t *testing.T) {
	pr := paperPlacement()
	cores := PaperCores()
	if err := pr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Adjacent cores A,B: distance 0.5, normalized 0.5/12.
	got := pr.Overhead([]*Core{cores[0], cores[1]})
	if math.Abs(got-0.5/12) > 1e-12 {
		t.Errorf("A,B overhead = %v, want %v", got, 0.5/12)
	}
	// Far cores A,D: much more expensive than A,B.
	far := pr.Overhead([]*Core{cores[0], cores[3]})
	if far <= got*5 {
		t.Errorf("A,D overhead %v not clearly above A,B %v", far, got)
	}
	// Cumulative pairwise distance: 3 cores sum three pairs.
	abc := pr.Overhead([]*Core{cores[0], cores[1], cores[2]})
	ab := pr.Overhead([]*Core{cores[0], cores[1]})
	ac := pr.Overhead([]*Core{cores[0], cores[2]})
	bc := pr.Overhead([]*Core{cores[1], cores[2]})
	if math.Abs(abc-(ab+ac+bc)) > 1e-12 {
		t.Errorf("cumulative distance broken: %v vs %v", abc, ab+ac+bc)
	}
	if pr.Overhead(cores[:1]) != 0 {
		t.Error("single core should have zero overhead")
	}
}

func TestPlacementRoutingFallback(t *testing.T) {
	pr := paperPlacement()
	unknown := &Core{Name: "Z", Tests: PaperCores()[4].Tests}
	cores := []*Core{PaperCores()[0], unknown}
	if got := pr.Overhead(cores); got != 0 {
		t.Errorf("nil fallback overhead = %v, want 0", got)
	}
	pr.Fallback = UniformRouting{Delta: 0.15}
	if got := pr.Overhead(cores); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("fallback overhead = %v, want 0.15", got)
	}
	bad := PlacementRouting{Scale: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero diameter validated")
	}
	if !math.IsInf(bad.Overhead(cores), 1) {
		t.Error("misconfigured model should be conspicuous")
	}
}

func TestAreaOverheadWithPlacementRouting(t *testing.T) {
	cores := PaperCores()
	cm := PaperCostModel()
	pr := paperPlacement()

	// Nearby pair {A,B} beats far pair {A,D} under placement routing,
	// while the uniform model prices them identically.
	pAB := partition.Partition{{0, 1}, {2}, {3}, {4}}
	pAD := partition.Partition{{0, 3}, {1}, {2}, {4}}

	uniformAB, err := cm.AreaOverheadPercent(cores, pAB)
	if err != nil {
		t.Fatal(err)
	}
	uniformAD, err := cm.AreaOverheadPercent(cores, pAD)
	if err != nil {
		t.Fatal(err)
	}
	if uniformAB != uniformAD {
		t.Errorf("uniform model should not distinguish: %v vs %v", uniformAB, uniformAD)
	}

	placedAB, err := cm.AreaOverheadPercentWithRouting(cores, pAB, pr)
	if err != nil {
		t.Fatal(err)
	}
	placedAD, err := cm.AreaOverheadPercentWithRouting(cores, pAD, pr)
	if err != nil {
		t.Fatal(err)
	}
	if placedAB >= placedAD {
		t.Errorf("placement-aware model should prefer adjacent cores: {A,B}=%v vs {A,D}=%v", placedAB, placedAD)
	}

	// Nil routing model falls back to the plain computation.
	plain, err := cm.AreaOverheadPercentWithRouting(cores, pAB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain != uniformAB {
		t.Errorf("nil routing fallback = %v, want %v", plain, uniformAB)
	}

	// Bad partitions still rejected.
	if _, err := cm.AreaOverheadPercentWithRouting(cores, partition.Partition{{0}}, pr); err == nil {
		t.Error("bad partition accepted")
	}
}
