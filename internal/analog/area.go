package analog

import (
	"fmt"
	"math"
)

// AreaModel estimates the silicon area of one analog test wrapper, in
// arbitrary consistent units, from its requirements. Only ratios of
// areas matter to the cost C_A.
type AreaModel interface {
	WrapperArea(req Requirements) float64
}

// ConverterInventory counts the dominant components of the wrapper's
// data converters for a given resolution, following Section 5 of the
// paper: a modular pipelined n-bit ADC built from two n/2-bit flash
// stages plus an n/2-bit interstage DAC, and a modular voltage-steering
// n-bit DAC built from two n/2-bit DACs.
type ConverterInventory struct {
	Comparators int // ADC comparators: 2·2^(n/2) (flash would need 2^n)
	Resistors   int // ADC interstage + DAC ladders: 3·2^(n/2) (flash DAC: 2^n)
}

// ModularInventory returns the component counts of the modular
// architecture for an n-bit wrapper (n must be even and positive).
func ModularInventory(bits int) (ConverterInventory, error) {
	if bits <= 0 || bits%2 != 0 {
		return ConverterInventory{}, fmt.Errorf("analog: modular converter needs positive even resolution, got %d", bits)
	}
	half := 1 << (bits / 2)
	return ConverterInventory{Comparators: 2 * half, Resistors: 3 * half}, nil
}

// FlashInventory returns the component counts of a non-modular flash
// implementation, the paper's point of comparison ("an 8-bit flash
// architecture typically requires 256 comparators").
func FlashInventory(bits int) (ConverterInventory, error) {
	if bits <= 0 {
		return ConverterInventory{}, fmt.Errorf("analog: flash converter needs positive resolution, got %d", bits)
	}
	full := 1 << bits
	return ConverterInventory{Comparators: full, Resistors: full}, nil
}

// PhysicalModel prices a wrapper from its component inventory. The
// default constants make a comparator the unit of area; resistors and
// register bits are fractions of it, and a gentle speed factor grows the
// converter area with the sampling rate (faster converters need larger
// devices and bias currents). Values are heuristic but documented; only
// area ratios enter the planner.
type PhysicalModel struct {
	ComparatorArea float64 // per comparator; default 1.0
	ResistorArea   float64 // per ladder resistor; default 0.15
	RegisterArea   float64 // per register bit; default 0.08
	EncoderArea    float64 // per encoder/decoder bit-lane; default 0.5
	SpeedFactor    float64 // area growth per doubling of fs above 1 MHz; default 0.15
}

// DefaultPhysicalModel returns the model with the documented defaults.
func DefaultPhysicalModel() PhysicalModel {
	return PhysicalModel{
		ComparatorArea: 1.0,
		ResistorArea:   0.15,
		RegisterArea:   0.08,
		EncoderArea:    0.5,
		SpeedFactor:    0.15,
	}
}

// WrapperArea implements AreaModel.
func (pm PhysicalModel) WrapperArea(req Requirements) float64 {
	bits := req.Resolution
	if bits%2 != 0 {
		bits++ // converters come in even sizes
	}
	inv, err := ModularInventory(bits)
	if err != nil {
		// Resolution was validated upstream; a failure here is a
		// programming error.
		panic(err)
	}
	converters := float64(inv.Comparators)*pm.ComparatorArea + float64(inv.Resistors)*pm.ResistorArea
	registers := 2 * float64(req.Resolution) * pm.RegisterArea
	encdec := float64(req.Resolution+req.TAMWidth) * pm.EncoderArea

	speed := 1.0
	if req.Fsample > MHz {
		speed += pm.SpeedFactor * math.Log2(float64(req.Fsample/MHz))
	}
	return (converters + registers + encdec) * speed
}

// UnitAreaModel prices every wrapper at 1.0 regardless of requirements.
// Combined with the MaxMemberArea rule and routing factor δ = 0.15, it
// reproduces the paper's published Table 1 C_A values exactly (e.g.
// {A,C} → (1.15+3)/5 = 83.0, {A,B,C} → (1.3+2)/5 = 66.0,
// {A,B,C,E} → (1.45+1)/5 = 49.0); see analog.PaperCostModel.
type UnitAreaModel struct{}

// WrapperArea implements AreaModel.
func (UnitAreaModel) WrapperArea(Requirements) float64 { return 1 }

// AreaTable is an AreaModel defined by interpolation-free lookup: the
// area of a wrapper is taken from the entry with the same resolution and
// at least the required width/speed; entries are expected to come from a
// calibration source (e.g. layout of a test chip). Missing entries fall
// back to the physical model so the planner never fails mid-search.
type AreaTable struct {
	Entries  []AreaEntry
	Fallback AreaModel
}

// AreaEntry prices one wrapper configuration.
type AreaEntry struct {
	Req  Requirements
	Area float64
}

// WrapperArea implements AreaModel: the cheapest entry that covers the
// requirements, else the fallback.
func (t AreaTable) WrapperArea(req Requirements) float64 {
	best := math.Inf(1)
	for _, e := range t.Entries {
		if e.Req.Resolution >= req.Resolution && e.Req.Fsample >= req.Fsample && e.Req.TAMWidth >= req.TAMWidth && e.Area < best {
			best = e.Area
		}
	}
	if !math.IsInf(best, 1) {
		return best
	}
	if t.Fallback != nil {
		return t.Fallback.WrapperArea(req)
	}
	return DefaultPhysicalModel().WrapperArea(req)
}

// SharedAreaRule selects how the area of a wrapper shared by several
// cores is determined.
type SharedAreaRule int

const (
	// MergedRequirements sizes the shared wrapper for the union of its
	// cores' requirements (the physically faithful reading of Section 3's
	// sizing rule). This is the default.
	MergedRequirements SharedAreaRule = iota
	// MaxMemberArea prices the shared wrapper at the maximum of its
	// members' standalone wrapper areas, the literal a_max of
	// equation (1).
	MaxMemberArea
)

func (r SharedAreaRule) String() string {
	switch r {
	case MergedRequirements:
		return "merged-requirements"
	case MaxMemberArea:
		return "max-member-area"
	}
	return fmt.Sprintf("SharedAreaRule(%d)", int(r))
}
