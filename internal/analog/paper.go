package analog

// PaperCores returns the five analog cores of the paper's p93791m SOC
// (Table 2), taken from a commercial baseband cellular phone chip:
//
//	A, B — a pair of baseband I-Q transmit paths (500 kHz bandwidth)
//	C    — an audio CODEC path (50 kHz bandwidth)
//	D    — a baseband down-conversion path
//	E    — a general-purpose amplifier
//
// Test names follow the paper: Gpb (pass-band gain), fc (cut-off
// frequency), A1MHz/A2MHz (attenuation), IIP3 (third-order input
// intercept), Voffset (DC offset), phimis (phase mismatch), THD (total
// harmonic distortion), G (gain), DR (dynamic range), SR (slew rate).
//
// Resolutions are not printed in Table 2; the defaults here follow the
// paper's implementation narrative: 8 bits everywhere (the implemented
// wrapper is an 8-bit design, demonstrated on core A), except the audio
// CODEC's THD test which needs a quieter converter and is assigned
// 12 bits. This is the one calibrated assumption behind the absolute
// C_A values; see EXPERIMENTS.md.
func PaperCores() []*Core {
	iqTests := []Test{
		{Name: "fc", FinLow: 50 * KHz, FinHigh: 50 * KHz, Fsample: 1.5 * MHz, Cycles: 50000, TAMWidth: 1, Resolution: 8},
		{Name: "Gpb", FinLow: 45 * KHz, FinHigh: 55 * KHz, Fsample: 1.5 * MHz, Cycles: 13653, TAMWidth: 4, Resolution: 8},
		{Name: "A1MHz+A2MHz", FinLow: 1 * MHz, FinHigh: 2 * MHz, Fsample: 8 * MHz, Cycles: 12643, TAMWidth: 2, Resolution: 8},
		{Name: "IIP3", FinLow: 50 * KHz, FinHigh: 250 * KHz, Fsample: 8 * MHz, Cycles: 26973, TAMWidth: 2, Resolution: 8},
		{Name: "Voffset", FinLow: 0, FinHigh: 0, Fsample: 10 * KHz, Cycles: 700, TAMWidth: 1, Resolution: 8},
		{Name: "phimis", FinLow: 200 * KHz, FinHigh: 400 * KHz, Fsample: 15 * MHz, Cycles: 32000, TAMWidth: 4, Resolution: 8},
	}

	a := &Core{Name: "A", Kind: "I-Q transmit", Tests: append([]Test(nil), iqTests...)}
	b := &Core{Name: "B", Kind: "I-Q transmit", Tests: append([]Test(nil), iqTests...)}

	c := &Core{Name: "C", Kind: "CODEC audio", Tests: []Test{
		{Name: "Gpb", FinLow: 20 * KHz, FinHigh: 20 * KHz, Fsample: 640 * KHz, Cycles: 80000, TAMWidth: 1, Resolution: 8},
		{Name: "fc", FinLow: 45 * KHz, FinHigh: 55 * KHz, Fsample: 1.5 * MHz, Cycles: 136533, TAMWidth: 1, Resolution: 8},
		{Name: "THD", FinLow: 2 * KHz, FinHigh: 31 * KHz, Fsample: 2.46 * MHz, Cycles: 83252, TAMWidth: 1, Resolution: 12},
	}}

	d := &Core{Name: "D", Kind: "baseband down converter", Tests: []Test{
		{Name: "IIP3", FinLow: 3.25 * MHz, FinHigh: 9.75 * MHz, Fsample: 78 * MHz, Cycles: 15754, TAMWidth: 10, Resolution: 8},
		{Name: "G", FinLow: 26 * MHz, FinHigh: 26 * MHz, Fsample: 26 * MHz, Cycles: 9228, TAMWidth: 4, Resolution: 8},
		{Name: "DR", FinLow: 26 * MHz, FinHigh: 26 * MHz, Fsample: 26 * MHz, Cycles: 31508, TAMWidth: 4, Resolution: 8},
	}}

	e := &Core{Name: "E", Kind: "general purpose amplifier", Tests: []Test{
		{Name: "SR", FinLow: 69 * MHz, FinHigh: 69 * MHz, Fsample: 69 * MHz, Cycles: 5400, TAMWidth: 5, Resolution: 8},
		{Name: "G", FinLow: 8 * MHz, FinHigh: 8 * MHz, Fsample: 8 * MHz, Cycles: 2500, TAMWidth: 1, Resolution: 8},
	}}

	return []*Core{a, b, c, d, e}
}

// Paper test-time facts derivable from Table 2, used by tests and
// documented in DESIGN.md §5.
const (
	// PaperCyclesIQ is the per-core test time of cores A and B.
	PaperCyclesIQ int64 = 135969
	// PaperCyclesCODEC is core C's test time.
	PaperCyclesCODEC int64 = 299785
	// PaperCyclesDown is core D's test time.
	PaperCyclesDown int64 = 56490
	// PaperCyclesAmp is core E's test time.
	PaperCyclesAmp int64 = 7900
	// PaperCyclesTotal is the sum over all five cores, the all-share
	// serialization bound that normalizes Table 1.
	PaperCyclesTotal int64 = 2*PaperCyclesIQ + PaperCyclesCODEC + PaperCyclesDown + PaperCyclesAmp
)
