package core

import (
	"fmt"
	"sync/atomic"

	"mixsoc/internal/tam"
)

// BackendTournament names the tournament meta-backend: every registered
// tam backend packs the same jobs and the schedule with the smallest
// validated makespan wins (ties to the earlier backend in registry
// order, i.e. the default occupancy backend). It is selectable wherever
// a backend name is accepted — PlanOptions, SweepOptions, the serving
// layer's `backend` field, `msoc-plan -backend` — but is never the
// default: a tournament packs every backend, so it costs a multiple of
// a single-backend plan.
const BackendTournament = "tournament"

// Backends lists the selectable packing backend names: the tam registry
// (default first) plus the tournament meta-backend. The slice is fresh
// on every call.
func Backends() []string {
	return append(tam.Backends(), BackendTournament)
}

// PackerFor resolves a backend selection name to a tam.Packer. The
// empty string — no selection — returns nil, which every consumer
// treats as the historical default path (tam.Optimize, untagged cache
// keys), keeping default bytes bit-identical. An unknown name is an
// error listing the selectable backends; the serving layer maps it to a
// 400.
func PackerFor(name string) (tam.Packer, error) {
	switch name {
	case "":
		return nil, nil
	case BackendTournament:
		return NewTournamentPacker(), nil
	}
	p, err := tam.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("core: unknown packing backend %q (have %v)", name, Backends())
	}
	return p, nil
}

// NewTournamentPacker returns a Packer running every registered tam
// backend on each job set and keeping the best validated makespan; see
// BackendTournament for the tie rule. The engine wires its own
// instrumented variant; this constructor serves direct Planner use and
// the differential tests.
func NewTournamentPacker() tam.Packer {
	backends := make([]tam.Packer, 0, 2)
	for _, name := range tam.Backends() {
		p, err := tam.Lookup(name)
		if err != nil {
			// The registry lists only names it resolves; reaching here
			// would be a registry bug, not a caller error.
			panic(err)
		}
		backends = append(backends, p)
	}
	return &tournamentPacker{backends: backends}
}

// tournamentPacker implements the backend tournament. Every backend
// already validates its own output (their shared contract), so the
// minimum-makespan winner is a validated schedule by construction — and
// never worse than any individual backend on the same inputs, the
// property the differential suite asserts.
type tournamentPacker struct {
	backends []tam.Packer
	// onWin, when non-nil, observes the winning backend's name once per
	// successful pack; the engine hooks its tournament win counters here.
	onWin func(name string)
}

// Compile-time interface assertion: the tournament is a Packer too.
var _ tam.Packer = (*tournamentPacker)(nil)

// Name implements tam.Packer.
func (t *tournamentPacker) Name() string { return BackendTournament }

// Pack implements tam.Packer by racing every backend sequentially and
// returning the schedule with the smallest makespan. Any backend error
// fails the tournament: the backends share one pre-pack validation
// contract, so an error is either caller input (identical for every
// backend) or cancellation (which must propagate, not be outvoted).
func (t *tournamentPacker) Pack(jobs []*tam.Job, width int, opts ...tam.Option) (*tam.Schedule, error) {
	var best *tam.Schedule
	var winner string
	for _, b := range t.backends {
		s, err := b.Pack(jobs, width, opts...)
		if err != nil {
			return nil, err
		}
		if best == nil || s.Makespan < best.Makespan {
			best, winner = s, b.Name()
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: tournament packer has no backends")
	}
	if t.onWin != nil {
		t.onWin(winner)
	}
	return best, nil
}

// backendCounters is one backend's engine-lifetime pack accounting.
type backendCounters struct {
	ok, errs, wins atomic.Uint64
}

// countingPacker wraps a backend so every pack lands in the engine's
// per-backend counters. Results pass through untouched.
type countingPacker struct {
	tam.Packer
	c *backendCounters
}

// Compile-time interface assertion for the instrumented wrapper.
var _ tam.Packer = countingPacker{}

// Pack implements tam.Packer, counting the outcome.
func (p countingPacker) Pack(jobs []*tam.Job, width int, opts ...tam.Option) (*tam.Schedule, error) {
	s, err := p.Packer.Pack(jobs, width, opts...)
	if err != nil {
		p.c.errs.Add(1)
	} else {
		p.c.ok.Add(1)
	}
	return s, err
}

// BackendPackStats counts one backend's engine pack outcomes.
type BackendPackStats struct {
	// OK is the number of packs that returned a validated schedule.
	OK uint64 `json:"ok"`
	// Errors is the number of packs that returned an error (bad input or
	// cancellation).
	Errors uint64 `json:"errors"`
}
