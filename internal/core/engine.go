package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mixsoc/internal/itc02"
	"mixsoc/internal/partition"
	"mixsoc/internal/tam"
	"mixsoc/internal/wrapper"
)

// EngineOptions configures NewEngine. The zero value is a sensible
// default for a long-lived process.
type EngineOptions struct {
	// MaxDesigns bounds the number of design cache sessions kept alive;
	// the least-recently-used session is evicted past it. Default 8.
	MaxDesigns int
	// MaxWidth is the TAM width the per-design staircase caches
	// precompute up to; wider requests still work (the cache grows on
	// demand). Default 64, the widest width the paper sweeps.
	MaxWidth int
	// MaxWidthCaches bounds the schedule caches kept per design — one
	// cache per TAM width planned — evicting the least-recently-used
	// width past it, so a client scanning many widths cannot grow a
	// session without limit. Default 32.
	MaxWidthCaches int
	// Workers is the CPU budget each planning call runs with; 0 means
	// DefaultWorkers. The worker count never changes results — parallel
	// planners replay deterministically — only wall-clock.
	Workers int
	// DisableModuleCache turns off the cross-design module-level caches:
	// wrapper staircases keyed by module content hash and digital TAM
	// jobs keyed by digital-SOC hash. Sessions then cache per design
	// only, as before the caches existed. Results are bit-identical
	// either way; the flag is an A/B benchmarking and operational escape
	// hatch.
	DisableModuleCache bool
	// MaxModuleStairs bounds the cross-design staircase store: one entry
	// per distinct module content hash. Default 4096.
	MaxModuleStairs int
	// MaxDigitalJobs bounds the cross-design digital-jobs cache: one
	// entry per distinct (digital SOC, width) pair. Default 128.
	MaxDigitalJobs int
}

// Engine is a long-lived planning handle: it owns a staircase cache and
// per-width schedule caches for every design it has seen, keyed by the
// design's content hash (DesignHash), evicts whole designs by LRU, and
// threads context cancellation through every planning call. All methods
// are safe for concurrent use, and every result is bit-identical to the
// corresponding one-shot free function (Plan, SweepWith, ...): the
// caches only deduplicate deterministic work, and warm-started sweeps
// never write into the shared cold caches.
//
// A zero-valued Engine is not usable; construct with NewEngine.
type Engine struct {
	opts EngineOptions

	// The cross-design module-level caches (nil when disabled): every
	// session's staircase cache routes through moduleStairs under module
	// content hashes, and every session's evaluators draw built digital
	// job slices from digitalJobs under the design's DigitalHash — so
	// near-duplicate designs, which never share a session, still share
	// the wrapper work their common modules imply.
	moduleStairs *wrapper.ModuleStairStore
	digitalJobs  *DigitalJobsCache

	mu       sync.Mutex
	sessions map[string]*engineSession
	seq      uint64 // LRU clock, bumped per session access
	// retired accumulates the schedule-cache counters of evicted
	// sessions (under mu), so the engine-lifetime totals in Metrics
	// stay monotonic — the property a Prometheus scrape counter needs —
	// even as the LRU bound drops live caches.
	retired CacheStats

	designHits, designMisses, evictions, plans atomic.Uint64

	// backends holds one counter block per registered tam backend,
	// fixed at construction: packs routed through an explicitly
	// selected backend count here (the default path stays
	// uninstrumented), and tournament wins land in the winner's block.
	backends map[string]*backendCounters
}

// engineSession is the cache state of one canonicalized design: the
// engine-owned design copy, its cross-width staircase cache, and one
// cold schedule cache per TAM width.
type engineSession struct {
	engine    *Engine
	hash      string
	design    *Design
	// digitalHash keys the engine's cross-design digital-jobs cache;
	// empty when hashing failed or the module cache is disabled.
	digitalHash string
	maxWidths   int // schedule caches kept before width-LRU eviction

	plans atomic.Uint64 // planning calls served

	mu       sync.Mutex
	stairs   *wrapper.StaircaseCache
	byWidth  map[widthKey]*widthCache
	retired  CacheStats // counters of width caches evicted by the LRU, under mu
	widthSeq uint64     // width-LRU clock, under mu
	lastUse  uint64     // under Engine.mu
}

// widthKey keys a session's schedule caches: one cache per (TAM width,
// packing backend) pair. The default path uses the empty backend, so
// pre-existing cache keys — and the schedules behind them — are exactly
// what they were before backends existed; a selected backend's
// schedules can never be served to (or from) another backend.
type widthKey struct {
	width   int
	backend string
}

// widthCache is one width's schedule cache plus its LRU stamp.
type widthCache struct {
	cache   *ScheduleCache
	lastUse uint64
}

// NewEngine returns an engine with the given options.
func NewEngine(opts EngineOptions) *Engine {
	if opts.MaxDesigns < 1 {
		opts.MaxDesigns = 8
	}
	if opts.MaxWidth < 1 {
		opts.MaxWidth = 64
	}
	if opts.MaxWidthCaches < 1 {
		opts.MaxWidthCaches = 32
	}
	if opts.MaxModuleStairs < 1 {
		opts.MaxModuleStairs = 4096
	}
	if opts.MaxDigitalJobs < 1 {
		opts.MaxDigitalJobs = 128
	}
	e := &Engine{opts: opts, sessions: map[string]*engineSession{}, backends: map[string]*backendCounters{}}
	for _, name := range tam.Backends() {
		e.backends[name] = &backendCounters{}
	}
	if !opts.DisableModuleCache {
		e.moduleStairs = wrapper.NewModuleStairStore(opts.MaxWidth, opts.MaxModuleStairs)
		e.digitalJobs = NewDigitalJobsCache(opts.MaxDigitalJobs)
	}
	return e
}

func (e *Engine) workers() int {
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return DefaultWorkers()
}

// packerFor resolves a backend selection to an instrumented packer:
// individual backends are wrapped so every pack lands in the engine's
// per-backend counters, and a tournament additionally feeds the win
// counter of each pack's winner. The empty selection returns nil — the
// uninstrumented default path — so default planning stays bit- and
// cost-identical to an engine without backends.
func (e *Engine) packerFor(name string) (tam.Packer, error) {
	switch name {
	case "":
		return nil, nil
	case BackendTournament:
		backends := make([]tam.Packer, 0, len(e.backends))
		for _, n := range tam.Backends() {
			p, err := tam.Lookup(n)
			if err != nil {
				return nil, err
			}
			backends = append(backends, countingPacker{Packer: p, c: e.backends[n]})
		}
		t := &tournamentPacker{backends: backends}
		t.onWin = func(n string) {
			if c := e.backends[n]; c != nil {
				c.wins.Add(1)
			}
		}
		return t, nil
	}
	p, err := PackerFor(name)
	if err != nil {
		return nil, err
	}
	return countingPacker{Packer: p, c: e.backends[p.Name()]}, nil
}

// session returns the cache session for the design's content hash,
// creating (and LRU-evicting) as needed. The session plans against an
// engine-owned deep copy of the first design seen with that hash, so
// callers may mutate or discard their design afterwards — and so the
// pointer-keyed staircase cache actually hits across calls that pass
// separately allocated but identical designs.
func (e *Engine) session(d *Design) (*engineSession, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	hash, err := DesignHash(d)
	if err != nil {
		return nil, err
	}

	e.mu.Lock()
	e.seq++
	if s := e.sessions[hash]; s != nil {
		s.lastUse = e.seq
		e.mu.Unlock()
		e.designHits.Add(1)
		return s, nil
	}
	e.mu.Unlock()

	// Clone outside the lock; on a double-create race the first insert
	// wins and the loser's clone is dropped.
	clone, err := CloneDesign(d)
	if err != nil {
		return nil, err
	}
	s := &engineSession{
		engine:    e,
		hash:      hash,
		design:    clone,
		maxWidths: e.opts.MaxWidthCaches,
		byWidth:   map[widthKey]*widthCache{},
	}
	s.stairs = s.newStairs(e.opts.MaxWidth)
	if e.digitalJobs != nil {
		// A failed hash (practically impossible) leaves the key empty,
		// which simply opts the session out of digital-jobs sharing.
		s.digitalHash, _ = DigitalHash(clone)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if prev := e.sessions[hash]; prev != nil {
		prev.lastUse = e.seq
		e.designHits.Add(1)
		return prev, nil
	}
	e.designMisses.Add(1)
	s.lastUse = e.seq
	e.sessions[hash] = s
	for len(e.sessions) > e.opts.MaxDesigns {
		oldest := ""
		for h, cand := range e.sessions {
			if oldest == "" || cand.lastUse < e.sessions[oldest].lastUse {
				oldest = h
			}
		}
		// Fold the evicted session's counters into the engine-lifetime
		// totals before it goes. Planners still holding its caches may
		// count a few more hits afterwards; those are lost, which keeps
		// the totals monotonic (never inflated, never rewound).
		st := e.sessions[oldest].scheduleStats()
		e.retired.Hits += st.Hits
		e.retired.Misses += st.Misses
		delete(e.sessions, oldest)
		e.evictions.Add(1)
	}
	return s, nil
}

// scheduleStats sums the session's schedule-cache counters: the live
// width caches plus the widths its own LRU already retired.
func (s *engineSession) scheduleStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.retired
	for _, c := range s.byWidth {
		cs := c.cache.Stats()
		st.Hits += cs.Hits
		st.Misses += cs.Misses
	}
	return st
}

// newStairs builds a session staircase cache up to maxW, routed through
// the engine's cross-design store when the module cache is enabled, so
// identical modules of different designs share their staircases.
func (s *engineSession) newStairs(maxW int) *wrapper.StaircaseCache {
	sc := wrapper.NewStaircaseCache(maxW)
	if s.engine.moduleStairs != nil {
		sc.Share(s.engine.moduleStairs, func(m *itc02.Module) string {
			h, err := ModuleHash(m)
			if err != nil {
				return ""
			}
			return h
		})
	}
	return sc
}

// sweepStairs implements sweepCaches: the session's staircase cache,
// grown (replaced by a wider, initially empty one) when a sweep needs
// widths beyond what it precomputes. The prefix property makes a wider
// cache's answers bit-identical to the old one's.
func (s *engineSession) sweepStairs(maxW int) *wrapper.StaircaseCache {
	s.mu.Lock()
	defer s.mu.Unlock()
	if maxW > s.stairs.MaxWidth() {
		s.stairs = s.newStairs(maxW)
	}
	return s.stairs
}

// sweepDigital implements sweepDigitalJobs: sweeps over this session
// draw built digital job slices from the engine's cross-design cache.
func (s *engineSession) sweepDigital() (*DigitalJobsCache, string) {
	return s.engine.digitalJobs, s.digitalHash
}

// sweepCache implements sweepCaches: the session's cold schedule cache
// for width w under the given packing backend (empty = default),
// created on first use. (width, backend) pairs are LRU-bounded
// (maxWidths): evicting one only unshares it — planners already
// holding the cache keep using it safely — so a client scanning
// thousands of widths cannot grow the session without limit.
func (s *engineSession) sweepCache(w int, backend string) *ScheduleCache {
	key := widthKey{width: w, backend: backend}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.widthSeq++
	if c := s.byWidth[key]; c != nil {
		c.lastUse = s.widthSeq
		return c.cache
	}
	c := &widthCache{cache: NewScheduleCache(), lastUse: s.widthSeq}
	s.byWidth[key] = c
	for len(s.byWidth) > s.maxWidths {
		oldest, oldestUse := widthKey{}, ^uint64(0)
		for cw, cand := range s.byWidth {
			if cand.lastUse < oldestUse {
				oldest, oldestUse = cw, cand.lastUse
			}
		}
		st := s.byWidth[oldest].cache.Stats()
		s.retired.Hits += st.Hits
		s.retired.Misses += st.Misses
		delete(s.byWidth, oldest)
	}
	return c.cache
}

// sweepPacker implements sweepPackers: engine sweeps pack through the
// engine's instrumented backends.
func (s *engineSession) sweepPacker(name string) (tam.Packer, error) {
	return s.engine.packerFor(name)
}

// planner builds a planner wired to the session's caches, with the
// paper's defaults — exactly what the one-shot Plan free function runs,
// plus cache reuse. A non-empty backend routes packing through the
// named backend (or the tournament) and its own backend-tagged
// schedule cache.
func (s *engineSession) planner(width int, w Weights, workers int, backend string) (*Planner, error) {
	pk, err := s.engine.packerFor(backend)
	if err != nil {
		return nil, err
	}
	pl := NewPlanner(s.design, width, w)
	pl.Cache = s.sweepCache(width, backend)
	pl.Staircases = s.sweepStairs(width)
	pl.Digital, pl.DigitalKey = s.sweepDigital()
	pl.Workers = workers
	pl.Packer = pk
	return pl, nil
}

// PlanOptions selects the solver variant of Engine.PlanWith.
type PlanOptions struct {
	// Exhaustive evaluates every candidate configuration (the paper's
	// baseline) instead of the Cost_Optimizer heuristic.
	Exhaustive bool
	// Bounded enables branch-and-bound pruning; best cost and selection
	// stay bit-identical to an unbounded solve (see Planner.Bounded).
	Bounded bool
	// Backend selects the packing backend by name — "occupancy",
	// "rectangle", or "tournament" (every backend packs, best makespan
	// wins). Empty means the default occupancy path with its historical
	// cache keys and bit-identical results; an unknown name is an
	// error. Schedules are cached under backend-tagged keys, so
	// backends never serve each other's packings.
	Backend string
}

// Plan runs the paper's Cost_Optimizer heuristic on the design at TAM
// width w, serving wrapper staircases and TAM schedules from the
// design's cache session. The Result — including NEval — is
// bit-identical to a one-shot Plan call: caches only deduplicate
// deterministic work, and each call accounts its own evaluations.
func (e *Engine) Plan(ctx context.Context, d *Design, width int, w Weights) (*Result, error) {
	return e.PlanWith(ctx, d, width, w, PlanOptions{})
}

// PlanExhaustive is Plan with the exhaustive baseline solver.
func (e *Engine) PlanExhaustive(ctx context.Context, d *Design, width int, w Weights) (*Result, error) {
	return e.PlanWith(ctx, d, width, w, PlanOptions{Exhaustive: true})
}

// PlanWith is Plan with explicit solver options, the entry point the
// serving layer's bounded and batch requests use.
func (e *Engine) PlanWith(ctx context.Context, d *Design, width int, w Weights, opts PlanOptions) (*Result, error) {
	s, err := e.session(d)
	if err != nil {
		return nil, err
	}
	s.plans.Add(1)
	e.plans.Add(1)
	pl, err := s.planner(width, w, e.workers(), opts.Backend)
	if err != nil {
		return nil, err
	}
	pl.Bounded = opts.Bounded
	if opts.Exhaustive {
		return pl.ExhaustiveContext(ctx)
	}
	return pl.CostOptimizerContext(ctx)
}

// Schedule returns the packed TAM schedule for one sharing
// configuration at width w, served from (and cached in) the design's
// session. The returned schedule is shared and must be treated as
// read-only.
func (e *Engine) Schedule(ctx context.Context, d *Design, p partition.Partition, width int) (*tam.Schedule, error) {
	s, err := e.session(d)
	if err != nil {
		return nil, err
	}
	s.plans.Add(1)
	e.plans.Add(1)
	ev := NewSharedEvaluator(s.design, width, s.sweepCache(width, ""))
	ev.Staircases = s.sweepStairs(width)
	ev.Digital, ev.DigitalKey = s.sweepDigital()
	return ev.ScheduleContext(ctx, p)
}

// Sweep solves the planning problem across TAM widths and weight
// settings against the design's cache session; see SweepWithContext
// for the cancellation contract. Cold sweeps read and populate the
// session's schedule caches (bit-identical to one-shot SweepWith);
// WarmStart sweeps draw only the staircase cache, keeping the shared
// schedule caches strictly cold.
func (e *Engine) Sweep(ctx context.Context, d *Design, widths []int, weights []Weights, opt SweepOptions) ([]SweepPoint, error) {
	s, err := e.session(d)
	if err != nil {
		return nil, err
	}
	s.plans.Add(1)
	e.plans.Add(1)
	if opt.Workers == 0 {
		opt.Workers = e.workers()
	}
	return sweepWithCaches(ctx, s.design, widths, weights, opt, s)
}

// DesignInfo describes one live cache session of an Engine.
type DesignInfo struct {
	// Hash is the design's content hash, the session key.
	Hash string `json:"hash"`
	// Name is the display name the design was first registered under.
	Name string `json:"name"`
	// Plans counts the planning calls served for this design.
	Plans uint64 `json:"plans"`
	// Widths lists the TAM widths with a live schedule cache, ascending.
	Widths []int `json:"widths,omitempty"`
	// Schedules is the total number of cached TAM schedules.
	Schedules int `json:"schedules"`
}

// Designs lists the engine's live cache sessions, most recently used
// first.
func (e *Engine) Designs() []DesignInfo {
	e.mu.Lock()
	sessions := make([]*engineSession, 0, len(e.sessions))
	for _, s := range e.sessions {
		sessions = append(sessions, s)
	}
	sort.Slice(sessions, func(a, b int) bool { return sessions[a].lastUse > sessions[b].lastUse })
	e.mu.Unlock()

	out := make([]DesignInfo, 0, len(sessions))
	for _, s := range sessions {
		info := DesignInfo{Hash: s.hash, Name: s.design.Name, Plans: s.plans.Load()}
		s.mu.Lock()
		widths := map[int]bool{}
		for k, c := range s.byWidth {
			// A width planned under several backends holds one cache per
			// backend but lists once.
			if !widths[k.width] {
				widths[k.width] = true
				info.Widths = append(info.Widths, k.width)
			}
			info.Schedules += c.cache.Len()
		}
		s.mu.Unlock()
		sort.Ints(info.Widths)
		out = append(out, info)
	}
	return out
}

// EngineMetrics aggregates an Engine's cache counters.
type EngineMetrics struct {
	// Designs is the number of live cache sessions.
	Designs int `json:"designs"`
	// DesignHits counts calls served by an existing session; a miss
	// created one.
	DesignHits uint64 `json:"design_hits"`
	// DesignMisses counts sessions created.
	DesignMisses uint64 `json:"design_misses"`
	// Evictions counts sessions dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Schedule aggregates the hit/miss counters of every live schedule
	// cache: a miss ran the TAM optimizer, a hit reused a packing.
	Schedule CacheStats `json:"schedule"`
	// ScheduleTotal is the engine-lifetime schedule counter: live caches
	// plus every cache the LRU bounds evicted. Unlike Schedule it never
	// decreases, which is what a Prometheus counter scrape needs.
	ScheduleTotal CacheStats `json:"schedule_total"`
	// Schedules is the total number of cached TAM schedules.
	Schedules int `json:"schedules"`
	// ModuleStairs counts how the cross-design staircase store served
	// module staircase requests: a miss designed a wrapper (or grew an
	// entry), a hit reused one — including hits between sessions of
	// near-duplicate designs. Zero when the module cache is disabled.
	ModuleStairs CacheStats `json:"module_stairs"`
	// ModuleStairEntries is the number of distinct module content hashes
	// the staircase store currently holds.
	ModuleStairEntries int `json:"module_stair_entries"`
	// DigitalJobs counts how the cross-design digital-jobs cache served
	// job-slice requests, one per (design, width) evaluator spin-up.
	DigitalJobs CacheStats `json:"digital_jobs"`
	// DigitalJobEntries is the number of (digital SOC, width) job slices
	// currently cached.
	DigitalJobEntries int `json:"digital_job_entries"`
	// Plans is the engine-lifetime count of planning calls (Plan,
	// PlanExhaustive, Schedule, Sweep), across live and evicted sessions.
	Plans uint64 `json:"plans"`
	// BackendPacks counts TAM packs routed through an explicitly
	// selected packing backend, by backend name (tournament packs count
	// once per participating backend). Nil until a backend-routed pack
	// happens, so default-path responses keep their historical bytes;
	// default-path packs are the Schedule misses above.
	BackendPacks map[string]BackendPackStats `json:"backend_packs,omitempty"`
	// TournamentWins counts, per backend name, the tournament packs the
	// backend won (smallest makespan, ties to registry order). Nil until
	// a tournament runs.
	TournamentWins map[string]uint64 `json:"tournament_wins,omitempty"`
}

// Metrics returns the engine's cache counters. Schedule hit/miss
// numbers cover live width caches of live sessions only (evicted
// sessions and evicted widths take their counters with them);
// ScheduleTotal additionally folds in every evicted cache, so it is
// monotonic across the engine's lifetime.
func (e *Engine) Metrics() EngineMetrics {
	m := EngineMetrics{
		DesignHits:   e.designHits.Load(),
		DesignMisses: e.designMisses.Load(),
		Evictions:    e.evictions.Load(),
		Plans:        e.plans.Load(),
	}
	m.ModuleStairs.Hits, m.ModuleStairs.Misses = e.moduleStairs.Stats()
	m.ModuleStairEntries = e.moduleStairs.Len()
	m.DigitalJobs = e.digitalJobs.Stats()
	m.DigitalJobEntries = e.digitalJobs.Len()
	for name, c := range e.backends {
		if ok, errs := c.ok.Load(), c.errs.Load(); ok != 0 || errs != 0 {
			if m.BackendPacks == nil {
				m.BackendPacks = map[string]BackendPackStats{}
			}
			m.BackendPacks[name] = BackendPackStats{OK: ok, Errors: errs}
		}
		if wins := c.wins.Load(); wins != 0 {
			if m.TournamentWins == nil {
				m.TournamentWins = map[string]uint64{}
			}
			m.TournamentWins[name] = wins
		}
	}
	e.mu.Lock()
	m.ScheduleTotal = e.retired
	sessions := make([]*engineSession, 0, len(e.sessions))
	for _, s := range e.sessions {
		sessions = append(sessions, s)
	}
	e.mu.Unlock()
	m.Designs = len(sessions)
	for _, s := range sessions {
		s.mu.Lock()
		m.ScheduleTotal.Hits += s.retired.Hits
		m.ScheduleTotal.Misses += s.retired.Misses
		for _, c := range s.byWidth {
			st := c.cache.Stats()
			m.Schedule.Hits += st.Hits
			m.Schedule.Misses += st.Misses
			m.ScheduleTotal.Hits += st.Hits
			m.ScheduleTotal.Misses += st.Misses
			m.Schedules += c.cache.Len()
		}
		s.mu.Unlock()
	}
	return m
}

// String summarizes the engine for logs.
func (e *Engine) String() string {
	m := e.Metrics()
	return fmt.Sprintf("engine: %d designs, %d schedules cached, schedule hits/misses %d/%d",
		m.Designs, m.Schedules, m.Schedule.Hits, m.Schedule.Misses)
}
