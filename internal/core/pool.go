package core

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the evaluation concurrency used when a Planner (or
// an experiment grid) does not specify one: every available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach invokes fn(0..n-1), fanning the indices across at most workers
// goroutines. With workers <= 1 (or n <= 1) it degenerates to a plain
// sequential loop with no goroutine or allocation overhead. fn must be
// safe for concurrent use; callers make results deterministic by writing
// them into index i of a pre-sized slice and merging after ForEach
// returns. It is the fan-out primitive behind the parallel planner and
// the experiment grids.
func ForEach(n, workers int, fn func(i int)) { forEach(nil, n, workers, fn) }

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done
// no further index is dispatched (indices already running finish their
// fn call) and the context's error is returned. A nil ctx — and a ctx
// that never fires — makes it behave exactly like ForEach and return
// nil, so threading a context through a fan-out changes no result.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	forEach(ctx, n, workers, fn)
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func forEach(ctx context.Context, n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SplitWorkers divides a CPU budget between an outer grid of n
// concurrent tasks and the parallelism available inside each task, so
// nested fan-outs (grid cells that each run a parallel planner) do not
// oversubscribe the machine: outer*inner never exceeds total. With more
// grid cells than budget the inner level runs sequentially.
func SplitWorkers(total, n int) (outer, inner int) {
	if total < 1 {
		total = 1
	}
	if n < 1 {
		n = 1
	}
	outer = total
	if outer > n {
		outer = n
	}
	inner = total / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// incumbent is an atomically shared upper bound on the best cost found
// so far, used to skip speculative evaluations whose preliminary cost
// already cannot win. It only ever decreases.
type incumbent struct {
	bits atomic.Uint64
}

func newIncumbent(v float64) *incumbent {
	inc := &incumbent{}
	inc.bits.Store(math.Float64bits(v))
	return inc
}

func (inc *incumbent) load() float64 {
	return math.Float64frombits(inc.bits.Load())
}

// lower tightens the bound to v if v is smaller.
func (inc *incumbent) lower(v float64) {
	for {
		old := inc.bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if inc.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
