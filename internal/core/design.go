// Package core implements the paper's primary contribution: unified test
// planning for mixed-signal SOCs with wrapped analog cores.
//
// A Design couples a digital SOC (internal/itc02) with a set of analog
// cores (internal/analog). Given a SOC-level TAM width W and cost weights
// wT (test time) and wA (area overhead), the planner decides
//
//  1. which analog cores share analog test wrappers (a set partition),
//  2. the wrapper design for every digital core (internal/wrapper), and
//  3. a rectangle-packed TAM schedule (internal/tam) in which tests of
//     cores sharing a wrapper never overlap in time,
//
// minimizing the total cost C = wT·CT + wA·CA of Section 4, where CT is
// the SOC test time normalized to the all-cores-share-one-wrapper case
// (the most constrained schedule) and CA is the area-overhead cost of
// equation (1).
//
// Two solvers are provided: Exhaustive evaluates every candidate sharing
// configuration with the TAM optimizer, and CostOptimizer implements the
// pruning heuristic of Figure 3, which groups configurations by their
// degree of sharing, evaluates only the most promising member of each
// group, eliminates uncompetitive groups using preliminary costs built
// from area overheads and analog test-time lower bounds, and fully
// evaluates just the surviving groups.
package core

import (
	"fmt"

	"mixsoc/internal/analog"
	"mixsoc/internal/itc02"
	"mixsoc/internal/partition"
	"mixsoc/internal/tam"
)

// Design is a mixed-signal SOC: a digital SOC plus embedded analog cores.
type Design struct {
	Name    string
	Digital *itc02.SOC
	Analog  []*analog.Core
}

// Validate checks both halves of the design.
func (d *Design) Validate() error {
	if d == nil {
		return fmt.Errorf("core: nil design")
	}
	if d.Digital == nil {
		return fmt.Errorf("core: design %s has no digital SOC", d.Name)
	}
	if err := d.Digital.Validate(); err != nil {
		return err
	}
	names := map[string]bool{}
	for _, c := range d.Analog {
		if err := c.Validate(); err != nil {
			return err
		}
		if names[c.Name] {
			return fmt.Errorf("core: duplicate analog core name %q", c.Name)
		}
		names[c.Name] = true
	}
	return nil
}

// AnalogNames returns the analog core labels, for partition formatting.
func (d *Design) AnalogNames() []string { return analog.Names(d.Analog) }

// MinTAMWidth returns the smallest SOC-level TAM width the design can
// be scheduled at: analog test jobs have one fixed width (the test's
// TAM width), so the widest analog test sets the floor; digital wrapper
// staircases always start at width 1. Planning below this width cannot
// succeed, which is how the serving layer rejects such requests up
// front instead of surfacing a packer error.
func MinTAMWidth(d *Design) int {
	min := 1
	for _, c := range d.Analog {
		for _, t := range c.Tests {
			if t.TAMWidth > min {
				min = t.TAMWidth
			}
		}
	}
	return min
}

// AllShare returns the partition in which every analog core shares one
// wrapper, the normalization point for CT. With no analog cores it
// returns nil.
func (d *Design) AllShare() partition.Partition {
	if len(d.Analog) == 0 {
		return nil
	}
	g := make([]int, len(d.Analog))
	for i := range g {
		g[i] = i
	}
	return partition.Partition{g}
}

// NoShare returns the partition with one wrapper per analog core.
func (d *Design) NoShare() partition.Partition {
	p := make(partition.Partition, len(d.Analog))
	for i := range p {
		p[i] = []int{i}
	}
	return p
}

// Candidates enumerates the sharing configurations the planner will
// consider: partitions of the analog cores deduplicated for identical
// cores and filtered by the policy (nil defaults to the paper's policy).
func (d *Design) Candidates(policy partition.Policy) []partition.Partition {
	if policy == nil {
		policy = partition.PaperPolicy
	}
	return partition.Enumerate(len(d.Analog), analog.Classes(d.Analog), policy)
}

// BuildJobs converts the design into TAM scheduling jobs for the given
// sharing configuration:
//
//   - each digital core becomes one flexible job carrying its wrapper
//     staircase (Pareto widths up to the TAM width);
//   - each analog test becomes one fixed 1-option job (its time does not
//     shrink with extra wires) tagged with the serialization group of the
//     wrapper that serves its core. Tests of cores sharing a wrapper —
//     and the several tests of a single core, which occupy the same
//     wrapper — therefore never overlap in time.
func BuildJobs(d *Design, p partition.Partition, width int) ([]*tam.Job, error) {
	digital, err := DigitalJobs(d, width)
	if err != nil {
		return nil, err
	}
	return appendAnalogJobs(digital, d, p)
}
