package core

// Branch-and-bound support for the planner's opt-in Bounded mode: an
// admissible per-candidate cost lower bound derived from the wrapper
// staircases, cheap enough to evaluate without running the TAM packer.
//
// The bound on the makespan side is tam.AdmissibleLowerBound over the
// exact job set the packer would receive — the width-capacity floor
// (each job's cheapest usable wire-cycle area, summed and divided by
// the TAM width W), the longest single job, and the serialization
// floor of each analog wrapper group (every test behind one shared
// wrapper runs serially, so the busiest group's total cycles bound the
// makespan from below; this subsumes the analog LTB of equation 2).
// Dividing by the all-share time turns it into a CT lower bound, and
// adding the exact area term wA·CA — which needs no TAM run — makes it
// a cost lower bound:
//
//	wT·(100·LB/T_allshare) + wA·CA  ≤  wT·CT + wA·CA  =  Cost
//
// A candidate whose bound is ≥ the incumbent's cost therefore cannot
// *strictly* beat it, and the planner's incumbent only ever moves on a
// strict improvement — so pruning such candidates changes neither the
// best cost bits nor the selected configuration, only how many
// candidates get packed (NEval and Result.Pruned).

import (
	"mixsoc/internal/partition"
	"mixsoc/internal/tam"
)

// LowerBound returns the admissible cost lower bound Bounded mode
// prunes candidate p with, given the all-share normalization time: it
// never exceeds the cost a full TAM evaluation of p reports. Exported
// for the property suite that pins that admissibility across seeded
// designs; planning calls use the evaluator-cached equivalent.
func (pl *Planner) LowerBound(p partition.Partition, allShare int64) (float64, error) {
	cm, _, err := pl.defaults()
	if err != nil {
		return 0, err
	}
	ca, _, err := costParts(pl.Design, cm, p)
	if err != nil {
		return 0, err
	}
	jobs, err := BuildJobs(pl.Design, p, pl.Width)
	if err != nil {
		return 0, err
	}
	return pl.boundCost(jobs, ca, allShare), nil
}

// boundAt is LowerBound on the planner's hot path: it reuses the
// evaluator's cached digital job set (identical to a fresh BuildJobs —
// staircases are content-determined) and the candidate's already
// computed area term.
func (pl *Planner) boundAt(e *Evaluator, p partition.Partition, ca float64, allShare int64) (float64, error) {
	digital, err := e.digitalJobs()
	if err != nil {
		return 0, err
	}
	jobs, err := appendAnalogJobs(digital, pl.Design, p)
	if err != nil {
		return 0, err
	}
	return pl.boundCost(jobs, ca, allShare), nil
}

// boundCost folds a makespan lower bound over jobs into a cost lower
// bound at the planner's weights.
func (pl *Planner) boundCost(jobs []*tam.Job, ca float64, allShare int64) float64 {
	lb := tam.AdmissibleLowerBound(jobs, pl.Width)
	ctLB := 100 * float64(lb) / float64(allShare)
	return pl.Weights.Time*ctLB + pl.Weights.Area*ca
}
