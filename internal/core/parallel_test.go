package core

import (
	"reflect"
	"runtime"
	"testing"

	"mixsoc/internal/analog"
	"mixsoc/internal/itc02"
)

func planDesign() *Design {
	return &Design{Name: "p93791m", Digital: itc02.P93791(), Analog: analog.PaperCores()}
}

// The parallel engine must be an invisible optimization: for every
// solver, width and weight setting, a many-worker run returns a Result
// that is deeply identical — best configuration, costs, NEval,
// Evaluated order, everything — to the single-worker (sequential) run.
func TestParallelPlannersMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full planner grid in -short mode")
	}
	d := planDesign()
	for _, w := range []int{24, 40, 56} {
		for _, wt := range []Weights{EqualWeights, {Time: 0.25, Area: 0.75}} {
			seq := NewPlanner(d, w, wt)
			seq.Workers = 1
			par := NewPlanner(d, w, wt)
			par.Workers = 8

			exSeq, err := seq.Exhaustive()
			if err != nil {
				t.Fatal(err)
			}
			exPar, err := par.Exhaustive()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(exSeq, exPar) {
				t.Errorf("W=%d wT=%.2f: parallel Exhaustive differs from sequential:\nseq NEval=%d best=%+v\npar NEval=%d best=%+v",
					w, wt.Time, exSeq.NEval, exSeq.Best, exPar.NEval, exPar.Best)
			}

			hSeq, err := seq.CostOptimizer()
			if err != nil {
				t.Fatal(err)
			}
			hPar, err := par.CostOptimizer()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(hSeq, hPar) {
				t.Errorf("W=%d wT=%.2f: parallel CostOptimizer differs from sequential:\nseq NEval=%d best=%+v\npar NEval=%d best=%+v",
					w, wt.Time, hSeq.NEval, hSeq.Best, hPar.NEval, hPar.Best)
			}
		}
	}
}

// A shared schedule cache dedupes packing work across planners but must
// never change what a planner reports.
func TestSharedCacheDoesNotChangeResults(t *testing.T) {
	d := planDesign()
	lone := NewPlanner(d, 48, EqualWeights)
	res, err := lone.CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}

	cache := NewScheduleCache()
	warm := NewPlanner(d, 48, EqualWeights)
	warm.Cache = cache
	if _, err := warm.Exhaustive(); err != nil { // warm the cache fully
		t.Fatal(err)
	}
	shared := NewPlanner(d, 48, EqualWeights)
	shared.Cache = cache
	got, err := shared.CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, got) {
		t.Errorf("CostOptimizer over a pre-warmed shared cache differs:\nlone NEval=%d best=%+v\nshared NEval=%d best=%+v",
			res.NEval, res.Best, got.NEval, got.Best)
	}
}

// Sweep fans grid points across workers; the output must stay in
// weights-major order with every point identical to a sequential solve.
func TestSweepParallelDeterministic(t *testing.T) {
	d := planDesign()
	widths := []int{32, 48}
	weights := []Weights{EqualWeights, {Time: 0.75, Area: 0.25}}

	// Force a multi-worker pool even on a single-CPU machine so the
	// concurrent path is actually exercised (and raced under -race).
	old := runtime.GOMAXPROCS(4)
	points, err := Sweep(d, widths, weights, false, nil)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	i := 0
	for _, wt := range weights {
		for _, w := range widths {
			p := points[i]
			if p.Width != w || p.Weights != wt {
				t.Errorf("point %d: got (W=%d, wT=%.2f), want (W=%d, wT=%.2f)",
					i, p.Width, p.Weights.Time, w, wt.Time)
			}
			pl := NewPlanner(d, w, wt)
			pl.Workers = 1
			ref, err := pl.CostOptimizer()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, p.Result) {
				t.Errorf("point %d (W=%d, wT=%.2f): parallel sweep result differs from sequential", i, w, wt.Time)
			}
			i++
		}
	}
}

// Evaluator.Runs must count exactly the configurations requested through
// the counted API — prefetching must stay invisible to NEval.
func TestPrefetchDoesNotCount(t *testing.T) {
	d := planDesign()
	e := NewEvaluator(d, 32)
	p := d.AllShare()
	e.Prefetch(p)
	if e.Runs() != 0 {
		t.Fatalf("Runs = %d after Prefetch, want 0", e.Runs())
	}
	if _, err := e.TestTime(p); err != nil {
		t.Fatal(err)
	}
	if e.Runs() != 1 {
		t.Fatalf("Runs = %d after first counted use, want 1", e.Runs())
	}
	if _, err := e.TestTime(p); err != nil {
		t.Fatal(err)
	}
	if e.Runs() != 1 {
		t.Fatalf("Runs = %d after repeat use, want 1 (cached)", e.Runs())
	}
}
