package core

import (
	"context"
	"math"
	"testing"

	"mixsoc/internal/tam"
)

// nearDuplicate returns a copy of d with one digital module's pattern
// count bumped — a different DesignHash and DigitalHash, but all other
// modules content-identical to d's.
func nearDuplicate(t *testing.T, d *Design) *Design {
	t.Helper()
	nd, err := CloneDesign(d)
	if err != nil {
		t.Fatal(err)
	}
	nd.Name = d.Name + "-rev2"
	m := nd.Digital.Modules[len(nd.Digital.Modules)-1]
	if len(m.Tests) == 0 {
		t.Fatalf("module %d has no tests to perturb", m.ID)
	}
	m.Tests[0].Patterns++
	return nd
}

func TestModuleHashInvariants(t *testing.T) {
	d := paperDesign()
	m := d.Digital.Modules[1]
	h1, err := ModuleHash(m)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := CloneDesign(d)
	if err != nil {
		t.Fatal(err)
	}
	cm := clone.Digital.Modules[1]
	cm.ID += 1000
	cm.Name = "renamed"
	h2, err := ModuleHash(cm)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("ModuleHash depends on ID or name")
	}
	cm.Tests[0].Patterns++
	h3, err := ModuleHash(cm)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("ModuleHash ignores test content")
	}
}

func TestDigitalHashInvariants(t *testing.T) {
	d := paperDesign()
	h1, err := DigitalHash(d)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := CloneDesign(d)
	if err != nil {
		t.Fatal(err)
	}
	clone.Name = "other-display-name"
	clone.Digital.Name = "other-soc-name"
	clone.Analog = clone.Analog[:2] // analog content must not matter
	h2, err := DigitalHash(clone)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("DigitalHash depends on display names or analog cores")
	}
	nd := nearDuplicate(t, d)
	h3, err := DigitalHash(nd)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("DigitalHash ignores module content")
	}
}

// TestModuleCacheSharesAcrossSessions pins tentpole behavior: planning a
// near-duplicate design on the same engine hits the cross-design module
// caches (the two designs never share a session), and every result is
// bit-identical to a module-cache-disabled engine's.
func TestModuleCacheSharesAcrossSessions(t *testing.T) {
	a := paperDesign()
	b := nearDuplicate(t, a)

	shared := NewEngine(EngineOptions{Workers: 1})
	plain := NewEngine(EngineOptions{Workers: 1, DisableModuleCache: true})
	ctx := context.Background()
	for _, d := range []*Design{a, b} {
		for _, width := range []int{24, 32} {
			rs, err := shared.Plan(ctx, d, width, EqualWeights)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := plain.Plan(ctx, d, width, EqualWeights)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(rs.Best.Cost) != math.Float64bits(rp.Best.Cost) {
				t.Errorf("%s W=%d: module-cached cost %v != uncached %v", d.Name, width, rs.Best.Cost, rp.Best.Cost)
			}
			if rs.NEval != rp.NEval {
				t.Errorf("%s W=%d: module-cached NEval %d != uncached %d", d.Name, width, rs.NEval, rp.NEval)
			}
		}
	}

	m := shared.Metrics()
	if m.ModuleStairs.Hits == 0 {
		t.Error("near-duplicate design produced no module staircase hits")
	}
	if m.ModuleStairs.Misses == 0 || m.ModuleStairEntries == 0 {
		t.Errorf("staircase store never filled: %+v entries=%d", m.ModuleStairs, m.ModuleStairEntries)
	}
	// The perturbed module is a distinct entry; everything else is shared.
	if m.DesignMisses != 2 {
		t.Errorf("expected 2 sessions, got %d", m.DesignMisses)
	}

	pm := plain.Metrics()
	if pm.ModuleStairs.Hits != 0 || pm.ModuleStairs.Misses != 0 || pm.DigitalJobs.Hits != 0 {
		t.Errorf("disabled module cache still counted: %+v %+v", pm.ModuleStairs, pm.DigitalJobs)
	}
}

// TestDigitalJobsSharedAcrossAnalogVariants: two designs with the same
// digital SOC but different analog fits share built digital job slices
// under the engine's DigitalHash-keyed cache.
func TestDigitalJobsSharedAcrossAnalogVariants(t *testing.T) {
	a := paperDesign()
	b, err := CloneDesign(a)
	if err != nil {
		t.Fatal(err)
	}
	b.Name = "p93791m-fewer-analog"
	b.Analog = b.Analog[:3]

	e := NewEngine(EngineOptions{Workers: 1})
	ctx := context.Background()
	if _, err := e.Plan(ctx, a, 32, EqualWeights); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Plan(ctx, b, 32, EqualWeights); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.DigitalJobs.Hits == 0 {
		t.Errorf("analog variant rebuilt digital jobs: %+v", m.DigitalJobs)
	}
	if m.DigitalJobEntries == 0 {
		t.Error("digital-jobs cache holds no entries")
	}
}

// TestDigitalJobsCacheEviction: the entry cap holds, evicted entries
// just recompute, and repeated keys hit.
func TestDigitalJobsCacheEviction(t *testing.T) {
	c := NewDigitalJobsCache(2)
	d := paperDesign()
	builds := 0
	get := func(w int) {
		t.Helper()
		jobs, err := c.jobs("h", w, func() ([]*tam.Job, error) {
			builds++
			return DigitalJobs(d, w)
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) == 0 {
			t.Fatal("no digital jobs built")
		}
	}
	for _, w := range []int{16, 24, 32, 40} {
		get(w)
	}
	if c.Len() > 2 {
		t.Errorf("cache holds %d entries, cap 2", c.Len())
	}
	if builds != 4 {
		t.Errorf("distinct widths built %d times, want 4", builds)
	}
	before := builds
	get(40) // still resident: the most recent insert survives eviction
	if builds != before {
		t.Errorf("resident entry rebuilt (%d builds)", builds)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses != uint64(before) {
		t.Errorf("stats %+v, want hits>0 misses=%d", st, before)
	}
}
