package core

import (
	"fmt"
	"sort"
	"strings"
)

// Report renders a planning result as a human-readable text report: the
// decision, its cost breakdown, the runner-up configurations, and the
// evaluation accounting. It is what cmd/msoc-plan prints and what a
// test engineer would paste into a planning review.
func (r *Result) Report(d *Design) string {
	names := d.AnalogNames()
	var sb strings.Builder
	fmt.Fprintf(&sb, "test plan for %s (method: %s)\n", d.Name, r.Method)
	fmt.Fprintf(&sb, "==============================================\n")
	fmt.Fprintf(&sb, "wrapper sharing:   %s\n", r.Best.Label(names))
	fmt.Fprintf(&sb, "analog wrappers:   %d for %d cores\n", r.Best.Partition.Wrappers(), len(d.Analog))
	fmt.Fprintf(&sb, "SOC test time:     %d cycles\n", r.Best.TestTime)
	fmt.Fprintf(&sb, "  normalized CT:   %.1f (all-share = 100, %d cycles)\n", r.Best.CT, r.AllShare)
	fmt.Fprintf(&sb, "area overhead CA:  %.1f (no sharing = 100)\n", r.Best.CA)
	fmt.Fprintf(&sb, "total cost:        %.2f\n", r.Best.Cost)
	fmt.Fprintf(&sb, "TAM evaluations:   %d of %d candidates (%.1f%% saved)\n",
		r.NEval, r.Candidates, r.ReductionPercent())

	// Runner-up table: other evaluated configurations by cost.
	evs := append([]Evaluation(nil), r.Evaluated...)
	sort.Slice(evs, func(a, b int) bool { return evs[a].Cost < evs[b].Cost })
	n := len(evs)
	if n > 6 {
		n = 6
	}
	fmt.Fprintf(&sb, "\nbest evaluated configurations:\n")
	fmt.Fprintf(&sb, "  %-20s %8s %8s %8s\n", "sharing", "CT", "CA", "cost")
	for _, ev := range evs[:n] {
		marker := " "
		if ev.Cost == r.Best.Cost && ev.Label(names) == r.Best.Label(names) {
			marker = "*"
		}
		fmt.Fprintf(&sb, " %s%-20s %8.1f %8.1f %8.2f\n", marker, ev.Label(names), ev.CT, ev.CA, ev.Cost)
	}

	// Per-wrapper grouping details for the chosen plan.
	fmt.Fprintf(&sb, "\nwrapper assignments:\n")
	for gi, g := range r.Best.Partition {
		var cores []string
		var cycles int64
		for _, ci := range g {
			cores = append(cores, d.Analog[ci].Name)
			cycles += d.Analog[ci].TotalCycles()
		}
		kind := "dedicated"
		if len(g) > 1 {
			kind = "shared (tests serialized)"
		}
		fmt.Fprintf(&sb, "  wrapper %d: %-12s %s, %d cycles of use\n",
			gi, strings.Join(cores, "+"), kind, cycles)
	}
	return sb.String()
}
