package core

// The canonical JSON codec for Design and the content hash built on it.
// Both exist for the serving layer: an Engine keys its per-design cache
// sessions by DesignHash, so two requests carrying the same SOC — even
// as separately allocated (or separately parsed) values — land on the
// same staircase and schedule caches, and the HTTP API accepts inline
// designs in exactly the MarshalDesign format. The codec round-trips
// losslessly: Hertz frequencies are float64s and Go prints a float64 in
// the shortest decimal form that parses back to the same bits.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mixsoc/internal/analog"
	"mixsoc/internal/itc02"
)

// designJSON mirrors Design for the canonical codec. Field order is
// part of the canonical form (encoding/json emits struct fields in
// declaration order), so changing this struct changes every DesignHash.
type designJSON struct {
	Name    string           `json:"name,omitempty"`
	Digital socJSON          `json:"digital"`
	Analog  []analogCoreJSON `json:"analog,omitempty"`
}

type socJSON struct {
	Name    string       `json:"name"`
	Modules []moduleJSON `json:"modules"`
}

type moduleJSON struct {
	ID      int        `json:"id"`
	Name    string     `json:"name,omitempty"`
	Level   int        `json:"level"`
	Inputs  int        `json:"inputs"`
	Outputs int        `json:"outputs"`
	Bidirs  int        `json:"bidirs"`
	Scan    []int      `json:"scan,omitempty"`
	Tests   []testJSON `json:"tests,omitempty"`
}

type testJSON struct {
	ID       int  `json:"id"`
	Patterns int  `json:"patterns"`
	ScanUse  bool `json:"scan_use"`
	TamUse   bool `json:"tam_use"`
}

type analogCoreJSON struct {
	Name  string           `json:"name"`
	Kind  string           `json:"kind,omitempty"`
	Tests []analogTestJSON `json:"tests"`
}

type analogTestJSON struct {
	Name       string  `json:"name"`
	FinLow     float64 `json:"fin_low"`
	FinHigh    float64 `json:"fin_high"`
	Fsample    float64 `json:"fsample"`
	Cycles     int64   `json:"cycles"`
	TAMWidth   int     `json:"tam_width"`
	Resolution int     `json:"resolution"`
}

func toModuleJSON(m *itc02.Module) moduleJSON {
	mj := moduleJSON{
		ID:      m.ID,
		Name:    m.Name,
		Level:   m.Level,
		Inputs:  m.Inputs,
		Outputs: m.Outputs,
		Bidirs:  m.Bidirs,
		Scan:    m.Scan,
	}
	for _, t := range m.Tests {
		mj.Tests = append(mj.Tests, testJSON{ID: t.ID, Patterns: t.Patterns, ScanUse: t.ScanUse, TamUse: t.TamUse})
	}
	return mj
}

func toDesignJSON(d *Design) designJSON {
	out := designJSON{Name: d.Name}
	if d.Digital != nil {
		out.Digital.Name = d.Digital.Name
		out.Digital.Modules = make([]moduleJSON, len(d.Digital.Modules))
		for i, m := range d.Digital.Modules {
			out.Digital.Modules[i] = toModuleJSON(m)
		}
	}
	for _, c := range d.Analog {
		cj := analogCoreJSON{Name: c.Name, Kind: c.Kind}
		for _, t := range c.Tests {
			cj.Tests = append(cj.Tests, analogTestJSON{
				Name:       t.Name,
				FinLow:     float64(t.FinLow),
				FinHigh:    float64(t.FinHigh),
				Fsample:    float64(t.Fsample),
				Cycles:     t.Cycles,
				TAMWidth:   t.TAMWidth,
				Resolution: t.Resolution,
			})
		}
		out.Analog = append(out.Analog, cj)
	}
	return out
}

func fromDesignJSON(dj designJSON) *Design {
	d := &Design{Name: dj.Name, Digital: &itc02.SOC{Name: dj.Digital.Name}}
	for _, mj := range dj.Digital.Modules {
		m := &itc02.Module{
			ID:      mj.ID,
			Name:    mj.Name,
			Level:   mj.Level,
			Inputs:  mj.Inputs,
			Outputs: mj.Outputs,
			Bidirs:  mj.Bidirs,
			Scan:    mj.Scan,
		}
		for _, tj := range mj.Tests {
			m.Tests = append(m.Tests, itc02.Test{ID: tj.ID, Patterns: tj.Patterns, ScanUse: tj.ScanUse, TamUse: tj.TamUse})
		}
		d.Digital.Modules = append(d.Digital.Modules, m)
	}
	for _, cj := range dj.Analog {
		c := &analog.Core{Name: cj.Name, Kind: cj.Kind}
		for _, tj := range cj.Tests {
			c.Tests = append(c.Tests, analog.Test{
				Name:       tj.Name,
				FinLow:     analog.Hertz(tj.FinLow),
				FinHigh:    analog.Hertz(tj.FinHigh),
				Fsample:    analog.Hertz(tj.Fsample),
				Cycles:     tj.Cycles,
				TAMWidth:   tj.TAMWidth,
				Resolution: tj.Resolution,
			})
		}
		d.Analog = append(d.Analog, c)
	}
	return d
}

// MarshalDesign renders the design in its canonical JSON form, the
// wire format the HTTP planning service accepts for inline designs.
// The encoding is lossless: UnmarshalDesign(MarshalDesign(d)) plans
// bit-identically to d.
func MarshalDesign(d *Design) ([]byte, error) {
	if d == nil {
		return nil, fmt.Errorf("core: cannot marshal a nil design")
	}
	return json.Marshal(toDesignJSON(d))
}

// UnmarshalDesign parses a design from its canonical JSON form and
// validates it.
func UnmarshalDesign(data []byte) (*Design, error) {
	var dj designJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return nil, fmt.Errorf("core: bad design JSON: %w", err)
	}
	d := fromDesignJSON(dj)
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// CloneDesign deep-copies a design by a codec round trip, so the copy
// shares no pointers with the original. The Engine clones every design
// it admits: its cache sessions must not alias caller-owned modules a
// caller could mutate mid-flight.
func CloneDesign(d *Design) (*Design, error) {
	data, err := MarshalDesign(d)
	if err != nil {
		return nil, err
	}
	var dj designJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return nil, fmt.Errorf("core: clone round trip: %w", err)
	}
	return fromDesignJSON(dj), nil
}

// DesignHash returns the design's content hash: the hex SHA-256 of the
// canonical JSON of its digital modules and analog cores. The display
// name is excluded, so two identical SOCs registered under different
// names share one Engine cache session; any change to a module, scan
// chain, test, or analog core changes the hash.
func DesignHash(d *Design) (string, error) {
	if d == nil {
		return "", fmt.Errorf("core: cannot hash a nil design")
	}
	dj := toDesignJSON(d)
	dj.Name = ""
	data, err := json.Marshal(dj)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// ModuleHash returns a digital module's content hash: the hex SHA-256
// of its canonical JSON with the ID and display name zeroed. A wrapper
// staircase depends only on the module's pins, scan chains and tests —
// exactly what survives the zeroing — so two modules with equal hashes
// have bit-identical staircases at every width, which is what lets the
// Engine share staircase work across near-duplicate designs (see
// wrapper.ModuleStairStore).
func ModuleHash(m *itc02.Module) (string, error) {
	if m == nil {
		return "", fmt.Errorf("core: cannot hash a nil module")
	}
	mj := toModuleJSON(m)
	mj.ID = 0
	mj.Name = ""
	data, err := json.Marshal(mj)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// DigitalHash returns the content hash of the design's digital SOC: the
// hex SHA-256 of its canonical JSON with only the SOC display name
// excluded. Module IDs and names stay in — TAM job IDs derive from
// them — so two designs with equal digital hashes build bit-identical
// digital job slices at every width, the property the Engine's
// cross-design digital-jobs cache keys on (see DigitalJobsCache).
func DigitalHash(d *Design) (string, error) {
	if d == nil || d.Digital == nil {
		return "", fmt.Errorf("core: cannot hash a nil digital SOC")
	}
	dj := toDesignJSON(d)
	dj.Digital.Name = ""
	data, err := json.Marshal(dj.Digital)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
