package core

import (
	"bytes"
	"testing"
)

// The codec must round-trip the paper design losslessly: a second
// marshal of the decoded value reproduces the first byte for byte, and
// the decoded design hashes — and plans — identically.
func TestDesignCodecRoundTrip(t *testing.T) {
	d := warmTestDesign()
	data, err := MarshalDesign(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalDesign(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := MarshalDesign(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("codec round trip not stable:\n%s\nvs\n%s", data, data2)
	}
	h1, err := DesignHash(d)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := DesignHash(back)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("round trip changed the content hash: %s vs %s", h1, h2)
	}

	// The decoded design must plan bit-identically to the original.
	a, err := NewPlanner(d, 32, EqualWeights).CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlanner(back, 32, EqualWeights).CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Cost != b.Best.Cost || a.NEval != b.NEval ||
		a.Best.Partition.Key(nil) != b.Best.Partition.Key(nil) {
		t.Fatalf("decoded design plans differently: (%v, %d, %s) vs (%v, %d, %s)",
			a.Best.Cost, a.NEval, a.Best.Partition.Key(nil),
			b.Best.Cost, b.NEval, b.Best.Partition.Key(nil))
	}
}

// The content hash ignores the display name but reacts to any content
// change in the digital modules or analog cores.
func TestDesignHashSemantics(t *testing.T) {
	base := warmTestDesign()
	h0, err := DesignHash(base)
	if err != nil {
		t.Fatal(err)
	}

	renamed, err := CloneDesign(base)
	if err != nil {
		t.Fatal(err)
	}
	renamed.Name = "same-content-different-label"
	if h, _ := DesignHash(renamed); h != h0 {
		t.Error("renaming the design changed its content hash")
	}

	cases := map[string]func(*Design){
		"analog cycles":  func(d *Design) { d.Analog[0].Tests[0].Cycles++ },
		"scan chain":     func(d *Design) { d.Digital.Cores()[0].Scan[0]++ },
		"test patterns":  func(d *Design) { d.Digital.Cores()[0].Tests[0].Patterns++ },
		"dropped core":   func(d *Design) { d.Analog = d.Analog[:len(d.Analog)-1] },
		"analog tam use": func(d *Design) { d.Analog[1].Tests[0].TAMWidth++ },
	}
	for name, mutate := range cases {
		mutated, err := CloneDesign(base)
		if err != nil {
			t.Fatal(err)
		}
		mutate(mutated)
		h, err := DesignHash(mutated)
		if err != nil {
			t.Fatal(err)
		}
		if h == h0 {
			t.Errorf("%s: content change did not change the hash", name)
		}
	}

	// Clones share no pointers with the original.
	clone, err := CloneDesign(base)
	if err != nil {
		t.Fatal(err)
	}
	if clone.Digital == base.Digital || clone.Analog[0] == base.Analog[0] ||
		clone.Digital.Modules[0] == base.Digital.Modules[0] {
		t.Error("CloneDesign aliases the original")
	}
}

// Unmarshal rejects structurally invalid designs instead of letting
// them reach a planner.
func TestUnmarshalDesignValidates(t *testing.T) {
	if _, err := UnmarshalDesign([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Duplicate module IDs violate SOC invariants.
	bad := `{"digital":{"name":"x","modules":[{"id":1,"level":1,"inputs":1,"outputs":1,"bidirs":0},{"id":1,"level":1,"inputs":1,"outputs":1,"bidirs":0}]}}`
	if _, err := UnmarshalDesign([]byte(bad)); err == nil {
		t.Error("duplicate module IDs accepted")
	}
}
