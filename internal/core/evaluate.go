package core

import (
	"fmt"

	"mixsoc/internal/analog"
	"mixsoc/internal/partition"
	"mixsoc/internal/tam"
)

// Evaluator runs TAM optimizations for sharing configurations of one
// design at one TAM width, caching results by configuration. It counts
// the number of distinct TAM optimizer runs, the NEval metric of
// Table 4.
type Evaluator struct {
	Design *Design
	Width  int

	cache map[string]*tam.Schedule
	runs  int
}

// NewEvaluator returns an evaluator for the design at the given width.
func NewEvaluator(d *Design, width int) *Evaluator {
	return &Evaluator{Design: d, Width: width, cache: map[string]*tam.Schedule{}}
}

// Runs returns the number of TAM optimizer invocations so far (cache
// misses only).
func (e *Evaluator) Runs() int { return e.runs }

// Schedule returns the rectangle-packed schedule for configuration p,
// computing it on first use.
func (e *Evaluator) Schedule(p partition.Partition) (*tam.Schedule, error) {
	key := p.Key(nil)
	if s, ok := e.cache[key]; ok {
		return s, nil
	}
	jobs, err := BuildJobs(e.Design, p, e.Width)
	if err != nil {
		return nil, err
	}
	s, err := tam.Optimize(jobs, e.Width)
	if err != nil {
		return nil, err
	}
	e.runs++
	e.cache[key] = s
	return s, nil
}

// TestTime returns the SOC test time for configuration p in cycles.
func (e *Evaluator) TestTime(p partition.Partition) (int64, error) {
	s, err := e.Schedule(p)
	if err != nil {
		return 0, err
	}
	return s.Makespan, nil
}

// Evaluation is the full costing of one sharing configuration.
type Evaluation struct {
	Partition partition.Partition
	TestTime  int64   // SOC test time, cycles
	CT        float64 // test time normalized to the all-share case (≈ ≤ 100)
	CA        float64 // area-overhead cost of equation (1)
	Cost      float64 // wT·CT + wA·CA
	Prelim    float64 // preliminary cost wT·LTBnorm + wA·CA (equation 3)
}

// Label renders the configuration's shared groups as the paper does.
func (ev *Evaluation) Label(names []string) string {
	return ev.Partition.FormatShared(names)
}

// Weights are the cost weighting factors of Problem P_msoc.
type Weights struct {
	Time float64 // wT
	Area float64 // wA
}

// Validate enforces wT + wA = 1 with both non-negative.
func (w Weights) Validate() error {
	if w.Time < 0 || w.Area < 0 {
		return fmt.Errorf("core: negative cost weight %+v", w)
	}
	if d := w.Time + w.Area - 1; d > 1e-9 || d < -1e-9 {
		return fmt.Errorf("core: cost weights must sum to 1, got %v", w.Time+w.Area)
	}
	return nil
}

// EqualWeights is the balanced setting wT = wA = 0.5.
var EqualWeights = Weights{Time: 0.5, Area: 0.5}

// costParts computes everything about configuration p except the test
// time, which requires a TAM run.
func costParts(d *Design, cm analog.CostModel, p partition.Partition) (ca, ltbNorm float64, err error) {
	ca, err = cm.AreaOverheadPercent(d.Analog, p)
	if err != nil {
		return 0, 0, err
	}
	ltbNorm, err = analog.NormalizedLTB(d.Analog, p)
	if err != nil {
		return 0, 0, err
	}
	return ca, ltbNorm, nil
}
