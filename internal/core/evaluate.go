package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mixsoc/internal/analog"
	"mixsoc/internal/partition"
	"mixsoc/internal/tam"
	"mixsoc/internal/wrapper"
)

// ScheduleCache is a concurrency-safe store of TAM schedules keyed by
// sharing configuration, for one design at one TAM width. Sharing a
// cache between evaluators (e.g. across the weight settings of a Table 4
// sweep, or between an exhaustive and a heuristic run at the same width)
// deduplicates the packing work without changing any reported numbers:
// the TAM optimizer is deterministic, so a cached schedule is identical
// to a recomputed one, and each Evaluator still counts its own NEval.
//
// Cancellation never poisons the cache: a computation aborted by its
// caller's context is dropped rather than memoized, so the next request
// for the same configuration computes it afresh and every completed
// entry is one a cold call would have produced bit-identically.
type ScheduleCache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry

	hits, misses atomic.Uint64
}

type cacheEntry struct {
	done chan struct{} // closed once s/err are final
	s    *tam.Schedule
	err  error
}

// completed reports whether the entry's computation has finished.
func (e *cacheEntry) completed() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// NewScheduleCache returns an empty schedule cache.
func NewScheduleCache() *ScheduleCache {
	return &ScheduleCache{m: map[string]*cacheEntry{}}
}

// entry returns the entry for key, creating it if absent; owner reports
// whether this caller created it and therefore must compute it and
// close done. Waiters select on done against their own context, so one
// caller's slow computation never pins another caller past its
// deadline.
func (c *ScheduleCache) entry(key string) (e *cacheEntry, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e = c.m[key]
	if e == nil {
		e = &cacheEntry{done: make(chan struct{})}
		c.m[key] = e
		return e, true
	}
	return e, false
}

// Peek returns the already-computed schedule for key, or nil if the key
// has never been computed (or failed). It never blocks on an in-flight
// computation and never triggers one: warm-start chaining uses it to
// ask "did the previous width pack this configuration?" without
// perturbing the previous width's cache.
func (c *ScheduleCache) Peek(key string) *tam.Schedule {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	e := c.m[key]
	c.mu.Unlock()
	if e == nil || !e.completed() || e.err != nil {
		return nil
	}
	return e.s
}

// drop removes the entry for key if it is still the given one, so a
// computation aborted by context cancellation is forgotten instead of
// memoized. Idempotent under concurrent callers.
func (c *ScheduleCache) drop(key string, ent *cacheEntry) {
	c.mu.Lock()
	if c.m[key] == ent {
		delete(c.m, key)
	}
	c.mu.Unlock()
}

// Len returns the number of cached entries, completed or in flight.
func (c *ScheduleCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// CacheStats counts how schedule requests were served: a miss is a
// computation owned (the TAM optimizer ran, or the entry errored while
// building its jobs), a hit a result served from a completed or
// in-flight entry without computing. The serving layer exports these
// as its cache-efficiency metrics.
type CacheStats struct {
	// Hits is the number of requests served without a TAM run.
	Hits uint64 `json:"hits"`
	// Misses is the number of requests that ran the TAM optimizer.
	Misses uint64 `json:"misses"`
}

// Stats returns the cache's hit/miss counters.
func (c *ScheduleCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Evaluator runs TAM optimizations for sharing configurations of one
// design at one TAM width, caching results by configuration. It counts
// the number of distinct TAM optimizer runs, the NEval metric of
// Table 4. It is safe for concurrent use: parallel planners prefetch
// schedules through it (Prefetch does not count toward NEval) and a
// deterministic replay then accounts the runs in sequential order.
type Evaluator struct {
	Design *Design
	Width  int

	// Staircases, when non-nil, serves the digital cores' wrapper
	// staircases from a design-level cache shared across widths (see
	// wrapper.StaircaseCache); nil computes them from scratch. Set it
	// before the evaluator's first use.
	Staircases *wrapper.StaircaseCache

	// Digital, when non-nil together with a non-empty DigitalKey, serves
	// the design's digital TAM jobs from a cross-design cache keyed by
	// (DigitalKey, Width) — see DigitalJobsCache. DigitalKey must be the
	// design's DigitalHash. Set both before the evaluator's first use.
	Digital    *DigitalJobsCache
	DigitalKey string

	// Warm lists the schedule caches of adjacent TAM widths, nearest
	// first: configurations already packed there seed this evaluator's
	// TAM runs via tam.WithWarmStart, the best adoption winning (a
	// narrower width's schedule is adopted verbatim, a wider width's
	// re-placed in seed order). Set it before the evaluator's first use,
	// and only from sweep drivers whose source widths are complete —
	// Peek never blocks, so a racing source cache would make warm
	// seeding (not results, but timing) nondeterministic.
	Warm []*ScheduleCache

	// Packer, when non-nil, is the packing backend every TAM run goes
	// through; nil means the default occupancy backend (tam.Optimize),
	// preserving the historical behaviour bit-for-bit. When set, the
	// backing cache must be private to this backend (see
	// Engine.sweepCache's backend-tagged keys): entries carry no backend
	// tag of their own, so mixing backends in one cache would serve one
	// backend's schedule as another's. Set it before the evaluator's
	// first use.
	Packer tam.Packer

	cache *ScheduleCache

	mu      sync.Mutex
	counted map[string]bool
	runs    int

	// The digital cores' wrapper staircases are identical for every
	// sharing configuration, so they are designed once per evaluator and
	// shared by all schedules (the packer never mutates jobs).
	digOnce    sync.Once
	digital    []*tam.Job
	digitalErr error
}

// NewEvaluator returns an evaluator for the design at the given width
// with a private schedule cache.
func NewEvaluator(d *Design, width int) *Evaluator {
	return NewSharedEvaluator(d, width, nil)
}

// NewSharedEvaluator returns an evaluator backed by the given schedule
// cache; nil means a private cache. The cache must only be shared
// between evaluators of the same design and width.
func NewSharedEvaluator(d *Design, width int, cache *ScheduleCache) *Evaluator {
	if cache == nil {
		cache = NewScheduleCache()
	}
	return &Evaluator{Design: d, Width: width, cache: cache, counted: map[string]bool{}}
}

// Runs returns the number of TAM optimizer invocations accounted so far:
// distinct configurations requested through Schedule or TestTime.
// Prefetched schedules are not counted until (unless) they are requested.
func (e *Evaluator) Runs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runs
}

func (e *Evaluator) digitalJobs() ([]*tam.Job, error) {
	e.digOnce.Do(func() {
		e.digital, e.digitalErr = e.Digital.jobs(e.DigitalKey, e.Width, func() ([]*tam.Job, error) {
			return DigitalJobsWith(e.Design, e.Width, e.Staircases)
		})
	})
	return e.digital, e.digitalErr
}

// compute returns the schedule for (p, key), serving completed cache
// entries and computing missing ones single-flight: the caller that
// creates the entry packs it, everyone else waits on the entry OR
// their own context — whichever fires first — so a slow computation
// never pins a waiter past its deadline. A computation aborted by its
// owner's cancellation is dropped from the cache, never memoized; a
// live waiter that observes one retries with a fresh entry. The
// hit/miss counters record one miss per TAM run and one hit per
// result actually served from the cache.
func (e *Evaluator) compute(ctx context.Context, p partition.Partition, key string) (*tam.Schedule, error) {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done() // nil channel (nil ctx) blocks forever
	}
	for {
		ent, owner := e.cache.entry(key)
		if owner {
			e.cache.misses.Add(1)
			e.fill(ctx, p, key, ent)
		} else {
			select {
			case <-ent.done:
			case <-ctxDone:
				return nil, ctx.Err()
			}
		}
		if ent.err != nil && (errors.Is(ent.err, context.Canceled) || errors.Is(ent.err, context.DeadlineExceeded)) {
			e.cache.drop(key, ent)
			if ctx != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue // the owner's cancellation, not ours: recompute
		}
		if !owner && ent.err == nil {
			e.cache.hits.Add(1)
		}
		return ent.s, ent.err
	}
}

// fill packs the schedule for (p, key) into the owned entry and closes
// its done channel.
func (e *Evaluator) fill(ctx context.Context, p partition.Partition, key string, ent *cacheEntry) {
	defer close(ent.done)
	digital, err := e.digitalJobs()
	if err != nil {
		ent.err = err
		return
	}
	jobs, err := appendAnalogJobs(digital, e.Design, p)
	if err != nil {
		ent.err = err
		return
	}
	var opts []tam.Option
	for _, warm := range e.Warm {
		if seed := warm.Peek(key); seed != nil {
			opts = append(opts, tam.WithWarmStart(seed))
		}
	}
	if ctx != nil {
		opts = append(opts, tam.WithContext(ctx))
	}
	if e.Packer != nil {
		ent.s, ent.err = e.Packer.Pack(jobs, e.Width, opts...)
		return
	}
	ent.s, ent.err = tam.Optimize(jobs, e.Width, opts...)
}

// Schedule returns the rectangle-packed schedule for configuration p,
// computing it on first use anywhere (this evaluator or a shared cache)
// and counting it toward Runs on first use here.
func (e *Evaluator) Schedule(p partition.Partition) (*tam.Schedule, error) {
	return e.ScheduleContext(nil, p)
}

// ScheduleContext is Schedule under a context: the TAM packing loops
// poll ctx and the call returns ctx.Err() once it fires, with the
// aborted computation dropped from the cache rather than memoized. A
// nil ctx never cancels.
func (e *Evaluator) ScheduleContext(ctx context.Context, p partition.Partition) (*tam.Schedule, error) {
	key := p.Key(nil)
	s, err := e.compute(ctx, p, key)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if !e.counted[key] {
		e.counted[key] = true
		e.runs++
	}
	e.mu.Unlock()
	return s, nil
}

// Prefetch computes and caches the schedule for configuration p without
// counting it toward Runs. Parallel planners use it to warm the cache
// speculatively; errors are deliberately dropped here and resurface,
// deterministically, when the schedule is actually requested.
func (e *Evaluator) Prefetch(p partition.Partition) {
	e.PrefetchContext(nil, p)
}

// PrefetchContext is Prefetch under a context; a cancelled prefetch
// leaves no trace in the cache.
func (e *Evaluator) PrefetchContext(ctx context.Context, p partition.Partition) {
	_, _ = e.compute(ctx, p, p.Key(nil))
}

// scheduleUncounted is Prefetch returning its schedule: it computes and
// caches without touching Runs, for speculative cost probes.
func (e *Evaluator) scheduleUncounted(ctx context.Context, p partition.Partition) (*tam.Schedule, error) {
	return e.compute(ctx, p, p.Key(nil))
}

// TestTime returns the SOC test time for configuration p in cycles.
func (e *Evaluator) TestTime(p partition.Partition) (int64, error) {
	return e.TestTimeContext(nil, p)
}

// TestTimeContext is TestTime under a context; see ScheduleContext.
func (e *Evaluator) TestTimeContext(ctx context.Context, p partition.Partition) (int64, error) {
	s, err := e.ScheduleContext(ctx, p)
	if err != nil {
		return 0, err
	}
	return s.Makespan, nil
}

// DigitalJobs builds the TAM jobs of the design's digital cores: one
// flexible job per core carrying its wrapper staircase (Pareto widths up
// to the TAM width). The result is independent of the analog sharing
// configuration.
func DigitalJobs(d *Design, width int) ([]*tam.Job, error) {
	return DigitalJobsWith(d, width, nil)
}

// DigitalJobsWith is DigitalJobs drawing staircases from a design-level
// cache when sc is non-nil, so a width sweep designs each module's
// wrapper once instead of once per width.
func DigitalJobsWith(d *Design, width int, sc *wrapper.StaircaseCache) ([]*tam.Job, error) {
	if width < 1 {
		return nil, fmt.Errorf("core: TAM width %d < 1", width)
	}
	var jobs []*tam.Job
	for _, m := range d.Digital.Cores() {
		pts, err := sc.Pareto(m, width)
		if err != nil {
			return nil, err
		}
		if pts[0].Time == 0 {
			// A module whose test takes zero cycles (zero patterns, or
			// no scan and no functional pins) occupies no TAM time at
			// all; scheduling it would only produce a degenerate job
			// the packer rejects.
			continue
		}
		name := m.Name
		if name == "" {
			name = fmt.Sprintf("module%d", m.ID)
		}
		jobs = append(jobs, &tam.Job{ID: name, Options: pts})
	}
	return jobs, nil
}

// appendAnalogJobs returns a new job slice extending digital with one
// fixed job per analog test, tagged with the serialization group of the
// wrapper that serves its core under partition p. digital is not
// modified.
func appendAnalogJobs(digital []*tam.Job, d *Design, p partition.Partition) ([]*tam.Job, error) {
	if p.N() != len(d.Analog) {
		return nil, fmt.Errorf("core: partition covers %d cores, design has %d", p.N(), len(d.Analog))
	}
	jobs := make([]*tam.Job, len(digital), len(digital)+4*len(d.Analog))
	copy(jobs, digital)
	for gi, g := range p {
		group := fmt.Sprintf("wrapper%d", gi)
		for _, ci := range g {
			c := d.Analog[ci]
			for ti := range c.Tests {
				t := &c.Tests[ti]
				jobs = append(jobs, &tam.Job{
					ID:      fmt.Sprintf("%s/%s", c.Name, t.Name),
					Options: []wrapper.Point{{Width: t.TAMWidth, Time: t.Cycles}},
					Group:   group,
				})
			}
		}
	}
	return jobs, nil
}

// Evaluation is the full costing of one sharing configuration.
type Evaluation struct {
	Partition partition.Partition
	TestTime  int64   // SOC test time, cycles
	CT        float64 // test time normalized to the all-share case (≈ ≤ 100)
	CA        float64 // area-overhead cost of equation (1)
	Cost      float64 // wT·CT + wA·CA
	Prelim    float64 // preliminary cost wT·LTBnorm + wA·CA (equation 3)
}

// Label renders the configuration's shared groups as the paper does.
func (ev *Evaluation) Label(names []string) string {
	return ev.Partition.FormatShared(names)
}

// Weights are the cost weighting factors of Problem P_msoc.
type Weights struct {
	Time float64 // wT
	Area float64 // wA
}

// Validate enforces wT + wA = 1 with both non-negative.
func (w Weights) Validate() error {
	if w.Time < 0 || w.Area < 0 {
		return fmt.Errorf("core: negative cost weight %+v", w)
	}
	if d := w.Time + w.Area - 1; d > 1e-9 || d < -1e-9 {
		return fmt.Errorf("core: cost weights must sum to 1, got %v", w.Time+w.Area)
	}
	return nil
}

// EqualWeights is the balanced setting wT = wA = 0.5.
var EqualWeights = Weights{Time: 0.5, Area: 0.5}

// costParts computes everything about configuration p except the test
// time, which requires a TAM run.
func costParts(d *Design, cm analog.CostModel, p partition.Partition) (ca, ltbNorm float64, err error) {
	ca, err = cm.AreaOverheadPercent(d.Analog, p)
	if err != nil {
		return 0, 0, err
	}
	ltbNorm, err = analog.NormalizedLTB(d.Analog, p)
	if err != nil {
		return 0, 0, err
	}
	return ca, ltbNorm, nil
}
