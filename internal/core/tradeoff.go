package core

import (
	"context"
	"fmt"
	"slices"

	"mixsoc/internal/partition"
	"mixsoc/internal/tam"
	"mixsoc/internal/wrapper"
)

// SweepPoint is one solved planning instance of a trade-off sweep.
type SweepPoint struct {
	Width   int
	Weights Weights
	Result  *Result
}

// SweepOptions configures SweepWith.
type SweepOptions struct {
	// Exhaustive solves every point optimally; otherwise the
	// Cost_Optimizer heuristic runs.
	Exhaustive bool
	// WarmStart chains TAM packings across the width dimension: widths
	// are solved one at a time in the order the caller listed them, and
	// each width's packings are seeded from the nearest *completed*
	// width on either side — the best of the narrower and wider
	// candidates wins per configuration (tam.WithWarmStart) — so the
	// improve loop starts from a near-feasible schedule instead of
	// packing three orderings from scratch. For the common ascending
	// width list that degenerates to the classic "seed from the
	// previous narrower width" chain; other orders (say, widest first,
	// or middle-out) let wider completed widths seed narrower ones via
	// a guided re-pack. The chaining is deterministic — a width's
	// caches are complete before the next width starts — but
	// warm-started packing follows a different search trajectory than
	// cold packing, so makespans can differ slightly from a cold sweep
	// (in either direction; the polish loops are shared and monotone).
	// The paper tables therefore run cold; use WarmStart for wide
	// exploratory sweeps where throughput matters more than bit-exact
	// reproducibility.
	WarmStart bool
	// Bounded enables branch-and-bound pruning per grid point: each
	// planner skips packing candidates whose admissible cost lower
	// bound cannot beat its incumbent (see Planner.Bounded). Every
	// point's best cost and selection are bit-identical to an unbounded
	// sweep; NEval and Evaluated shrink to the survivors, with
	// Result.Pruned counting the skips.
	Bounded bool
	// Configure adjusts each planner before it runs, e.g. to change the
	// cost model; it must not change the planner's Design, Width, or
	// caches, and must be safe to call concurrently.
	Configure func(*Planner)
	// Workers bounds the sweep's total CPU budget; 0 means
	// DefaultWorkers.
	Workers int
	// Backend selects the packing backend by name for every grid point
	// (see PlanOptions.Backend). Empty is the default occupancy path —
	// bit-identical to a sweep before backends existed; an unknown name
	// fails the sweep before any point is solved.
	Backend string
	// Select, when non-nil, restricts the sweep to the grid points for
	// which it returns true — the hook a sharded runner uses to solve
	// only its cells of a larger (width, weights) grid. The returned
	// slice holds only the selected points, still in weights-major
	// order. In a cold sweep each selected point is bit-identical to
	// the corresponding point of an unrestricted sweep; with WarmStart
	// the chain runs over the selected widths only, each seeding from
	// the nearest completed *selected* width on either side, so a
	// point's makespan can differ from a full warm sweep's whenever the
	// selection changes its seeds (shard cold sweeps where exact
	// reproduction matters).
	// Schedule caches exist only for widths with at least one selected
	// point — an unselected width is never packed.
	Select func(width int, weights Weights) bool
}

// Sweep solves the planning problem across TAM widths and weight
// settings — the cost surface the paper's Table 4 explores — with the
// default options (cold packing). See SweepWith.
func Sweep(d *Design, widths []int, weights []Weights, exhaustive bool, configure func(*Planner)) ([]SweepPoint, error) {
	return SweepWith(d, widths, weights, SweepOptions{Exhaustive: exhaustive, Configure: configure})
}

// SweepWith solves the planning problem across TAM widths and weight
// settings. Grid points at the same TAM width share one schedule cache
// (test schedules do not depend on the cost weights), and the whole
// sweep shares one wrapper staircase cache (a module's staircase at a
// narrower width is a prefix of its staircase at a wider one), so no
// configuration is ever packed — and no wrapper ever designed — twice.
// The returned slice is ordered weights-major exactly as a sequential
// sweep.
//
// Without WarmStart the grid points fan out across the worker pool and
// the result is bit-identical to a sequential cold sweep. With
// WarmStart the width dimension runs one width at a time in the
// caller's order, each width seeded from the nearest completed widths
// (see SweepOptions.WarmStart). With Select only the chosen grid
// points are solved — and only their widths ever allocate a schedule
// cache or design a wrapper staircase.
func SweepWith(d *Design, widths []int, weights []Weights, opt SweepOptions) ([]SweepPoint, error) {
	return SweepWithContext(context.Background(), d, widths, weights, opt)
}

// SweepWithContext is SweepWith under a context: once ctx fires no new
// grid point is dispatched, the in-flight planners abort at their next
// cancellation point, and the call returns ctx.Err(). Schedules whose
// packing was aborted are dropped from the caches rather than memoized,
// so the sweep's caches stay consistent across a cancellation.
func SweepWithContext(ctx context.Context, d *Design, widths []int, weights []Weights, opt SweepOptions) ([]SweepPoint, error) {
	return sweepWithCaches(ctx, d, widths, weights, opt, nil)
}

// sweepCaches supplies the caches a sweep plans against. The default
// (nil) provider allocates fresh ones per sweep; an Engine session
// provides its long-lived per-design caches instead, so repeated
// sweeps over the same design reuse each other's packings.
type sweepCaches interface {
	// sweepStairs returns a staircase cache covering widths up to maxW.
	sweepStairs(maxW int) *wrapper.StaircaseCache
	// sweepCache returns the cold schedule cache for width w under the
	// named packing backend (empty = default); distinct backends must
	// get distinct caches.
	sweepCache(w int, backend string) *ScheduleCache
}

// sweepPackers is an optional extension of sweepCaches: providers that
// instrument packing (the engine's per-backend counters) resolve
// backend names themselves. Without it the sweep uses PackerFor.
type sweepPackers interface {
	sweepPacker(name string) (tam.Packer, error)
}

// sweepDigitalJobs is an optional extension of sweepCaches: providers
// that also share digital TAM-job construction across designs return
// their cache and the design's DigitalHash key here.
type sweepDigitalJobs interface {
	sweepDigital() (*DigitalJobsCache, string)
}

// sweepWithCaches is the sweep engine room. Schedule caches come from
// the provider only for cold sweeps: a WarmStart sweep packs along a
// different search trajectory, so its schedules must never enter a
// shared cold cache (they would break the bit-identity of later cold
// calls); it still shares the staircase cache, which is exact.
func sweepWithCaches(ctx context.Context, d *Design, widths []int, weights []Weights, opt SweepOptions, prov sweepCaches) ([]SweepPoint, error) {
	if len(widths) == 0 || len(weights) == 0 {
		return nil, fmt.Errorf("core: sweep needs at least one width and one weight setting")
	}
	workers := opt.Workers
	if workers < 1 {
		workers = DefaultWorkers()
	}
	selected := func(w int, wt Weights) bool {
		return opt.Select == nil || opt.Select(w, wt)
	}
	// Dense grid indices of the selected points, weights-major; the
	// staircase and schedule caches cover exactly the selected widths.
	keep := make([]int, 0, len(weights)*len(widths))
	keepSet := make(map[int]bool, len(weights)*len(widths))
	maxW := 0
	selWidths := make(map[int]bool, len(widths))
	for k, wt := range weights {
		for ci, w := range widths {
			if !selected(w, wt) {
				continue
			}
			keep = append(keep, k*len(widths)+ci)
			keepSet[k*len(widths)+ci] = true
			selWidths[w] = true
			maxW = max(maxW, w)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("core: sweep selection admits no grid points")
	}
	var (
		packer tam.Packer
		err    error
	)
	if pp, ok := prov.(sweepPackers); ok {
		packer, err = pp.sweepPacker(opt.Backend)
	} else {
		packer, err = PackerFor(opt.Backend)
	}
	if err != nil {
		return nil, err
	}
	var stairs *wrapper.StaircaseCache
	if prov != nil {
		stairs = prov.sweepStairs(maxW)
	} else {
		stairs = wrapper.NewStaircaseCache(maxW)
	}
	var (
		digCache *DigitalJobsCache
		digKey   string
	)
	if dp, ok := prov.(sweepDigitalJobs); ok {
		digCache, digKey = dp.sweepDigital()
	}
	caches := make(map[int]*ScheduleCache, len(selWidths))
	for w := range selWidths {
		if prov != nil && !opt.WarmStart {
			caches[w] = prov.sweepCache(w, opt.Backend)
		} else {
			caches[w] = NewScheduleCache()
		}
	}

	out := make([]SweepPoint, len(weights)*len(widths))
	errs := make([]error, len(out))
	solve := func(i int, warm []*ScheduleCache, inner int) {
		wt := weights[i/len(widths)]
		w := widths[i%len(widths)]
		pl := NewPlanner(d, w, wt)
		pl.Cache = caches[w]
		pl.Staircases = stairs
		pl.Digital, pl.DigitalKey = digCache, digKey
		pl.Warm = warm
		pl.Workers = inner
		pl.Bounded = opt.Bounded
		pl.Packer = packer
		if opt.Configure != nil {
			opt.Configure(pl)
		}
		var (
			res *Result
			err error
		)
		if opt.Exhaustive {
			res, err = pl.ExhaustiveContext(ctx)
		} else {
			res, err = pl.CostOptimizerContext(ctx)
		}
		if err != nil {
			errs[i] = fmt.Errorf("core: sweep W=%d wT=%.2f: %w", w, wt.Time, err)
			return
		}
		out[i] = SweepPoint{Width: w, Weights: wt, Result: res}
	}

	if !opt.WarmStart {
		outer, inner := SplitWorkers(workers, len(keep))
		forEach(ctx, len(keep), outer, func(j int) { solve(keep[j], nil, inner) })
	} else {
		// Selected widths in the caller's first-appearance order; each
		// width's caches complete before the next width starts, so every
		// Peek is deterministic, and every seed comes from a width that
		// actually packed. The seeds for a width are the caches of the
		// nearest completed width below and above it, nearest first
		// (narrower on an exact distance tie).
		order := make([]int, 0, len(selWidths))
		seen := make(map[int]bool, len(selWidths))
		for _, w := range widths {
			if selWidths[w] && !seen[w] {
				seen[w] = true
				order = append(order, w)
			}
		}
		outer, inner := SplitWorkers(workers, len(weights))
		completed := make([]int, 0, len(order))
		for _, w := range order {
			warm := warmSources(completed, w, caches)
			// Membership comes from the precomputed keep set, not a
			// re-invocation of opt.Select, which need not be safe for
			// concurrent use.
			forEach(ctx, len(weights), outer, func(k int) {
				for ci, cw := range widths {
					if cw == w && keepSet[k*len(widths)+ci] {
						solve(k*len(widths)+ci, warm, inner)
					}
				}
			})
			completed = append(completed, w)
		}
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(keep) == len(out) {
		return out, nil
	}
	pts := make([]SweepPoint, 0, len(keep))
	for _, i := range keep {
		pts = append(pts, out[i])
	}
	return pts, nil
}

// warmSources picks the warm-start seed caches for width w: the caches
// of the nearest completed width below and above it, nearest first,
// with the narrower width winning an exact distance tie.
func warmSources(completed []int, w int, caches map[int]*ScheduleCache) []*ScheduleCache {
	below, above := -1, -1
	for _, c := range completed {
		if c < w && (below < 0 || c > below) {
			below = c
		}
		if c > w && (above < 0 || c < above) {
			above = c
		}
	}
	switch {
	case below >= 0 && above >= 0:
		if w-below <= above-w {
			return []*ScheduleCache{caches[below], caches[above]}
		}
		return []*ScheduleCache{caches[above], caches[below]}
	case below >= 0:
		return []*ScheduleCache{caches[below]}
	case above >= 0:
		return []*ScheduleCache{caches[above]}
	}
	return nil
}

// WidthCurve returns the SOC test time of one fixed sharing
// configuration across TAM widths: the staircase a designer inspects to
// size the TAM. Times are non-increasing in W up to scheduling noise.
// The widths share one staircase cache, so the digital wrappers are
// designed once for the whole curve.
func WidthCurve(d *Design, p partition.Partition, widths []int) ([]int64, error) {
	return WidthCurveContext(context.Background(), d, p, widths)
}

// WidthCurveContext is WidthCurve under a context; the packing of each
// width polls ctx and the call returns ctx.Err() once it fires.
func WidthCurveContext(ctx context.Context, d *Design, p partition.Partition, widths []int) ([]int64, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("core: width curve needs widths")
	}
	stairs := wrapper.NewStaircaseCache(slices.Max(widths))
	out := make([]int64, len(widths))
	for i, w := range widths {
		ev := NewEvaluator(d, w)
		ev.Staircases = stairs
		t, err := ev.TestTimeContext(ctx, p)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// BestOver returns the sweep point with the lowest best-configuration
// cost, breaking ties toward narrower TAMs (cheaper wiring).
func BestOver(points []SweepPoint) (SweepPoint, error) {
	if len(points) == 0 {
		return SweepPoint{}, fmt.Errorf("core: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		c, bc := p.Result.Best.Cost, best.Result.Best.Cost
		if c < bc || (c == bc && p.Width < best.Width) {
			best = p
		}
	}
	return best, nil
}
