package core

import (
	"fmt"
	"slices"

	"mixsoc/internal/partition"
	"mixsoc/internal/wrapper"
)

// SweepPoint is one solved planning instance of a trade-off sweep.
type SweepPoint struct {
	Width   int
	Weights Weights
	Result  *Result
}

// SweepOptions configures SweepWith.
type SweepOptions struct {
	// Exhaustive solves every point optimally; otherwise the
	// Cost_Optimizer heuristic runs.
	Exhaustive bool
	// WarmStart chains TAM packings across the width dimension: widths
	// are solved in ascending order and every configuration packed at
	// one width seeds the packing of the same configuration at the next
	// width (tam.WithWarmStart), so the improve loop starts from a
	// near-feasible schedule instead of packing three orderings from
	// scratch. The chaining is deterministic — a width's caches are
	// complete before the next width starts — but warm-started packing
	// follows a different search trajectory than cold packing, so
	// makespans can differ slightly from a cold sweep (in either
	// direction; the polish loops are shared and monotone). The paper
	// tables therefore run cold; use WarmStart for wide exploratory
	// sweeps where throughput matters more than bit-exact
	// reproducibility.
	WarmStart bool
	// Configure adjusts each planner before it runs, e.g. to change the
	// cost model; it must not change the planner's Design, Width, or
	// caches, and must be safe to call concurrently.
	Configure func(*Planner)
	// Workers bounds the sweep's total CPU budget; 0 means
	// DefaultWorkers.
	Workers int
}

// Sweep solves the planning problem across TAM widths and weight
// settings — the cost surface the paper's Table 4 explores — with the
// default options (cold packing). See SweepWith.
func Sweep(d *Design, widths []int, weights []Weights, exhaustive bool, configure func(*Planner)) ([]SweepPoint, error) {
	return SweepWith(d, widths, weights, SweepOptions{Exhaustive: exhaustive, Configure: configure})
}

// SweepWith solves the planning problem across TAM widths and weight
// settings. Grid points at the same TAM width share one schedule cache
// (test schedules do not depend on the cost weights), and the whole
// sweep shares one wrapper staircase cache (a module's staircase at a
// narrower width is a prefix of its staircase at a wider one), so no
// configuration is ever packed — and no wrapper ever designed — twice.
// The returned slice is ordered weights-major exactly as a sequential
// sweep.
//
// Without WarmStart the grid points fan out across the worker pool and
// the result is bit-identical to a sequential cold sweep. With
// WarmStart the width dimension runs in ascending order so each width
// seeds the next (see SweepOptions.WarmStart).
func SweepWith(d *Design, widths []int, weights []Weights, opt SweepOptions) ([]SweepPoint, error) {
	if len(widths) == 0 || len(weights) == 0 {
		return nil, fmt.Errorf("core: sweep needs at least one width and one weight setting")
	}
	workers := opt.Workers
	if workers < 1 {
		workers = DefaultWorkers()
	}
	stairs := wrapper.NewStaircaseCache(slices.Max(widths))
	caches := make(map[int]*ScheduleCache, len(widths))
	for _, w := range widths {
		caches[w] = NewScheduleCache()
	}

	out := make([]SweepPoint, len(weights)*len(widths))
	errs := make([]error, len(out))
	solve := func(i int, warm *ScheduleCache, inner int) {
		wt := weights[i/len(widths)]
		w := widths[i%len(widths)]
		pl := NewPlanner(d, w, wt)
		pl.Cache = caches[w]
		pl.Staircases = stairs
		pl.Warm = warm
		pl.Workers = inner
		if opt.Configure != nil {
			opt.Configure(pl)
		}
		var (
			res *Result
			err error
		)
		if opt.Exhaustive {
			res, err = pl.Exhaustive()
		} else {
			res, err = pl.CostOptimizer()
		}
		if err != nil {
			errs[i] = fmt.Errorf("core: sweep W=%d wT=%.2f: %w", w, wt.Time, err)
			return
		}
		out[i] = SweepPoint{Width: w, Weights: wt, Result: res}
	}

	if !opt.WarmStart {
		outer, inner := SplitWorkers(workers, len(out))
		forEach(len(out), outer, func(i int) { solve(i, nil, inner) })
	} else {
		// Ascending unique widths; each width's caches complete before
		// the next width starts, so every Peek is deterministic.
		asc := slices.Clone(widths)
		slices.Sort(asc)
		asc = slices.Compact(asc)
		outer, inner := SplitWorkers(workers, len(weights))
		for wi, w := range asc {
			var warm *ScheduleCache
			if wi > 0 {
				warm = caches[asc[wi-1]]
			}
			forEach(len(weights), outer, func(k int) {
				for ci, cw := range widths {
					if cw == w {
						solve(k*len(widths)+ci, warm, inner)
					}
				}
			})
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WidthCurve returns the SOC test time of one fixed sharing
// configuration across TAM widths: the staircase a designer inspects to
// size the TAM. Times are non-increasing in W up to scheduling noise.
// The widths share one staircase cache, so the digital wrappers are
// designed once for the whole curve.
func WidthCurve(d *Design, p partition.Partition, widths []int) ([]int64, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("core: width curve needs widths")
	}
	stairs := wrapper.NewStaircaseCache(slices.Max(widths))
	out := make([]int64, len(widths))
	for i, w := range widths {
		ev := NewEvaluator(d, w)
		ev.Staircases = stairs
		t, err := ev.TestTime(p)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// BestOver returns the sweep point with the lowest best-configuration
// cost, breaking ties toward narrower TAMs (cheaper wiring).
func BestOver(points []SweepPoint) (SweepPoint, error) {
	if len(points) == 0 {
		return SweepPoint{}, fmt.Errorf("core: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		c, bc := p.Result.Best.Cost, best.Result.Best.Cost
		if c < bc || (c == bc && p.Width < best.Width) {
			best = p
		}
	}
	return best, nil
}
