package core

import (
	"fmt"
	"slices"

	"mixsoc/internal/partition"
	"mixsoc/internal/wrapper"
)

// SweepPoint is one solved planning instance of a trade-off sweep.
type SweepPoint struct {
	Width   int
	Weights Weights
	Result  *Result
}

// SweepOptions configures SweepWith.
type SweepOptions struct {
	// Exhaustive solves every point optimally; otherwise the
	// Cost_Optimizer heuristic runs.
	Exhaustive bool
	// WarmStart chains TAM packings across the width dimension: widths
	// are solved in ascending order and every configuration packed at
	// one width seeds the packing of the same configuration at the next
	// width (tam.WithWarmStart), so the improve loop starts from a
	// near-feasible schedule instead of packing three orderings from
	// scratch. The chaining is deterministic — a width's caches are
	// complete before the next width starts — but warm-started packing
	// follows a different search trajectory than cold packing, so
	// makespans can differ slightly from a cold sweep (in either
	// direction; the polish loops are shared and monotone). The paper
	// tables therefore run cold; use WarmStart for wide exploratory
	// sweeps where throughput matters more than bit-exact
	// reproducibility.
	WarmStart bool
	// Configure adjusts each planner before it runs, e.g. to change the
	// cost model; it must not change the planner's Design, Width, or
	// caches, and must be safe to call concurrently.
	Configure func(*Planner)
	// Workers bounds the sweep's total CPU budget; 0 means
	// DefaultWorkers.
	Workers int
	// Select, when non-nil, restricts the sweep to the grid points for
	// which it returns true — the hook a sharded runner uses to solve
	// only its cells of a larger (width, weights) grid. The returned
	// slice holds only the selected points, still in weights-major
	// order. In a cold sweep each selected point is bit-identical to
	// the corresponding point of an unrestricted sweep; with WarmStart
	// the chain runs over the selected widths only, each seeding from
	// the nearest narrower *selected* width, so a point's makespan can
	// differ from a full warm sweep's whenever the selection changes
	// its seed (shard cold sweeps where exact reproduction matters).
	// Schedule caches exist only for widths with at least one selected
	// point — an unselected width is never packed.
	Select func(width int, weights Weights) bool
}

// Sweep solves the planning problem across TAM widths and weight
// settings — the cost surface the paper's Table 4 explores — with the
// default options (cold packing). See SweepWith.
func Sweep(d *Design, widths []int, weights []Weights, exhaustive bool, configure func(*Planner)) ([]SweepPoint, error) {
	return SweepWith(d, widths, weights, SweepOptions{Exhaustive: exhaustive, Configure: configure})
}

// SweepWith solves the planning problem across TAM widths and weight
// settings. Grid points at the same TAM width share one schedule cache
// (test schedules do not depend on the cost weights), and the whole
// sweep shares one wrapper staircase cache (a module's staircase at a
// narrower width is a prefix of its staircase at a wider one), so no
// configuration is ever packed — and no wrapper ever designed — twice.
// The returned slice is ordered weights-major exactly as a sequential
// sweep.
//
// Without WarmStart the grid points fan out across the worker pool and
// the result is bit-identical to a sequential cold sweep. With
// WarmStart the width dimension runs in ascending order so each width
// seeds the next (see SweepOptions.WarmStart). With Select only the
// chosen grid points are solved — and only their widths ever allocate
// a schedule cache or design a wrapper staircase.
func SweepWith(d *Design, widths []int, weights []Weights, opt SweepOptions) ([]SweepPoint, error) {
	if len(widths) == 0 || len(weights) == 0 {
		return nil, fmt.Errorf("core: sweep needs at least one width and one weight setting")
	}
	workers := opt.Workers
	if workers < 1 {
		workers = DefaultWorkers()
	}
	selected := func(w int, wt Weights) bool {
		return opt.Select == nil || opt.Select(w, wt)
	}
	// Dense grid indices of the selected points, weights-major; the
	// staircase and schedule caches cover exactly the selected widths.
	keep := make([]int, 0, len(weights)*len(widths))
	keepSet := make(map[int]bool, len(weights)*len(widths))
	maxW := 0
	selWidths := make(map[int]bool, len(widths))
	for k, wt := range weights {
		for ci, w := range widths {
			if !selected(w, wt) {
				continue
			}
			keep = append(keep, k*len(widths)+ci)
			keepSet[k*len(widths)+ci] = true
			selWidths[w] = true
			maxW = max(maxW, w)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("core: sweep selection admits no grid points")
	}
	stairs := wrapper.NewStaircaseCache(maxW)
	caches := make(map[int]*ScheduleCache, len(selWidths))
	for w := range selWidths {
		caches[w] = NewScheduleCache()
	}

	out := make([]SweepPoint, len(weights)*len(widths))
	errs := make([]error, len(out))
	solve := func(i int, warm *ScheduleCache, inner int) {
		wt := weights[i/len(widths)]
		w := widths[i%len(widths)]
		pl := NewPlanner(d, w, wt)
		pl.Cache = caches[w]
		pl.Staircases = stairs
		pl.Warm = warm
		pl.Workers = inner
		if opt.Configure != nil {
			opt.Configure(pl)
		}
		var (
			res *Result
			err error
		)
		if opt.Exhaustive {
			res, err = pl.Exhaustive()
		} else {
			res, err = pl.CostOptimizer()
		}
		if err != nil {
			errs[i] = fmt.Errorf("core: sweep W=%d wT=%.2f: %w", w, wt.Time, err)
			return
		}
		out[i] = SweepPoint{Width: w, Weights: wt, Result: res}
	}

	if !opt.WarmStart {
		outer, inner := SplitWorkers(workers, len(keep))
		forEach(len(keep), outer, func(j int) { solve(keep[j], nil, inner) })
	} else {
		// Ascending unique selected widths; each width's caches complete
		// before the next width starts, so every Peek is deterministic,
		// and every seed comes from a width that actually packed.
		asc := make([]int, 0, len(selWidths))
		for w := range selWidths {
			asc = append(asc, w)
		}
		slices.Sort(asc)
		outer, inner := SplitWorkers(workers, len(weights))
		for wi, w := range asc {
			var warm *ScheduleCache
			if wi > 0 {
				warm = caches[asc[wi-1]]
			}
			// Membership comes from the precomputed keep set, not a
			// re-invocation of opt.Select, which need not be safe for
			// concurrent use.
			forEach(len(weights), outer, func(k int) {
				for ci, cw := range widths {
					if cw == w && keepSet[k*len(widths)+ci] {
						solve(k*len(widths)+ci, warm, inner)
					}
				}
			})
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if len(keep) == len(out) {
		return out, nil
	}
	pts := make([]SweepPoint, 0, len(keep))
	for _, i := range keep {
		pts = append(pts, out[i])
	}
	return pts, nil
}

// WidthCurve returns the SOC test time of one fixed sharing
// configuration across TAM widths: the staircase a designer inspects to
// size the TAM. Times are non-increasing in W up to scheduling noise.
// The widths share one staircase cache, so the digital wrappers are
// designed once for the whole curve.
func WidthCurve(d *Design, p partition.Partition, widths []int) ([]int64, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("core: width curve needs widths")
	}
	stairs := wrapper.NewStaircaseCache(slices.Max(widths))
	out := make([]int64, len(widths))
	for i, w := range widths {
		ev := NewEvaluator(d, w)
		ev.Staircases = stairs
		t, err := ev.TestTime(p)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// BestOver returns the sweep point with the lowest best-configuration
// cost, breaking ties toward narrower TAMs (cheaper wiring).
func BestOver(points []SweepPoint) (SweepPoint, error) {
	if len(points) == 0 {
		return SweepPoint{}, fmt.Errorf("core: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		c, bc := p.Result.Best.Cost, best.Result.Best.Cost
		if c < bc || (c == bc && p.Width < best.Width) {
			best = p
		}
	}
	return best, nil
}
