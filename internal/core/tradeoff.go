package core

import (
	"fmt"

	"mixsoc/internal/partition"
)

// SweepPoint is one solved planning instance of a trade-off sweep.
type SweepPoint struct {
	Width   int
	Weights Weights
	Result  *Result
}

// Sweep solves the planning problem across TAM widths and weight
// settings — the cost surface the paper's Table 4 explores. With
// exhaustive set, every point is solved optimally; otherwise the
// Cost_Optimizer heuristic runs. The configure hook (optional) adjusts
// each planner before it runs, e.g. to change the cost model; it must
// not change the planner's Design or Width (grid points at one width
// share a schedule cache) and must be safe to call concurrently.
//
// The grid points fan out across the worker pool, and points at the
// same TAM width share one schedule cache (test schedules do not depend
// on the cost weights), so no configuration is ever packed twice. The
// returned slice is ordered weights-major exactly as a sequential sweep.
func Sweep(d *Design, widths []int, weights []Weights, exhaustive bool, configure func(*Planner)) ([]SweepPoint, error) {
	if len(widths) == 0 || len(weights) == 0 {
		return nil, fmt.Errorf("core: sweep needs at least one width and one weight setting")
	}
	caches := make(map[int]*ScheduleCache, len(widths))
	for _, w := range widths {
		caches[w] = NewScheduleCache()
	}
	out := make([]SweepPoint, len(weights)*len(widths))
	errs := make([]error, len(out))
	outer, inner := SplitWorkers(DefaultWorkers(), len(out))
	forEach(len(out), outer, func(i int) {
		wt := weights[i/len(widths)]
		w := widths[i%len(widths)]
		pl := NewPlanner(d, w, wt)
		pl.Cache = caches[w]
		pl.Workers = inner
		if configure != nil {
			configure(pl)
		}
		var (
			res *Result
			err error
		)
		if exhaustive {
			res, err = pl.Exhaustive()
		} else {
			res, err = pl.CostOptimizer()
		}
		if err != nil {
			errs[i] = fmt.Errorf("core: sweep W=%d wT=%.2f: %w", w, wt.Time, err)
			return
		}
		out[i] = SweepPoint{Width: w, Weights: wt, Result: res}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WidthCurve returns the SOC test time of one fixed sharing
// configuration across TAM widths: the staircase a designer inspects to
// size the TAM. Times are non-increasing in W up to scheduling noise.
func WidthCurve(d *Design, p partition.Partition, widths []int) ([]int64, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("core: width curve needs widths")
	}
	out := make([]int64, len(widths))
	for i, w := range widths {
		t, err := NewEvaluator(d, w).TestTime(p)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// BestOver returns the sweep point with the lowest best-configuration
// cost, breaking ties toward narrower TAMs (cheaper wiring).
func BestOver(points []SweepPoint) (SweepPoint, error) {
	if len(points) == 0 {
		return SweepPoint{}, fmt.Errorf("core: empty sweep")
	}
	best := points[0]
	for _, p := range points[1:] {
		c, bc := p.Result.Best.Cost, best.Result.Best.Cost
		if c < bc || (c == bc && p.Width < best.Width) {
			best = p
		}
	}
	return best, nil
}
