package core

import (
	"math"
	"testing"

	"mixsoc/internal/tam"
)

// TestBoundedMatchesUnbounded pins the branch-and-bound contract on the
// paper design: for both solvers, across widths and weights, a Bounded
// run reports the same best cost bits and the same selected
// configuration as an unbounded run, with NEval + Pruned accounting for
// every candidate the unbounded run evaluated.
func TestBoundedMatchesUnbounded(t *testing.T) {
	d := paperDesign()
	for _, exhaustive := range []bool{false, true} {
		for _, width := range []int{16, 32} {
			for _, wt := range []float64{0.25, 0.5, 0.75} {
				solve := func(bounded bool) *Result {
					pl := NewPlanner(d, width, Weights{Time: wt, Area: 1 - wt})
					pl.Workers = 1
					pl.Bounded = bounded
					var (
						res *Result
						err error
					)
					if exhaustive {
						res, err = pl.Exhaustive()
					} else {
						res, err = pl.CostOptimizer()
					}
					if err != nil {
						t.Fatalf("exhaustive=%v W=%d wT=%v bounded=%v: %v", exhaustive, width, wt, bounded, err)
					}
					return res
				}
				plain, bounded := solve(false), solve(true)
				if math.Float64bits(plain.Best.Cost) != math.Float64bits(bounded.Best.Cost) {
					t.Errorf("exhaustive=%v W=%d wT=%v: bounded cost %v != unbounded %v",
						exhaustive, width, wt, bounded.Best.Cost, plain.Best.Cost)
				}
				if got, want := bounded.Best.Partition.Key(nil), plain.Best.Partition.Key(nil); got != want {
					t.Errorf("exhaustive=%v W=%d wT=%v: bounded selection %s != unbounded %s",
						exhaustive, width, wt, got, want)
				}
				if plain.Pruned != 0 {
					t.Errorf("unbounded run reports Pruned=%d", plain.Pruned)
				}
				if bounded.NEval > plain.NEval {
					t.Errorf("exhaustive=%v W=%d wT=%v: bounded NEval %d > unbounded %d",
						exhaustive, width, wt, bounded.NEval, plain.NEval)
				}
				if exhaustive && bounded.NEval+bounded.Pruned != plain.NEval {
					t.Errorf("exhaustive W=%d wT=%v: NEval %d + Pruned %d != candidate evaluations %d",
						width, wt, bounded.NEval, bounded.Pruned, plain.NEval)
				}
			}
		}
	}
}

// TestBoundedWorkerIndependence pins the prefetch/replay contract for
// Bounded mode: the worker count changes wall-clock only, never the
// Result — NEval, Pruned, Evaluated order, best bits.
func TestBoundedWorkerIndependence(t *testing.T) {
	d := paperDesign()
	for _, exhaustive := range []bool{false, true} {
		var base *Result
		for _, workers := range []int{1, 4} {
			pl := NewPlanner(d, 32, EqualWeights)
			pl.Workers = workers
			pl.Bounded = true
			var (
				res *Result
				err error
			)
			if exhaustive {
				res, err = pl.Exhaustive()
			} else {
				res, err = pl.CostOptimizer()
			}
			if err != nil {
				t.Fatalf("exhaustive=%v workers=%d: %v", exhaustive, workers, err)
			}
			if base == nil {
				base = res
				continue
			}
			if res.NEval != base.NEval || res.Pruned != base.Pruned {
				t.Errorf("exhaustive=%v workers=%d: NEval/Pruned %d/%d != single-worker %d/%d",
					exhaustive, workers, res.NEval, res.Pruned, base.NEval, base.Pruned)
			}
			if math.Float64bits(res.Best.Cost) != math.Float64bits(base.Best.Cost) {
				t.Errorf("exhaustive=%v workers=%d: cost %v != single-worker %v",
					exhaustive, workers, res.Best.Cost, base.Best.Cost)
			}
			if len(res.Evaluated) != len(base.Evaluated) {
				t.Errorf("exhaustive=%v workers=%d: %d evaluations != single-worker %d",
					exhaustive, workers, len(res.Evaluated), len(base.Evaluated))
			}
		}
	}
}

// TestLowerBoundAdmissible checks, for every feasible candidate of the
// paper design, that the exported cost lower bound never exceeds the
// fully evaluated cost — the inequality all bounded-mode equalities
// rest on.
func TestLowerBoundAdmissible(t *testing.T) {
	d := paperDesign()
	for _, width := range []int{16, 48} {
		pl := NewPlanner(d, width, EqualWeights)
		pl.Workers = 1
		res, err := pl.Exhaustive()
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range res.Evaluated {
			lb, err := pl.LowerBound(ev.Partition, res.AllShare)
			if err != nil {
				t.Fatal(err)
			}
			if lb > ev.Cost {
				t.Errorf("W=%d %s: lower bound %v exceeds cost %v",
					width, ev.Partition.Key(nil), lb, ev.Cost)
			}
		}
	}
}

// TestLowerBoundMatchesBuildJobs pins the hot-path bound against the
// exported one: the evaluator-cached digital jobs must produce the
// exact bound a fresh BuildJobs computes.
func TestLowerBoundMatchesBuildJobs(t *testing.T) {
	d := paperDesign()
	pl := NewPlanner(d, 24, EqualWeights)
	e := pl.evaluator()
	cm, policy, err := pl.defaults()
	if err != nil {
		t.Fatal(err)
	}
	allShare, err := e.TestTime(d.AllShare())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Candidates(policy) {
		if skip, err := infeasible(cm, d, p); err != nil || skip {
			continue
		}
		ca, _, err := costParts(d, cm, p)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := pl.boundAt(e, p, ca, allShare)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := pl.LowerBound(p, allShare)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(fast) != math.Float64bits(slow) {
			t.Errorf("%s: hot-path bound %v != BuildJobs bound %v", p.Key(nil), fast, slow)
		}
		jobs, err := BuildJobs(d, p, pl.Width)
		if err != nil {
			t.Fatal(err)
		}
		if lb := tam.AdmissibleLowerBound(jobs, pl.Width); lb <= 0 {
			t.Errorf("%s: degenerate makespan bound %d", p.Key(nil), lb)
		}
	}
}
