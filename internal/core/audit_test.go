package core

import (
	"testing"

	"mixsoc/internal/analog"
	"mixsoc/internal/itc02"
)

// These tests audit the planner against design shapes the paper
// benchmark never exercises — all-analog SOCs, single-module digital
// halves, and zero-test-time modules — which generated (internal/socgen)
// and uploaded SOCs can produce.

// analogPair returns two fresh paper cores (A and B) whose tests fit in
// narrow TAMs (max TAM width 4).
func analogPair() []*analog.Core {
	all := analog.PaperCores()
	return []*analog.Core{all[0], all[1]}
}

func TestPlanAllAnalogSOC(t *testing.T) {
	// Digital half is just the SOC module itself — no digital cores at
	// all. The planner must still partition and schedule the analog
	// tests.
	d := &Design{Name: "allanalog", Digital: itc02.NewSOC("allanalog"), Analog: analogPair()}
	if err := d.Validate(); err != nil {
		t.Fatalf("all-analog design invalid: %v", err)
	}
	for _, exhaustive := range []bool{false, true} {
		p := NewPlanner(d, 16, Weights{Time: 0.5, Area: 0.5})
		res, err := plan(p, exhaustive)
		if err != nil {
			t.Fatalf("exhaustive=%v: %v", exhaustive, err)
		}
		s, err := NewEvaluator(d, 16).Schedule(res.Best.Partition)
		if err != nil {
			t.Fatalf("exhaustive=%v schedule: %v", exhaustive, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("exhaustive=%v: schedule invalid: %v", exhaustive, err)
		}
		if s.Makespan <= 0 {
			t.Errorf("exhaustive=%v: makespan %d, want > 0", exhaustive, s.Makespan)
		}
	}
}

func TestPlanSingleDigitalModule(t *testing.T) {
	soc := itc02.NewSOC("one")
	soc.Modules = append(soc.Modules, &itc02.Module{
		ID: 1, Name: "solo", Inputs: 8, Outputs: 8,
		Scan:  []int{40, 40},
		Tests: []itc02.Test{{ID: 1, Patterns: 100, ScanUse: true, TamUse: true}},
	})
	d := &Design{Name: "onem", Digital: soc, Analog: analogPair()}
	if err := d.Validate(); err != nil {
		t.Fatalf("single-module design invalid: %v", err)
	}
	p := NewPlanner(d, 16, Weights{Time: 0.5, Area: 0.5})
	res, err := p.CostOptimizer()
	if err != nil {
		t.Fatalf("CostOptimizer: %v", err)
	}
	s, err := NewEvaluator(d, 16).Schedule(res.Best.Partition)
	if err != nil {
		t.Fatalf("ScheduleFor: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestZeroTimeModuleSkipped(t *testing.T) {
	// A valid module whose only test takes zero cycles (no patterns, no
	// scan load, no outputs) would become the degenerate staircase
	// {1, 0} that tam.Job.Validate rejects. DigitalJobsWith must skip
	// it: a zero-cycle test occupies no TAM time.
	soc := itc02.NewSOC("ghosts")
	soc.Modules = append(soc.Modules,
		&itc02.Module{
			ID: 1, Name: "real", Inputs: 8, Outputs: 8,
			Scan:  []int{40, 40},
			Tests: []itc02.Test{{ID: 1, Patterns: 100, ScanUse: true, TamUse: true}},
		},
		&itc02.Module{
			ID: 2, Name: "ghost", Inputs: 4,
			Tests: []itc02.Test{{ID: 1, Patterns: 0, TamUse: true}},
		},
	)
	if err := soc.Validate(); err != nil {
		t.Fatalf("zero-time SOC should be valid: %v", err)
	}
	jobs, err := DigitalJobs(&Design{Name: "g", Digital: soc}, 16)
	if err != nil {
		t.Fatalf("DigitalJobs: %v", err)
	}
	if len(jobs) != 1 || jobs[0].ID != "real" {
		t.Fatalf("jobs = %v, want only the real module", jobs)
	}

	d := &Design{Name: "gm", Digital: soc, Analog: analogPair()}
	p := NewPlanner(d, 16, Weights{Time: 0.5, Area: 0.5})
	res, err := p.CostOptimizer()
	if err != nil {
		t.Fatalf("planning with a zero-time module: %v", err)
	}
	s, err := NewEvaluator(d, 16).Schedule(res.Best.Partition)
	if err != nil {
		t.Fatalf("ScheduleFor: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestMinTAMWidth(t *testing.T) {
	if got := MinTAMWidth(paperDesign()); got != 10 {
		t.Errorf("MinTAMWidth(p93791m) = %d, want 10 (core D's converter test)", got)
	}
	digital := &Design{Name: "d", Digital: itc02.P93791()}
	if got := MinTAMWidth(digital); got != 1 {
		t.Errorf("MinTAMWidth(digital-only) = %d, want 1", got)
	}
}

// plan runs the requested solver.
func plan(p *Planner, exhaustive bool) (*Result, error) {
	if exhaustive {
		return p.Exhaustive()
	}
	return p.CostOptimizer()
}
