package core

import (
	"sync/atomic"
	"testing"
)

// TestSplitWorkersEdges pins the budget-splitting contract at its
// corners: outer*inner never exceeds the total budget, both levels are
// at least 1, and degenerate budgets (0, negative, 1) and degenerate
// grids (0 cells, more cells than budget) stay sane.
func TestSplitWorkersEdges(t *testing.T) {
	cases := []struct {
		total, n             int
		wantOuter, wantInner int
	}{
		{0, 5, 1, 1},  // zero CPU budget degrades to sequential
		{-3, 5, 1, 1}, // negative budget likewise
		{1, 5, 1, 1},  // one CPU: no parallelism anywhere
		{1, 0, 1, 1},  // one CPU, empty grid
		{8, 0, 1, 8},  // empty grid: all budget to the (vacuous) inner level
		{8, 1, 1, 8},  // one cell: all budget inside it
		{8, 4, 4, 2},  // even split
		{8, 3, 3, 2},  // uneven: inner gets the floor, never oversubscribes
		{4, 16, 4, 1}, // more cells than budget: inner sequential
		{3, 2, 2, 1},  // budget not divisible by outer
	}
	for _, c := range cases {
		outer, inner := SplitWorkers(c.total, c.n)
		if outer != c.wantOuter || inner != c.wantInner {
			t.Errorf("SplitWorkers(%d, %d) = (%d, %d), want (%d, %d)",
				c.total, c.n, outer, inner, c.wantOuter, c.wantInner)
		}
		if outer < 1 || inner < 1 {
			t.Errorf("SplitWorkers(%d, %d) = (%d, %d): a level below 1", c.total, c.n, outer, inner)
		}
		if budget := max(c.total, 1); outer*inner > budget {
			t.Errorf("SplitWorkers(%d, %d) = (%d, %d): oversubscribes %d CPUs", c.total, c.n, outer, inner, budget)
		}
	}
}

// TestForEachEdges covers the fan-out primitive where it degenerates:
// zero items, one item, non-positive worker counts, and more workers
// than items must all invoke fn exactly once per index.
func TestForEachEdges(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7} {
		for _, n := range []int{0, 1, 3, 8} {
			var calls atomic.Int64
			seen := make([]atomic.Bool, max(n, 1))
			ForEach(n, workers, func(i int) {
				calls.Add(1)
				if seen[i].Swap(true) {
					t.Errorf("workers=%d n=%d: index %d visited twice", workers, n, i)
				}
			})
			if int(calls.Load()) != n {
				t.Errorf("workers=%d n=%d: fn called %d times", workers, n, calls.Load())
			}
		}
	}
}
