package core

import (
	"strings"
	"testing"
)

func TestReport(t *testing.T) {
	d := paperDesign()
	res, err := NewPlanner(d, 32, EqualWeights).CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(d)
	for _, frag := range []string{
		"test plan for p93791m",
		"cost-optimizer",
		"wrapper sharing:",
		"TAM evaluations:",
		"best evaluated configurations:",
		"wrapper assignments:",
	} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q:\n%s", frag, rep)
		}
	}
	// The best row is starred.
	if !strings.Contains(rep, "*") {
		t.Error("best configuration not marked")
	}
	// Shared wrappers are labeled as serialized.
	if res.Best.Partition.Wrappers() < len(d.Analog) && !strings.Contains(rep, "serialized") {
		t.Error("shared wrapper not labeled serialized")
	}
}
