package core

import (
	"math"
	"strings"
	"testing"

	"fmt"

	"mixsoc/internal/analog"
	"mixsoc/internal/itc02"
	"mixsoc/internal/partition"
)

// paperDesign builds p93791m: the embedded digital benchmark plus the
// five analog cores of Table 2.
func paperDesign() *Design {
	return &Design{Name: "p93791m", Digital: itc02.P93791(), Analog: analog.PaperCores()}
}

func TestDesignValidate(t *testing.T) {
	d := paperDesign()
	if err := d.Validate(); err != nil {
		t.Fatalf("paper design invalid: %v", err)
	}
	var nilD *Design
	if err := nilD.Validate(); err == nil {
		t.Error("nil design validated")
	}
	if err := (&Design{Name: "x"}).Validate(); err == nil {
		t.Error("design without digital SOC validated")
	}
	dup := paperDesign()
	dup.Analog[1] = dup.Analog[0]
	if err := dup.Validate(); err == nil {
		t.Error("duplicate analog core names validated")
	}
}

func TestAllShareNoShare(t *testing.T) {
	d := paperDesign()
	as := d.AllShare()
	if as.Wrappers() != 1 || as.N() != 5 {
		t.Errorf("AllShare = %v", as)
	}
	ns := d.NoShare()
	if ns.Wrappers() != 5 || len(ns.SharedGroups()) != 0 {
		t.Errorf("NoShare = %v", ns)
	}
	empty := &Design{Digital: itc02.NewSOC("x")}
	if empty.AllShare() != nil {
		t.Error("AllShare of analog-free design should be nil")
	}
}

func TestCandidates(t *testing.T) {
	d := paperDesign()
	if got := len(d.Candidates(nil)); got != 26 {
		t.Errorf("paper candidates = %d, want 26", got)
	}
	if got := len(d.Candidates(partition.FullPolicy)); got != 35 {
		t.Errorf("full-policy candidates = %d, want 35 (36 minus no-share)", got)
	}
}

func TestBuildJobs(t *testing.T) {
	d := paperDesign()
	jobs, err := BuildJobs(d, d.AllShare(), 32)
	if err != nil {
		t.Fatal(err)
	}
	// 32 digital cores + 20 analog tests (6+6+3+3+2).
	if len(jobs) != 52 {
		t.Fatalf("jobs = %d, want 52", len(jobs))
	}
	var analogJobs, digitalJobs int
	groups := map[string]int{}
	for _, j := range jobs {
		if j.Group == "" {
			digitalJobs++
			if len(j.Options) < 2 {
				t.Errorf("digital job %s has a trivial staircase", j.ID)
			}
		} else {
			analogJobs++
			groups[j.Group]++
			if len(j.Options) != 1 {
				t.Errorf("analog job %s should have exactly one option", j.ID)
			}
		}
	}
	if digitalJobs != 32 || analogJobs != 20 {
		t.Errorf("digital=%d analog=%d, want 32/20", digitalJobs, analogJobs)
	}
	if len(groups) != 1 {
		t.Errorf("all-share should yield one group, got %v", groups)
	}

	// No-share: five groups, one per core (a core's own tests still
	// serialize on its private wrapper).
	jobs, err = BuildJobs(d, d.NoShare(), 32)
	if err != nil {
		t.Fatal(err)
	}
	groups = map[string]int{}
	for _, j := range jobs {
		if j.Group != "" {
			groups[j.Group]++
		}
	}
	if len(groups) != 5 {
		t.Errorf("no-share groups = %v, want 5", groups)
	}

	if _, err := BuildJobs(d, d.AllShare(), 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := BuildJobs(d, partition.Partition{{0, 1}}, 32); err == nil {
		t.Error("partial partition accepted")
	}
}

func TestWeights(t *testing.T) {
	if err := (Weights{0.5, 0.5}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Weights{0.25, 0.75}).Validate(); err != nil {
		t.Error(err)
	}
	for _, w := range []Weights{{0.5, 0.6}, {-0.1, 1.1}, {1.2, -0.2}, {0, 0}} {
		if err := w.Validate(); err == nil {
			t.Errorf("weights %+v validated", w)
		}
	}
}

func TestEvaluatorCachesAndCounts(t *testing.T) {
	d := paperDesign()
	e := NewEvaluator(d, 32)
	p := d.AllShare()
	t1, err := e.TestTime(p)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.TestTime(p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Errorf("cache returned different time: %d vs %d", t1, t2)
	}
	if e.Runs() != 1 {
		t.Errorf("Runs = %d, want 1 (second call cached)", e.Runs())
	}
}

func TestExhaustivePlan(t *testing.T) {
	d := paperDesign()
	pl := NewPlanner(d, 32, EqualWeights)
	res, err := pl.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if res.NEval != 26 {
		t.Errorf("exhaustive NEval = %d, want 26", res.NEval)
	}
	if res.Candidates != 26 || len(res.Evaluated) != 26 {
		t.Errorf("candidates=%d evaluated=%d, want 26/26", res.Candidates, len(res.Evaluated))
	}
	if res.Best.Cost <= 0 || res.Best.Cost > 100 {
		t.Errorf("best cost = %v, want in (0,100]", res.Best.Cost)
	}
	// The all-share configuration normalizes CT to 100 and can never be
	// strictly cheaper than the best.
	for _, ev := range res.Evaluated {
		if ev.Partition.Wrappers() == 1 && math.Abs(ev.CT-100) > 1e-9 {
			t.Errorf("all-share CT = %v, want 100", ev.CT)
		}
		if ev.Cost < res.Best.Cost {
			t.Errorf("missed better configuration %v", ev)
		}
	}
}

func TestCostOptimizerNearOptimal(t *testing.T) {
	d := paperDesign()
	for _, w := range []Weights{{0.5, 0.5}, {0.25, 0.75}, {0.75, 0.25}} {
		pl := NewPlanner(d, 32, w)
		ex, err := pl.Exhaustive()
		if err != nil {
			t.Fatal(err)
		}
		h, err := pl.CostOptimizer()
		if err != nil {
			t.Fatal(err)
		}
		if h.NEval >= ex.NEval {
			t.Errorf("w=%+v: heuristic NEval %d not below exhaustive %d", w, h.NEval, ex.NEval)
		}
		if h.NEval < 4 {
			t.Errorf("w=%+v: NEval %d below the 4-group lower bound", w, h.NEval)
		}
		if h.Best.Cost < ex.Best.Cost-1e-9 {
			t.Errorf("w=%+v: heuristic cost %v beats exhaustive %v (impossible)", w, h.Best.Cost, ex.Best.Cost)
		}
		// "near optimal": within 5% of the optimum on the paper design.
		if h.Best.Cost > ex.Best.Cost*1.05 {
			t.Errorf("w=%+v: heuristic cost %v more than 5%% above optimum %v", w, h.Best.Cost, ex.Best.Cost)
		}
		t.Logf("w=%+v: exhaustive %.1f (%s), heuristic %.1f (%s), NEval %d vs %d (%.1f%% saved)",
			w, ex.Best.Cost, ex.Best.Label(d.AnalogNames()),
			h.Best.Cost, h.Best.Label(d.AnalogNames()),
			ex.NEval, h.NEval, h.ReductionPercent())
	}
}

func TestCostOptimizerWithoutPrelimPrune(t *testing.T) {
	d := paperDesign()
	pl := NewPlanner(d, 32, EqualWeights)
	pl.PrunePrelim = false
	res, err := pl.CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	// Without member pruning, NEval = 4 reps + all remaining members of
	// surviving buckets; still well below 26 unless every bucket ties.
	if res.NEval > 26 {
		t.Errorf("NEval = %d > 26", res.NEval)
	}
}

func TestEpsilonRelaxation(t *testing.T) {
	d := paperDesign()
	tight := NewPlanner(d, 32, EqualWeights)
	loose := NewPlanner(d, 32, EqualWeights)
	loose.Epsilon = 100 // keep every bucket
	loose.PrunePrelim = false
	rt, err := tight.CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	rl, err := loose.CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	if rl.NEval < rt.NEval {
		t.Errorf("looser ε evaluated fewer configurations: %d < %d", rl.NEval, rt.NEval)
	}
	// With every bucket kept and no pruning, the heuristic degenerates to
	// exhaustive search and must find the optimum.
	ex, err := tight.Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rl.Best.Cost-ex.Best.Cost) > 1e-9 {
		t.Errorf("ε=100 heuristic cost %v != exhaustive %v", rl.Best.Cost, ex.Best.Cost)
	}
	if rl.NEval != ex.NEval {
		t.Errorf("ε=100 heuristic NEval %v != exhaustive %v", rl.NEval, ex.NEval)
	}
}

func TestPlannerSkipsInfeasibleCandidates(t *testing.T) {
	d := paperDesign()
	cm := analog.DefaultCostModel()
	// C (12-bit) cannot share with anything fast: groups whose merged
	// requirements exceed 10 bits AND 20 MHz are out.
	cm.Feasible = analog.SpeedResolutionRule(20*analog.MHz, 10)

	for _, solve := range []struct {
		name string
		run  func(*Planner) (*Result, error)
	}{
		{"exhaustive", (*Planner).Exhaustive},
		{"cost-optimizer", (*Planner).CostOptimizer},
	} {
		t.Run(solve.name, func(t *testing.T) {
			pl := NewPlanner(d, 32, EqualWeights)
			pl.CostModel = cm
			res, err := solve.run(pl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Infeasible == 0 {
				t.Error("no candidates marked infeasible")
			}
			// The winner must not pair C with a fast core.
			for _, g := range res.Best.Partition.SharedGroups() {
				hasC, hasFast := false, false
				for _, ci := range g {
					switch d.Analog[ci].Name {
					case "C":
						hasC = true
					case "D", "E", "A", "B":
						if d.Analog[ci].MaxFsample() > 20*analog.MHz {
							hasFast = true
						}
					}
				}
				if hasC && hasFast {
					t.Errorf("infeasible group selected: %v", res.Best.Label(d.AnalogNames()))
				}
			}
			t.Logf("%s: %d infeasible skipped, best %s", solve.name,
				res.Infeasible, res.Best.Label(d.AnalogNames()))
		})
	}

	// A rule that rejects everything shared leaves no candidates under
	// the paper policy (which excludes no-sharing).
	all := cm
	all.Feasible = func([]*analog.Core) error { return fmt.Errorf("nothing may share") }
	pl := NewPlanner(d, 32, EqualWeights)
	pl.CostModel = all
	if _, err := pl.Exhaustive(); err == nil {
		t.Error("fully infeasible candidate set accepted")
	}
	if _, err := pl.CostOptimizer(); err == nil {
		t.Error("fully infeasible candidate set accepted by heuristic")
	}
}

func TestPlannerRejectsBadInput(t *testing.T) {
	d := paperDesign()
	bad := NewPlanner(d, 32, Weights{0.9, 0.9})
	if _, err := bad.Exhaustive(); err == nil {
		t.Error("bad weights accepted")
	}
	if _, err := bad.CostOptimizer(); err == nil {
		t.Error("bad weights accepted by heuristic")
	}
	noAnalog := NewPlanner(&Design{Digital: itc02.P93791()}, 32, EqualWeights)
	if _, err := noAnalog.Exhaustive(); err == nil {
		t.Error("analog-free design accepted")
	}
	narrow := NewPlanner(d, 4, EqualWeights) // core D needs 10 wires
	if _, err := narrow.Exhaustive(); err == nil {
		t.Error("TAM narrower than an analog test accepted")
	}
}

func TestScheduleSerializesSharedWrappers(t *testing.T) {
	d := paperDesign()
	e := NewEvaluator(d, 48)
	p := partition.Partition{{0, 1, 4}, {2, 3}} // {A,B,E}{C,D}
	s, err := e.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	spans := s.GroupSpans()
	if len(spans) != 2 {
		t.Fatalf("groups = %d, want 2", len(spans))
	}
	for g, sp := range spans {
		for i := 1; i < len(sp); i++ {
			if sp[i][0] < sp[i-1][1] {
				t.Errorf("group %s spans overlap: %v", g, sp)
			}
		}
	}
	if !strings.Contains(s.Gantt(60), "TAM width 48") {
		t.Error("gantt rendering broken")
	}
}

func TestEvaluationLabel(t *testing.T) {
	d := paperDesign()
	ev := Evaluation{Partition: partition.Partition{{0, 1}, {2}, {3}, {4}}}
	if got := ev.Label(d.AnalogNames()); got != "{A,B}" {
		t.Errorf("Label = %q", got)
	}
}

func BenchmarkExhaustiveW32(b *testing.B) {
	d := paperDesign()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlanner(d, 32, EqualWeights).Exhaustive(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCostOptimizerW32(b *testing.B) {
	d := paperDesign()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPlanner(d, 32, EqualWeights).CostOptimizer(); err != nil {
			b.Fatal(err)
		}
	}
}
