package core

// The cross-design digital-jobs cache: the second half of the Engine's
// module-level caching (the first, wrapper.ModuleStairStore, shares
// staircases module by module). Building a design's digital TAM jobs is
// deterministic in (digital SOC content, TAM width), so designs that
// share a digital SOC — the same chip planned against different analog
// fits, or re-uploads of one SOC under new names — can share the built
// job slices outright. Jobs are shared read-only, the same contract the
// packer already honors for the staircase points inside them.

import (
	"sync"
	"sync/atomic"

	"mixsoc/internal/tam"
)

// DigitalJobsCache deduplicates digital TAM-job construction across
// designs, keyed by (digital content hash, TAM width). Construction is
// single-flight per key: concurrent requesters wait for the one builder
// rather than duplicate the wrapper-design work. Safe for concurrent
// use; a nil cache (or empty key) builds from scratch.
type DigitalJobsCache struct {
	maxEntries int

	hits, misses atomic.Uint64

	mu sync.Mutex
	m  map[digitalJobsKey]*digitalJobsEntry
}

type digitalJobsKey struct {
	hash  string
	width int
}

type digitalJobsEntry struct {
	done chan struct{} // closed once jobs/err are final
	jobs []*tam.Job
	err  error
}

// NewDigitalJobsCache returns a cache keeping at most maxEntries
// (hash, width) job slices; an arbitrary other entry is evicted past
// the cap.
func NewDigitalJobsCache(maxEntries int) *DigitalJobsCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &DigitalJobsCache{maxEntries: maxEntries, m: map[digitalJobsKey]*digitalJobsEntry{}}
}

// jobs returns the digital job slice for (hash, width), building it
// with build on first use. The returned slice and the jobs in it are
// shared and must be treated as read-only.
func (c *DigitalJobsCache) jobs(hash string, width int, build func() ([]*tam.Job, error)) ([]*tam.Job, error) {
	if c == nil || hash == "" {
		return build()
	}
	k := digitalJobsKey{hash: hash, width: width}
	c.mu.Lock()
	e := c.m[k]
	if e == nil {
		e = &digitalJobsEntry{done: make(chan struct{})}
		c.m[k] = e
		c.evictLocked(k)
		c.mu.Unlock()
		c.misses.Add(1)
		e.jobs, e.err = build()
		close(e.done)
	} else {
		c.mu.Unlock()
		<-e.done
		c.hits.Add(1)
	}
	return e.jobs, e.err
}

// evictLocked drops arbitrary entries other than keep until the cache
// is within its cap. Evicting an in-flight entry is safe: its builder
// still completes it for the waiters holding the pointer.
func (c *DigitalJobsCache) evictLocked(keep digitalJobsKey) {
	for len(c.m) > c.maxEntries {
		for k := range c.m {
			if k != keep {
				delete(c.m, k)
				break
			}
		}
	}
}

// Stats returns the cache's lifetime hit/miss counters: a miss built a
// digital job slice, a hit reused one.
func (c *DigitalJobsCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Len returns the number of cached (hash, width) entries.
func (c *DigitalJobsCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
