package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// variantDesign returns a design whose content differs from the paper
// benchmark, for exercising multi-session engines.
func variantDesign() *Design {
	d := warmTestDesign()
	d.Name = "p93791m-variant"
	d.Analog[0].Tests[0].Cycles += 1000
	return d
}

// sameResult compares the planning outcomes that the golden tables pin:
// cost bits, NEval, and the selected configuration.
func sameResult(a, b *Result) bool {
	return a.Best.Cost == b.Best.Cost && a.NEval == b.NEval &&
		a.Best.Partition.Key(nil) == b.Best.Partition.Key(nil) &&
		a.Best.TestTime == b.Best.TestTime
}

// Engine results must be bit-identical to the one-shot free functions,
// on the first (cold) call and on cache hits alike — including across
// separately allocated copies of the same design.
func TestEngineBitIdenticalToDirect(t *testing.T) {
	eng := NewEngine(EngineOptions{})
	ctx := context.Background()

	direct, err := NewPlanner(warmTestDesign(), 32, EqualWeights).CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := eng.Plan(ctx, warmTestDesign(), 32, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := eng.Plan(ctx, warmTestDesign(), 32, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(direct, cold) || !sameResult(direct, warm) {
		t.Fatal("engine Plan diverges from direct Plan")
	}
	m := eng.Metrics()
	if m.Designs != 1 || m.DesignMisses != 1 || m.DesignHits < 1 {
		t.Errorf("metrics after two plans of one design: %+v", m)
	}
	if m.Schedule.Hits == 0 {
		t.Error("second plan did not hit the schedule cache")
	}

	ex, err := eng.PlanExhaustive(ctx, warmTestDesign(), 32, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	exDirect, err := NewPlanner(warmTestDesign(), 32, EqualWeights).Exhaustive()
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(exDirect, ex) {
		t.Fatal("engine PlanExhaustive diverges from direct Exhaustive")
	}

	s, err := eng.Schedule(ctx, warmTestDesign(), warmTestDesign().AllShare(), 32)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(warmTestDesign(), 32)
	sd, err := ev.Schedule(warmTestDesign().AllShare())
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != sd.Makespan {
		t.Fatalf("engine Schedule makespan %d != direct %d", s.Makespan, sd.Makespan)
	}
}

// An engine's sweep must match the one-shot SweepWith point for point,
// and a repeat sweep (served largely from the session caches) must not
// drift.
func TestEngineSweepBitIdenticalToDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	eng := NewEngine(EngineOptions{})
	ctx := context.Background()
	widths := []int{32, 48}
	weights := []Weights{EqualWeights, {Time: 0.25, Area: 0.75}}

	direct, err := SweepWith(warmTestDesign(), widths, weights, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, err := eng.Sweep(ctx, warmTestDesign(), widths, weights, SweepOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(direct) {
			t.Fatalf("round %d: %d points, want %d", round, len(got), len(direct))
		}
		for i := range got {
			if got[i].Width != direct[i].Width || got[i].Weights != direct[i].Weights ||
				!sameResult(got[i].Result, direct[i].Result) {
				t.Fatalf("round %d point %d: engine sweep diverges from direct", round, i)
			}
		}
	}

	// A warm-started sweep must leave the cold caches untouched: a cold
	// plan afterwards still reproduces the direct result bit for bit.
	before := eng.Metrics().Schedules
	if _, err := eng.Sweep(ctx, warmTestDesign(), []int{32, 40, 48}, []Weights{EqualWeights},
		SweepOptions{WarmStart: true}); err != nil {
		t.Fatal(err)
	}
	if after := eng.Metrics().Schedules; after != before {
		t.Errorf("warm sweep changed the shared cold caches: %d -> %d schedules", before, after)
	}
	again, err := eng.Plan(ctx, warmTestDesign(), 32, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	directPlan, err := NewPlanner(warmTestDesign(), 32, EqualWeights).CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(directPlan, again) {
		t.Fatal("cold plan after a warm sweep diverged")
	}
}

// Many goroutines planning the same and different designs through one
// engine must all get the sequential answers (run with -race in CI).
func TestEngineConcurrentUse(t *testing.T) {
	eng := NewEngine(EngineOptions{Workers: 1})
	ctx := context.Background()

	refBase, err := NewPlanner(warmTestDesign(), 32, EqualWeights).CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	refVar, err := NewPlanner(variantDesign(), 32, EqualWeights).CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	if sameResult(refBase, refVar) && refBase.Best.TestTime == refVar.Best.TestTime {
		t.Log("variant design happens to plan identically; sessions still exercised")
	}

	const goroutines = 16
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Even goroutines plan the benchmark, odd ones the variant;
			// every call passes a fresh design value, so the content-hash
			// canonicalization is what makes the sessions shared.
			mk, want := warmTestDesign, refBase
			if g%2 == 1 {
				mk, want = variantDesign, refVar
			}
			for i := 0; i < 3; i++ {
				res, err := eng.Plan(ctx, mk(), 32, EqualWeights)
				if err != nil {
					errs[g] = err
					return
				}
				if !sameResult(want, res) {
					errs[g] = errors.New("concurrent engine result diverged from sequential reference")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	m := eng.Metrics()
	if m.Designs != 2 {
		t.Errorf("engine holds %d designs, want 2", m.Designs)
	}
	if m.DesignHits+m.DesignMisses != goroutines*3 {
		t.Errorf("design lookups = %d, want %d", m.DesignHits+m.DesignMisses, goroutines*3)
	}
}

// A cancelled context must abort a sweep promptly — well under the
// sweep's own runtime — and leave the engine's caches consistent: the
// same sweep afterwards completes and is bit-identical to a direct
// cold sweep.
func TestEngineCancellationMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	eng := NewEngine(EngineOptions{})
	widths := []int{32, 40, 48, 56, 64}
	weights := []Weights{EqualWeights, {Time: 0.25, Area: 0.75}, {Time: 0.75, Area: 0.25}}
	opt := SweepOptions{Exhaustive: true}

	// Reference runtime of the full sweep, uncached.
	t0 := time.Now()
	direct, err := SweepWith(warmTestDesign(), widths, weights, opt)
	if err != nil {
		t.Fatal(err)
	}
	full := time.Since(t0)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 = time.Now()
	_, err = eng.Sweep(ctx, warmTestDesign(), widths, weights, opt)
	aborted := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled sweep returned %v, want context.DeadlineExceeded", err)
	}
	// Prompt: far from running the sweep to completion after the
	// deadline. The bound is deliberately loose for noisy CI boxes.
	if limit := full/2 + 500*time.Millisecond; aborted > limit {
		t.Errorf("cancelled sweep took %v (full sweep %v); cancellation not prompt", aborted, full)
	}

	// The same engine must now complete the sweep with results
	// bit-identical to the direct cold sweep: no aborted packing may
	// have been memoized.
	got, err := eng.Sweep(context.Background(), warmTestDesign(), widths, weights, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(direct) {
		t.Fatalf("%d points after cancellation, want %d", len(got), len(direct))
	}
	for i := range got {
		if !sameResult(got[i].Result, direct[i].Result) {
			t.Fatalf("point %d (W=%d): post-cancellation sweep diverges from direct", i, got[i].Width)
		}
	}
}

// A caller waiting on another request's in-flight schedule
// computation must honor its OWN context: a short deadline returns
// promptly even while the owner is still packing, and the entry
// completes normally for later callers.
func TestWaiterHonorsOwnContext(t *testing.T) {
	d := warmTestDesign()
	cache := NewScheduleCache()
	p := d.AllShare()
	key := p.Key(nil)

	// Simulate a slow in-flight owner: create the entry by hand and
	// leave it incomplete.
	ent, owner := cache.entry(key)
	if !owner {
		t.Fatal("entry unexpectedly existed")
	}

	ev := NewSharedEvaluator(d, 32, cache)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := ev.ScheduleContext(ctx, p)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter returned %v, want its own context.DeadlineExceeded", err)
	}
	if waited := time.Since(t0); waited > 5*time.Second {
		t.Fatalf("waiter blocked %v past its 30ms deadline", waited)
	}

	// The owner eventually completes; subsequent calls serve the entry.
	ev.fill(nil, p, key, ent)
	s, err := ev.Schedule(p)
	if err != nil || s == nil {
		t.Fatalf("post-completion Schedule = (%v, %v)", s, err)
	}
	if cache.Peek(key) != s {
		t.Error("completed entry not served from the cache")
	}
}

// A session's schedule caches are bounded per width: scanning many
// widths never grows the session past MaxWidthCaches, and an evicted
// width still plans correctly (just cold again).
func TestEngineWidthCacheLRUBound(t *testing.T) {
	eng := NewEngine(EngineOptions{MaxWidthCaches: 2})
	ctx := context.Background()
	ref, err := NewPlanner(warmTestDesign(), 24, EqualWeights).CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{24, 28, 32, 36, 40} {
		if _, err := eng.Plan(ctx, warmTestDesign(), w, EqualWeights); err != nil {
			t.Fatal(err)
		}
	}
	infos := eng.Designs()
	if len(infos) != 1 {
		t.Fatalf("sessions = %d, want 1", len(infos))
	}
	if len(infos[0].Widths) != 2 {
		t.Fatalf("width caches = %v, want the 2 most recent", infos[0].Widths)
	}
	for _, w := range infos[0].Widths {
		if w != 36 && w != 40 {
			t.Errorf("width %d survived, want only the most recently used (36, 40)", w)
		}
	}
	// Replanning an evicted width is a cold recompute, bit-identical.
	res, err := eng.Plan(ctx, warmTestDesign(), 24, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(ref, res) {
		t.Error("replan of an evicted width diverged")
	}
}

// The LRU bound evicts whole design sessions, least recently used
// first, without ever changing results.
func TestEngineLRUEviction(t *testing.T) {
	eng := NewEngine(EngineOptions{MaxDesigns: 1})
	ctx := context.Background()
	ref, err := NewPlanner(warmTestDesign(), 32, EqualWeights).CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.Plan(ctx, warmTestDesign(), 32, EqualWeights); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Plan(ctx, variantDesign(), 32, EqualWeights); err != nil {
			t.Fatal(err)
		}
	}
	m := eng.Metrics()
	if m.Designs != 1 {
		t.Errorf("engine holds %d designs, want 1 (MaxDesigns)", m.Designs)
	}
	if m.Evictions < 2 {
		t.Errorf("evictions = %d, want >= 2 for alternating designs at capacity 1", m.Evictions)
	}
	res, err := eng.Plan(ctx, warmTestDesign(), 32, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	if !sameResult(ref, res) {
		t.Error("post-eviction plan diverged from the direct result")
	}
	infos := eng.Designs()
	if len(infos) != 1 || infos[0].Name != "p93791m" {
		t.Errorf("Designs() = %+v, want the benchmark session only", infos)
	}
}

// The lifetime counters Metrics exposes for scraping must be monotonic:
// evicting a session may shrink the live Schedule stats, but Plans and
// ScheduleTotal must only ever grow (a Prometheus counter that rewinds
// breaks every rate() over it).
func TestEngineMetricsMonotonicAcrossEviction(t *testing.T) {
	ctx := context.Background()
	eng := NewEngine(EngineOptions{MaxDesigns: 1, Workers: 2})

	var prev EngineMetrics
	check := func(step string) {
		m := eng.Metrics()
		if m.Plans < prev.Plans {
			t.Errorf("%s: Plans rewound %d -> %d", step, prev.Plans, m.Plans)
		}
		if m.ScheduleTotal.Hits < prev.ScheduleTotal.Hits || m.ScheduleTotal.Misses < prev.ScheduleTotal.Misses {
			t.Errorf("%s: ScheduleTotal rewound %+v -> %+v", step, prev.ScheduleTotal, m.ScheduleTotal)
		}
		prev = m
	}

	// Alternate two designs through a 1-session engine: every switch
	// evicts the other design's caches, which previously took their
	// hit/miss counters with them.
	for i := 0; i < 3; i++ {
		if _, err := eng.Plan(ctx, warmTestDesign(), 32, EqualWeights); err != nil {
			t.Fatal(err)
		}
		check("benchmark plan")
		if _, err := eng.Plan(ctx, variantDesign(), 32, EqualWeights); err != nil {
			t.Fatal(err)
		}
		check("variant plan")
	}
	m := eng.Metrics()
	if m.Plans != 6 {
		t.Errorf("Plans = %d, want 6", m.Plans)
	}
	if m.Evictions == 0 {
		t.Fatal("test never evicted; ScheduleTotal monotonicity unexercised")
	}
	if total, live := m.ScheduleTotal.Misses, m.Schedule.Misses; total <= live {
		t.Errorf("ScheduleTotal.Misses = %d not above live Schedule.Misses = %d despite evictions", total, live)
	}

	// Width-LRU eviction inside one session must fold counters too.
	eng2 := NewEngine(EngineOptions{MaxWidthCaches: 1, Workers: 2})
	for _, w := range []int{24, 32, 24} {
		if _, err := eng2.Plan(ctx, warmTestDesign(), w, EqualWeights); err != nil {
			t.Fatal(err)
		}
	}
	m2 := eng2.Metrics()
	if m2.ScheduleTotal.Misses <= m2.Schedule.Misses {
		t.Errorf("width eviction dropped counters: total %+v, live %+v", m2.ScheduleTotal, m2.Schedule)
	}
}
