package core

import (
	"math"
	"testing"

	"mixsoc/internal/analog"
	"mixsoc/internal/itc02"
	"mixsoc/internal/partition"
)

func warmTestDesign() *Design {
	return &Design{Name: "p93791m", Digital: itc02.P93791(), Analog: analog.PaperCores()}
}

func TestScheduleCachePeek(t *testing.T) {
	d := warmTestDesign()
	cache := NewScheduleCache()
	ev := NewSharedEvaluator(d, 32, cache)
	p := d.AllShare()
	key := p.Key(nil)

	if got := cache.Peek(key); got != nil {
		t.Fatal("Peek returned a schedule before any computation")
	}
	s, err := ev.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.Peek(key); got != s {
		t.Fatal("Peek did not return the computed schedule")
	}
	// A nil cache peeks nil rather than panicking (warm-start off).
	var nilCache *ScheduleCache
	if nilCache.Peek(key) != nil {
		t.Fatal("nil cache not inert")
	}
}

// An evaluator with a warm source must produce schedules for the wider
// width (not echo the seed) and stay deterministic.
func TestEvaluatorWarmChaining(t *testing.T) {
	d := warmTestDesign()
	p := d.AllShare()

	prev := NewScheduleCache()
	evNarrow := NewSharedEvaluator(d, 32, prev)
	narrow, err := evNarrow.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}

	evWide := NewSharedEvaluator(d, 48, nil)
	evWide.Warm = []*ScheduleCache{prev}
	wide, err := evWide.Schedule(p)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Width != 48 {
		t.Fatalf("warm schedule width = %d, want 48", wide.Width)
	}
	if err := wide.Validate(); err != nil {
		t.Fatal(err)
	}
	if wide.Makespan > narrow.Makespan {
		t.Errorf("warm 48-wire makespan %d worse than its 32-wire seed %d", wide.Makespan, narrow.Makespan)
	}
}

// The warm-started sweep must be deterministic run to run, solve every
// point, and stay close to the cold sweep's costs — it trades a few
// percent of schedule quality for wall-clock, never correctness.
func TestSweepWarmStartDeterministicAndClose(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	d := warmTestDesign()
	widths := []int{32, 48, 64}
	weights := []Weights{{Time: 0.5, Area: 0.5}}

	cold, err := SweepWith(d, widths, weights, SweepOptions{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SweepWith(d, widths, weights, SweepOptions{Exhaustive: true, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := SweepWith(d, widths, weights, SweepOptions{Exhaustive: true, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != len(cold) || len(warm2) != len(cold) {
		t.Fatalf("point counts: cold %d warm %d warm2 %d", len(cold), len(warm), len(warm2))
	}
	for i := range warm {
		if warm[i].Width != cold[i].Width || warm[i].Weights != cold[i].Weights {
			t.Fatalf("point %d: grid order diverged", i)
		}
		if warm[i].Result.Best.Cost != warm2[i].Result.Best.Cost ||
			warm[i].Result.NEval != warm2[i].Result.NEval ||
			warm[i].Result.Best.Partition.Key(nil) != warm2[i].Result.Best.Partition.Key(nil) {
			t.Fatalf("point %d: warm sweep not deterministic", i)
		}
		rel := math.Abs(warm[i].Result.Best.Cost-cold[i].Result.Best.Cost) / cold[i].Result.Best.Cost
		if rel > 0.15 {
			t.Errorf("point %d (W=%d): warm best cost %.3f deviates %.1f%% from cold %.3f",
				i, warm[i].Width, warm[i].Result.Best.Cost, 100*rel, cold[i].Result.Best.Cost)
		}
		// Exhaustive NEval is the candidate count regardless of warmth.
		if warm[i].Result.NEval != cold[i].Result.NEval {
			t.Errorf("point %d: warm exhaustive NEval %d != cold %d", i, warm[i].Result.NEval, cold[i].Result.NEval)
		}
	}
	// The narrowest width has no narrower neighbour: identical to cold.
	for i := range warm {
		if warm[i].Width == 32 && warm[i].Result.Best.Cost != cold[i].Result.Best.Cost {
			t.Errorf("W=32 point %d differs from cold despite having no warm seed", i)
		}
	}
}

// Cold sweeps through SweepWith must remain bit-identical to the
// legacy Sweep entry point (which the paper-table reproductions rely
// on).
func TestSweepWithColdMatchesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	d := warmTestDesign()
	widths := []int{32, 48}
	weights := []Weights{{Time: 0.5, Area: 0.5}}
	a, err := Sweep(d, widths, weights, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SweepWith(d, widths, weights, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Result.Best.Cost != b[i].Result.Best.Cost || a[i].Result.NEval != b[i].Result.NEval {
			t.Fatalf("point %d: cold SweepWith diverges from Sweep", i)
		}
	}
}

// Warm-start must compose with partitions whose groups pin analog jobs:
// chain every paper candidate across two widths and validate every
// schedule.
func TestWarmChainingAllCandidates(t *testing.T) {
	if testing.Short() {
		t.Skip("TAM sweeps are slow")
	}
	d := warmTestDesign()
	combos := d.Candidates(partition.PaperPolicy)
	prev := NewScheduleCache()
	evNarrow := NewSharedEvaluator(d, 32, prev)
	for _, p := range combos {
		if _, err := evNarrow.Schedule(p); err != nil {
			t.Fatal(err)
		}
	}
	evWide := NewSharedEvaluator(d, 40, nil)
	evWide.Warm = []*ScheduleCache{prev}
	for _, p := range combos {
		s, err := evWide.Schedule(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Key(nil), err)
		}
	}
}
