package core

import (
	"testing"

	"mixsoc/internal/analog"
)

func TestSweep(t *testing.T) {
	d := paperDesign()
	pts, err := Sweep(d, []int{32, 48}, []Weights{EqualWeights}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Result.Best.Cost <= 0 {
			t.Errorf("W=%d: cost %v", p.Width, p.Result.Best.Cost)
		}
	}
	best, err := BestOver(pts)
	if err != nil {
		t.Fatal(err)
	}
	if best.Width != 32 && best.Width != 48 {
		t.Errorf("best width %d not in sweep", best.Width)
	}

	if _, err := Sweep(d, nil, []Weights{EqualWeights}, false, nil); err == nil {
		t.Error("empty widths accepted")
	}
	if _, err := BestOver(nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestSweepConfigureHook(t *testing.T) {
	d := paperDesign()
	called := 0
	_, err := Sweep(d, []int{32}, []Weights{EqualWeights}, false, func(pl *Planner) {
		pl.CostModel = analog.PaperCostModel()
		called++
	})
	if err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Errorf("configure called %d times", called)
	}
}

func TestWidthCurveMonotoneish(t *testing.T) {
	d := paperDesign()
	widths := []int{24, 32, 48, 64}
	curve, err := WidthCurve(d, d.NoShare(), widths)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		// Allow small heuristic noise but demand the overall downward
		// staircase of the paper's premise.
		if float64(curve[i]) > 1.05*float64(curve[i-1]) {
			t.Errorf("test time rose sharply from W=%d (%d) to W=%d (%d)",
				widths[i-1], curve[i-1], widths[i], curve[i])
		}
	}
	if curve[len(curve)-1] >= curve[0] {
		t.Errorf("no improvement across the sweep: %v", curve)
	}
	if _, err := WidthCurve(d, d.NoShare(), nil); err == nil {
		t.Error("empty widths accepted")
	}
}
