package core

import (
	"math"
	"testing"

	"mixsoc/internal/analog"
)

func TestSweep(t *testing.T) {
	d := paperDesign()
	pts, err := Sweep(d, []int{32, 48}, []Weights{EqualWeights}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Result.Best.Cost <= 0 {
			t.Errorf("W=%d: cost %v", p.Width, p.Result.Best.Cost)
		}
	}
	best, err := BestOver(pts)
	if err != nil {
		t.Fatal(err)
	}
	if best.Width != 32 && best.Width != 48 {
		t.Errorf("best width %d not in sweep", best.Width)
	}

	if _, err := Sweep(d, nil, []Weights{EqualWeights}, false, nil); err == nil {
		t.Error("empty widths accepted")
	}
	if _, err := BestOver(nil); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestSweepConfigureHook(t *testing.T) {
	d := paperDesign()
	called := 0
	_, err := Sweep(d, []int{32}, []Weights{EqualWeights}, false, func(pl *Planner) {
		pl.CostModel = analog.PaperCostModel()
		called++
	})
	if err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Errorf("configure called %d times", called)
	}
}

// TestSweepSelectMatchesFullSweep is the sharding contract: a sweep
// restricted to a subset of the grid must return exactly the points an
// unrestricted sweep returns for those cells, bit for bit, even though
// the restricted sweep never packs — or allocates caches for — the
// unselected widths.
func TestSweepSelectMatchesFullSweep(t *testing.T) {
	d := paperDesign()
	widths := []int{24, 32, 48}
	weights := []Weights{{Time: 0.25, Area: 0.75}, EqualWeights}
	full, err := SweepWith(d, widths, weights, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(widths)*len(weights) {
		t.Fatalf("full sweep has %d points", len(full))
	}

	sel := func(w int, wt Weights) bool { return w != 32 && wt.Time != 0.25 }
	part, err := SweepWith(d, widths, weights, SweepOptions{Select: sel})
	if err != nil {
		t.Fatal(err)
	}
	var want []SweepPoint
	for _, p := range full {
		if sel(p.Width, p.Weights) {
			want = append(want, p)
		}
	}
	if len(part) != len(want) {
		t.Fatalf("selected sweep has %d points, want %d", len(part), len(want))
	}
	for i, p := range part {
		w := want[i]
		if p.Width != w.Width || p.Weights != w.Weights {
			t.Fatalf("point %d is (W=%d, wT=%v), want (W=%d, wT=%v)",
				i, p.Width, p.Weights.Time, w.Width, w.Weights.Time)
		}
		if math.Float64bits(p.Result.Best.Cost) != math.Float64bits(w.Result.Best.Cost) ||
			p.Result.Best.TestTime != w.Result.Best.TestTime ||
			p.Result.NEval != w.Result.NEval {
			t.Errorf("point (W=%d, wT=%v): selected sweep diverged from full sweep (cost %v vs %v, NEval %d vs %d)",
				p.Width, p.Weights.Time, p.Result.Best.Cost, w.Result.Best.Cost, p.Result.NEval, w.Result.NEval)
		}
	}

	if _, err := SweepWith(d, widths, weights, SweepOptions{
		Select: func(int, Weights) bool { return false },
	}); err == nil {
		t.Error("empty selection accepted")
	}
}

// TestSweepSelectWarmChain exercises Select together with WarmStart: the
// chain must seed each width from the nearest narrower *selected* width
// and still solve every selected point.
func TestSweepSelectWarmChain(t *testing.T) {
	d := paperDesign()
	widths := []int{24, 32, 48}
	pts, err := SweepWith(d, widths, []Weights{EqualWeights}, SweepOptions{
		WarmStart: true,
		Select:    func(w int, _ Weights) bool { return w != 32 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Width != 24 || pts[1].Width != 48 {
		t.Fatalf("selected warm sweep points = %+v", pts)
	}
	for _, p := range pts {
		if p.Result == nil || p.Result.Best.TestTime <= 0 {
			t.Errorf("W=%d: unsolved point", p.Width)
		}
	}
}

func TestWidthCurveMonotoneish(t *testing.T) {
	d := paperDesign()
	widths := []int{24, 32, 48, 64}
	curve, err := WidthCurve(d, d.NoShare(), widths)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		// Allow small heuristic noise but demand the overall downward
		// staircase of the paper's premise.
		if float64(curve[i]) > 1.05*float64(curve[i-1]) {
			t.Errorf("test time rose sharply from W=%d (%d) to W=%d (%d)",
				widths[i-1], curve[i-1], widths[i], curve[i])
		}
	}
	if curve[len(curve)-1] >= curve[0] {
		t.Errorf("no improvement across the sweep: %v", curve)
	}
	if _, err := WidthCurve(d, d.NoShare(), nil); err == nil {
		t.Error("empty widths accepted")
	}
}
