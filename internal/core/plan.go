package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"mixsoc/internal/analog"
	"mixsoc/internal/partition"
	"mixsoc/internal/tam"
	"mixsoc/internal/wrapper"
)

// Planner solves Problem P_msoc (Section 4): pick the analog
// wrapper-sharing configuration, wrapper designs and TAM schedule that
// minimize C = wT·CT + wA·CA at a given SOC-level TAM width.
type Planner struct {
	Design  *Design
	Width   int     // SOC-level TAM width W
	Weights Weights // wT, wA

	// CostModel prices analog wrapper sharing; zero value is replaced by
	// analog.DefaultCostModel.
	CostModel analog.CostModel
	// Policy filters candidate partitions; nil means the paper's policy.
	Policy partition.Policy
	// Epsilon is the group-elimination threshold ε of Figure 3 (line 16):
	// groups whose representative cost exceeds the best by more than ε
	// are eliminated. The paper's experiments use 0.
	Epsilon float64
	// PrunePrelim, when true (the default via NewPlanner), also skips
	// surviving-group members whose preliminary cost (equation 3) is
	// already no better than the best full cost found. This is the
	// paper's spirit — preliminary costs are available "for free" — and
	// is what keeps NEval near 10 of 26; it is heuristic, exactly as the
	// paper's results table shows (optimal "in all but one case").
	PrunePrelim bool
	// Bounded enables branch-and-bound pruning: candidates whose
	// admissible cost lower bound (see Planner.LowerBound) cannot
	// strictly beat the incumbent are skipped without a TAM run. The
	// best cost and selected configuration are bit-identical to an
	// unbounded solve — the bound never exceeds the true cost, and the
	// incumbent only moves on a strict improvement — but NEval and
	// Evaluated shrink to the survivors, with Result.Pruned counting
	// the skips. Off by default, so the paper tables and golden NEval
	// are untouched.
	Bounded bool
	// Workers bounds the TAM-evaluation concurrency; 0 means one worker
	// per available CPU (DefaultWorkers). With more than one worker the
	// planner prefetches schedules in parallel and then replays the
	// paper's algorithm sequentially over the warmed cache, so the
	// Result — including NEval — is identical to a single-worker run.
	Workers int
	// Cache, when non-nil, backs the planner's evaluator with a shared
	// schedule store (see ScheduleCache). It must belong to the same
	// design and width.
	Cache *ScheduleCache
	// Staircases, when non-nil, serves digital wrapper staircases from a
	// design-level cache shared across widths (see
	// wrapper.StaircaseCache).
	Staircases *wrapper.StaircaseCache
	// Digital and DigitalKey, when both set, serve the design's digital
	// TAM jobs from a cross-design cache (see Evaluator.Digital).
	Digital    *DigitalJobsCache
	DigitalKey string
	// Warm lists the completed schedule caches of adjacent widths used
	// to seed TAM runs, nearest width first (see Evaluator.Warm).
	// Warm-started packing is not guaranteed to reproduce cold makespans
	// bit-for-bit; leave it empty where exact reproduction matters.
	Warm []*ScheduleCache
	// Packer, when non-nil, is the packing backend every TAM run goes
	// through (see Evaluator.Packer and PackerFor); nil is the default
	// occupancy path, bit-identical to the historical planner. A
	// non-nil Packer needs a Cache private to that backend.
	Packer tam.Packer
}

// NewPlanner returns a planner with the defaults used by the paper's
// experiments: equal weights, paper candidate policy, ε = 0, preliminary
// pruning on.
func NewPlanner(d *Design, width int, w Weights) *Planner {
	return &Planner{
		Design:      d,
		Width:       width,
		Weights:     w,
		CostModel:   analog.DefaultCostModel(),
		Policy:      partition.PaperPolicy,
		Epsilon:     0,
		PrunePrelim: true,
	}
}

// Result is the outcome of a planning run.
type Result struct {
	Method     string // "exhaustive" or "cost-optimizer"
	Best       Evaluation
	NEval      int          // TAM optimizer runs (Table 4's NEval)
	Candidates int          // candidate configurations considered
	Infeasible int          // candidates rejected by the feasibility rule
	AllShare   int64        // T(all-share), the CT normalization base
	Evaluated  []Evaluation // every configuration that got a TAM run
	// Pruned counts the candidates Bounded mode skipped without a TAM
	// run because their cost lower bound could not beat the incumbent.
	// Always zero outside Bounded mode and omitted from JSON then, so
	// default plan responses carry byte-identical bodies.
	Pruned int `json:",omitempty"`
}

// ReductionPercent is Table 4's ΔE: the percentage of TAM evaluations
// saved relative to exhaustively evaluating every candidate.
func (r *Result) ReductionPercent() float64 {
	if r.Candidates == 0 {
		return 0
	}
	return 100 * float64(r.Candidates-r.NEval) / float64(r.Candidates)
}

func (pl *Planner) defaults() (analog.CostModel, partition.Policy, error) {
	if err := pl.Weights.Validate(); err != nil {
		return analog.CostModel{}, nil, err
	}
	if pl.Design == nil || len(pl.Design.Analog) == 0 {
		return analog.CostModel{}, nil, fmt.Errorf("core: planner needs a design with analog cores")
	}
	cm := pl.CostModel
	if cm.Area == nil {
		cm = analog.DefaultCostModel()
	}
	policy := pl.Policy
	if policy == nil {
		policy = partition.PaperPolicy
	}
	return cm, policy, nil
}

func (pl *Planner) workers() int {
	if pl.Workers > 0 {
		return pl.Workers
	}
	return DefaultWorkers()
}

func (pl *Planner) evaluator() *Evaluator {
	e := NewSharedEvaluator(pl.Design, pl.Width, pl.Cache)
	e.Staircases = pl.Staircases
	e.Digital = pl.Digital
	e.DigitalKey = pl.DigitalKey
	e.Warm = pl.Warm
	e.Packer = pl.Packer
	return e
}

// evalAt completes an Evaluation for p given the all-share time.
func (pl *Planner) evalAt(ctx context.Context, e *Evaluator, cm analog.CostModel, p partition.Partition, allShare int64) (Evaluation, error) {
	ca, ltb, err := costParts(pl.Design, cm, p)
	if err != nil {
		return Evaluation{}, err
	}
	t, err := e.TestTimeContext(ctx, p)
	if err != nil {
		return Evaluation{}, err
	}
	ct := 100 * float64(t) / float64(allShare)
	return Evaluation{
		Partition: p,
		TestTime:  t,
		CT:        ct,
		CA:        ca,
		Cost:      pl.Weights.Time*ct + pl.Weights.Area*ca,
		Prelim:    pl.Weights.Time*ltb + pl.Weights.Area*ca,
	}, nil
}

// feasibleCandidates splits the candidate set by the cost model's
// feasibility rule, preserving order.
func feasibleCandidates(cm analog.CostModel, d *Design, cands []partition.Partition) (feasible []partition.Partition, rejected int, err error) {
	feasible = make([]partition.Partition, 0, len(cands))
	for _, p := range cands {
		skip, err := infeasible(cm, d, p)
		if err != nil {
			return nil, 0, err
		}
		if skip {
			rejected++
			continue
		}
		feasible = append(feasible, p)
	}
	return feasible, rejected, nil
}

// Exhaustive evaluates every candidate configuration with the TAM
// optimizer and returns the cheapest. It is the paper's baseline: always
// optimal with respect to the candidate set, at NEval = |candidates|.
// With more than one worker the TAM runs are fanned across the pool and
// the results merged in candidate order, so the Result is identical to a
// sequential run. With Bounded set, candidates whose cost lower bound
// cannot beat the incumbent are skipped (NEval < |candidates|) without
// changing the best cost or selection.
func (pl *Planner) Exhaustive() (*Result, error) {
	return pl.ExhaustiveContext(context.Background())
}

// ExhaustiveContext is Exhaustive under a context: the candidate loop,
// the parallel prefetch, and the TAM packing hot loops all poll ctx, so
// a caller can abort mid-run and get ctx.Err() back promptly. Aborted
// packings are dropped from the shared caches rather than memoized, so
// a later run on the same caches still produces bit-identical results.
func (pl *Planner) ExhaustiveContext(ctx context.Context) (*Result, error) {
	cm, policy, err := pl.defaults()
	if err != nil {
		return nil, err
	}
	e := pl.evaluator()
	cands := pl.Design.Candidates(policy)
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: policy admits no candidate configurations")
	}
	feasible, rejected, err := feasibleCandidates(cm, pl.Design, cands)
	if err != nil {
		return nil, err
	}

	// Warm the cache in parallel: the all-share normalization point plus
	// every feasible candidate. Errors surface in the replay below. In
	// Bounded mode packing everything would defeat the pruning, so the
	// speculative pass below runs instead, once the normalization time
	// is known.
	if pl.workers() > 1 && !pl.Bounded {
		allShareP := pl.Design.AllShare()
		if err := ForEachCtx(ctx, len(feasible)+1, pl.workers(), func(i int) {
			if i == 0 {
				e.PrefetchContext(ctx, allShareP)
				return
			}
			e.PrefetchContext(ctx, feasible[i-1])
		}); err != nil {
			return nil, err
		}
	}

	allShare, err := e.TestTimeContext(ctx, pl.Design.AllShare())
	if err != nil {
		return nil, err
	}

	// Bounded speculative prefetch: pack candidates in parallel under an
	// atomically tightening incumbent, skipping those whose bound cannot
	// win. The sequential replay below is the sole authority on which
	// candidates are evaluated (and hence on NEval and Pruned) — a
	// speculative packing the replay prunes is cached but never counted.
	if pl.workers() > 1 && pl.Bounded {
		inc := newIncumbent(math.Inf(1))
		if err := ForEachCtx(ctx, len(feasible), pl.workers(), func(i int) {
			p := feasible[i]
			ca, _, err := costParts(pl.Design, cm, p)
			if err != nil {
				return // the replay reports it deterministically
			}
			lb, err := pl.boundAt(e, p, ca, allShare)
			if err != nil || lb >= inc.load() {
				return
			}
			s, err := e.scheduleUncounted(ctx, p)
			if err != nil {
				return
			}
			ct := 100 * float64(s.Makespan) / float64(allShare)
			inc.lower(pl.Weights.Time*ct + pl.Weights.Area*ca)
		}); err != nil {
			return nil, err
		}
	}

	res := &Result{Method: "exhaustive", Candidates: len(cands), Infeasible: rejected, AllShare: allShare}
	best := -1
	for _, p := range feasible {
		if pl.Bounded && best >= 0 {
			ca, _, err := costParts(pl.Design, cm, p)
			if err != nil {
				return nil, err
			}
			lb, err := pl.boundAt(e, p, ca, allShare)
			if err != nil {
				return nil, err
			}
			if lb >= res.Evaluated[best].Cost {
				res.Pruned++
				continue
			}
		}
		ev, err := pl.evalAt(ctx, e, cm, p, allShare)
		if err != nil {
			return nil, err
		}
		res.Evaluated = append(res.Evaluated, ev)
		if best < 0 || ev.Cost < res.Evaluated[best].Cost {
			best = len(res.Evaluated) - 1
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("core: every candidate configuration is infeasible")
	}
	res.Best = res.Evaluated[best]
	res.NEval = e.Runs()
	return res, nil
}

// infeasible reports whether the cost model's feasibility rule rejects
// the configuration; other errors are returned as-is.
func infeasible(cm analog.CostModel, d *Design, p partition.Partition) (bool, error) {
	err := cm.Feasibility(d.Analog, p)
	switch {
	case err == nil:
		return false, nil
	case errors.Is(err, analog.ErrInfeasible):
		return true, nil
	}
	return false, err
}

// group is one "degree of sharing" bucket of Figure 3 line 1:
// configurations with the same number of analog wrappers, which for a
// fixed core set means comparable area-overhead structure.
type group struct {
	wrappers int
	members  []candidate
}

type candidate struct {
	p      partition.Partition
	ca     float64
	ltb    float64
	prelim float64
}

// CostOptimizer implements procedure Cost_Optimizer (Figure 3):
//
//  1. Bucket the candidates by degree of sharing (wrapper count).
//  2. Compute preliminary costs Cprelim = wT·LTBnorm + wA·CA for every
//     candidate — no TAM runs needed (equation 3).
//  3. In each bucket, TAM-evaluate only the candidate with the smallest
//     preliminary cost.
//  4. Keep the bucket(s) within ε of the best representative cost;
//     eliminate the rest.
//  5. TAM-evaluate the remaining members of surviving buckets (skipping
//     members whose preliminary cost cannot beat the incumbent when
//     PrunePrelim is set) and return the overall cheapest.
//
// With more than one worker, the representative evaluations run in
// parallel, and the surviving members are prefetched speculatively under
// an atomically shared incumbent bound; the algorithm then replays
// sequentially over the warmed cache, so the Result — NEval, Evaluated
// order, everything — is identical to a single-worker run (speculative
// prefetches that the sequential algorithm would have pruned are never
// accounted).
func (pl *Planner) CostOptimizer() (*Result, error) {
	return pl.CostOptimizerContext(context.Background())
}

// CostOptimizerContext is CostOptimizer under a context; see
// ExhaustiveContext for the cancellation contract.
func (pl *Planner) CostOptimizerContext(ctx context.Context) (*Result, error) {
	cm, policy, err := pl.defaults()
	if err != nil {
		return nil, err
	}
	e := pl.evaluator()
	cands := pl.Design.Candidates(policy)
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: policy admits no candidate configurations")
	}

	res := &Result{Method: "cost-optimizer", Candidates: len(cands)}

	// Lines 1-6: bucket by degree of sharing; preliminary costs. The
	// cost model's feasibility rule drops configurations here — the
	// paper's "should not be considered".
	byWrappers := map[int]*group{}
	for _, p := range cands {
		if skip, err := infeasible(cm, pl.Design, p); err != nil {
			return nil, err
		} else if skip {
			res.Infeasible++
			continue
		}
		ca, ltb, err := costParts(pl.Design, cm, p)
		if err != nil {
			return nil, err
		}
		c := candidate{p: p, ca: ca, ltb: ltb, prelim: pl.Weights.Time*ltb + pl.Weights.Area*ca}
		g := byWrappers[p.Wrappers()]
		if g == nil {
			g = &group{wrappers: p.Wrappers()}
			byWrappers[p.Wrappers()] = g
		}
		g.members = append(g.members, c)
	}
	groups := make([]*group, 0, len(byWrappers))
	for _, g := range byWrappers {
		// Deterministic member order: by preliminary cost, then label.
		sort.Slice(g.members, func(a, b int) bool {
			if g.members[a].prelim != g.members[b].prelim {
				return g.members[a].prelim < g.members[b].prelim
			}
			return g.members[a].p.Key(nil) < g.members[b].p.Key(nil)
		})
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].wrappers > groups[b].wrappers })

	if len(groups) == 0 {
		return nil, fmt.Errorf("core: every candidate configuration is infeasible")
	}

	// Warm the cache with the normalization point and every bucket
	// representative in parallel; the replay below accounts them.
	workers := pl.workers()
	if workers > 1 {
		allShareP := pl.Design.AllShare()
		if err := ForEachCtx(ctx, len(groups)+1, workers, func(i int) {
			if i == 0 {
				e.PrefetchContext(ctx, allShareP)
				return
			}
			e.PrefetchContext(ctx, groups[i-1].members[0].p)
		}); err != nil {
			return nil, err
		}
	}

	// The all-share time normalizes CT; the all-share configuration is
	// the single member of the 1-wrapper bucket under the paper's policy,
	// so this evaluation is reused below via the cache.
	allShare, err := e.TestTimeContext(ctx, pl.Design.AllShare())
	if err != nil {
		return nil, err
	}
	res.AllShare = allShare

	// Lines 7-13: evaluate each bucket's most promising member.
	type repEval struct {
		g  *group
		ev Evaluation
	}
	reps := make([]repEval, 0, len(groups))
	bestRep := math.Inf(1)
	for _, g := range groups {
		ev, err := pl.evalAt(ctx, e, cm, g.members[0].p, allShare)
		if err != nil {
			return nil, err
		}
		res.Evaluated = append(res.Evaluated, ev)
		reps = append(reps, repEval{g: g, ev: ev})
		if ev.Cost < bestRep {
			bestRep = ev.Cost
		}
	}

	// Track the incumbent best.
	best := reps[0].ev
	for _, r := range reps[1:] {
		if r.ev.Cost < best.Cost {
			best = r.ev
		}
	}

	// Speculatively prefetch the surviving members in parallel. The
	// shared incumbent bound tightens as speculative costs come back, so
	// members that cannot win are skipped without ever packing them; the
	// sequential replay below is the sole authority on which evaluations
	// the algorithm performs (and hence on NEval).
	if workers > 1 {
		var spec []candidate
		for _, r := range reps {
			if r.ev.Cost > bestRep+pl.Epsilon {
				continue
			}
			spec = append(spec, r.g.members[1:]...)
		}
		bound := newIncumbent(best.Cost)
		if err := ForEachCtx(ctx, len(spec), workers, func(i int) {
			m := spec[i]
			if pl.PrunePrelim && m.prelim >= bound.load() {
				return
			}
			if pl.Bounded {
				lb, err := pl.boundAt(e, m.p, m.ca, allShare)
				if err != nil || lb >= bound.load() {
					return
				}
			}
			s, err := e.scheduleUncounted(ctx, m.p)
			if err != nil {
				return // the replay reports it deterministically
			}
			ct := 100 * float64(s.Makespan) / float64(allShare)
			bound.lower(pl.Weights.Time*ct + pl.Weights.Area*m.ca)
		}); err != nil {
			return nil, err
		}
	}

	// Lines 14-18: eliminate buckets, then fully evaluate survivors.
	for _, r := range reps {
		if r.ev.Cost > bestRep+pl.Epsilon {
			continue // bucket eliminated
		}
		for _, m := range r.g.members[1:] {
			if pl.PrunePrelim && m.prelim >= best.Cost {
				continue
			}
			if pl.Bounded {
				lb, err := pl.boundAt(e, m.p, m.ca, allShare)
				if err != nil {
					return nil, err
				}
				if lb >= best.Cost {
					res.Pruned++
					continue
				}
			}
			ev, err := pl.evalAt(ctx, e, cm, m.p, allShare)
			if err != nil {
				return nil, err
			}
			res.Evaluated = append(res.Evaluated, ev)
			if ev.Cost < best.Cost {
				best = ev
			}
		}
	}

	res.Best = best
	res.NEval = e.Runs()
	return res, nil
}
