// Package asim provides small behavioural models of analog signal paths:
// multi-tone sources, Butterworth low-pass filters (biquad cascades via
// the bilinear transform), and amplifier nonidealities (gain, offset,
// slew-rate limiting, cubic nonlinearity, clipping).
//
// The paper demonstrates its analog test wrapper with HSPICE
// transistor-level simulations of a low-pass core (Section 5); this
// package is the behavioural substitute documented in DESIGN.md §2: it
// exercises the same signal path — stimulus, filter, response — with
// controlled, deterministic nonidealities.
package asim

import (
	"fmt"
	"math"
)

// Tone is one sinusoidal component of a stimulus.
type Tone struct {
	Freq  float64 // Hz
	Amp   float64 // peak amplitude
	Phase float64 // radians
}

// MultiTone synthesizes n samples of a sum of tones at sample rate fs.
func MultiTone(tones []Tone, fs float64, n int) ([]float64, error) {
	if fs <= 0 {
		return nil, fmt.Errorf("asim: sample rate %v <= 0", fs)
	}
	if n <= 0 {
		return nil, fmt.Errorf("asim: sample count %d <= 0", n)
	}
	out := make([]float64, n)
	for _, t := range tones {
		if t.Freq < 0 {
			return nil, fmt.Errorf("asim: negative tone frequency %v", t.Freq)
		}
		w := 2 * math.Pi * t.Freq / fs
		for i := range out {
			out[i] += t.Amp * math.Cos(w*float64(i)+t.Phase)
		}
	}
	return out, nil
}

// Biquad is a second-order IIR section in direct form II transposed.
// The zero value is an identity filter only if b0 is set to 1; use the
// designers in this package rather than filling coefficients by hand.
type Biquad struct {
	B0, B1, B2 float64 // numerator
	A1, A2     float64 // denominator (a0 normalized to 1)
	z1, z2     float64 // state
}

// Process filters one sample.
func (q *Biquad) Process(x float64) float64 {
	y := q.B0*x + q.z1
	q.z1 = q.B1*x - q.A1*y + q.z2
	q.z2 = q.B2*x - q.A2*y
	return y
}

// Reset clears the filter state.
func (q *Biquad) Reset() { q.z1, q.z2 = 0, 0 }

// PrimeDC sets the section state to its steady state for a constant
// input x, so that processing a stream that starts at x produces no
// artificial start-up transient.
func (q *Biquad) PrimeDC(x float64) float64 {
	g := (q.B0 + q.B1 + q.B2) / (1 + q.A1 + q.A2)
	y := g * x
	q.z1 = y - q.B0*x
	q.z2 = q.B2*x - q.A2*y
	return y
}

// Filter is a cascade of biquad sections (an odd-order design embeds its
// first-order section as a biquad with B2 = A2 = 0).
type Filter struct {
	Sections []Biquad
}

// Process filters one sample through the cascade.
func (f *Filter) Process(x float64) float64 {
	for i := range f.Sections {
		x = f.Sections[i].Process(x)
	}
	return x
}

// ProcessAll filters a whole signal (state is reset first).
func (f *Filter) ProcessAll(x []float64) []float64 {
	f.Reset()
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = f.Process(v)
	}
	return out
}

// Reset clears all section states.
func (f *Filter) Reset() {
	for i := range f.Sections {
		f.Sections[i].Reset()
	}
}

// PrimeDC sets the cascade to its steady state for a constant input x.
func (f *Filter) PrimeDC(x float64) {
	for i := range f.Sections {
		x = f.Sections[i].PrimeDC(x)
	}
}

// ButterworthLowpass designs an order-n Butterworth low-pass filter with
// -3 dB cutoff fc at sample rate fs, using the matched analog prototype
// and the bilinear transform with frequency prewarping.
func ButterworthLowpass(order int, fc, fs float64) (*Filter, error) {
	if order < 1 || order > 12 {
		return nil, fmt.Errorf("asim: butterworth order %d out of [1,12]", order)
	}
	if fc <= 0 || fs <= 0 || fc >= fs/2 {
		return nil, fmt.Errorf("asim: cutoff %v must be in (0, fs/2=%v)", fc, fs/2)
	}
	// Prewarped analog cutoff.
	k := 2 * fs
	wc := k * math.Tan(math.Pi*fc/fs)

	f := &Filter{}
	// Conjugate pole pairs of the analog prototype.
	for i := 0; i < order/2; i++ {
		theta := math.Pi * float64(2*i+1) / float64(2*order)
		// Analog section: wc^2 / (s^2 + 2 sin(theta) wc s + wc^2).
		a1 := 2 * math.Sin(theta) * wc
		a2 := wc * wc
		// Bilinear transform with s = k (1-z^-1)/(1+z^-1).
		d0 := k*k + a1*k + a2
		f.Sections = append(f.Sections, Biquad{
			B0: a2 / d0,
			B1: 2 * a2 / d0,
			B2: a2 / d0,
			A1: (2*a2 - 2*k*k) / d0,
			A2: (k*k - a1*k + a2) / d0,
		})
	}
	if order%2 == 1 {
		// First-order section: wc / (s + wc).
		d0 := k + wc
		f.Sections = append(f.Sections, Biquad{
			B0: wc / d0,
			B1: wc / d0,
			A1: (wc - k) / d0,
		})
	}
	return f, nil
}

// Amplifier is a behavioural amplifier stage with the nonidealities that
// the Table 2 tests probe: finite gain, DC offset, third-order
// nonlinearity (IIP3), supply clipping, and slew-rate limiting (SR).
// The zero value is a unity-gain ideal buffer once Gain is set to 1.
type Amplifier struct {
	Gain      float64 // linear gain
	Offset    float64 // output-referred DC offset, volts
	HD3       float64 // cubic coefficient: out += HD3·in³
	ClipLevel float64 // symmetric clipping; 0 disables
	SlewRate  float64 // volts/second; 0 disables

	prev    float64
	started bool
}

// Process amplifies one sample taken at sample rate fs.
func (a *Amplifier) Process(x, fs float64) float64 {
	y := a.Gain*x + a.HD3*x*x*x + a.Offset
	if a.ClipLevel > 0 {
		if y > a.ClipLevel {
			y = a.ClipLevel
		} else if y < -a.ClipLevel {
			y = -a.ClipLevel
		}
	}
	if a.SlewRate > 0 && fs > 0 {
		maxStep := a.SlewRate / fs
		if a.started {
			if y > a.prev+maxStep {
				y = a.prev + maxStep
			} else if y < a.prev-maxStep {
				y = a.prev - maxStep
			}
		}
	}
	a.prev = y
	a.started = true
	return y
}

// ProcessAll amplifies a whole signal (state is reset first).
func (a *Amplifier) ProcessAll(x []float64, fs float64) []float64 {
	a.Reset()
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = a.Process(v, fs)
	}
	return out
}

// Reset clears the slew-limiter state.
func (a *Amplifier) Reset() { a.prev, a.started = 0, false }

// Noise is a deterministic white-noise source (xorshift64), for adding
// controlled converter/reference noise in simulations without pulling in
// global random state.
type Noise struct {
	state uint64
	Amp   float64 // peak amplitude of the uniform noise
}

// NewNoise returns a noise source with the given seed and amplitude.
func NewNoise(seed uint64, amp float64) *Noise {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Noise{state: seed, Amp: amp}
}

// Next returns the next noise sample, uniform in [-Amp, Amp].
func (n *Noise) Next() float64 {
	x := n.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	n.state = x
	// Map to [-1, 1).
	u := float64(x>>11) / float64(1<<53)
	return n.Amp * (2*u - 1)
}
