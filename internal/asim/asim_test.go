package asim

import (
	"math"
	"testing"
	"testing/quick"

	"mixsoc/internal/dsp"
)

func TestMultiTone(t *testing.T) {
	tones := []Tone{{Freq: 100, Amp: 1}, {Freq: 300, Amp: 0.5}}
	x, err := MultiTone(tones, 8192, 8192)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := dsp.ToneMagnitude(x, 100, 8192)
	m3, _ := dsp.ToneMagnitude(x, 300, 8192)
	if math.Abs(m1-1) > 0.01 || math.Abs(m3-0.5) > 0.01 {
		t.Errorf("tone magnitudes = %v, %v", m1, m3)
	}
	if _, err := MultiTone(tones, 0, 10); err == nil {
		t.Error("fs=0 accepted")
	}
	if _, err := MultiTone(tones, 100, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MultiTone([]Tone{{Freq: -1}}, 100, 10); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestButterworthCutoffGain(t *testing.T) {
	// The -3 dB point must land at fc for several orders, and the
	// measured rolloff must match the analytic Butterworth magnitude.
	fs := 1.7e6
	fc := 60e3
	n := 1 << 15
	for _, order := range []int{1, 2, 4, 5} {
		f, err := ButterworthLowpass(order, fc, fs)
		if err != nil {
			t.Fatal(err)
		}
		for _, probe := range []float64{10e3, 30e3, fc, 120e3, 200e3} {
			x, err := MultiTone([]Tone{{Freq: probe, Amp: 1}}, fs, n)
			if err != nil {
				t.Fatal(err)
			}
			y := f.ProcessAll(x)
			// Skip the transient: measure the second half.
			mag, err := dsp.ToneMagnitude(y[n/2:], probe, fs)
			if err != nil {
				t.Fatal(err)
			}
			want := dsp.GainAt(probe, fc, order)
			if math.Abs(mag-want) > 0.02 {
				t.Errorf("order %d at %v Hz: gain %v, want %v", order, probe, mag, want)
			}
		}
	}
}

func TestButterworthErrors(t *testing.T) {
	if _, err := ButterworthLowpass(0, 100, 1000); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := ButterworthLowpass(13, 100, 1000); err == nil {
		t.Error("order 13 accepted")
	}
	if _, err := ButterworthLowpass(2, 600, 1000); err == nil {
		t.Error("cutoff above Nyquist accepted")
	}
	if _, err := ButterworthLowpass(2, 0, 1000); err == nil {
		t.Error("zero cutoff accepted")
	}
}

func TestFilterStability(t *testing.T) {
	// Impulse response of a stable filter decays.
	f, err := ButterworthLowpass(4, 60e3, 1.7e6)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 4096)
	x[0] = 1
	y := f.ProcessAll(x)
	head := dsp.RMS(y[:1024])
	tail := dsp.RMS(y[3072:])
	if tail > head/100 {
		t.Errorf("impulse response not decaying: head %v tail %v", head, tail)
	}
}

func TestFilterDCGainProperty(t *testing.T) {
	// Any Butterworth low-pass passes DC with unit gain.
	f := func(orderRaw, fcRaw uint8) bool {
		order := int(orderRaw%6) + 1
		fc := 1e3 + float64(fcRaw)*200
		fs := 1e6
		filt, err := ButterworthLowpass(order, fc, fs)
		if err != nil {
			return false
		}
		x := make([]float64, 8192)
		for i := range x {
			x[i] = 1
		}
		y := filt.ProcessAll(x)
		return math.Abs(y[len(y)-1]-1) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAmplifierGainOffset(t *testing.T) {
	a := &Amplifier{Gain: 2, Offset: 0.1}
	if got := a.Process(0.5, 1e6); math.Abs(got-1.1) > 1e-12 {
		t.Errorf("Process = %v, want 1.1", got)
	}
}

func TestAmplifierClipping(t *testing.T) {
	a := &Amplifier{Gain: 10, ClipLevel: 1}
	if got := a.Process(1, 1e6); got != 1 {
		t.Errorf("clip high = %v", got)
	}
	a.Reset()
	if got := a.Process(-1, 1e6); got != -1 {
		t.Errorf("clip low = %v", got)
	}
}

func TestAmplifierSlewLimiting(t *testing.T) {
	// A step through a slew-limited amp ramps at SR volts/second.
	a := &Amplifier{Gain: 1, SlewRate: 1e6} // 1 V/µs
	fs := 1e7                               // 10 MS/s -> max 0.1 V/sample
	x := make([]float64, 20)
	for i := 1; i < len(x); i++ {
		x[i] = 1 // step at sample 1
	}
	y := a.ProcessAll(x, fs)
	if y[0] != 0 {
		t.Errorf("y[0] = %v", y[0])
	}
	for i := 1; i <= 10; i++ {
		want := 0.1 * float64(i)
		if math.Abs(y[i]-want) > 1e-9 {
			t.Errorf("y[%d] = %v, want %v (slew ramp)", i, y[i], want)
		}
	}
	if math.Abs(y[15]-1) > 1e-9 {
		t.Errorf("y[15] = %v, want settled 1", y[15])
	}
}

func TestAmplifierHD3ProducesThirdHarmonic(t *testing.T) {
	fs := 65536.0
	n := 8192
	x, err := MultiTone([]Tone{{Freq: 1024, Amp: 1}}, fs, n)
	if err != nil {
		t.Fatal(err)
	}
	a := &Amplifier{Gain: 1, HD3: 0.04}
	y := a.ProcessAll(x, fs)
	thd, err := dsp.THD(y, 1024, fs, 5)
	if err != nil {
		t.Fatal(err)
	}
	// cos³ puts HD3/4 at the third harmonic: 0.01 -> about -40 dB
	// relative to the (slightly grown) fundamental.
	if thd > -35 || thd < -45 {
		t.Errorf("THD = %v dB, want around -40", thd)
	}
}

func TestNoiseDeterministicBounded(t *testing.T) {
	n1 := NewNoise(42, 0.5)
	n2 := NewNoise(42, 0.5)
	for i := 0; i < 1000; i++ {
		v1, v2 := n1.Next(), n2.Next()
		if v1 != v2 {
			t.Fatal("noise not deterministic")
		}
		if v1 < -0.5 || v1 > 0.5 {
			t.Fatalf("noise sample %v out of bounds", v1)
		}
	}
	// Zero seed is replaced, not propagated.
	nz := NewNoise(0, 1)
	if nz.Next() == 0 && nz.Next() == 0 {
		t.Error("zero seed produced zero stream")
	}
}

func TestBiquadReset(t *testing.T) {
	f, err := ButterworthLowpass(2, 60e3, 1.7e6)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 0.5, -0.25, 0.75}
	y1 := f.ProcessAll(x)
	y2 := f.ProcessAll(x)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("ProcessAll is not stateless across calls (Reset broken)")
		}
	}
}

func BenchmarkButterworth4Order4551(b *testing.B) {
	f, err := ButterworthLowpass(4, 60e3, 1.7e6)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 4551)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ProcessAll(x)
	}
}
