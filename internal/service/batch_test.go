package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
)

// rawBatchResponse mirrors BatchResponse with raw item responses, so
// tests can compare an item's JSON against an individual /v1/plan body
// token-for-token.
type rawBatchResponse struct {
	Items []struct {
		Status   int             `json:"status"`
		Response json.RawMessage `json:"response"`
		Error    string          `json:"error"`
	} `json:"items"`
	Deduped int `json:"deduped"`
}

// compact strips JSON whitespace, leaving every token — in particular
// every float literal — byte-for-byte intact.
func compact(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	return buf.Bytes()
}

// TestBatchItemsByteIdenticalToPlan pins the batch contract: every
// item's response carries exactly the tokens the same request gets from
// POST /v1/plan — across benchmarks, widths, weights, and the
// exhaustive and bounded solver flags.
func TestBatchItemsByteIdenticalToPlan(t *testing.T) {
	_, ts := newTestServer(t)
	wt25, wt75 := 0.25, 0.75
	items := []PlanRequest{
		{Width: 32},
		{Width: 24, WT: &wt25},
		{Width: 48, WT: &wt75, Exhaustive: true},
		{Width: 32, Benchmark: "d695m"},
		{Width: 32, Exhaustive: true, Bounded: true},
	}
	status, body := post(t, ts, "/v1/batch", BatchRequest{Items: items})
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, body)
	}
	var batch rawBatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Items) != len(items) {
		t.Fatalf("batch answered %d items, want %d", len(batch.Items), len(items))
	}
	for i, item := range items {
		got := batch.Items[i]
		if got.Status != http.StatusOK {
			t.Fatalf("item %d: status %d: %s", i, got.Status, got.Error)
		}
		planStatus, planBody := post(t, ts, "/v1/plan", item)
		if planStatus != http.StatusOK {
			t.Fatalf("item %d direct plan: status %d: %s", i, planStatus, planBody)
		}
		if !bytes.Equal(compact(t, got.Response), compact(t, planBody)) {
			t.Errorf("item %d: batch response differs from individual /v1/plan", i)
		}
	}
}

// TestBatchDedupesIdenticalItems: identically-answering items share one
// planning execution and the response says how many were folded.
func TestBatchDedupesIdenticalItems(t *testing.T) {
	s := New(Options{})
	t.Cleanup(s.Close)
	wt := 0.5
	items := []PlanRequest{
		{Width: 32},
		{Width: 32, WT: &wt},          // same as item 0 (0.5 is the default)
		{Width: 32, TimeoutMS: 12345}, // timeout is not part of the answer
		{Width: 24},
	}
	before := s.Engine().Metrics().Plans
	resp, err := s.Batch(context.Background(), BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Deduped != 2 {
		t.Errorf("Deduped = %d, want 2", resp.Deduped)
	}
	ran := s.Engine().Metrics().Plans - before
	if ran != 2 {
		t.Errorf("engine ran %d plans, want 2 (unique items)", ran)
	}
	for i, item := range resp.Items {
		if item.Status != http.StatusOK || item.Response == nil {
			t.Errorf("item %d: status %d %q", i, item.Status, item.Error)
		}
	}
	// Deduplicated items share the exact response value.
	if a, b := resp.Items[0].Response, resp.Items[1].Response; a != b {
		t.Error("deduped items carry different response pointers")
	}
}

// TestBatchPerItemErrors: invalid items fail alone with the status
// /v1/plan would give them; valid items still plan; the call is 200.
func TestBatchPerItemErrors(t *testing.T) {
	_, ts := newTestServer(t)
	items := []PlanRequest{
		{Width: 0},                            // 400: width
		{Width: 32},                           // ok
		{Width: 32, Benchmark: "no-such-soc"}, // 400: unknown benchmark
		{Width: 32, Benchmark: "no-such-soc"}, // same bad request: stays a singleton
	}
	status, body := post(t, ts, "/v1/batch", BatchRequest{Items: items})
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	wantStatus := []int{http.StatusBadRequest, http.StatusOK, http.StatusBadRequest, http.StatusBadRequest}
	for i, want := range wantStatus {
		if batch.Items[i].Status != want {
			t.Errorf("item %d: status %d, want %d (%s)", i, batch.Items[i].Status, want, batch.Items[i].Error)
		}
	}
	if batch.Items[1].Response == nil {
		t.Error("valid item lost its response")
	}
	if batch.Items[0].Error == "" || batch.Items[2].Error == "" {
		t.Error("failed items carry no error text")
	}
}

// TestBatchValidation: whole-batch failures are call failures.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t)
	status, body := post(t, ts, "/v1/batch", BatchRequest{})
	if status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d: %s", status, body)
	}
	big := BatchRequest{Items: make([]PlanRequest, MaxBatchItems+1)}
	for i := range big.Items {
		big.Items[i] = PlanRequest{Width: 32}
	}
	status, body = post(t, ts, "/v1/batch", big)
	if status != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d: %s", status, body)
	}
}

// TestBatchWiderThanPool: a batch with more unique items than the
// worker pool has slots drains at pool concurrency instead of
// deadlocking (the batch call itself holds no slot).
func TestBatchWiderThanPool(t *testing.T) {
	s := New(Options{Workers: 2, MaxConcurrent: 1})
	t.Cleanup(s.Close)
	wt25, wt75 := 0.25, 0.75
	items := []PlanRequest{
		{Width: 16},
		{Width: 24},
		{Width: 32, WT: &wt25},
		{Width: 32, WT: &wt75},
	}
	resp, err := s.Batch(context.Background(), BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range resp.Items {
		if item.Status != http.StatusOK {
			t.Errorf("item %d: status %d %q", i, item.Status, item.Error)
		}
	}
}
