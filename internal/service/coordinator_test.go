package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// distTestGrid is the sweep the distributed tests run: small enough to
// stay fast, wide enough that both workers own several cells.
var distTestGrid = SweepRequest{Widths: []int{32, 40, 48}, WTs: []float64{0.5, 0.25}}

// newWorker boots one in-process worker server.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	s := New(Options{})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newCoordinator2 boots a coordinator over the given worker URLs,
// returning both halves so tests can reach the fleet and the
// coordinator's injectable sleep.
func newCoordinator2(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// newCoordinatorServer boots a coordinator over the given worker URLs.
func newCoordinatorServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	_, ts := newCoordinator2(t, opts)
	return ts
}

// inProcessSweepBytes is the reference: the same sweep served by a
// standalone (non-coordinating) server.
func inProcessSweepBytes(t *testing.T, req SweepRequest) []byte {
	t.Helper()
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	status, body := post(t, ts, "/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("in-process sweep: status %d: %s", status, body)
	}
	return body
}

// A coordinator fanning a sweep across two healthy workers must return
// the exact bytes of an in-process sweep — the distribution layer adds
// transport and placement, never drift.
func TestDistributedSweepBitIdenticalToInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	want := inProcessSweepBytes(t, distTestGrid)

	wa, wb := newWorker(t), newWorker(t)
	coord := newCoordinatorServer(t, Options{WorkerURLs: []string{wa.URL, wb.URL}})
	status, got := post(t, coord, "/v1/sweep", distTestGrid)
	if status != http.StatusOK {
		t.Fatalf("distributed sweep: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed sweep differs from in-process sweep:\ndistributed %d bytes, in-process %d bytes", len(got), len(want))
	}

	// Both workers actually served shards.
	series := scrape(t, coord)
	for _, w := range []string{wa.URL, wb.URL} {
		if series[`msoc_worker_shards_total{result="ok",worker="`+w+`"}`] == 0 {
			t.Errorf("worker %s served no shard; the sweep was not distributed", w)
		}
	}
}

// The worker endpoint alone must honor the round-robin contract: the
// two halves of a 2-way split reinterleave into the full sweep.
func TestShardEndpointPartialsInterleave(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	_, ts := newTestServer(t)

	var full SweepResponse
	status, body := post(t, ts, "/v1/sweep", distTestGrid)
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}

	parts := make([]ShardResponse, 2)
	for s := 0; s < 2; s++ {
		status, body := post(t, ts, "/v1/shard", ShardRequest{
			Widths: distTestGrid.Widths, WTs: distTestGrid.WTs, Shard: s, Of: 2,
		})
		if status != http.StatusOK {
			t.Fatalf("shard %d: status %d: %s", s, status, body)
		}
		if err := json.Unmarshal(body, &parts[s]); err != nil {
			t.Fatal(err)
		}
	}
	cells := len(full.Points)
	for i := 0; i < cells; i++ {
		pt := parts[i%2].Points[i/2]
		if pt.Width != full.Points[i].Width || pt.Result.Best.Cost != full.Points[i].Result.Best.Cost {
			t.Errorf("cell %d: shard point (W=%d cost=%v) != full point (W=%d cost=%v)",
				i, pt.Width, pt.Result.Best.Cost, full.Points[i].Width, full.Points[i].Result.Best.Cost)
		}
	}
}

// A worker that answers 500 to every shard must have its shards
// reassigned to the healthy worker — and the merged bytes must still
// equal the in-process sweep.
func TestCoordinatorReassignsShardsFromFailingWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	want := inProcessSweepBytes(t, distTestGrid)

	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"disk on fire"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)
	healthy := newWorker(t)

	coord := newCoordinatorServer(t, Options{WorkerURLs: []string{broken.URL, healthy.URL}})
	status, got := post(t, coord, "/v1/sweep", distTestGrid)
	if status != http.StatusOK {
		t.Fatalf("sweep with one broken worker: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("reassigned sweep differs from in-process sweep")
	}

	series := scrape(t, coord)
	if series[`msoc_worker_shards_total{result="error",worker="`+broken.URL+`"}`] == 0 {
		t.Error("broken worker's failures not counted")
	}
	if series[`msoc_worker_shards_total{result="ok",worker="`+healthy.URL+`"}`] == 0 {
		t.Error("healthy worker served nothing")
	}
}

// A worker that hangs past the shard deadline must be cancelled and its
// shard retried on the other worker; the sweep still completes with
// in-process bytes. The grid is a single cell so the sweep is exactly
// one shard whose home is the hanging worker — the deadline's clock
// races no real solver work, keeping the test deterministic under
// -race on a loaded machine (the healthy retry gets the full shard
// deadline for its one plan).
func TestCoordinatorRetriesHangingWorkerAfterShardDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	const shardTimeout = 3 * time.Second
	oneCell := SweepRequest{Widths: []int{32}, WTs: []float64{0.5}}
	want := inProcessSweepBytes(t, oneCell)

	hung := make(chan struct{}, 1)
	hanging := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case hung <- struct{}{}:
		default:
		}
		// Drain the body so net/http's background read can notice the
		// coordinator abandoning the connection, then hold the request
		// until that cancellation arrives.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(hanging.Close)
	healthy := newWorker(t)

	coord := newCoordinatorServer(t, Options{
		WorkerURLs:   []string{hanging.URL, healthy.URL},
		ShardTimeout: shardTimeout,
	})
	t0 := time.Now()
	status, got := post(t, coord, "/v1/sweep", oneCell)
	if status != http.StatusOK {
		t.Fatalf("sweep with a hanging worker: status %d: %s", status, got)
	}
	select {
	case <-hung:
	default:
		t.Fatal("hanging worker never saw a shard; the timeout path was not exercised")
	}
	if elapsed := time.Since(t0); elapsed < shardTimeout {
		t.Errorf("sweep finished in %v, before the shard deadline could have fired", elapsed)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-timeout sweep differs from in-process sweep")
	}
	series := scrape(t, coord)
	if series[`msoc_worker_shards_total{result="timeout",worker="`+hanging.URL+`"}`] == 0 {
		t.Error("shard timeout not counted against the hanging worker")
	}
}

// When every worker fails, the sweep must come back as a structured
// 502: per-worker, per-shard failure detail in the body, not a bare
// string.
func TestCoordinatorAllWorkersFailingYields502WithDetail(t *testing.T) {
	brokenA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no planner here"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(brokenA.Close)
	brokenB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "teapot", http.StatusTeapot)
	}))
	t.Cleanup(brokenB.Close)

	coord := newCoordinatorServer(t, Options{WorkerURLs: []string{brokenA.URL, brokenB.URL}})
	status, body := post(t, coord, "/v1/sweep", distTestGrid)
	if status != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 (%s)", status, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("502 body not JSON: %s", body)
	}
	if er.Error == "" || !strings.Contains(er.Error, "distributed sweep failed") {
		t.Errorf("502 error = %q, want a distributed-sweep failure summary", er.Error)
	}
	if len(er.Workers) < 2 {
		t.Fatalf("502 carries %d worker failures, want at least one per worker: %s", len(er.Workers), body)
	}
	seenWorker := map[string]bool{}
	for _, f := range er.Workers {
		seenWorker[f.Worker] = true
		if f.Worker == "" || f.Error == "" {
			t.Errorf("failure lacks detail: %+v", f)
		}
		if f.Shard < 0 || f.Shard >= len(distTestGrid.Widths)*len(distTestGrid.WTs) {
			t.Errorf("failure names impossible shard %d", f.Shard)
		}
	}
	if !seenWorker[brokenA.URL] || !seenWorker[brokenB.URL] {
		t.Errorf("502 does not name both workers: %s", body)
	}
	// The teapot status and the worker's own error body must survive
	// into the detail.
	if !strings.Contains(string(body), "418") || !strings.Contains(string(body), "no planner here") {
		t.Errorf("per-worker detail lost the upstream status/body: %s", body)
	}
}

// Warm-started sweeps chain widths sequentially, so a coordinator keeps
// them in-process instead of distributing — even with workers that
// would fail every shard.
func TestCoordinatorKeepsWarmSweepInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "unreachable", http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)

	coord := newCoordinatorServer(t, Options{WorkerURLs: []string{broken.URL}})
	req := distTestGrid
	req.WarmStart = true
	status, body := post(t, coord, "/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("warm sweep on a coordinator: status %d: %s", status, body)
	}
	series := scrape(t, coord)
	if series[`msoc_worker_shards_total{result="error",worker="`+broken.URL+`"}`] != 0 {
		t.Error("warm sweep touched the workers; it must plan in-process")
	}
}

// /v1/shard validation: bad shard geometry and empty shards are 400s,
// not 500s.
func TestShardRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []ShardRequest{
		{Widths: []int{32}, Shard: 0, Of: 0},                     // of out of range
		{Widths: []int{32}, Shard: 2, Of: 2},                     // shard out of range
		{Widths: []int{32}, Shard: 1, Of: 2},                     // owns no cells
		{Widths: []int{32, 32}, Shard: 0, Of: 1},                 // duplicate width axis
		{Widths: []int{32, 40}, WTs: []float64{0.5, 0.5}, Of: 1}, // duplicate weight axis
		{Widths: nil, Shard: 0, Of: 1},                           // no widths
	}
	for _, req := range bad {
		status, body := post(t, ts, "/v1/shard", req)
		if status != http.StatusBadRequest {
			t.Errorf("shard %+v: status %d, want 400 (%s)", req, status, body)
		}
	}
}

// A worker list that normalizes to nothing must not build a
// coordinator: the server stays standalone and sweeps still return
// real results, never a "merged" grid of zero shards.
func TestEmptyNormalizedWorkerListStaysStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	coord := newCoordinatorServer(t, Options{WorkerURLs: []string{"/", "  "}})
	req := SweepRequest{Widths: []int{32}, WTs: []float64{0.5}}
	status, got := post(t, coord, "/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", status, got)
	}
	var resp SweepResponse
	if err := json.Unmarshal(got, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 1 || resp.Points[0].Result == nil || resp.Points[0].Width != 32 {
		t.Fatalf("sweep returned hollow points: %s", got)
	}
}

// recordingSleep replaces the coordinator's retry backoff with an
// instant no-op that records the requested waits, keeping retry tests
// fast while pinning the backoff schedule.
type recordingSleep struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (r *recordingSleep) sleep(ctx context.Context, d time.Duration) error {
	r.mu.Lock()
	r.waits = append(r.waits, d)
	r.mu.Unlock()
	return ctx.Err()
}

// newBrokenWorker boots a worker that 500s every request.
func newBrokenWorker(t *testing.T, msg string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, msg, http.StatusInternalServerError)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// Shard reassignment must back off between attempts — exponentially
// from RetryBackoff, with no wait before the first attempt — rather
// than hammering the fleet instantly. The injected sleep keeps the test
// instant and pins the exact schedule.
func TestCoordinatorRetryBackoffSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	oneCell := SweepRequest{Widths: []int{32}, WTs: []float64{0.5}}
	want := inProcessSweepBytes(t, oneCell)

	brokenA := newBrokenWorker(t, "down")
	brokenB := newBrokenWorker(t, "down")
	healthy := newWorker(t)

	base := 100 * time.Millisecond
	rec := &recordingSleep{}
	// The one-cell sweep's single shard is homed on brokenA (first in
	// insertion order, all capacities 1), so the attempt chain is
	// brokenA → sleep(base) → brokenB → sleep(2·base) → healthy.
	s, ts := newCoordinator2(t, Options{
		WorkerURLs:   []string{brokenA.URL, brokenB.URL, healthy.URL},
		RetryBackoff: base,
	})
	s.coord.sleep = rec.sleep

	status, got := post(t, ts, "/v1/sweep", oneCell)
	if status != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("retried sweep differs from in-process sweep")
	}
	rec.mu.Lock()
	waits := append([]time.Duration(nil), rec.waits...)
	rec.mu.Unlock()
	if len(waits) != 2 || waits[0] != base || waits[1] != 2*base {
		t.Fatalf("backoff schedule = %v, want [%v %v]", waits, base, 2*base)
	}
}

// A shard failure is fleet evidence, not private to the retry loop: the
// failing worker must turn suspect fleet-wide, and once every healthy
// worker exists the next sweep's shards must avoid it entirely.
func TestCoordinatorShardFailureFoldsIntoFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	oneCell := SweepRequest{Widths: []int{32}, WTs: []float64{0.5}}
	broken := newBrokenWorker(t, "disk on fire")
	healthy := newWorker(t)

	rec := &recordingSleep{}
	s, ts := newCoordinator2(t, Options{
		WorkerURLs: []string{broken.URL, healthy.URL},
	})
	s.coord.sleep = rec.sleep

	if status, body := post(t, ts, "/v1/sweep", oneCell); status != http.StatusOK {
		t.Fatalf("first sweep: status %d: %s", status, body)
	}
	var snap []WorkerInfo
	for _, wi := range s.fleet.snapshot() {
		snap = append(snap, wi)
	}
	if snap[0].URL != broken.URL || snap[0].State != WorkerSuspect {
		t.Fatalf("broken worker after failed shard: %+v, want suspect", snap[0])
	}
	if snap[0].LastError == "" {
		t.Error("suspect worker carries no failure detail")
	}
	if snap[1].State != WorkerHealthy {
		t.Fatalf("healthy worker: %+v", snap[1])
	}

	// The second sweep must be homed entirely on the healthy worker:
	// the broken one sees no further attempts.
	errsBefore := scrape(t, ts)[`msoc_worker_shards_total{result="error",worker="`+broken.URL+`"}`]
	if status, body := post(t, ts, "/v1/sweep", oneCell); status != http.StatusOK {
		t.Fatalf("second sweep: status %d: %s", status, body)
	}
	if errsAfter := scrape(t, ts)[`msoc_worker_shards_total{result="error",worker="`+broken.URL+`"}`]; errsAfter != errsBefore {
		t.Errorf("suspect worker was assigned again: error count %v -> %v", errsBefore, errsAfter)
	}
}

// A drifted worker that returns a well-formed partial with wrong grid
// coordinates must be treated like any other failure — shard
// reassigned, worker named — and the merged bytes still equal the
// in-process sweep.
func TestCoordinatorReassignsOnMergeContractViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	oneCell := SweepRequest{Widths: []int{32}, WTs: []float64{0.5}}
	want := inProcessSweepBytes(t, oneCell)

	// The drifted worker passes the hash/geometry checks but plants its
	// point on the wrong width.
	backing := New(Options{})
	drifted := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req ShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("drifted worker: %v", err)
		}
		resp, err := backing.Shard(r.Context(), req)
		if err != nil {
			t.Errorf("drifted worker: %v", err)
			return
		}
		resp.Points[0].Width++ // the drift
		w.Header().Set("Content-Type", "application/json")
		WriteJSON(w, resp)
	}))
	t.Cleanup(drifted.Close)
	healthy := newWorker(t)

	coord := newCoordinatorServer(t, Options{WorkerURLs: []string{drifted.URL, healthy.URL}})
	status, got := post(t, coord, "/v1/sweep", oneCell)
	if status != http.StatusOK {
		t.Fatalf("sweep with a drifted worker: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-drift sweep differs from in-process sweep")
	}
	series := scrape(t, coord)
	if series[`msoc_worker_shards_total{result="error",worker="`+drifted.URL+`"}`] == 0 {
		t.Error("drifted worker's contract violation not counted as a failure")
	}
}
