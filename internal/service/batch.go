package service

// POST /v1/batch: many plan requests in one call. The batch endpoint
// exists for clients that price a family of designs in one shot — a
// generated SOC population, a design revision against its baseline —
// where per-request HTTP round trips and duplicate work dominate. Each
// item runs the exact POST /v1/plan code path (Server.Plan), so a
// successful item's response is byte-identical to the response the same
// request would get on its own; items that answer identically (same
// design hash, width, weight bits and solver flags) are deduplicated
// onto one planning execution. Items draw slots from the server's
// bounded worker pool individually — the batch handler itself never
// holds a slot, so a batch wider than the pool cannot deadlock it; the
// pool just drains the batch at its usual concurrency.

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"

	"mixsoc/internal/core"
)

// MaxBatchItems bounds the plan requests of one POST /v1/batch call.
const MaxBatchItems = 256

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Items are the plan requests to answer, in order. Each item's
	// fields mean exactly what they mean on POST /v1/plan, except
	// timeout_ms, which is ignored per item: the batch-level TimeoutMS
	// is the one deadline the whole call runs under.
	Items []PlanRequest `json:"items"`
	// TimeoutMS caps the whole batch's planning time in milliseconds; 0
	// inherits the server default. Values above the server cap are
	// clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchItem is one item's outcome inside a BatchResponse.
type BatchItem struct {
	// Status is the HTTP status the same request would have received
	// from POST /v1/plan: 200 with Response set, or an error status
	// with Error set.
	Status int `json:"status"`
	// Response is the item's plan, byte-identical to the corresponding
	// POST /v1/plan response body. Present exactly when Status is 200.
	Response *PlanResponse `json:"response,omitempty"`
	// Error describes the failure when Status is not 200.
	Error string `json:"error,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch. The call
// itself answers 200 whenever the batch was well-formed; per-item
// failures are reported in their BatchItem, not as a call failure.
type BatchResponse struct {
	// Items are the outcomes, index-aligned with the request's items.
	Items []BatchItem `json:"items"`
	// Deduped counts the items answered by another item's execution:
	// requests with the same design content, width, weights and solver
	// flags plan once and share the result.
	Deduped int `json:"deduped,omitempty"`
}

// batchTask is one deduplicated planning execution and its outcome.
type batchTask struct {
	item PlanRequest
	resp *PlanResponse
	err  error
}

// batchKey is the dedup identity of a plan request: everything the
// response bytes depend on. Items whose designs fail to resolve return
// an error and stay singletons (each reports its own failure).
func batchKey(item PlanRequest) (string, error) {
	d, err := resolveDesign(item.Design, item.SOC, item.Benchmark)
	if err != nil {
		return "", err
	}
	hash, err := core.DesignHash(d)
	if err != nil {
		return "", err
	}
	wt := 0.5
	if item.WT != nil {
		wt = *item.WT
	}
	return fmt.Sprintf("%s|%d|%016x|%t|%t|%s", hash, item.Width, math.Float64bits(wt), item.Exhaustive, item.Bounded, item.Backend), nil
}

// Batch computes the response of POST /v1/batch for req — the exact
// code path the HTTP handler runs. Every unique item fans out through
// Server.Plan concurrently; the pool's MaxConcurrent bound (not the
// batch width) sets how many plan at once.
func (s *Server) Batch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	if len(req.Items) == 0 {
		return nil, badRequestf("batch needs at least one item")
	}
	if len(req.Items) > MaxBatchItems {
		return nil, badRequestf("batch of %d items exceeds the %d-item bound", len(req.Items), MaxBatchItems)
	}
	ctx, cancel := s.requestCtx(ctx, req.TimeoutMS)
	defer cancel()

	// Group identically-answering items onto one execution each.
	// Unresolvable items become singletons keyed by index, so each
	// reports its own validation error.
	keys := make([]string, len(req.Items))
	tasks := make(map[string]*batchTask, len(req.Items))
	order := make([]string, 0, len(req.Items))
	for i, item := range req.Items {
		key, err := batchKey(item)
		if err != nil {
			key = fmt.Sprintf("#%d", i)
		}
		keys[i] = key
		if tasks[key] == nil {
			tasks[key] = &batchTask{item: item}
			order = append(order, key)
		}
	}

	var wg sync.WaitGroup
	for _, key := range order {
		tk := tasks[key]
		wg.Add(1)
		go func() {
			defer wg.Done()
			item := tk.item
			item.TimeoutMS = 0 // the batch deadline in ctx governs
			tk.resp, tk.err = s.Plan(ctx, item)
		}()
	}
	wg.Wait()

	resp := &BatchResponse{
		Items:   make([]BatchItem, len(req.Items)),
		Deduped: len(req.Items) - len(order),
	}
	planned, failed := 0, 0
	for i, key := range keys {
		tk := tasks[key]
		if tk.err != nil {
			status, _ := statusFor(tk.err)
			resp.Items[i] = BatchItem{Status: status, Error: tk.err.Error()}
			failed++
			continue
		}
		resp.Items[i] = BatchItem{Status: http.StatusOK, Response: tk.resp}
		planned++
	}
	s.metrics.countBatch(planned, resp.Deduped, failed)
	return resp, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Batch(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeResponse(w, resp)
}
