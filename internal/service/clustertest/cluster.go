// Package clustertest boots an in-process msoc-serve cluster — N
// workers plus one coordinator — and injects chaos: workers can be
// killed (listener and every live connection torn down), hung (every
// handler stalls, SIGSTOP-style, until released), restarted on their
// original address, and hot-added mid-sweep. The chaos suite in this
// package drives those faults while asserting the coordinator's merged
// SweepResponse bytes stay identical to an in-process sweep — the
// determinism contract the paper's tables pin.
//
// Workers are real service.Servers behind real TCP listeners (not
// httptest), because kill-and-restart must rebind the same address the
// fleet knows the worker by.
package clustertest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mixsoc/internal/service"
)

// Worker is one cluster member whose process-level failure modes are
// injectable. Its three states mirror what a fleet sees in production:
// serving (healthy process), hung (alive but stalled — accepts
// connections, never answers), and killed (listener closed, live
// connections reset).
type Worker struct {
	t    *testing.T
	addr string // fixed for the worker's lifetime, across restarts
	svc  *service.Server

	mu      sync.Mutex
	hangCh  chan struct{} // non-nil while hung; closing it releases stalled requests
	httpSrv *http.Server
	running bool

	// shardSeen is closed the first time a /v1/shard request arrives,
	// so tests can fault the worker only after it is mid-sweep.
	shardOnce sync.Once
	shardSeen chan struct{}
}

// URL returns the worker's base URL; it survives Kill/Restart, which is
// the point — the fleet re-admits the same member, not a new one.
func (w *Worker) URL() string { return "http://" + w.addr }

// ShardSeen is closed once the worker has received at least one
// /v1/shard request; wait on it to fault the worker mid-sweep.
func (w *Worker) ShardSeen() <-chan struct{} { return w.shardSeen }

// ServeHTTP wraps the worker's service handler with the chaos valve:
// while hung, every request — probes and shards alike — blocks until
// the caller's context gives up or Unhang releases it.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/shard" {
		w.shardOnce.Do(func() { close(w.shardSeen) })
	}
	w.mu.Lock()
	hangCh := w.hangCh
	w.mu.Unlock()
	if hangCh != nil {
		select {
		case <-hangCh: // released: serve normally
		case <-r.Context().Done():
			return // the caller gave up, as it would on a stalled process
		}
	}
	w.svc.Handler().ServeHTTP(rw, r)
}

// Hang stalls the worker: it keeps accepting connections but no request
// makes progress, like a SIGSTOPped process behind a live socket.
func (w *Worker) Hang() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hangCh == nil {
		w.hangCh = make(chan struct{})
	}
}

// Unhang releases a hung worker; stalled requests still waiting resume
// and serve normally.
func (w *Worker) Unhang() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hangCh != nil {
		close(w.hangCh)
		w.hangCh = nil
	}
}

// Kill tears the worker down the way a dead process would: the listener
// closes and every established connection is reset, so in-flight shards
// fail immediately rather than timing out.
func (w *Worker) Kill() {
	w.mu.Lock()
	srv := w.httpSrv
	w.httpSrv = nil
	w.running = false
	w.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// Restart rebinds the worker's original address and serves again; the
// fleet's next successful probe re-admits it.
func (w *Worker) Restart() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.running {
		w.t.Fatalf("Restart of running worker %s", w.addr)
	}
	ln, err := net.Listen("tcp", w.addr)
	if err != nil {
		w.t.Fatalf("worker %s: restart: %v", w.addr, err)
	}
	w.serveLocked(ln)
}

// serveLocked starts serving on ln; callers hold w.mu.
func (w *Worker) serveLocked(ln net.Listener) {
	srv := &http.Server{Handler: w}
	w.httpSrv = srv
	w.running = true
	go srv.Serve(ln)
}

// Cluster is N chaos-capable workers plus one coordinator whose fleet
// timings are compressed so probes, evictions, and re-admissions play
// out in milliseconds.
type Cluster struct {
	t         *testing.T
	Workers   []*Worker
	Coord     *service.Server
	Front     *httptest.Server // the coordinator's HTTP face
	coordOpts service.Options  // what the coordinator was built from, for restarts
}

// Timings are the compressed fleet timings every cluster coordinator
// runs with; exported so scenario assertions can reason about them.
var Timings = service.Options{
	ProbeInterval:         20 * time.Millisecond,
	ProbeTimeout:          100 * time.Millisecond,
	ProbeFailureThreshold: 2,
	ReadmitBackoff:        20 * time.Millisecond,
	ShardTimeout:          2 * time.Second,
	RetryBackoff:          time.Millisecond,
}

// New boots n workers and a coordinator over all of them. Every piece
// is cleaned up through t.Cleanup.
func New(t *testing.T, n int) *Cluster {
	return NewWithCoordinator(t, n, nil)
}

// NewWithCoordinator boots n workers and a coordinator built from the
// compressed Timings plus the caller's overrides (applied after the
// worker URLs are filled in) — scenarios that need a job directory,
// their own shard deadlines, or a single-attempt retry budget
// configure them here.
func NewWithCoordinator(t *testing.T, n int, configure func(*service.Options)) *Cluster {
	t.Helper()
	c := &Cluster{t: t}
	for i := 0; i < n; i++ {
		c.Workers = append(c.Workers, c.AddWorker())
	}
	opts := Timings
	for _, w := range c.Workers {
		opts.WorkerURLs = append(opts.WorkerURLs, w.URL())
	}
	if configure != nil {
		configure(&opts)
	}
	c.startCoordinator(opts)
	t.Cleanup(func() {
		// Always the *current* coordinator; both closes are idempotent,
		// so a scenario that already killed it is fine.
		c.Front.Close()
		c.Coord.Close()
	})
	return c
}

// startCoordinator boots (or re-boots) the coordinator from opts and
// gives it a fresh HTTP front.
func (c *Cluster) startCoordinator(opts service.Options) {
	c.coordOpts = opts
	c.Coord = service.New(opts)
	c.Front = httptest.NewServer(c.Coord.Handler())
}

// KillCoordinator tears the coordinator down: its HTTP front closes
// and Close cancels every detached job runner mid-shard — from a
// durable job's point of view, a crash at a checkpoint boundary
// (checkpoints already written stay on disk; nothing else does).
func (c *Cluster) KillCoordinator() {
	c.Front.Close()
	c.Coord.Close()
}

// RestartCoordinator boots a fresh coordinator from the same options
// the dead one had — same fleet, same job directory — which is where
// durable-job recovery runs, exactly like a restarted msoc-serve
// process. The front URL changes (a restarted process rarely keeps its
// ephemeral port); reach it through c.Front as always.
func (c *Cluster) RestartCoordinator() {
	c.startCoordinator(c.coordOpts)
}

// AddWorker boots one serving worker without telling the coordinator —
// pair with Admit (or POST /v1/workers) for hot-add scenarios.
func (c *Cluster) AddWorker() *Worker {
	c.t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.t.Fatal(err)
	}
	w := &Worker{
		t:         c.t,
		addr:      ln.Addr().String(),
		svc:       service.New(service.Options{}),
		shardSeen: make(chan struct{}),
	}
	c.t.Cleanup(w.svc.Close)
	w.mu.Lock()
	w.serveLocked(ln)
	w.mu.Unlock()
	c.t.Cleanup(w.Kill)
	c.t.Cleanup(w.Unhang) // release any still-stalled handlers
	return w
}

// Admit adds a worker to the coordinator's fleet through the public
// membership API, exactly as an operator would.
func (c *Cluster) Admit(w *Worker) {
	c.t.Helper()
	status, body := c.post("/v1/workers", service.WorkersUpdateRequest{Add: []string{w.URL()}})
	if status != http.StatusOK {
		c.t.Fatalf("admit %s: status %d: %s", w.URL(), status, body)
	}
}

// Remove drops a worker from the fleet through the membership API.
func (c *Cluster) Remove(w *Worker) {
	c.t.Helper()
	status, body := c.post("/v1/workers", service.WorkersUpdateRequest{Remove: []string{w.URL()}})
	if status != http.StatusOK {
		c.t.Fatalf("remove %s: status %d: %s", w.URL(), status, body)
	}
}

// Sweep posts one sweep to the coordinator and returns the status and
// raw response bytes.
func (c *Cluster) Sweep(req service.SweepRequest) (int, []byte) {
	c.t.Helper()
	return c.post("/v1/sweep", req)
}

// SweepMatchesReference posts the sweep to the coordinator and fails
// the test unless the response is 200 with bytes identical to want
// (see Reference).
func (c *Cluster) SweepMatchesReference(req service.SweepRequest, want []byte, scenario string) {
	c.t.Helper()
	status, got := c.Sweep(req)
	if status != http.StatusOK {
		c.t.Fatalf("%s: sweep status %d: %s", scenario, status, got)
	}
	if !bytes.Equal(got, want) {
		c.t.Fatalf("%s: merged sweep differs from the in-process reference (%d vs %d bytes)",
			scenario, len(got), len(want))
	}
}

// Reference computes the sweep on a throwaway standalone server — the
// in-process bytes every chaotic merge must reproduce.
func Reference(t *testing.T, req service.SweepRequest) []byte {
	t.Helper()
	s := service.New(service.Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", marshal(t, req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference sweep: status %d: %s", resp.StatusCode, body)
	}
	return body
}

// WorkerStates fetches the fleet's view through GET /v1/workers, keyed
// by worker URL.
func (c *Cluster) WorkerStates() map[string]service.WorkerInfo {
	c.t.Helper()
	resp, err := http.Get(c.Front.URL + "/v1/workers")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var wr service.WorkersResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		c.t.Fatal(err)
	}
	states := make(map[string]service.WorkerInfo, len(wr.Workers))
	for _, wi := range wr.Workers {
		states[wi.URL] = wi
	}
	return states
}

// WaitState polls the fleet until the worker reaches the wanted
// lifecycle state, failing the test after the deadline.
func (c *Cluster) WaitState(w *Worker, state string, deadline time.Duration) {
	c.t.Helper()
	timeout := time.After(deadline)
	for {
		if wi, ok := c.WorkerStates()[w.URL()]; ok && wi.State == state {
			return
		}
		select {
		case <-timeout:
			wi := c.WorkerStates()[w.URL()]
			c.t.Fatalf("worker %s never reached %q within %v; fleet sees %+v", w.URL(), state, deadline, wi)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// ShardsServed reads the worker's ok-shard counter off the
// coordinator's /metrics scrape.
func (c *Cluster) ShardsServed(w *Worker) float64 {
	c.t.Helper()
	resp, err := http.Get(c.Front.URL + "/metrics")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	key := fmt.Sprintf("msoc_worker_shards_total{result=%q,worker=%q} ", "ok", w.URL())
	for _, line := range bytes.Split(body, []byte("\n")) {
		if bytes.HasPrefix(line, []byte(key)) {
			var v float64
			if _, err := fmt.Sscanf(string(line[len(key):]), "%g", &v); err != nil {
				c.t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// post sends one JSON request to the coordinator.
func (c *Cluster) post(path string, reqBody any) (int, []byte) {
	c.t.Helper()
	resp, err := http.Post(c.Front.URL+path, "application/json", marshal(c.t, reqBody))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, body
}

// marshal encodes a request body or fails the test.
func marshal(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}
