package clustertest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"mixsoc/internal/service"
)

// pollJob fetches the durable job's status off the current coordinator
// front, failing the test on anything but a 200.
func pollJob(t *testing.T, c *Cluster, id string) *service.JobResponse {
	t.Helper()
	resp, err := http.Get(c.Front.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sweeps/%s: status %d: %s", id, resp.StatusCode, body)
	}
	var jr service.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	return &jr
}

// waitJob polls the job until the predicate holds, failing after the
// deadline.
func waitJob(t *testing.T, c *Cluster, id string, deadline time.Duration, ok func(*service.JobResponse) bool, what string) *service.JobResponse {
	t.Helper()
	timeout := time.After(deadline)
	for {
		jr := pollJob(t, c, id)
		if ok(jr) {
			return jr
		}
		select {
		case <-timeout:
			t.Fatalf("job %s: %s never happened within %v; last state: %+v", id, what, deadline, jr)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// The durable-job contract under the worst realistic failure: the
// coordinator is killed mid-sweep — after some shards have checkpointed
// but before others could run — and its replacement must recover the
// job from disk, reuse the surviving checkpoints, re-run only the
// missing shards, and serve a result byte-identical to an undisturbed
// synchronous sweep. Identical re-submissions must keep landing on the
// same job ID across the restart.
func TestCoordinatorCrashResumeIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	want := Reference(t, chaosGrid)

	jobDir := t.TempDir()
	c := NewWithCoordinator(t, 2, func(o *service.Options) {
		o.JobDir = jobDir
		// A hung worker must pin its shard in-flight until the crash, not
		// get rescued by a retry — the compressed 2s shard timeout is far
		// too eager for that.
		o.ShardTimeout = 60 * time.Second
	})

	// Worker B stalls: its shard will sit in-flight while worker A's
	// shard completes and checkpoints.
	c.Workers[1].Hang()

	status, body := c.post("/v1/sweeps", chaosGrid)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", status, body)
	}
	var jr service.JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.ShardsTotal != 2 {
		t.Fatalf("2-worker fleet split the job into %d shards, want 2", jr.ShardsTotal)
	}

	waitJob(t, c, jr.ID, time.Minute, func(j *service.JobResponse) bool {
		return j.ShardsDone >= 1
	}, "first shard checkpoint")

	// Crash. Checkpoints written so far survive; everything else dies
	// with the process.
	c.KillCoordinator()
	c.Workers[1].Unhang()
	c.RestartCoordinator()

	// Recovery: the job is already known to the fresh coordinator, so an
	// identical submission dedupes onto it — the content-keyed ID is
	// derived, not remembered, and survives the crash.
	status, body = c.post("/v1/sweeps", chaosGrid)
	if status != http.StatusOK {
		t.Fatalf("post-restart resubmission: status %d, want 200 dedupe: %s", status, body)
	}
	var dup service.JobResponse
	if err := json.Unmarshal(body, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != jr.ID {
		t.Fatalf("post-restart resubmission minted job %s, want the crashed job %s", dup.ID, jr.ID)
	}

	final := waitJob(t, c, jr.ID, time.Minute, func(j *service.JobResponse) bool {
		return j.State == service.JobStateDone
	}, "recovery to done")
	if !final.Recovered {
		t.Error("resumed job not flagged recovered")
	}
	var recoveredShards int
	for _, sh := range final.Shards {
		if sh.Recovered {
			recoveredShards++
		}
	}
	if recoveredShards == 0 {
		t.Error("no shard flagged recovered; the pre-crash checkpoint was not reused")
	}
	if recoveredShards == final.ShardsTotal {
		t.Error("every shard flagged recovered; the crash should have left at least one to re-run")
	}

	// The payoff: bytes identical to an undisturbed sweep.
	resp, err := http.Get(c.Front.URL + "/v1/sweeps/" + jr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result after recovery: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("crash-resumed result differs from the in-process reference (%d vs %d bytes)", len(got), len(want))
	}

	// The replacement coordinator did real work: the formerly hung
	// worker served its shard after the restart.
	if c.ShardsServed(c.Workers[1]) == 0 {
		t.Error("worker B served no shards after restart; its missing shard was not re-run on it")
	}
}
