package clustertest

import (
	"net/http"
	"testing"
	"time"

	"mixsoc/internal/service"
)

// chaosGrid is the sweep every scenario runs: 6 cells, so a 2–3 worker
// fleet gets multiple shards each, small enough to keep the suite fast.
var chaosGrid = service.SweepRequest{Widths: []int{32, 40, 48}, WTs: []float64{0.5, 0.25}}

// oneCell pins the whole sweep to a single shard, for scenarios that
// need to know exactly where the first attempt lands.
var oneCell = service.SweepRequest{Widths: []int{32}, WTs: []float64{0.5}}

// waitFor is the ceiling on every lifecycle wait; with the cluster's
// compressed timings transitions land in tens of milliseconds, so this
// only bounds pathological scheduling.
const waitFor = 15 * time.Second

// Killing a worker mid-sweep — after it has received at least one shard
// — must not change a byte of the merged response: its remaining shards
// reassign to the survivors, and the fleet marks the corpse.
func TestChaosKillWorkerMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweeps are slow")
	}
	want := Reference(t, chaosGrid)
	c := New(t, 3)
	victim := c.Workers[0]

	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		status, body := c.Sweep(chaosGrid)
		done <- result{status, body}
	}()

	select {
	case <-victim.ShardSeen():
	case <-time.After(waitFor):
		t.Fatal("victim never received a shard; the sweep was not distributed")
	}
	victim.Kill()

	select {
	case res := <-done:
		if res.status != http.StatusOK {
			t.Fatalf("sweep across a mid-sweep kill: status %d: %s", res.status, res.body)
		}
		if string(res.body) != string(want) {
			t.Fatalf("merged sweep differs from the in-process reference (%d vs %d bytes)",
				len(res.body), len(want))
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("sweep never completed after the kill")
	}

	// The fleet learns: the dead worker leaves the healthy pool (via the
	// failed shard and the probes that follow).
	c.WaitState(victim, service.WorkerEvicted, waitFor)
}

// A hung worker — accepting connections, answering nothing — must be
// evicted by probes, sweeps must complete without it at reference
// bytes, and un-hanging it must bring it back into rotation.
func TestChaosHangEvictThenReadmit(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweeps are slow")
	}
	want := Reference(t, chaosGrid)
	c := New(t, 2)
	stalled, healthy := c.Workers[0], c.Workers[1]

	stalled.Hang()
	c.WaitState(stalled, service.WorkerEvicted, waitFor)

	// With the stalled worker evicted before assignment, the sweep runs
	// entirely on the survivor and never waits on a shard deadline.
	t0 := time.Now()
	c.SweepMatchesReference(chaosGrid, want, "sweep with a hung worker evicted")
	if elapsed := time.Since(t0); elapsed >= Timings.ShardTimeout {
		t.Errorf("sweep took %v — it waited on the hung worker instead of avoiding it", elapsed)
	}
	if got := c.ShardsServed(stalled); got != 0 {
		t.Errorf("hung worker served %v shards, want 0", got)
	}
	if got := c.ShardsServed(healthy); got == 0 {
		t.Error("survivor served no shards")
	}

	// Recovery: probes re-admit the released worker and the next sweep
	// uses it again.
	stalled.Unhang()
	c.WaitState(stalled, service.WorkerHealthy, waitFor)
	c.SweepMatchesReference(chaosGrid, want, "sweep after re-admission")
	if got := c.ShardsServed(stalled); got == 0 {
		t.Error("re-admitted worker served no shards")
	}
}

// Kill → restart on the same address: the fleet evicts the dead worker,
// then probes re-admit the restarted one, and it serves shards again —
// all without membership changes.
func TestChaosKillRestartReadmission(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweeps are slow")
	}
	want := Reference(t, chaosGrid)
	c := New(t, 2)
	mortal := c.Workers[0]

	mortal.Kill()
	c.WaitState(mortal, service.WorkerEvicted, waitFor)
	c.SweepMatchesReference(chaosGrid, want, "sweep with a dead worker")
	if got := c.ShardsServed(mortal); got != 0 {
		t.Errorf("dead worker served %v shards, want 0", got)
	}

	mortal.Restart()
	c.WaitState(mortal, service.WorkerHealthy, waitFor)
	c.SweepMatchesReference(chaosGrid, want, "sweep after restart")
	if got := c.ShardsServed(mortal); got == 0 {
		t.Error("restarted worker served no shards")
	}
}

// A worker hot-added while the only existing member is hanging must
// rescue the in-flight sweep: the retry loop re-consults the fleet per
// attempt, sees the newcomer, and completes at reference bytes.
func TestChaosHotAddRescuesHangingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweeps are slow")
	}
	want := Reference(t, oneCell)
	c := New(t, 1)
	stalled := c.Workers[0]
	stalled.Hang()

	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	go func() {
		status, body := c.Sweep(oneCell)
		done <- result{status, body}
	}()

	// Only once the sweep's single shard is stalled on the hung worker
	// does the newcomer join — strictly mid-sweep.
	select {
	case <-stalled.ShardSeen():
	case <-time.After(waitFor):
		t.Fatal("hung worker never received the shard")
	}
	rescuer := c.AddWorker()
	c.Admit(rescuer)

	select {
	case res := <-done:
		if res.status != http.StatusOK {
			t.Fatalf("hot-add rescue: status %d: %s", res.status, res.body)
		}
		if string(res.body) != string(want) {
			t.Fatal("rescued sweep differs from the in-process reference")
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("sweep never completed after the hot-add")
	}
	if got := c.ShardsServed(rescuer); got == 0 {
		t.Error("hot-added worker served no shards; the rescue did not go through it")
	}
}

// Removing a member through the API takes effect on the next sweep: the
// removed worker sees no shards and the fleet stops listing it, while
// the response bytes stay at reference.
func TestChaosMembershipRemoval(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweeps are slow")
	}
	want := Reference(t, chaosGrid)
	c := New(t, 2)
	leaver, stayer := c.Workers[0], c.Workers[1]

	c.Remove(leaver)
	if _, ok := c.WorkerStates()[leaver.URL()]; ok {
		t.Fatal("removed worker still listed by /v1/workers")
	}
	c.SweepMatchesReference(chaosGrid, want, "sweep after removal")
	if got := c.ShardsServed(leaver); got != 0 {
		t.Errorf("removed worker served %v shards, want 0", got)
	}
	if got := c.ShardsServed(stayer); got == 0 {
		t.Error("remaining worker served no shards")
	}
}
