// Package service exposes the planning Engine as an HTTP/JSON API —
// the serving layer of the reproduction. The endpoints:
//
//	POST /v1/plan     solve one (width, weights) point
//	POST /v1/batch    solve many plan requests in one call (deduped by
//	                  design hash; each item byte-identical to /v1/plan)
//	POST /v1/sweep    solve a (widths × weights) grid
//	POST /v1/shard    solve one round-robin shard of a sweep (worker half
//	                  of a distributed sweep)
//	POST /v1/sweeps   submit a durable async sweep job (deduped by
//	                  content key; survives coordinator restarts when
//	                  -job-dir is set)
//	GET  /v1/sweeps/{id}         job status with per-shard progress
//	GET  /v1/sweeps/{id}/result  finished job's bytes, identical to a
//	                             synchronous POST /v1/sweep
//	GET  /v1/sweeps/{id}/events  NDJSON stream of shard partials
//	GET  /v1/designs  live cache sessions and cache-hit metrics
//	GET  /metrics     Prometheus text-format scrape surface
//
// plus GET /healthz for probes. Responses are bit-identical to direct
// library calls (mixsoc.Plan, mixsoc.SweepWith): the engine's caches
// only deduplicate deterministic work, floats survive Go's JSON
// round-trip exactly, and msoc-plan -json emits the same bytes for the
// same request, which CI diffs against a live server.
//
// A server given WorkerURLs runs as a *coordinator*: POST /v1/sweep is
// answered by partitioning the (widths × weights) cells round-robin —
// the same experiments.RoundRobin rule the sharded grid runner uses —
// fanning one POST /v1/shard per shard out to the workers under
// per-shard deadlines with retry-by-reassignment, and merging the JSON
// partials into a response byte-identical to an in-process sweep. The
// equality holds because every cell is independent, the workers solve
// their cells with core.SweepOptions.Select (subset == full-sweep bits,
// pinned by TestSweepSelectMatchesFullSweep), and float64s survive the
// JSON hop exactly.
//
// Every request runs under a deadline (client-requested, capped by the
// server) and inside a bounded worker pool: at most MaxConcurrent
// requests plan at once, each with an equal share of the server's CPU
// budget (core.SplitWorkers), and a saturated server answers 503
// rather than queueing unboundedly. Cancelled or timed-out requests
// abort mid-sweep via context cancellation, leaving the engine's
// caches consistent.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"mixsoc/internal/core"
	"mixsoc/internal/experiments"
)

// Options configures New. The zero value serves the paper benchmark
// with sensible production defaults.
type Options struct {
	// Engine is the planning engine to serve; nil builds one sized for
	// this server's worker pool.
	Engine *core.Engine
	// Workers is the server's total CPU budget across concurrent
	// requests; 0 means core.DefaultWorkers().
	Workers int
	// MaxConcurrent bounds the planning requests in flight; further
	// requests wait for a slot until their deadline and then get 503.
	// Default 4 (or Workers, if smaller).
	MaxConcurrent int
	// RequestTimeout is the per-request planning deadline, which also
	// caps client-supplied timeout_ms. Default 120s.
	RequestTimeout time.Duration
	// WorkerURLs, when non-empty, runs the server as a distributed-sweep
	// coordinator: POST /v1/sweep fans round-robin shards out to these
	// base URLs (each another msoc-serve exposing POST /v1/shard) and
	// merges the partials. Plan requests and /v1/shard still run
	// in-process. Workers may also arrive from WorkerFile and from
	// POST /v1/workers at runtime.
	WorkerURLs []string
	// WorkerFile names a watched worker membership file (one base URL
	// per line, # comments): it is read at startup and re-read every
	// probe interval; file-sourced workers dropped from the file leave
	// the fleet.
	WorkerFile string
	// ShardTimeout is the coordinator's per-shard-attempt deadline; a
	// worker that has not answered within it is abandoned and the shard
	// reassigned. Default 60s (always additionally capped by the
	// request's own deadline).
	ShardTimeout time.Duration
	// ShardAttempts bounds how many workers one shard is offered to
	// before the sweep fails; attempts walk the fleet's current members
	// (healthiest first) from the shard's home worker. Default: every
	// current member once.
	ShardAttempts int
	// RetryBackoff is the base wait between one shard's attempts,
	// doubling per retry (capped); it keeps a flapping fleet from being
	// hammered with instant reassignments. Default 250ms.
	RetryBackoff time.Duration
	// ProbeInterval is the period of the fleet's background /healthz
	// probes (and of worker-file re-reads). Default 5s.
	ProbeInterval time.Duration
	// ProbeTimeout is the per-probe deadline. Default 2s.
	ProbeTimeout time.Duration
	// ProbeFailureThreshold is how many consecutive failures (probes or
	// shards) evict a worker; the first failure already marks it
	// suspect. Default 3.
	ProbeFailureThreshold int
	// ReadmitBackoff is the initial wait before an evicted worker is
	// re-probed for re-admission, doubling per failed re-probe (capped
	// at 256x). Default 15s.
	ReadmitBackoff time.Duration
	// JobDir, when set, makes POST /v1/sweeps jobs durable: each
	// completed shard is checkpointed under JobDir/<job-id>/ and a
	// restarted server recovers every job from it, re-running only the
	// missing shards. Empty keeps jobs in memory only (still async and
	// deduplicated, but lost on restart).
	JobDir string
	// JobRetention, when positive, is how long a finished or failed
	// job's state (and its JobDir checkpoints) is kept before a
	// background sweep removes it; 0 keeps jobs forever.
	JobRetention time.Duration
	// Logf receives the server's structured log lines: fleet transitions
	// (worker admitted/suspect/evicted/re-admitted/removed), durable-job
	// checkpoint and recovery events, and recovered handler panics (with
	// stack). Nil discards them.
	Logf func(format string, args ...any)
}

// Server answers planning requests over HTTP; build with New, mount
// via Handler, and Close when done to stop the fleet's probe loop.
type Server struct {
	engine   *core.Engine
	sem      chan struct{}
	timeout  time.Duration
	capacity int // resolved CPU budget, advertised via /healthz
	fleet    *fleet
	coord    *coordinator
	jobs     *jobManager
	metrics  *metricsRegistry
	logf     func(format string, args ...any)
}

// New builds a server: it resolves the option defaults, splits the CPU
// budget across the concurrency bound, and (when Options.Engine is
// nil) creates an engine whose planners each use one slot's share.
// Every server owns a worker fleet — usually empty, in which case it
// serves standalone; seeding it via Options.WorkerURLs/WorkerFile or
// growing it through POST /v1/workers makes the server a
// distributed-sweep coordinator.
func New(opts Options) *Server {
	workers := opts.Workers
	if workers < 1 {
		workers = core.DefaultWorkers()
	}
	maxConc := opts.MaxConcurrent
	if maxConc < 1 {
		maxConc = 4
	}
	if maxConc > workers {
		maxConc = workers
	}
	timeout := opts.RequestTimeout
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	_, inner := core.SplitWorkers(workers, maxConc)
	engine := opts.Engine
	if engine == nil {
		engine = core.NewEngine(core.EngineOptions{Workers: inner})
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		engine:   engine,
		sem:      make(chan struct{}, maxConc),
		timeout:  timeout,
		capacity: workers,
		metrics:  newMetricsRegistry(maxConc),
		logf:     logf,
	}
	client := &http.Client{Transport: newFleetTransport()}
	s.fleet = newFleet(opts, s.metrics, client, opts.Logf)
	s.coord = newCoordinator(opts, s.fleet, client, s.metrics)
	s.fleet.ensureProbing()
	// Last: job recovery resumes persisted sweeps through the fleet and
	// coordinator built above.
	s.jobs = newJobManager(s, opts.JobDir, opts.JobRetention, opts.Logf)
	return s
}

// Engine returns the engine the server plans with.
func (s *Server) Engine() *core.Engine { return s.engine }

// Close stops the server's background work — the job runners (whose
// in-flight shards abort; completed checkpoints stay on disk as the
// next process's resume point), the fleet's probe loop, and the shared
// transport's idle connections. In-flight requests are unaffected (the
// HTTP server's own Shutdown drains those).
func (s *Server) Close() {
	s.jobs.close()
	s.fleet.close()
	s.coord.client.CloseIdleConnections()
}

// Handler returns the server's HTTP routes, each instrumented with the
// per-endpoint request and latency counters /metrics exposes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/plan", s.instrument("/v1/plan", s.handlePlan))
	mux.Handle("POST /v1/batch", s.instrument("/v1/batch", s.handleBatch))
	mux.Handle("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	mux.Handle("POST /v1/shard", s.instrument("/v1/shard", s.handleShard))
	mux.Handle("POST /v1/sweeps", s.instrument("/v1/sweeps", s.handleJobSubmit))
	mux.Handle("GET /v1/sweeps/{id}", s.instrument("/v1/sweeps/{id}", s.handleJobStatus))
	mux.Handle("GET /v1/sweeps/{id}/result", s.instrument("/v1/sweeps/{id}/result", s.handleJobResult))
	mux.Handle("GET /v1/sweeps/{id}/events", s.instrument("/v1/sweeps/{id}/events", s.handleJobEvents))
	mux.Handle("GET /v1/designs", s.instrument("/v1/designs", s.handleDesigns))
	mux.Handle("GET /v1/workers", s.instrument("/v1/workers", s.handleWorkersGet))
	mux.Handle("POST /v1/workers", s.instrument("/v1/workers", s.handleWorkersPost))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	return mux
}

// handleHealthz answers the liveness probe with the worker's advertised
// capacity — its total CPU budget (the SplitWorkers pool) — which a
// coordinator's fleet probes read to weight shard assignment.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeResponse(w, &HealthResponse{OK: true, Capacity: s.capacity, MaxConcurrent: cap(s.sem)})
}

// handleWorkersGet answers GET /v1/workers with the fleet's live
// membership and per-worker lifecycle state.
func (s *Server) handleWorkersGet(w http.ResponseWriter, r *http.Request) {
	writeResponse(w, &WorkersResponse{Workers: s.fleet.snapshot()})
}

// handleWorkersPost applies a membership change (add/remove worker base
// URLs) and answers with the resulting fleet state.
func (s *Server) handleWorkersPost(w http.ResponseWriter, r *http.Request) {
	var req WorkersUpdateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Add) == 0 && len(req.Remove) == 0 {
		writeError(w, badRequestf("nothing to do: give add and/or remove worker URLs"))
		return
	}
	if err := s.fleet.update(req.Add, req.Remove); err != nil {
		writeError(w, err)
		return
	}
	writeResponse(w, &WorkersResponse{Workers: s.fleet.snapshot()})
}

// requestCtx derives the request's planning context: the client's
// timeout_ms if given, capped by — and defaulting to — the server's
// RequestTimeout.
func (s *Server) requestCtx(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	timeout := s.timeout
	if timeoutMS > 0 {
		if d := time.Duration(timeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return context.WithTimeout(parent, timeout)
}

// saturatedError reports a request that never got a worker-pool slot
// before its deadline; the handler maps it to 503.
type saturatedError struct{ cause error }

func (e saturatedError) Error() string {
	return fmt.Sprintf("service: worker pool saturated: %v", e.cause)
}

// acquire takes a worker-pool slot, or fails once ctx fires while the
// pool is saturated. The returned release must be called when done.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, saturatedError{cause: ctx.Err()}
	}
}

// Plan computes the response of POST /v1/plan for req — the exact code
// path the HTTP handler runs, exported so msoc-plan -json produces
// byte-identical output without a server.
func (s *Server) Plan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	if err := validateWidth(req.Width); err != nil {
		return nil, err
	}
	wt := 0.5
	if req.WT != nil {
		wt = *req.WT
	}
	weights, err := weightsFor(wt)
	if err != nil {
		return nil, err
	}
	if err := validateBackend(req.Backend); err != nil {
		return nil, err
	}
	d, err := resolveDesign(req.Design, req.SOC, req.Benchmark)
	if err != nil {
		return nil, err
	}
	if err := validateDesignWidth(d, req.Width); err != nil {
		return nil, err
	}
	hash, err := core.DesignHash(d)
	if err != nil {
		return nil, err
	}

	ctx, cancel := s.requestCtx(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	res, err := s.engine.PlanWith(ctx, d, req.Width, weights, core.PlanOptions{
		Exhaustive: req.Exhaustive,
		Bounded:    req.Bounded,
		Backend:    req.Backend,
	})
	if err != nil {
		return nil, err
	}
	return &PlanResponse{DesignHash: hash, Width: req.Width, Weights: weights, Result: res}, nil
}

// sweepSpec is a validated sweep: the resolved design and hash, the
// normalized weight axis, and the grid geometry the coordinator's
// shard numbering derives from.
type sweepSpec struct {
	design  *core.Design
	hash    string
	widths  []int
	wts     []float64 // normalized WTs (defaulted when the request had none)
	weights []core.Weights
}

// cells is the dense grid size, weights-major: cell i is
// (widths[i%len(widths)], weights[i/len(widths)]).
func (sp *sweepSpec) cells() int { return len(sp.widths) * len(sp.weights) }

// validateSweep checks a sweep's axes, bounds and design — shared by
// the in-process sweep, the coordinator, and the worker shard endpoint,
// so all three accept exactly the same grids.
func validateSweep(design json.RawMessage, soc, benchmark string, widths []int, wts []float64) (*sweepSpec, error) {
	if len(widths) == 0 {
		return nil, badRequestf("sweep needs at least one width")
	}
	for _, w := range widths {
		if err := validateWidth(w); err != nil {
			return nil, err
		}
	}
	if len(wts) == 0 {
		wts = []float64{0.5}
	}
	weights := make([]core.Weights, len(wts))
	for i, wt := range wts {
		w, err := weightsFor(wt)
		if err != nil {
			return nil, err
		}
		weights[i] = w
	}
	if cells := len(widths) * len(weights); cells > MaxSweepCells {
		return nil, badRequestf("sweep grid of %d cells exceeds the %d-cell bound", cells, MaxSweepCells)
	}
	d, err := resolveDesign(design, soc, benchmark)
	if err != nil {
		return nil, err
	}
	if err := validateDesignWidth(d, widths...); err != nil {
		return nil, err
	}
	hash, err := core.DesignHash(d)
	if err != nil {
		return nil, err
	}
	return &sweepSpec{design: d, hash: hash, widths: widths, wts: wts, weights: weights}, nil
}

// distributable reports whether the grid's cells are addressable by
// (width, weight) value — what the worker-side Select closure keys on —
// which requires both axes to be duplicate-free. A grid with duplicate
// axis values still sweeps fine in-process; the coordinator just keeps
// it local.
func (sp *sweepSpec) distributable() bool {
	ws := make(map[int]bool, len(sp.widths))
	for _, w := range sp.widths {
		if ws[w] {
			return false
		}
		ws[w] = true
	}
	ts := make(map[float64]bool, len(sp.wts))
	for _, wt := range sp.wts {
		if ts[wt] {
			return false
		}
		ts[wt] = true
	}
	return true
}

// Sweep computes the response of POST /v1/sweep for req; see Plan. On a
// coordinator (Options.WorkerURLs set) cold sweeps are fanned out to
// the workers and merged byte-identically to the in-process path;
// warm-started sweeps — whose cross-width chaining is inherently
// sequential — and grids with duplicate axis values plan in-process.
func (s *Server) Sweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	sp, err := validateSweep(req.Design, req.SOC, req.Benchmark, req.Widths, req.WTs)
	if err != nil {
		return nil, err
	}
	if err := validateBackend(req.Backend); err != nil {
		return nil, err
	}

	ctx, cancel := s.requestCtx(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	if !req.WarmStart && sp.distributable() {
		if resp, distributed, err := s.coord.sweep(ctx, sp, req); distributed {
			return resp, err
		}
		// distributed == false: the fleet is empty, sweep in-process.
	}
	points, err := s.engine.Sweep(ctx, sp.design, sp.widths, sp.weights, core.SweepOptions{
		Exhaustive: req.Exhaustive,
		Bounded:    req.Bounded,
		WarmStart:  req.WarmStart,
		Backend:    req.Backend,
	})
	if err != nil {
		return nil, err
	}
	return &SweepResponse{DesignHash: sp.hash, Points: points}, nil
}

// Shard computes the response of POST /v1/shard for req: the shard's
// round-robin slice of the full (widths × wts) grid, solved cold
// through core.SweepOptions.Select so every returned point is
// bit-identical to the same cell of an unsharded sweep.
func (s *Server) Shard(ctx context.Context, req ShardRequest) (*ShardResponse, error) {
	sp, err := validateSweep(req.Design, req.SOC, req.Benchmark, req.Widths, req.WTs)
	if err != nil {
		return nil, err
	}
	if err := validateBackend(req.Backend); err != nil {
		return nil, err
	}
	if !sp.distributable() {
		return nil, badRequestf("shard grids must have duplicate-free width and wt axes")
	}
	idx, err := experiments.RoundRobin(sp.cells(), req.Shard, req.Of)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	if len(idx) == 0 {
		return nil, badRequestf("shard %d/%d owns no cells of a %d-cell grid", req.Shard, req.Of, sp.cells())
	}
	type cellKey struct {
		width int
		time  float64
	}
	own := make(map[cellKey]bool, len(idx))
	for _, i := range idx {
		own[cellKey{sp.widths[i%len(sp.widths)], sp.weights[i/len(sp.widths)].Time}] = true
	}

	ctx, cancel := s.requestCtx(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	points, err := s.engine.Sweep(ctx, sp.design, sp.widths, sp.weights, core.SweepOptions{
		Exhaustive: req.Exhaustive,
		Bounded:    req.Bounded,
		Backend:    req.Backend,
		Select: func(w int, wt core.Weights) bool {
			return own[cellKey{w, wt.Time}]
		},
	})
	if err != nil {
		return nil, err
	}
	return &ShardResponse{DesignHash: sp.hash, Shard: req.Shard, Of: req.Of, Points: points}, nil
}

// Designs computes the response of GET /v1/designs.
func (s *Server) Designs() *DesignsResponse {
	return &DesignsResponse{
		Benchmarks: benchmarkInfos(),
		Designs:    s.engine.Designs(),
		Metrics:    s.engine.Metrics(),
	}
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Plan(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeResponse(w, resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Sweep(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeResponse(w, resp)
}

func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Shard(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeResponse(w, resp)
}

// handleMetrics renders the Prometheus text-format scrape surface:
// engine cache counters, worker-pool saturation, per-endpoint request
// counts and latencies, and (on a coordinator) the fleet's per-worker
// lifecycle gauges and shard/probe/transition counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w, s.engine.Metrics(), s.fleet.snapshot(), s.jobs.stateCounts())
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	writeResponse(w, s.Designs())
}

// decodeBody parses a JSON request body under the size bound, writing
// the 400 itself (and returning false) on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeStatus(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func writeResponse(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := WriteJSON(w, v); err != nil {
		// Headers are gone; nothing to do but note it for the client.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// statusFor maps an error to its HTTP status: validation to 400, a
// failed distributed sweep to 502 (with per-worker detail), pool
// saturation to 503, deadline to 504, cancellation to 499 (client
// gone), anything else to 500. Batch items use the same mapping, so an
// item's status always equals the status the same request would get
// from POST /v1/plan.
func statusFor(err error) (status int, workers []WorkerFailure) {
	status = http.StatusInternalServerError
	var bad badRequestError
	var sat saturatedError
	var dist *distributedSweepError
	switch {
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.As(err, &dist):
		status = http.StatusBadGateway
		workers = dist.Failures
	case errors.As(err, &sat):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	}
	return status, workers
}

// writeError maps an error to its HTTP status (see statusFor) and
// writes the JSON error body.
func writeError(w http.ResponseWriter, err error) {
	status, workers := statusFor(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = WriteJSON(w, ErrorResponse{Error: err.Error(), Workers: workers})
}

func writeStatus(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = WriteJSON(w, ErrorResponse{Error: msg})
}
