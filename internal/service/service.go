// Package service exposes the planning Engine as an HTTP/JSON API —
// the serving layer of the reproduction. Three endpoints:
//
//	POST /v1/plan     solve one (width, weights) point
//	POST /v1/sweep    solve a (widths × weights) grid
//	GET  /v1/designs  live cache sessions and cache-hit metrics
//
// plus GET /healthz for probes. Responses are bit-identical to direct
// library calls (mixsoc.Plan, mixsoc.SweepWith): the engine's caches
// only deduplicate deterministic work, floats survive Go's JSON
// round-trip exactly, and msoc-plan -json emits the same bytes for the
// same request, which CI diffs against a live server.
//
// Every request runs under a deadline (client-requested, capped by the
// server) and inside a bounded worker pool: at most MaxConcurrent
// requests plan at once, each with an equal share of the server's CPU
// budget (core.SplitWorkers), and a saturated server answers 503
// rather than queueing unboundedly. Cancelled or timed-out requests
// abort mid-sweep via context cancellation, leaving the engine's
// caches consistent.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"mixsoc/internal/core"
)

// Options configures New. The zero value serves the paper benchmark
// with sensible production defaults.
type Options struct {
	// Engine is the planning engine to serve; nil builds one sized for
	// this server's worker pool.
	Engine *core.Engine
	// Workers is the server's total CPU budget across concurrent
	// requests; 0 means core.DefaultWorkers().
	Workers int
	// MaxConcurrent bounds the planning requests in flight; further
	// requests wait for a slot until their deadline and then get 503.
	// Default 4 (or Workers, if smaller).
	MaxConcurrent int
	// RequestTimeout is the per-request planning deadline, which also
	// caps client-supplied timeout_ms. Default 120s.
	RequestTimeout time.Duration
}

// Server answers planning requests over HTTP; build with New, mount
// via Handler.
type Server struct {
	engine  *core.Engine
	sem     chan struct{}
	timeout time.Duration
}

// New builds a server: it resolves the option defaults, splits the CPU
// budget across the concurrency bound, and (when Options.Engine is
// nil) creates an engine whose planners each use one slot's share.
func New(opts Options) *Server {
	workers := opts.Workers
	if workers < 1 {
		workers = core.DefaultWorkers()
	}
	maxConc := opts.MaxConcurrent
	if maxConc < 1 {
		maxConc = 4
	}
	if maxConc > workers {
		maxConc = workers
	}
	timeout := opts.RequestTimeout
	if timeout <= 0 {
		timeout = 120 * time.Second
	}
	_, inner := core.SplitWorkers(workers, maxConc)
	engine := opts.Engine
	if engine == nil {
		engine = core.NewEngine(core.EngineOptions{Workers: inner})
	}
	return &Server{
		engine:  engine,
		sem:     make(chan struct{}, maxConc),
		timeout: timeout,
	}
}

// Engine returns the engine the server plans with.
func (s *Server) Engine() *core.Engine { return s.engine }

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.handlePlan)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/designs", s.handleDesigns)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	return mux
}

// requestCtx derives the request's planning context: the client's
// timeout_ms if given, capped by — and defaulting to — the server's
// RequestTimeout.
func (s *Server) requestCtx(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	timeout := s.timeout
	if timeoutMS > 0 {
		if d := time.Duration(timeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return context.WithTimeout(parent, timeout)
}

// saturatedError reports a request that never got a worker-pool slot
// before its deadline; the handler maps it to 503.
type saturatedError struct{ cause error }

func (e saturatedError) Error() string {
	return fmt.Sprintf("service: worker pool saturated: %v", e.cause)
}

// acquire takes a worker-pool slot, or fails once ctx fires while the
// pool is saturated. The returned release must be called when done.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, saturatedError{cause: ctx.Err()}
	}
}

// Plan computes the response of POST /v1/plan for req — the exact code
// path the HTTP handler runs, exported so msoc-plan -json produces
// byte-identical output without a server.
func (s *Server) Plan(ctx context.Context, req PlanRequest) (*PlanResponse, error) {
	if err := validateWidth(req.Width); err != nil {
		return nil, err
	}
	wt := 0.5
	if req.WT != nil {
		wt = *req.WT
	}
	weights, err := weightsFor(wt)
	if err != nil {
		return nil, err
	}
	d, err := resolveDesign(req.Design, req.Benchmark)
	if err != nil {
		return nil, err
	}
	hash, err := core.DesignHash(d)
	if err != nil {
		return nil, err
	}

	ctx, cancel := s.requestCtx(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	var res *core.Result
	if req.Exhaustive {
		res, err = s.engine.PlanExhaustive(ctx, d, req.Width, weights)
	} else {
		res, err = s.engine.Plan(ctx, d, req.Width, weights)
	}
	if err != nil {
		return nil, err
	}
	return &PlanResponse{DesignHash: hash, Width: req.Width, Weights: weights, Result: res}, nil
}

// Sweep computes the response of POST /v1/sweep for req; see Plan.
func (s *Server) Sweep(ctx context.Context, req SweepRequest) (*SweepResponse, error) {
	if len(req.Widths) == 0 {
		return nil, badRequestf("sweep needs at least one width")
	}
	for _, w := range req.Widths {
		if err := validateWidth(w); err != nil {
			return nil, err
		}
	}
	wts := req.WTs
	if len(wts) == 0 {
		wts = []float64{0.5}
	}
	weights := make([]core.Weights, len(wts))
	for i, wt := range wts {
		w, err := weightsFor(wt)
		if err != nil {
			return nil, err
		}
		weights[i] = w
	}
	if cells := len(req.Widths) * len(weights); cells > MaxSweepCells {
		return nil, badRequestf("sweep grid of %d cells exceeds the %d-cell bound", cells, MaxSweepCells)
	}
	d, err := resolveDesign(req.Design, req.Benchmark)
	if err != nil {
		return nil, err
	}
	hash, err := core.DesignHash(d)
	if err != nil {
		return nil, err
	}

	ctx, cancel := s.requestCtx(ctx, req.TimeoutMS)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	points, err := s.engine.Sweep(ctx, d, req.Widths, weights, core.SweepOptions{
		Exhaustive: req.Exhaustive,
		WarmStart:  req.WarmStart,
	})
	if err != nil {
		return nil, err
	}
	return &SweepResponse{DesignHash: hash, Points: points}, nil
}

// Designs computes the response of GET /v1/designs.
func (s *Server) Designs() *DesignsResponse {
	return &DesignsResponse{Designs: s.engine.Designs(), Metrics: s.engine.Metrics()}
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Plan(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeResponse(w, resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.Sweep(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeResponse(w, resp)
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	writeResponse(w, s.Designs())
}

// decodeBody parses a JSON request body under the size bound, writing
// the 400 itself (and returning false) on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeStatus(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func writeResponse(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := WriteJSON(w, v); err != nil {
		// Headers are gone; nothing to do but note it for the client.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError maps an error to its HTTP status: validation to 400,
// deadline to 504, cancellation to 499 (client gone), anything else to
// 500.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var bad badRequestError
	var sat saturatedError
	switch {
	case errors.As(err, &bad):
		status = http.StatusBadRequest
	case errors.As(err, &sat):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	}
	writeStatus(w, status, err.Error())
}

func writeStatus(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = WriteJSON(w, ErrorResponse{Error: msg})
}
