package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mixsoc/internal/core"
	"mixsoc/internal/experiments"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// A served /v1/plan response must be byte-identical to the JSON a
// direct library call produces for the same point — the serving layer
// adds transport, never drift.
func TestPlanEndpointBitIdenticalToDirect(t *testing.T) {
	_, ts := newTestServer(t)
	wt := 0.5
	status, got := post(t, ts, "/v1/plan", PlanRequest{Width: 32, WT: &wt})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}

	// The direct reference: same planner invocation, same response
	// struct, same encoder.
	d := experiments.Design()
	res, err := core.NewPlanner(d, 32, core.EqualWeights).CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := core.DesignHash(d)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteJSON(&want, &PlanResponse{
		DesignHash: hash, Width: 32, Weights: core.EqualWeights, Result: res,
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served plan differs from direct call:\nserved %d bytes, direct %d bytes", len(got), want.Len())
	}

	// And through the exported Plan method (what msoc-plan -json runs).
	srv2 := New(Options{})
	resp, err := srv2.Plan(context.Background(), PlanRequest{Width: 32, WT: &wt})
	if err != nil {
		t.Fatal(err)
	}
	var viaMethod bytes.Buffer
	if err := WriteJSON(&viaMethod, resp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, viaMethod.Bytes()) {
		t.Fatal("Server.Plan bytes differ from the HTTP response")
	}
}

// An explicit backend must round-trip like any other solver knob — the
// served response matches a direct planner run with that packer — and
// must never leak into the default path: the same default request
// answers identical bytes before and after a rectangle-backend plan
// (the engine keys schedule caches by backend).
func TestBackendPlanBitIdenticalAndIsolated(t *testing.T) {
	_, ts := newTestServer(t)
	wt := 0.5
	_, before := post(t, ts, "/v1/plan", PlanRequest{Width: 32, WT: &wt})

	status, rect := post(t, ts, "/v1/plan", PlanRequest{Width: 32, WT: &wt, Backend: "rectangle"})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, rect)
	}
	d := experiments.Design()
	pk, err := core.PackerFor("rectangle")
	if err != nil {
		t.Fatal(err)
	}
	pl := core.NewPlanner(d, 32, core.EqualWeights)
	pl.Packer = pk
	res, err := pl.CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := core.DesignHash(d)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteJSON(&want, &PlanResponse{
		DesignHash: hash, Width: 32, Weights: core.EqualWeights, Result: res,
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rect, want.Bytes()) {
		t.Fatal("served rectangle plan differs from a direct planner run with the rectangle packer")
	}

	_, after := post(t, ts, "/v1/plan", PlanRequest{Width: 32, WT: &wt})
	if !bytes.Equal(before, after) {
		t.Fatal("default plan bytes changed after a rectangle-backend plan")
	}
}

// A served cold /v1/sweep must match direct mixsoc-level SweepWith
// bit for bit, point for point.
func TestSweepEndpointBitIdenticalToDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	_, ts := newTestServer(t)
	req := SweepRequest{Widths: []int{32, 48}, WTs: []float64{0.5, 0.25}}
	status, got := post(t, ts, "/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}

	d := experiments.Design()
	points, err := core.SweepWith(d, req.Widths,
		[]core.Weights{{Time: 0.5, Area: 0.5}, {Time: 0.25, Area: 0.75}}, core.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := core.DesignHash(d)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteJSON(&want, &SweepResponse{DesignHash: hash, Points: points}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("served sweep differs from direct SweepWith")
	}
}

// Concurrent plan and sweep requests — same design, varying points —
// must all come back bit-identical to their direct counterparts.
func TestConcurrentRequestsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("many solver runs are slow")
	}
	_, ts := newTestServer(t)

	type point struct {
		width int
		wt    float64
	}
	grid := []point{{32, 0.5}, {32, 0.25}, {40, 0.5}, {48, 0.75}}
	want := make(map[point][]byte)
	d := experiments.Design()
	hash, err := core.DesignHash(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range grid {
		res, err := core.NewPlanner(d, pt.width, core.Weights{Time: pt.wt, Area: 1 - pt.wt}).CostOptimizer()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, &PlanResponse{
			DesignHash: hash, Width: pt.width,
			Weights: core.Weights{Time: pt.wt, Area: 1 - pt.wt}, Result: res,
		}); err != nil {
			t.Fatal(err)
		}
		want[pt] = buf.Bytes()
	}

	const perPoint = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(grid)*perPoint+1)
	for _, pt := range grid {
		for i := 0; i < perPoint; i++ {
			wg.Add(1)
			go func(pt point) {
				defer wg.Done()
				wt := pt.wt
				status, got := post(t, ts, "/v1/plan", PlanRequest{Width: pt.width, WT: &wt})
				if status != http.StatusOK {
					errs <- fmt.Errorf("W=%d wT=%v: status %d: %s", pt.width, pt.wt, status, got)
					return
				}
				if !bytes.Equal(got, want[pt]) {
					errs <- fmt.Errorf("W=%d wT=%v: concurrent response diverged", pt.width, pt.wt)
				}
			}(pt)
		}
	}
	// A concurrent sweep rides along to cross the two endpoints.
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, body := post(t, ts, "/v1/sweep", SweepRequest{Widths: []int{32, 40}})
		if status != http.StatusOK {
			errs <- fmt.Errorf("sweep: status %d: %s", status, body)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// The cache session must be visible in /v1/designs, with hit counters
// moving as repeats arrive.
func TestDesignsEndpointReportsCacheMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	wt := 0.5
	for i := 0; i < 2; i++ {
		if status, body := post(t, ts, "/v1/plan", PlanRequest{Width: 32, WT: &wt}); status != http.StatusOK {
			t.Fatalf("plan %d: status %d: %s", i, status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/designs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dr DesignsResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Designs) != 1 || dr.Designs[0].Name != "p93791m" {
		t.Fatalf("designs = %+v, want the p93791m session", dr.Designs)
	}
	if dr.Designs[0].Plans != 2 {
		t.Errorf("plans = %d, want 2", dr.Designs[0].Plans)
	}
	if dr.Metrics.DesignHits < 1 || dr.Metrics.Schedule.Hits == 0 {
		t.Errorf("metrics show no cache reuse after a repeated plan: %+v", dr.Metrics)
	}
}

// Validation failures are 400s with a JSON error body, not 500s.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []struct {
		path string
		body any
	}{
		{"/v1/plan", PlanRequest{Width: 0}},
		{"/v1/plan", PlanRequest{Width: MaxWidth + 1}},
		{"/v1/plan", func() PlanRequest { wt := 1.5; return PlanRequest{Width: 32, WT: &wt} }()},
		{"/v1/plan", PlanRequest{Width: 32, Benchmark: "no-such-soc"}},
		{"/v1/plan", PlanRequest{Width: 32, Benchmark: "p93791m", Design: json.RawMessage(`{}`)}},
		{"/v1/plan", PlanRequest{Width: 32, Design: json.RawMessage(`{"digital":{}}`)}},
		{"/v1/plan", PlanRequest{Width: 32, Backend: "no-such-backend"}},
		{"/v1/sweep", SweepRequest{}},
		{"/v1/sweep", SweepRequest{Widths: make([]int, MaxSweepCells+1)}},
		{"/v1/sweep", SweepRequest{Widths: []int{32}, Backend: "no-such-backend"}},
		{"/v1/shard", ShardRequest{Widths: []int{32}, Backend: "no-such-backend", Of: 1}},
	}
	for _, tc := range bad {
		status, body := post(t, ts, tc.path, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("%s %+v: status %d, want 400 (%s)", tc.path, tc.body, status, body)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.path, body)
		}
	}
	// Unknown fields are rejected, so typos fail loudly.
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json",
		strings.NewReader(`{"width":32,"exhautsive":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// A request deadline must abort the underlying sweep: a tiny
// timeout_ms on a large exhaustive sweep returns 504 well before the
// sweep could finish, and the server keeps serving afterwards.
func TestRequestDeadlineAbortsSweep(t *testing.T) {
	_, ts := newTestServer(t)
	t0 := time.Now()
	status, body := post(t, ts, "/v1/sweep", SweepRequest{
		Widths:     []int{32, 40, 48, 56, 64},
		WTs:        []float64{0.5, 0.25, 0.75},
		Exhaustive: true,
		TimeoutMS:  20,
	})
	elapsed := time.Since(t0)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", status, body)
	}
	if elapsed > 10*time.Second {
		t.Errorf("deadline-exceeded sweep took %v; cancellation not prompt", elapsed)
	}
	wt := 0.5
	if status, body := post(t, ts, "/v1/plan", PlanRequest{Width: 32, WT: &wt}); status != http.StatusOK {
		t.Fatalf("plan after aborted sweep: status %d: %s", status, body)
	}
}
