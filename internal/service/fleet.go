package service

// Worker fleet lifecycle. A coordinator no longer treats its worker
// list as a static fact: every worker lives in a small state machine —
//
//	healthy ──failure──▶ suspect ──threshold──▶ evicted
//	   ▲                    │                      │
//	   └────── success ─────┘◀──── re-admission ───┘
//
// — driven by two evidence streams: periodic background probes of each
// worker's GET /healthz (which also report the worker's advertised
// planning capacity), and the coordinator's own shard outcomes, so a
// worker that times out a shard mid-sweep becomes suspect fleet-wide
// rather than just for that shard. Evicted workers are re-probed on an
// exponential backoff and re-admitted on the first successful probe.
//
// Membership is dynamic: workers arrive from the static -worker-urls
// flag, from a watched worker file that is re-read whenever it changes
// (file-sourced workers not in the new file are dropped), and from
// POST /v1/workers at runtime. Every transition is logged and counted
// (msoc_worker_transitions_total / msoc_worker_state in /metrics).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"
)

// Worker lifecycle states as reported by GET /v1/workers and the
// msoc_worker_state gauge.
const (
	// WorkerHealthy marks a worker eligible for shard assignment.
	WorkerHealthy = "healthy"
	// WorkerSuspect marks a worker with recent failures, still below the
	// eviction threshold; it receives no new assignments while any
	// healthy worker exists, but keeps being probed every interval.
	WorkerSuspect = "suspect"
	// WorkerEvicted marks a worker past the failure threshold; it is
	// re-probed on an exponential backoff and re-admitted (back to
	// healthy) on the first success.
	WorkerEvicted = "evicted"
)

// Worker membership sources as reported by GET /v1/workers.
const (
	// WorkerSourceStatic marks a worker from Options.WorkerURLs (the
	// -worker-urls flag).
	WorkerSourceStatic = "static"
	// WorkerSourceFile marks a worker from the watched Options.WorkerFile;
	// only file-sourced workers are removed when the file drops them.
	WorkerSourceFile = "file"
	// WorkerSourceAPI marks a worker added through POST /v1/workers.
	WorkerSourceAPI = "api"
)

// stateRank orders states for assignment preference and gives the
// msoc_worker_state gauge its value: 1 healthy, 2 suspect, 3 evicted.
func stateRank(state string) int {
	switch state {
	case WorkerHealthy:
		return 1
	case WorkerSuspect:
		return 2
	default:
		return 3
	}
}

// readmitBackoffCap bounds the evicted re-probe backoff at this many
// doublings of Options.ReadmitBackoff.
const readmitBackoffCap = 8

// fleetWorker is one worker's lifecycle record; all fields are guarded
// by the owning fleet's mutex.
type fleetWorker struct {
	url      string
	source   string
	state    string
	capacity int // advertised SplitWorkers budget; 1 until a probe reports
	failures int // consecutive failures (probe or shard) since last success
	lastErr  string
	lastOK   time.Time     // last successful probe or shard
	next     time.Time     // evicted only: earliest next re-admission probe
	backoff  time.Duration // evicted only: current re-probe backoff
}

// fleet owns the coordinator's worker membership and lifecycle; it is
// safe for concurrent use by the probe loop, the coordinator's shard
// fan-out, and the /v1/workers handlers.
type fleet struct {
	interval  time.Duration // probe period (and worker-file poll period)
	timeout   time.Duration // per-probe deadline
	threshold int           // consecutive failures before eviction
	readmit   time.Duration // initial evicted re-probe backoff
	file      string        // watched worker file ("" = none)

	client  *http.Client
	metrics *metricsRegistry
	logf    func(format string, args ...any)
	now     func() time.Time

	mu       sync.Mutex
	workers  map[string]*fleetWorker
	order    []string // insertion order, for deterministic assignment
	fileSig  string   // last worker-file content signature
	probing  bool     // probe loop started
	stopped  bool
	stop     chan struct{}
	loopDone chan struct{}
}

// newFleet builds the fleet from the options' static worker list and
// worker file; it does not start probing (ensureProbing does, lazily,
// once the fleet is non-empty).
func newFleet(opts Options, m *metricsRegistry, client *http.Client, logf func(string, ...any)) *fleet {
	f := &fleet{
		interval:  opts.ProbeInterval,
		timeout:   opts.ProbeTimeout,
		threshold: opts.ProbeFailureThreshold,
		readmit:   opts.ReadmitBackoff,
		file:      opts.WorkerFile,
		client:    client,
		metrics:   m,
		logf:      logf,
		now:       time.Now,
		workers:   map[string]*fleetWorker{},
		stop:      make(chan struct{}),
		loopDone:  make(chan struct{}),
	}
	if f.interval <= 0 {
		f.interval = 5 * time.Second
	}
	if f.timeout <= 0 {
		f.timeout = 2 * time.Second
	}
	if f.threshold < 1 {
		f.threshold = 3
	}
	if f.readmit <= 0 {
		f.readmit = 15 * time.Second
	}
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	f.mu.Lock()
	for _, u := range opts.WorkerURLs {
		if u = normalizeWorkerURL(u); u != "" {
			f.addLocked(u, WorkerSourceStatic)
		}
	}
	f.mu.Unlock()
	if f.file != "" {
		f.syncFile()
	}
	return f
}

// normalizeWorkerURL canonicalizes a worker base URL (trimmed, no
// trailing slash); it returns "" for an unusable entry.
func normalizeWorkerURL(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// validateWorkerURL rejects worker URLs that cannot be probed: they
// must be absolute http(s) URLs with a host.
func validateWorkerURL(u string) error {
	parsed, err := url.Parse(u)
	if err != nil {
		return badRequestf("bad worker url %q: %v", u, err)
	}
	if (parsed.Scheme != "http" && parsed.Scheme != "https") || parsed.Host == "" {
		return badRequestf("bad worker url %q: need an absolute http(s) URL with a host", u)
	}
	return nil
}

// addLocked registers a worker (idempotently) as healthy; callers hold
// f.mu. It reports whether the worker was new.
func (f *fleet) addLocked(url, source string) bool {
	if _, ok := f.workers[url]; ok {
		return false
	}
	f.workers[url] = &fleetWorker{url: url, source: source, state: WorkerHealthy, capacity: 1}
	f.order = append(f.order, url)
	f.metrics.observeTransition(url, WorkerHealthy)
	f.logf("fleet: worker %s admitted (source=%s)", url, source)
	return true
}

// removeLocked drops a worker from the membership; callers hold f.mu.
// Its counters in /metrics persist — only live-state gauges disappear.
func (f *fleet) removeLocked(url, why string) bool {
	if _, ok := f.workers[url]; !ok {
		return false
	}
	delete(f.workers, url)
	for i, u := range f.order {
		if u == url {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	f.logf("fleet: worker %s removed (%s)", url, why)
	return true
}

// update applies a membership change (from POST /v1/workers): adds
// first, then removals. Added URLs must validate; duplicates and
// unknown removals are no-ops.
func (f *fleet) update(add, remove []string) error {
	norm := make([]string, 0, len(add))
	for _, u := range add {
		u = normalizeWorkerURL(u)
		if u == "" {
			return badRequestf("bad worker url: empty")
		}
		if err := validateWorkerURL(u); err != nil {
			return err
		}
		norm = append(norm, u)
	}
	f.mu.Lock()
	for _, u := range norm {
		f.addLocked(u, WorkerSourceAPI)
	}
	for _, u := range remove {
		f.removeLocked(normalizeWorkerURL(u), "removed via /v1/workers")
	}
	f.mu.Unlock()
	f.ensureProbing()
	return nil
}

// hasWorkers reports whether any worker is registered at all.
func (f *fleet) hasWorkers() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.order) > 0
}

// snapshot returns every worker's live state in insertion order — the
// body of GET /v1/workers and the source of the /metrics fleet gauges.
func (f *fleet) snapshot() []WorkerInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]WorkerInfo, 0, len(f.order))
	for _, u := range f.order {
		w := f.workers[u]
		info := WorkerInfo{
			URL:                 w.url,
			State:               w.state,
			Source:              w.source,
			Capacity:            w.capacity,
			ConsecutiveFailures: w.failures,
			LastError:           w.lastErr,
		}
		if !w.lastOK.IsZero() {
			info.LastOK = w.lastOK.UTC().Format(time.RFC3339Nano)
		}
		out = append(out, info)
	}
	return out
}

// assign partitions a sweep's cells into shards homed on the currently
// assignable workers, weighted by advertised capacity: the shard count
// is min(cells, total capacity) and each worker's share of the homes is
// proportional to its capacity (largest-remainder rounding, insertion
// order). It returns ok=false when the fleet has no workers at all.
func (f *fleet) assign(cells int) (homes []string, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	eligible := f.assignableLocked()
	if len(eligible) == 0 {
		return nil, false
	}
	total := 0
	for _, w := range eligible {
		total += max(1, w.capacity)
	}
	of := min(cells, total)
	// Largest-remainder apportionment of the `of` shard homes: floor
	// quotas first, then one extra home per largest fractional
	// remainder, insertion order breaking ties.
	quota := make([]int, len(eligible))
	frac := make([]float64, len(eligible))
	assigned := 0
	for i, w := range eligible {
		exact := float64(of) * float64(max(1, w.capacity)) / float64(total)
		quota[i] = int(exact)
		frac[i] = exact - float64(quota[i])
		assigned += quota[i]
	}
	for ; assigned < of; assigned++ {
		best := 0
		for i := 1; i < len(frac); i++ {
			if frac[i] > frac[best] {
				best = i
			}
		}
		quota[best]++
		frac[best] = -1 // consumed
	}
	homes = make([]string, 0, of)
	for i, w := range eligible {
		for n := 0; n < quota[i]; n++ {
			homes = append(homes, w.url)
		}
	}
	return homes, true
}

// assignableLocked returns the workers new shards may be homed on, in
// insertion order: the healthy ones; if none, the suspect ones (degraded
// beats refusing); if none, everyone left (the retry loop will surface
// per-worker failures). Callers hold f.mu.
func (f *fleet) assignableLocked() []*fleetWorker {
	var healthy, suspect, all []*fleetWorker
	for _, u := range f.order {
		w := f.workers[u]
		all = append(all, w)
		switch w.state {
		case WorkerHealthy:
			healthy = append(healthy, w)
		case WorkerSuspect:
			suspect = append(suspect, w)
		}
	}
	if len(healthy) > 0 {
		return healthy
	}
	if len(suspect) > 0 {
		return suspect
	}
	return all
}

// nextWorker picks the best untried worker for a shard attempt: the
// healthiest state first, and within a state the insertion order
// rotated to start at the shard's home worker — so retries walk the
// fleet round-robin and a hot-added worker is picked up mid-sweep. It
// returns "" when every current member has been tried.
func (f *fleet) nextWorker(home string, tried map[string]bool) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.order) == 0 {
		return ""
	}
	start := 0
	for i, u := range f.order {
		if u == home {
			start = i
			break
		}
	}
	best := ""
	bestRank := stateRank(WorkerEvicted) + 1
	for i := 0; i < len(f.order); i++ {
		u := f.order[(start+i)%len(f.order)]
		if tried[u] {
			continue
		}
		if r := stateRank(f.workers[u].state); r < bestRank {
			best, bestRank = u, r
		}
	}
	return best
}

// reportSuccess folds a successful probe or shard into the state
// machine: failures reset, and a suspect or evicted worker is
// re-admitted to healthy.
func (f *fleet) reportSuccess(url string, capacity int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[url]
	if !ok {
		return
	}
	w.failures = 0
	w.lastErr = ""
	w.lastOK = f.now()
	w.backoff = 0
	w.next = time.Time{}
	if capacity > 0 {
		w.capacity = capacity
	}
	if w.state != WorkerHealthy {
		from := w.state
		w.state = WorkerHealthy
		f.metrics.observeTransition(url, WorkerHealthy)
		f.logf("fleet: worker %s %s -> healthy (re-admitted)", url, from)
	}
}

// reportFailure folds a failed probe or shard into the state machine: a
// healthy worker turns suspect on the first failure, a suspect worker is
// evicted at the consecutive-failure threshold, and an evicted worker's
// re-probe backoff doubles (capped).
func (f *fleet) reportFailure(url, reason string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[url]
	if !ok {
		return
	}
	w.failures++
	w.lastErr = reason
	switch {
	case w.state == WorkerHealthy:
		w.state = WorkerSuspect
		f.metrics.observeTransition(url, WorkerSuspect)
		f.logf("fleet: worker %s healthy -> suspect (%s)", url, reason)
		fallthrough
	case w.state == WorkerSuspect:
		if w.failures >= f.threshold {
			w.state = WorkerEvicted
			w.backoff = f.readmit
			w.next = f.now().Add(w.backoff)
			f.metrics.observeTransition(url, WorkerEvicted)
			f.logf("fleet: worker %s suspect -> evicted after %d consecutive failures (%s); re-probe in %s",
				url, w.failures, reason, w.backoff)
		}
	default: // evicted: double the re-probe backoff
		if w.backoff < f.readmit*(1<<readmitBackoffCap) {
			w.backoff *= 2
		}
		w.next = f.now().Add(w.backoff)
	}
}

// ensureProbing starts the background probe loop once the fleet is
// non-empty; further calls are no-ops. The loop stops at close.
func (f *fleet) ensureProbing() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.probing || f.stopped || len(f.order) == 0 {
		return
	}
	f.probing = true
	go f.probeLoop()
}

// close stops the probe loop and waits for it to exit; it is safe to
// call more than once and with probing never started.
func (f *fleet) close() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	probing := f.probing
	f.mu.Unlock()
	close(f.stop)
	if probing {
		<-f.loopDone
	}
}

// probeLoop is the background lifecycle driver: every probe interval it
// re-reads a changed worker file and probes every due worker.
func (f *fleet) probeLoop() {
	defer close(f.loopDone)
	ticker := time.NewTicker(f.interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			if f.file != "" {
				f.syncFile()
			}
			f.probeDue(context.Background())
		}
	}
}

// probeDue probes every worker that is due now — healthy and suspect
// workers every interval, evicted workers once their backoff expires —
// concurrently, and folds the results into the state machine.
func (f *fleet) probeDue(ctx context.Context) {
	f.mu.Lock()
	var due []string
	now := f.now()
	for _, u := range f.order {
		w := f.workers[u]
		if w.state != WorkerEvicted || !w.next.After(now) {
			due = append(due, u)
		}
	}
	f.mu.Unlock()

	var wg sync.WaitGroup
	for _, u := range due {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			f.probe(ctx, u)
		}(u)
	}
	wg.Wait()
}

// probe checks one worker's GET /healthz under the probe deadline and
// reports the outcome (with the advertised capacity on success) into
// the state machine and the probe counters.
func (f *fleet) probe(ctx context.Context, url string) {
	capacity, err := f.checkHealth(ctx, url)
	if err != nil {
		f.metrics.observeProbe(url, false)
		f.reportFailure(url, fmt.Sprintf("probe: %v", err))
		return
	}
	f.metrics.observeProbe(url, true)
	f.reportSuccess(url, capacity)
}

// checkHealth performs the health request itself, returning the
// worker's advertised capacity (1 when the body carries none, so plain
// 200-OK health endpoints still count as alive).
func (f *fleet) checkHealth(ctx context.Context, url string) (capacity int, err error) {
	ctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return 1, nil // alive, just not an msoc-serve /healthz body
	}
	if !health.OK {
		return 0, fmt.Errorf("worker reports ok=false")
	}
	return max(1, health.Capacity), nil
}

// syncFile re-reads the watched worker file when its content changed:
// new URLs are admitted (source "file"), and file-sourced workers no
// longer listed are removed. Static- and API-sourced workers are never
// touched by the file.
func (f *fleet) syncFile() {
	data, err := os.ReadFile(f.file)
	if err != nil {
		f.logf("fleet: worker file %s: %v", f.file, err)
		return
	}
	sig := string(data)
	f.mu.Lock()
	if sig == f.fileSig {
		f.mu.Unlock()
		return
	}
	f.fileSig = sig
	listed := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		u := normalizeWorkerURL(line)
		if u == "" || validateWorkerURL(u) != nil {
			f.logf("fleet: worker file %s: skipping bad url %q", f.file, line)
			continue
		}
		listed[u] = true
		f.addLocked(u, WorkerSourceFile)
	}
	for _, u := range append([]string(nil), f.order...) {
		if w := f.workers[u]; w != nil && w.source == WorkerSourceFile && !listed[u] {
			f.removeLocked(u, "dropped from worker file")
		}
	}
	f.mu.Unlock()
	f.ensureProbing()
}
