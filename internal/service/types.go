package service

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/experiments"
	"mixsoc/internal/itc02"
	"mixsoc/internal/registry"
)

// Request size and grid bounds enforced by validation, so one request
// cannot monopolize the service.
const (
	// MaxRequestBytes bounds the request body, dominated by inline
	// designs (the paper benchmark marshals to ~8 KB).
	MaxRequestBytes = 4 << 20
	// MaxWidth bounds the TAM width of any request.
	MaxWidth = 4096
	// MaxSweepCells bounds len(widths) × len(weights) of one sweep.
	MaxSweepCells = 4096
	// MaxSOCBytes bounds an uploaded .soc body (the biggest embedded
	// benchmark formats to ~15 KB; 1 MiB leaves two orders of headroom).
	MaxSOCBytes = 1 << 20
	// MaxSOCModules bounds an uploaded SOC's module count — the guard
	// against bodies that parse fine but describe absurd designs whose
	// packing would monopolize the planner.
	MaxSOCModules = 1024
)

// BenchmarkP93791M names the built-in paper benchmark design, the
// default when a request carries no inline design.
const BenchmarkP93791M = "p93791m"

// PlanRequest is the body of POST /v1/plan.
type PlanRequest struct {
	// Design is an inline design in the canonical core.MarshalDesign
	// JSON form; empty means the SOC upload or the named Benchmark.
	Design json.RawMessage `json:"design,omitempty"`
	// SOC is an uploaded digital SOC in the ITC'02-style .soc text
	// format; the paper's five analog cores are attached, exactly as
	// msoc-plan -soc does. At most one of Design, SOC and Benchmark may
	// be given.
	SOC string `json:"soc,omitempty"`
	// Benchmark names a built-in registry design ("p93791m", "d695m",
	// "t512505m", ...); empty with no Design and no SOC means p93791m.
	Benchmark string `json:"benchmark,omitempty"`
	// Width is the SOC-level TAM width W.
	Width int `json:"width"`
	// WT is the test-time cost weight wT (wA = 1 − wT); nil means 0.5.
	WT *float64 `json:"wt,omitempty"`
	// Exhaustive selects the exhaustive baseline instead of the
	// Cost_Optimizer heuristic.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Bounded enables branch-and-bound pruning: the planner skips
	// packing candidates whose cost lower bound cannot beat the
	// incumbent. The best cost and selection are bit-identical to an
	// unbounded plan; neval shrinks and the result carries a Pruned
	// count.
	Bounded bool `json:"bounded,omitempty"`
	// Backend selects the packing backend: "occupancy" (the default
	// algorithm), "rectangle" (diagonal-ordered rectangle bin packing),
	// or "tournament" (every backend packs, the best makespan wins).
	// Empty means the default occupancy path with byte-identical
	// responses; an unknown name is a 400.
	Backend string `json:"backend,omitempty"`
	// TimeoutMS caps this request's planning time in milliseconds; 0
	// inherits the server default. Values above the server cap are
	// clamped to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PlanResponse is the body of a successful POST /v1/plan — the exact
// core.Result a direct library call returns, plus the design's content
// hash (the engine cache key) and the grid coordinate.
type PlanResponse struct {
	// DesignHash is the content hash the engine cached the design under.
	DesignHash string `json:"design_hash"`
	// Width echoes the planned TAM width.
	Width int `json:"width"`
	// Weights echoes the cost weights the plan used.
	Weights core.Weights `json:"weights"`
	// Result is the planning outcome, bit-identical to mixsoc.Plan.
	Result *core.Result `json:"result"`
}

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	// Design is an inline design; see PlanRequest.Design.
	Design json.RawMessage `json:"design,omitempty"`
	// SOC is an uploaded .soc body; see PlanRequest.SOC.
	SOC string `json:"soc,omitempty"`
	// Benchmark names a built-in design; see PlanRequest.Benchmark.
	Benchmark string `json:"benchmark,omitempty"`
	// Widths are the TAM widths to sweep.
	Widths []int `json:"widths"`
	// WTs are the test-time weights to sweep (each with wA = 1 − wT);
	// empty means the single balanced setting 0.5.
	WTs []float64 `json:"wts,omitempty"`
	// Exhaustive selects the exhaustive baseline per grid point.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Bounded enables branch-and-bound pruning per grid point; see
	// PlanRequest.Bounded.
	Bounded bool `json:"bounded,omitempty"`
	// WarmStart chains TAM packings across widths — faster, but
	// makespans may deviate a few percent from a cold sweep (see
	// core.SweepOptions.WarmStart); cold results are bit-identical to
	// direct mixsoc.SweepWith calls.
	WarmStart bool `json:"warm_start,omitempty"`
	// Backend selects the packing backend for every grid point; see
	// PlanRequest.Backend.
	Backend string `json:"backend,omitempty"`
	// TimeoutMS caps this request's planning time; see
	// PlanRequest.TimeoutMS.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SweepResponse is the body of a successful POST /v1/sweep.
type SweepResponse struct {
	// DesignHash is the content hash the engine cached the design under.
	DesignHash string `json:"design_hash"`
	// Points are the solved grid points in weights-major order, each
	// bit-identical to the corresponding direct mixsoc.SweepWith point
	// (cold sweeps).
	Points []core.SweepPoint `json:"points"`
}

// ShardRequest is the body of POST /v1/shard — the worker half of a
// distributed sweep. It names the coordinator's full (widths × wts)
// grid plus this worker's round-robin slice of it, so every worker
// derives the same cell numbering without coordination (the
// experiments.RoundRobin rule shared with the grid runner).
type ShardRequest struct {
	// Design is an inline design; see PlanRequest.Design. The
	// coordinator forwards its request's design bytes verbatim, so the
	// worker resolves — and hashes — the identical design.
	Design json.RawMessage `json:"design,omitempty"`
	// SOC is an uploaded .soc body, forwarded verbatim like Design; see
	// PlanRequest.SOC.
	SOC string `json:"soc,omitempty"`
	// Benchmark names a built-in design; see PlanRequest.Benchmark.
	Benchmark string `json:"benchmark,omitempty"`
	// Widths is the full sweep's TAM width axis (not just this shard's).
	Widths []int `json:"widths"`
	// WTs is the full sweep's test-time weight axis.
	WTs []float64 `json:"wts,omitempty"`
	// Exhaustive selects the exhaustive baseline per grid point.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Bounded enables branch-and-bound pruning per grid point; the
	// coordinator forwards it verbatim (see PlanRequest.Bounded —
	// per-point best cost and selection are unchanged by it, so sharded
	// merges stay byte-compatible with unsharded bounded sweeps).
	Bounded bool `json:"bounded,omitempty"`
	// Backend selects the packing backend per grid point, forwarded
	// verbatim by the coordinator so every shard packs with the same
	// algorithm; see PlanRequest.Backend.
	Backend string `json:"backend,omitempty"`
	// Shard is this worker's index in the round-robin split: it owns the
	// weights-major cells shard, shard+of, shard+2·of, ….
	Shard int `json:"shard"`
	// Of is the total number of shards in the split.
	Of int `json:"of"`
	// TimeoutMS caps this shard's planning time; see
	// PlanRequest.TimeoutMS.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ShardResponse is the body of a successful POST /v1/shard: the shard's
// cells solved cold, in weights-major order of the full grid restricted
// to the shard — exactly the order the coordinator's merge expects.
type ShardResponse struct {
	// DesignHash is the worker's content hash of the resolved design;
	// the coordinator rejects a merge whose workers disagree on it.
	DesignHash string `json:"design_hash"`
	// Shard echoes the request's shard index.
	Shard int `json:"shard"`
	// Of echoes the request's shard count.
	Of int `json:"of"`
	// Points are the owned cells' solutions, each bit-identical to the
	// corresponding point of an unsharded cold sweep
	// (core.SweepOptions.Select pins that equality).
	Points []core.SweepPoint `json:"points"`
}

// WorkerFailure records one failed shard attempt of a distributed
// sweep: which worker, which shard, and why. A coordinator that cannot
// complete a sweep returns every attempt's failure in the 502 body.
type WorkerFailure struct {
	// Worker is the base URL of the worker that failed.
	Worker string `json:"worker"`
	// Shard is the round-robin shard index the attempt carried.
	Shard int `json:"shard"`
	// Error describes the failure: a transport error, a non-2xx status
	// with the worker's error body, a shard deadline, or a merge-contract
	// violation.
	Error string `json:"error"`
}

// HealthResponse is the body of GET /healthz. Beyond liveness it
// advertises the server's planning capacity, which a coordinator's
// fleet probes read to weight shard assignment across workers.
type HealthResponse struct {
	// OK is true on a live server.
	OK bool `json:"ok"`
	// Capacity is the server's total CPU budget (the resolved -workers
	// value, i.e. its SplitWorkers pool size).
	Capacity int `json:"capacity"`
	// MaxConcurrent is the server's planning-request concurrency bound.
	MaxConcurrent int `json:"max_concurrent"`
}

// WorkerInfo is one fleet member's live lifecycle state, as reported by
// GET /v1/workers and POST /v1/workers.
type WorkerInfo struct {
	// URL is the worker's normalized base URL (the fleet key).
	URL string `json:"url"`
	// State is the lifecycle state: "healthy", "suspect" or "evicted".
	State string `json:"state"`
	// Source records how the worker joined: "static" (-worker-urls),
	// "file" (-worker-file) or "api" (POST /v1/workers).
	Source string `json:"source"`
	// Capacity is the worker's advertised CPU budget (1 until the first
	// successful probe reports a real value); shard assignment is
	// weighted by it.
	Capacity int `json:"capacity"`
	// ConsecutiveFailures counts probe/shard failures since the last
	// success; reaching the threshold evicts the worker.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// LastError is the most recent failure's description; empty after a
	// success.
	LastError string `json:"last_error,omitempty"`
	// LastOK is the RFC 3339 time of the last successful probe or shard;
	// empty before the first.
	LastOK string `json:"last_ok,omitempty"`
}

// WorkersResponse is the body of GET /v1/workers and of a successful
// POST /v1/workers: the fleet's membership in admission order.
type WorkersResponse struct {
	// Workers lists every fleet member's live state.
	Workers []WorkerInfo `json:"workers"`
}

// WorkersUpdateRequest is the body of POST /v1/workers: a membership
// change. Adds are applied before removes; adding a known URL or
// removing an unknown one is a no-op.
type WorkersUpdateRequest struct {
	// Add lists worker base URLs to admit (absolute http(s) URLs).
	Add []string `json:"add,omitempty"`
	// Remove lists worker base URLs to drop from the fleet.
	Remove []string `json:"remove,omitempty"`
}

// BenchmarkInfo describes one built-in benchmark a request's Benchmark
// field can name, as listed by GET /v1/designs.
type BenchmarkInfo struct {
	// Name is the registry key to put in a request's benchmark field.
	Name string `json:"name"`
	// Description is a one-line summary of the design.
	Description string `json:"description"`
	// Modules counts the digital modules, including the SOC-level
	// module 0.
	Modules int `json:"modules"`
	// AnalogCores counts the embedded analog cores; entries with 0 are
	// digital-only and cannot be planned (use the "m" variant).
	AnalogCores int `json:"analog_cores"`
	// TestVolume is the digital test-data volume in bit-cycles.
	TestVolume int64 `json:"test_volume"`
}

// DesignsResponse is the body of GET /v1/designs: the built-in
// benchmark registry, the engine's live cache sessions, and its
// cache-efficiency counters.
type DesignsResponse struct {
	// Benchmarks lists every built-in benchmark requests can name.
	Benchmarks []BenchmarkInfo `json:"benchmarks"`
	// Designs lists the live cache sessions, most recently used first.
	Designs []core.DesignInfo `json:"designs"`
	// Metrics aggregates the engine's cache counters.
	Metrics core.EngineMetrics `json:"metrics"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Error is a human-readable description of what the request got
	// wrong (4xx) or what failed (5xx).
	Error string `json:"error"`
	// Workers details every failed shard attempt when a distributed
	// sweep could not complete (502 only); empty otherwise.
	Workers []WorkerFailure `json:"workers,omitempty"`
}

// badRequestError marks validation failures so the handler maps them to
// 400 instead of 500.
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return badRequestError{msg: fmt.Sprintf(format, args...)}
}

// resolveDesign turns a request's design fields into a *Design: an
// inline canonical-JSON design, an uploaded .soc body (digital SOC plus
// the paper's analog cores), a named registry benchmark, or the default
// p93791m. At most one source may be given.
func resolveDesign(inline json.RawMessage, soc, benchmark string) (*core.Design, error) {
	sources := 0
	for _, given := range []bool{len(inline) > 0, soc != "", benchmark != ""} {
		if given {
			sources++
		}
	}
	if sources > 1 {
		return nil, badRequestf("give at most one of an inline design, a .soc upload, and a benchmark name")
	}
	switch {
	case len(inline) > 0:
		d, err := core.UnmarshalDesign(inline)
		if err != nil {
			return nil, badRequestf("bad inline design: %v", err)
		}
		return d, nil
	case soc != "":
		return resolveSOC(soc)
	}
	// The default benchmark keeps resolving through the experiments
	// package, pinning served p93791m bytes to the golden tables' SOC.
	if benchmark == "" || benchmark == BenchmarkP93791M {
		return experiments.Design(), nil
	}
	d, err := registry.Lookup(benchmark)
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	if len(d.Analog) == 0 {
		return nil, badRequestf("benchmark %q is digital-only and cannot be planned; use %q", benchmark, benchmark+"m")
	}
	return d, nil
}

// resolveSOC parses and bounds an uploaded .soc body and attaches the
// paper's five analog cores, the same convention msoc-plan -soc uses —
// so an uploaded digital SOC is immediately plannable and two uploads
// of the same text hash to the same engine cache session.
func resolveSOC(soc string) (*core.Design, error) {
	if len(soc) > MaxSOCBytes {
		return nil, badRequestf(".soc body of %d bytes exceeds the %d-byte bound", len(soc), MaxSOCBytes)
	}
	parsed, err := itc02.Parse(strings.NewReader(soc))
	if err != nil {
		return nil, badRequestf("bad .soc body: %v", err)
	}
	if len(parsed.Modules) > MaxSOCModules {
		return nil, badRequestf(".soc with %d modules exceeds the %d-module bound", len(parsed.Modules), MaxSOCModules)
	}
	return &core.Design{Name: parsed.Name + "-m", Digital: parsed, Analog: analog.PaperCores()}, nil
}

// benchmarkInfos renders the registry for GET /v1/designs.
func benchmarkInfos() []BenchmarkInfo {
	entries := registry.Entries()
	infos := make([]BenchmarkInfo, len(entries))
	for i, e := range entries {
		infos[i] = BenchmarkInfo{
			Name:        e.Name,
			Description: e.Description,
			Modules:     e.Modules,
			AnalogCores: e.AnalogCores,
			TestVolume:  e.TestVolume,
		}
	}
	return infos
}

// validateDesignWidth rejects widths below the design's minimum
// feasible TAM width (its widest analog test): such a plan can only end
// in a packer error, so it is a client error, not a server one.
func validateDesignWidth(d *core.Design, widths ...int) error {
	min := core.MinTAMWidth(d)
	for _, w := range widths {
		if w < min {
			return badRequestf("width %d below the design's minimum feasible TAM width %d (its widest analog test)", w, min)
		}
	}
	return nil
}

// weightsFor builds and validates the cost weights from a wT value.
func weightsFor(wt float64) (core.Weights, error) {
	w := core.Weights{Time: wt, Area: 1 - wt}
	if err := w.Validate(); err != nil {
		return core.Weights{}, badRequestf("bad weight wt=%v: %v", wt, err)
	}
	return w, nil
}

func validateWidth(w int) error {
	if w < 1 || w > MaxWidth {
		return badRequestf("width %d out of range [1, %d]", w, MaxWidth)
	}
	return nil
}

// validateBackend rejects unknown packing-backend names as client
// errors (400); the empty name is the default backend and always valid.
func validateBackend(name string) error {
	if _, err := core.PackerFor(name); err != nil {
		return badRequestf("unknown packing backend %q (have %v)", name, core.Backends())
	}
	return nil
}

// WriteJSON writes v as indented JSON with a trailing newline — the
// exact bytes the HTTP handlers send, shared with msoc-plan -json so
// CLI output and service responses can be diffed byte for byte.
func WriteJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
