package service

// The /metrics scrape surface: a dependency-free Prometheus
// text-format (version 0.0.4) renderer over a small hand-rolled
// registry. The metric set is deliberately concrete — engine cache
// counters, worker-pool saturation, per-endpoint request counts and
// latencies, per-worker shard outcomes — rather than a generic metrics
// framework; everything monotonic is a counter (the engine-lifetime
// totals core.EngineMetrics.ScheduleTotal exists for), everything that
// can shrink is a gauge. Series are rendered in sorted order so
// repeated scrapes of an idle server are byte-stable.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mixsoc/internal/core"
)

// The per-worker shard outcome labels of msoc_worker_shards_total.
const (
	shardResultOK      = "ok"
	shardResultError   = "error"
	shardResultTimeout = "timeout"
)

// durStat is a Prometheus summary without quantiles: total seconds and
// observation count.
type durStat struct {
	sum   float64
	count uint64
}

// epCode is one (endpoint, status code) request-counter series.
type epCode struct {
	endpoint string
	code     int
}

// workerResult is one (worker, outcome) shard-counter series.
type workerResult struct {
	worker string
	result string
}

// metricsRegistry accumulates the service-level counters /metrics
// renders; engine counters are scraped live from the Engine instead.
type metricsRegistry struct {
	capacity int // worker-pool slots, a constant gauge

	mu        sync.Mutex
	inFlight  int
	httpCount map[epCode]uint64
	httpDur   map[string]*durStat
	shards    map[workerResult]uint64
	shardDur  map[string]*durStat
}

func newMetricsRegistry(capacity int) *metricsRegistry {
	return &metricsRegistry{
		capacity:  capacity,
		httpCount: map[epCode]uint64{},
		httpDur:   map[string]*durStat{},
		shards:    map[workerResult]uint64{},
		shardDur:  map[string]*durStat{},
	}
}

// observeHTTP records one finished request against its endpoint and
// status code.
func (m *metricsRegistry) observeHTTP(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.httpCount[epCode{endpoint, code}]++
	s := m.httpDur[endpoint]
	if s == nil {
		s = &durStat{}
		m.httpDur[endpoint] = s
	}
	s.sum += d.Seconds()
	s.count++
}

// observeShard records one coordinator shard attempt against its worker
// and outcome.
func (m *metricsRegistry) observeShard(worker, result string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shards[workerResult{worker, result}]++
	s := m.shardDur[worker]
	if s == nil {
		s = &durStat{}
		m.shardDur[worker] = s
	}
	s.sum += d.Seconds()
	s.count++
}

// addInFlight moves the in-flight request gauge.
func (m *metricsRegistry) addInFlight(delta int) {
	m.mu.Lock()
	m.inFlight += delta
	m.mu.Unlock()
}

// instrument wraps a handler with the request count, latency and
// in-flight bookkeeping for one endpoint label.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: 200}
		s.metrics.addInFlight(1)
		defer func() {
			s.metrics.addInFlight(-1)
			s.metrics.observeHTTP(endpoint, rec.code, time.Since(start))
		}()
		h(rec, r)
	})
}

// statusRecorder captures the status code a handler wrote (200 when it
// never called WriteHeader explicitly).
type statusRecorder struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the code and forwards it.
func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// render writes the whole scrape page. workers is the coordinator's
// worker list (empty on a standalone server), listed so every
// configured worker gets a shards-total series even before its first
// attempt — scrapers see the topology, not just the traffic.
func (m *metricsRegistry) render(w io.Writer, em core.EngineMetrics, workers []string) {
	p := &textfmt{w: w}

	p.family("msoc_engine_designs", "Live design cache sessions in the planning engine.", "gauge")
	p.value("msoc_engine_designs", nil, float64(em.Designs))
	p.family("msoc_engine_schedules", "Cached TAM schedules across live sessions.", "gauge")
	p.value("msoc_engine_schedules", nil, float64(em.Schedules))
	p.family("msoc_engine_plans_total", "Planning calls served by the engine.", "counter")
	p.value("msoc_engine_plans_total", nil, float64(em.Plans))
	p.family("msoc_engine_design_sessions_total", "Design cache session lookups by outcome (hit reused a session, miss created one).", "counter")
	p.value("msoc_engine_design_sessions_total", labels{"result", "hit"}, float64(em.DesignHits))
	p.value("msoc_engine_design_sessions_total", labels{"result", "miss"}, float64(em.DesignMisses))
	p.family("msoc_engine_design_evictions_total", "Design cache sessions dropped by the LRU bound.", "counter")
	p.value("msoc_engine_design_evictions_total", nil, float64(em.Evictions))
	p.family("msoc_engine_schedule_cache_total", "Engine-lifetime TAM schedule cache lookups by outcome (includes evicted caches; a miss ran the TAM optimizer).", "counter")
	p.value("msoc_engine_schedule_cache_total", labels{"result", "hit"}, float64(em.ScheduleTotal.Hits))
	p.value("msoc_engine_schedule_cache_total", labels{"result", "miss"}, float64(em.ScheduleTotal.Misses))

	m.mu.Lock()
	defer m.mu.Unlock()

	p.family("msoc_pool_capacity", "Planning worker-pool slots (the -max-concurrent bound).", "gauge")
	p.value("msoc_pool_capacity", nil, float64(m.capacity))
	p.family("msoc_pool_in_flight", "HTTP requests currently being served.", "gauge")
	p.value("msoc_pool_in_flight", nil, float64(m.inFlight))

	p.family("msoc_http_requests_total", "HTTP requests served, by endpoint and status code.", "counter")
	codes := make([]epCode, 0, len(m.httpCount))
	for k := range m.httpCount {
		codes = append(codes, k)
	}
	sort.Slice(codes, func(a, b int) bool {
		if codes[a].endpoint != codes[b].endpoint {
			return codes[a].endpoint < codes[b].endpoint
		}
		return codes[a].code < codes[b].code
	})
	for _, k := range codes {
		p.value("msoc_http_requests_total",
			labels{"endpoint", k.endpoint, "code", strconv.Itoa(k.code)}, float64(m.httpCount[k]))
	}

	p.family("msoc_http_request_duration_seconds", "Wall time per request, by endpoint.", "summary")
	for _, ep := range sortedKeys(m.httpDur) {
		s := m.httpDur[ep]
		p.value("msoc_http_request_duration_seconds_sum", labels{"endpoint", ep}, s.sum)
		p.value("msoc_http_request_duration_seconds_count", labels{"endpoint", ep}, float64(s.count))
	}

	if len(workers) == 0 && len(m.shards) == 0 {
		return
	}
	p.family("msoc_worker_shards_total", "Coordinator shard attempts, by worker and outcome (ok, error, timeout).", "counter")
	seen := map[workerResult]bool{}
	series := make([]workerResult, 0, len(m.shards)+len(workers))
	for k := range m.shards {
		series = append(series, k)
		seen[k] = true
	}
	for _, w := range workers {
		if k := (workerResult{w, shardResultOK}); !seen[k] {
			series = append(series, k)
		}
	}
	sort.Slice(series, func(a, b int) bool {
		if series[a].worker != series[b].worker {
			return series[a].worker < series[b].worker
		}
		return series[a].result < series[b].result
	})
	for _, k := range series {
		p.value("msoc_worker_shards_total",
			labels{"result", k.result, "worker", k.worker}, float64(m.shards[k]))
	}

	p.family("msoc_worker_shard_duration_seconds", "Wall time per shard attempt, by worker.", "summary")
	for _, worker := range sortedKeys(m.shardDur) {
		s := m.shardDur[worker]
		p.value("msoc_worker_shard_duration_seconds_sum", labels{"worker", worker}, s.sum)
		p.value("msoc_worker_shard_duration_seconds_count", labels{"worker", worker}, float64(s.count))
	}
}

// labels is a flat key, value, key, value, … list; flat because every
// call site has literal pairs and a slice keeps them in declared order.
type labels []string

// textfmt emits the Prometheus text exposition format.
type textfmt struct {
	w io.Writer
}

// family writes the # HELP and # TYPE header of one metric family.
func (p *textfmt) family(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// value writes one sample line.
func (p *textfmt) value(name string, ls labels, v float64) {
	if len(ls) == 0 {
		fmt.Fprintf(p.w, "%s %s\n", name, formatValue(v))
		return
	}
	var b strings.Builder
	for i := 0; i+1 < len(ls); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		// Go's %q escaping of backslash, quote and newline is exactly
		// the text-format label escaping.
		fmt.Fprintf(&b, "%s=%q", ls[i], ls[i+1])
	}
	fmt.Fprintf(p.w, "%s{%s} %s\n", name, b.String(), formatValue(v))
}

// formatValue renders a sample value the way Prometheus expects:
// shortest float form, integral counters without an exponent.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns the map's keys in sorted order, for byte-stable
// scrape pages.
func sortedKeys[V any](m map[string]*V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
