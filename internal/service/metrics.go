package service

// The /metrics scrape surface: a dependency-free Prometheus
// text-format (version 0.0.4) renderer over a small hand-rolled
// registry. The metric set is deliberately concrete — engine cache
// counters, worker-pool saturation, per-endpoint request counts and
// latencies, per-worker shard outcomes — rather than a generic metrics
// framework; everything monotonic is a counter (the engine-lifetime
// totals core.EngineMetrics.ScheduleTotal exists for), everything that
// can shrink is a gauge. Series are rendered in sorted order so
// repeated scrapes of an idle server are byte-stable.

import (
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mixsoc/internal/core"
	"mixsoc/internal/tam"
)

// The per-worker shard outcome labels of msoc_worker_shards_total.
const (
	shardResultOK      = "ok"
	shardResultError   = "error"
	shardResultTimeout = "timeout"
)

// The submission outcome labels of msoc_job_submissions_total.
const (
	jobSubmitAccepted = "accepted"
	jobSubmitDeduped  = "deduped"
	jobSubmitResumed  = "resumed"
	jobSubmitRejected = "rejected"
)

// The shard event labels of msoc_job_shards_total.
const (
	jobShardCheckpointed = "checkpointed"
	jobShardRecovered    = "recovered"
	jobShardInvalid      = "invalid"
)

// The per-item outcome labels of msoc_batch_items_total.
const (
	batchItemOK      = "ok"
	batchItemDeduped = "deduped"
	batchItemError   = "error"
)

// durStat is a Prometheus summary without quantiles: total seconds and
// observation count.
type durStat struct {
	sum   float64
	count uint64
}

// epCode is one (endpoint, status code) request-counter series.
type epCode struct {
	endpoint string
	code     int
}

// workerResult is one (worker, outcome) shard-counter series.
type workerResult struct {
	worker string
	result string
}

// workerTransition is one (worker, to-state) transition-counter series.
type workerTransition struct {
	worker string
	to     string
}

// metricsRegistry accumulates the service-level counters /metrics
// renders; engine counters are scraped live from the Engine instead.
// Worker-keyed counters are never deleted — a worker removed from the
// fleet keeps its series, so scrape counters never rewind across
// membership churn.
type metricsRegistry struct {
	capacity int // worker-pool slots, a constant gauge

	mu          sync.Mutex
	inFlight    int
	httpCount   map[epCode]uint64
	httpDur     map[string]*durStat
	shards      map[workerResult]uint64
	shardDur    map[string]*durStat
	transitions map[workerTransition]uint64
	probes      map[workerResult]uint64
	panics      uint64
	jobSubmits  map[string]uint64
	jobShards   map[string]uint64
	jobFinished map[string]*durStat // by terminal state
	recoveries  uint64
	batchItems  map[string]uint64
}

func newMetricsRegistry(capacity int) *metricsRegistry {
	return &metricsRegistry{
		capacity:    capacity,
		httpCount:   map[epCode]uint64{},
		httpDur:     map[string]*durStat{},
		shards:      map[workerResult]uint64{},
		shardDur:    map[string]*durStat{},
		transitions: map[workerTransition]uint64{},
		probes:      map[workerResult]uint64{},
		jobSubmits:  map[string]uint64{},
		jobShards:   map[string]uint64{},
		jobFinished: map[string]*durStat{},
		batchItems:  map[string]uint64{},
	}
}

// countBatch records one POST /v1/batch call's per-item outcomes: items
// answered 200 (shared executions included), items served by another
// item's execution, and items that failed.
func (m *metricsRegistry) countBatch(ok, deduped, failed int) {
	m.mu.Lock()
	m.batchItems[batchItemOK] += uint64(ok)
	m.batchItems[batchItemDeduped] += uint64(deduped)
	m.batchItems[batchItemError] += uint64(failed)
	m.mu.Unlock()
}

// observePanic counts one handler panic recovered into a 500.
func (m *metricsRegistry) observePanic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// observeJobSubmission counts one POST /v1/sweeps outcome (accepted,
// deduped, resumed, rejected).
func (m *metricsRegistry) observeJobSubmission(result string) {
	m.mu.Lock()
	m.jobSubmits[result]++
	m.mu.Unlock()
}

// observeJobShard counts one job shard event: a partial checkpointed
// to disk, recovered from disk, or found invalid at recovery.
func (m *metricsRegistry) observeJobShard(event string) {
	m.mu.Lock()
	m.jobShards[event]++
	m.mu.Unlock()
}

// observeJobRecovery counts one job restored from the job directory at
// boot.
func (m *metricsRegistry) observeJobRecovery() {
	m.mu.Lock()
	m.recoveries++
	m.mu.Unlock()
}

// observeJobFinished records one job reaching a terminal state with
// its wall time in this process (a recovered job counts only the time
// after the restart).
func (m *metricsRegistry) observeJobFinished(state string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.jobFinished[state]
	if s == nil {
		s = &durStat{}
		m.jobFinished[state] = s
	}
	s.sum += d.Seconds()
	s.count++
}

// observeTransition counts one fleet state transition (admission counts
// as a transition to healthy).
func (m *metricsRegistry) observeTransition(worker, to string) {
	m.mu.Lock()
	m.transitions[workerTransition{worker, to}]++
	m.mu.Unlock()
}

// observeProbe counts one health-probe outcome against its worker.
func (m *metricsRegistry) observeProbe(worker string, ok bool) {
	result := shardResultError
	if ok {
		result = shardResultOK
	}
	m.mu.Lock()
	m.probes[workerResult{worker, result}]++
	m.mu.Unlock()
}

// observeHTTP records one finished request against its endpoint and
// status code.
func (m *metricsRegistry) observeHTTP(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.httpCount[epCode{endpoint, code}]++
	s := m.httpDur[endpoint]
	if s == nil {
		s = &durStat{}
		m.httpDur[endpoint] = s
	}
	s.sum += d.Seconds()
	s.count++
}

// observeShard records one coordinator shard attempt against its worker
// and outcome.
func (m *metricsRegistry) observeShard(worker, result string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shards[workerResult{worker, result}]++
	s := m.shardDur[worker]
	if s == nil {
		s = &durStat{}
		m.shardDur[worker] = s
	}
	s.sum += d.Seconds()
	s.count++
}

// addInFlight moves the in-flight request gauge.
func (m *metricsRegistry) addInFlight(delta int) {
	m.mu.Lock()
	m.inFlight += delta
	m.mu.Unlock()
}

// instrument wraps a handler with the request count, latency and
// in-flight bookkeeping for one endpoint label, plus panic recovery: a
// panicking handler becomes a structured 500 ErrorResponse (when
// nothing was written yet) and an msoc_panics_total increment instead
// of a torn connection. http.ErrAbortHandler — the deliberate
// abort-this-connection sentinel — is re-raised untouched.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: 200}
		s.metrics.addInFlight(1)
		defer func() {
			s.metrics.addInFlight(-1)
			s.metrics.observeHTTP(endpoint, rec.code, time.Since(start))
		}()
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.metrics.observePanic()
			s.logf("panic serving %s: %v\n%s", endpoint, v, debug.Stack())
			if !rec.wrote {
				writeStatus(rec, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
			}
		}()
		h(rec, r)
	})
}

// statusRecorder captures the status code a handler wrote (200 when it
// never called WriteHeader explicitly) and whether anything reached
// the wire — the panic middleware only writes its 500 onto a pristine
// response.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

// WriteHeader records the code and forwards it.
func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

// Write forwards the body bytes, noting that the response has begun
// (an implicit 200 when WriteHeader was never called).
func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// Flush forwards a streaming handler's flush to the underlying writer
// when it supports one — the NDJSON job-event stream depends on this
// passing through the instrumentation wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// render writes the whole scrape page. fleet is the coordinator's live
// membership snapshot (empty on a standalone server): every member gets
// a shards-total series even before its first attempt — scrapers see
// the topology, not just the traffic — plus per-worker state and
// capacity gauges. jobs is the job manager's live state census. Worker-
// keyed counters outlive membership: a removed or evicted worker's
// series keep their values, so counters never rewind.
func (m *metricsRegistry) render(w io.Writer, em core.EngineMetrics, fleet []WorkerInfo, jobs map[string]int) {
	p := &textfmt{w: w}

	p.family("msoc_engine_designs", "Live design cache sessions in the planning engine.", "gauge")
	p.value("msoc_engine_designs", nil, float64(em.Designs))
	p.family("msoc_engine_schedules", "Cached TAM schedules across live sessions.", "gauge")
	p.value("msoc_engine_schedules", nil, float64(em.Schedules))
	p.family("msoc_engine_plans_total", "Planning calls served by the engine.", "counter")
	p.value("msoc_engine_plans_total", nil, float64(em.Plans))
	p.family("msoc_engine_design_sessions_total", "Design cache session lookups by outcome (hit reused a session, miss created one).", "counter")
	p.value("msoc_engine_design_sessions_total", labels{"result", "hit"}, float64(em.DesignHits))
	p.value("msoc_engine_design_sessions_total", labels{"result", "miss"}, float64(em.DesignMisses))
	p.family("msoc_engine_design_evictions_total", "Design cache sessions dropped by the LRU bound.", "counter")
	p.value("msoc_engine_design_evictions_total", nil, float64(em.Evictions))
	p.family("msoc_engine_schedule_cache_total", "Engine-lifetime TAM schedule cache lookups by outcome (includes evicted caches; a miss ran the TAM optimizer).", "counter")
	p.value("msoc_engine_schedule_cache_total", labels{"result", "hit"}, float64(em.ScheduleTotal.Hits))
	p.value("msoc_engine_schedule_cache_total", labels{"result", "miss"}, float64(em.ScheduleTotal.Misses))
	// Backend families enumerate the registry in fixed order so every
	// (backend, result) series is present at zero from the first scrape.
	p.family("msoc_backend_packs_total", "TAM packs routed through an explicitly selected packing backend, by backend and outcome (tournament packs count once per participating backend; default-path packs are the schedule-cache misses).", "counter")
	for _, backend := range tam.Backends() {
		st := em.BackendPacks[backend]
		p.value("msoc_backend_packs_total", labels{"backend", backend, "result", "error"}, float64(st.Errors))
		p.value("msoc_backend_packs_total", labels{"backend", backend, "result", "ok"}, float64(st.OK))
	}
	p.family("msoc_backend_tournament_wins_total", "Backend tournament packs won, by winning backend (smallest makespan; ties go to the earlier backend in registry order).", "counter")
	for _, backend := range tam.Backends() {
		p.value("msoc_backend_tournament_wins_total", labels{"backend", backend}, float64(em.TournamentWins[backend]))
	}
	p.family("msoc_module_cache_stairs_total", "Cross-design module staircase store lookups by outcome (a miss designed a wrapper staircase, a hit reused one — including across near-duplicate designs).", "counter")
	p.value("msoc_module_cache_stairs_total", labels{"result", "hit"}, float64(em.ModuleStairs.Hits))
	p.value("msoc_module_cache_stairs_total", labels{"result", "miss"}, float64(em.ModuleStairs.Misses))
	p.family("msoc_module_cache_stair_entries", "Distinct module content hashes held by the cross-design staircase store.", "gauge")
	p.value("msoc_module_cache_stair_entries", nil, float64(em.ModuleStairEntries))
	p.family("msoc_module_cache_digital_jobs_total", "Cross-design digital TAM-job cache lookups by outcome (a miss built a job slice, a hit reused one).", "counter")
	p.value("msoc_module_cache_digital_jobs_total", labels{"result", "hit"}, float64(em.DigitalJobs.Hits))
	p.value("msoc_module_cache_digital_jobs_total", labels{"result", "miss"}, float64(em.DigitalJobs.Misses))
	p.family("msoc_module_cache_digital_job_entries", "Cached (digital SOC, width) job slices in the cross-design digital-jobs cache.", "gauge")
	p.value("msoc_module_cache_digital_job_entries", nil, float64(em.DigitalJobEntries))

	m.mu.Lock()
	defer m.mu.Unlock()

	p.family("msoc_pool_capacity", "Planning worker-pool slots (the -max-concurrent bound).", "gauge")
	p.value("msoc_pool_capacity", nil, float64(m.capacity))
	p.family("msoc_pool_in_flight", "HTTP requests currently being served.", "gauge")
	p.value("msoc_pool_in_flight", nil, float64(m.inFlight))

	p.family("msoc_http_requests_total", "HTTP requests served, by endpoint and status code.", "counter")
	codes := make([]epCode, 0, len(m.httpCount))
	for k := range m.httpCount {
		codes = append(codes, k)
	}
	sort.Slice(codes, func(a, b int) bool {
		if codes[a].endpoint != codes[b].endpoint {
			return codes[a].endpoint < codes[b].endpoint
		}
		return codes[a].code < codes[b].code
	})
	for _, k := range codes {
		p.value("msoc_http_requests_total",
			labels{"endpoint", k.endpoint, "code", strconv.Itoa(k.code)}, float64(m.httpCount[k]))
	}

	p.family("msoc_http_request_duration_seconds", "Wall time per request, by endpoint.", "summary")
	for _, ep := range sortedKeys(m.httpDur) {
		s := m.httpDur[ep]
		p.value("msoc_http_request_duration_seconds_sum", labels{"endpoint", ep}, s.sum)
		p.value("msoc_http_request_duration_seconds_count", labels{"endpoint", ep}, float64(s.count))
	}

	p.family("msoc_batch_items_total", "POST /v1/batch items, by outcome (ok, deduped onto another item's execution, error).", "counter")
	for _, result := range []string{batchItemDeduped, batchItemError, batchItemOK} {
		p.value("msoc_batch_items_total", labels{"result", result}, float64(m.batchItems[result]))
	}

	p.family("msoc_panics_total", "Handler panics recovered into structured 500 responses.", "counter")
	p.value("msoc_panics_total", nil, float64(m.panics))

	// Durable job families render with fixed label enumerations so the
	// scrape page stays byte-stable while idle.
	p.family("msoc_jobs", "Durable sweep jobs held by this server, by lifecycle state.", "gauge")
	for _, state := range []string{JobStateDone, JobStateFailed, JobStateRunning} {
		p.value("msoc_jobs", labels{"state", state}, float64(jobs[state]))
	}
	p.family("msoc_job_submissions_total", "POST /v1/sweeps submissions, by outcome (accepted, deduped, resumed, rejected).", "counter")
	for _, result := range []string{jobSubmitAccepted, jobSubmitDeduped, jobSubmitRejected, jobSubmitResumed} {
		p.value("msoc_job_submissions_total", labels{"result", result}, float64(m.jobSubmits[result]))
	}
	p.family("msoc_job_shards_total", "Durable job shard events: partials checkpointed to the job dir, recovered from it, or found invalid at recovery.", "counter")
	for _, event := range []string{jobShardCheckpointed, jobShardInvalid, jobShardRecovered} {
		p.value("msoc_job_shards_total", labels{"event", event}, float64(m.jobShards[event]))
	}
	p.family("msoc_job_recoveries_total", "Jobs restored from the job directory after a restart.", "counter")
	p.value("msoc_job_recoveries_total", nil, float64(m.recoveries))
	p.family("msoc_job_duration_seconds", "Wall time per finished job in this process, by terminal state.", "summary")
	for _, state := range []string{JobStateDone, JobStateFailed} {
		s := m.jobFinished[state]
		if s == nil {
			s = &durStat{}
		}
		p.value("msoc_job_duration_seconds_sum", labels{"state", state}, s.sum)
		p.value("msoc_job_duration_seconds_count", labels{"state", state}, float64(s.count))
	}

	if len(fleet) == 0 && len(m.shards) == 0 && len(m.transitions) == 0 {
		return
	}

	// Live fleet gauges: membership counts per state, then per-worker
	// state and capacity. Only current members appear here — removal
	// drops the gauges while the counters below persist.
	p.family("msoc_fleet_workers", "Fleet members by lifecycle state.", "gauge")
	byState := map[string]int{}
	for _, wi := range fleet {
		byState[wi.State]++
	}
	for _, state := range []string{WorkerEvicted, WorkerHealthy, WorkerSuspect} {
		p.value("msoc_fleet_workers", labels{"state", state}, float64(byState[state]))
	}
	sortedFleet := append([]WorkerInfo(nil), fleet...)
	sort.Slice(sortedFleet, func(a, b int) bool { return sortedFleet[a].URL < sortedFleet[b].URL })
	p.family("msoc_worker_state", "Fleet member lifecycle state (1 healthy, 2 suspect, 3 evicted).", "gauge")
	for _, wi := range sortedFleet {
		p.value("msoc_worker_state", labels{"worker", wi.URL}, float64(stateRank(wi.State)))
	}
	p.family("msoc_worker_capacity", "Fleet member's advertised CPU budget (weights shard assignment).", "gauge")
	for _, wi := range sortedFleet {
		p.value("msoc_worker_capacity", labels{"worker", wi.URL}, float64(wi.Capacity))
	}

	p.family("msoc_worker_shards_total", "Coordinator shard attempts, by worker and outcome (ok, error, timeout).", "counter")
	seen := map[workerResult]bool{}
	series := make([]workerResult, 0, len(m.shards)+len(fleet))
	for k := range m.shards {
		series = append(series, k)
		seen[k] = true
	}
	for _, wi := range fleet {
		if k := (workerResult{wi.URL, shardResultOK}); !seen[k] {
			series = append(series, k)
		}
	}
	sortWorkerResults(series)
	for _, k := range series {
		p.value("msoc_worker_shards_total",
			labels{"result", k.result, "worker", k.worker}, float64(m.shards[k]))
	}

	p.family("msoc_worker_shard_duration_seconds", "Wall time per shard attempt, by worker.", "summary")
	for _, worker := range sortedKeys(m.shardDur) {
		s := m.shardDur[worker]
		p.value("msoc_worker_shard_duration_seconds_sum", labels{"worker", worker}, s.sum)
		p.value("msoc_worker_shard_duration_seconds_count", labels{"worker", worker}, float64(s.count))
	}

	// Lifecycle counters: monotonic across eviction, re-admission and
	// even removal (removed workers keep their accumulated series).
	p.family("msoc_worker_probes_total", "Fleet health probes, by worker and outcome (ok, error).", "counter")
	probes := make([]workerResult, 0, len(m.probes))
	for k := range m.probes {
		probes = append(probes, k)
	}
	sortWorkerResults(probes)
	for _, k := range probes {
		p.value("msoc_worker_probes_total",
			labels{"result", k.result, "worker", k.worker}, float64(m.probes[k]))
	}
	p.family("msoc_worker_transitions_total", "Fleet lifecycle transitions, by worker and target state (admission counts as a transition to healthy).", "counter")
	trans := make([]workerTransition, 0, len(m.transitions))
	for k := range m.transitions {
		trans = append(trans, k)
	}
	sort.Slice(trans, func(a, b int) bool {
		if trans[a].worker != trans[b].worker {
			return trans[a].worker < trans[b].worker
		}
		return trans[a].to < trans[b].to
	})
	for _, k := range trans {
		p.value("msoc_worker_transitions_total",
			labels{"to", k.to, "worker", k.worker}, float64(m.transitions[k]))
	}
}

// sortWorkerResults orders (worker, result) series for byte-stable
// scrapes.
func sortWorkerResults(series []workerResult) {
	sort.Slice(series, func(a, b int) bool {
		if series[a].worker != series[b].worker {
			return series[a].worker < series[b].worker
		}
		return series[a].result < series[b].result
	})
}

// labels is a flat key, value, key, value, … list; flat because every
// call site has literal pairs and a slice keeps them in declared order.
type labels []string

// textfmt emits the Prometheus text exposition format.
type textfmt struct {
	w io.Writer
}

// family writes the # HELP and # TYPE header of one metric family.
func (p *textfmt) family(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// value writes one sample line.
func (p *textfmt) value(name string, ls labels, v float64) {
	if len(ls) == 0 {
		fmt.Fprintf(p.w, "%s %s\n", name, formatValue(v))
		return
	}
	var b strings.Builder
	for i := 0; i+1 < len(ls); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		// Go's %q escaping of backslash, quote and newline is exactly
		// the text-format label escaping.
		fmt.Fprintf(&b, "%s=%q", ls[i], ls[i+1])
	}
	fmt.Fprintf(p.w, "%s{%s} %s\n", name, b.String(), formatValue(v))
}

// formatValue renders a sample value the way Prometheus expects:
// shortest float form, integral counters without an exponent.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns the map's keys in sorted order, for byte-stable
// scrape pages.
func sortedKeys[V any](m map[string]*V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
