package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// jobTestGrid is the sweep the durable-job tests run: two cells, so a
// standalone server splits it into two checkpointable shards while each
// cell stays a single fast plan.
var jobTestGrid = SweepRequest{Widths: []int{32, 40}, WTs: []float64{0.5}}

// newJobServer boots a standalone server with a durable job directory.
func newJobServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Options{JobDir: dir})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// submitJob posts one job submission and returns its parsed status.
func submitJob(t *testing.T, ts *httptest.Server, req SweepRequest, wantStatus int) *JobResponse {
	t.Helper()
	status, body := post(t, ts, "/v1/sweeps", req)
	if status != wantStatus {
		t.Fatalf("POST /v1/sweeps: status %d, want %d: %s", status, wantStatus, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("job response not JSON: %v: %s", err, body)
	}
	return &jr
}

// getJSON fetches one GET endpoint, returning status and body.
func getJSON(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// waitJobState polls the job until it reaches the wanted state, failing
// after the deadline.
func waitJobState(t *testing.T, ts *httptest.Server, id, want string, deadline time.Duration) *JobResponse {
	t.Helper()
	timeout := time.After(deadline)
	for {
		status, body := getJSON(t, ts, "/v1/sweeps/"+id)
		if status != http.StatusOK {
			t.Fatalf("GET /v1/sweeps/%s: status %d: %s", id, status, body)
		}
		var jr JobResponse
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.State == want {
			return &jr
		}
		select {
		case <-timeout:
			t.Fatalf("job %s never reached %q within %v; last status: %s", id, want, deadline, body)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// A submitted job must run detached, checkpoint every shard to the job
// directory, and serve a result byte-identical to a synchronous sweep
// of the same grid.
func TestJobRunsToCompletionWithSyncIdenticalBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	want := inProcessSweepBytes(t, jobTestGrid)
	dir := t.TempDir()
	_, ts := newJobServer(t, dir)

	jr := submitJob(t, ts, jobTestGrid, http.StatusAccepted)
	if jr.State != JobStateRunning && jr.State != JobStateDone {
		t.Fatalf("fresh job state = %q", jr.State)
	}
	if jr.ShardsTotal != 2 {
		t.Fatalf("2-cell standalone job split into %d shards, want 2", jr.ShardsTotal)
	}
	final := waitJobState(t, ts, jr.ID, JobStateDone, 2*time.Minute)
	if final.ShardsDone != final.ShardsTotal {
		t.Fatalf("done job reports %d/%d shards", final.ShardsDone, final.ShardsTotal)
	}

	status, got := getJSON(t, ts, "/v1/sweeps/"+jr.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("result: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("job result differs from synchronous sweep (%d vs %d bytes)", len(got), len(want))
	}

	// The durable layout: manifest, one checkpoint per shard, result.
	jobDir := filepath.Join(dir, jr.ID)
	for _, name := range []string{"job.json", "shard_0_of_2.json", "shard_1_of_2.json", "result.json"} {
		if _, err := os.Stat(filepath.Join(jobDir, name)); err != nil {
			t.Errorf("job dir lacks %s: %v", name, err)
		}
	}

	series := scrape(t, ts)
	if got := series[`msoc_jobs{state="done"}`]; got != 1 {
		t.Errorf("msoc_jobs{done} = %v, want 1", got)
	}
	if got := series[`msoc_job_submissions_total{result="accepted"}`]; got != 1 {
		t.Errorf("accepted submissions = %v, want 1", got)
	}
	if got := series[`msoc_job_shards_total{event="checkpointed"}`]; got != 2 {
		t.Errorf("checkpointed shards = %v, want 2", got)
	}
}

// Identical submissions — same design hash, grid and options — must
// land on one job ID, before and after completion; a different grid
// must not.
func TestJobDedupeByContentKey(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	_, ts := newJobServer(t, t.TempDir())

	first := submitJob(t, ts, jobTestGrid, http.StatusAccepted)
	dup := submitJob(t, ts, jobTestGrid, http.StatusOK) // deduped, not re-admitted
	if dup.ID != first.ID {
		t.Fatalf("identical submission got job %s, want existing %s", dup.ID, first.ID)
	}
	waitJobState(t, ts, first.ID, JobStateDone, 2*time.Minute)
	done := submitJob(t, ts, jobTestGrid, http.StatusOK)
	if done.ID != first.ID || done.State != JobStateDone {
		t.Fatalf("post-completion resubmission: %+v, want done job %s", done, first.ID)
	}

	other := jobTestGrid
	other.Exhaustive = true
	otherJob := submitJob(t, ts, other, http.StatusAccepted)
	if otherJob.ID == first.ID {
		t.Fatal("exhaustive sweep shares the heuristic sweep's job ID")
	}
	if got := scrape(t, ts)[`msoc_job_submissions_total{result="deduped"}`]; got != 2 {
		t.Errorf("deduped submissions = %v, want 2", got)
	}
}

// Submission validation: options a detached, shardable job cannot honor
// are 400s, and unknown job IDs are 404s on every job endpoint.
func TestJobSubmitValidationAndLookupErrors(t *testing.T) {
	_, ts := newJobServer(t, t.TempDir())

	bad := []SweepRequest{
		{Widths: []int{32}, WarmStart: true},           // sequential, unshardable
		{Widths: []int{32}, TimeoutMS: 1000},           // detached jobs have no request deadline
		{Widths: []int{32, 32}},                        // duplicate width axis
		{Widths: []int{32, 40}, WTs: []float64{1, 1}},  // duplicate weight axis
		{Widths: nil},                                  // no widths
		{Widths: []int{0}},                             // width out of range
	}
	for _, req := range bad {
		if status, body := post(t, ts, "/v1/sweeps", req); status != http.StatusBadRequest {
			t.Errorf("submit %+v: status %d, want 400 (%s)", req, status, body)
		}
	}
	for _, path := range []string{"/v1/sweeps/nope", "/v1/sweeps/nope/result", "/v1/sweeps/nope/events"} {
		if status, body := getJSON(t, ts, path); status != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404 (%s)", path, status, body)
		}
	}
	if got := scrape(t, ts)[`msoc_job_submissions_total{result="rejected"}`]; got != float64(len(bad)) {
		t.Errorf("rejected submissions = %v, want %d", got, len(bad))
	}
}

// While a job is still running its result endpoint must answer 409 —
// and the events stream must replay completed shards, deliver live
// ones, and terminate with the job line. The worker pool is saturated
// first so the job is reliably observable mid-flight.
func TestJobResultNotReadyAndEventsStream(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	s, ts := newJobServer(t, t.TempDir())

	// Hold every pool slot: the job's local shards queue behind us.
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	released := false
	release := func() {
		if !released {
			released = true
			for i := 0; i < cap(s.sem); i++ {
				<-s.sem
			}
		}
	}
	defer release()

	jr := submitJob(t, ts, jobTestGrid, http.StatusAccepted)
	if status, body := getJSON(t, ts, "/v1/sweeps/"+jr.ID+"/result"); status != http.StatusConflict {
		t.Fatalf("result of a running job: status %d, want 409 (%s)", status, body)
	}

	// Subscribe while nothing has completed, then let the job run.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + jr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	release()

	var shardEvents int
	var terminal *JobEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "shard":
			if ev.Shard == nil || len(ev.Shard.Points) == 0 {
				t.Errorf("shard event carries no partial: %s", sc.Text())
			}
			shardEvents++
		case "job":
			terminal = &ev
		default:
			t.Errorf("unknown event type %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if shardEvents != jr.ShardsTotal {
		t.Errorf("stream delivered %d shard events, want %d", shardEvents, jr.ShardsTotal)
	}
	if terminal == nil || terminal.State != JobStateDone {
		t.Fatalf("stream terminal event = %+v, want done", terminal)
	}

	// Reconnecting after completion replays everything and terminates.
	status, body := getJSON(t, ts, "/v1/sweeps/"+jr.ID+"/events")
	if status != http.StatusOK {
		t.Fatalf("events replay: status %d", status)
	}
	if got := strings.Count(string(body), "\n"); got != jr.ShardsTotal+1 {
		t.Errorf("replay stream has %d lines, want %d", got, jr.ShardsTotal+1)
	}
}

// A restarted server must recover persisted jobs: a finished job's
// result serves verbatim with no recomputation, and a job missing
// shards (deleted or corrupted checkpoints) re-runs exactly those and
// converges to the same bytes.
func TestJobRecoveryAfterRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	dir := t.TempDir()
	sA, tsA := newJobServer(t, dir)
	jr := submitJob(t, tsA, jobTestGrid, http.StatusAccepted)
	waitJobState(t, tsA, jr.ID, JobStateDone, 2*time.Minute)
	_, want := getJSON(t, tsA, "/v1/sweeps/"+jr.ID+"/result")
	tsA.Close()
	sA.Close()

	// Restart 1: intact directory. The job must come back done with the
	// identical bytes, straight from result.json.
	sB, tsB := newJobServer(t, dir)
	status, body := getJSON(t, tsB, "/v1/sweeps/"+jr.ID)
	if status != http.StatusOK {
		t.Fatalf("recovered job status: %d: %s", status, body)
	}
	var recovered JobResponse
	if err := json.Unmarshal(body, &recovered); err != nil {
		t.Fatal(err)
	}
	if recovered.State != JobStateDone || !recovered.Recovered {
		t.Fatalf("recovered job = state %q recovered %t, want done/true", recovered.State, recovered.Recovered)
	}
	if _, got := getJSON(t, tsB, "/v1/sweeps/"+jr.ID+"/result"); !bytes.Equal(got, want) {
		t.Fatal("recovered result differs from the original bytes")
	}
	if got := scrape(t, tsB)[`msoc_job_recoveries_total`]; got != 1 {
		t.Errorf("recoveries = %v, want 1", got)
	}
	tsB.Close()
	sB.Close()

	// Restart 2: lose the result, delete one checkpoint, corrupt the
	// other. Recovery must re-verify, drop the corrupt file, re-run both
	// shards, and still produce the identical bytes.
	jobDir := filepath.Join(dir, jr.ID)
	if err := os.Remove(filepath.Join(jobDir, "result.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(jobDir, "shard_0_of_2.json")); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(jobDir, "shard_1_of_2.json")
	data, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(corrupt, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	_, tsC := newJobServer(t, dir)
	final := waitJobState(t, tsC, jr.ID, JobStateDone, 2*time.Minute)
	if !final.Recovered {
		t.Error("resumed job not flagged recovered")
	}
	if _, got := getJSON(t, tsC, "/v1/sweeps/"+jr.ID+"/result"); !bytes.Equal(got, want) {
		t.Fatal("resumed result differs from the original bytes")
	}
	series := scrape(t, tsC)
	if got := series[`msoc_job_shards_total{event="invalid"}`]; got != 1 {
		t.Errorf("invalid checkpoints = %v, want 1 (the truncated file)", got)
	}
	if got := series[`msoc_job_shards_total{event="checkpointed"}`]; got != 2 {
		t.Errorf("re-checkpointed shards = %v, want 2", got)
	}
}

// A valid checkpoint must survive a restart untouched: only the missing
// shard is recomputed, and the recovered partial is flagged as such in
// the job's progress.
func TestJobRecoveryReusesValidCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	dir := t.TempDir()
	sA, tsA := newJobServer(t, dir)
	jr := submitJob(t, tsA, jobTestGrid, http.StatusAccepted)
	waitJobState(t, tsA, jr.ID, JobStateDone, 2*time.Minute)
	_, want := getJSON(t, tsA, "/v1/sweeps/"+jr.ID+"/result")
	tsA.Close()
	sA.Close()

	jobDir := filepath.Join(dir, jr.ID)
	if err := os.Remove(filepath.Join(jobDir, "result.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(jobDir, "shard_1_of_2.json")); err != nil {
		t.Fatal(err)
	}
	kept, err := os.ReadFile(filepath.Join(jobDir, "shard_0_of_2.json"))
	if err != nil {
		t.Fatal(err)
	}

	_, tsB := newJobServer(t, dir)
	final := waitJobState(t, tsB, jr.ID, JobStateDone, 2*time.Minute)
	var states []string
	for _, sh := range final.Shards {
		label := sh.State
		if sh.Recovered {
			label += "/recovered"
		}
		states = append(states, label)
	}
	if states[0] != "done/recovered" || states[1] != "done" {
		t.Fatalf("shard states after resume = %v, want [done/recovered done]", states)
	}
	after, err := os.ReadFile(filepath.Join(jobDir, "shard_0_of_2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(kept, after) {
		t.Error("resume rewrote the surviving checkpoint; it must be reused, not recomputed")
	}
	if _, got := getJSON(t, tsB, "/v1/sweeps/"+jr.ID+"/result"); !bytes.Equal(got, want) {
		t.Fatal("resumed result differs from the original bytes")
	}
}

// A job whose fleet fails every shard must land in "failed" with the
// per-worker detail, answer 502 on its result — and resubmitting the
// identical sweep must resume the same job, not mint a new one.
func TestJobFailureAndResubmissionResume(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	broken := newBrokenWorker(t, "no planner here")
	s := New(Options{WorkerURLs: []string{broken.URL}, ShardAttempts: 1, RetryBackoff: time.Millisecond, JobDir: t.TempDir()})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	jr := submitJob(t, ts, jobTestGrid, http.StatusAccepted)
	failed := waitJobState(t, ts, jr.ID, JobStateFailed, time.Minute)
	if failed.Error == "" || len(failed.Failures) == 0 {
		t.Fatalf("failed job lacks detail: %+v", failed)
	}
	status, body := getJSON(t, ts, "/v1/sweeps/"+jr.ID+"/result")
	if status != http.StatusBadGateway {
		t.Fatalf("failed job result: status %d, want 502 (%s)", status, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || len(er.Workers) == 0 {
		t.Fatalf("502 body lacks worker failures: %s", body)
	}

	// Heal the fleet by dropping the broken worker: the job then runs
	// in-process on resubmission.
	if err := s.fleet.update(nil, []string{broken.URL}); err != nil {
		t.Fatal(err)
	}
	resumed := submitJob(t, ts, jobTestGrid, http.StatusOK)
	if resumed.ID != jr.ID {
		t.Fatalf("resubmission minted job %s, want resumed %s", resumed.ID, jr.ID)
	}
	waitJobState(t, ts, jr.ID, JobStateDone, 2*time.Minute)
	want := inProcessSweepBytes(t, jobTestGrid)
	if _, got := getJSON(t, ts, "/v1/sweeps/"+jr.ID+"/result"); !bytes.Equal(got, want) {
		t.Fatal("resumed job's result differs from the synchronous sweep")
	}
	if got := scrape(t, ts)[`msoc_job_submissions_total{result="resumed"}`]; got != 1 {
		t.Errorf("resumed submissions = %v, want 1", got)
	}
}

// Terminal jobs past the retention window must be garbage-collected:
// state forgotten, directory removed.
func TestJobRetentionGC(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	dir := t.TempDir()
	s := New(Options{JobDir: dir, JobRetention: 10 * time.Millisecond})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	jr := submitJob(t, ts, jobTestGrid, http.StatusAccepted)
	waitJobState(t, ts, jr.ID, JobStateDone, 2*time.Minute)
	time.Sleep(20 * time.Millisecond)
	s.jobs.gcOnce() // the ticker fires every minute; drive one pass directly

	if status, _ := getJSON(t, ts, "/v1/sweeps/"+jr.ID); status != http.StatusNotFound {
		t.Errorf("expired job still answers status %d, want 404", status)
	}
	if _, err := os.Stat(filepath.Join(dir, jr.ID)); !os.IsNotExist(err) {
		t.Errorf("expired job directory still present (err=%v)", err)
	}
}

// A worker streaming an absurdly large shard reply must cost the
// coordinator a bounded read and an ordinary reassignable failure —
// never an unbounded buffer. The healthy worker rescues the shard and
// the sweep still matches the in-process bytes.
func TestCoordinatorBoundsOversizedWorkerReply(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	oneCell := SweepRequest{Widths: []int{32}, WTs: []float64{0.5}}
	want := inProcessSweepBytes(t, oneCell)

	// Valid JSON prefix, then far more bytes than shardReplyLimit(1)
	// allows; the limited decode must cut it off mid-value.
	oversized := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"design_hash":"`)
		junk := bytes.Repeat([]byte("x"), 64<<10)
		var sent int64
		for sent <= shardReplyLimit(1) {
			n, err := w.Write(junk)
			sent += int64(n)
			if err != nil {
				return
			}
		}
		fmt.Fprint(w, `"}`)
	}))
	t.Cleanup(oversized.Close)
	healthy := newWorker(t)

	coord := newCoordinatorServer(t, Options{WorkerURLs: []string{oversized.URL, healthy.URL}, RetryBackoff: time.Millisecond})
	status, got := post(t, coord, "/v1/sweep", oneCell)
	if status != http.StatusOK {
		t.Fatalf("sweep with an oversized worker: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-rescue sweep differs from in-process sweep")
	}
	series := scrape(t, coord)
	if series[`msoc_worker_shards_total{result="error",worker="`+oversized.URL+`"}`] == 0 {
		t.Error("oversized reply not counted as a worker failure")
	}
}

// A panicking handler must become a structured 500 ErrorResponse plus
// an msoc_panics_total increment — and http.ErrAbortHandler must still
// pass through untouched (the deliberate tear-the-connection sentinel).
func TestPanicMiddlewareRecoversIntoStructured500(t *testing.T) {
	s, ts := newTestServer(t)

	mux := http.NewServeMux()
	mux.Handle("GET /boom", s.instrument("/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	mux.Handle("GET /abort", s.instrument("/abort", func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	faulty := httptest.NewServer(mux)
	t.Cleanup(faulty.Close)

	resp, err := http.Get(faulty.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("500 body not a structured ErrorResponse: %v", err)
	}
	if !strings.Contains(er.Error, "kaboom") {
		t.Errorf("500 error = %q, want the panic value", er.Error)
	}

	// ErrAbortHandler: net/http aborts the connection; the client sees a
	// transport error, not a status, and the panic counter stays put.
	if _, err := http.Get(faulty.URL + "/abort"); err == nil {
		t.Error("ErrAbortHandler produced a response; it must tear the connection")
	}

	series := scrape(t, ts)
	if got := series[`msoc_panics_total`]; got != 1 {
		t.Errorf("msoc_panics_total = %v, want 1 (the kaboom, not the abort)", got)
	}
	if got := series[`msoc_http_requests_total{endpoint="/boom",code="500"}`]; got != 1 {
		t.Errorf("panicking request not counted as a 500: %v", got)
	}
}
