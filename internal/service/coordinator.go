package service

// The coordinator half of a distributed sweep. A sweep's (widths ×
// weights) cells are mutually independent — the same argument that
// makes the paper's Table 4 grid shardable across machines — so the
// coordinator partitions them round-robin (experiments.RoundRobin, the
// grid runner's rule), posts one /v1/shard request per shard to the
// fleet's workers, and reassembles the partial point lists into the
// dense weights-major order an in-process sweep returns. The merged
// response is byte-identical to the in-process one: each worker solves
// its cells through core.SweepOptions.Select (subset == full-sweep
// bits), float64s survive the JSON hop exactly, and the merge only
// permutes — never recomputes — the points.
//
// Worker selection goes through the fleet: shards are homed only on
// currently-assignable workers (healthy first), the shard count is
// capacity-weighted (fleet.assign), and every shard outcome feeds the
// fleet's state machine, so a worker that times out one shard becomes
// suspect for every later assignment decision, fleet-wide.
//
// Failure handling: every shard attempt runs under its own deadline
// (Options.ShardTimeout, additionally capped by the request deadline);
// a worker that errors, answers non-2xx, violates the merge contract,
// or hangs past the deadline is abandoned and the shard reassigned to
// the next-best fleet member after a short exponential backoff
// (Options.RetryBackoff), up to Options.ShardAttempts distinct
// attempts. A shard that exhausts its attempts fails the sweep with a
// 502 carrying every attempt's WorkerFailure.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"mixsoc/internal/core"
	"mixsoc/internal/experiments"
)

// maxWorkerErrorBytes bounds how much of a worker's error body the
// coordinator reads back into a WorkerFailure.
const maxWorkerErrorBytes = 4 << 10

// shardReplyAllowancePerCell sizes the coordinator's read bound on a
// worker's shard reply: a solved grid point marshals to a few KB
// (dominated by the per-module wrapper assignments), so 16 KiB per
// requested cell on top of the MaxRequestBytes floor admits every
// legitimate reply while still bounding a misbehaving worker to a few
// tens of MB on the largest permissible grids.
const shardReplyAllowancePerCell = 16 << 10

// shardReplyLimit is the most bytes the coordinator will read of a
// reply carrying `cells` grid points before abandoning the worker —
// the fan-in mirror of the service's own MaxRequestBytes request cap,
// so a worker cannot balloon the coordinator's memory.
func shardReplyLimit(cells int) int64 {
	return int64(MaxRequestBytes) + int64(cells)*shardReplyAllowancePerCell
}

// retryBackoffCap bounds the doubling retry backoff at this many times
// the base Options.RetryBackoff.
const retryBackoffCap = 8

// newFleetTransport builds the one tuned http.Transport the fleet's
// probes and the coordinator's shard fan-out share: connection reuse
// sized for a whole sweep's fan-out (a large sweep re-posts to the same
// few workers hundreds of times; re-dialing each attempt would melt the
// gain of distribution) and bounded dial/TLS handshake waits so a
// black-holed worker costs a deadline, not a hung file descriptor.
func newFleetTransport() *http.Transport {
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: 1 * time.Second,
		MaxIdleConns:          256,
		MaxIdleConnsPerHost:   64, // ≥ any realistic per-worker shard fan-out
		IdleConnTimeout:       90 * time.Second,
	}
}

// coordinator fans sweep shards out to the fleet's workers and merges
// the partials.
type coordinator struct {
	fleet        *fleet
	client       *http.Client
	shardTimeout time.Duration
	attempts     int           // max distinct attempts per shard; 0 = every current member
	retryBackoff time.Duration // base backoff between a shard's attempts
	metrics      *metricsRegistry

	// sleep waits between shard attempts; replaced in tests with a
	// recording no-op so retry tests stay fast and deterministic.
	sleep func(ctx context.Context, d time.Duration) error
}

// newCoordinator builds the coordinator over the fleet; the server owns
// one even when the fleet starts empty, so workers hot-added through
// POST /v1/workers turn a standalone server into a coordinator without
// a restart.
func newCoordinator(opts Options, fl *fleet, client *http.Client, m *metricsRegistry) *coordinator {
	shardTimeout := opts.ShardTimeout
	if shardTimeout <= 0 {
		shardTimeout = 60 * time.Second
	}
	retryBackoff := opts.RetryBackoff
	if retryBackoff <= 0 {
		retryBackoff = 250 * time.Millisecond
	}
	return &coordinator{
		fleet:        fl,
		client:       client, // per-attempt contexts carry the deadlines
		shardTimeout: shardTimeout,
		attempts:     max(0, opts.ShardAttempts),
		retryBackoff: retryBackoff,
		metrics:      m,
		sleep:        sleepCtx,
	}
}

// sleepCtx sleeps for d or until ctx fires, returning ctx's error in
// the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// distributedSweepError reports a sweep the coordinator could not
// complete, carrying every failed shard attempt; the handler maps it to
// 502 with the failures in the response body.
type distributedSweepError struct {
	Failures []WorkerFailure
}

func (e *distributedSweepError) Error() string {
	shards := map[int]bool{}
	for _, f := range e.Failures {
		shards[f.Shard] = true
	}
	return fmt.Sprintf("service: distributed sweep failed: %d shard(s) unrecoverable after %d failed attempt(s)",
		len(shards), len(e.Failures))
}

// sweep answers a cold /v1/sweep by fanning shards out to the fleet's
// assignable workers and merging the partials; the result is
// byte-identical to the in-process sweep for the same spec. ok=false
// (with no error) means the fleet is empty and the caller should sweep
// in-process.
func (c *coordinator) sweep(ctx context.Context, sp *sweepSpec, req SweepRequest) (resp *SweepResponse, ok bool, err error) {
	cells := sp.cells()
	homes, ok := c.fleet.assign(cells)
	if !ok {
		return nil, false, nil
	}
	of := len(homes)

	type shardOutcome struct {
		resp     *ShardResponse
		failures []WorkerFailure
		err      error // non-nil only for request-level aborts (ctx)
	}
	outcomes := make([]shardOutcome, of)
	var wg sync.WaitGroup
	for shard := 0; shard < of; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			resp, failures, err := c.runShard(ctx, sp, req, shard, of, homes[shard])
			outcomes[shard] = shardOutcome{resp: resp, failures: failures, err: err}
		}(shard)
	}
	wg.Wait()

	var failures []WorkerFailure
	for _, o := range outcomes {
		if o.err != nil {
			// The request itself died (deadline or client abort); report
			// that, not a worker failure.
			return nil, true, o.err
		}
		failures = append(failures, o.failures...)
	}
	for _, o := range outcomes {
		if o.resp == nil {
			return nil, true, &distributedSweepError{Failures: failures}
		}
	}

	// Merge: shard s owns dense cells s, s+of, s+2·of, … in order, so
	// the j-th point of shard s lands at cell s + j·of. Placement is
	// all that happens here — post already verified every partial
	// against the merge contract (hash, geometry, and each point's grid
	// coordinate), so a contract-violating worker was reassigned like
	// any other failure, not discovered after the retry loop ended.
	points := make([]core.SweepPoint, cells)
	for shard, o := range outcomes {
		for j, pt := range o.resp.Points {
			points[shard+j*of] = pt
		}
	}
	return &SweepResponse{DesignHash: sp.hash, Points: points}, true, nil
}

// runShard computes one shard on the fleet: the home worker gets the
// first attempt, and each failure reassigns the shard to the next-best
// untried member (fleet.nextWorker — freshly consulted per attempt, so
// evictions and hot-adds during the sweep steer the retries) after an
// exponentially growing backoff. Every outcome feeds the fleet's state
// machine. The returned error is non-nil only when the *request*
// context died; per-worker problems come back as WorkerFailures with a
// nil response.
func (c *coordinator) runShard(ctx context.Context, sp *sweepSpec, req SweepRequest, shard, of int, home string) (*ShardResponse, []WorkerFailure, error) {
	want, err := experiments.RoundRobin(sp.cells(), shard, of)
	if err != nil {
		return nil, nil, err
	}
	shardReq := ShardRequest{
		Design:     req.Design,
		SOC:        req.SOC,
		Benchmark:  req.Benchmark,
		Widths:     sp.widths,
		WTs:        sp.wts,
		Exhaustive: req.Exhaustive,
		Bounded:    req.Bounded,
		Backend:    req.Backend,
		Shard:      shard,
		Of:         of,
	}
	body, err := json.Marshal(shardReq)
	if err != nil {
		return nil, nil, err
	}

	// attempts == 0 means "every current member once": the loop runs
	// until nextWorker exhausts the membership, re-checked per attempt —
	// so a worker hot-added while this shard's first attempt hangs still
	// widens the retry budget and can rescue the shard.
	tried := map[string]bool{}
	var failures []WorkerFailure
	for attempt := 0; c.attempts == 0 || attempt < c.attempts; attempt++ {
		worker := c.fleet.nextWorker(home, tried)
		if worker == "" {
			break // every current member tried
		}
		tried[worker] = true
		if attempt > 0 {
			backoff := c.retryBackoff << min(attempt-1, retryBackoffCap)
			if err := c.sleep(ctx, backoff); err != nil {
				return nil, failures, err
			}
		}
		resp, failure := c.post(ctx, worker, shard, of, body, sp, want)
		if failure == nil {
			c.fleet.reportSuccess(worker, 0)
			return resp, failures, nil
		}
		c.fleet.reportFailure(worker, failure.Error)
		failures = append(failures, *failure)
		if ctx.Err() != nil {
			// The request deadline (or the client) killed the sweep;
			// reassignment cannot help.
			return nil, failures, ctx.Err()
		}
	}
	return nil, failures, nil
}

// post runs one shard attempt against one worker under the per-shard
// deadline and validates the partial against the whole merge contract
// — matching design hash, shard geometry, point count, and every
// point's grid coordinate (want holds the shard's dense cell indices)
// — so a contract violation is an ordinary worker failure the caller
// reassigns, with the drifted worker named in the detail.
func (c *coordinator) post(ctx context.Context, worker string, shard, of int, body []byte, sp *sweepSpec, want []int) (*ShardResponse, *WorkerFailure) {
	start := time.Now()
	fail := func(result, format string, args ...any) *WorkerFailure {
		c.metrics.observeShard(worker, result, time.Since(start))
		return &WorkerFailure{Worker: worker, Shard: shard, Error: fmt.Sprintf(format, args...)}
	}

	attemptCtx, cancel := context.WithTimeout(ctx, c.shardTimeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, worker+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, fail(shardResultError, "building request: %v", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.client.Do(httpReq)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			return nil, fail(shardResultTimeout, "shard deadline (%s) exceeded", c.shardTimeout)
		}
		return nil, fail(shardResultError, "post: %v", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, maxWorkerErrorBytes))
		return nil, fail(shardResultError, "status %d: %s", httpResp.StatusCode, strings.TrimSpace(string(msg)))
	}
	// Bound the reply read (the fan-in mirror of MaxRequestBytes): a
	// worker streaming more than the shard could legitimately weigh is
	// cut off mid-value, which surfaces here as a decode error and an
	// ordinary reassignable failure — never an unbounded read.
	var resp ShardResponse
	if err := json.NewDecoder(io.LimitReader(httpResp.Body, shardReplyLimit(len(want)))).Decode(&resp); err != nil {
		return nil, fail(shardResultError, "decoding partial (replies are capped at %d bytes): %v", shardReplyLimit(len(want)), err)
	}
	if err := verifyShardPartial(sp, shard, of, want, &resp); err != nil {
		return nil, fail(shardResultError, "%v", err)
	}
	c.metrics.observeShard(worker, shardResultOK, time.Since(start))
	return &resp, nil
}

// verifyShardPartial is the merge contract every shard partial must
// pass before anyone trusts it, live or persisted: the design hash the
// worker computed matches the coordinator's, the shard geometry and
// point count match the round-robin slice (want holds the shard's
// dense cell indices), and every point sits on its expected grid
// coordinate. coordinator.post applies it to worker replies; job
// recovery applies the identical check to checkpoints read back from
// disk.
func verifyShardPartial(sp *sweepSpec, shard, of int, want []int, resp *ShardResponse) error {
	switch {
	case resp.DesignHash != sp.hash:
		return fmt.Errorf("merge conflict: worker hashed the design %s, coordinator %s", resp.DesignHash, sp.hash)
	case resp.Shard != shard || resp.Of != of || len(resp.Points) != len(want):
		return fmt.Errorf("merge conflict: got shard %d/%d with %d points, want shard %d with %d",
			resp.Shard, resp.Of, len(resp.Points), shard, len(want))
	}
	for j, pt := range resp.Points {
		i := want[j]
		wantW := sp.widths[i%len(sp.widths)]
		wantWt := sp.weights[i/len(sp.widths)]
		if pt.Width != wantW || pt.Weights != wantWt {
			return fmt.Errorf("merge conflict: point %d is (W=%d, wT=%v), want (W=%d, wT=%v)",
				j, pt.Width, pt.Weights.Time, wantW, wantWt.Time)
		}
	}
	return nil
}
