package service

// The coordinator half of a distributed sweep. A sweep's (widths ×
// weights) cells are mutually independent — the same argument that
// makes the paper's Table 4 grid shardable across machines — so the
// coordinator partitions them round-robin (experiments.RoundRobin, the
// grid runner's rule), posts one /v1/shard request per shard to the
// configured workers, and reassembles the partial point lists into the
// dense weights-major order an in-process sweep returns. The merged
// response is byte-identical to the in-process one: each worker solves
// its cells through core.SweepOptions.Select (subset == full-sweep
// bits), float64s survive the JSON hop exactly, and the merge only
// permutes — never recomputes — the points.
//
// Failure handling: every shard attempt runs under its own deadline
// (Options.ShardTimeout, additionally capped by the request deadline);
// a worker that errors, answers non-2xx, violates the merge contract,
// or hangs past the deadline is abandoned and the shard reassigned to
// the next worker round-robin, up to Options.ShardAttempts distinct
// attempts. A shard that exhausts its attempts fails the sweep with a
// 502 carrying every attempt's WorkerFailure.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mixsoc/internal/core"
	"mixsoc/internal/experiments"
)

// maxWorkerErrorBytes bounds how much of a worker's error body the
// coordinator reads back into a WorkerFailure.
const maxWorkerErrorBytes = 4 << 10

// coordinator fans sweep shards out to worker servers and merges the
// partials.
type coordinator struct {
	workers      []string // normalized base URLs, fixed after New
	client       *http.Client
	shardTimeout time.Duration
	attempts     int // max distinct attempts per shard
	metrics      *metricsRegistry
}

// newCoordinator normalizes the option defaults; only called when
// Options.WorkerURLs is non-empty. It returns nil — no coordinator,
// the server stays standalone — when normalization leaves no usable
// worker URL, so a misconfigured list can never produce a coordinator
// that "merges" zero shards into a grid of zero values.
func newCoordinator(opts Options, m *metricsRegistry) *coordinator {
	workers := make([]string, 0, len(opts.WorkerURLs))
	for _, u := range opts.WorkerURLs {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			workers = append(workers, u)
		}
	}
	if len(workers) == 0 {
		return nil
	}
	shardTimeout := opts.ShardTimeout
	if shardTimeout <= 0 {
		shardTimeout = 60 * time.Second
	}
	attempts := opts.ShardAttempts
	if attempts < 1 || attempts > len(workers) {
		attempts = len(workers)
	}
	return &coordinator{
		workers:      workers,
		client:       &http.Client{}, // per-attempt contexts carry the deadlines
		shardTimeout: shardTimeout,
		attempts:     attempts,
		metrics:      m,
	}
}

// distributedSweepError reports a sweep the coordinator could not
// complete, carrying every failed shard attempt; the handler maps it to
// 502 with the failures in the response body.
type distributedSweepError struct {
	Failures []WorkerFailure
}

func (e *distributedSweepError) Error() string {
	shards := map[int]bool{}
	for _, f := range e.Failures {
		shards[f.Shard] = true
	}
	return fmt.Sprintf("service: distributed sweep failed: %d shard(s) unrecoverable after %d failed attempt(s)",
		len(shards), len(e.Failures))
}

// sweep answers a cold /v1/sweep by fanning shards out to the workers
// and merging the partials; the result is byte-identical to the
// in-process sweep for the same spec.
func (c *coordinator) sweep(ctx context.Context, sp *sweepSpec, req SweepRequest) (*SweepResponse, error) {
	cells := sp.cells()
	of := min(len(c.workers), cells)

	type shardOutcome struct {
		resp     *ShardResponse
		failures []WorkerFailure
		err      error // non-nil only for request-level aborts (ctx)
	}
	outcomes := make([]shardOutcome, of)
	var wg sync.WaitGroup
	for shard := 0; shard < of; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			resp, failures, err := c.runShard(ctx, sp, req, shard, of)
			outcomes[shard] = shardOutcome{resp: resp, failures: failures, err: err}
		}(shard)
	}
	wg.Wait()

	var failures []WorkerFailure
	for _, o := range outcomes {
		if o.err != nil {
			// The request itself died (deadline or client abort); report
			// that, not a worker failure.
			return nil, o.err
		}
		failures = append(failures, o.failures...)
	}
	for _, o := range outcomes {
		if o.resp == nil {
			return nil, &distributedSweepError{Failures: failures}
		}
	}

	// Merge: shard s owns dense cells s, s+of, s+2·of, … in order, so
	// the j-th point of shard s lands at cell s + j·of. Placement is
	// all that happens here — post already verified every partial
	// against the merge contract (hash, geometry, and each point's grid
	// coordinate), so a contract-violating worker was reassigned like
	// any other failure, not discovered after the retry loop ended.
	points := make([]core.SweepPoint, cells)
	for shard, o := range outcomes {
		for j, pt := range o.resp.Points {
			points[shard+j*of] = pt
		}
	}
	return &SweepResponse{DesignHash: sp.hash, Points: points}, nil
}

// runShard computes one shard on the workers: the home worker is
// workers[shard % len(workers)], and each failure reassigns the shard
// to the next worker round-robin, up to c.attempts distinct workers.
// The returned error is non-nil only when the *request* context died;
// per-worker problems come back as WorkerFailures with a nil response.
func (c *coordinator) runShard(ctx context.Context, sp *sweepSpec, req SweepRequest, shard, of int) (*ShardResponse, []WorkerFailure, error) {
	want, err := experiments.RoundRobin(sp.cells(), shard, of)
	if err != nil {
		return nil, nil, err
	}
	shardReq := ShardRequest{
		Design:     req.Design,
		Benchmark:  req.Benchmark,
		Widths:     sp.widths,
		WTs:        sp.wts,
		Exhaustive: req.Exhaustive,
		Shard:      shard,
		Of:         of,
	}
	body, err := json.Marshal(shardReq)
	if err != nil {
		return nil, nil, err
	}

	var failures []WorkerFailure
	for attempt := 0; attempt < c.attempts; attempt++ {
		worker := c.workers[(shard+attempt)%len(c.workers)]
		resp, failure := c.post(ctx, worker, shard, body, sp, want)
		if failure == nil {
			return resp, failures, nil
		}
		failures = append(failures, *failure)
		if ctx.Err() != nil {
			// The request deadline (or the client) killed the sweep;
			// reassignment cannot help.
			return nil, failures, ctx.Err()
		}
	}
	return nil, failures, nil
}

// post runs one shard attempt against one worker under the per-shard
// deadline and validates the partial against the whole merge contract
// — matching design hash, shard geometry, point count, and every
// point's grid coordinate (want holds the shard's dense cell indices)
// — so a contract violation is an ordinary worker failure the caller
// reassigns, with the drifted worker named in the detail.
func (c *coordinator) post(ctx context.Context, worker string, shard int, body []byte, sp *sweepSpec, want []int) (*ShardResponse, *WorkerFailure) {
	start := time.Now()
	fail := func(result, format string, args ...any) *WorkerFailure {
		c.metrics.observeShard(worker, result, time.Since(start))
		return &WorkerFailure{Worker: worker, Shard: shard, Error: fmt.Sprintf(format, args...)}
	}

	attemptCtx, cancel := context.WithTimeout(ctx, c.shardTimeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, worker+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, fail(shardResultError, "building request: %v", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.client.Do(httpReq)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			return nil, fail(shardResultTimeout, "shard deadline (%s) exceeded", c.shardTimeout)
		}
		return nil, fail(shardResultError, "post: %v", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, maxWorkerErrorBytes))
		return nil, fail(shardResultError, "status %d: %s", httpResp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var resp ShardResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fail(shardResultError, "decoding partial: %v", err)
	}
	switch {
	case resp.DesignHash != sp.hash:
		return nil, fail(shardResultError, "merge conflict: worker hashed the design %s, coordinator %s", resp.DesignHash, sp.hash)
	case resp.Shard != shard || len(resp.Points) != len(want):
		return nil, fail(shardResultError, "merge conflict: got shard %d/%d with %d points, want shard %d with %d",
			resp.Shard, resp.Of, len(resp.Points), shard, len(want))
	}
	for j, pt := range resp.Points {
		i := want[j]
		wantW := sp.widths[i%len(sp.widths)]
		wantWt := sp.weights[i/len(sp.widths)]
		if pt.Width != wantW || pt.Weights != wantWt {
			return nil, fail(shardResultError, "merge conflict: point %d is (W=%d, wT=%v), want (W=%d, wT=%v)",
				j, pt.Width, pt.Weights.Time, wantW, wantWt.Time)
		}
	}
	c.metrics.observeShard(worker, shardResultOK, time.Since(start))
	return &resp, nil
}
