package service

import (
	"bytes"
	"net/http"
	"strings"
	"testing"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/itc02"
	"mixsoc/internal/registry"
	"mixsoc/internal/socgen"
)

// genSOCText returns a deterministic small generated SOC as .soc text,
// plus the mixed design the service must resolve it to (paper analog
// cores attached, "-m" name suffix).
func genSOCText(t *testing.T, seed int64) (string, *core.Design) {
	t.Helper()
	soc, err := socgen.GenerateSOC(socgen.Options{Seed: seed, Class: socgen.Small})
	if err != nil {
		t.Fatal(err)
	}
	text := itc02.Format(soc)
	return text, &core.Design{Name: soc.Name + "-m", Digital: soc, Analog: analog.PaperCores()}
}

// A plan of an uploaded .soc must be byte-identical to planning the
// same wrapped design directly: upload is a transport, not a dialect.
func TestPlanSOCUploadBitIdenticalToDirect(t *testing.T) {
	_, ts := newTestServer(t)
	text, want := genSOCText(t, 7)
	wt := 0.5
	status, got := post(t, ts, "/v1/plan", PlanRequest{SOC: text, Width: 16, WT: &wt})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}

	res, err := core.NewPlanner(want, 16, core.EqualWeights).CostOptimizer()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := core.DesignHash(want)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := WriteJSON(&direct, &PlanResponse{
		DesignHash: hash, Width: 16, Weights: core.EqualWeights, Result: res,
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, direct.Bytes()) {
		t.Fatalf("served upload plan differs from direct call:\nserved %d bytes, direct %d bytes", len(got), direct.Len())
	}
}

// A sweep of an uploaded .soc must match the direct core.SweepWith
// bytes point for point, exactly like the built-in design's sweep.
func TestSweepSOCUploadBitIdenticalToDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	_, ts := newTestServer(t)
	text, want := genSOCText(t, 11)
	req := SweepRequest{SOC: text, Widths: []int{16, 24}, WTs: []float64{0.5}}
	status, got := post(t, ts, "/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}

	points, err := core.SweepWith(want, req.Widths, []core.Weights{{Time: 0.5, Area: 0.5}}, core.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := core.DesignHash(want)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := WriteJSON(&direct, &SweepResponse{DesignHash: hash, Points: points}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, direct.Bytes()) {
		t.Fatal("served upload sweep differs from direct SweepWith bytes")
	}
}

// Hostile and malformed .soc bodies must all come back 400, never 500.
func TestSOCUploadRejections(t *testing.T) {
	_, ts := newTestServer(t)
	valid, _ := genSOCText(t, 7)

	// A parse-valid SOC with an absurd module count.
	big := itc02.NewSOC("absurd")
	for i := 1; i <= MaxSOCModules+1; i++ {
		big.Modules = append(big.Modules, &itc02.Module{ID: i})
	}

	cases := []struct {
		name string
		req  PlanRequest
		want string
	}{
		{"garbage", PlanRequest{SOC: "not a soc file", Width: 16}, "soc"},
		{"truncated", PlanRequest{SOC: valid[:len(valid)/2], Width: 16}, "soc"},
		{"oversized", PlanRequest{SOC: strings.Repeat("x", MaxSOCBytes+1), Width: 16}, "exceeds"},
		{"too many modules", PlanRequest{SOC: itc02.Format(big), Width: 16}, "modules"},
		{"soc and benchmark", PlanRequest{SOC: valid, Benchmark: "p93791m", Width: 16}, "at most one"},
		{"soc and inline design", PlanRequest{SOC: valid, Design: []byte(`{"name":"x"}`), Width: 16}, "at most one"},
		{"width below analog floor", PlanRequest{SOC: valid, Width: 4}, "width"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := post(t, ts, "/v1/plan", tc.req)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", status, body)
			}
			if !strings.Contains(strings.ToLower(string(body)), tc.want) {
				t.Errorf("error body should mention %q: %s", tc.want, body)
			}
		})
	}
}

// Repeated uploads of the same .soc must share one engine cache
// session, keyed by the resolved design hash.
func TestSOCUploadCacheHits(t *testing.T) {
	s, ts := newTestServer(t)
	text, want := genSOCText(t, 7)
	hash, err := core.DesignHash(want)
	if err != nil {
		t.Fatal(err)
	}
	wt := 0.5
	for i := 0; i < 3; i++ {
		if status, body := post(t, ts, "/v1/plan", PlanRequest{SOC: text, Width: 16, WT: &wt}); status != http.StatusOK {
			t.Fatalf("upload %d: status %d: %s", i, status, body)
		}
	}
	info := s.Designs()
	if info.Metrics.DesignMisses != 1 {
		t.Errorf("design misses = %d, want 1 (one session for three identical uploads)", info.Metrics.DesignMisses)
	}
	if info.Metrics.DesignHits < 2 {
		t.Errorf("design hits = %d, want at least 2", info.Metrics.DesignHits)
	}
	found := false
	for _, d := range info.Designs {
		if d.Hash == hash {
			found = true
			if d.Name != want.Name {
				t.Errorf("cache session name = %q, want %q", d.Name, want.Name)
			}
		}
	}
	if !found {
		t.Errorf("no cache session for uploaded design hash %s", hash)
	}
}

// Benchmark-by-name requests resolve through the registry; digital-only
// and unknown names are 400s that point at the fix.
func TestBenchmarkRequests(t *testing.T) {
	_, ts := newTestServer(t)
	wt := 0.5
	status, got := post(t, ts, "/v1/plan", PlanRequest{Benchmark: "d695m", Width: 24, WT: &wt})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	d, err := registry.Lookup("d695m")
	if err != nil {
		t.Fatal(err)
	}
	hash, err := core.DesignHash(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), hash) {
		t.Errorf("plan response does not carry the registry design hash %s", hash)
	}

	status, body := post(t, ts, "/v1/plan", PlanRequest{Benchmark: "d695", Width: 24})
	if status != http.StatusBadRequest || !strings.Contains(string(body), "d695m") {
		t.Errorf("digital-only benchmark: status %d, body %s; want 400 naming d695m", status, body)
	}
	status, body = post(t, ts, "/v1/plan", PlanRequest{Benchmark: "nope", Width: 24})
	if status != http.StatusBadRequest {
		t.Errorf("unknown benchmark: status %d, body %s; want 400", status, body)
	}
}

// GET /v1/designs lists every registry benchmark ahead of the live
// cache sessions.
func TestDesignsListsBenchmarks(t *testing.T) {
	s, _ := newTestServer(t)
	info := s.Designs()
	names := map[string]bool{}
	for _, b := range info.Benchmarks {
		names[b.Name] = true
	}
	for _, want := range registry.Names() {
		if !names[want] {
			t.Errorf("GET /v1/designs is missing benchmark %q", want)
		}
	}
	for _, b := range info.Benchmarks {
		if b.Modules <= 0 || b.Description == "" {
			t.Errorf("benchmark %q has empty metadata: %+v", b.Name, b)
		}
	}
}
