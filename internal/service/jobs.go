package service

// Durable sweep jobs: the asynchronous, crash-resumable half of the
// serving layer. POST /v1/sweeps validates a sweep exactly like
// POST /v1/sweep, dedupes it by content key — the design hash, the
// normalized grid axes and the exhaustive flag hash to a deterministic
// job ID, so identical re-submissions (before or after a restart)
// land on the existing job — and returns immediately; the sweep then
// runs detached from the submitting connection under the manager's own
// context, so a client that disconnects (499) no longer cancels work.
//
// Durability is built on the experiments shard-file interchange: every
// completed shard is checkpointed to <job-dir>/<id>/shard_N_of_M.json
// with experiments.WriteJSONFile (atomic temp-file-plus-rename, so a
// kill -9 mid-checkpoint never leaves a torn partial), and the final
// merged response is persisted to result.json as the exact bytes a
// synchronous POST /v1/sweep would have returned —
// GET /v1/sweeps/{id}/result serves those bytes verbatim. A restarted
// coordinator re-reads the job directory, re-verifies every persisted
// partial against the same three-step merge contract live merges use
// (design hash, shard geometry, every point's grid coordinate —
// verifyShardPartial, shared with coordinator.post), deletes the ones
// that fail it, and re-runs only the missing shards.
//
// The shard work itself reuses the existing machinery unchanged: on a
// coordinator with a live fleet each missing shard goes through
// coordinator.runShard (per-attempt deadlines, retry-by-reassignment,
// fleet state-machine feedback); on a standalone server the shards
// solve in-process through Server.Shard, each holding one worker-pool
// slot, so jobs and interactive requests share the same saturation
// bound. Either way every partial is bit-identical to the same cells
// of an unsharded sweep, which is what makes the checkpoint files
// mergeable across process lifetimes.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"mixsoc/internal/core"
	"mixsoc/internal/experiments"
)

// The lifecycle states of a durable sweep job.
const (
	// JobStateRunning marks a job with shards still unsolved (including
	// a job recovered from disk that is re-running its missing shards).
	JobStateRunning = "running"
	// JobStateDone marks a job whose merged result is available at
	// GET /v1/sweeps/{id}/result, byte-identical to a synchronous sweep.
	JobStateDone = "done"
	// JobStateFailed marks a job that exhausted its shard attempts;
	// re-submitting the identical sweep resumes it from its checkpoints.
	JobStateFailed = "failed"
)

// maxLocalJobShards caps how many shards a job is split into on a
// server with no fleet: enough to checkpoint progress in pieces
// without flooding the worker pool with tiny selects.
const maxLocalJobShards = 4

// jobGCInterval is how often the retention sweep looks for expired
// terminal jobs (when Options.JobRetention is set).
const jobGCInterval = time.Minute

// JobResponse is the body of POST /v1/sweeps and GET /v1/sweeps/{id}:
// one durable sweep job's identity, grid, and per-shard progress.
type JobResponse struct {
	// ID is the job's content-keyed identifier: a deterministic hash of
	// the design hash, the normalized grid axes, and the exhaustive
	// flag, so identical sweeps always share one ID.
	ID string `json:"id"`
	// State is the job lifecycle state: "running", "done" or "failed".
	State string `json:"state"`
	// DesignHash is the content hash of the job's resolved design.
	DesignHash string `json:"design_hash"`
	// Widths is the job's TAM width axis.
	Widths []int `json:"widths"`
	// WTs is the job's normalized test-time weight axis.
	WTs []float64 `json:"wts"`
	// Exhaustive records whether the job solves the exhaustive baseline.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// Bounded records whether the job prunes with the admissible cost
	// lower bound (see SweepRequest.Bounded).
	Bounded bool `json:"bounded,omitempty"`
	// Backend records the packing backend the job plans with; empty is
	// the default occupancy backend (see PlanRequest.Backend).
	Backend string `json:"backend,omitempty"`
	// ShardsDone counts the shards with a verified partial (checkpointed
	// or recovered).
	ShardsDone int `json:"shards_done"`
	// ShardsTotal is the job's shard count, fixed at submission.
	ShardsTotal int `json:"shards_total"`
	// Shards is the per-shard progress, indexed by shard number.
	Shards []JobShardInfo `json:"shards"`
	// Recovered is true when the job was restored from the job directory
	// after a coordinator restart.
	Recovered bool `json:"recovered,omitempty"`
	// Error describes why the job failed; empty unless State is "failed".
	Error string `json:"error,omitempty"`
	// Failures details the failed shard attempts of a failed job.
	Failures []WorkerFailure `json:"failures,omitempty"`
	// CreatedAt is the RFC 3339 submission time.
	CreatedAt string `json:"created_at,omitempty"`
	// FinishedAt is the RFC 3339 time the job reached a terminal state;
	// empty while running.
	FinishedAt string `json:"finished_at,omitempty"`
}

// JobShardInfo is one shard's progress within a durable sweep job.
type JobShardInfo struct {
	// Shard is the round-robin shard index.
	Shard int `json:"shard"`
	// State is "pending" until the shard's partial is verified, then
	// "done".
	State string `json:"state"`
	// Points is the number of grid cells the completed shard carries.
	Points int `json:"points,omitempty"`
	// Recovered is true when the shard's partial was restored from a
	// checkpoint file rather than computed by this process.
	Recovered bool `json:"recovered,omitempty"`
}

// JobEvent is one NDJSON line of the GET /v1/sweeps/{id}/events
// stream: a completed shard partial as it lands, or the job's terminal
// state as the final line.
type JobEvent struct {
	// Type is "shard" for a completed partial (Shard is set) or "job"
	// for the stream's terminal line (State is set).
	Type string `json:"type"`
	// Shard is the completed shard's full partial — the same mergeable,
	// JSON-bit-exact unit the checkpoint files hold.
	Shard *ShardResponse `json:"shard,omitempty"`
	// Recovered is true when the partial came from a checkpoint file.
	Recovered bool `json:"recovered,omitempty"`
	// State is the job's terminal state ("done" or "failed") on the
	// final line.
	State string `json:"state,omitempty"`
	// Error describes the failure on a terminal "failed" line.
	Error string `json:"error,omitempty"`
}

// jobManifest is the durable identity of one job —
// <job-dir>/<id>/job.json — everything recovery needs to re-derive the
// sweep spec and the shard split exactly as submitted.
type jobManifest struct {
	ID         string          `json:"id"`
	DesignHash string          `json:"design_hash"`
	Design     json.RawMessage `json:"design,omitempty"`
	SOC        string          `json:"soc,omitempty"`
	Benchmark  string          `json:"benchmark,omitempty"`
	Widths     []int           `json:"widths"`
	WTs        []float64       `json:"wts"`
	Exhaustive bool            `json:"exhaustive,omitempty"`
	Bounded    bool            `json:"bounded,omitempty"`
	Backend    string          `json:"backend,omitempty"`
	Of         int             `json:"of"`
	CreatedAt  string          `json:"created_at"`
}

// jobShardState is one shard's in-memory progress: its verified
// partial (nil while pending) and whether it came from a checkpoint.
type jobShardState struct {
	resp      *ShardResponse
	recovered bool
}

// job is one durable sweep job's live state. The manifest fields are
// immutable after construction; everything else is guarded by mu.
type job struct {
	manifest jobManifest
	dir      string // job's own directory; "" when the store is memory-only

	mu         sync.Mutex
	state      string
	shards     []jobShardState
	done       int
	recovered  bool
	errMsg     string
	failures   []WorkerFailure
	result     []byte // exact GET .../result bytes once done
	createdAt  time.Time
	finishedAt time.Time
	subs       map[chan []byte]bool
	running    bool // a runner goroutine currently owns this job
}

// jobManager owns every durable sweep job: submission and dedupe,
// the detached runners, checkpoint recovery at boot, the events
// broadcast, and retention GC. It is created by New and stopped by
// Server.Close.
type jobManager struct {
	srv       *Server
	dir       string // "" disables durability (jobs are still async + deduped)
	retention time.Duration
	logf      func(format string, args ...any)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu   sync.Mutex
	jobs map[string]*job
}

// newJobManager builds the manager and, when dir is set, recovers
// every persisted job: manifests are re-read, checkpointed partials
// re-verified against the merge contract (invalid ones deleted), and
// unfinished jobs resumed with only their missing shards re-run.
func newJobManager(s *Server, dir string, retention time.Duration, logf func(string, ...any)) *jobManager {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &jobManager{
		srv:       s,
		dir:       dir,
		retention: retention,
		logf:      logf,
		ctx:       ctx,
		cancel:    cancel,
		jobs:      map[string]*job{},
	}
	if dir != "" {
		m.recover()
		if retention > 0 {
			m.wg.Add(1)
			go m.gcLoop()
		}
	}
	return m
}

// close stops every runner (in-flight shard work aborts at its next
// cancellation point; completed checkpoints stay on disk) and waits
// for them.
func (m *jobManager) close() {
	m.cancel()
	m.wg.Wait()
}

// jobID derives the content key every equivalent sweep submission
// shares: the design hash plus the normalized grid axes and the
// exhaustive, bounded and backend flags. Deterministic across processes
// and restarts, which is what makes dedupe survive a coordinator crash.
// Unbounded default-backend jobs keep the original key shape — each
// flag joins the hash only when set — so checkpoints written by an
// older binary still re-derive their IDs at recovery.
func jobID(sp *sweepSpec, exhaustive, bounded bool, backend string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%v|%v|%t", sp.hash, sp.widths, sp.wts, exhaustive)
	if bounded {
		fmt.Fprintf(h, "|bounded")
	}
	if backend != "" {
		fmt.Fprintf(h, "|backend=%s", backend)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// submit validates a sweep, dedupes it against in-flight and finished
// jobs, and starts a detached runner for a new (or resumed failed)
// job. created reports whether a new job was admitted; a deduped
// submission returns the existing job.
func (m *jobManager) submit(req SweepRequest) (j *job, created bool, err error) {
	observe := func(result string) { m.srv.metrics.observeJobSubmission(result) }
	sp, err := validateSweep(req.Design, req.SOC, req.Benchmark, req.Widths, req.WTs)
	if err != nil {
		observe(jobSubmitRejected)
		return nil, false, err
	}
	if req.WarmStart {
		observe(jobSubmitRejected)
		return nil, false, badRequestf("durable jobs solve cold sweeps only: warm_start chains widths sequentially and cannot be sharded or checkpointed")
	}
	if req.TimeoutMS != 0 {
		observe(jobSubmitRejected)
		return nil, false, badRequestf("durable jobs run detached from the request: timeout_ms is not supported, poll GET /v1/sweeps/{id} instead")
	}
	if !sp.distributable() {
		observe(jobSubmitRejected)
		return nil, false, badRequestf("durable jobs need duplicate-free width and wt axes (cells are checkpointed by grid coordinate)")
	}

	if err := validateBackend(req.Backend); err != nil {
		observe(jobSubmitRejected)
		return nil, false, err
	}

	id := jobID(sp, req.Exhaustive, req.Bounded, req.Backend)
	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.jobs[id]; ok {
		existing.mu.Lock()
		resume := existing.state == JobStateFailed && !existing.running
		if resume {
			// Re-submission of a failed job retries it: keep the verified
			// checkpoints, clear the failure, re-run what is missing.
			existing.state = JobStateRunning
			existing.errMsg = ""
			existing.failures = nil
			existing.finishedAt = time.Time{}
			existing.running = true
		}
		existing.mu.Unlock()
		if resume {
			observe(jobSubmitResumed)
			m.startRunner(existing, sp)
		} else {
			observe(jobSubmitDeduped)
		}
		return existing, false, nil
	}

	of := m.chooseOf(sp.cells())
	j = &job{
		manifest: jobManifest{
			ID:         id,
			DesignHash: sp.hash,
			Design:     req.Design,
			SOC:        req.SOC,
			Benchmark:  req.Benchmark,
			Widths:     sp.widths,
			WTs:        sp.wts,
			Exhaustive: req.Exhaustive,
			Bounded:    req.Bounded,
			Backend:    req.Backend,
			Of:         of,
			CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		},
		state:     JobStateRunning,
		shards:    make([]jobShardState, of),
		createdAt: time.Now(),
		subs:      map[chan []byte]bool{},
		running:   true,
	}
	if m.dir != "" {
		j.dir = filepath.Join(m.dir, id)
		if err := os.MkdirAll(j.dir, 0o755); err != nil {
			observe(jobSubmitRejected)
			return nil, false, fmt.Errorf("service: creating job directory: %w", err)
		}
		if err := experiments.WriteJSONFile(filepath.Join(j.dir, "job.json"), &j.manifest); err != nil {
			observe(jobSubmitRejected)
			return nil, false, fmt.Errorf("service: writing job manifest: %w", err)
		}
	}
	m.jobs[id] = j
	observe(jobSubmitAccepted)
	m.startRunner(j, sp)
	return j, true, nil
}

// chooseOf picks a new job's shard count: with a fleet, the
// capacity-weighted assignment's size (one shard per home, exactly as
// a synchronous distributed sweep would split); standalone, enough
// shards to checkpoint progress in pieces.
func (m *jobManager) chooseOf(cells int) int {
	if homes, ok := m.srv.fleet.assign(cells); ok {
		return len(homes)
	}
	return min(cells, maxLocalJobShards)
}

// get looks a job up by ID.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// stateCounts snapshots how many jobs are in each lifecycle state, for
// the /metrics gauge.
func (m *jobManager) stateCounts() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts := map[string]int{}
	for _, j := range m.jobs {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	return counts
}

// startRunner spawns the job's detached runner under the manager's
// context (never the submitting request's — that is what detaches the
// work from the client connection).
func (m *jobManager) startRunner(j *job, sp *sweepSpec) {
	m.wg.Add(1)
	go m.run(j, sp)
}

// run drives one job to a terminal state: solve every missing shard
// (fleet or local), checkpoint each partial as it lands, then merge
// and persist the result. A manager shutdown mid-run leaves the job
// "running" with its checkpoints on disk — exactly the state recovery
// resumes from.
func (m *jobManager) run(j *job, sp *sweepSpec) {
	defer m.wg.Done()
	start := time.Now()
	of := j.manifest.Of
	req := SweepRequest{
		Design:     j.manifest.Design,
		SOC:        j.manifest.SOC,
		Benchmark:  j.manifest.Benchmark,
		Widths:     j.manifest.Widths,
		WTs:        j.manifest.WTs,
		Exhaustive: j.manifest.Exhaustive,
		Bounded:    j.manifest.Bounded,
		Backend:    j.manifest.Backend,
	}
	homes, fleetOK := m.srv.fleet.assign(sp.cells())

	var (
		wg       sync.WaitGroup
		failMu   sync.Mutex
		failures []WorkerFailure
	)
	for shard := 0; shard < of; shard++ {
		j.mu.Lock()
		have := j.shards[shard].resp != nil
		j.mu.Unlock()
		if have {
			continue
		}
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			resp, fails := m.solveShard(sp, req, shard, of, homes, fleetOK)
			failMu.Lock()
			failures = append(failures, fails...)
			failMu.Unlock()
			if resp != nil {
				m.completeShard(j, shard, resp, false)
			}
		}(shard)
	}
	wg.Wait()

	if m.ctx.Err() != nil {
		// Shutting down: leave the job running — its checkpoints are the
		// resume point for the next process.
		return
	}
	j.mu.Lock()
	if j.done == of {
		if err := m.finishJob(j, sp); err != nil {
			j.errMsg = err.Error()
			j.terminalLocked(JobStateFailed)
		}
	} else {
		sort.Slice(failures, func(a, b int) bool { return failures[a].Shard < failures[b].Shard })
		j.failures = failures
		j.errMsg = (&distributedSweepError{Failures: failures}).Error()
		if !fleetOK {
			j.errMsg = fmt.Sprintf("service: sweep job failed: %d of %d shard(s) unsolved", of-j.done, of)
		}
		j.terminalLocked(JobStateFailed)
	}
	state := j.state
	j.mu.Unlock()
	m.srv.metrics.observeJobFinished(state, time.Since(start))
}

// solveShard computes one shard's verified partial: through the
// coordinator's retry loop when the fleet has workers, in-process
// (holding one worker-pool slot) otherwise. A nil response means the
// shard failed; the failures say why.
func (m *jobManager) solveShard(sp *sweepSpec, req SweepRequest, shard, of int, homes []string, fleetOK bool) (*ShardResponse, []WorkerFailure) {
	if fleetOK {
		resp, failures, err := m.srv.coord.runShard(m.ctx, sp, req, shard, of, homes[shard%len(homes)])
		if err != nil && m.ctx.Err() == nil {
			failures = append(failures, WorkerFailure{Shard: shard, Error: err.Error()})
		}
		return resp, failures
	}
	resp, err := m.srv.Shard(m.ctx, ShardRequest{
		Design:     req.Design,
		SOC:        req.SOC,
		Benchmark:  req.Benchmark,
		Widths:     req.Widths,
		WTs:        req.WTs,
		Exhaustive: req.Exhaustive,
		Bounded:    req.Bounded,
		Backend:    req.Backend,
		Shard:      shard,
		Of:         of,
	})
	if err != nil {
		if m.ctx.Err() != nil {
			return nil, nil
		}
		return nil, []WorkerFailure{{Shard: shard, Error: err.Error()}}
	}
	return resp, nil
}

// completeShard records one verified partial: checkpoint it to the job
// directory first (atomically — a crash right here costs at most this
// one shard), then publish it to the job's state and event
// subscribers.
func (m *jobManager) completeShard(j *job, shard int, resp *ShardResponse, recovered bool) {
	if j.dir != "" && !recovered {
		path := filepath.Join(j.dir, shardFileName(shard, j.manifest.Of))
		if err := experiments.WriteJSONFile(path, resp); err != nil {
			// The shard still counts in memory; a restart would recompute it.
			m.logf("job %s: checkpointing shard %d: %v", j.manifest.ID, shard, err)
		} else {
			m.srv.metrics.observeJobShard(jobShardCheckpointed)
		}
	}
	if recovered {
		m.srv.metrics.observeJobShard(jobShardRecovered)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.shards[shard].resp != nil {
		return
	}
	j.shards[shard] = jobShardState{resp: resp, recovered: recovered}
	j.done++
	j.broadcastLocked(JobEvent{Type: "shard", Shard: resp, Recovered: recovered})
}

// shardFileName names one shard's checkpoint file within its job
// directory.
func shardFileName(shard, of int) string {
	return fmt.Sprintf("shard_%d_of_%d.json", shard, of)
}

// finishJob merges a fully-solved job's partials into the dense
// weights-major point list and persists the response bytes — the exact
// bytes a synchronous sweep would have returned, served verbatim by
// GET /v1/sweeps/{id}/result. Called with j.mu held.
func (m *jobManager) finishJob(j *job, sp *sweepSpec) error {
	points := make([]core.SweepPoint, sp.cells())
	for shard := range j.shards {
		// Shard s owns dense cells s, s+of, s+2·of, … in order (the
		// RoundRobin rule), same placement as the synchronous merge.
		for i, pt := range j.shards[shard].resp.Points {
			points[shard+i*j.manifest.Of] = pt
		}
	}
	data, err := json.MarshalIndent(&SweepResponse{DesignHash: sp.hash, Points: points}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if j.dir != "" {
		if err := experiments.WriteJSONFile(filepath.Join(j.dir, "result.json"), &SweepResponse{DesignHash: sp.hash, Points: points}); err != nil {
			m.logf("job %s: persisting result: %v", j.manifest.ID, err)
		}
	}
	j.result = data
	j.terminalLocked(JobStateDone)
	return nil
}

// terminalLocked moves the job to a terminal state, stamps the finish
// time, and closes the event stream with the terminal line. Called
// with j.mu held.
func (j *job) terminalLocked(state string) {
	j.state = state
	j.running = false
	j.finishedAt = time.Now()
	j.broadcastLocked(JobEvent{Type: "job", State: state, Error: j.errMsg})
	for ch := range j.subs {
		close(ch)
	}
	j.subs = map[chan []byte]bool{}
}

// broadcastLocked fans one event line out to every subscriber. Called
// with j.mu held; subscriber channels are sized so a job can never
// block on a slow client (subscribe registers under the same lock that
// broadcasts, so no event can slip between replay and registration).
func (j *job) broadcastLocked(ev JobEvent) {
	line := marshalEvent(ev)
	for ch := range j.subs {
		select {
		case ch <- line:
		default:
			// A channel sized of+2 can only be full if the subscriber
			// leaked; drop the event rather than block the job.
		}
	}
}

// marshalEvent renders one NDJSON event line.
func marshalEvent(ev JobEvent) []byte {
	line, err := json.Marshal(ev)
	if err != nil {
		// ShardResponse and JobEvent marshal cannot fail; keep the
		// stream's line discipline anyway.
		line = []byte(fmt.Sprintf(`{"type":"job","state":%q,"error":%q}`, JobStateFailed, err.Error()))
	}
	return append(line, '\n')
}

// subscribe returns the replay of every event the job has already
// emitted plus, for a still-running job, a channel of future lines
// (closed at terminal state) and a cancel function the handler must
// call. Replay and registration happen under one lock, so the stream
// is gapless and duplicate-free.
func (j *job) subscribe() (replay [][]byte, ch chan []byte, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, sh := range j.shards {
		if sh.resp != nil {
			replay = append(replay, marshalEvent(JobEvent{Type: "shard", Shard: sh.resp, Recovered: sh.recovered}))
		}
	}
	if j.state != JobStateRunning {
		replay = append(replay, marshalEvent(JobEvent{Type: "job", State: j.state, Error: j.errMsg}))
		return replay, nil, func() {}
	}
	ch = make(chan []byte, len(j.shards)+2)
	j.subs[ch] = true
	return replay, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// status snapshots the job as its API representation.
func (j *job) status() *JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	resp := &JobResponse{
		ID:          j.manifest.ID,
		State:       j.state,
		DesignHash:  j.manifest.DesignHash,
		Widths:      j.manifest.Widths,
		WTs:         j.manifest.WTs,
		Exhaustive:  j.manifest.Exhaustive,
		Bounded:     j.manifest.Bounded,
		Backend:     j.manifest.Backend,
		ShardsDone:  j.done,
		ShardsTotal: j.manifest.Of,
		Shards:      make([]JobShardInfo, len(j.shards)),
		Recovered:   j.recovered,
		Error:       j.errMsg,
		Failures:    j.failures,
		CreatedAt:   j.manifest.CreatedAt,
	}
	if !j.finishedAt.IsZero() {
		resp.FinishedAt = j.finishedAt.UTC().Format(time.RFC3339)
	}
	for i, sh := range j.shards {
		info := JobShardInfo{Shard: i, State: "pending"}
		if sh.resp != nil {
			info.State = "done"
			info.Points = len(sh.resp.Points)
			info.Recovered = sh.recovered
		}
		resp.Shards[i] = info
	}
	return resp
}

// recover rebuilds every persisted job from the job directory at boot:
// manifests are re-validated, each checkpoint re-verified against the
// merge contract (invalid files deleted — they will simply be re-run),
// finished results loaded, and unfinished jobs resumed with only their
// missing shards.
func (m *jobManager) recover() {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		if !os.IsNotExist(err) {
			m.logf("job recovery: reading %s: %v", m.dir, err)
		}
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if err := m.recoverJob(filepath.Join(m.dir, e.Name())); err != nil {
			m.logf("job recovery: %s: %v", e.Name(), err)
		}
	}
}

// recoverJob restores one job directory. An unreadable or inconsistent
// manifest abandons the directory (returned as an error, logged);
// individually invalid checkpoints are deleted and recomputed.
func (m *jobManager) recoverJob(dir string) error {
	var man jobManifest
	if err := experiments.ReadJSONFile(filepath.Join(dir, "job.json"), &man); err != nil {
		return err
	}
	sp, err := validateSweep(man.Design, man.SOC, man.Benchmark, man.Widths, man.WTs)
	if err != nil {
		return fmt.Errorf("manifest does not validate: %w", err)
	}
	if err := validateBackend(man.Backend); err != nil {
		return fmt.Errorf("manifest does not validate: %w", err)
	}
	if man.ID != jobID(sp, man.Exhaustive, man.Bounded, man.Backend) {
		return fmt.Errorf("manifest ID %s does not match its content key", man.ID)
	}
	if man.DesignHash != sp.hash {
		return fmt.Errorf("manifest design hash %s does not match the design (%s)", man.DesignHash, sp.hash)
	}
	if man.Of < 1 || man.Of > sp.cells() {
		return fmt.Errorf("manifest shard count %d out of range for a %d-cell grid", man.Of, sp.cells())
	}

	j := &job{
		manifest:  man,
		dir:       dir,
		state:     JobStateRunning,
		shards:    make([]jobShardState, man.Of),
		recovered: true,
		createdAt: time.Now(),
		subs:      map[chan []byte]bool{},
	}
	if t, err := time.Parse(time.RFC3339, man.CreatedAt); err == nil {
		j.createdAt = t
	}

	// A persisted result means the job finished before the restart;
	// re-verify it lightly (hash + density) and serve it verbatim.
	resultPath := filepath.Join(dir, "result.json")
	if data, err := os.ReadFile(resultPath); err == nil {
		var res SweepResponse
		if jerr := json.Unmarshal(data, &res); jerr == nil && res.DesignHash == sp.hash && len(res.Points) == sp.cells() {
			j.result = data
			j.state = JobStateDone
			j.done = man.Of
			for i := range j.shards {
				j.shards[i] = jobShardState{resp: &ShardResponse{}, recovered: true}
			}
			if fi, serr := os.Stat(resultPath); serr == nil {
				j.finishedAt = fi.ModTime()
			}
			m.mu.Lock()
			m.jobs[man.ID] = j
			m.mu.Unlock()
			m.srv.metrics.observeJobRecovery()
			m.logf("job recovery: %s: finished result recovered (%d shards)", man.ID, man.Of)
			return nil
		}
		m.logf("job recovery: %s: result.json fails verification, recomputing", man.ID)
		_ = os.Remove(resultPath)
	}

	// Re-verify every checkpoint against the same contract a live merge
	// applies; a file that fails it is deleted and its shard re-run.
	for shard := 0; shard < man.Of; shard++ {
		path := filepath.Join(dir, shardFileName(shard, man.Of))
		var resp ShardResponse
		if err := experiments.ReadJSONFile(path, &resp); err != nil {
			if !os.IsNotExist(err) {
				m.logf("job recovery: %s shard %d: %v (recomputing)", man.ID, shard, err)
				m.srv.metrics.observeJobShard(jobShardInvalid)
				_ = os.Remove(path)
			}
			continue
		}
		want, err := experiments.RoundRobin(sp.cells(), shard, man.Of)
		if err != nil {
			return err
		}
		if err := verifyShardPartial(sp, shard, man.Of, want, &resp); err != nil {
			m.logf("job recovery: %s shard %d: %v (recomputing)", man.ID, shard, err)
			m.srv.metrics.observeJobShard(jobShardInvalid)
			_ = os.Remove(path)
			continue
		}
		j.shards[shard] = jobShardState{resp: &resp, recovered: true}
		j.done++
		m.srv.metrics.observeJobShard(jobShardRecovered)
	}

	j.running = true
	m.mu.Lock()
	m.jobs[man.ID] = j
	m.mu.Unlock()
	m.srv.metrics.observeJobRecovery()
	m.logf("job recovery: %s: resuming with %d/%d shards checkpointed", man.ID, j.done, man.Of)
	m.startRunner(j, sp)
	return nil
}

// gcLoop periodically drops terminal jobs older than the retention
// window: their directories are removed and the IDs forgotten (an
// identical re-submission then simply computes a fresh job).
func (m *jobManager) gcLoop() {
	defer m.wg.Done()
	t := time.NewTicker(jobGCInterval)
	defer t.Stop()
	for {
		m.gcOnce()
		select {
		case <-t.C:
		case <-m.ctx.Done():
			return
		}
	}
}

// gcOnce removes every terminal job whose finish time is past the
// retention window.
func (m *jobManager) gcOnce() {
	cutoff := time.Now().Add(-m.retention)
	m.mu.Lock()
	var expired []*job
	for id, j := range m.jobs {
		j.mu.Lock()
		if j.state != JobStateRunning && !j.finishedAt.IsZero() && j.finishedAt.Before(cutoff) {
			expired = append(expired, j)
			delete(m.jobs, id)
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	for _, j := range expired {
		if j.dir != "" {
			if err := os.RemoveAll(j.dir); err != nil {
				m.logf("job gc: removing %s: %v", j.dir, err)
			}
		}
	}
}

// handleJobSubmit answers POST /v1/sweeps: 202 with the new job's
// status, or 200 with the existing job when the submission dedupes
// (identical design hash, grid and options always share one job ID).
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	j, created, err := s.jobs.submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusAccepted)
	}
	_ = WriteJSON(w, j.status())
}

// handleJobStatus answers GET /v1/sweeps/{id} with the job's per-shard
// progress.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeStatus(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	writeResponse(w, j.status())
}

// handleJobResult answers GET /v1/sweeps/{id}/result: the persisted
// response bytes verbatim (byte-identical to a synchronous
// POST /v1/sweep) once done, 409 while running, 502 with the shard
// failures when failed.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeStatus(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	state, result, errMsg, failures := j.state, j.result, j.errMsg, j.failures
	j.mu.Unlock()
	switch state {
	case JobStateDone:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(result)
	case JobStateFailed:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		_ = WriteJSON(w, ErrorResponse{Error: errMsg, Workers: failures})
	default:
		writeStatus(w, http.StatusConflict, fmt.Sprintf("job %s is still running; poll GET /v1/sweeps/%s", j.manifest.ID, j.manifest.ID))
	}
}

// handleJobEvents answers GET /v1/sweeps/{id}/events with an NDJSON
// stream: every already-completed shard partial is replayed first,
// live completions follow as they land, and the job's terminal state
// is the final line. The stream survives nothing the job does not —
// a coordinator restart drops it; reconnecting replays everything.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeStatus(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	replay, ch, cancel := j.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, line := range replay {
		if _, err := w.Write(line); err != nil {
			return
		}
	}
	flush()
	if ch == nil {
		return
	}
	for {
		select {
		case line, open := <-ch:
			if !open {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		case <-s.jobs.ctx.Done():
			return
		}
	}
}
