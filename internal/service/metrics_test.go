package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mixsoc/internal/core"
	"mixsoc/internal/registry"
)

// promSeries is one parsed sample: the full series key (name plus its
// label set exactly as rendered) and its value.
type promSeries map[string]float64

var (
	promNameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRE = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"$`)
)

// parsePrometheus is a strict Prometheus text-format (0.0.4) parser:
// every line must be a # HELP / # TYPE comment or a sample, every
// sample's metric must belong to a declared # TYPE family (summaries
// may append _sum/_count), names and labels must match the format's
// grammar, and no series may repeat. It fails the test on any
// violation, so /metrics stays scrapeable by real collectors.
func parsePrometheus(t *testing.T, text string) promSeries {
	t.Helper()
	series := promSeries{}
	typed := map[string]string{} // family -> type
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || !promNameRE.MatchString(fields[2]) {
				t.Fatalf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					t.Fatalf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				typed[fields[2]] = fields[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: stray comment %q", lineNo, line)
		}

		rest := line
		labelPart := ""
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			j := strings.LastIndexByte(rest, '}')
			if j < i {
				t.Fatalf("line %d: unbalanced braces in %q", lineNo, line)
			}
			labelPart = rest[i+1 : j]
			rest = rest[:i] + rest[j+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 || !promNameRE.MatchString(fields[0]) {
			t.Fatalf("line %d: malformed sample %q", lineNo, line)
		}
		name := fields[0]
		value, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", lineNo, line, err)
		}
		family := name
		if typ := typed[strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")]; typ == "summary" || typ == "histogram" {
			family = strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		for _, l := range splitLabels(labelPart) {
			if !promLabelRE.MatchString(l) {
				t.Fatalf("line %d: malformed label %q", lineNo, l)
			}
		}
		key := name
		if labelPart != "" {
			key = name + "{" + labelPart + "}"
		}
		if _, dup := series[key]; dup {
			t.Fatalf("line %d: duplicate series %q", lineNo, key)
		}
		series[key] = value
	}
	if len(typed) == 0 {
		t.Fatal("no metric families found")
	}
	return series
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func scrape(t *testing.T, ts *httptest.Server) promSeries {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parsePrometheus(t, string(body))
}

// /metrics must be valid exposition-format text whose engine cache
// counters move as repeated identical plan requests hit the caches —
// the scrape-side view of the /v1/designs metrics.
func TestMetricsEndpointParsesAndCountersMove(t *testing.T) {
	_, ts := newTestServer(t)

	before := scrape(t, ts)
	if got := before[`msoc_engine_plans_total`]; got != 0 {
		t.Errorf("plans_total = %v before any request, want 0", got)
	}

	wt := 0.5
	for i := 0; i < 2; i++ {
		if status, body := post(t, ts, "/v1/plan", PlanRequest{Width: 32, WT: &wt}); status != http.StatusOK {
			t.Fatalf("plan %d: status %d: %s", i, status, body)
		}
	}
	after := scrape(t, ts)

	if got := after[`msoc_engine_plans_total`]; got != 2 {
		t.Errorf("plans_total = %v after two plans, want 2", got)
	}
	hits := after[`msoc_engine_schedule_cache_total{result="hit"}`]
	misses := after[`msoc_engine_schedule_cache_total{result="miss"}`]
	if misses == 0 {
		t.Error("schedule cache misses = 0 after a cold plan")
	}
	if hits <= before[`msoc_engine_schedule_cache_total{result="hit"}`] {
		t.Errorf("schedule cache hits did not move across repeated identical plans (hits=%v misses=%v)", hits, misses)
	}
	if got := after[`msoc_http_requests_total{endpoint="/v1/plan",code="200"}`]; got != 2 {
		t.Errorf("http_requests_total{/v1/plan,200} = %v, want 2", got)
	}
	if after[`msoc_http_request_duration_seconds_count{endpoint="/v1/plan"}`] != 2 {
		t.Error("request duration summary did not count the two plans")
	}
	if cap := after[`msoc_pool_capacity`]; cap < 1 {
		t.Errorf("pool capacity = %v, want >= 1", cap)
	}

	// Error responses land on their own code series.
	if status, _ := post(t, ts, "/v1/plan", PlanRequest{Width: 0}); status != http.StatusBadRequest {
		t.Fatalf("invalid plan: status %d, want 400", status)
	}
	final := scrape(t, ts)
	if got := final[`msoc_http_requests_total{endpoint="/v1/plan",code="400"}`]; got != 1 {
		t.Errorf("http_requests_total{/v1/plan,400} = %v, want 1", got)
	}
}

// The module-cache and batch families: present (at zero) on an idle
// scrape so collectors learn the series before traffic, moved by a
// near-duplicate plan and a deduplicating batch call, and still strict
// exposition format throughout.
func TestMetricsModuleCacheAndBatchFamilies(t *testing.T) {
	_, ts := newTestServer(t)

	before := scrape(t, ts)
	for _, key := range []string{
		`msoc_module_cache_stairs_total{result="hit"}`,
		`msoc_module_cache_stairs_total{result="miss"}`,
		`msoc_module_cache_stair_entries`,
		`msoc_module_cache_digital_jobs_total{result="hit"}`,
		`msoc_module_cache_digital_jobs_total{result="miss"}`,
		`msoc_module_cache_digital_job_entries`,
		`msoc_batch_items_total{result="ok"}`,
		`msoc_batch_items_total{result="deduped"}`,
		`msoc_batch_items_total{result="error"}`,
	} {
		if got, ok := before[key]; !ok || got != 0 {
			t.Errorf("idle scrape: %s = %v, %v; want 0, present", key, got, ok)
		}
	}

	// A plan of the default design followed by a near-duplicate of it
	// (one module's pattern count bumped) must reuse the unchanged
	// modules' staircases across the two engine sessions.
	if status, body := post(t, ts, "/v1/plan", PlanRequest{Width: 32}); status != http.StatusOK {
		t.Fatalf("plan: status %d: %s", status, body)
	}
	nd, err := registry.Lookup("p93791m")
	if err != nil {
		t.Fatal(err)
	}
	mods := nd.Digital.Modules
	mods[len(mods)-1].Tests[0].Patterns++
	raw, err := core.MarshalDesign(nd)
	if err != nil {
		t.Fatal(err)
	}
	if status, body := post(t, ts, "/v1/plan", PlanRequest{Width: 32, Design: raw}); status != http.StatusOK {
		t.Fatalf("near-duplicate plan: status %d: %s", status, body)
	}
	cached := scrape(t, ts)
	if got := cached[`msoc_module_cache_stairs_total{result="hit"}`]; got == 0 {
		t.Error("near-duplicate plan produced no module staircase hits")
	}
	if got := cached[`msoc_module_cache_stair_entries`]; got == 0 {
		t.Error("stair entries gauge still 0 after two plans")
	}
	if got := cached[`msoc_module_cache_digital_jobs_total{result="miss"}`]; got == 0 {
		t.Error("digital-jobs cache never built a job slice")
	}

	// One batch: two foldable items, one invalid. The per-item outcome
	// counters and the endpoint's own request series must both move.
	batch := BatchRequest{Items: []PlanRequest{{Width: 32}, {Width: 32}, {Width: 0}}}
	if status, body := post(t, ts, "/v1/batch", batch); status != http.StatusOK {
		t.Fatalf("batch: status %d: %s", status, body)
	}
	after := scrape(t, ts)
	if got := after[`msoc_batch_items_total{result="ok"}`]; got != 2 {
		t.Errorf("batch ok items = %v, want 2", got)
	}
	if got := after[`msoc_batch_items_total{result="deduped"}`]; got != 1 {
		t.Errorf("batch deduped items = %v, want 1", got)
	}
	if got := after[`msoc_batch_items_total{result="error"}`]; got != 1 {
		t.Errorf("batch error items = %v, want 1", got)
	}
	if got := after[`msoc_http_requests_total{endpoint="/v1/batch",code="200"}`]; got != 1 {
		t.Errorf("http_requests_total{/v1/batch,200} = %v, want 1", got)
	}
}

// A coordinator's scrape must carry one shards series per configured
// worker even before any sweep ran, so scrapers see the topology.
func TestMetricsListsConfiguredWorkers(t *testing.T) {
	s := New(Options{WorkerURLs: []string{"http://worker-a:8093/", "http://worker-b:8093"}})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	series := scrape(t, ts)
	for _, w := range []string{"http://worker-a:8093", "http://worker-b:8093"} {
		key := fmt.Sprintf(`msoc_worker_shards_total{result="ok",worker=%q}`, w)
		if _, ok := series[key]; !ok {
			t.Errorf("scrape missing %s", key)
		}
	}
}

// Fleet metrics under dynamic membership: admitting a worker makes its
// series appear, eviction moves the state gauge without rewinding any
// counter, and removal drops the live gauges while every counter the
// worker ever incremented stays on the scrape.
func TestMetricsTrackDynamicMembership(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	worker := newWorker(t)
	s, ts := newTestServer(t)

	// Standalone server: no fleet series at all.
	before := scrape(t, ts)
	for key := range before {
		if strings.HasPrefix(key, "msoc_worker_") || strings.HasPrefix(key, "msoc_fleet_") {
			t.Errorf("standalone scrape already has fleet series %s", key)
		}
	}

	// Admission via the API makes the worker's series appear.
	if status, body := post(t, ts, "/v1/workers", WorkersUpdateRequest{Add: []string{worker.URL}}); status != http.StatusOK {
		t.Fatalf("admit: status %d: %s", status, body)
	}
	admitted := scrape(t, ts)
	stateKey := fmt.Sprintf(`msoc_worker_state{worker=%q}`, worker.URL)
	capKey := fmt.Sprintf(`msoc_worker_capacity{worker=%q}`, worker.URL)
	okKey := fmt.Sprintf(`msoc_worker_shards_total{result="ok",worker=%q}`, worker.URL)
	if got := admitted[stateKey]; got != 1 {
		t.Fatalf("state gauge after admission = %v, want 1 (healthy)", got)
	}
	if got := admitted[capKey]; got < 1 {
		t.Errorf("capacity gauge after admission = %v, want >= 1", got)
	}
	if _, ok := admitted[okKey]; !ok {
		t.Errorf("shards counter not pre-registered for admitted worker")
	}
	if got := admitted[`msoc_fleet_workers{state="healthy"}`]; got != 1 {
		t.Errorf("fleet_workers{healthy} = %v, want 1", got)
	}

	// A sweep through the new member moves its shard counter.
	if status, body := post(t, ts, "/v1/sweep", SweepRequest{Widths: []int{32}, WTs: []float64{0.5}}); status != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", status, body)
	}
	sweep := scrape(t, ts)
	shardsOK := sweep[okKey]
	if shardsOK < 1 {
		t.Fatalf("shards{ok} = %v after a distributed sweep, want >= 1", shardsOK)
	}

	// Eviction (threshold consecutive failures) flips the gauges but
	// must not rewind a single counter.
	for i := 0; i < 3; i++ {
		s.fleet.reportFailure(worker.URL, "induced for test")
	}
	evicted := scrape(t, ts)
	if got := evicted[stateKey]; got != 3 {
		t.Fatalf("state gauge after eviction = %v, want 3 (evicted)", got)
	}
	if got := evicted[`msoc_fleet_workers{state="evicted"}`]; got != 1 {
		t.Errorf("fleet_workers{evicted} = %v, want 1", got)
	}
	if got := evicted[okKey]; got != shardsOK {
		t.Fatalf("shards{ok} rewound across eviction: %v -> %v", shardsOK, got)
	}
	suspectKey := fmt.Sprintf(`msoc_worker_transitions_total{to="suspect",worker=%q}`, worker.URL)
	evictedKey := fmt.Sprintf(`msoc_worker_transitions_total{to="evicted",worker=%q}`, worker.URL)
	if evicted[suspectKey] != 1 || evicted[evictedKey] != 1 {
		t.Errorf("transitions = {suspect: %v, evicted: %v}, want 1 each",
			evicted[suspectKey], evicted[evictedKey])
	}

	// Removal drops the live gauges; the history counters stay.
	if status, body := post(t, ts, "/v1/workers", WorkersUpdateRequest{Remove: []string{worker.URL}}); status != http.StatusOK {
		t.Fatalf("remove: status %d: %s", status, body)
	}
	removed := scrape(t, ts)
	if _, ok := removed[stateKey]; ok {
		t.Errorf("state gauge survives removal")
	}
	if _, ok := removed[capKey]; ok {
		t.Errorf("capacity gauge survives removal")
	}
	if got := removed[okKey]; got != shardsOK {
		t.Errorf("shards{ok} after removal = %v, want %v (counters never rewind)", got, shardsOK)
	}
	if removed[suspectKey] != 1 || removed[evictedKey] != 1 {
		t.Errorf("transition counters lost on removal: {suspect: %v, evicted: %v}",
			removed[suspectKey], removed[evictedKey])
	}
}
