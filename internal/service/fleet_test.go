package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// get performs a GET against the test server, returning status and
// body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// newTestFleet builds an unprobed fleet with fast, deterministic
// settings for direct state-machine tests.
func newTestFleet(t *testing.T, opts Options) *fleet {
	t.Helper()
	f := newFleet(opts, newMetricsRegistry(1), &http.Client{Transport: newFleetTransport()}, t.Logf)
	t.Cleanup(f.close)
	return f
}

// states maps each member URL to its current lifecycle state.
func states(f *fleet) map[string]string {
	out := map[string]string{}
	for _, w := range f.snapshot() {
		out[w.URL] = w.State
	}
	return out
}

// The core lifecycle: first failure marks a worker suspect, the
// threshold evicts it, and any success re-admits it to healthy with its
// failure count reset.
func TestFleetStateMachine(t *testing.T) {
	f := newTestFleet(t, Options{
		WorkerURLs:            []string{"http://a", "http://b"},
		ProbeFailureThreshold: 3,
	})

	f.reportFailure("http://a", "probe: connection refused")
	if got := states(f); got["http://a"] != WorkerSuspect || got["http://b"] != WorkerHealthy {
		t.Fatalf("after one failure: %v", got)
	}
	f.reportFailure("http://a", "probe: connection refused")
	if got := states(f); got["http://a"] != WorkerSuspect {
		t.Fatalf("below threshold, want suspect: %v", got)
	}
	f.reportFailure("http://a", "probe: connection refused")
	if got := states(f); got["http://a"] != WorkerEvicted {
		t.Fatalf("at threshold, want evicted: %v", got)
	}

	f.reportSuccess("http://a", 8)
	snap := f.snapshot()
	if snap[0].State != WorkerHealthy || snap[0].ConsecutiveFailures != 0 {
		t.Fatalf("after success, want healthy with failures reset: %+v", snap[0])
	}
	if snap[0].Capacity != 8 {
		t.Fatalf("success must adopt the advertised capacity, got %d", snap[0].Capacity)
	}
	if snap[0].LastOK == "" || snap[0].LastError != "" {
		t.Fatalf("re-admitted worker should carry last_ok and no last_error: %+v", snap[0])
	}
}

// A worker that goes healthy -> suspect -> evicted in one burst (the
// threshold-1 fallthrough) with threshold 1 must evict immediately.
func TestFleetThresholdOneEvictsOnFirstFailure(t *testing.T) {
	f := newTestFleet(t, Options{WorkerURLs: []string{"http://a"}, ProbeFailureThreshold: 1})
	f.reportFailure("http://a", "boom")
	if got := states(f); got["http://a"] != WorkerEvicted {
		t.Fatalf("threshold 1, want immediate eviction: %v", got)
	}
}

// An evicted worker's re-probe backoff starts at ReadmitBackoff and
// doubles per further failure, capped; a success clears it.
func TestFleetReadmitBackoffDoubles(t *testing.T) {
	base := 10 * time.Second
	f := newTestFleet(t, Options{
		WorkerURLs:            []string{"http://a"},
		ProbeFailureThreshold: 1,
		ReadmitBackoff:        base,
	})
	now := time.Unix(1000, 0)
	f.now = func() time.Time { return now }

	f.reportFailure("http://a", "down") // evicts; backoff = base
	w := func() fleetWorker {
		f.mu.Lock()
		defer f.mu.Unlock()
		return *f.workers["http://a"]
	}
	if got := w(); got.backoff != base || !got.next.Equal(now.Add(base)) {
		t.Fatalf("after eviction: backoff %v next %v, want %v / %v", got.backoff, got.next, base, now.Add(base))
	}
	for i, want := range []time.Duration{2 * base, 4 * base, 8 * base} {
		f.reportFailure("http://a", "still down")
		if got := w(); got.backoff != want {
			t.Fatalf("re-probe failure %d: backoff %v, want %v", i+1, got.backoff, want)
		}
	}
	// The cap holds no matter how long the outage.
	for i := 0; i < 20; i++ {
		f.reportFailure("http://a", "still down")
	}
	if got, cap := w().backoff, base*(1<<readmitBackoffCap); got > 2*cap {
		t.Fatalf("backoff %v blew past the cap %v", got, cap)
	}
	f.reportSuccess("http://a", 0)
	if got := w(); got.backoff != 0 || !got.next.IsZero() {
		t.Fatalf("success must clear the backoff: %+v", got)
	}
}

// Shard homes are apportioned by advertised capacity: a worker with 3x
// the budget gets 3x the shards, and the shard count is min(cells,
// total capacity).
func TestFleetAssignCapacityWeighted(t *testing.T) {
	f := newTestFleet(t, Options{WorkerURLs: []string{"http://big", "http://small"}})
	f.reportSuccess("http://big", 3)
	f.reportSuccess("http://small", 1)

	homes, ok := f.assign(8)
	if !ok {
		t.Fatal("assign reported an empty fleet")
	}
	want := []string{"http://big", "http://big", "http://big", "http://small"}
	if !reflect.DeepEqual(homes, want) {
		t.Fatalf("homes = %v, want %v", homes, want)
	}

	// Fewer cells than total capacity: one shard per cell.
	homes, _ = f.assign(2)
	if len(homes) != 2 {
		t.Fatalf("2-cell sweep got %d shards", len(homes))
	}

	// Unprobed capacities default to 1 each: one shard per worker.
	g := newTestFleet(t, Options{WorkerURLs: []string{"http://a", "http://b"}})
	homes, _ = g.assign(6)
	if !reflect.DeepEqual(homes, []string{"http://a", "http://b"}) {
		t.Fatalf("default-capacity homes = %v", homes)
	}
}

// Assignment draws only from healthy workers while any exist, degrades
// to suspects, and only as a last resort homes shards on evicted
// workers; an empty fleet yields ok=false.
func TestFleetAssignPrefersHealthy(t *testing.T) {
	f := newTestFleet(t, Options{
		WorkerURLs:            []string{"http://a", "http://b", "http://c"},
		ProbeFailureThreshold: 2,
	})
	f.reportFailure("http://a", "flaky") // suspect
	homes, _ := f.assign(4)
	for _, h := range homes {
		if h == "http://a" {
			t.Fatalf("suspect worker got a home while healthy ones exist: %v", homes)
		}
	}

	f.reportFailure("http://b", "down")
	f.reportFailure("http://b", "down") // evicted
	f.reportFailure("http://c", "down")
	f.reportFailure("http://c", "down") // evicted
	homes, _ = f.assign(2)
	for _, h := range homes {
		if h != "http://a" {
			t.Fatalf("suspect should beat evicted: %v", homes)
		}
	}

	empty := newTestFleet(t, Options{})
	if _, ok := empty.assign(4); ok {
		t.Fatal("empty fleet must report ok=false")
	}
}

// Retry candidates rotate from the home worker, prefer healthier
// states, never repeat a tried worker, and see mid-sweep hot-adds.
func TestFleetNextWorker(t *testing.T) {
	f := newTestFleet(t, Options{
		WorkerURLs:            []string{"http://a", "http://b", "http://c"},
		ProbeFailureThreshold: 2,
	})
	tried := map[string]bool{}
	if w := f.nextWorker("http://b", tried); w != "http://b" {
		t.Fatalf("first attempt should be the home worker, got %q", w)
	}
	tried["http://b"] = true
	if w := f.nextWorker("http://b", tried); w != "http://c" {
		t.Fatalf("retry should rotate to the next worker, got %q", w)
	}
	// A suspect worker loses its turn to a healthy one later in the
	// rotation.
	f.reportFailure("http://c", "slow")
	if w := f.nextWorker("http://b", tried); w != "http://a" {
		t.Fatalf("healthy a should beat suspect c, got %q", w)
	}
	tried["http://a"] = true
	if w := f.nextWorker("http://b", tried); w != "http://c" {
		t.Fatalf("suspect c is the only one left, got %q", w)
	}
	tried["http://c"] = true
	if w := f.nextWorker("http://b", tried); w != "" {
		t.Fatalf("everyone tried, want \"\", got %q", w)
	}
	// A worker hot-added mid-sweep becomes a retry candidate.
	if err := f.update([]string{"http://late"}, nil); err != nil {
		t.Fatal(err)
	}
	if w := f.nextWorker("http://b", tried); w != "http://late" {
		t.Fatalf("hot-added worker should be picked up, got %q", w)
	}
}

// Probes drive the full lifecycle against real HTTP endpoints: capacity
// is read from /healthz, failures evict, the eviction backoff gates
// re-probes, and recovery re-admits.
func TestFleetProbeLifecycle(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		if !healthy.Load() {
			http.Error(w, "sick", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(HealthResponse{OK: true, Capacity: 7})
	}))
	t.Cleanup(worker.Close)

	f := newTestFleet(t, Options{
		WorkerURLs:            []string{worker.URL},
		ProbeFailureThreshold: 2,
		ProbeTimeout:          2 * time.Second,
		ReadmitBackoff:        time.Hour, // gates re-probes until we move the clock
	})
	now := time.Unix(5000, 0)
	f.now = func() time.Time { return now }

	f.probeDue(context.Background())
	snap := f.snapshot()
	if snap[0].State != WorkerHealthy || snap[0].Capacity != 7 {
		t.Fatalf("after healthy probe: %+v", snap[0])
	}

	healthy.Store(false)
	f.probeDue(context.Background())
	f.probeDue(context.Background())
	if got := states(f); got[worker.URL] != WorkerEvicted {
		t.Fatalf("two failed probes at threshold 2, want evicted: %v", got)
	}

	// Within the backoff window the evicted worker is not re-probed,
	// even though it has recovered.
	healthy.Store(true)
	f.probeDue(context.Background())
	if got := states(f); got[worker.URL] != WorkerEvicted {
		t.Fatalf("re-probe before the backoff expired: %v", got)
	}

	// Past the backoff the probe runs and re-admits.
	now = now.Add(2 * time.Hour)
	f.probeDue(context.Background())
	if got := states(f); got[worker.URL] != WorkerHealthy {
		t.Fatalf("recovered worker not re-admitted: %v", got)
	}
}

// A plain 200 from a non-msoc health endpoint still counts as alive
// (capacity 1), and ok=false in the body counts as a failure.
func TestFleetProbeForeignAndUnhealthyBodies(t *testing.T) {
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("OK"))
	}))
	t.Cleanup(plain.Close)
	sick := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(HealthResponse{OK: false})
	}))
	t.Cleanup(sick.Close)

	f := newTestFleet(t, Options{WorkerURLs: []string{plain.URL, sick.URL}})
	f.probeDue(context.Background())
	got := states(f)
	if got[plain.URL] != WorkerHealthy {
		t.Errorf("plain-200 endpoint: %v, want healthy", got[plain.URL])
	}
	if got[sick.URL] != WorkerSuspect {
		t.Errorf("ok=false endpoint: %v, want suspect", got[sick.URL])
	}
}

// The watched worker file is authoritative for file-sourced members:
// a rewrite admits new URLs and drops vanished ones, while static and
// API workers survive.
func TestFleetWorkerFileWatch(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "workers.txt")
	write := func(content string) {
		t.Helper()
		if err := os.WriteFile(file, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("# fleet\nhttp://file-a:1\nhttp://file-b:1\n")

	f := newTestFleet(t, Options{
		WorkerURLs: []string{"http://static:1"},
		WorkerFile: file,
	})
	if err := f.update([]string{"http://api:1"}, nil); err != nil {
		t.Fatal(err)
	}
	got := states(f)
	for _, u := range []string{"http://static:1", "http://file-a:1", "http://file-b:1", "http://api:1"} {
		if got[u] != WorkerHealthy {
			t.Fatalf("missing member %s: %v", u, got)
		}
	}

	// Drop file-b, add file-c; everyone else must survive.
	write("http://file-a:1\nhttp://file-c:1\nnot a url\n")
	f.syncFile()
	got = states(f)
	if _, ok := got["http://file-b:1"]; ok {
		t.Error("file-b survived being dropped from the file")
	}
	for _, u := range []string{"http://static:1", "http://file-a:1", "http://file-c:1", "http://api:1"} {
		if _, ok := got[u]; !ok {
			t.Errorf("member %s lost on file rewrite: %v", u, got)
		}
	}

	// An unchanged file is a no-op (content signature short-circuit).
	before := len(f.snapshot())
	f.syncFile()
	if after := len(f.snapshot()); after != before {
		t.Errorf("no-op re-read changed membership %d -> %d", before, after)
	}
}

// Membership updates validate URLs and normalize trailing slashes;
// removal accepts the denormalized spelling.
func TestFleetUpdateValidation(t *testing.T) {
	f := newTestFleet(t, Options{})
	for _, bad := range []string{"", "   ", "not-a-url", "ftp://x", "http://"} {
		if err := f.update([]string{bad}, nil); err == nil {
			t.Errorf("update accepted bad url %q", bad)
		}
	}
	if err := f.update([]string{"http://w:1/"}, nil); err != nil {
		t.Fatal(err)
	}
	if got := states(f); got["http://w:1"] != WorkerHealthy {
		t.Fatalf("normalized add missing: %v", got)
	}
	if err := f.update(nil, []string{"http://w:1/"}); err != nil {
		t.Fatal(err)
	}
	if f.hasWorkers() {
		t.Fatal("remove with trailing slash did not match the member")
	}
}

// The fleet's shared HTTP transport must be tuned for sweep fan-out:
// connection reuse per worker at least the shard fan-out, and bounded
// dial waits — not net/http's zero-value client.
func TestFleetTransportTuned(t *testing.T) {
	tr := newFleetTransport()
	if tr.MaxIdleConnsPerHost < 16 {
		t.Errorf("MaxIdleConnsPerHost = %d, want >= 16 (shard fan-out reuses connections)", tr.MaxIdleConnsPerHost)
	}
	if tr.MaxIdleConns < tr.MaxIdleConnsPerHost {
		t.Errorf("MaxIdleConns = %d < per-host %d", tr.MaxIdleConns, tr.MaxIdleConnsPerHost)
	}
	if tr.TLSHandshakeTimeout <= 0 {
		t.Error("TLS handshake timeout unbounded")
	}
	if tr.IdleConnTimeout <= 0 {
		t.Error("idle connections never expire")
	}
	s := New(Options{})
	t.Cleanup(s.Close)
	if _, ok := s.coord.client.Transport.(*http.Transport); !ok {
		t.Error("coordinator client does not use the tuned transport")
	}
	if s.coord.client.Transport != s.fleet.client.Transport {
		t.Error("coordinator and fleet probes do not share one transport")
	}
}

// Server.Close must stop the probe loop: after Close returns no further
// probes hit the worker.
func TestServerCloseStopsProbes(t *testing.T) {
	var probes atomic.Int64
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		json.NewEncoder(w).Encode(HealthResponse{OK: true, Capacity: 1})
	}))
	t.Cleanup(worker.Close)

	s := New(Options{
		WorkerURLs:    []string{worker.URL},
		ProbeInterval: 10 * time.Millisecond,
	})
	deadline := time.Now().Add(5 * time.Second)
	for probes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if probes.Load() == 0 {
		t.Fatal("probe loop never probed the worker")
	}
	s.Close()
	after := probes.Load()
	time.Sleep(100 * time.Millisecond)
	if got := probes.Load(); got != after {
		t.Fatalf("probes kept arriving after Close: %d -> %d", after, got)
	}
	s.Close() // idempotent
}

// The /v1/workers endpoints: GET lists the fleet, POST add/remove
// mutates it (returning the new state), and validation failures are
// 400s.
func TestWorkersEndpoints(t *testing.T) {
	_, ts := newTestServer(t)

	status, body := get(t, ts, "/v1/workers")
	if status != http.StatusOK || !strings.Contains(string(body), `"workers": []`) {
		t.Fatalf("empty fleet: status %d body %s", status, body)
	}

	status, body = post(t, ts, "/v1/workers", WorkersUpdateRequest{Add: []string{"http://w1:8093", "http://w2:8093"}})
	if status != http.StatusOK {
		t.Fatalf("add: status %d: %s", status, body)
	}
	var resp WorkersResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Workers) != 2 || resp.Workers[0].URL != "http://w1:8093" || resp.Workers[0].Source != WorkerSourceAPI {
		t.Fatalf("add response: %s", body)
	}

	status, body = post(t, ts, "/v1/workers", WorkersUpdateRequest{Remove: []string{"http://w1:8093"}})
	if status != http.StatusOK {
		t.Fatalf("remove: status %d: %s", status, body)
	}
	resp = WorkersResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Workers) != 1 || resp.Workers[0].URL != "http://w2:8093" {
		t.Fatalf("remove response: %s", body)
	}

	if status, _ = post(t, ts, "/v1/workers", WorkersUpdateRequest{}); status != http.StatusBadRequest {
		t.Errorf("empty update: status %d, want 400", status)
	}
	if status, _ = post(t, ts, "/v1/workers", WorkersUpdateRequest{Add: []string{"nope"}}); status != http.StatusBadRequest {
		t.Errorf("bad url: status %d, want 400", status)
	}
}

// /healthz advertises the server's planning capacity for the fleet's
// capacity-weighted assignment.
func TestHealthzAdvertisesCapacity(t *testing.T) {
	s := New(Options{Workers: 6, MaxConcurrent: 2})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	status, body := get(t, ts, "/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Capacity != 6 || h.MaxConcurrent != 2 {
		t.Fatalf("healthz = %+v, want ok capacity=6 max_concurrent=2", h)
	}
}
