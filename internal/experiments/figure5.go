package experiments

import (
	"fmt"
	"strings"

	"mixsoc/internal/dsp"
	"mixsoc/internal/wrapsim"
)

// Figure5 runs the Section 5 wrapper-accuracy experiment with the
// paper's parameters (three-tone stimulus, 4551 samples at
// 50 MHz / 29 ≈ 1.7 MHz, 8-bit wrapper on a 4 V supply).
func Figure5() (*wrapsim.CutoffResult, error) {
	return wrapsim.PaperCutoffExperiment().Run()
}

// RenderFigure5 formats the experiment result: the three spectra of
// Figure 5 as ASCII plots plus the extracted cut-off frequencies.
func RenderFigure5(res *wrapsim.CutoffResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: cut-off frequency test of core A, direct vs wrapped\n\n")
	fmt.Fprintf(&sb, "sample rate %.4g MHz, %d TAM cycles, true fc %.0f kHz\n\n",
		res.SampleRate/1e6, res.TestCycles, res.TrueFc/1e3)

	sb.WriteString("(a) applied analog test |LPF i/p|\n")
	sb.WriteString(RenderSpectrum(res.StimulusSpectrum, 250e3, 64, 12))
	sb.WriteString("\n(b) analog response |LPF o/p|\n")
	sb.WriteString(RenderSpectrum(res.DirectSpectrum, 250e3, 64, 12))
	sb.WriteString("\n(c) wrapped response |Wrapper o/p|\n")
	sb.WriteString(RenderSpectrum(res.WrappedSpectrum, 250e3, 64, 12))

	sb.WriteString("\nper-tone gains (direct vs wrapped):\n")
	for i := range res.DirectGains {
		d, w := res.DirectGains[i], res.WrappedGains[i]
		fmt.Fprintf(&sb, "  %6.0f kHz: %7.4f vs %7.4f (%+.2f%%)\n",
			d.Freq/1e3, d.Gain, w.Gain, 100*(w.Gain-d.Gain)/d.Gain)
	}
	fmt.Fprintf(&sb, "\nextracted fc: direct %.2f kHz, wrapped %.2f kHz -> error %.2f%%\n",
		res.DirectFc/1e3, res.WrappedFc/1e3, res.ErrorPercent)
	sb.WriteString("(paper: fc=61 kHz direct vs 58 kHz wrapped, error ~5%)\n")
	return sb.String()
}

// RenderSpectrum draws a single-sided spectrum as an ASCII plot up to
// maxFreq, with the given plot width and height. The vertical axis is
// amplitude in dB (auto-scaled to the data, floored 70 dB below the
// peak).
func RenderSpectrum(s *dsp.Spectrum, maxFreq float64, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	// Bucket bins into columns, keeping the max dB per column.
	cols := make([]float64, width)
	for i := range cols {
		cols[i] = -999
	}
	top := -999.0
	for k, f := range s.Freq {
		if f > maxFreq {
			break
		}
		c := int(f / maxFreq * float64(width-1))
		db := s.MagDB(k)
		if db > cols[c] {
			cols[c] = db
		}
		if db > top {
			top = db
		}
	}
	if top == -999 {
		return "(no data below maxFreq)\n"
	}
	var sb strings.Builder
	for row := 0; row < height; row++ {
		level := top - float64(row)/float64(height-1)*70
		label := "      "
		if row == 0 || row == height-1 || row == (height-1)/2 {
			label = fmt.Sprintf("%5.0f ", level)
		}
		sb.WriteString(label)
		sb.WriteByte('|')
		for c := 0; c < width; c++ {
			if cols[c] >= level {
				sb.WriteByte('#')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteString("\n")
	}
	sb.WriteString("  dB  +")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "       0%skHz %.0f\n", strings.Repeat(" ", width-8), maxFreq/1e3)
	return sb.String()
}

// Figure5CSV renders the three spectra as CSV (freq_hz, stimulus_db,
// direct_db, wrapped_db) up to maxFreq, for external plotting.
func Figure5CSV(res *wrapsim.CutoffResult, maxFreq float64) string {
	var sb strings.Builder
	sb.WriteString("freq_hz,stimulus_db,direct_db,wrapped_db\n")
	for k, f := range res.StimulusSpectrum.Freq {
		if f > maxFreq {
			break
		}
		fmt.Fprintf(&sb, "%.1f,%.2f,%.2f,%.2f\n",
			f, res.StimulusSpectrum.MagDB(k), res.DirectSpectrum.MagDB(k), res.WrappedSpectrum.MagDB(k))
	}
	return sb.String()
}
