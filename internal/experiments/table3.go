package experiments

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/partition"
	"mixsoc/internal/wrapper"
)

// Table3Row is one sharing combination evaluated at every width.
type Table3Row struct {
	Wrappers int
	Label    string
	CT       []float64 // normalized test time per width, aligned with widths
}

// Table3Result is the full table plus the spread statistics the paper
// quotes ("the difference between the lowest and the highest test
// times ... are 2.45, 7.36, and 17.18").
type Table3Result struct {
	Widths []int
	Rows   []Table3Row
	Spread []float64 // max-min CT per width
	Lowest []string  // label of the lowest-CT combination per width
}

// Table3 runs the TAM optimizer for every candidate combination at every
// width and normalizes test times to the all-share case per width. The
// width columns are independent, so they are generated concurrently —
// and within each column the combination schedules are prefetched across
// the worker pool — with results merged by index, making the table
// identical to a sequential run. All columns share one wrapper
// staircase cache: each digital module's staircase is designed once at
// the widest column and served to the narrower ones as a prefix.
func Table3(d *core.Design, widths []int) (*Table3Result, error) {
	return Table3Context(context.Background(), d, widths)
}

// Table3Context is Table3 under a context: once ctx fires no further
// width column is dispatched, the in-flight TAM packings abort at their
// next cancellation point, and the call returns ctx.Err().
func Table3Context(ctx context.Context, d *core.Design, widths []int) (*Table3Result, error) {
	if d == nil {
		d = Design()
	}
	if len(widths) == 0 {
		widths = Table3Widths
	}
	names := d.AnalogNames()
	combos := d.Candidates(partition.PaperPolicy)
	stairs := wrapper.NewStaircaseCache(slices.Max(widths))

	res := &Table3Result{Widths: widths}
	rows := make([]Table3Row, len(combos))
	for i, p := range combos {
		rows[i] = Table3Row{Wrappers: p.Wrappers(), Label: p.FormatShared(names), CT: make([]float64, len(widths))}
	}

	res.Spread = make([]float64, len(widths))
	res.Lowest = make([]string, len(widths))
	errs := make([]error, len(widths))
	outer, inner := core.SplitWorkers(core.DefaultWorkers(), len(widths))
	if err := core.ForEachCtx(ctx, len(widths), outer, func(wi int) {
		w := widths[wi]
		ev := core.NewEvaluator(d, w)
		ev.Staircases = stairs
		if inner > 1 {
			allShareP := d.AllShare()
			core.ForEachCtx(ctx, len(combos)+1, inner, func(i int) {
				if i == 0 {
					ev.PrefetchContext(ctx, allShareP)
					return
				}
				ev.PrefetchContext(ctx, combos[i-1])
			})
		}
		allShare, err := ev.TestTimeContext(ctx, d.AllShare())
		if err != nil {
			errs[wi] = err
			return
		}
		low, high := -1.0, -1.0
		for i, p := range combos {
			t, err := ev.TestTimeContext(ctx, p)
			if err != nil {
				errs[wi] = err
				return
			}
			ct := 100 * float64(t) / float64(allShare)
			rows[i].CT[wi] = ct
			if low < 0 || ct < low {
				low = ct
				res.Lowest[wi] = rows[i].Label
			}
			if ct > high {
				high = ct
			}
		}
		res.Spread[wi] = high - low
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Wrappers != rows[b].Wrappers {
			return rows[a].Wrappers > rows[b].Wrappers
		}
		return rows[a].Label < rows[b].Label
	})
	res.Rows = rows
	return res, nil
}

// RenderTable3 formats the result like the paper's Table 3.
func RenderTable3(r *Table3Result) string {
	var sb strings.Builder
	sb.WriteString("Table 3: normalized SOC test time CT per wrapper-sharing combination\n")
	sb.WriteString("(100 = all analog cores share one wrapper)\n\n")
	fmt.Fprintf(&sb, "%-3s  %-22s", "Nw", "sharing")
	for _, w := range r.Widths {
		fmt.Fprintf(&sb, "  %8s", fmt.Sprintf("W=%d", w))
	}
	sb.WriteByte('\n')
	prev := -1
	for _, row := range r.Rows {
		nw := ""
		if row.Wrappers != prev {
			nw = fmt.Sprintf("%d", row.Wrappers)
			prev = row.Wrappers
		}
		fmt.Fprintf(&sb, "%-3s  %-22s", nw, row.Label)
		for _, ct := range row.CT {
			fmt.Fprintf(&sb, "  %8.1f", ct)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("\nspread (max-min)       ")
	for _, s := range r.Spread {
		fmt.Fprintf(&sb, "  %8.2f", s)
	}
	sb.WriteString("\nlowest combination     ")
	for _, l := range r.Lowest {
		fmt.Fprintf(&sb, "  %s", l)
	}
	sb.WriteString("\n(paper spreads: 2.45, 7.36, 17.18 for W=32,48,64)\n")
	return sb.String()
}

// AnalogOnlyLowerBounds recomputes, for reference, the Table 1 LTB in
// cycles for a combination — used by the CLI to cross-link tables.
func AnalogOnlyLowerBounds(d *core.Design, p partition.Partition) (int64, error) {
	return analog.LowerBoundCycles(d.Analog, p)
}
