package experiments

// The sharded grid runner: the paper's evaluation is a grid of
// independent cells (Table 3 width columns, Table 4 (width, weights)
// points, width-curve samples), so the grid can be split across
// machines and the partial results recombined. Every cell has a stable
// CellID, RunShard computes a deterministic round-robin slice of the
// grid, and Merge reassembles the exact full-grid tables — bit-identical
// to an unsharded run, a property golden_test.go enforces through a
// JSON round trip. cmd/msoc-bench exposes the runner as -shard N/M and
// -merge; CI runs a 2-way sharded grid as a matrix job.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"

	"mixsoc/internal/core"
)

// The experiment families a grid cell can belong to.
const (
	// GridTable3 cells are Table 3 width columns: all 26 sharing
	// combinations evaluated and normalized at one TAM width.
	GridTable3 = "table3"
	// GridTable4 cells are Table 4 points: exhaustive vs Cost_Optimizer
	// at one (width, weights) coordinate.
	GridTable4 = "table4"
	// GridCurve cells are width-curve samples: the all-share SOC test
	// time (the CT normalization configuration) at one TAM width.
	GridCurve = "widthcurve"
)

// CellID stably identifies one grid cell across processes and machines,
// e.g. "table3/W=32", "table4/W=40/wT=0.25", "widthcurve/W=56". IDs
// depend only on the cell's coordinates, never on shard geometry, so
// independently launched shards of the same Grid agree on them without
// coordination.
type CellID string

// Cell is one independently computable unit of the experiment grid.
type Cell struct {
	ID      CellID
	Table   string // GridTable3, GridTable4 or GridCurve
	Width   int
	Weights core.Weights // meaningful for GridTable4 cells only
}

func table3CellID(w int) CellID {
	return CellID(fmt.Sprintf("%s/W=%d", GridTable3, w))
}

func table4CellID(w int, wt core.Weights) CellID {
	return CellID(fmt.Sprintf("%s/W=%d/wT=%v", GridTable4, w, wt.Time))
}

func curveCellID(w int) CellID {
	return CellID(fmt.Sprintf("%s/W=%d", GridCurve, w))
}

// Grid declares an experiment grid: which Table 3 columns, Table 4
// points and width-curve samples to compute. The zero value is an empty
// grid; PaperGrid is the full paper evaluation.
type Grid struct {
	Table3Widths  []int          `json:"table3_widths,omitempty"`
	Table4Widths  []int          `json:"table4_widths,omitempty"`
	Table4Weights []core.Weights `json:"table4_weights,omitempty"`
	CurveWidths   []int          `json:"curve_widths,omitempty"`
}

// PaperGrid returns the full evaluation grid of the paper: Table 3 at
// W = 32/48/64, Table 4 over the five widths and three weight settings,
// and the all-share width curve over the Table 4 widths.
func PaperGrid() Grid {
	return Grid{
		Table3Widths:  slices.Clone(Table3Widths),
		Table4Widths:  slices.Clone(PaperWidths),
		Table4Weights: slices.Clone(PaperWeightSettings),
		CurveWidths:   slices.Clone(PaperWidths),
	}
}

// Table4Grid returns a grid holding only the Table 4 point set — what
// CI shards across its matrix job.
func Table4Grid() Grid {
	return Grid{
		Table4Widths:  slices.Clone(PaperWidths),
		Table4Weights: slices.Clone(PaperWeightSettings),
	}
}

// Cells enumerates every cell of the grid in canonical order: Table 3
// columns, then Table 4 points weights-major, then curve samples. Shard
// partitions this order, so it is part of the cross-machine contract —
// but CellIDs, not positions, are the durable names.
func (g Grid) Cells() []Cell {
	cells := make([]Cell, 0, len(g.Table3Widths)+len(g.Table4Widths)*len(g.Table4Weights)+len(g.CurveWidths))
	for _, w := range g.Table3Widths {
		cells = append(cells, Cell{ID: table3CellID(w), Table: GridTable3, Width: w})
	}
	for _, wt := range g.Table4Weights {
		for _, w := range g.Table4Widths {
			cells = append(cells, Cell{ID: table4CellID(w, wt), Table: GridTable4, Width: w, Weights: wt})
		}
	}
	for _, w := range g.CurveWidths {
		cells = append(cells, Cell{ID: curveCellID(w), Table: GridCurve, Width: w})
	}
	return cells
}

// Validate rejects grids whose cells are not uniquely addressable
// (duplicate coordinates), a Table 4 axis declared without the other,
// or an empty grid.
func (g Grid) Validate() error {
	if (len(g.Table4Widths) == 0) != (len(g.Table4Weights) == 0) {
		return fmt.Errorf("experiments: grid declares Table 4 %s without %s",
			axisName(len(g.Table4Widths) > 0), axisName(len(g.Table4Weights) > 0))
	}
	cells := g.Cells()
	if len(cells) == 0 {
		return fmt.Errorf("experiments: empty grid")
	}
	seen := make(map[CellID]bool, len(cells))
	for _, c := range cells {
		if seen[c.ID] {
			return fmt.Errorf("experiments: duplicate grid cell %s", c.ID)
		}
		seen[c.ID] = true
	}
	return nil
}

func axisName(widths bool) string {
	if widths {
		return "widths"
	}
	return "weight settings"
}

// Equal reports whether two grids declare the same cells in the same
// order — the compatibility check Merge applies to its parts.
func (g Grid) Equal(o Grid) bool {
	return slices.Equal(g.Table3Widths, o.Table3Widths) &&
		slices.Equal(g.Table4Widths, o.Table4Widths) &&
		slices.Equal(g.Table4Weights, o.Table4Weights) &&
		slices.Equal(g.CurveWidths, o.CurveWidths)
}

// RoundRobin returns the item indices of shard `shard` in an `of`-way
// round-robin split of n items: shard, shard+of, shard+2·of, …. It is
// the one partition rule every distributed runner in this repository
// shares — Grid.Shard applies it to the experiment grid's canonical
// cell order, and the serving layer's sweep coordinator applies it to a
// request's weights-major (width, weights) cells — so a shard index
// names the same slice of work regardless of transport.
func RoundRobin(n, shard, of int) ([]int, error) {
	if of < 1 || shard < 0 || shard >= of {
		return nil, fmt.Errorf("experiments: shard %d/%d out of range (want 0 <= shard < of)", shard, of)
	}
	idx := make([]int, 0, (n+of-1)/of)
	for i := shard; i < n; i += of {
		idx = append(idx, i)
	}
	return idx, nil
}

// Shard returns the cells of shard index `shard` in an `of`-way split:
// a round-robin over Cells(), so the shards are near-equal in size,
// deterministic, and together cover every cell exactly once.
func (g Grid) Shard(shard, of int) ([]Cell, error) {
	all := g.Cells()
	idx, err := RoundRobin(len(all), shard, of)
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, 0, len(idx))
	for _, i := range idx {
		cells = append(cells, all[i])
	}
	return cells, nil
}

// CurveSample is one width-curve cell result: the all-share SOC test
// time at one TAM width.
type CurveSample struct {
	Width  int   `json:"width"`
	Cycles int64 `json:"cycles"`
}

// ShardResult is the partial output of RunShard: which cells were
// computed and their results. It marshals to JSON losslessly — Go
// prints a float64 in the shortest decimal form that parses back to the
// same bits — so partial results can travel between machines as files
// and still merge bit-identically (golden_test.go enforces the round
// trip through JSON).
type ShardResult struct {
	Shard int  `json:"shard"`
	Of    int  `json:"of"`
	Grid  Grid `json:"grid"`
	// DesignHash is the content hash (core.DesignHash) of the design
	// the shard was computed on; Merge refuses to combine parts whose
	// hashes disagree. Empty in files written before the field existed,
	// which Merge tolerates (no cross-check possible).
	DesignHash string   `json:"design_hash,omitempty"`
	CellIDs    []CellID `json:"cell_ids"`

	// Table3 holds the shard's Table 3 width columns (Widths is the
	// subset this shard owns); nil when the shard has no Table 3 cells.
	Table3 *Table3Result `json:"table3,omitempty"`
	// Table4 holds the shard's Table 4 cells in weights-major grid
	// order.
	Table4 []Table4Cell `json:"table4,omitempty"`
	// Curve holds the shard's width-curve samples.
	Curve []CurveSample `json:"curve,omitempty"`
}

// RunShard computes shard `shard` of an `of`-way split of grid g on
// design d (nil means the paper's benchmark SOC). Every cell's numbers
// are bit-identical to the same cell of an unsharded run: grid cells
// are mutually independent, caches only deduplicate deterministic work,
// and the staircase cache's prefix property makes the wrappers of a
// narrower sweep identical to those of a wider one.
func RunShard(d *core.Design, g Grid, shard, of int) (*ShardResult, error) {
	return RunShardContext(context.Background(), d, g, shard, of)
}

// RunShardContext is RunShard under a context: cancellation aborts the
// shard's cell computations at their next cancellation point and the
// call returns ctx.Err(); no partial ShardResult is emitted.
func RunShardContext(ctx context.Context, d *core.Design, g Grid, shard, of int) (*ShardResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cells, err := g.Shard(shard, of)
	if err != nil {
		return nil, err
	}
	if d == nil {
		d = Design()
	}
	hash, err := core.DesignHash(d)
	if err != nil {
		return nil, err
	}

	res := &ShardResult{Shard: shard, Of: of, Grid: g, DesignHash: hash, CellIDs: make([]CellID, 0, len(cells))}
	var t3Widths, curveWidths []int
	t4Cells := make(map[CellID]bool)
	for _, c := range cells {
		res.CellIDs = append(res.CellIDs, c.ID)
		switch c.Table {
		case GridTable3:
			t3Widths = append(t3Widths, c.Width)
		case GridTable4:
			t4Cells[c.ID] = true
		case GridCurve:
			curveWidths = append(curveWidths, c.Width)
		}
	}

	if len(t3Widths) > 0 {
		res.Table3, err = Table3Context(ctx, d, t3Widths)
		if err != nil {
			return nil, err
		}
	}
	if len(t4Cells) > 0 {
		res.Table4, err = Table4SelectContext(ctx, d, g.Table4Widths, g.Table4Weights,
			func(w int, wt core.Weights) bool { return t4Cells[table4CellID(w, wt)] })
		if err != nil {
			return nil, err
		}
	}
	if len(curveWidths) > 0 {
		times, err := core.WidthCurveContext(ctx, d, d.AllShare(), curveWidths)
		if err != nil {
			return nil, err
		}
		res.Curve = make([]CurveSample, len(curveWidths))
		for i, w := range curveWidths {
			res.Curve[i] = CurveSample{Width: w, Cycles: times[i]}
		}
	}
	return res, nil
}

// GridResult is the recombined output of a fully covered sharded run.
// Table3 and Table4 are nil when the grid declares no such cells.
type GridResult struct {
	Grid   Grid
	Table3 *Table3Result
	Table4 *Table4Result
	Curve  []CurveSample
}

// Merge recombines the partial outputs of a sharded run into the full
// grid tables. The parts must come from the same Grid and together
// cover every cell exactly once; Merge fails loudly on a missing,
// duplicated, or undeclared cell rather than silently emitting a
// partial table. The merged tables are bit-identical to an unsharded
// run of the same grid.
func Merge(parts ...*ShardResult) (*GridResult, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("experiments: nothing to merge")
	}
	g := parts[0].Grid
	if err := g.Validate(); err != nil {
		return nil, err
	}
	for i, p := range parts[1:] {
		if !p.Grid.Equal(g) {
			return nil, fmt.Errorf("experiments: merge part %d (shard %d/%d) belongs to a different grid", i+1, p.Shard, p.Of)
		}
	}
	// Parts carrying a design hash must agree on it — partials of two
	// different designs must never combine into one table. Hash-less
	// parts (files from before the field existed) cannot be checked.
	hash := ""
	for _, p := range parts {
		switch {
		case p.DesignHash == "":
		case hash == "":
			hash = p.DesignHash
		case p.DesignHash != hash:
			return nil, fmt.Errorf("experiments: merge parts disagree on the design hash (%s vs %s from shard %d/%d)",
				hash, p.DesignHash, p.Shard, p.Of)
		}
	}

	known := make(map[CellID]bool)
	for _, c := range g.Cells() {
		known[c.ID] = true
	}
	owner := make(map[CellID]*ShardResult, len(known))
	claim := func(p *ShardResult, id CellID) error {
		if !known[id] {
			return fmt.Errorf("experiments: shard %d/%d carries cell %s, not in the grid", p.Shard, p.Of, id)
		}
		if prev := owner[id]; prev != nil {
			return fmt.Errorf("experiments: cell %s computed by both shard %d/%d and shard %d/%d",
				id, prev.Shard, prev.Of, p.Shard, p.Of)
		}
		owner[id] = p
		return nil
	}

	// Claim cells from the data each part actually carries (not its
	// CellIDs declaration, which is cross-checked afterwards).
	t3Cols := make(map[int]t3ColumnRef) // width -> owning column
	t4ByID := make(map[CellID]Table4Cell)
	curve := make(map[int]CurveSample) // width -> sample
	for _, p := range parts {
		carried := make(map[CellID]bool)
		if p.Table3 != nil {
			// A shard file is outside our process boundary: a truncated
			// or hand-edited partial must fail here, not panic when the
			// columns are indexed below.
			if err := checkTable3Shape(p); err != nil {
				return nil, err
			}
			for wi, w := range p.Table3.Widths {
				id := table3CellID(w)
				if err := claim(p, id); err != nil {
					return nil, err
				}
				carried[id] = true
				t3Cols[w] = t3ColumnRef{part: p, col: wi}
			}
		}
		for _, c := range p.Table4 {
			id := table4CellID(c.Width, c.Weights)
			if err := claim(p, id); err != nil {
				return nil, err
			}
			carried[id] = true
			t4ByID[id] = c
		}
		for _, s := range p.Curve {
			id := curveCellID(s.Width)
			if err := claim(p, id); err != nil {
				return nil, err
			}
			carried[id] = true
			curve[s.Width] = s
		}
		for _, id := range p.CellIDs {
			if !carried[id] {
				return nil, fmt.Errorf("experiments: shard %d/%d declares cell %s but carries no result for it", p.Shard, p.Of, id)
			}
		}
	}
	for _, c := range g.Cells() {
		if owner[c.ID] == nil {
			return nil, fmt.Errorf("experiments: cell %s missing from every shard", c.ID)
		}
	}

	res := &GridResult{Grid: g}
	if len(g.Table3Widths) > 0 {
		t3, err := mergeTable3(g, t3Cols)
		if err != nil {
			return nil, err
		}
		res.Table3 = t3
	}
	if len(g.Table4Widths) > 0 {
		cells := make([]Table4Cell, 0, len(g.Table4Widths)*len(g.Table4Weights))
		for _, wt := range g.Table4Weights {
			for _, w := range g.Table4Widths {
				cells = append(cells, t4ByID[table4CellID(w, wt)])
			}
		}
		res.Table4 = &Table4Result{
			Widths:  slices.Clone(g.Table4Widths),
			Weights: slices.Clone(g.Table4Weights),
			Cells:   cells,
		}
	}
	if len(g.CurveWidths) > 0 {
		res.Curve = make([]CurveSample, len(g.CurveWidths))
		for i, w := range g.CurveWidths {
			res.Curve[i] = curve[w]
		}
	}
	return res, nil
}

// checkTable3Shape validates the internal consistency of a shard's
// Table 3 partial: per-width slices and every row's CT must match the
// declared width count.
func checkTable3Shape(p *ShardResult) error {
	t3 := p.Table3
	if len(t3.Spread) != len(t3.Widths) || len(t3.Lowest) != len(t3.Widths) {
		return fmt.Errorf("experiments: shard %d/%d Table 3 partial is malformed: %d widths but %d spreads, %d lowest labels",
			p.Shard, p.Of, len(t3.Widths), len(t3.Spread), len(t3.Lowest))
	}
	for _, row := range t3.Rows {
		if len(row.CT) != len(t3.Widths) {
			return fmt.Errorf("experiments: shard %d/%d Table 3 row %q is malformed: %d CT values for %d widths",
				p.Shard, p.Of, row.Label, len(row.CT), len(t3.Widths))
		}
	}
	return nil
}

// mergeTable3 reassembles the full Table 3 from per-width columns
// scattered across shards. Every shard sorts its rows with the same
// total order (wrapper count descending, then label), so the row
// sequence of any one part is the row sequence of the merged table;
// mismatched row sets between parts are an input error.
func mergeTable3(g Grid, cols map[int]t3ColumnRef) (*Table3Result, error) {
	first := cols[g.Table3Widths[0]].part.Table3
	res := &Table3Result{
		Widths: slices.Clone(g.Table3Widths),
		Rows:   make([]Table3Row, len(first.Rows)),
		Spread: make([]float64, len(g.Table3Widths)),
		Lowest: make([]string, len(g.Table3Widths)),
	}
	for i, row := range first.Rows {
		res.Rows[i] = Table3Row{Wrappers: row.Wrappers, Label: row.Label, CT: make([]float64, len(g.Table3Widths))}
	}
	for wi, w := range g.Table3Widths {
		ref := cols[w]
		part := ref.part.Table3
		if len(part.Rows) != len(res.Rows) {
			return nil, fmt.Errorf("experiments: Table 3 shards disagree on the combination set (%d vs %d rows)",
				len(part.Rows), len(res.Rows))
		}
		res.Spread[wi] = part.Spread[ref.col]
		res.Lowest[wi] = part.Lowest[ref.col]
		for ri, row := range part.Rows {
			if row.Label != res.Rows[ri].Label {
				return nil, fmt.Errorf("experiments: Table 3 shards disagree on row %d: %q vs %q", ri, row.Label, res.Rows[ri].Label)
			}
			res.Rows[ri].CT[wi] = row.CT[ref.col]
		}
	}
	return res, nil
}

// t3ColumnRef locates one Table 3 width column inside a shard's partial
// result.
type t3ColumnRef struct {
	part *ShardResult
	col  int
}

// Validate checks a shard result's internal consistency — the checks a
// partial that crossed a process boundary (a file, a checkpoint, an
// HTTP body) must pass before anyone trusts it: a sane shard/of
// geometry, a valid grid, duplicate-free declared cells, well-shaped
// Table 3 columns, and an exact match between the declared CellIDs and
// the cells actually carried (no cell declared twice, carried twice,
// undeclared, or declared-but-missing). It is the loud-failure half of
// the interchange contract: a truncated, tampered or hand-edited
// partial must die here, never merge silently.
func (r *ShardResult) Validate() error {
	if r.Of < 1 || r.Shard < 0 || r.Shard >= r.Of {
		return fmt.Errorf("experiments: shard %d/%d geometry out of range", r.Shard, r.Of)
	}
	if err := r.Grid.Validate(); err != nil {
		return err
	}
	declared := make(map[CellID]bool, len(r.CellIDs))
	for _, id := range r.CellIDs {
		if declared[id] {
			return fmt.Errorf("experiments: shard %d/%d declares cell %s twice", r.Shard, r.Of, id)
		}
		declared[id] = true
	}
	if r.Table3 != nil {
		if err := checkTable3Shape(r); err != nil {
			return err
		}
	}
	carried := make(map[CellID]bool, len(r.CellIDs))
	carry := func(id CellID) error {
		if carried[id] {
			return fmt.Errorf("experiments: shard %d/%d carries duplicate results for cell %s", r.Shard, r.Of, id)
		}
		if !declared[id] {
			return fmt.Errorf("experiments: shard %d/%d carries undeclared cell %s", r.Shard, r.Of, id)
		}
		carried[id] = true
		return nil
	}
	if r.Table3 != nil {
		for _, w := range r.Table3.Widths {
			if err := carry(table3CellID(w)); err != nil {
				return err
			}
		}
	}
	for _, c := range r.Table4 {
		if err := carry(table4CellID(c.Width, c.Weights)); err != nil {
			return err
		}
	}
	for _, s := range r.Curve {
		if err := carry(curveCellID(s.Width)); err != nil {
			return err
		}
	}
	for _, id := range r.CellIDs {
		if !carried[id] {
			return fmt.Errorf("experiments: shard %d/%d declares cell %s but carries no result for it", r.Shard, r.Of, id)
		}
	}
	return nil
}

// WriteShardFile writes a shard result as indented JSON, the on-disk
// interchange format of a distributed grid run (what msoc-bench -shard
// emits, -merge consumes, and the serving layer's durable job store
// builds its checkpoints on). The write is atomic (WriteJSONFile), so
// a crash mid-checkpoint never leaves a torn partial.
func WriteShardFile(path string, r *ShardResult) error {
	return WriteJSONFile(path, r)
}

// ReadShardFile reads a shard result written by WriteShardFile,
// rejecting hostile or damaged inputs loudly: zero-length files,
// truncated or malformed JSON, invalid grids, and partials whose
// declared and carried cells disagree or duplicate (Validate).
func ReadShardFile(path string) (*ShardResult, error) {
	var r ShardResult
	if err := ReadJSONFile(path, &r); err != nil {
		return nil, err
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// WriteJSONFile writes v as indented JSON with a trailing newline to
// path, atomically: the bytes land in a temp file in the same
// directory which is then renamed over path, so a crash mid-write can
// never leave a torn, half-written file behind. This is the durability
// discipline the shard interchange and the serving layer's job
// checkpoints share.
func WriteJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if err := errors.Join(werr, cerr, os.Chmod(tmp.Name(), 0o644)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadJSONFile reads a JSON file written by WriteJSONFile into v. It
// fails loudly on empty (zero-byte or whitespace-only) files — the
// tell-tale of a torn write on filesystems without atomic rename — and
// on malformed JSON, always naming the offending path.
func ReadJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return fmt.Errorf("%s: empty file", path)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
