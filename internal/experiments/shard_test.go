package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mixsoc/internal/core"
)

func TestGridCellsAndShardPartition(t *testing.T) {
	g := PaperGrid()
	cells := g.Cells()
	want := len(g.Table3Widths) + len(g.Table4Widths)*len(g.Table4Weights) + len(g.CurveWidths)
	if len(cells) != want {
		t.Fatalf("cells = %d, want %d", len(cells), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// IDs are unique and carry the cell coordinates.
	ids := map[CellID]bool{}
	for _, c := range cells {
		if ids[c.ID] {
			t.Errorf("duplicate cell ID %s", c.ID)
		}
		ids[c.ID] = true
	}
	if id := table4CellID(40, core.Weights{Time: 0.25, Area: 0.75}); id != "table4/W=40/wT=0.25" {
		t.Errorf("table4 cell ID = %s", id)
	}

	// Every n-way split covers every cell exactly once, round-robin.
	for _, of := range []int{1, 2, 3, len(cells), len(cells) + 5} {
		seen := map[CellID]int{}
		for shard := 0; shard < of; shard++ {
			part, err := g.Shard(shard, of)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range part {
				seen[c.ID]++
			}
		}
		if len(seen) != len(cells) {
			t.Fatalf("of=%d: %d distinct cells, want %d", of, len(seen), len(cells))
		}
		for id, n := range seen {
			if n != 1 {
				t.Errorf("of=%d: cell %s computed %d times", of, id, n)
			}
		}
	}

	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {0, 0}} {
		if _, err := g.Shard(bad[0], bad[1]); err == nil {
			t.Errorf("Shard(%d, %d) accepted", bad[0], bad[1])
		}
	}
}

func TestGridValidate(t *testing.T) {
	if err := (Grid{}).Validate(); err == nil {
		t.Error("empty grid accepted")
	}
	if err := (Grid{Table3Widths: []int{32, 32}}).Validate(); err == nil {
		t.Error("duplicate Table 3 width accepted")
	}
	if err := (Grid{Table4Widths: []int{32}}).Validate(); err == nil {
		t.Error("Table 4 widths without weight settings accepted")
	}
	if err := (Grid{Table4Weights: []core.Weights{core.EqualWeights}}).Validate(); err == nil {
		t.Error("Table 4 weight settings without widths accepted")
	}
	if err := PaperGrid().Validate(); err != nil {
		t.Error(err)
	}
}

// Merge's coverage accounting is pure bookkeeping, so its error paths
// are tested on hand-built parts without running any cell.
func TestMergeCoverageErrors(t *testing.T) {
	g := Grid{CurveWidths: []int{8, 16}}
	p0 := &ShardResult{Shard: 0, Of: 2, Grid: g,
		CellIDs: []CellID{curveCellID(8)}, Curve: []CurveSample{{Width: 8, Cycles: 100}}}
	p1 := &ShardResult{Shard: 1, Of: 2, Grid: g,
		CellIDs: []CellID{curveCellID(16)}, Curve: []CurveSample{{Width: 16, Cycles: 50}}}

	merged, err := Merge(p0, p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Curve) != 2 || merged.Curve[0].Cycles != 100 || merged.Curve[1].Cycles != 50 {
		t.Fatalf("merged curve = %+v", merged.Curve)
	}
	if merged.Table3 != nil || merged.Table4 != nil {
		t.Error("merge invented table results for a curve-only grid")
	}

	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	if _, err := Merge(p0); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing cell not reported: %v", err)
	}
	if _, err := Merge(p0, p0); err == nil || !strings.Contains(err.Error(), "both") {
		t.Errorf("duplicate cell not reported: %v", err)
	}
	other := &ShardResult{Shard: 0, Of: 1, Grid: Grid{CurveWidths: []int{8}},
		CellIDs: []CellID{curveCellID(8)}, Curve: []CurveSample{{Width: 8, Cycles: 1}}}
	if _, err := Merge(p0, other); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Errorf("grid mismatch not reported: %v", err)
	}
	stray := &ShardResult{Shard: 1, Of: 2, Grid: g,
		CellIDs: []CellID{curveCellID(16)},
		Curve:   []CurveSample{{Width: 16, Cycles: 50}, {Width: 99, Cycles: 1}}}
	if _, err := Merge(p0, stray); err == nil || !strings.Contains(err.Error(), "not in the grid") {
		t.Errorf("undeclared cell not reported: %v", err)
	}
	hollow := &ShardResult{Shard: 1, Of: 2, Grid: g, CellIDs: []CellID{curveCellID(16)}}
	if _, err := Merge(p0, hollow); err == nil || !strings.Contains(err.Error(), "no result") {
		t.Errorf("declared-but-absent cell not reported: %v", err)
	}

	// A truncated/hand-edited Table 3 partial must error, not panic.
	badT3 := &ShardResult{Shard: 0, Of: 1, Grid: Grid{Table3Widths: []int{32}},
		CellIDs: []CellID{table3CellID(32)},
		Table3:  &Table3Result{Widths: []int{32}}} // no spread/lowest/rows
	if _, err := Merge(badT3); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("malformed Table 3 partial not reported: %v", err)
	}
	badRow := &ShardResult{Shard: 0, Of: 1, Grid: Grid{Table3Widths: []int{32}},
		CellIDs: []CellID{table3CellID(32)},
		Table3: &Table3Result{Widths: []int{32}, Spread: []float64{1}, Lowest: []string{"x"},
			Rows: []Table3Row{{Label: "{A,B}", CT: nil}}}}
	if _, err := Merge(badRow); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("malformed Table 3 row not reported: %v", err)
	}
}

// TestShardMergeSmallGrid runs a reduced grid unsharded and as a 3-way
// shard (through the on-disk JSON format) and demands bit-identical
// tables — the same contract the golden test enforces on the full paper
// grid, cheap enough to run in -short mode.
func TestShardMergeSmallGrid(t *testing.T) {
	g := Grid{
		Table3Widths:  []int{24, 32},
		Table4Widths:  []int{24, 32},
		Table4Weights: []core.Weights{core.EqualWeights},
		CurveWidths:   []int{24, 32},
	}

	t3, err := Table3(nil, g.Table3Widths)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Table4(nil, g.Table4Widths, g.Table4Weights)
	if err != nil {
		t.Fatal(err)
	}
	d := Design()
	curve, err := core.WidthCurve(d, d.AllShare(), g.CurveWidths)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const of = 3
	parts := make([]*ShardResult, of)
	for shard := 0; shard < of; shard++ {
		r, err := RunShard(nil, g, shard, of)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "shard.json")
		if err := WriteShardFile(path, r); err != nil {
			t.Fatal(err)
		}
		if parts[shard], err = ReadShardFile(path); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}

	requireTable3Bits(t, merged.Table3, t3)
	requireTable4Bits(t, merged.Table4, t4)
	for i, w := range g.CurveWidths {
		if merged.Curve[i].Width != w || merged.Curve[i].Cycles != curve[i] {
			t.Errorf("curve[W=%d] = %+v, want %d cycles", w, merged.Curve[i], curve[i])
		}
	}
}

// requireTable3Bits demands got reproduce want bit for bit (raw float64
// bits, not epsilon).
func requireTable3Bits(t *testing.T, got, want *Table3Result) {
	t.Helper()
	if got == nil {
		t.Fatal("no merged Table 3")
	}
	if len(got.Widths) != len(want.Widths) || len(got.Rows) != len(want.Rows) {
		t.Fatalf("merged Table 3 shape (%d widths, %d rows) != unsharded (%d, %d)",
			len(got.Widths), len(got.Rows), len(want.Widths), len(want.Rows))
	}
	for i := range want.Widths {
		if got.Widths[i] != want.Widths[i] {
			t.Fatalf("widths = %v, want %v", got.Widths, want.Widths)
		}
		if math.Float64bits(got.Spread[i]) != math.Float64bits(want.Spread[i]) {
			t.Errorf("spread[W=%d] = %v, want %v (bits differ)", want.Widths[i], got.Spread[i], want.Spread[i])
		}
		if got.Lowest[i] != want.Lowest[i] {
			t.Errorf("lowest[W=%d] = %q, want %q", want.Widths[i], got.Lowest[i], want.Lowest[i])
		}
	}
	for ri, w := range want.Rows {
		gr := got.Rows[ri]
		if gr.Label != w.Label || gr.Wrappers != w.Wrappers {
			t.Errorf("row %d = (%d, %q), want (%d, %q)", ri, gr.Wrappers, gr.Label, w.Wrappers, w.Label)
			continue
		}
		for k := range w.CT {
			if math.Float64bits(gr.CT[k]) != math.Float64bits(w.CT[k]) {
				t.Errorf("row %s CT[W=%d]: bits differ (%v vs %v)", w.Label, want.Widths[k], gr.CT[k], w.CT[k])
			}
		}
	}
}

// requireTable4Bits demands got reproduce want bit for bit.
func requireTable4Bits(t *testing.T, got, want *Table4Result) {
	t.Helper()
	if got == nil {
		t.Fatal("no merged Table 4")
	}
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("merged Table 4 has %d cells, unsharded %d", len(got.Cells), len(want.Cells))
	}
	for i, w := range want.Cells {
		g := got.Cells[i]
		if g.Width != w.Width || g.Weights != w.Weights {
			t.Errorf("cell %d at (W=%d, wT=%v), want (W=%d, wT=%v)", i, g.Width, g.Weights.Time, w.Width, w.Weights.Time)
			continue
		}
		if math.Float64bits(g.ExhaustiveCost) != math.Float64bits(w.ExhaustiveCost) ||
			g.ExhaustiveNEval != w.ExhaustiveNEval || g.ExhaustiveSel != w.ExhaustiveSel ||
			math.Float64bits(g.HeuristicCost) != math.Float64bits(w.HeuristicCost) ||
			g.HeuristicNEval != w.HeuristicNEval || g.HeuristicSel != w.HeuristicSel ||
			math.Float64bits(g.ReductionPercent) != math.Float64bits(w.ReductionPercent) ||
			g.Optimal != w.Optimal {
			t.Errorf("cell %d (W=%d, wT=%v): merged %+v diverged from unsharded %+v", i, w.Width, w.Weights.Time, g, w)
		}
	}
}

// TestReadShardFileHostileInputs feeds the on-disk interchange the
// damaged partials a crashed or hostile producer could leave behind —
// zero-length files, truncated JSON, duplicate cells, mismatched
// declarations — and demands every one fails loudly at read time,
// never surviving into a silent merge. Design-hash disagreement is the
// one check only Merge can make (a single file has nothing to compare
// against), so it is asserted there.
func TestReadShardFileHostileInputs(t *testing.T) {
	dir := t.TempDir()
	write := func(name, data string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	g := Grid{CurveWidths: []int{8, 16}}
	good := &ShardResult{Shard: 0, Of: 1, Grid: g, DesignHash: "aaaa",
		CellIDs: []CellID{curveCellID(8), curveCellID(16)},
		Curve:   []CurveSample{{Width: 8, Cycles: 100}, {Width: 16, Cycles: 50}}}
	goodPath := filepath.Join(dir, "good.json")
	if err := WriteShardFile(goodPath, good); err != nil {
		t.Fatal(err)
	}
	goodBytes, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadShardFile(goodPath); err != nil {
		t.Fatalf("pristine shard file rejected: %v", err)
	}

	cases := []struct {
		name string
		path string
		want string // substring the error must carry
	}{
		{"zero-length file", write("empty.json", ""), "empty file"},
		{"whitespace-only file", write("blank.json", " \n\t"), "empty file"},
		{"truncated JSON", write("truncated.json", string(goodBytes[:len(goodBytes)/2])), "unexpected end"},
		{"not JSON at all", write("garbage.json", "certainly not JSON"), "invalid character"},
		{"bad shard geometry", write("geometry.json",
			`{"shard":3,"of":2,"grid":{"curve_widths":[8]},"cell_ids":["widthcurve/W=8"],"curve":[{"width":8,"cycles":1}]}`),
			"geometry out of range"},
		{"empty grid", write("nogrid.json", `{"shard":0,"of":1,"grid":{},"cell_ids":[]}`), "empty grid"},
		{"duplicate declared cell", write("dupdecl.json",
			`{"shard":0,"of":1,"grid":{"curve_widths":[8]},"cell_ids":["widthcurve/W=8","widthcurve/W=8"],"curve":[{"width":8,"cycles":1}]}`),
			"declares cell widthcurve/W=8 twice"},
		{"duplicate carried cell", write("dupcarry.json",
			`{"shard":0,"of":1,"grid":{"curve_widths":[8]},"cell_ids":["widthcurve/W=8"],"curve":[{"width":8,"cycles":1},{"width":8,"cycles":2}]}`),
			"duplicate results for cell widthcurve/W=8"},
		{"undeclared carried cell", write("undeclared.json",
			`{"shard":0,"of":1,"grid":{"curve_widths":[8,16]},"cell_ids":["widthcurve/W=8"],"curve":[{"width":8,"cycles":1},{"width":16,"cycles":2}]}`),
			"undeclared cell"},
		{"declared but missing cell", write("hollow.json",
			`{"shard":0,"of":1,"grid":{"curve_widths":[8]},"cell_ids":["widthcurve/W=8"]}`),
			"no result"},
		{"malformed Table 3 column", write("badt3.json",
			`{"shard":0,"of":1,"grid":{"table3_widths":[32]},"cell_ids":["table3/W=32"],"table3":{"Widths":[32]}}`),
			"malformed"},
	}
	for _, tc := range cases {
		if _, err := ReadShardFile(tc.path); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Wrong design hash: each file is internally consistent, so the
	// mismatch can only surface — and must surface — when merging.
	g2 := Grid{CurveWidths: []int{8, 16}}
	p0 := &ShardResult{Shard: 0, Of: 2, Grid: g2, DesignHash: "aaaa",
		CellIDs: []CellID{curveCellID(8)}, Curve: []CurveSample{{Width: 8, Cycles: 100}}}
	p1 := &ShardResult{Shard: 1, Of: 2, Grid: g2, DesignHash: "bbbb",
		CellIDs: []CellID{curveCellID(16)}, Curve: []CurveSample{{Width: 16, Cycles: 50}}}
	for i, p := range []*ShardResult{p0, p1} {
		path := filepath.Join(dir, fmt.Sprintf("hash%d.json", i))
		if err := WriteShardFile(path, p); err != nil {
			t.Fatal(err)
		}
		var err error
		if []*ShardResult{p0, p1}[i], err = ReadShardFile(path); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Merge(p0, p1); err == nil || !strings.Contains(err.Error(), "design hash") {
		t.Errorf("design-hash mismatch not reported: %v", err)
	}
	// Hash-less legacy partials still merge with hashed ones.
	legacy := &ShardResult{Shard: 1, Of: 2, Grid: g2,
		CellIDs: []CellID{curveCellID(16)}, Curve: []CurveSample{{Width: 16, Cycles: 50}}}
	if _, err := Merge(p0, legacy); err != nil {
		t.Errorf("legacy hash-less partial rejected: %v", err)
	}
}

// TestWriteJSONFileAtomic pins the interchange's durability discipline:
// the write is temp-file-plus-rename, so the destination either holds
// the complete previous content or the complete new content — never a
// torn mix — and no temp litter survives a successful write.
func TestWriteJSONFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	if err := WriteJSONFile(path, map[string]int{"v": 1}); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONFile(path, map[string]int{"v": 2}); err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if err := ReadJSONFile(path, &got); err != nil {
		t.Fatal(err)
	}
	if got["v"] != 2 {
		t.Fatalf("read back %v, want v=2", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after two writes, want only the file itself", len(entries))
	}
}

// TestTable4SelectSubset checks the cell-selection path against the
// full grid directly (the shard runner relies on it).
func TestTable4SelectSubset(t *testing.T) {
	widths := []int{24, 32}
	weights := []core.Weights{{Time: 0.25, Area: 0.75}, core.EqualWeights}
	full, err := Table4(nil, widths, weights)
	if err != nil {
		t.Fatal(err)
	}
	sel := func(w int, wt core.Weights) bool { return w == 32 && wt == core.EqualWeights }
	cells, err := Table4Select(nil, widths, weights, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("selected %d cells, want 1", len(cells))
	}
	var want Table4Cell
	for _, c := range full.Cells {
		if sel(c.Width, c.Weights) {
			want = c
		}
	}
	if cells[0] != want {
		t.Errorf("selected cell %+v, want %+v", cells[0], want)
	}

	if _, err := Table4Select(nil, widths, weights, func(int, core.Weights) bool { return false }); err == nil {
		t.Error("empty selection accepted")
	}
}
