package experiments_test

import (
	"fmt"

	"mixsoc/internal/core"
	"mixsoc/internal/experiments"
)

// ExampleRunShard splits a small Table 4 grid across two "machines" and
// merges the partial results; the merged table is bit-identical to an
// unsharded run of the same grid.
func ExampleRunShard() {
	g := experiments.Grid{
		Table4Widths:  []int{24, 32},
		Table4Weights: []core.Weights{core.EqualWeights},
	}
	parts := make([]*experiments.ShardResult, 2)
	for shard := range parts {
		r, err := experiments.RunShard(nil, g, shard, 2)
		if err != nil {
			fmt.Println(err)
			return
		}
		parts[shard] = r
	}
	merged, err := experiments.Merge(parts[0], parts[1])
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range merged.Table4.Cells {
		fmt.Printf("W=%d: heuristic %d of %d evaluations, optimal %v\n",
			c.Width, c.HeuristicNEval, c.ExhaustiveNEval, c.Optimal)
	}
	// Output:
	// W=24: heuristic 13 of 26 evaluations, optimal true
	// W=32: heuristic 13 of 26 evaluations, optimal true
}

// ExampleGrid_Shard shows the deterministic cell partition: every cell
// has a stable ID, and a 2-way split deals them round-robin.
func ExampleGrid_Shard() {
	g := experiments.Grid{Table3Widths: []int{32, 48, 64}}
	for shard := 0; shard < 2; shard++ {
		cells, err := g.Shard(shard, 2)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("shard %d:", shard)
		for _, c := range cells {
			fmt.Printf(" %s", c.ID)
		}
		fmt.Println()
	}
	// Output:
	// shard 0: table3/W=32 table3/W=64
	// shard 1: table3/W=48
}
