// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the reproduction's substrates. Each
// experiment returns structured rows plus a text rendering, so the same
// code backs the root-level benchmarks (bench_test.go), the msoc-tables
// CLI, and EXPERIMENTS.md.
//
// Experiment index (see DESIGN.md §3):
//
//	Table 1  — area overhead C_A and analog test-time lower bound LTB
//	           for all 26 sharing combinations
//	Table 2  — analog core test requirements (input data)
//	Table 3  — normalized SOC test time CT per combination, W = 32/48/64
//	Table 4  — Cost_Optimizer vs exhaustive evaluation
//	Figure 5 — direct vs wrapped cut-off frequency test of core A
//	Section5 — converter component counts and wrapper area facts
package experiments

import (
	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/itc02"
)

// Design returns p93791m: the embedded p93791 digital SOC augmented with
// the five analog cores of Table 2, the SOC all experiments run on.
func Design() *core.Design {
	return &core.Design{
		Name:    "p93791m",
		Digital: itc02.P93791(),
		Analog:  analog.PaperCores(),
	}
}

// PaperWidths are the TAM widths Table 4 sweeps.
var PaperWidths = []int{32, 40, 48, 56, 64}

// Table3Widths are the TAM widths Table 3 reports.
var Table3Widths = []int{32, 48, 64}

// PaperWeightSettings are the three (wT, wA) settings of Table 4.
var PaperWeightSettings = []core.Weights{
	{Time: 0.5, Area: 0.5},
	{Time: 0.25, Area: 0.75},
	{Time: 0.75, Area: 0.25},
}
