package experiments

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/tam"
	"mixsoc/internal/wrapper"
)

// The rectangle backend's own golden snapshot. The paper tables pin the
// default occupancy packer; this file pins the opt-in rectangle
// bin-packing backend on the same weights-major paper grid, so a change
// to the diagonal ordering or its polish pass shows up as a diff here —
// and only here. The companion cross-check re-runs the default grid in
// the same process and holds it to the Table 4 golden bit for bit, so
// the alternative backend can never bleed into the published numbers.
type goldenRectangleCell struct {
	Width     int    `json:"width"`
	WT        uint64 `json:"wt_bits"`
	ExhCost   uint64 `json:"exh_cost_bits"`
	ExhNEval  int    `json:"exh_neval"`
	ExhSel    string `json:"exh_sel"`
	HeurCost  uint64 `json:"heur_cost_bits"`
	HeurNEval int    `json:"heur_neval"`
	HeurSel   string `json:"heur_sel"`
}

type goldenRectangle struct {
	Cells []goldenRectangleCell `json:"cells"`
}

// gridCells runs both solvers over the paper grid with the given packer
// (nil = the default occupancy path) and returns one row per cell. Each
// run gets fresh schedule caches — cached schedules are packer-specific
// — while the wrapper staircase cache, which is packer-independent, is
// deliberately shared by the cross-check below.
func gridCells(t *testing.T, stairs *wrapper.StaircaseCache, packer tam.Packer) []goldenRectangleCell {
	t.Helper()
	d := Design()
	names := d.AnalogNames()
	caches := make(map[int]*core.ScheduleCache, len(PaperWidths))
	for _, w := range PaperWidths {
		caches[w] = core.NewScheduleCache()
	}
	var cells []goldenRectangleCell
	for _, wt := range PaperWeightSettings {
		for _, w := range PaperWidths {
			pl := core.NewPlanner(d, w, wt)
			pl.CostModel = analog.PaperCostModel()
			pl.Cache = caches[w]
			pl.Staircases = stairs
			pl.Packer = packer
			ex, err := pl.Exhaustive()
			if err != nil {
				t.Fatalf("exhaustive W=%d wT=%v: %v", w, wt.Time, err)
			}
			h, err := pl.CostOptimizer()
			if err != nil {
				t.Fatalf("cost-optimizer W=%d wT=%v: %v", w, wt.Time, err)
			}
			cells = append(cells, goldenRectangleCell{
				Width:     w,
				WT:        math.Float64bits(wt.Time),
				ExhCost:   math.Float64bits(ex.Best.Cost),
				ExhNEval:  ex.NEval,
				ExhSel:    ex.Best.Label(names),
				HeurCost:  math.Float64bits(h.Best.Cost),
				HeurNEval: h.NEval,
				HeurSel:   h.Best.Label(names),
			})
		}
	}
	return cells
}

func loadGoldenRectangle(t *testing.T) *goldenRectangle {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_rectangle.json")
	if err != nil {
		t.Fatal(err)
	}
	var g goldenRectangle
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	return &g
}

// TestRectangleBitIdenticalToGolden holds the rectangle backend to its
// snapshot, then re-runs the default grid — sharing the same staircase
// cache the rectangle run used — and holds it to the Table 4 golden bit
// for bit: selecting a backend for one caller must leave the default
// paper tables byte-identical.
func TestRectangleBitIdenticalToGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	g := loadGoldenRectangle(t)
	base := loadGolden(t)
	stairs := wrapper.NewStaircaseCache(PaperWidths[len(PaperWidths)-1])
	cells := gridCells(t, stairs, tam.RectanglePacker{})
	if len(cells) != len(g.Cells) {
		t.Fatalf("cells = %d, want %d", len(cells), len(g.Cells))
	}
	for i, want := range g.Cells {
		if cells[i] != want {
			t.Errorf("cell %d (W=%d): rectangle run %+v diverged from golden %+v", i, cells[i].Width, cells[i], want)
		}
	}
	def := gridCells(t, stairs, nil)
	if len(def) != len(base.Table4Cells) {
		t.Fatalf("default grid has %d cells, Table 4 golden %d", len(def), len(base.Table4Cells))
	}
	for i, cell := range def {
		t4 := base.Table4Cells[i]
		if cell.Width != t4.Width || cell.WT != t4.WT {
			t.Fatalf("cell %d: grid order diverged from Table 4 golden", i)
		}
		if cell.ExhCost != t4.ExhCost || cell.ExhNEval != t4.ExhNEval || cell.ExhSel != t4.ExhSel {
			t.Errorf("cell %d (W=%d): default exhaustive result drifted from Table 4 golden after rectangle run", i, cell.Width)
		}
		if cell.HeurCost != t4.HeurCost || cell.HeurNEval != t4.HeurNEval || cell.HeurSel != t4.HeurSel {
			t.Errorf("cell %d (W=%d): default heuristic result drifted from Table 4 golden after rectangle run", i, cell.Width)
		}
	}
}

// TestUpdateRectangleGoldenSnapshot rewrites
// testdata/golden_rectangle.json when run with -update, alongside the
// main snapshot; otherwise it only checks that the snapshot parses.
func TestUpdateRectangleGoldenSnapshot(t *testing.T) {
	if !*updateGolden {
		loadGoldenRectangle(t)
		t.Skip("pass -update to regenerate testdata/golden_rectangle.json")
	}
	stairs := wrapper.NewStaircaseCache(PaperWidths[len(PaperWidths)-1])
	g := goldenRectangle{Cells: gridCells(t, stairs, tam.RectanglePacker{})}
	data, err := json.MarshalIndent(&g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_rectangle.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("regenerated testdata/golden_rectangle.json — record why in CHANGES.md")
}
