package experiments

import (
	"math"
	"strings"
	"testing"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
)

func TestDesignIsValid(t *testing.T) {
	d := Design()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Name != "p93791m" || len(d.Analog) != 5 {
		t.Errorf("design = %s with %d analog cores", d.Name, len(d.Analog))
	}
}

func TestTable1MatchesPaperLTB(t *testing.T) {
	rows, err := Table1(analog.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 26 {
		t.Fatalf("rows = %d, want 26", len(rows))
	}
	// Spot-check LTB values against the paper (full coverage is in the
	// analog package tests).
	want := map[string]float64{
		"{A,C}":        68.5,
		"{D,E}":        10.1,
		"{A,B,C,D}":    98.7,
		"{A,B,E}{C,D}": 56.0,
		"{A,B,C,D,E}":  100.0,
	}
	seen := 0
	for _, r := range rows {
		if ltb, ok := want[r.Label]; ok {
			seen++
			if math.Abs(r.LTB-ltb) > 0.11 {
				t.Errorf("%s: LTB = %.2f, want %.1f", r.Label, r.LTB, ltb)
			}
		}
		if r.CA <= 0 {
			t.Errorf("%s: C_A = %v", r.Label, r.CA)
		}
	}
	if seen != len(want) {
		t.Errorf("found %d of %d spot-check labels", seen, len(want))
	}
	text := RenderTable1(rows)
	for _, frag := range []string{"Table 1", "{A,B,C,D,E}", "C_A", "LTB"} {
		if !strings.Contains(text, frag) {
			t.Errorf("rendering missing %q", frag)
		}
	}
}

func TestTable1SortedByWrappersThenCA(t *testing.T) {
	rows, err := Table1(analog.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Wrappers > rows[i-1].Wrappers {
			t.Fatalf("rows not grouped by wrapper count at %d", i)
		}
		if rows[i].Wrappers == rows[i-1].Wrappers && rows[i].CA > rows[i-1].CA {
			t.Fatalf("rows not ordered by C_A within group at %d", i)
		}
	}
}

func TestRenderTable2(t *testing.T) {
	text := RenderTable2()
	for _, frag := range []string{"Table 2", "I-Q", "78MHz", "136533", "636113"} {
		if !strings.Contains(text, frag) {
			t.Errorf("table 2 missing %q:\n%s", frag, text)
		}
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("TAM sweeps are slow")
	}
	res, err := Table3(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 26 || len(res.Widths) != 3 {
		t.Fatalf("rows=%d widths=%d", len(res.Rows), len(res.Widths))
	}
	// All-share is the normalization point: CT = 100 in every column.
	var allShare *Table3Row
	for i := range res.Rows {
		if res.Rows[i].Label == "{A,B,C,D,E}" {
			allShare = &res.Rows[i]
		}
		for _, ct := range res.Rows[i].CT {
			if ct <= 0 || ct > 120 {
				t.Errorf("%s: CT out of range: %v", res.Rows[i].Label, res.Rows[i].CT)
			}
		}
	}
	if allShare == nil {
		t.Fatal("all-share row missing")
	}
	for _, ct := range allShare.CT {
		if math.Abs(ct-100) > 1e-9 {
			t.Errorf("all-share CT = %v, want 100", allShare.CT)
		}
	}
	// Paper shape: the spread grows with the TAM width (2.45 -> 7.36 ->
	// 17.18) because the digital time shrinks while the analog
	// serialization chain does not.
	if !(res.Spread[0] < res.Spread[1] && res.Spread[1] < res.Spread[2]) {
		t.Errorf("spread not increasing with width: %v", res.Spread)
	}
	t.Logf("spreads: W=32 %.2f, W=48 %.2f, W=64 %.2f (paper: 2.45, 7.36, 17.18)", res.Spread[0], res.Spread[1], res.Spread[2])
	text := RenderTable3(res)
	if !strings.Contains(text, "Table 3") || !strings.Contains(text, "W=64") {
		t.Error("table 3 rendering broken")
	}
}

func TestTable4ReproducesHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	// A reduced sweep keeps the test fast; the full sweep runs in the
	// benchmark harness.
	res, err := Table4(nil, []int{32, 64}, []core.Weights{{Time: 0.5, Area: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.ExhaustiveNEval != 26 {
			t.Errorf("W=%d: exhaustive NEval = %d, want 26", c.Width, c.ExhaustiveNEval)
		}
		if c.HeuristicNEval >= 26 || c.HeuristicNEval < 4 {
			t.Errorf("W=%d: heuristic NEval = %d, want in [4,26)", c.Width, c.HeuristicNEval)
		}
		if c.HeuristicCost < c.ExhaustiveCost-1e-9 {
			t.Errorf("W=%d: heuristic beat exhaustive", c.Width)
		}
	}
	if res.OptimalFraction() < 0.5 {
		t.Errorf("heuristic optimal in only %.0f%% of cells", 100*res.OptimalFraction())
	}
	if res.MeanReduction() < 40 {
		t.Errorf("mean reduction %.1f%%, want >= 40%%", res.MeanReduction())
	}
	text := RenderTable4(res)
	if !strings.Contains(text, "Table 4") || !strings.Contains(text, "wT=0.50") {
		t.Error("table 4 rendering broken")
	}
}

func TestFigure5Reproduces(t *testing.T) {
	res, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorPercent <= 0.5 || res.ErrorPercent > 12 {
		t.Errorf("wrapped-vs-direct error = %.2f%%, want a visible but usable error (paper ~5%%)", res.ErrorPercent)
	}
	text := RenderFigure5(res)
	for _, frag := range []string{"Figure 5", "LPF i/p", "Wrapper o/p", "extracted fc"} {
		if !strings.Contains(text, frag) {
			t.Errorf("figure 5 rendering missing %q", frag)
		}
	}
	csv := Figure5CSV(res, 250e3)
	if !strings.HasPrefix(csv, "freq_hz,") || strings.Count(csv, "\n") < 100 {
		t.Error("figure 5 CSV broken")
	}
}

func TestSection5Facts(t *testing.T) {
	f, err := Section5()
	if err != nil {
		t.Fatal(err)
	}
	if f.FlashComparators8 != 256 || f.ModularComparators8 != 32 {
		t.Errorf("comparators = %d/%d, want 256/32", f.FlashComparators8, f.ModularComparators8)
	}
	if f.DACResistorRatio != 8 {
		t.Errorf("resistor ratio = %v, want 8", f.DACResistorRatio)
	}
	if f.WrapperAreaMM2 != 0.02 {
		t.Errorf("area = %v", f.WrapperAreaMM2)
	}
	text := RenderSection5(f)
	for _, frag := range []string{"256", "32", "0.02", "core A"} {
		if !strings.Contains(text, frag) {
			t.Errorf("section 5 rendering missing %q", frag)
		}
	}
}

func TestRenderSpectrumEdgeCases(t *testing.T) {
	res, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// Tiny plot dimensions are clamped, not broken.
	out := RenderSpectrum(res.StimulusSpectrum, 250e3, 2, 1)
	if !strings.Contains(out, "kHz") {
		t.Error("clamped rendering broken")
	}
	// maxFreq below the first bin yields the empty-data message or a
	// plot with only DC; either way it must not panic.
	_ = RenderSpectrum(res.StimulusSpectrum, 1, 20, 5)
}
