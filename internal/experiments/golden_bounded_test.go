package experiments

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/wrapper"
)

// Bounded mode's own golden snapshot. The paper tables pin the
// unbounded solvers; this file pins the opt-in branch-and-bound mode on
// the same grid: its costs and selections must equal the unbounded
// golden bit for bit (pruning is an exact transformation), while its
// NEval and Pruned counts — how much packing the bound saved — are
// contract numbers of their own, captured in
// testdata/golden_bounded.json and regenerated with the same -update
// flag as the main snapshot.
type goldenBoundedCell struct {
	Width      int    `json:"width"`
	WT         uint64 `json:"wt_bits"`
	ExhCost    uint64 `json:"exh_cost_bits"`
	ExhNEval   int    `json:"exh_neval"`
	ExhPruned  int    `json:"exh_pruned"`
	ExhSel     string `json:"exh_sel"`
	HeurCost   uint64 `json:"heur_cost_bits"`
	HeurNEval  int    `json:"heur_neval"`
	HeurPruned int    `json:"heur_pruned"`
	HeurSel    string `json:"heur_sel"`
}

type goldenBounded struct {
	Cells []goldenBoundedCell `json:"cells"`
}

// boundedCells runs both solvers in Bounded mode over the paper grid,
// weights-major like Table 4, and returns one row per cell.
func boundedCells(t *testing.T) []goldenBoundedCell {
	t.Helper()
	d := Design()
	names := d.AnalogNames()
	stairs := wrapper.NewStaircaseCache(PaperWidths[len(PaperWidths)-1])
	caches := make(map[int]*core.ScheduleCache, len(PaperWidths))
	for _, w := range PaperWidths {
		caches[w] = core.NewScheduleCache()
	}
	var cells []goldenBoundedCell
	for _, wt := range PaperWeightSettings {
		for _, w := range PaperWidths {
			pl := core.NewPlanner(d, w, wt)
			pl.CostModel = analog.PaperCostModel()
			pl.Cache = caches[w]
			pl.Staircases = stairs
			pl.Bounded = true
			ex, err := pl.Exhaustive()
			if err != nil {
				t.Fatalf("bounded exhaustive W=%d wT=%v: %v", w, wt.Time, err)
			}
			h, err := pl.CostOptimizer()
			if err != nil {
				t.Fatalf("bounded cost-optimizer W=%d wT=%v: %v", w, wt.Time, err)
			}
			cells = append(cells, goldenBoundedCell{
				Width:      w,
				WT:         math.Float64bits(wt.Time),
				ExhCost:    math.Float64bits(ex.Best.Cost),
				ExhNEval:   ex.NEval,
				ExhPruned:  ex.Pruned,
				ExhSel:     ex.Best.Label(names),
				HeurCost:   math.Float64bits(h.Best.Cost),
				HeurNEval:  h.NEval,
				HeurPruned: h.Pruned,
				HeurSel:    h.Best.Label(names),
			})
		}
	}
	return cells
}

func loadGoldenBounded(t *testing.T) *goldenBounded {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_bounded.json")
	if err != nil {
		t.Fatal(err)
	}
	var g goldenBounded
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	return &g
}

// TestBoundedBitIdenticalToGolden holds bounded mode to its snapshot
// and cross-checks it against the unbounded golden: identical cost bits
// and selections cell by cell, with the pruned candidates exactly
// accounting for the evaluations the unbounded solver ran.
func TestBoundedBitIdenticalToGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	g := loadGoldenBounded(t)
	base := loadGolden(t)
	cells := boundedCells(t)
	if len(cells) != len(g.Cells) {
		t.Fatalf("cells = %d, want %d", len(cells), len(g.Cells))
	}
	if len(cells) != len(base.Table4Cells) {
		t.Fatalf("bounded grid has %d cells, Table 4 golden %d", len(cells), len(base.Table4Cells))
	}
	for i, want := range g.Cells {
		if cells[i] != want {
			t.Errorf("cell %d (W=%d): bounded run %+v diverged from golden %+v", i, cells[i].Width, cells[i], want)
		}
		t4 := base.Table4Cells[i]
		if cells[i].Width != t4.Width || cells[i].WT != t4.WT {
			t.Fatalf("cell %d: grid order diverged from Table 4 golden", i)
		}
		if cells[i].ExhCost != t4.ExhCost || cells[i].ExhSel != t4.ExhSel {
			t.Errorf("cell %d (W=%d): bounded exhaustive result differs from unbounded golden", i, cells[i].Width)
		}
		if cells[i].HeurCost != t4.HeurCost || cells[i].HeurSel != t4.HeurSel {
			t.Errorf("cell %d (W=%d): bounded heuristic result differs from unbounded golden", i, cells[i].Width)
		}
		if cells[i].ExhNEval+cells[i].ExhPruned != t4.ExhNEval {
			t.Errorf("cell %d (W=%d): exhaustive NEval %d + pruned %d != unbounded %d",
				i, cells[i].Width, cells[i].ExhNEval, cells[i].ExhPruned, t4.ExhNEval)
		}
		if cells[i].HeurNEval+cells[i].HeurPruned != t4.HeurNEval {
			t.Errorf("cell %d (W=%d): heuristic NEval %d + pruned %d != unbounded %d",
				i, cells[i].Width, cells[i].HeurNEval, cells[i].HeurPruned, t4.HeurNEval)
		}
	}
}

// TestUpdateBoundedGoldenSnapshot rewrites testdata/golden_bounded.json
// when run with -update, alongside the main snapshot; otherwise it only
// checks that the snapshot parses.
func TestUpdateBoundedGoldenSnapshot(t *testing.T) {
	if !*updateGolden {
		loadGoldenBounded(t)
		t.Skip("pass -update to regenerate testdata/golden_bounded.json")
	}
	g := goldenBounded{Cells: boundedCells(t)}
	data, err := json.MarshalIndent(&g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_bounded.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("regenerated testdata/golden_bounded.json — record why in CHANGES.md")
}
