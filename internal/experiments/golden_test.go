package experiments

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// updateGolden regenerates testdata/golden_tables.json from the current
// code:
//
//	go test ./internal/experiments -run TestUpdateGoldenSnapshot -update
//
// Only legitimate after an intentional result change — see README.md in
// this directory for the procedure.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_tables.json from the current code")

// The golden snapshot in testdata/golden_tables.json was captured from
// the straightforward pre-optimization implementation (PR 1). Every
// perf layer added since — bitmask occupancy, merged candidate sweeps,
// pruned option scans, the design-level staircase cache — claims to be
// an exact transformation, so the tables must reproduce it bit for bit:
// float64 payloads are compared as raw bits, not within an epsilon. If
// an optimization legitimately needs to change these numbers, that is a
// result change, not a perf change; regenerate the snapshot and say so
// in the change log.
type goldenRow struct {
	Label string   `json:"label"`
	CT    []uint64 `json:"ct_bits"`
}
type goldenCell struct {
	Width     int    `json:"width"`
	WT        uint64 `json:"wt_bits"`
	ExhCost   uint64 `json:"exh_cost_bits"`
	ExhNEval  int    `json:"exh_neval"`
	ExhSel    string `json:"exh_sel"`
	HeurCost  uint64 `json:"heur_cost_bits"`
	HeurNEval int    `json:"heur_neval"`
	HeurSel   string `json:"heur_sel"`
	Reduction uint64 `json:"reduction_bits"`
	Optimal   bool   `json:"optimal"`
}
type golden struct {
	Table3Widths []int        `json:"table3_widths"`
	Table3Spread []uint64     `json:"table3_spread_bits"`
	Table3Lowest []string     `json:"table3_lowest"`
	Table3Rows   []goldenRow  `json:"table3_rows"`
	Table4Cells  []goldenCell `json:"table4_cells"`

	// Human-readable duplicates of the headline numbers, for reviewers
	// diffing the snapshot; the tests compare only the bit fields.
	Table3SpreadStr   []string `json:"table3_spread_str"`
	MeanReductionStr  string   `json:"mean_reduction_str"`
	OptimalPercentStr string   `json:"optimal_percent_str"`
}

func loadGolden(t *testing.T) *golden {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_tables.json")
	if err != nil {
		t.Fatal(err)
	}
	var g golden
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	return &g
}

func TestTable3BitIdenticalToGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("TAM sweeps are slow")
	}
	g := loadGolden(t)
	res, err := Table3(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkTable3Golden(t, g, res)
}

// checkTable3Golden compares a Table 3 result — however produced —
// against the golden snapshot, bit for bit.
func checkTable3Golden(t *testing.T, g *golden, res *Table3Result) {
	t.Helper()
	if len(res.Widths) != len(g.Table3Widths) {
		t.Fatalf("widths = %v, want %v", res.Widths, g.Table3Widths)
	}
	for i, w := range g.Table3Widths {
		if res.Widths[i] != w {
			t.Fatalf("widths = %v, want %v", res.Widths, g.Table3Widths)
		}
		if got, want := math.Float64bits(res.Spread[i]), g.Table3Spread[i]; got != want {
			t.Errorf("spread[W=%d] = %v (bits %#x), want bits %#x", w, res.Spread[i], got, want)
		}
		if res.Lowest[i] != g.Table3Lowest[i] {
			t.Errorf("lowest[W=%d] = %q, want %q", w, res.Lowest[i], g.Table3Lowest[i])
		}
	}
	if len(res.Rows) != len(g.Table3Rows) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(g.Table3Rows))
	}
	for i, want := range g.Table3Rows {
		got := res.Rows[i]
		if got.Label != want.Label {
			t.Errorf("row %d label = %q, want %q", i, got.Label, want.Label)
			continue
		}
		for k := range want.CT {
			if math.Float64bits(got.CT[k]) != want.CT[k] {
				t.Errorf("row %s CT[W=%d] = %v, bits differ from golden", got.Label, g.Table3Widths[k], got.CT[k])
			}
		}
	}
}

func TestTable4BitIdenticalToGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("solver sweeps are slow")
	}
	g := loadGolden(t)
	res, err := Table4(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkTable4Golden(t, g, res)
}

// checkTable4Golden compares a Table 4 result — however produced —
// against the golden snapshot, bit for bit, including the headline
// numbers the paper quotes.
func checkTable4Golden(t *testing.T, g *golden, res *Table4Result) {
	t.Helper()
	if len(res.Cells) != len(g.Table4Cells) {
		t.Fatalf("cells = %d, want %d", len(res.Cells), len(g.Table4Cells))
	}
	for i, want := range g.Table4Cells {
		got := res.Cells[i]
		if got.Width != want.Width || math.Float64bits(got.Weights.Time) != want.WT {
			t.Errorf("cell %d: grid position (W=%d wT=%v) diverged", i, got.Width, got.Weights.Time)
			continue
		}
		if math.Float64bits(got.ExhaustiveCost) != want.ExhCost ||
			got.ExhaustiveNEval != want.ExhNEval || got.ExhaustiveSel != want.ExhSel {
			t.Errorf("cell %d (W=%d wT=%v): exhaustive (%v, %d, %s) diverged from golden (%v, %d, %s)",
				i, got.Width, got.Weights.Time, got.ExhaustiveCost, got.ExhaustiveNEval, got.ExhaustiveSel,
				math.Float64frombits(want.ExhCost), want.ExhNEval, want.ExhSel)
		}
		if math.Float64bits(got.HeuristicCost) != want.HeurCost ||
			got.HeuristicNEval != want.HeurNEval || got.HeuristicSel != want.HeurSel {
			t.Errorf("cell %d (W=%d wT=%v): heuristic (%v, %d, %s) diverged from golden (%v, %d, %s)",
				i, got.Width, got.Weights.Time, got.HeuristicCost, got.HeuristicNEval, got.HeuristicSel,
				math.Float64frombits(want.HeurCost), want.HeurNEval, want.HeurSel)
		}
		if math.Float64bits(got.ReductionPercent) != want.Reduction || got.Optimal != want.Optimal {
			t.Errorf("cell %d (W=%d wT=%v): reduction/optimal diverged", i, got.Width, got.Weights.Time)
		}
	}
	// The headline numbers the paper (and CHANGES.md) quote.
	if got := res.MeanReduction(); math.Abs(got-53.84615384615385) > 1e-12 {
		t.Errorf("mean reduction = %v, want 53.846...", got)
	}
	if got := 100 * res.OptimalFraction(); math.Abs(got-93.33333333333333) > 1e-12 {
		t.Errorf("optimal%% = %v, want 93.333...", got)
	}
}

// TestShardMergeRoundTripBitIdenticalToGolden is the distributed-run
// contract on the full paper grid: the two halves of a 2-way shard,
// serialized to the on-disk JSON format and read back (simulating the
// trip between machines), must merge into exactly the unsharded Table 3
// and Table 4 — raw float64 bits, not an epsilon — which are in turn
// held to the golden snapshot.
func TestShardMergeRoundTripBitIdenticalToGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("two full grid runs are slow")
	}
	g := Grid{
		Table3Widths:  Table3Widths,
		Table4Widths:  PaperWidths,
		Table4Weights: PaperWeightSettings,
	}

	dir := t.TempDir()
	parts := make([]*ShardResult, 2)
	for shard := range parts {
		r, err := RunShard(nil, g, shard, 2)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "shard.json")
		if err := WriteShardFile(path, r); err != nil {
			t.Fatal(err)
		}
		if parts[shard], err = ReadShardFile(path); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := Merge(parts[0], parts[1])
	if err != nil {
		t.Fatal(err)
	}

	t3, err := Table3(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Table4(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireTable3Bits(t, merged.Table3, t3)
	requireTable4Bits(t, merged.Table4, t4)

	gold := loadGolden(t)
	checkTable3Golden(t, gold, merged.Table3)
	checkTable4Golden(t, gold, merged.Table4)
}

// TestUpdateGoldenSnapshot rewrites the golden snapshot when run with
// -update; otherwise it only checks that the snapshot parses. See
// README.md in this directory for when regeneration is legitimate.
func TestUpdateGoldenSnapshot(t *testing.T) {
	if !*updateGolden {
		loadGolden(t)
		t.Skip("pass -update to regenerate testdata/golden_tables.json")
	}
	t3, err := Table3(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Table4(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := golden{
		Table3Widths:      t3.Widths,
		Table3Lowest:      t3.Lowest,
		MeanReductionStr:  strconv.FormatFloat(t4.MeanReduction(), 'g', -1, 64),
		OptimalPercentStr: strconv.FormatFloat(100*t4.OptimalFraction(), 'g', -1, 64),
	}
	for _, s := range t3.Spread {
		g.Table3Spread = append(g.Table3Spread, math.Float64bits(s))
		g.Table3SpreadStr = append(g.Table3SpreadStr, strconv.FormatFloat(s, 'g', -1, 64))
	}
	for _, row := range t3.Rows {
		gr := goldenRow{Label: row.Label}
		for _, ct := range row.CT {
			gr.CT = append(gr.CT, math.Float64bits(ct))
		}
		g.Table3Rows = append(g.Table3Rows, gr)
	}
	for _, c := range t4.Cells {
		g.Table4Cells = append(g.Table4Cells, goldenCell{
			Width:     c.Width,
			WT:        math.Float64bits(c.Weights.Time),
			ExhCost:   math.Float64bits(c.ExhaustiveCost),
			ExhNEval:  c.ExhaustiveNEval,
			ExhSel:    c.ExhaustiveSel,
			HeurCost:  math.Float64bits(c.HeuristicCost),
			HeurNEval: c.HeuristicNEval,
			HeurSel:   c.HeuristicSel,
			Reduction: math.Float64bits(c.ReductionPercent),
			Optimal:   c.Optimal,
		})
	}
	data, err := json.MarshalIndent(&g, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("testdata/golden_tables.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("regenerated testdata/golden_tables.json — record why in CHANGES.md")
}
