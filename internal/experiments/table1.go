package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mixsoc/internal/analog"
	"mixsoc/internal/partition"
)

// Table1Row is one sharing combination of Table 1.
type Table1Row struct {
	Wrappers int     // number of analog wrappers N_w
	Label    string  // shared groups, e.g. "{A,B,E}{C,D}"
	CA       float64 // area overhead cost, equation (1)
	LTB      float64 // normalized analog test-time lower bound
}

// Table1 computes C_A and the normalized LTB for every candidate
// combination, using the given cost model (zero-value Rule/Area fields
// default as in analog.DefaultCostModel).
func Table1(cm analog.CostModel) ([]Table1Row, error) {
	if cm.Area == nil {
		cm = analog.DefaultCostModel()
	}
	cores := analog.PaperCores()
	combos := partition.Enumerate(len(cores), analog.Classes(cores), partition.PaperPolicy)
	names := analog.Names(cores)

	rows := make([]Table1Row, 0, len(combos))
	for _, p := range combos {
		ca, err := cm.AreaOverheadPercent(cores, p)
		if err != nil {
			return nil, err
		}
		ltb, err := analog.NormalizedLTB(cores, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Wrappers: p.Wrappers(),
			Label:    p.FormatShared(names),
			CA:       ca,
			LTB:      ltb,
		})
	}
	// Paper order: descending wrapper count, then descending C_A.
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Wrappers != rows[b].Wrappers {
			return rows[a].Wrappers > rows[b].Wrappers
		}
		if rows[a].CA != rows[b].CA {
			return rows[a].CA > rows[b].CA
		}
		return rows[a].Label < rows[b].Label
	})
	return rows, nil
}

// RenderTable1 formats the rows like the paper's Table 1.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: area overhead cost C_A and normalized test-time lower bound LTB\n")
	sb.WriteString("for all wrapper-sharing combinations (cores A-E of Table 2)\n\n")
	fmt.Fprintf(&sb, "%-3s  %-22s  %8s  %8s\n", "Nw", "shared combination", "C_A", "LTB")
	prev := -1
	for _, r := range rows {
		nw := ""
		if r.Wrappers != prev {
			nw = fmt.Sprintf("%d", r.Wrappers)
			prev = r.Wrappers
		}
		fmt.Fprintf(&sb, "%-3s  %-22s  %8.1f  %8.1f\n", nw, r.Label, r.CA, r.LTB)
	}
	return sb.String()
}

// RenderTable2 formats the analog core test requirements (the paper's
// Table 2, which is input data for everything else).
func RenderTable2() string {
	var sb strings.Builder
	sb.WriteString("Table 2: test requirements for the analog cores\n\n")
	fmt.Fprintf(&sb, "%-6s %-14s %9s %9s %9s %10s %3s %4s\n",
		"core", "test", "f_low", "f_high", "f_sample", "cycles", "W", "bits")
	for _, c := range analog.PaperCores() {
		fmt.Fprintf(&sb, "core %s: %s\n", c.Name, c.Kind)
		for i := range c.Tests {
			t := &c.Tests[i]
			fmt.Fprintf(&sb, "%-6s %-14s %9s %9s %9s %10d %3d %4d\n",
				"", t.Name, t.FinLow, t.FinHigh, t.Fsample, t.Cycles, t.TAMWidth, t.Resolution)
		}
	}
	fmt.Fprintf(&sb, "\ntotal test time: %d cycles (A=B=%d, C=%d, D=%d, E=%d)\n",
		analog.PaperCyclesTotal, analog.PaperCyclesIQ, analog.PaperCyclesCODEC,
		analog.PaperCyclesDown, analog.PaperCyclesAmp)
	return sb.String()
}
