package experiments

import (
	"context"
	"fmt"
	"strings"

	"mixsoc/internal/analog"
	"mixsoc/internal/core"
	"mixsoc/internal/wrapper"
)

// Table4Cell compares exhaustive evaluation with Cost_Optimizer at one
// (width, weights) point.
type Table4Cell struct {
	Width   int
	Weights core.Weights

	ExhaustiveCost  float64
	ExhaustiveNEval int
	ExhaustiveSel   string

	HeuristicCost  float64
	HeuristicNEval int
	HeuristicSel   string

	ReductionPercent float64 // evaluations saved by the heuristic
	Optimal          bool    // heuristic cost equals the exhaustive optimum
}

// Table4Result groups cells by weight setting, as the paper prints them.
type Table4Result struct {
	Widths  []int
	Weights []core.Weights
	Cells   []Table4Cell // len = len(Widths) * len(Weights), weights-major
}

// Table4 runs both solvers across the width sweep for each weight
// setting. The grid cells fan out across the worker pool, and all cells
// at one TAM width — across weight settings, and between the exhaustive
// and heuristic solver of a cell — share one schedule cache, since test
// schedules depend only on the width and the sharing configuration; the
// whole grid shares one wrapper staircase cache across widths. Cells
// are merged weights-major by index, so the table (costs, NEval,
// selections) is identical to a sequential run.
func Table4(d *core.Design, widths []int, weights []core.Weights) (*Table4Result, error) {
	return Table4Context(context.Background(), d, widths, weights)
}

// Table4Context is Table4 under a context; see Table4SelectContext for
// the cancellation contract.
func Table4Context(ctx context.Context, d *core.Design, widths []int, weights []core.Weights) (*Table4Result, error) {
	if len(widths) == 0 {
		widths = PaperWidths
	}
	if len(weights) == 0 {
		weights = PaperWeightSettings
	}
	cells, err := Table4SelectContext(ctx, d, widths, weights, nil)
	if err != nil {
		return nil, err
	}
	return &Table4Result{Widths: widths, Weights: weights, Cells: cells}, nil
}

// Table4Select computes only the Table 4 cells sel admits, in the same
// weights-major order — and with the same per-cell numbers, bit for bit
// — as the full grid; a nil sel admits every cell. Schedule and
// staircase caches cover exactly the selected widths, so a sharded run
// never packs a schedule (or designs a wrapper) its cells do not need.
func Table4Select(d *core.Design, widths []int, weights []core.Weights, sel func(width int, wt core.Weights) bool) ([]Table4Cell, error) {
	return Table4SelectContext(context.Background(), d, widths, weights, sel)
}

// Table4SelectContext is Table4Select under a context: once ctx fires
// no further grid cell is dispatched, the in-flight solvers abort at
// their next cancellation point, and the call returns ctx.Err().
func Table4SelectContext(ctx context.Context, d *core.Design, widths []int, weights []core.Weights, sel func(width int, wt core.Weights) bool) ([]Table4Cell, error) {
	if d == nil {
		d = Design()
	}
	if len(widths) == 0 || len(weights) == 0 {
		return nil, fmt.Errorf("experiments: Table 4 needs at least one width and one weight setting")
	}
	// Dense weights-major indices of the selected cells; caches cover
	// only their widths.
	keep := make([]int, 0, len(weights)*len(widths))
	maxW := 0
	selWidths := make(map[int]bool, len(widths))
	for k, wt := range weights {
		for ci, w := range widths {
			if sel != nil && !sel(w, wt) {
				continue
			}
			keep = append(keep, k*len(widths)+ci)
			selWidths[w] = true
			maxW = max(maxW, w)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("experiments: Table 4 selection admits no cells")
	}

	names := d.AnalogNames()
	stairs := wrapper.NewStaircaseCache(maxW)
	caches := make(map[int]*core.ScheduleCache, len(selWidths))
	for w := range selWidths {
		caches[w] = core.NewScheduleCache()
	}
	cells := make([]Table4Cell, len(keep))
	errs := make([]error, len(keep))
	outer, inner := core.SplitWorkers(core.DefaultWorkers(), len(keep))
	if err := core.ForEachCtx(ctx, len(keep), outer, func(j int) {
		i := keep[j]
		wt := weights[i/len(widths)]
		w := widths[i%len(widths)]
		pl := core.NewPlanner(d, w, wt)
		pl.CostModel = analog.PaperCostModel()
		pl.Cache = caches[w]
		pl.Staircases = stairs
		pl.Workers = inner
		ex, err := pl.ExhaustiveContext(ctx)
		if err != nil {
			errs[j] = err
			return
		}
		h, err := pl.CostOptimizerContext(ctx)
		if err != nil {
			errs[j] = err
			return
		}
		cells[j] = Table4Cell{
			Width:            w,
			Weights:          wt,
			ExhaustiveCost:   ex.Best.Cost,
			ExhaustiveNEval:  ex.NEval,
			ExhaustiveSel:    ex.Best.Label(names),
			HeuristicCost:    h.Best.Cost,
			HeuristicNEval:   h.NEval,
			HeuristicSel:     h.Best.Label(names),
			ReductionPercent: h.ReductionPercent(),
			Optimal:          h.Best.Cost <= ex.Best.Cost+1e-9,
		}
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// RenderTable4 formats the result like the paper's Table 4.
func RenderTable4(r *Table4Result) string {
	var sb strings.Builder
	sb.WriteString("Table 4: Cost_Optimizer versus exhaustive evaluation\n\n")
	i := 0
	for _, wt := range r.Weights {
		fmt.Fprintf(&sb, "weights wT=%.2f wA=%.2f\n", wt.Time, wt.Area)
		fmt.Fprintf(&sb, "%4s  %8s %5s %-16s  %8s %5s %-16s  %6s %s\n",
			"W", "C(exh)", "NEval", "selected", "C(heur)", "NEval", "selected", "dE(%)", "opt")
		for range r.Widths {
			c := r.Cells[i]
			opt := "yes"
			if !c.Optimal {
				opt = "NO"
			}
			fmt.Fprintf(&sb, "%4d  %8.1f %5d %-16s  %8.1f %5d %-16s  %6.1f %s\n",
				c.Width, c.ExhaustiveCost, c.ExhaustiveNEval, c.ExhaustiveSel,
				c.HeuristicCost, c.HeuristicNEval, c.HeuristicSel,
				c.ReductionPercent, opt)
			i++
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("(paper: NEval always 26 exhaustive; heuristic mostly 10, one 7;\n")
	sb.WriteString(" reductions 61.5% and 73.0%; heuristic optimal in all but one case)\n")
	return sb.String()
}

// OptimalFraction returns the share of cells where the heuristic matched
// the exhaustive optimum.
func (r *Table4Result) OptimalFraction() float64 {
	if len(r.Cells) == 0 {
		return 0
	}
	n := 0
	for _, c := range r.Cells {
		if c.Optimal {
			n++
		}
	}
	return float64(n) / float64(len(r.Cells))
}

// MeanReduction returns the average evaluation reduction across cells.
func (r *Table4Result) MeanReduction() float64 {
	if len(r.Cells) == 0 {
		return 0
	}
	var s float64
	for _, c := range r.Cells {
		s += c.ReductionPercent
	}
	return s / float64(len(r.Cells))
}
