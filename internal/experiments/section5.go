package experiments

import (
	"fmt"
	"strings"

	"mixsoc/internal/analog"
	"mixsoc/internal/wrapsim"
)

// Section5Facts are the implementation-cost numbers Section 5 reports
// for the modular converter architecture and the wrapper test chip.
type Section5Facts struct {
	FlashComparators8   int     // 8-bit flash ADC comparators (256)
	ModularComparators8 int     // modular pipelined 8-bit ADC comparators (32)
	DACResistorRatio    float64 // flash/modular DAC resistor count ratio (8x)
	WrapperAreaMM2      float64 // 0.5 µm test chip area (0.02 mm²)
	WrapperCoreRatio    float64 // wrapper area / industrial core area (~1/8)
}

// Section5 computes the architecture facts from the converter
// inventories; the test-chip area and core ratio are the published
// measurements.
func Section5() (Section5Facts, error) {
	flash, err := analog.FlashInventory(8)
	if err != nil {
		return Section5Facts{}, err
	}
	mod, err := analog.ModularInventory(8)
	if err != nil {
		return Section5Facts{}, err
	}
	// Per-DAC ladder: flash/single-ladder needs 2^8 resistors; the
	// modular DAC needs 2·2^4.
	return Section5Facts{
		FlashComparators8:   flash.Comparators,
		ModularComparators8: mod.Comparators,
		DACResistorRatio:    256.0 / 32.0,
		WrapperAreaMM2:      wrapsim.TestChipAreaMM2(),
		WrapperCoreRatio:    1.0 / 8.0,
	}, nil
}

// RenderSection5 formats the facts with the paper's claims alongside.
func RenderSection5(f Section5Facts) string {
	var sb strings.Builder
	sb.WriteString("Section 5: analog wrapper implementation facts\n\n")
	fmt.Fprintf(&sb, "8-bit flash ADC comparators:     %4d (paper: 256)\n", f.FlashComparators8)
	fmt.Fprintf(&sb, "8-bit modular ADC comparators:   %4d (paper: 32)\n", f.ModularComparators8)
	fmt.Fprintf(&sb, "DAC resistor reduction:          %4.0fx (paper: 8x)\n", f.DACResistorRatio)
	fmt.Fprintf(&sb, "wrapper test chip area (0.5um):  %.2f mm^2 (paper: 0.02 mm^2)\n", f.WrapperAreaMM2)
	fmt.Fprintf(&sb, "wrapper/core area ratio:         %.3f (paper: ~1/8 of a 0.12um core)\n", f.WrapperCoreRatio)

	sb.WriteString("\nper-core wrapper areas under the default physical model:\n")
	pm := analog.DefaultPhysicalModel()
	for _, c := range analog.PaperCores() {
		req := c.Requirements()
		fmt.Fprintf(&sb, "  core %s (%s): res %2d bits, fs %9s, width %2d -> area %7.1f units\n",
			c.Name, c.Kind, req.Resolution, req.Fsample, req.TAMWidth, pm.WrapperArea(req))
	}
	return sb.String()
}
