package mixsoc

import (
	"strings"
	"testing"
)

// The root package is a facade; these tests exercise the public entry
// points end to end the way a downstream user would.

func TestP93791MPlanEndToEnd(t *testing.T) {
	d := P93791M()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Plan(d, 32, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost <= 0 || res.Best.Cost > 100 {
		t.Errorf("cost = %v", res.Best.Cost)
	}
	if res.NEval >= res.Candidates {
		t.Errorf("heuristic did not prune: %d of %d", res.NEval, res.Candidates)
	}
	label := res.Best.Label(d.AnalogNames())
	if !strings.HasPrefix(label, "{") {
		t.Errorf("label = %q", label)
	}

	// The chosen configuration must schedule cleanly.
	s, err := ScheduleFor(d, res.Best.Partition, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan != res.Best.TestTime {
		t.Errorf("schedule makespan %d != planned %d", s.Makespan, res.Best.TestTime)
	}
}

func TestPlanExhaustiveAgrees(t *testing.T) {
	d := P93791M()
	ex, err := PlanExhaustive(d, 40, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Plan(d, 40, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	if h.Best.Cost < ex.Best.Cost-1e-9 {
		t.Error("heuristic below exhaustive optimum (impossible)")
	}
}

func TestLoadAndFormatSOC(t *testing.T) {
	d := P93791()
	text := FormatSOC(d)
	back, err := LoadSOC(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != d.String() {
		t.Errorf("round trip changed SOC: %s vs %s", back, d)
	}
}

func TestSweepFacade(t *testing.T) {
	d := P93791M()
	pts, err := Sweep(d, []int{32, 48}, []Weights{EqualWeights, {Time: 0.25, Area: 0.75}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	best, err := BestSweepPoint(pts)
	if err != nil {
		t.Fatal(err)
	}
	if best.Result.Best.Cost <= 0 {
		t.Errorf("best cost = %v", best.Result.Best.Cost)
	}
}

func TestAnalogCoreFormatFacade(t *testing.T) {
	cores := PaperAnalogCores()
	text := FormatAnalogCores(cores)
	back, err := LoadAnalogCores(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(cores) {
		t.Fatalf("cores = %d, want %d", len(back), len(cores))
	}
	if back[2].Name != "C" || back[2].Tests[2].Name != "THD" {
		t.Errorf("core C round trip broken: %+v", back[2])
	}
}

func TestD281Facade(t *testing.T) {
	soc := D281()
	if err := soc.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(soc.Cores()) != 8 {
		t.Errorf("d281 cores = %d, want 8", len(soc.Cores()))
	}
	// The small SOC plans quickly with a couple of analog cores.
	d := &Design{Name: "d281m", Digital: soc, Analog: PaperAnalogCores()[:2]}
	res, err := Plan(d, 16, EqualWeights)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ScheduleFor(d, res.Best.Partition, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s.CSV(), "job,group,width,") {
		t.Error("schedule CSV broken")
	}
}

func TestWrapperAccuracyFacade(t *testing.T) {
	res, err := WrapperAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorPercent <= 0 || res.ErrorPercent > 12 {
		t.Errorf("error%% = %v", res.ErrorPercent)
	}
}

func TestCustomDesignThroughFacade(t *testing.T) {
	// A user-built design: a small digital SOC plus two analog cores.
	socText := `
SocName demo
Module 1
  Name dsp
  Inputs 16
  Outputs 16
  ScanChains 4
  ScanChainLengths 100 90 80 70
  Test 1
    Patterns 500
  EndTest
EndModule
Module 2
  Name ctrl
  Inputs 8
  Outputs 8
  Test 1
    Patterns 200
    ScanUse 0
  EndTest
EndModule
`
	soc, err := LoadSOC(strings.NewReader(socText))
	if err != nil {
		t.Fatal(err)
	}
	d := &Design{Name: "demo-m", Digital: soc, Analog: []*AnalogCore{
		{Name: "PLL", Kind: "clock synthesis", Tests: []AnalogTest{
			{Name: "lock", FinLow: 1 * MHz, FinHigh: 1 * MHz, Fsample: 8 * MHz, Cycles: 20000, TAMWidth: 2, Resolution: 8},
		}},
		{Name: "AFE", Kind: "front end", Tests: []AnalogTest{
			{Name: "gain", FinLow: 10 * KHz, FinHigh: 20 * KHz, Fsample: 1 * MHz, Cycles: 15000, TAMWidth: 1, Resolution: 8},
			{Name: "thd", FinLow: 1 * KHz, FinHigh: 5 * KHz, Fsample: 1 * MHz, Cycles: 30000, TAMWidth: 1, Resolution: 8},
		}},
	}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Plan(d, 16, Weights{Time: 0.6, Area: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ScheduleFor(d, res.Best.Partition, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
