// Codec-audit: how good does the analog test wrapper have to be?
//
// Run with:
//
//	go run ./examples/codec-audit
//
// Section 5 of the paper shows one wrapped measurement (the cut-off
// frequency test of core A) and reports a ~5% error versus the direct
// analog measurement. Before trusting a wrapper for production test of
// an audio CODEC, a test engineer wants the full picture: how does the
// measurement error move with the wrapper's analog path bandwidth,
// converter linearity, and capture length? This example sweeps those
// knobs around the paper's operating point.
package main

import (
	"fmt"
	"log"

	"mixsoc"
)

func run(mutate func(*mixsoc.WrapperExperiment)) *mixsoc.WrapperAccuracyResult {
	e := mixsoc.PaperWrapperExperiment()
	mutate(&e)
	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	log.SetFlags(0)

	base := run(func(*mixsoc.WrapperExperiment) {})
	fmt.Println("reference (the paper's Figure 5 operating point):")
	fmt.Printf("  true fc %.0f kHz, direct %.2f kHz, wrapped %.2f kHz, error %.2f%%\n\n",
		base.TrueFc/1e3, base.DirectFc/1e3, base.WrappedFc/1e3, base.ErrorPercent)

	fmt.Println("sweep 1: wrapper analog path bandwidth (DAC settling + mux + S/H)")
	fmt.Printf("  %10s  %12s  %8s\n", "bandwidth", "wrapped fc", "error")
	for _, bw := range []float64{150e3, 200e3, 240e3, 300e3, 400e3, 600e3} {
		res := run(func(e *mixsoc.WrapperExperiment) { e.Wrapper.PathBandwidth = bw })
		fmt.Printf("  %7.0f kHz  %9.2f kHz  %7.2f%%\n", bw/1e3, res.WrappedFc/1e3, res.ErrorPercent)
	}
	fmt.Println("  -> the error is dominated by path bandwidth; a 2.5x-fs path")
	fmt.Println("     keeps the fc test under 1% while ~4x-fc gives the paper's ~5%")

	fmt.Println("\nsweep 2: converter INL (both ADC stages and DAC, in LSB)")
	fmt.Printf("  %6s  %12s  %8s\n", "INL", "wrapped fc", "error")
	for _, inl := range []float64{0, 0.3, 0.6, 1.0, 1.5} {
		res := run(func(e *mixsoc.WrapperExperiment) {
			e.Wrapper.ADCINL = inl
			e.Wrapper.DACINL = inl
		})
		fmt.Printf("  %6.1f  %9.2f kHz  %7.2f%%\n", inl, res.WrappedFc/1e3, res.ErrorPercent)
	}
	fmt.Println("  -> smooth INL mostly cancels out of gain ratios; linearity is")
	fmt.Println("     not the limiting factor for a ratio-based fc test")

	fmt.Println("\nsweep 3: capture length (test time vs accuracy)")
	fmt.Printf("  %8s  %10s  %12s  %8s\n", "samples", "cycles", "wrapped fc", "error")
	for _, n := range []int{569, 1138, 2275, 4551, 9102} {
		res := run(func(e *mixsoc.WrapperExperiment) { e.Samples = n })
		fmt.Printf("  %8d  %10d  %9.2f kHz  %7.2f%%\n", n, res.TestCycles, res.WrappedFc/1e3, res.ErrorPercent)
	}
	fmt.Println("  -> beyond ~2k samples the error is systematic, not noise:")
	fmt.Println("     spending more TAM cycles cannot buy it back, which is why")
	fmt.Println("     the paper calibrates the wrapper rather than lengthening tests")

	fmt.Println("\nsweep 4: core under test (cut-off position vs stimulus tones)")
	fmt.Printf("  %10s  %12s  %8s\n", "true fc", "wrapped fc", "error")
	for _, fc := range []float64{30e3, 45e3, 60e3, 90e3, 120e3} {
		res := run(func(e *mixsoc.WrapperExperiment) { e.FilterCutoff = fc })
		fmt.Printf("  %7.0f kHz  %9.2f kHz  %7.2f%%\n", fc/1e3, res.WrappedFc/1e3, res.ErrorPercent)
	}
	fmt.Println("  -> cores with cut-offs near the top stimulus tone suffer most")
	fmt.Println("     from the wrapper's own roll-off; pick tones accordingly")
}
