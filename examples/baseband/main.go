// Baseband: test planning for a consumer-electronics SOC built from
// scratch with the public API.
//
// Run with:
//
//	go run ./examples/baseband
//
// The paper motivates its method with high-volume, low-margin consumer
// parts (MP3 players, PDAs, cellular basebands): many digital cores plus
// a handful of low-to-mid-frequency analog cores. This example builds
// such a chip — a small digital modem subsystem plus four analog cores —
// and shows how the best wrapper-sharing architecture changes across TAM
// widths and cost weightings, the trade-off at the heart of Section 4.
package main

import (
	"fmt"
	"log"
	"strings"

	"mixsoc"
)

// digitalSubsystem describes the modem/control cores in the ITC'02-style
// text format (it could equally be built with struct literals).
const digitalSubsystem = `
SocName mp3soc
Module 1
  Name viterbi
  Inputs 64
  Outputs 32
  ScanChains 12
  ScanChainLengths 210 208 206 205 203 201 200 198 196 195 193 191
  Test 1
    Patterns 220
  EndTest
EndModule
Module 2
  Name fft
  Inputs 48
  Outputs 48
  ScanChains 8
  ScanChainLengths 180 178 176 174 172 170 168 166
  Test 1
    Patterns 260
  EndTest
EndModule
Module 3
  Name audio_dsp
  Inputs 40
  Outputs 24
  ScanChains 10
  ScanChainLengths 150 149 148 146 145 143 142 140 139 137
  Test 1
    Patterns 300
  EndTest
EndModule
Module 4
  Name usb_ctrl
  Inputs 30
  Outputs 30
  ScanChains 4
  ScanChainLengths 120 118 116 114
  Test 1
    Patterns 180
  EndTest
EndModule
Module 5
  Name sram_bist
  Inputs 20
  Outputs 10
  Test 1
    Patterns 4000
    ScanUse 0
  EndTest
EndModule
Module 6
  Name glue
  Inputs 90
  Outputs 60
  Test 1
    Patterns 600
    ScanUse 0
  EndTest
EndModule
`

func analogCores() []*mixsoc.AnalogCore {
	return []*mixsoc.AnalogCore{
		{Name: "DACpath", Kind: "audio playback path", Tests: []mixsoc.AnalogTest{
			{Name: "Gpb", FinLow: 1 * mixsoc.KHz, FinHigh: 20 * mixsoc.KHz, Fsample: 640 * mixsoc.KHz, Cycles: 60000, TAMWidth: 1, Resolution: 8},
			{Name: "THD", FinLow: 1 * mixsoc.KHz, FinHigh: 10 * mixsoc.KHz, Fsample: 640 * mixsoc.KHz, Cycles: 90000, TAMWidth: 1, Resolution: 12},
		}},
		{Name: "MICpath", Kind: "record path", Tests: []mixsoc.AnalogTest{
			{Name: "Gpb", FinLow: 1 * mixsoc.KHz, FinHigh: 20 * mixsoc.KHz, Fsample: 640 * mixsoc.KHz, Cycles: 55000, TAMWidth: 1, Resolution: 8},
			{Name: "SNR", FinLow: 1 * mixsoc.KHz, FinHigh: 20 * mixsoc.KHz, Fsample: 640 * mixsoc.KHz, Cycles: 70000, TAMWidth: 1, Resolution: 12},
		}},
		{Name: "PLL", Kind: "clock synthesis", Tests: []mixsoc.AnalogTest{
			{Name: "jitter", FinLow: 2 * mixsoc.MHz, FinHigh: 2 * mixsoc.MHz, Fsample: 16 * mixsoc.MHz, Cycles: 40000, TAMWidth: 4, Resolution: 8},
			{Name: "lockrange", FinLow: 1 * mixsoc.MHz, FinHigh: 4 * mixsoc.MHz, Fsample: 16 * mixsoc.MHz, Cycles: 25000, TAMWidth: 2, Resolution: 8},
		}},
		{Name: "LDO", Kind: "supply regulator", Tests: []mixsoc.AnalogTest{
			{Name: "loadstep", FinLow: 0, FinHigh: 0, Fsample: 100 * mixsoc.KHz, Cycles: 8000, TAMWidth: 1, Resolution: 8},
		}},
	}
}

func main() {
	log.SetFlags(0)

	soc, err := mixsoc.LoadSOC(strings.NewReader(digitalSubsystem))
	if err != nil {
		log.Fatal(err)
	}
	design := &mixsoc.Design{Name: "mp3soc-m", Digital: soc, Analog: analogCores()}
	if err := design.Validate(); err != nil {
		log.Fatal(err)
	}
	names := design.AnalogNames()
	fmt.Printf("%s: %d digital cores, %d analog cores\n\n",
		design.Name, len(soc.Cores()), len(design.Analog))

	widths := []int{8, 16, 24, 32}
	weightings := []mixsoc.Weights{
		{Time: 0.75, Area: 0.25}, // test time dominates (high-volume part)
		{Time: 0.5, Area: 0.5},
		{Time: 0.25, Area: 0.75}, // silicon dominates (cost-down respin)
	}

	fmt.Printf("%-18s", "best sharing at")
	for _, w := range widths {
		fmt.Printf("  %14s", fmt.Sprintf("W=%d", w))
	}
	fmt.Println()
	for _, wt := range weightings {
		fmt.Printf("wT=%.2f wA=%.2f   ", wt.Time, wt.Area)
		for _, w := range widths {
			res, err := mixsoc.Plan(design, w, wt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %14s", res.Best.Label(names))
		}
		fmt.Println()
	}

	fmt.Println("\ncost breakdown at W=16:")
	fmt.Printf("%-18s %10s %8s %8s %8s\n", "weights", "cycles", "CT", "CA", "cost")
	for _, wt := range weightings {
		res, err := mixsoc.Plan(design, 16, wt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wT=%.2f wA=%.2f    %10d %8.1f %8.1f %8.2f   -> %s\n",
			wt.Time, wt.Area, res.Best.TestTime, res.Best.CT, res.Best.CA,
			res.Best.Cost, res.Best.Label(names))
	}

	// The area-pressure setting should share more aggressively than the
	// time-pressure setting; show the extremes explicitly.
	timeRes, err := mixsoc.Plan(design, 16, mixsoc.Weights{Time: 0.75, Area: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	areaRes, err := mixsoc.Plan(design, 16, mixsoc.Weights{Time: 0.25, Area: 0.75})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrappers used: %d when test time dominates, %d when area dominates\n",
		timeRes.Best.Partition.Wrappers(), areaRes.Best.Partition.Wrappers())
}
