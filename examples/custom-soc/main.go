// Custom-soc: full control over the planner — policies, exhaustive
// comparison, and schedule inspection.
//
// Run with:
//
//	go run ./examples/custom-soc
//
// This example drives the planner the way the paper's Section 4
// experiments do: it compares the Cost_Optimizer heuristic against
// exhaustive evaluation on the p93791m benchmark, switches between the
// paper's 26-combination candidate policy and the full partition space,
// and renders the winning schedule as an ASCII Gantt chart.
package main

import (
	"fmt"
	"log"

	"mixsoc"
)

func main() {
	log.SetFlags(0)

	design := mixsoc.P93791M()
	names := design.AnalogNames()
	const width = 48

	// 1. Heuristic vs exhaustive, paper policy.
	heur, err := mixsoc.Plan(design, width, mixsoc.EqualWeights)
	if err != nil {
		log.Fatal(err)
	}
	exh, err := mixsoc.PlanExhaustive(design, width, mixsoc.EqualWeights)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("W=%d, wT=wA=0.5, paper candidate policy (%d combinations)\n", width, exh.Candidates)
	fmt.Printf("  exhaustive:     cost %.2f via %s (%d TAM runs)\n",
		exh.Best.Cost, exh.Best.Label(names), exh.NEval)
	fmt.Printf("  cost-optimizer: cost %.2f via %s (%d TAM runs, %.1f%% saved)\n",
		heur.Best.Cost, heur.Best.Label(names), heur.NEval, heur.ReductionPercent())

	// 2. Widen the candidate space to every partition (the paper's set
	// omits two-pairs-plus-singleton configurations; the full space may
	// contain a cheaper plan).
	pl := mixsoc.NewPlanner(design, width, mixsoc.EqualWeights)
	pl.Policy = mixsoc.PolicyFull
	full, err := pl.Exhaustive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull candidate policy (%d combinations):\n", full.Candidates)
	fmt.Printf("  exhaustive:     cost %.2f via %s\n", full.Best.Cost, full.Best.Label(names))
	if full.Best.Cost < exh.Best.Cost-1e-9 {
		fmt.Println("  -> the full space found a plan the paper's policy misses")
	} else {
		fmt.Println("  -> the paper's reduced policy already contains the optimum here")
	}

	// 3. Inspect every evaluated configuration, sorted as reported.
	fmt.Printf("\nall %d evaluations at W=%d (paper policy):\n", len(exh.Evaluated), width)
	fmt.Printf("  %-16s %6s %6s %8s\n", "sharing", "CT", "CA", "cost")
	for _, ev := range exh.Evaluated {
		marker := "  "
		if ev.Cost == exh.Best.Cost {
			marker = "->"
		}
		fmt.Printf("%s%-16s %6.1f %6.1f %8.2f\n", marker, ev.Label(names), ev.CT, ev.CA, ev.Cost)
	}

	// 4. Render the winning schedule.
	schedule, err := mixsoc.ScheduleFor(design, exh.Best.Partition, width)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwinning schedule:")
	fmt.Print(schedule.Gantt(100))
}
