// Floorplan: placement-aware wrapper sharing — the paper's future work.
//
// Run with:
//
//	go run ./examples/floorplan
//
// The paper prices wrapper sharing with a routing factor "proportional
// to the cumulative distance of the n cores from each other", then
// substitutes a representative constant and notes in its conclusion that
// it is "studying ways of refining the cost measure based on the
// knowledge of core placement". This example does that refinement: the
// five analog cores get floorplan coordinates, routing overhead is
// priced from real distances, and the planner's sharing decision shifts
// toward geographically coherent groups.
package main

import (
	"fmt"
	"log"

	"mixsoc"
	"mixsoc/internal/analog"
)

func main() {
	log.SetFlags(0)

	design := mixsoc.P93791M()
	names := design.AnalogNames()
	const width = 48

	// Floorplan: the two I-Q transmit paths (A, B) sit together in the
	// RF corner, the audio CODEC (C) near the pads on the same side, the
	// down-converter (D) and amplifier (E) across the die.
	floorplan := analog.PlacementRouting{
		Positions: map[string]analog.Point{
			"A": {X: 1.0, Y: 1.0},
			"B": {X: 1.6, Y: 1.2},
			"C": {X: 2.4, Y: 0.8},
			"D": {X: 8.5, Y: 7.0},
			"E": {X: 9.2, Y: 7.8},
		},
		Diameter: 12.0, // die diagonal, same units
		Scale:    1.5,  // routing cost per normalized distance
	}
	if err := floorplan.Validate(); err != nil {
		log.Fatal(err)
	}

	// Baseline: the paper's representative-constant model.
	uniform := mixsoc.NewPlanner(design, width, mixsoc.EqualWeights)
	uniform.CostModel = analog.PaperCostModel()
	uRes, err := uniform.CostOptimizer()
	if err != nil {
		log.Fatal(err)
	}

	// Placement-aware: same areas, routing from the floorplan.
	placed := mixsoc.NewPlanner(design, width, mixsoc.EqualWeights)
	cm := analog.PaperCostModel()
	cm.Routing = floorplan
	placed.CostModel = cm
	pRes, err := placed.CostOptimizer()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("W=%d, wT=wA=0.5\n\n", width)
	fmt.Printf("uniform routing (paper's representative constant):\n")
	fmt.Printf("  best: %-16s CT=%.1f CA=%.1f cost=%.2f\n\n",
		uRes.Best.Label(names), uRes.Best.CT, uRes.Best.CA, uRes.Best.Cost)
	fmt.Printf("placement-aware routing (paper's future work):\n")
	fmt.Printf("  best: %-16s CT=%.1f CA=%.1f cost=%.2f\n\n",
		pRes.Best.Label(names), pRes.Best.CT, pRes.Best.CA, pRes.Best.Cost)

	// Show why: price a near group against a far group under both.
	near := mixsoc.Partition{{0, 1}, {2}, {3}, {4}} // {A,B} adjacent
	far := mixsoc.Partition{{0, 3}, {1}, {2}, {4}}  // {A,D} across the die
	for _, tc := range []struct {
		label string
		p     mixsoc.Partition
	}{{"{A,B} (adjacent)", near}, {"{A,D} (across the die)", far}} {
		u, err := analog.PaperCostModel().AreaOverheadPercent(design.Analog, tc.p)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := analog.PaperCostModel().AreaOverheadPercentWithRouting(design.Analog, tc.p, floorplan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  C_A of %-24s uniform %.1f, placed %.1f\n", tc.label, u, pl)
	}
	fmt.Println("\nthe uniform model cannot tell those apart; the floorplan can,")
	fmt.Println("so placement-aware planning keeps shared wrappers local.")
}
